//! §2.4 plan-size/communication trade-off: sweeping the scaling factor
//! `α = (cost to transmit a byte) / (tuples processed in the query
//! lifetime)` and letting the basestation pick the plan size `k` that
//! minimizes `C(P) + α·ζ(P)`, then validating the choice with the full
//! sensor-network simulation.
//!
//! Expected shape: short-lived queries (large α) get leaf plans (the
//! plan is not worth shipping); long-lived queries (α → 0) get rich
//! conditional plans.

use acqp_core::prelude::*;
use acqp_data::garden::{self, GardenAttrs, GardenConfig};
use acqp_sensornet::{run_simulation, sim::fleet_from_trace, Basestation, EnergyModel};

fn main() {
    let t0 = std::time::Instant::now();
    let cfg = GardenConfig { epochs: 6_000, ..GardenConfig::garden5() };
    let g = garden::generate(&cfg);
    let (history, live) = g.split(0.5);
    let schema = g.schema.clone();
    let layout = GardenAttrs::new(cfg.motes);

    let temp_d = g.discretizers[layout.temp(0)].as_ref().unwrap();
    let hum_d = g.discretizers[layout.humidity(0)].as_ref().unwrap();
    let mut preds = Vec::new();
    for m in 0..cfg.motes {
        preds.push(Pred::in_range(layout.temp(m), temp_d.quantize(10.5), temp_d.quantize(17.5)));
        preds.push(Pred::in_range(layout.humidity(m), hum_d.quantize(50.0), hum_d.quantize(78.0)));
    }
    let query = Query::checked(preds, &schema).unwrap();

    let bs = Basestation::new(schema.clone(), &history);
    let model = EnergyModel::mica_like();
    let candidates = [0usize, 1, 2, 4, 8, 16, 32];

    println!("=== §2.4 ablation: alpha vs chosen plan size ===\n");
    println!(
        "{:>10} {:>8} {:>8} {:>10} {:>14} {:>14}",
        "alpha", "k", "bytes", "splits", "objective", "sim total uJ"
    );
    for alpha in [0.0, 0.01, 0.1, 1.0, 10.0, 100.0, 1000.0] {
        let (k, planned) = bs.plan_query_sized(&query, alpha, &candidates).unwrap();
        // Validate with a short simulation window.
        let epochs = 500.min(live.len());
        let mut motes = fleet_from_trace(&live.take(epochs), 3);
        let rep = run_simulation(&schema, &query, &planned, &mut motes, &model, epochs);
        assert!(rep.all_correct);
        println!(
            "{alpha:>10.2} {k:>8} {:>8} {:>10} {:>14.2} {:>14.0}",
            planned.wire.len(),
            planned.plan.split_count(),
            planned.objective,
            rep.network.total_uj()
        );
    }
    println!(
        "\nalpha for this deployment per §2.4 (3 motes, {} epochs): {:.5}",
        live.len(),
        Basestation::alpha_for(&model, 3, live.len())
    );
    println!("elapsed: {:.1?}", t0.elapsed());
}
