//! Ablations over the design choices DESIGN.md calls out:
//!
//! 1. **Branch-and-bound machinery in the exhaustive planner** —
//!    subproblem expansions and plan quality with small vs large
//!    effort budgets (the paper's plain pruning corresponds to a large
//!    budget; the incumbent + bound memo make small budgets viable).
//! 2. **Base sequential algorithm under the heuristic** — `OptSeq` vs
//!    `GreedySeq` vs `Naive` leaf plans.
//! 3. **SPSF restriction on the heuristic** — quality as the grid
//!    shrinks (the §4.3 trade-off from the heuristic's side).
//! 4. **Estimator: counting vs Chow–Liu graphical model** (§7) —
//!    train→test generalization of the resulting plans.
//! 5. **Min-gain regularization** — split-count and test cost with and
//!    without the variance guard.

use acqp_core::prelude::*;
use acqp_core::IndependenceEstimator;
use acqp_data::garden::{self, GardenConfig};
use acqp_data::lab::{self, LabConfig};
use acqp_data::workload::{garden_queries_on, lab_queries};
use acqp_gm::{ChowLiuTree, GmEstimator};

fn main() {
    let t0 = std::time::Instant::now();
    println!("=== Ablations ===\n");
    ablation_bnb();
    ablation_base_plan();
    ablation_spsf();
    ablation_estimator();
    ablation_min_gain();
    ablation_independence();
    ablation_board_costs();
    println!("elapsed: {:.1?}", t0.elapsed());
}

/// 7. §7 complex acquisition costs: planning with vs without knowledge
///    of shared sensor boards, priced under board power-ups.
fn ablation_board_costs() {
    println!("--- board-aware planning (lab, light+temp board vs humidity board) ---");
    let g = lab::generate(&LabConfig::default());
    let (train_full, test) = g.split(0.6);
    let train = train_full.thin(3);
    let queries = lab_queries(&g.schema, &train, 25, 3, 0xab7).expect("lab workload");
    // Light and temperature share a board; humidity sits on its own.
    // Prefix sets that stay on a warm board are cheaper, so the aware
    // planner reorders probes (the total for a fixed acquired set is
    // order-independent; early termination makes prefixes matter).
    let board = CostModel::boards(g.schema.len(), &[(vec![0, 1], 100.0), (vec![2], 100.0)]);
    let mut blind_tr = 0.0;
    let mut aware_tr = 0.0;
    let mut blind_te = 0.0;
    let mut aware_te = 0.0;
    for q in &queries {
        let est = CountingEstimator::with_ranges(&train, Ranges::root(&g.schema));
        let grid = SplitGrid::for_query(&g.schema, q, 12);
        let _ = grid;
        // Optimal *sequential* plans make the comparison exact: the
        // aware order provably dominates any order on training data.
        let blind = SeqPlanner::optimal().plan(&g.schema, q, &est).unwrap();
        let aware =
            SeqPlanner::optimal().with_cost_model(board.clone()).plan(&g.schema, q, &est).unwrap();
        let rb_tr = measure_model(&blind, q, &g.schema, &board, &train);
        let ra_tr = measure_model(&aware, q, &g.schema, &board, &train);
        // The aware plan is optimized under the board pricing: on the
        // training window it can never lose to the blind plan.
        assert!(ra_tr.mean_cost <= rb_tr.mean_cost + 1e-6);
        let rb = measure_model(&blind, q, &g.schema, &board, &test);
        let ra = measure_model(&aware, q, &g.schema, &board, &test);
        assert!(rb.all_correct && ra.all_correct);
        blind_tr += rb_tr.mean_cost;
        aware_tr += ra_tr.mean_cost;
        blind_te += rb.mean_cost;
        aware_te += ra.mean_cost;
    }
    let n = queries.len() as f64;
    println!(
        "{:>28} {:>11.2} (train) {:>11.2} (test)\n{:>28} {:>11.2} (train) {:>11.2} (test)\n",
        "board-blind planning",
        blind_tr / n,
        blind_te / n,
        "board-aware planning",
        aware_tr / n,
        aware_te / n,
    );
}

/// 6. Correlation-blind planning: the same planner over an estimator
///    that assumes attribute independence. Shows the paper's gains come
///    from modelling correlations, not from plan machinery.
fn ablation_independence() {
    println!("--- correlations vs independence assumption (lab) ---");
    let g = lab::generate(&LabConfig::default());
    let (train_full, test) = g.split(0.6);
    let train = train_full.thin(3);
    let queries = lab_queries(&g.schema, &train, 25, 3, 0xab6).expect("lab workload");
    let mut corr_sum = 0.0;
    let mut indep_sum = 0.0;
    let mut indep_splits = 0usize;
    for q in &queries {
        let grid = SplitGrid::for_query(&g.schema, q, 12);
        let planner = GreedyPlanner::new(10).with_base(SeqAlgorithm::Optimal).with_grid(grid);

        let est = CountingEstimator::with_ranges(&train, Ranges::root(&g.schema));
        let p = planner.plan(&g.schema, q, &est).unwrap();
        let r = measure(&p, q, &g.schema, &test);
        assert!(r.all_correct);
        corr_sum += r.mean_cost;

        let indep = IndependenceEstimator::new(&train, Ranges::root(&g.schema));
        let p = planner.plan(&g.schema, q, &indep).unwrap();
        indep_splits += p.split_count();
        let r = measure(&p, q, &g.schema, &test);
        assert!(r.all_correct);
        indep_sum += r.mean_cost;
    }
    println!(
        "{:>28} {:>14.2}\n{:>28} {:>14.2}  ({} splits chosen, but only self-conditioning:\n{:>28} under independence a split never informs *other* attributes)\n",
        "counting (correlations)",
        corr_sum / queries.len() as f64,
        "independence assumption",
        indep_sum / queries.len() as f64,
        indep_splits,
        "",
    );
}

/// 1. Exhaustive search effort: how plan cost degrades as the
///    subproblem budget shrinks (budget-truncated searches fall back to
///    greedy sequential leaves).
fn ablation_bnb() {
    println!("--- exhaustive planner: effort budget vs plan quality ---");
    let g = lab::generate(&LabConfig { epochs: 800, ..LabConfig::default() });
    let (train, _) = g.split(0.8);
    let queries = lab_queries(&g.schema, &train, 4, 3, 0xab1).expect("lab workload");
    println!("{:>12} {:>14} {:>10} {:>8}", "budget", "mean model", "expansions", "exact");
    for budget in [1_000usize, 10_000, 100_000, 1_000_000] {
        let mut cost_sum = 0.0;
        let mut used_sum = 0usize;
        let mut exact = 0usize;
        for q in &queries {
            let est = CountingEstimator::with_ranges(&train, Ranges::root(&g.schema));
            let grid = SplitGrid::for_query(&g.schema, q, 2);
            let (_, cost, used) = ExhaustivePlanner::with_grid(grid)
                .max_subproblems(budget)
                .plan_with_stats(&g.schema, q, &est)
                .unwrap();
            cost_sum += cost;
            used_sum += used.min(budget);
            exact += usize::from(used <= budget);
        }
        println!(
            "{budget:>12} {:>14.2} {:>10} {exact:>5}/{}",
            cost_sum / queries.len() as f64,
            used_sum / queries.len(),
            queries.len()
        );
    }
    println!();
}

/// 2. Heuristic base-plan algorithm.
fn ablation_base_plan() {
    println!("--- heuristic base plans: OptSeq vs GreedySeq vs Naive ---");
    let g = lab::generate(&LabConfig::default());
    let (train_full, test) = g.split(0.6);
    let train = train_full.thin(3);
    let queries = lab_queries(&g.schema, &train, 25, 3, 0xab2).expect("lab workload");
    println!("{:>12} {:>14}", "base", "mean test cost");
    for (name, base) in [
        ("OptSeq", SeqAlgorithm::Optimal),
        ("GreedySeq", SeqAlgorithm::Greedy),
        ("Naive", SeqAlgorithm::Naive),
    ] {
        let mut sum = 0.0;
        for q in &queries {
            let est = CountingEstimator::with_ranges(&train, Ranges::root(&g.schema));
            let plan = GreedyPlanner::new(10)
                .with_base(base)
                .with_grid(SplitGrid::for_query(&g.schema, q, 12))
                .plan(&g.schema, q, &est)
                .unwrap();
            let rep = measure(&plan, q, &g.schema, &test);
            assert!(rep.all_correct);
            sum += rep.mean_cost;
        }
        println!("{name:>12} {:>14.2}", sum / queries.len() as f64);
    }
    println!();
}

/// 3. SPSF restriction on the heuristic.
fn ablation_spsf() {
    println!("--- heuristic SPSF sweep (grid points per attribute) ---");
    let g = lab::generate(&LabConfig::default());
    let (train_full, test) = g.split(0.6);
    let train = train_full.thin(3);
    let queries = lab_queries(&g.schema, &train, 25, 3, 0xab3).expect("lab workload");
    println!("{:>6} {:>10} {:>14}", "r", "log10SPSF", "mean test cost");
    for r in [1usize, 2, 4, 8, 16, 32] {
        let mut sum = 0.0;
        for q in &queries {
            let est = CountingEstimator::with_ranges(&train, Ranges::root(&g.schema));
            let plan = GreedyPlanner::new(10)
                .with_base(SeqAlgorithm::Optimal)
                .with_grid(SplitGrid::equal_width(&g.schema, r))
                .plan(&g.schema, q, &est)
                .unwrap();
            let rep = measure(&plan, q, &g.schema, &test);
            assert!(rep.all_correct);
            sum += rep.mean_cost;
        }
        println!(
            "{r:>6} {:>10.1} {:>14.2}",
            SplitGrid::equal_width(&g.schema, r).log10_spsf(),
            sum / queries.len() as f64
        );
    }
    println!();
}

/// 4. Counting vs graphical-model estimation (§7): deep subproblems of
///    the counting estimator are supported by ever fewer tuples; the
///    Chow–Liu model keeps a constant-size conditional sample.
fn ablation_estimator() {
    println!("--- probability estimation: counting vs Chow-Liu tree (garden-5) ---");
    // Coarser discretization: a 64-bin tree CPT has 4096 cells per edge
    // and cannot be fit from a starved sample; 12 bins keeps the model
    // compact, which is the point of §7's "polynomial number of
    // parameters".
    let g = garden::generate(&GardenConfig {
        epochs: 6_000,
        sensor_bins: 12,
        ..GardenConfig::garden5()
    });
    let (train, test) = g.split(0.5);
    // Starve the planner: plan from a small training slice where
    // counting overfits but the fitted model generalizes.
    let small_train = train.take(300);
    let queries =
        garden_queries_on(&g.schema, Some(&train), 5, 20, 0xab4).expect("garden workload");

    let mut counting_sum = 0.0;
    let mut gm_sum = 0.0;
    let tree = ChowLiuTree::fit(&g.schema, &small_train, 0.5);
    for q in &queries {
        let planner = GreedyPlanner::new(8)
            .with_base(SeqAlgorithm::Greedy)
            .with_grid(SplitGrid::for_query(&g.schema, q, 10));

        let est = CountingEstimator::with_ranges(&small_train, Ranges::root(&g.schema));
        let p1 = planner.plan(&g.schema, q, &est).unwrap();
        let r1 = measure(&p1, q, &g.schema, &test);
        assert!(r1.all_correct);
        counting_sum += r1.mean_cost;

        let gm = GmEstimator::new(&tree, Ranges::root(&g.schema), 2_000, 0xab4);
        let p2 = planner.plan(&g.schema, q, &gm).unwrap();
        let r2 = measure(&p2, q, &g.schema, &test);
        assert!(r2.all_correct);
        gm_sum += r2.mean_cost;
    }
    println!(
        "{:>24} {:>14.2}\n{:>24} {:>14.2}  (trained on 300 tuples; model has {} parameters)\n",
        "counting (300 rows)",
        counting_sum / queries.len() as f64,
        "Chow-Liu (300 rows)",
        gm_sum / queries.len() as f64,
        tree.parameter_count(),
    );
}

/// 5. Min-gain regularization on the garden workload.
fn ablation_min_gain() {
    println!("--- min-gain regularizer (garden-5, test-set cost) ---");
    let g = garden::generate(&GardenConfig { epochs: 6_000, ..GardenConfig::garden5() });
    let (train, test) = g.split(0.5);
    let queries =
        garden_queries_on(&g.schema, Some(&train), 5, 20, 0xab5).expect("garden workload");
    println!("{:>10} {:>14} {:>12}", "min_gain", "mean test", "mean splits");
    for mg in [0.0f64, 1.0, 2.0, 5.0, 10.0] {
        let mut sum = 0.0;
        let mut splits = 0usize;
        for q in &queries {
            let est = CountingEstimator::with_ranges(&train, Ranges::root(&g.schema));
            let plan = GreedyPlanner::new(10)
                .with_base(SeqAlgorithm::Greedy)
                .with_min_gain(mg)
                .with_min_support(50)
                .with_grid(SplitGrid::for_query(&g.schema, q, 12))
                .plan(&g.schema, q, &est)
                .unwrap();
            let rep = measure(&plan, q, &g.schema, &test);
            assert!(rep.all_correct);
            sum += rep.mean_cost;
            splits += plan.split_count();
        }
        println!(
            "{mg:>10.1} {:>14.2} {:>12.1}",
            sum / queries.len() as f64,
            splits as f64 / queries.len() as f64
        );
    }
    println!();
}
