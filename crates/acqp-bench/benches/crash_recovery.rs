//! Crash-recovery sweep: basestation crash rate × checkpoint cadence.
//!
//! The scenario is the drifting fleet of `fault_sweep` (stale-plan
//! marginals reversed mid-deployment) with seeded basestation crashes
//! layered on top. Three persistence modes are compared at each crash
//! rate:
//!
//! * `none`  — no checkpoint directory: every crash cold-starts back to
//!   the genesis plan and re-pays planning *and* re-dissemination.
//! * `wal`   — WAL only (`checkpoint_every = 0`): recovery replays the
//!   full journal from genesis.
//! * `snapN` — snapshot every N epochs plus the WAL tail.
//!
//! Reported per point: crashes, cold starts, WAL records replayed,
//! checkpoints written, recovery re-dissemination energy, and sensing
//! µJ/tuple.
//!
//! Acceptance gates: every run's verdicts stay correct; without
//! persistence no state is ever recovered; WAL-only recovery rebuilds
//! from genesis (counted as cold starts) but replays the journal;
//! snapshots eliminate cold starts entirely and bound the per-crash
//! WAL replay below WAL-only's. Everything is seeded — reruns are
//! bitwise stable.

use std::path::PathBuf;
use std::sync::Arc;

use acqp_core::prelude::*;
use acqp_core::DriftConfig;
use acqp_obs::{NoopSink, Recorder};
use acqp_sensornet::sim::fleet_from_trace;
use acqp_sensornet::{
    run_simulation_crashy, AdaptiveConfig, Basestation, CrashConfig, CrashReport, EnergyModel,
    FaultModel, PlannerChoice, ReplanBudget,
};

const EPOCHS: usize = 400;
const MOTES: u16 = 4;
const FAULT_SEED: u64 = 0xc4a5;
const LOSS: f64 = 0.05;

fn scenario() -> (Schema, Dataset, Dataset, Query) {
    let schema = Schema::new(vec![
        Attribute::new("a", 2, 100.0),
        Attribute::new("b", 2, 100.0),
        Attribute::new("t", 2, 1.0),
    ])
    .unwrap();
    let hist_rows: Vec<Vec<u16>> =
        (0..400u16).map(|i| vec![u16::from(i % 10 != 0), u16::from(i % 10 == 0), i % 2]).collect();
    let live_rows: Vec<Vec<u16>> = (0..EPOCHS as u16)
        .map(|i| vec![u16::from(i % 10 == 0), u16::from(i % 10 != 0), i % 2])
        .collect();
    let hist = Dataset::from_rows(&schema, hist_rows).unwrap();
    let live = Dataset::from_rows(&schema, live_rows).unwrap();
    let query = Query::new(vec![Pred::in_range(0, 1, 1), Pred::in_range(1, 1, 1)]).unwrap();
    (schema, hist, live, query)
}

/// One persistence mode of the sweep.
#[derive(Clone, Copy)]
enum Mode {
    None,
    Wal,
    Snap(usize),
}

impl Mode {
    fn label(self) -> String {
        match self {
            Mode::None => "none".into(),
            Mode::Wal => "wal".into(),
            Mode::Snap(n) => format!("snap{n}"),
        }
    }
}

fn run_point(rate: f64, mode: Mode) -> CrashReport {
    let (schema, hist, live, query) = scenario();
    let bs = Basestation::new(schema.clone(), &hist);
    let planned = bs.plan_query(&query, PlannerChoice::Heuristic(4), 0.0).unwrap();
    let model = EnergyModel::mica_like();
    let faults = FaultModel::lossy(FAULT_SEED, LOSS);
    let rec = Recorder::new(Arc::new(NoopSink));
    let cfg = AdaptiveConfig {
        drift: DriftConfig { threshold: 0.2, min_samples: 16 },
        check_every: 8,
        sample_every: 4,
        window: 256,
        min_window: 16,
        budget: ReplanBudget::default(),
        alpha: 0.0,
    };

    let dir: Option<PathBuf> = match mode {
        Mode::None => None,
        _ => {
            let d = std::env::temp_dir().join("acqp_bench_crash_recovery").join(format!(
                "r{:.0}_{}",
                rate * 1000.0,
                mode.label()
            ));
            std::fs::remove_dir_all(&d).ok();
            Some(d)
        }
    };
    let crash = CrashConfig {
        checkpoint_dir: dir.clone(),
        checkpoint_every: if let Mode::Snap(n) = mode { n } else { 0 },
        crash_epochs: Vec::new(),
        crash_rate: rate,
    };

    let mut motes = fleet_from_trace(&live, MOTES);
    let report = run_simulation_crashy(
        &bs,
        &query,
        &planned,
        &mut motes,
        &model,
        EPOCHS,
        &faults,
        Some(&cfg),
        &crash,
        &rec,
    )
    .expect("crashy simulation");
    drop(rec.drain());
    if let Some(d) = dir {
        std::fs::remove_dir_all(&d).ok();
    }

    assert!(report.fault.sim.all_correct, "verdicts diverged at rate {rate} {}", mode.label());
    report
}

fn main() {
    println!(
        "=== Crash-recovery sweep: crash rate x checkpoint cadence \
         ({MOTES} motes x {EPOCHS} epochs, loss {LOSS}, seed {FAULT_SEED:#x}) ==="
    );
    let rates = [0.01, 0.05];
    let modes = [Mode::None, Mode::Wal, Mode::Snap(8), Mode::Snap(32)];

    println!(
        "\n{:<6} {:<7} {:>8} {:>7} {:>9} {:>7} {:>14} {:>12}",
        "rate", "mode", "crashes", "cold", "replayed", "snaps", "recovery uJ", "uJ/tuple"
    );
    let mut fields = Vec::new();
    for &rate in &rates {
        let mut wal_replay_per_crash = f64::INFINITY;
        for &mode in &modes {
            let r = run_point(rate, mode);
            let tag = format!("rate_{rate:.2}.{}", mode.label());
            println!(
                "{:<6.2} {:<7} {:>8} {:>7} {:>9} {:>7} {:>14.1} {:>12.1}",
                rate,
                mode.label(),
                r.crashes,
                r.cold_starts,
                r.wal_replayed,
                r.checkpoints_written,
                r.recovery_rediss_uj,
                r.fault.sim.sensing_uj_per_tuple
            );
            fields.push((format!("{tag}.crashes"), r.crashes as f64));
            fields.push((format!("{tag}.cold_starts"), r.cold_starts as f64));
            fields.push((format!("{tag}.wal_replayed"), r.wal_replayed as f64));
            fields.push((format!("{tag}.checkpoints_written"), r.checkpoints_written as f64));
            fields.push((format!("{tag}.recovery_rediss_uj"), r.recovery_rediss_uj));
            fields.push((format!("{tag}.sensing_uj_per_tuple"), r.fault.sim.sensing_uj_per_tuple));

            // Gates. The seeded crash schedule is identical across
            // modes at a given rate, so per-crash comparisons are fair.
            assert!(r.crashes > 0, "seed must inject crashes at rate {rate}");
            let per_crash = r.wal_replayed as f64 / r.crashes as f64;
            match mode {
                Mode::None => {
                    assert_eq!(r.cold_starts, r.crashes, "no persistence => all cold starts");
                    assert_eq!(r.wal_replayed, 0, "no persistence => nothing to replay");
                    assert_eq!(r.checkpoints_written, 0);
                }
                Mode::Wal => {
                    // Snapshot-less recovery rebuilds genesis and
                    // replays the whole journal: a "cold start" that
                    // loses nothing that was logged.
                    assert_eq!(r.cold_starts, r.crashes);
                    assert!(r.wal_replayed > 0, "WAL-only recovery must replay the journal");
                    wal_replay_per_crash = per_crash;
                }
                // A crash can still cold-start if it precedes the
                // first snapshot (losslessly: the WAL replays), so the
                // snapshot gate is on replay length, not cold starts.
                Mode::Snap(8) => {
                    assert!(r.checkpoints_written > 0);
                    assert!(
                        per_crash < wal_replay_per_crash,
                        "snapshots must bound WAL replay: {per_crash} vs {wal_replay_per_crash}"
                    );
                }
                Mode::Snap(_) => {
                    assert!(r.checkpoints_written > 0);
                }
            }
        }
    }
    println!("\npersistence preserves adaptivity and snapshots bound replay: gates satisfied");

    acqp_bench::report::emit_bench_json("crash_recovery", &fields);
}
