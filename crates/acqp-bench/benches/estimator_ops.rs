//! §5 micro-benchmarks: the probability computations the planners lean
//! on, as a function of dataset size.
//!
//! The paper's complexity claims, checked by shape here:
//! * building per-attribute conditional histograms is `O(|D|·n·K)`
//!   overall — one pass per subproblem (`hist`);
//! * truth-table construction is one gather over the conditioned rows
//!   (`truth_table`);
//! * the per-value sweep used by `GREEDYSPLIT` is a single pass
//!   (`truth_by_value`), independent of the number of candidate cuts;
//! * context refinement (the §5 index narrowing) is linear in the
//!   parent's support.

use criterion::{BenchmarkId, Criterion};
use std::time::Duration;

use acqp_core::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn dataset(rows: usize, seed: u64) -> (Schema, Dataset, Query) {
    let mut rng = StdRng::seed_from_u64(seed);
    let schema =
        Schema::new((0..8).map(|i| Attribute::new(format!("x{i}"), 32, 10.0)).collect()).unwrap();
    let data = Dataset::from_rows(
        &schema,
        (0..rows)
            .map(|_| {
                let base: u16 = rng.gen_range(0..32);
                (0..8).map(|_| (base + rng.gen_range(0..8)) % 32).collect()
            })
            .collect(),
    )
    .unwrap();
    let query =
        Query::checked((0..4).map(|a| Pred::in_range(a, 8, 23)).collect(), &schema).unwrap();
    (schema, data, query)
}

fn main() {
    let mut c = Criterion::default()
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700))
        .sample_size(20)
        .configure_from_args();

    for rows in [5_000usize, 20_000, 80_000] {
        let (schema, data, query) = dataset(rows, 9);
        let est = CountingEstimator::with_ranges(&data, Ranges::root(&schema));
        let root = est.root();

        let mut g = c.benchmark_group("counting_hist");
        g.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, _| {
            b.iter(|| est.hist(&root, 0))
        });
        g.finish();

        let mut g = c.benchmark_group("counting_truth_table");
        g.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, _| {
            b.iter(|| est.truth_table(&root, &query))
        });
        g.finish();

        let mut g = c.benchmark_group("counting_truth_by_value");
        g.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, _| {
            b.iter(|| est.truth_by_value(&root, 7, &query))
        });
        g.finish();

        let mut g = c.benchmark_group("counting_refine");
        g.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, _| {
            b.iter(|| est.refine(&root, 7, Range::new(0, 15)))
        });
        g.finish();
    }

    c.final_summary();
}
