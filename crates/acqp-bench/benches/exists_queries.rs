//! §7 extension: existential queries over the Garden deployment —
//! "is there a mote reading high temperature and low humidity?"
//!
//! Compares a fixed branch order (the sequential dual of `CorrSeq`)
//! against a conditional plan that observes the cheap time-of-day and
//! voltage attributes to pick which mote to probe first.

use acqp_core::prelude::*;
use acqp_data::garden::{self, GardenAttrs, GardenConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let t0 = std::time::Instant::now();
    let g = garden::generate(&GardenConfig { epochs: 6_000, ..GardenConfig::garden11() });
    let (train, test) = g.split(0.5);
    let layout = GardenAttrs::new(11);
    let mut rng = StdRng::seed_from_u64(0xe715);

    println!("=== §7 extension: existential queries, Garden-11 ===");
    println!(
        "{:>5} {:>12} {:>12} {:>12} {:>8} {:>10}",
        "query", "seq cost", "cond cost", "gain", "splits", "pass rate"
    );
    let mut gains = Vec::new();
    for qi in 0..20 {
        // "Some mote is hot and dry": identical thresholds per mote; the
        // threshold quantiles vary per query.
        let t_hi = 26 + rng.gen_range(0..12) as u16;
        let h_lo = rng.gen_range(24..40) as u16;
        let branches: Vec<Query> = (0..11)
            .map(|m| {
                Query::new(vec![
                    Pred::in_range(layout.temp(m), t_hi, 63),
                    Pred::in_range(layout.humidity(m), 0, h_lo),
                ])
                .unwrap()
            })
            .collect();
        let q = ExistsQuery::checked(branches, &g.schema).unwrap();

        let seq = ExistsPlanner::new(0).plan(&g.schema, &q, &train).unwrap();
        let cond = ExistsPlanner::new(8).with_grid_points(10).plan(&g.schema, &q, &train).unwrap();
        let rs = measure_exists(&seq, &q, &g.schema, &test);
        let rc = measure_exists(&cond, &q, &g.schema, &test);
        assert!(rs.all_correct && rc.all_correct);
        let gain = rs.mean_cost / rc.mean_cost.max(1e-9);
        gains.push(gain);
        println!(
            "{qi:>5} {:>12.1} {:>12.1} {:>12.2} {:>8} {:>10.2}",
            rs.mean_cost,
            rc.mean_cost,
            gain,
            cond.split_count(),
            rc.pass_rate
        );
    }
    gains.sort_by(|a, b| a.partial_cmp(b).unwrap());
    println!(
        "\ngain over fixed branch order: min {:.2} / median {:.2} / max {:.2}",
        gains[0],
        gains[gains.len() / 2],
        gains[gains.len() - 1]
    );
    println!("elapsed: {:.1?}", t0.elapsed());
}
