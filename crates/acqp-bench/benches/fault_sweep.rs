//! Fault sweep: a lossy fleet running a *stale* plan against the same
//! fleet with drift-triggered re-planning, across packet-loss rates.
//!
//! The scenario is the marginal-shift regime from `DESIGN.md` §9: the
//! training window has pred-`a` passing 90% of tuples and pred-`b` 10%
//! (so the planner fronts `b` for cheap rejections), while the live
//! trace reverses the two marginals. The stale plan then acquires both
//! expensive sensors almost every epoch; the drift monitor sees the
//! per-predicate selectivity error and re-plans mid-flight.
//!
//! Note the shift must move the *marginals*: a pure correlation flip
//! that preserves per-predicate pass rates is invisible to a
//! selectivity-based monitor by design.
//!
//! Acceptance gate: at one or more nonzero loss rates, the adaptive run
//! strictly improves sensing µJ/tuple or result-delivery rate over the
//! stale baseline. Everything is seeded — reruns are bitwise stable.

use std::sync::Arc;

use acqp_core::prelude::*;
use acqp_core::DriftConfig;
use acqp_obs::{NoopSink, Recorder};
use acqp_sensornet::sim::fleet_from_trace;
use acqp_sensornet::{
    run_simulation_adaptive, run_simulation_faulty, AdaptiveConfig, Basestation, EnergyModel,
    FaultModel, FaultReport, PlannerChoice, ReplanBudget,
};

const EPOCHS: usize = 800;
const MOTES: u16 = 4;
const FAULT_SEED: u64 = 0x5eed;

fn scenario() -> (Schema, Dataset, Dataset, Query) {
    let schema = Schema::new(vec![
        Attribute::new("a", 2, 100.0),
        Attribute::new("b", 2, 100.0),
        Attribute::new("t", 2, 1.0),
    ])
    .unwrap();
    // History: pred-a passes 90%, pred-b 10%.
    let hist_rows: Vec<Vec<u16>> =
        (0..400u16).map(|i| vec![u16::from(i % 10 != 0), u16::from(i % 10 == 0), i % 2]).collect();
    // Live: the marginals reversed.
    let live_rows: Vec<Vec<u16>> = (0..EPOCHS as u16)
        .map(|i| vec![u16::from(i % 10 == 0), u16::from(i % 10 != 0), i % 2])
        .collect();
    let hist = Dataset::from_rows(&schema, hist_rows).unwrap();
    let live = Dataset::from_rows(&schema, live_rows).unwrap();
    let query = Query::new(vec![Pred::in_range(0, 1, 1), Pred::in_range(1, 1, 1)]).unwrap();
    (schema, hist, live, query)
}

struct Point {
    loss: f64,
    stale: FaultReport,
    adaptive: FaultReport,
}

fn sweep_point(loss: f64) -> Point {
    let (schema, hist, live, query) = scenario();
    let bs = Basestation::new(schema.clone(), &hist);
    let planned = bs.plan_query(&query, PlannerChoice::Heuristic(4), 0.0).unwrap();
    let model = EnergyModel::mica_like();
    let faults = FaultModel::lossy(FAULT_SEED, loss);
    let rec = Recorder::new(Arc::new(NoopSink));

    let mut motes = fleet_from_trace(&live, MOTES);
    let stale =
        run_simulation_faulty(&schema, &query, &planned, &mut motes, &model, EPOCHS, &faults, &rec);

    let cfg = AdaptiveConfig {
        drift: DriftConfig { threshold: 0.2, min_samples: 16 },
        check_every: 8,
        sample_every: 4,
        window: 256,
        min_window: 16,
        budget: ReplanBudget::default(),
        alpha: 0.0,
    };
    let mut motes = fleet_from_trace(&live, MOTES);
    let adaptive = run_simulation_adaptive(
        &bs, &query, &planned, &mut motes, &model, EPOCHS, &faults, &cfg, &rec,
    )
    .expect("adaptive simulation");
    drop(rec.drain());

    assert!(stale.sim.all_correct && adaptive.sim.all_correct, "verdicts diverged at loss {loss}");
    Point { loss, stale, adaptive }
}

fn main() {
    println!(
        "=== Fault sweep: stale plan vs drift-triggered re-planning \
         ({MOTES} motes x {EPOCHS} epochs, seed {FAULT_SEED:#x}) ==="
    );
    let points: Vec<Point> = [0.0, 0.05, 0.10, 0.20].iter().map(|&l| sweep_point(l)).collect();

    println!(
        "\n{:<6} {:>16} {:>16} {:>12} {:>12} {:>9}",
        "loss", "stale uJ/tuple", "adapt uJ/tuple", "stale deliv", "adapt deliv", "replans"
    );
    let mut fields = Vec::new();
    let mut improved_at_nonzero_loss = false;
    for p in &points {
        let (s, a) = (&p.stale, &p.adaptive);
        let adopted = a.replans.iter().filter(|r| r.adopted).count();
        println!(
            "{:<6.2} {:>16.1} {:>16.1} {:>11.1}% {:>11.1}% {:>6}/{}",
            p.loss,
            s.sim.sensing_uj_per_tuple,
            a.sim.sensing_uj_per_tuple,
            100.0 * s.delivery_rate(),
            100.0 * a.delivery_rate(),
            adopted,
            a.replans.len()
        );
        let tag = format!("loss_{:.2}", p.loss);
        fields.push((format!("{tag}.stale.sensing_uj_per_tuple"), s.sim.sensing_uj_per_tuple));
        fields.push((format!("{tag}.adaptive.sensing_uj_per_tuple"), a.sim.sensing_uj_per_tuple));
        fields.push((format!("{tag}.stale.delivery_rate"), s.delivery_rate()));
        fields.push((format!("{tag}.adaptive.delivery_rate"), a.delivery_rate()));
        fields.push((format!("{tag}.adaptive.replans_adopted"), adopted as f64));
        if p.loss > 0.0
            && (a.sim.sensing_uj_per_tuple < s.sim.sensing_uj_per_tuple
                || a.delivery_rate() > s.delivery_rate())
        {
            improved_at_nonzero_loss = true;
        }
    }
    assert!(
        improved_at_nonzero_loss,
        "re-planning must strictly improve sensing uJ/tuple or delivery rate \
         at at least one nonzero loss rate"
    );
    println!("\nre-planning improves on the stale plan under loss: gate satisfied");

    acqp_bench::report::emit_bench_json("fault_sweep", &fields);
}
