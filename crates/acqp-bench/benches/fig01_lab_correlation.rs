//! Figure 1: hour-of-day vs light at a single sensor.
//!
//! The paper's scatter plot shows light pinned near zero during night
//! hours and a wide bright band by day — the correlation everything
//! else builds on. This bench prints the hour × light occupancy matrix
//! for one mote of the Lab dataset plus summary statistics, so the
//! banding is visible in a terminal.

use acqp_data::lab::{self, attrs, LabConfig};

fn main() {
    let g = lab::generate(&LabConfig::default());
    let data = &g.data;
    let mote = 3u16;

    // 24 hour buckets × 16 light bands.
    const BANDS: usize = 16;
    let k = f64::from(g.schema.domain(attrs::LIGHT));
    let mut grid = [[0u32; BANDS]; 24];
    let mut night_dark = 0u32;
    let mut night_total = 0u32;
    for row in 0..data.len() {
        if data.value(row, attrs::NODEID) != mote {
            continue;
        }
        let hour = data.value(row, attrs::HOUR) as usize;
        let light = data.value(row, attrs::LIGHT);
        let band = ((f64::from(light) / k) * BANDS as f64) as usize;
        grid[hour][band.min(BANDS - 1)] += 1;
        if !(6..20).contains(&hour) {
            night_total += 1;
            night_dark += u32::from(light <= 2);
        }
    }

    println!("=== Figure 1: hour of day vs light (mote {mote}) ===");
    println!("rows = hour 0..23, columns = light band (low -> high), cells = sample count\n");
    for (hour, row) in grid.iter().enumerate() {
        let cells: Vec<String> = row
            .iter()
            .map(|&c| if c == 0 { "   .".to_string() } else { format!("{c:>4}") })
            .collect();
        println!("h{hour:>2} |{}", cells.join(""));
    }
    println!(
        "\nnight hours are dark: P(light <= band 2 | hour outside 6..20) = {:.3}",
        f64::from(night_dark) / f64::from(night_total.max(1))
    );
    println!(
        "paper: \"given a time of day, light values can be bound to within a fairly \
         narrow band, especially at night\""
    );
}
