//! Figure 2 / §2.1 motivating example.
//!
//! Two predicates — `temp > 20°C` and `light < 100 lux` — each with
//! marginal selectivity 1/2 and unit acquisition cost. Any sequential
//! plan costs 1.5. Conditioning on (free) time of day, with the temp
//! predicate's selectivity dropping to 1/10 at night and the light
//! predicate's to 1/10 by day, the conditional plan costs 1.1 — the
//! "savings of almost 27%" the paper opens with.

use acqp_core::prelude::*;

fn main() {
    let schema = Schema::new(vec![
        Attribute::new("temp>20C", 2, 1.0),
        Attribute::new("light<100lux", 2, 1.0),
        Attribute::new("daytime", 2, 0.0),
    ])
    .unwrap();
    // Encode the example's conditional selectivities exactly:
    // night: P(temp-pred) = 1/10, P(light-pred) = 9/10;
    // day:   P(temp-pred) = 9/10, P(light-pred) = 1/10.
    let mut rows = Vec::new();
    for i in 0..10u16 {
        rows.push(vec![u16::from(i < 1), u16::from(i < 9), 0]);
        rows.push(vec![u16::from(i < 9), u16::from(i < 1), 1]);
    }
    let data = Dataset::from_rows(&schema, rows).unwrap();
    let query = Query::new(vec![Pred::in_range(0, 1, 1), Pred::in_range(1, 1, 1)]).unwrap();
    let est = CountingEstimator::with_ranges(&data, Ranges::root(&schema));

    println!("=== Figure 2: the motivating two-predicate example ===\n");
    println!("{:<34} {:>10} {:>12}", "plan", "expected", "paper");

    let (_, c_naive) = SeqPlanner::naive().plan_with_cost(&schema, &query, &est).unwrap();
    println!("{:<34} {c_naive:>10.3} {:>12}", "sequential (either order)", "1.5");

    let (plan, c_cond) = GreedyPlanner::new(4).plan_with_cost(&schema, &query, &est).unwrap();
    println!("{:<34} {c_cond:>10.3} {:>12}", "conditional on time of day", "1.1");

    let (_, c_opt) = ExhaustivePlanner::new().plan_with_cost(&schema, &query, &est).unwrap();
    println!("{:<34} {c_opt:>10.3} {:>12}", "exhaustive optimum", "1.1");

    assert!((c_naive - 1.5).abs() < 1e-9);
    assert!((c_cond - 1.1).abs() < 1e-9);
    assert!((c_opt - 1.1).abs() < 1e-9);

    println!(
        "\nsavings: {:.1}% (paper: \"savings of almost 27%\")\n",
        100.0 * (c_naive - c_cond) / c_naive
    );
    println!("the generated conditional plan (cf. Fig. 2):");
    println!("{}", plan.pretty(&schema, &query));
}
