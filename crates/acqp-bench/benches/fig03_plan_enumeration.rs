//! Figure 3 / §2.2: exhaustive enumeration of conditional plans for the
//! three-binary-attribute example with query `X1 = 1 ∧ X2 = 1`.
//!
//! The paper counts "12 total possible plans" under the full
//! acquisition-tree convention (`s(n) = n·s(n−1)²`); collapsing regions
//! past a decided verdict ("grayed out" in the figure) leaves 8 distinct
//! *executed* plans. This bench enumerates them, prints every plan with
//! its expected cost, and checks the minimum against the dynamic
//! program.

use acqp_core::prelude::*;

fn main() {
    let schema = Schema::new(vec![
        Attribute::new("x1", 2, 1.0),
        Attribute::new("x2", 2, 1.0),
        Attribute::new("x3", 2, 1.0),
    ])
    .unwrap();
    // Correlated data where observing x3 skews x1/x2 — the situation in
    // which the paper notes plan (12) can beat plan (1).
    let mut rows = Vec::new();
    for i in 0..32u16 {
        let x3 = i % 2;
        let x1 = if x3 == 0 { u16::from(i % 8 == 0) } else { u16::from(i % 4 != 1) };
        let x2 = if x3 == 0 { u16::from(i % 4 == 0) } else { u16::from(i % 8 != 1) };
        rows.push(vec![1 - x1, 1 - x2, x3]); // query is on value 1
    }
    let data = Dataset::from_rows(&schema, rows).unwrap();
    let query = Query::new(vec![Pred::in_range(0, 1, 1), Pred::in_range(1, 1, 1)]).unwrap();
    let est = CountingEstimator::with_ranges(&data, Ranges::root(&schema));

    println!("=== Figure 3: plan enumeration, 3 binary attributes ===\n");
    println!("full acquisition trees (paper's counting): {} (paper: 12)", full_tree_count(3));

    let e = enumerate_plans(&schema, &query, &est, 10_000).unwrap();
    println!("distinct executed plans: {}\n", e.plans.len());
    let mut indexed: Vec<(usize, &(Plan, f64))> = e.plans.iter().enumerate().collect();
    indexed.sort_by(|a, b| a.1 .1.partial_cmp(&b.1 .1).unwrap());
    for (rank, (i, (plan, cost))) in indexed.iter().enumerate() {
        println!("plan #{i} (rank {rank}, expected cost {cost:.4}):");
        let text = plan.pretty(&schema, &query);
        for line in text.lines() {
            println!("    {line}");
        }
    }

    let (_, dp_cost) = ExhaustivePlanner::new().plan_with_cost(&schema, &query, &est).unwrap();
    println!("\nbest enumerated cost {:.4} == exhaustive DP cost {:.4}", e.best_cost(), dp_cost);
    assert!((e.best_cost() - dp_cost).abs() < 1e-9);

    // The paper's observation: the cheapest plan may start with the
    // non-query attribute x3 when it skews the others enough.
    if let Some(Plan::Split { attr, .. }) = e.best_plan() {
        println!("optimal root observes attribute x{}", attr + 1);
    }
}
