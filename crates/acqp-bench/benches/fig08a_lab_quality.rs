//! Figure 8(a): plan quality on the Lab dataset.
//!
//! 95 random three-predicate queries (predicate width 2σ, ~50%
//! selectivity) over the Lab data. The paper's claims, checked here:
//!
//! 1. every correlation-aware algorithm beats `Naive`;
//! 2. `Heuristic-10` tracks `Exhaustive` closely in both average and
//!    worst case *on a common split grid*.
//!
//! The exhaustive planner is run on a small grid (r = 2 candidate cuts
//! per attribute plus predicate endpoints) where its branch-and-bound
//! search completes within budget — the run reports how many queries
//! were solved to proven optimality. (The paper likewise could only run
//! `Exhaustive` on heavily restricted SPSFs; see Fig. 8(b).) The
//! heuristics are additionally run on a fine grid, which — per
//! Fig. 8(b)'s message — beats coarse-grid exhaustive.

use acqp_bench::{assert_all_correct, costs_of, mean_by_algo, run_batch, Algo};
use acqp_core::SeqAlgorithm;
use acqp_data::lab::{self, LabConfig};
use acqp_data::workload::lab_queries;

fn main() {
    let t0 = std::time::Instant::now();
    let g = lab::generate(&LabConfig::default());
    let (train_full, test) = g.split(0.6);
    // Plan on a thinned training window (planners are linear in |D|).
    let train = train_full.thin(3);
    let n_queries: usize =
        std::env::var("ACQP_QUERIES").ok().and_then(|s| s.parse().ok()).unwrap_or(95);
    let queries = lab_queries(&g.schema, &train, n_queries, 3, 0xf18a).expect("lab workload");

    let algos = vec![
        Algo::Naive,
        Algo::CorrSeq(SeqAlgorithm::Optimal),
        Algo::Heuristic { splits: 0, grid_r: 2, base: SeqAlgorithm::Optimal },
        Algo::Heuristic { splits: 5, grid_r: 2, base: SeqAlgorithm::Optimal },
        Algo::Heuristic { splits: 10, grid_r: 2, base: SeqAlgorithm::Optimal },
        Algo::Exhaustive { grid_r: 2, budget: 1_500_000, threads: 1 },
        Algo::Heuristic { splits: 10, grid_r: 12, base: SeqAlgorithm::Optimal },
    ];

    println!("=== Figure 8(a): Lab dataset, {n_queries} three-predicate queries ===");
    println!(
        "train rows: {}, test rows: {}, attrs: {} (exhaustive at grid r=2; heuristics at r=2 and r=12)",
        train.len(),
        test.len(),
        g.schema.len()
    );
    let cells = run_batch(&g.schema, &queries, &train, &test, &algos);
    assert_all_correct(&cells);

    let exact = cells.iter().filter(|c| c.exact == Some(true)).count();
    let total_exh = cells.iter().filter(|c| c.exact.is_some()).count();
    println!("exhaustive solved to proven optimality: {exact}/{total_exh} queries\n");

    let means = mean_by_algo(&cells);
    let exh_label = "Exhaustive(r=2)";
    let exh_costs = costs_of(&cells, exh_label);
    let exh_mean = means.iter().find(|(l, _)| l == exh_label).map(|(_, c)| *c).unwrap();

    println!(
        "{:<22} {:>12} {:>16} {:>12}",
        "algorithm", "mean cost", "mean/Exhaustive", "worst/Exh"
    );
    for algo in &algos {
        let label = algo.label();
        let costs = costs_of(&cells, &label);
        let mean = costs.iter().sum::<f64>() / costs.len() as f64;
        let worst = costs
            .iter()
            .zip(&exh_costs)
            .map(|(c, e)| if *e > 0.0 { c / e } else { 1.0 })
            .fold(0.0f64, f64::max);
        println!("{label:<22} {mean:>12.2} {:>16.3} {worst:>12.3}", mean / exh_mean);
    }
    println!("\nelapsed: {:.1?}", t0.elapsed());
}
