//! Figure 8(b): the impact of split-point restriction (SPSF, §4.3) on
//! the exhaustive planner, versus `Heuristic-5` with a large SPSF.
//!
//! The paper's message: *"Exhaustive with smaller SPSF's performs
//! substantially worse than Heuristic with large SPSF's"* — restricting
//! split points too much obscures correlations, and the cheap heuristic
//! with full freedom wins. We sweep the exhaustive grid from 1 to 3
//! points per attribute (beyond that its search saturates its
//! subproblem budget; budget-capped configurations are marked) and
//! compare against `Heuristic-5` on a 12-point grid.

use acqp_bench::{assert_all_correct, costs_of, run_batch, Algo};
use acqp_core::{SeqAlgorithm, SplitGrid};
use acqp_data::lab::{self, LabConfig};
use acqp_data::workload::lab_queries;

fn main() {
    let t0 = std::time::Instant::now();
    let g = lab::generate(&LabConfig::default());
    let (train_full, test) = g.split(0.6);
    let train = train_full.thin(4);
    let n_queries: usize =
        std::env::var("ACQP_QUERIES").ok().and_then(|s| s.parse().ok()).unwrap_or(20);
    let threads: usize =
        std::env::var("ACQP_THREADS").ok().and_then(|s| s.parse().ok()).unwrap_or(1);
    let queries = lab_queries(&g.schema, &train, n_queries, 3, 0x8b).expect("lab workload");

    let heuristic = Algo::Heuristic { splits: 5, grid_r: 12, base: SeqAlgorithm::Optimal };
    let mut algos = vec![heuristic.clone()];
    for r in [1usize, 2, 3] {
        algos.push(Algo::Exhaustive { grid_r: r, budget: 700_000, threads });
    }

    println!("=== Figure 8(b): Exhaustive under shrinking SPSF vs Heuristic-5 ===");
    println!("train rows: {}, queries: {n_queries}", train.len());
    let cells = run_batch(&g.schema, &queries, &train, &test, &algos);
    assert_all_correct(&cells);

    let heur_costs = costs_of(&cells, &heuristic.label());
    let heur_mean = heur_costs.iter().sum::<f64>() / heur_costs.len() as f64;
    println!(
        "\n{:<20} {:>10} {:>12} {:>14} {:>12} {:>8}",
        "algorithm", "log10SPSF", "mean cost", "mean/Heur-5", "worst/Heur-5", "exact"
    );
    println!(
        "{:<20} {:>10.1} {:>12.2} {:>14.3} {:>12} {:>8}",
        heuristic.label(),
        SplitGrid::equal_width(&g.schema, 12).log10_spsf(),
        heur_mean,
        1.0,
        "-",
        "-"
    );
    for algo in &algos[1..] {
        let label = algo.label();
        let costs = costs_of(&cells, &label);
        let mean = costs.iter().sum::<f64>() / costs.len() as f64;
        let worst = costs
            .iter()
            .zip(&heur_costs)
            .map(|(c, h)| if *h > 0.0 { c / h } else { 1.0 })
            .fold(0.0f64, f64::max);
        let exact = cells.iter().filter(|c| c.algo == label && c.exact == Some(true)).count();
        let r = match algo {
            Algo::Exhaustive { grid_r, .. } => *grid_r,
            _ => unreachable!(),
        };
        println!(
            "{label:<20} {:>10.1} {mean:>12.2} {:>14.3} {worst:>12.3} {exact:>5}/{}",
            SplitGrid::equal_width(&g.schema, r).log10_spsf(),
            mean / heur_mean,
            queries.len()
        );
    }
    println!(
        "\npaper: constraining split points too much \"obscure[s] interesting correlations \
         in the data\"; the heuristic with a large SPSF dominates."
    );
    println!("elapsed: {:.1?}", t0.elapsed());
}
