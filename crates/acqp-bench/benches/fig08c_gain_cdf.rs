//! Figure 8(c): cumulative frequency of per-query performance gain on
//! the Lab dataset.
//!
//! "The frequency at a particular x-coordinate indicates the fraction of
//! experiments that did at least that well." Gains are the ratio of the
//! baseline's per-query test cost to the conditional plan's.

use acqp_bench::{assert_all_correct, costs_of, print_gain_cdf, run_batch, Algo};
use acqp_core::SeqAlgorithm;
use acqp_data::lab::{self, LabConfig};
use acqp_data::workload::lab_queries;

fn main() {
    let t0 = std::time::Instant::now();
    let g = lab::generate(&LabConfig::default());
    let (train_full, test) = g.split(0.6);
    let train = train_full.thin(2);
    let n_queries: usize =
        std::env::var("ACQP_QUERIES").ok().and_then(|s| s.parse().ok()).unwrap_or(95);
    let queries = lab_queries(&g.schema, &train, n_queries, 3, 0x8c).expect("lab workload");

    let algos = vec![
        Algo::Naive,
        Algo::CorrSeq(SeqAlgorithm::Optimal),
        Algo::Heuristic { splits: 10, grid_r: 12, base: SeqAlgorithm::Optimal },
    ];
    println!("=== Figure 8(c): gain CDF over {n_queries} Lab queries ===\n");
    let cells = run_batch(&g.schema, &queries, &train, &test, &algos);
    assert_all_correct(&cells);

    let naive = costs_of(&cells, "Naive");
    let corr = costs_of(&cells, "CorrSeq");
    let heur = costs_of(&cells, "Heuristic-10(r=12)");
    print_gain_cdf("Heuristic-10 vs Naive", &naive, &heur);
    println!();
    print_gain_cdf("Heuristic-10 vs CorrSeq", &corr, &heur);
    println!();
    print_gain_cdf("CorrSeq vs Naive", &naive, &corr);
    println!("\nelapsed: {:.1?}", t0.elapsed());
}
