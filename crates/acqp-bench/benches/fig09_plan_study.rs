//! Figure 9: detailed plan study — a conditional plan for the "bright,
//! cool and dry" Lab query, printed as a tree.
//!
//! The paper's narrative, reproduced by construction of the Lab twin:
//! the plan first conditions on the hour; early in the morning it
//! samples light first (the lab is dark and unused, so the light
//! predicate fails); by day it prefers temperature; late at night it
//! samples *humidity* first (HVAC is off, air is damp, the dry
//! predicate fails). Node-id splits appear when zone behaviour
//! (nodes 1–6 unused at night) separates the lighting patterns.

use acqp_core::prelude::*;
use acqp_data::lab::{self, attrs, LabConfig};

fn main() {
    let g = lab::generate(&LabConfig::default());
    let (train, test) = g.split(0.6);
    let schema = &g.schema;

    let light_d = g.discretizers[attrs::LIGHT].as_ref().unwrap();
    let temp_d = g.discretizers[attrs::TEMP].as_ref().unwrap();
    let hum_d = g.discretizers[attrs::HUMIDITY].as_ref().unwrap();
    let query = Query::checked(
        vec![
            Pred::in_range(attrs::LIGHT, light_d.quantize(350.0), light_d.bins() - 1),
            Pred::in_range(attrs::TEMP, 0, temp_d.quantize(21.0)),
            Pred::in_range(attrs::HUMIDITY, 0, hum_d.quantize(48.0)),
        ],
        schema,
    )
    .unwrap();

    let est = CountingEstimator::with_ranges(&train, Ranges::root(schema));
    let naive = SeqPlanner::naive().plan(schema, &query, &est).unwrap();
    let (plan, model_cost) = GreedyPlanner::new(6)
        .with_base(SeqAlgorithm::Optimal)
        .plan_with_cost(schema, &query, &est)
        .unwrap();

    let naive_rep = measure(&naive, &query, schema, &test);
    let cond_rep = measure(&plan, &query, schema, &test);
    assert!(naive_rep.all_correct && cond_rep.all_correct);

    println!("=== Figure 9: plan study — bright AND cool AND dry ===\n");
    println!("query: light >= 350 lux AND temp <= 21 C AND humidity <= 48 %");
    println!(
        "selectivities (train): {:?}",
        query.selectivities(&train).iter().map(|s| (s * 100.0).round() / 100.0).collect::<Vec<_>>()
    );
    println!("\nconditional plan ({} splits, {} bytes):", plan.split_count(), plan.wire_size());
    println!("{}", plan.pretty(schema, &query));
    println!("expected cost (model): {model_cost:.1}");
    println!("measured   (test set): {:.1}", cond_rep.mean_cost);
    println!("Naive      (test set): {:.1}", naive_rep.mean_cost);
    println!(
        "gain over Naive: {:.1}%  (paper reports ~20% for its Fig. 9 plan)",
        100.0 * (naive_rep.mean_cost - cond_rep.mean_cost) / naive_rep.mean_cost
    );
}
