//! Figure 11: the Garden-11 dataset — 90 queries of 22 identical range
//! (or NOT-range) predicates over every mote's temperature and
//! humidity.
//!
//! Paper's claim: "The performance improvement is even more significant
//! in this case, with a factor of 4 improvement over Naive for some of
//! the queries."

use acqp_bench::{assert_all_correct, costs_of, mean_by_algo, print_gain_cdf, run_batch, Algo};
use acqp_core::SeqAlgorithm;
use acqp_data::garden::{self, GardenConfig};
use acqp_data::workload::garden_queries_on;

fn main() {
    let t0 = std::time::Instant::now();
    let g = garden::generate(&GardenConfig { epochs: 8_000, ..GardenConfig::garden11() });
    let (train, test) = g.split(0.5);
    let n_queries: usize =
        std::env::var("ACQP_QUERIES").ok().and_then(|s| s.parse().ok()).unwrap_or(90);
    let queries =
        garden_queries_on(&g.schema, Some(&train), 11, n_queries, 0x6a11).expect("garden workload");

    let algos = vec![
        Algo::Naive,
        Algo::CorrSeq(SeqAlgorithm::Greedy),
        Algo::Heuristic { splits: 10, grid_r: 12, base: SeqAlgorithm::Greedy },
    ];
    println!("=== Figure 11: Garden-11, {n_queries} twenty-two-predicate queries ===");
    println!("train rows: {}, test rows: {}, attrs: {}\n", train.len(), test.len(), g.schema.len());
    let cells = run_batch(&g.schema, &queries, &train, &test, &algos);
    assert_all_correct(&cells);

    for (label, mean) in mean_by_algo(&cells) {
        println!("  mean test cost {label:<20} {mean:>10.2}");
    }
    println!();

    let naive = costs_of(&cells, "Naive");
    let corr = costs_of(&cells, "CorrSeq");
    let heur = costs_of(&cells, "Heuristic-10(r=12)");
    print_gain_cdf("Heuristic vs Naive", &naive, &heur);
    println!();
    print_gain_cdf("Heuristic vs CorrSeq", &corr, &heur);

    let best_gain = naive.iter().zip(&heur).map(|(n, h)| n / h).fold(0.0f64, f64::max);
    println!(
        "\nbest per-query gain over Naive: {best_gain:.2}x \
         (paper reports up to ~4x on its real forest trace)"
    );
    println!("elapsed: {:.1?}", t0.elapsed());
}
