//! Figure 12: the synthetic dataset (Babu et al. generator) for four
//! parameter settings — (Γ=1, n=10), (Γ=3, n=10), (Γ=1, n=40),
//! (Γ=3, n=40) with 5/7/20/30 query predicates respectively — plotting
//! execution cost against the unconditional selectivity `sel`.
//!
//! Paper's claims: conditional planning beats `Naive` and `CorrSeq` in
//! all four settings, by more than 2x in several; `Naive` and `CorrSeq`
//! produce nearly identical plans when Γ=1; `Heuristic-5` and
//! `Heuristic-10` nearly coincide at n=10.

use acqp_bench::{assert_all_correct, costs_of, run_batch, Algo};
use acqp_core::SeqAlgorithm;
use acqp_data::synthetic::{self, SyntheticConfig};
use acqp_data::workload::synthetic_query;

fn main() {
    let t0 = std::time::Instant::now();
    let sels = [0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];
    let rows: usize =
        std::env::var("ACQP_ROWS").ok().and_then(|s| s.parse().ok()).unwrap_or(20_000);

    for (gamma, n) in [(1usize, 10usize), (3, 10), (1, 40), (3, 40)] {
        let m = SyntheticConfig::new(n, gamma, 0.5).expensive_attrs().len();
        println!("=== Figure 12: synthetic, gamma={gamma}, n={n} ({m} predicates) ===");
        println!(
            "{:>5} {:>10} {:>10} {:>12} {:>12} {:>10} {:>10}",
            "sel", "Naive", "CorrSeq", "Heuristic-5", "Heuristic-10", "N/H10", "C/H10"
        );
        for &sel in &sels {
            let cfg = SyntheticConfig::new(n, gamma, sel).with_rows(rows).with_seed(0xf12);
            let g = synthetic::generate(&cfg);
            let (train, test) = g.split(0.5);
            let query = synthetic_query(&cfg, &g.schema);
            let algos = vec![
                Algo::Naive,
                Algo::CorrSeq(SeqAlgorithm::Greedy),
                Algo::Heuristic { splits: 5, grid_r: 0, base: SeqAlgorithm::Greedy },
                Algo::Heuristic { splits: 10, grid_r: 0, base: SeqAlgorithm::Greedy },
            ];
            let cells = run_batch(&g.schema, std::slice::from_ref(&query), &train, &test, &algos);
            assert_all_correct(&cells);
            let naive = costs_of(&cells, "Naive")[0];
            let corr = costs_of(&cells, "CorrSeq")[0];
            let h5 = costs_of(&cells, "Heuristic-5")[0];
            let h10 = costs_of(&cells, "Heuristic-10")[0];
            println!(
                "{sel:>5.1} {naive:>10.1} {corr:>10.1} {h5:>12.1} {h10:>12.1} {:>10.2} {:>10.2}",
                naive / h10,
                corr / h10
            );
        }
        println!();
    }
    println!("elapsed: {:.1?}", t0.elapsed());
}
