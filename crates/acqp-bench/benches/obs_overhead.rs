//! Observability overhead: the same Fig. 3-style exhaustive planning
//! workload timed three ways — recorder disabled, recorder live with a
//! no-op sink, and live with a JSON-lines sink to a temp file.
//!
//! Acceptance gates for the `acqp-obs` layer: the no-op-sink run and
//! the flight-recorder run must each stay within 2% of the disabled run
//! (the planner's hot loops pre-hoist every instrument, so the
//! per-subproblem cost is a handful of relaxed atomic adds; the flight
//! ring takes one mutex + a few pushes per *plan*, not per subproblem).
//! The JSON sink is allowed to cost more — it is I/O.
//!
//! Env: `ACQP_QUERIES` (default 8), `ACQP_REPS` (default 3),
//! `ACQP_GRID` (default 2; grid 3 deepens the search ~10x).

use std::sync::Arc;
use std::time::Instant;

use acqp_core::prelude::*;
use acqp_data::lab::{self, LabConfig};
use acqp_data::workload::lab_queries;
use acqp_obs::{FlightRecorder, Hist, JsonLinesSink, NoopSink, Recorder};

fn plan_all(
    schema: &Schema,
    queries: &[Query],
    est: &CountingEstimator,
    grid_r: usize,
    rec: &Recorder,
) -> (f64, Vec<u64>) {
    let t0 = Instant::now();
    let mut bits = Vec::with_capacity(queries.len());
    for query in queries {
        let report = ExhaustivePlanner::with_grid(SplitGrid::for_query(schema, query, grid_r))
            .max_subproblems(700_000)
            .with_recorder(rec.clone())
            .plan_with_report(schema, query, est)
            .expect("planning failed");
        bits.push(report.expected_cost.to_bits());
    }
    (t0.elapsed().as_secs_f64(), bits)
}

fn main() {
    let g = lab::generate(&LabConfig::default());
    let (train_full, _) = g.split(0.6);
    let train = train_full.thin(4);
    let n_queries: usize =
        std::env::var("ACQP_QUERIES").ok().and_then(|s| s.parse().ok()).unwrap_or(8);
    let reps: usize = std::env::var("ACQP_REPS").ok().and_then(|s| s.parse().ok()).unwrap_or(3);
    let grid_r: usize = std::env::var("ACQP_GRID").ok().and_then(|s| s.parse().ok()).unwrap_or(2);
    let queries = lab_queries(&g.schema, &train, n_queries, 3, 0x8b).expect("lab workload");
    let est = CountingEstimator::with_ranges(&train, Ranges::root(&g.schema));

    println!(
        "=== Observability overhead: exhaustive planner, {n_queries} queries, grid r={grid_r} ==="
    );

    // Warm-up.
    let _ = plan_all(&g.schema, &queries, &est, grid_r, &Recorder::disabled());

    // Best-of-reps per configuration, interleaved so drift hits all
    // configurations equally.
    let json_path = std::env::temp_dir().join("acqp_obs_overhead_trace.jsonl");
    let mut t_off = f64::MAX;
    let mut t_noop = f64::MAX;
    let mut t_json = f64::MAX;
    let mut t_flight = f64::MAX;
    let mut flight_events = 0u64;
    for _ in 0..reps {
        let (t, bits_off) = plan_all(&g.schema, &queries, &est, grid_r, &Recorder::disabled());
        t_off = t_off.min(t);

        let rec = Recorder::new(Arc::new(NoopSink));
        let (t, bits) = plan_all(&g.schema, &queries, &est, grid_r, &rec);
        t_noop = t_noop.min(t);
        assert_eq!(bits_off, bits, "no-op-sink recording changed a plan cost");
        drop(rec.drain());

        let sink = JsonLinesSink::create(&json_path).expect("temp trace file");
        let rec = Recorder::new(Arc::new(sink));
        let (t, bits) = plan_all(&g.schema, &queries, &est, grid_r, &rec);
        t_json = t_json.min(t);
        assert_eq!(bits_off, bits, "json-sink recording changed a plan cost");
        drop(rec.drain());

        // Flight recorder on, metrics recorder off: measures the ring
        // buffer alone against the fully disabled baseline.
        let rec = Recorder::disabled().with_flight(FlightRecorder::new(1 << 16));
        let (t, bits) = plan_all(&g.schema, &queries, &est, grid_r, &rec);
        t_flight = t_flight.min(t);
        assert_eq!(bits_off, bits, "flight recording changed a plan cost");
        flight_events = rec.flight().emitted();
    }
    let _ = std::fs::remove_file(&json_path);

    // Per-query planning-time distribution (flight recorder live), to
    // exercise the Hist percentile accessors end to end in a bench
    // artifact.
    let plan_us = Hist::new();
    let rec = Recorder::disabled().with_flight(FlightRecorder::new(1 << 16));
    for query in &queries {
        let t0 = Instant::now();
        let _ = ExhaustivePlanner::with_grid(SplitGrid::for_query(&g.schema, query, grid_r))
            .max_subproblems(700_000)
            .with_recorder(rec.clone())
            .plan_with_report(&g.schema, query, &est)
            .expect("planning failed");
        plan_us.observe(t0.elapsed().as_micros() as u64);
    }

    let pct = |t: f64| (t / t_off - 1.0) * 100.0;
    println!("\n{:<12} {:>12} {:>10}", "recorder", "wall (s)", "vs off");
    println!("{:<12} {:>12.3} {:>9}%", "disabled", t_off, "0.0");
    println!("{:<12} {:>12.3} {:>+9.1}%", "noop sink", t_noop, pct(t_noop));
    println!("{:<12} {:>12.3} {:>+9.1}%", "json sink", t_json, pct(t_json));
    println!("{:<12} {:>12.3} {:>+9.1}%", "flight ring", t_flight, pct(t_flight));
    println!(
        "\nno-op overhead {:+.2}%, flight overhead {:+.2}% (gates: < 2%); \
         costs bitwise identical in all modes",
        pct(t_noop),
        pct(t_flight)
    );
    println!(
        "per-query planning time: p50 {} us, p90 {} us, p99 {} us ({} flight events)",
        plan_us.p50(),
        plan_us.p90(),
        plan_us.p99(),
        flight_events
    );

    let fields = vec![
        ("wall_disabled_s".to_string(), t_off),
        ("wall_noop_s".to_string(), t_noop),
        ("wall_json_s".to_string(), t_json),
        ("wall_flight_s".to_string(), t_flight),
        ("noop_overhead_pct".to_string(), pct(t_noop)),
        ("json_overhead_pct".to_string(), pct(t_json)),
        ("flight_overhead_pct".to_string(), pct(t_flight)),
        ("flight_gate_pass".to_string(), if pct(t_flight) < 2.0 { 1.0 } else { 0.0 }),
        ("flight_events".to_string(), flight_events as f64),
        ("plan_us_p50".to_string(), plan_us.p50() as f64),
        ("plan_us_p90".to_string(), plan_us.p90() as f64),
        ("plan_us_p99".to_string(), plan_us.p99() as f64),
    ];
    acqp_bench::report::emit_bench_json("obs_overhead", &fields);
}
