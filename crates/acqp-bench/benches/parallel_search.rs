//! Parallel plan search: wall-clock scaling of the exhaustive planner's
//! memo-warming workers on the Fig. 8(b) workload.
//!
//! Queries are planned one at a time (no cross-query parallelism) so the
//! planner's internal thread pool is the only concurrency being
//! measured. For every query the serial and parallel searches must
//! return bitwise-identical expected costs — parallelism here is a
//! cache-warming strategy, not a different search.
//!
//! Env: `ACQP_QUERIES` (default 12), `ACQP_THREADS` (default 4).

use std::sync::Arc;
use std::time::Instant;

use acqp_core::prelude::*;
use acqp_data::lab::{self, LabConfig};
use acqp_data::workload::lab_queries;
use acqp_obs::{NoopSink, Recorder};

fn plan_all(
    schema: &Schema,
    queries: &[Query],
    est: &CountingEstimator,
    grid_r: usize,
    threads: usize,
    rec: &Recorder,
) -> (f64, Vec<u64>, usize) {
    let t0 = Instant::now();
    let mut cost_bits = Vec::with_capacity(queries.len());
    let mut truncated = 0usize;
    for query in queries {
        let report = ExhaustivePlanner::with_grid(SplitGrid::for_query(schema, query, grid_r))
            .max_subproblems(700_000)
            .threads(threads)
            .with_recorder(rec.clone())
            .plan_with_report(schema, query, est)
            .expect("planning failed");
        cost_bits.push(report.expected_cost.to_bits());
        truncated += usize::from(report.truncated);
    }
    (t0.elapsed().as_secs_f64(), cost_bits, truncated)
}

fn main() {
    let g = lab::generate(&LabConfig::default());
    let (train_full, _) = g.split(0.6);
    let train = train_full.thin(4);
    let n_queries: usize =
        std::env::var("ACQP_QUERIES").ok().and_then(|s| s.parse().ok()).unwrap_or(12);
    let threads: usize =
        std::env::var("ACQP_THREADS").ok().and_then(|s| s.parse().ok()).unwrap_or(4);
    let queries = lab_queries(&g.schema, &train, n_queries, 3, 0x8b).expect("lab workload");
    let est = CountingEstimator::with_ranges(&train, Ranges::root(&g.schema));

    println!("=== Parallel exhaustive search: threads=1 vs threads={threads} ===");
    println!("train rows: {}, queries: {n_queries}, grid r=3", train.len());

    // Warm-up pass so page cache and allocator state do not favour
    // whichever configuration runs first.
    let _ =
        plan_all(&g.schema, &queries[..queries.len().min(2)], &est, 3, 1, &Recorder::disabled());

    let rec = Recorder::new(Arc::new(NoopSink));
    let (t_serial, bits_serial, trunc_serial) = plan_all(&g.schema, &queries, &est, 3, 1, &rec);
    let (t_par, bits_par, trunc_par) = plan_all(&g.schema, &queries, &est, 3, threads, &rec);

    assert_eq!(
        bits_serial, bits_par,
        "serial and parallel searches returned different expected costs"
    );
    println!("\n{:<14} {:>12} {:>10}", "config", "wall (s)", "truncated");
    println!("{:<14} {:>12.3} {:>7}/{}", "threads=1", t_serial, trunc_serial, n_queries);
    println!("{:<14} {:>12.3} {:>7}/{}", format!("threads={threads}"), t_par, trunc_par, n_queries);
    println!(
        "\nspeedup: {:.2}x (expected costs bitwise identical on all {} queries)",
        t_serial / t_par.max(1e-9),
        n_queries
    );

    let snap = rec.drain();
    let mut fields = vec![
        ("wall_serial_s".to_string(), t_serial),
        ("wall_parallel_s".to_string(), t_par),
        ("threads".to_string(), threads as f64),
        ("queries".to_string(), n_queries as f64),
        ("speedup".to_string(), t_serial / t_par.max(1e-9)),
    ];
    fields.extend(acqp_bench::planner_rates(&snap));
    acqp_bench::report::emit_bench_json("parallel_search", &fields);
}
