//! §6.4 scalability: planner running time versus the number of query
//! predicates, attribute domain size, and the amount of historical
//! data.
//!
//! Expected complexity shapes (§6.4):
//! * heuristic — linear in |D|, linear in domain size, exponential
//!   (base 2) in the number of query predicates when `OptSeq` base
//!   plans are used (polynomial with `GreedySeq`);
//! * exhaustive — linear in |D|, polynomial in domain size, exponential
//!   in attributes with the domain size as base.
//!
//! Criterion timings; run `cargo bench -p acqp-bench --bench scalability`.

use criterion::{BenchmarkId, Criterion};
use std::time::Duration;

use acqp_core::prelude::*;
use acqp_data::synthetic::{self, SyntheticConfig};
use acqp_data::workload::synthetic_query;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A correlated dataset with `n` attributes of domain `k` and `rows`
/// tuples; attribute 0 is cheap, the rest expensive.
fn correlated(n: usize, k: u16, rows: usize, seed: u64) -> (Schema, Dataset) {
    let mut rng = StdRng::seed_from_u64(seed);
    let attrs: Vec<Attribute> = (0..n)
        .map(|i| Attribute::new(format!("x{i}"), k, if i == 0 { 1.0 } else { 100.0 }))
        .collect();
    let schema = Schema::new(attrs).unwrap();
    let data = Dataset::from_rows(
        &schema,
        (0..rows)
            .map(|_| {
                let base = rng.gen_range(0..k);
                (0..n)
                    .map(|_| {
                        let jitter = rng.gen_range(0..=k / 4);
                        (base + jitter) % k
                    })
                    .collect()
            })
            .collect(),
    )
    .unwrap();
    (schema, data)
}

fn mid_query(schema: &Schema, preds: usize) -> Query {
    let k = schema.domain(1);
    Query::checked((1..=preds).map(|a| Pred::in_range(a, k / 4, 3 * k / 4)).collect(), schema)
        .unwrap()
}

fn main() {
    let mut c = Criterion::default()
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
        .sample_size(10)
        .configure_from_args();

    // --- Heuristic vs dataset size (expect linear) ---
    {
        let mut group = c.benchmark_group("heuristic_vs_rows");
        for rows in [2_000usize, 4_000, 8_000, 16_000] {
            let (schema, data) = correlated(6, 16, rows, 1);
            let query = mid_query(&schema, 3);
            group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, _| {
                b.iter(|| {
                    let est = CountingEstimator::with_ranges(&data, Ranges::root(&schema));
                    GreedyPlanner::new(5).plan(&schema, &query, &est).unwrap()
                })
            });
        }
        group.finish();
    }

    // --- Heuristic vs domain size (expect ~linear) ---
    {
        let mut group = c.benchmark_group("heuristic_vs_domain");
        for k in [8u16, 16, 32, 64] {
            let (schema, data) = correlated(6, k, 6_000, 2);
            let query = mid_query(&schema, 3);
            group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
                b.iter(|| {
                    let est = CountingEstimator::with_ranges(&data, Ranges::root(&schema));
                    GreedyPlanner::new(5).plan(&schema, &query, &est).unwrap()
                })
            });
        }
        group.finish();
    }

    // --- Heuristic (OptSeq base) vs number of predicates (expect 2^m) ---
    {
        let mut group = c.benchmark_group("heuristic_optseq_vs_preds");
        for m in [4usize, 6, 8, 10, 12] {
            let (schema, data) = correlated(m + 1, 8, 4_000, 3);
            let query = mid_query(&schema, m);
            group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
                b.iter(|| {
                    let est = CountingEstimator::with_ranges(&data, Ranges::root(&schema));
                    GreedyPlanner::new(3)
                        .with_base(SeqAlgorithm::Optimal)
                        .plan(&schema, &query, &est)
                        .unwrap()
                })
            });
        }
        group.finish();
    }

    // --- Heuristic (GreedySeq base) vs number of predicates (polynomial) ---
    {
        let mut group = c.benchmark_group("heuristic_greedyseq_vs_preds");
        for n in [7usize, 14, 27, 40] {
            let cfg = SyntheticConfig::new(n, 3, 0.5).with_rows(4_000);
            let g = synthetic::generate(&cfg);
            let query = synthetic_query(&cfg, &g.schema);
            group.bench_with_input(BenchmarkId::from_parameter(query.len()), &n, |b, _| {
                b.iter(|| {
                    let est = CountingEstimator::with_ranges(&g.data, Ranges::root(&g.schema));
                    GreedyPlanner::new(3)
                        .with_base(SeqAlgorithm::Greedy)
                        .plan(&g.schema, &query, &est)
                        .unwrap()
                })
            });
        }
        group.finish();
    }

    // --- Exhaustive vs domain size (expect high-degree polynomial) ---
    {
        let mut group = c.benchmark_group("exhaustive_vs_domain");
        for k in [4u16, 6, 8] {
            let (schema, data) = correlated(3, k, 2_000, 4);
            let query = mid_query(&schema, 2);
            group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
                b.iter(|| {
                    let est = CountingEstimator::with_ranges(&data, Ranges::root(&schema));
                    ExhaustivePlanner::new()
                        .max_subproblems(5_000_000)
                        .plan(&schema, &query, &est)
                        .unwrap()
                })
            });
        }
        group.finish();
    }

    // --- Exhaustive vs number of attributes (expect exponential) ---
    {
        let mut group = c.benchmark_group("exhaustive_vs_attrs");
        for n in [2usize, 3, 4] {
            let (schema, data) = correlated(n, 6, 2_000, 5);
            let query = mid_query(&schema, n - 1);
            group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
                b.iter(|| {
                    let est = CountingEstimator::with_ranges(&data, Ranges::root(&schema));
                    ExhaustivePlanner::new()
                        .max_subproblems(5_000_000)
                        .plan(&schema, &query, &est)
                        .unwrap()
                })
            });
        }
        group.finish();
    }

    c.final_summary();
}
