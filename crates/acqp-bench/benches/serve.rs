//! Multi-query service workload driver (`DESIGN.md` §14): tens of
//! thousands of admissions drawn Zipf-style from a fixed query
//! population, fired at the shared-acquisition service over one fleet.
//!
//! Two scenarios, both deterministic under fixed seeds:
//!
//! * **zipf** (reported + gated) — a population of distinct Lab
//!   workload queries, admissions Zipf-distributed over it so a few
//!   hot signatures dominate — exactly the regime the signature-keyed
//!   plan cache exists for. Reports p50/p99 admission-to-first-result
//!   latency (in epochs; the service never reads a wall clock),
//!   amortized sensing µJ/query, cache hit rate, and wall-clock
//!   admission throughput. Gate: every cache hit expands *zero*
//!   plan-search subproblems.
//! * **overlap** (gated) — a handful of concurrently-live queries on
//!   overlapping attributes. Gate: the shared run's mote-side energy
//!   is *strictly below* the summed N-independent-runs baseline.
//!
//! `BENCH_serve.json` carries every reported field.

use std::time::Instant;

use acqp_core::prelude::*;
use acqp_data::{lab, workload};
use acqp_obs::Recorder;
use acqp_sensornet::{EnergyModel, ScheduleEntry};
use acqp_serve::{independent_schedule_energy, serve_schedule, ServeConfig, ServeReport};

/// Distinct query signatures in the population.
const POPULATION: usize = 48;
/// Admissions fired at the service.
const ADMISSIONS: usize = 20_000;
/// Zipf skew: weight of rank r is proportional to 1 / r^S.
const ZIPF_S: f64 = 1.1;

/// Tiny deterministic xorshift stream for admission sampling.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Cumulative Zipf distribution over ranks `1..=n`.
fn zipf_cdf(n: usize) -> Vec<f64> {
    let weights: Vec<f64> = (1..=n).map(|r| 1.0 / (r as f64).powf(ZIPF_S)).collect();
    let total: f64 = weights.iter().sum();
    let mut acc = 0.0;
    weights
        .iter()
        .map(|w| {
            acc += w / total;
            acc
        })
        .collect()
}

fn sample_rank(cdf: &[f64], u: f64) -> usize {
    cdf.iter().position(|&c| u <= c).unwrap_or(cdf.len() - 1)
}

fn zipf_scenario(fields: &mut Vec<(String, f64)>) {
    let cfg = lab::LabConfig { motes: 8, epochs: 500, seed: 0xced5, ..lab::LabConfig::small() };
    let g = lab::generate(&cfg);
    let (train, live) = g.split(0.5);
    let epochs = live.len().min(1_500);
    let population = workload::lab_queries(&g.schema, &train, POPULATION, 3, 42)
        .expect("lab workload population");
    assert_eq!(population.len(), POPULATION);

    // Tens of thousands of admissions, Zipf-skewed over the population,
    // spread across the run with short staggered observation windows.
    let cdf = zipf_cdf(POPULATION);
    let mut rng = XorShift(0x5eed | 1);
    let usable = epochs.saturating_sub(12).max(1);
    let schedule: Vec<ScheduleEntry> = (0..ADMISSIONS)
        .map(|i| {
            let rank = sample_rank(&cdf, rng.unit());
            ScheduleEntry::new(
                population[rank].clone(),
                i * usable / ADMISSIONS,
                4 + (rng.next() % 8) as usize,
            )
        })
        .collect();

    let model = EnergyModel::mica_like();
    // Loosened drift bounds: this scenario measures cache and merge
    // throughput, so invalidation storms from the Lab train/test shift
    // would only swap plan-search time in for the thing under test
    // (the overlap scenario and fault_sweep cover drift behaviour).
    let serve_cfg = ServeConfig {
        drift: DriftConfig { threshold: 0.45, min_samples: 256 },
        ..ServeConfig::default()
    };
    let t0 = Instant::now();
    let rep: ServeReport = serve_schedule(
        &g.schema,
        &train,
        &live,
        &schedule,
        2,
        &model,
        epochs,
        ExecMode::Scalar,
        serve_cfg,
        &Recorder::disabled(),
    )
    .expect("zipf service run");
    let wall = t0.elapsed().as_secs_f64();

    assert!(rep.service.all_correct(), "service verdicts diverged from ground truth");
    assert_eq!(rep.admitted, ADMISSIONS, "every admission lands inside the run");
    assert!(rep.cache_hits > 0, "a Zipf workload must hit the plan cache");
    assert_eq!(rep.hit_subproblems, 0, "cache hits must expand zero plan-search subproblems");
    assert!(rep.total_subproblems > 0 || rep.cache_misses as usize <= POPULATION);

    let hit_rate = rep.cache_hits as f64 / rep.admitted.max(1) as f64;
    let admissions_per_sec = rep.admitted as f64 / wall.max(1e-9);
    println!(
        "zipf       {ADMISSIONS} admissions over {POPULATION} signatures x {epochs} epochs: \
         {:.1}% cache hits, p50 {} / p99 {} epochs, {:.1} uJ/query sensing, {:.0} adm/s",
        100.0 * hit_rate,
        rep.p50_latency_epochs,
        rep.p99_latency_epochs,
        rep.amortized_sensing_uj_per_query,
        admissions_per_sec
    );
    fields.push(("zipf.admissions".into(), rep.admitted as f64));
    fields.push(("zipf.population".into(), POPULATION as f64));
    fields.push(("zipf.epochs".into(), epochs as f64));
    fields.push(("zipf.cache.hits".into(), rep.cache_hits as f64));
    fields.push(("zipf.cache.misses".into(), rep.cache_misses as f64));
    fields.push(("zipf.cache.hit_rate".into(), hit_rate));
    fields.push(("zipf.cache.invalidations".into(), rep.cache_invalidations as f64));
    fields.push(("zipf.cache.hit_subproblems".into(), rep.hit_subproblems as f64));
    fields.push(("zipf.plan.subproblems".into(), rep.total_subproblems as f64));
    fields.push(("zipf.admissions_per_sec".into(), admissions_per_sec));
    // Top-level aliases: the headline latency + energy numbers.
    fields.push(("p50_latency_epochs".into(), rep.p50_latency_epochs as f64));
    fields.push(("p99_latency_epochs".into(), rep.p99_latency_epochs as f64));
    fields.push(("amortized_sensing_uj_per_query".into(), rep.amortized_sensing_uj_per_query));
    fields.push(("cache_hit_gate_pass".into(), 1.0));
}

fn overlap_scenario(fields: &mut Vec<(String, f64)>) {
    let cfg = lab::LabConfig { motes: 6, epochs: 400, seed: 0xced5, ..lab::LabConfig::small() };
    let g = lab::generate(&cfg);
    let (train, live) = g.split(0.5);
    let epochs = live.len().min(240);
    let population = workload::lab_queries(&g.schema, &train, 6, 3, 7).expect("overlap population");
    // Everybody live at once over long overlapping windows.
    let schedule: Vec<ScheduleEntry> = population
        .into_iter()
        .enumerate()
        .map(|(i, query)| ScheduleEntry::new(query, i * 4, epochs))
        .collect();

    let model = EnergyModel::mica_like();
    let serve_cfg = ServeConfig::default();
    let rep = serve_schedule(
        &g.schema,
        &train,
        &live,
        &schedule,
        3,
        &model,
        epochs,
        ExecMode::Scalar,
        serve_cfg.clone(),
        &Recorder::disabled(),
    )
    .expect("overlap service run");
    let independent = independent_schedule_energy(
        &g.schema,
        &train,
        &live,
        &schedule,
        3,
        &model,
        epochs,
        ExecMode::Scalar,
        &serve_cfg,
    )
    .expect("independent baseline");

    assert!(rep.admitted >= 2, "the overlap gate needs at least two live queries");
    assert!(
        rep.shared_total_uj < independent,
        "shared-acquisition energy ({:.0} uJ) must be strictly below the \
         {}-independent-runs baseline ({independent:.0} uJ)",
        rep.shared_total_uj,
        rep.admitted
    );
    assert!(
        rep.service.performed_acquisitions < rep.service.demanded_acquisitions,
        "overlapping queries must actually share sensor reads"
    );

    let ratio = independent / rep.shared_total_uj.max(1e-9);
    println!(
        "overlap    {} concurrent queries x {epochs} epochs: shared {:.0} uJ vs \
         independent {:.0} uJ ({ratio:.2}x), {} performed / {} demanded reads",
        rep.admitted,
        rep.shared_total_uj,
        independent,
        rep.service.performed_acquisitions,
        rep.service.demanded_acquisitions
    );
    fields.push(("overlap.queries".into(), rep.admitted as f64));
    fields.push(("overlap.shared_uj".into(), rep.shared_total_uj));
    fields.push(("overlap.independent_uj".into(), independent));
    fields.push(("overlap.energy_ratio".into(), ratio));
    fields
        .push(("overlap.performed_acquisitions".into(), rep.service.performed_acquisitions as f64));
    fields.push(("overlap.demanded_acquisitions".into(), rep.service.demanded_acquisitions as f64));
    fields.push(("energy_gate_pass".into(), 1.0));
}

fn main() {
    let mut fields = Vec::new();
    zipf_scenario(&mut fields);
    overlap_scenario(&mut fields);
    println!("\nserve gates clear: zero-search cache hits, shared < independent energy");
    acqp_bench::report::emit_bench_json("serve", &fields);
}
