//! Fault-tolerant serving gates (`DESIGN.md` §14.5): the robust
//! service engine under overload, drift-under-loss, and crashes.
//!
//! Three scenarios, all deterministic under fixed seeds:
//!
//! * **overload** (gated) — admissions arrive faster than the per-epoch
//!   cost budget can carry. Gates: the shed fraction stays bounded
//!   (≤ 50%), every distinct signature still completes at least once
//!   (the fairness counter keeps the hot signature from starving the
//!   tail), and a rerun replays the exact same shed set.
//! * **drift_loss** (gated) — the `fault_sweep` marginal-shift regime
//!   driven through the service: training marginals reversed on the
//!   live trace, lossy links, windowed re-admissions of one query.
//!   The adaptive planner re-plans onto fresh statistics when its
//!   drift monitor fires (and `readmit_on_drift` re-plans in-flight
//!   queries); the stale planner never does. Gate: adaptive mote-side
//!   sensing energy strictly below stale at every nonzero loss rate.
//! * **crash** (gated) — a mid-schedule basestation crash with
//!   checkpointing on. Gate: recovery restores the serve state from
//!   checkpoint + WAL (no cold start) and the schedule completes.
//!
//! `BENCH_serve_faults.json` carries every reported field.

use std::collections::BTreeMap;

use acqp_core::prelude::*;
use acqp_core::{DriftConfig, Error};
use acqp_obs::Recorder;
use acqp_sensornet::service::{AdmittedPlan, ServePlanner, ServiceOptions};
use acqp_sensornet::sim::fleet_from_trace;
use acqp_sensornet::{
    run_service_with, Basestation, CrashConfig, EnergyModel, FaultModel, PlannedQuery,
    ScheduleEntry, ServicePolicy,
};
use acqp_serve::{serve_schedule, ServeConfig};

const FAULT_SEED: u64 = 0x5eed;

/// The marginal-shift scenario from `fault_sweep`: history has pred-`a`
/// passing 90% and pred-`b` 10% (the planner fronts `b`), the live
/// trace reverses the two, so the stale plan acquires both expensive
/// sensors almost every epoch.
fn drift_scenario(epochs: usize) -> (Schema, Dataset, Dataset, Query) {
    let schema = Schema::new(vec![
        Attribute::new("a", 2, 100.0),
        Attribute::new("b", 2, 100.0),
        Attribute::new("t", 2, 1.0),
    ])
    .unwrap();
    let hist_rows: Vec<Vec<u16>> =
        (0..400u16).map(|i| vec![u16::from(i % 10 != 0), u16::from(i % 10 == 0), i % 2]).collect();
    // `i % 20 == 13` rows pass both predicates, so the run produces a
    // thin stream of results for the loss model to act on.
    let live_rows: Vec<Vec<u16>> = (0..epochs as u16)
        .map(|i| vec![u16::from(i % 10 == 0 || i % 20 == 13), u16::from(i % 10 != 0), i % 2])
        .collect();
    let hist = Dataset::from_rows(&schema, hist_rows).unwrap();
    let live = Dataset::from_rows(&schema, live_rows).unwrap();
    let query = Query::new(vec![Pred::in_range(0, 1, 1), Pred::in_range(1, 1, 1)]).unwrap();
    (schema, hist, live, query)
}

/// A caching planner over two statistics sources: `stale` (training
/// history) and, once its drift monitor fires, `fresh` (live-trace
/// statistics — what a basestation's live sample window converges to).
/// With `adaptive` off it is the stale baseline: drift never fires and
/// every plan comes from training statistics.
struct SweepPlanner<'h> {
    stale: Basestation<'h>,
    fresh: Basestation<'h>,
    drift: DriftConfig,
    cache: BTreeMap<(u64, u64), PlannedQuery>,
    monitors: BTreeMap<u64, DriftMonitor>,
    stats_epoch: u64,
    adaptive: bool,
}

impl<'h> SweepPlanner<'h> {
    fn new(stale: Basestation<'h>, fresh: Basestation<'h>, adaptive: bool) -> Self {
        SweepPlanner {
            stale,
            fresh,
            drift: DriftConfig { threshold: 0.2, min_samples: 16 },
            cache: BTreeMap::new(),
            monitors: BTreeMap::new(),
            stats_epoch: 0,
            adaptive,
        }
    }

    fn bs(&self) -> &Basestation<'h> {
        if self.stats_epoch > 0 {
            &self.fresh
        } else {
            &self.stale
        }
    }
}

impl ServePlanner for SweepPlanner<'_> {
    fn plan_admitted(&mut self, query: &Query, _epoch: usize) -> Result<AdmittedPlan> {
        let sig = query.signature();
        if let Some(planned) = self.cache.get(&(sig, self.stats_epoch)) {
            return Ok(AdmittedPlan { planned: planned.clone(), cache_hit: true, subproblems: 0 });
        }
        let (_, planned, subproblems) = self.bs().plan_query_sized_reported(query, 0.0, &[4])?;
        self.cache.insert((sig, self.stats_epoch), planned.clone());
        if !self.monitors.contains_key(&sig) {
            let monitor = DriftMonitor::new(self.bs().estimated_selectivities(query), self.drift)?;
            self.monitors.insert(sig, monitor);
        }
        Ok(AdmittedPlan { planned, cache_hit: false, subproblems })
    }

    fn query_completed(&mut self, query: &Query, _epoch: usize, pred_counts: &[(u64, u64)]) -> u64 {
        if !self.adaptive {
            return 0;
        }
        let sig = query.signature();
        let Some(monitor) = self.monitors.get_mut(&sig) else { return 0 };
        for (j, &(evaluated, passed)) in pred_counts.iter().enumerate() {
            if j < monitor.len() && evaluated > 0 && passed <= evaluated {
                monitor.observe_counts(j, evaluated, passed);
            }
        }
        if !monitor.drifted() || self.stats_epoch > 0 {
            return 0;
        }
        let invalidated = self.cache.len() as u64;
        self.cache.clear();
        self.stats_epoch += 1;
        let sels = self.fresh.estimated_selectivities(query);
        self.monitors.get_mut(&sig).expect("armed above").reset(sels);
        invalidated
    }

    fn stats_epoch(&self) -> u64 {
        self.stats_epoch
    }
}

fn drift_loss_point(loss: f64, adaptive: bool) -> (f64, f64, usize, u64) {
    const EPOCHS: usize = 400;
    let (schema, hist, live, query) = drift_scenario(EPOCHS);
    // Two staggered series of windowed re-admissions: every completion
    // feeds the drift monitor, every admission re-reads the (possibly
    // invalidated) plan cache, and the 8-epoch offset keeps one window
    // in flight whenever drift fires — the `readmit_on_drift` path.
    let mut schedule = Vec::new();
    for i in 0..EPOCHS / 16 {
        schedule.push(ScheduleEntry::new(query.clone(), i * 16, 16));
        schedule.push(ScheduleEntry::new(query.clone(), i * 16 + 8, 16));
    }
    let stale_bs = Basestation::new(schema.clone(), &hist);
    let fresh_bs = Basestation::new(schema.clone(), &live);
    let mut planner = SweepPlanner::new(stale_bs, fresh_bs, adaptive);
    let mut fleet = fleet_from_trace(&live, 4);
    let opts = ServiceOptions {
        faults: FaultModel::lossy(FAULT_SEED, loss),
        policy: ServicePolicy { readmit_on_drift: adaptive, ..ServicePolicy::default() },
        ..ServiceOptions::default()
    };
    let rep = run_service_with(
        &schema,
        &schedule,
        &mut planner,
        &mut fleet,
        &EnergyModel::mica_like(),
        EPOCHS,
        ExecMode::Scalar,
        &Recorder::disabled(),
        &opts,
    )
    .expect("drift-loss service run");
    assert!(rep.all_correct(), "verdicts diverged at loss {loss} (adaptive {adaptive})");
    let rob = rep.robustness.as_ref().expect("fault model forces the robust path");
    (rep.network.sensing_uj, rep.network.total_uj(), rob.delivered_results, rob.readmissions)
}

fn drift_loss_scenario(fields: &mut Vec<(String, f64)>) {
    println!(
        "\n{:<6} {:>16} {:>16} {:>12} {:>10}",
        "loss", "stale uJ sense", "adapt uJ sense", "adapt deliv", "readmits"
    );
    let mut gate = true;
    let mut readmitted = false;
    for &loss in &[0.05, 0.10, 0.20] {
        let (stale_uj, stale_total, stale_deliv, _) = drift_loss_point(loss, false);
        let (adapt_uj, adapt_total, adapt_deliv, readmits) = drift_loss_point(loss, true);
        println!("{loss:<6.2} {stale_uj:>16.0} {adapt_uj:>16.0} {adapt_deliv:>12} {readmits:>10}");
        let tag = format!("drift.loss_{loss:.2}");
        fields.push((format!("{tag}.stale.sensing_uj"), stale_uj));
        fields.push((format!("{tag}.adaptive.sensing_uj"), adapt_uj));
        fields.push((format!("{tag}.stale.total_uj"), stale_total));
        fields.push((format!("{tag}.adaptive.total_uj"), adapt_total));
        fields.push((format!("{tag}.stale.delivered"), stale_deliv as f64));
        fields.push((format!("{tag}.adaptive.delivered"), adapt_deliv as f64));
        fields.push((format!("{tag}.adaptive.readmissions"), readmits as f64));
        gate &= adapt_uj < stale_uj;
        readmitted |= readmits > 0;
    }
    assert!(
        gate,
        "adaptive serve sensing energy must be strictly below the stale-plan serve \
         at every nonzero loss rate"
    );
    assert!(readmitted, "drift must re-plan at least one in-flight query");
    fields.push(("adaptive_energy_gate_pass".into(), 1.0));
}

/// Overload: one expensive hot signature fired every two epochs against
/// a budget that carries roughly one live instance, interleaved with a
/// cheap tail signature the fairness counter must keep alive.
fn overload_scenario(fields: &mut Vec<(String, f64)>) {
    const EPOCHS: usize = 200;
    let (schema, hist, live, hot) = drift_scenario(EPOCHS);
    let tail = Query::new(vec![Pred::in_range(2, 1, 1)]).unwrap();
    let mut schedule = Vec::new();
    for i in 0..40 {
        schedule.push(ScheduleEntry::new(hot.clone(), i * 4, 10));
        if i % 4 == 0 {
            schedule.push(ScheduleEntry::new(tail.clone(), i * 4 + 1, 10));
        }
    }
    let run = || {
        serve_schedule(
            &schema,
            &hist,
            &live,
            &schedule,
            4,
            &EnergyModel::mica_like(),
            EPOCHS,
            ExecMode::Scalar,
            ServeConfig {
                policy: ServicePolicy {
                    epoch_cost_budget: Some(130.0),
                    max_queue_epochs: 6,
                    fair_share: 1,
                    ..ServicePolicy::default()
                },
                ..ServeConfig::default()
            },
            &Recorder::disabled(),
        )
        .expect("overload service run")
    };
    let rep = run();
    let rerun = run();

    let scheduled = schedule.len();
    let shed_frac = rep.shed as f64 / scheduled as f64;
    let rob = rep.service.robustness.as_ref().expect("budget forces the robust path");
    assert!(rep.shed > 0, "the overload scenario must actually shed");
    assert!(
        shed_frac <= 0.5,
        "shed fraction must stay bounded: {}/{scheduled} = {shed_frac:.2}",
        rep.shed
    );
    for (name, query) in [("hot", &hot), ("tail", &tail)] {
        let done = rep
            .service
            .queries
            .iter()
            .zip(&schedule)
            .filter(|(q, s)| &s.query == query && q.status == QueryStatus::Complete)
            .count();
        assert!(done > 0, "{name} signature starved: zero completions");
        fields.push((format!("overload.{name}.completed"), done as f64));
    }
    // Deterministic shedding: the rerun replays the exact outcome set.
    for (i, (a, b)) in rep.service.queries.iter().zip(&rerun.service.queries).enumerate() {
        assert_eq!(a.status, b.status, "q{i}: shed decisions must replay");
        assert_eq!(a.shed_at, b.shed_at, "q{i}: shed epoch must replay");
    }

    println!(
        "overload   {scheduled} admissions, budget 130 uJ/epoch: {} shed ({:.0}%), \
         {} deferrals ({} fairness), all signatures served",
        rep.shed,
        100.0 * shed_frac,
        rob.budget_deferrals,
        rob.fairness_deferrals
    );
    fields.push(("overload.scheduled".into(), scheduled as f64));
    fields.push(("overload.shed".into(), rep.shed as f64));
    fields.push(("overload.shed_fraction".into(), shed_frac));
    fields.push(("overload.budget_deferrals".into(), rob.budget_deferrals as f64));
    fields.push(("overload.fairness_deferrals".into(), rob.fairness_deferrals as f64));
    fields.push(("shed_fairness_gate_pass".into(), 1.0));
}

/// Mid-schedule crash: checkpoint + WAL recovery must avoid a cold
/// start and the schedule must still complete with correct verdicts.
fn crash_scenario(fields: &mut Vec<(String, f64)>) {
    const EPOCHS: usize = 120;
    let (schema, hist, live, query) = drift_scenario(EPOCHS);
    let tail = Query::new(vec![Pred::in_range(2, 1, 1)]).unwrap();
    let schedule = vec![
        ScheduleEntry::new(query.clone(), 0, EPOCHS),
        ScheduleEntry::new(tail, 10, 60),
        ScheduleEntry::new(query, 30, 40),
    ];
    let dir = std::env::temp_dir().join("acqp_bench_serve_faults_ckpt");
    std::fs::remove_dir_all(&dir).ok();
    let rep = serve_schedule(
        &schema,
        &hist,
        &live,
        &schedule,
        4,
        &EnergyModel::mica_like(),
        EPOCHS,
        ExecMode::Scalar,
        ServeConfig {
            crash: CrashConfig {
                checkpoint_dir: Some(dir.clone()),
                checkpoint_every: 8,
                // Off the checkpoint cadence, so recovery must replay a
                // WAL tail on top of the snapshot.
                crash_epochs: vec![43],
                crash_rate: 0.0,
            },
            ..ServeConfig::default()
        },
        &Recorder::disabled(),
    )
    .expect("crashy service run");
    std::fs::remove_dir_all(&dir).ok();

    let rob = rep.service.robustness.as_ref().expect("crash config forces the robust path");
    assert_eq!(rob.crashes, 1, "exactly one crash is scheduled");
    assert_eq!(rob.cold_starts, 0, "recovery must restore from checkpoint + WAL");
    assert!(rob.checkpoints_written >= 2);
    assert!(rob.wal_replayed > 0, "an off-cadence crash must replay a WAL tail");
    assert!(rob.recovery_rediss_uj > 0.0, "re-dissemination must be charged");
    assert!(rep.service.all_correct(), "recovered run must still verify");
    let complete = rep.service.queries.iter().all(|q| q.status == QueryStatus::Complete);
    assert!(complete, "every scheduled query must complete across the crash");

    println!(
        "crash      1 injected at epoch 43: {} checkpoints, {} WAL records replayed, \
         0 cold starts, re-dissemination {:.0} uJ",
        rob.checkpoints_written, rob.wal_replayed, rob.recovery_rediss_uj
    );
    fields.push(("crash.crashes".into(), rob.crashes as f64));
    fields.push(("crash.cold_starts".into(), rob.cold_starts as f64));
    fields.push(("crash.checkpoints_written".into(), rob.checkpoints_written as f64));
    fields.push(("crash.wal_replayed".into(), rob.wal_replayed as f64));
    fields.push(("crash.recovery_rediss_uj".into(), rob.recovery_rediss_uj));
    fields.push(("crash_recovery_gate_pass".into(), 1.0));
}

fn main() -> std::result::Result<(), Error> {
    println!("=== Fault-tolerant serving: overload, drift under loss, crashes ===");
    let mut fields = Vec::new();
    overload_scenario(&mut fields);
    drift_loss_scenario(&mut fields);
    crash_scenario(&mut fields);
    println!(
        "\nserve fault gates clear: bounded fair shedding, adaptive < stale energy \
         under loss, crash recovery without cold start"
    );
    acqp_bench::report::emit_bench_json("serve_faults", &fields);
    Ok(())
}
