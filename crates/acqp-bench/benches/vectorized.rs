//! Vectorized executor throughput gate: historical-trace replay through
//! the columnar batch path (`DESIGN.md` §12) against the seed per-tuple
//! interpreter.
//!
//! Two replay scenarios:
//!
//! * **synthetic** (gated) — the §6.3 all-expensive conjunction over a
//!   wide correlated schema. Many predicates per tuple is where the
//!   per-tuple interpreter pays its fixed costs (tuple-state
//!   allocation, tree pointer chases, per-acquisition cost-model
//!   calls) over and over, and where the batch path amortizes all of
//!   them across a column window.
//! * **lab** (reported) — the §6.1 three-predicate Lab workload under a
//!   conditional plan, closer to the narrow-query regime.
//!
//! Both paths replay the identical held-out window and must produce
//! bitwise-identical [`CostReport`]s — correctness is asserted before
//! any clock is trusted, so the timing numbers can never come from
//! divergent work. Timing takes the best of several full-replay passes
//! (min, not mean: the minimum is the least-noisy estimator of the
//! true cost on a shared machine).
//!
//! Acceptance gate: vectorized replay sustains at least 10x the scalar
//! path's tuples/sec on the synthetic conjunction.

use std::time::Instant;

use acqp_core::prelude::*;
use acqp_data::replay::replay_trace;
use acqp_data::synthetic::SyntheticConfig;
use acqp_data::{lab, synthetic, workload};

const PASSES: usize = 7;
const GATE: f64 = 10.0;

struct Scenario {
    name: &'static str,
    schema: Schema,
    live: Dataset,
    plan: Plan,
    query: Query,
}

fn synthetic_scenario() -> Scenario {
    let cfg = SyntheticConfig::new(24, 3, 0.95).with_rows(80_000).with_seed(0xbeef);
    let g = synthetic::generate(&cfg);
    let (train, live) = g.split(0.5);
    let query = workload::synthetic_query(&cfg, &g.schema);
    let est = CountingEstimator::new(&train);
    // CorrSeq (§4.1): the correlation-aware sequential plan — the wide
    // conjunction replays through the dense root-leaf sweep.
    let plan = SeqPlanner::auto().plan(&g.schema, &query, &est).expect("planning").simplify();
    Scenario { name: "synthetic", schema: g.schema, live, plan, query }
}

fn lab_scenario() -> Scenario {
    let cfg = lab::LabConfig { motes: 10, epochs: 4_000, seed: 0xbeef, ..lab::LabConfig::small() };
    let g = lab::generate(&cfg);
    let (train, live) = g.split(0.5);
    let query = workload::lab_queries(&g.schema, &train, 1, 3, 42)
        .expect("lab workload")
        .pop()
        .expect("workload query");
    let est = CountingEstimator::new(&train);
    let plan = GreedyPlanner::new(8).plan(&g.schema, &query, &est).expect("planning").simplify();
    Scenario { name: "lab", schema: g.schema, live, plan, query }
}

fn best_tuples_per_sec(sc: &Scenario, mode: ExecMode) -> (f64, CostReport) {
    let model = CostModel::PerAttribute;
    let mut best = f64::INFINITY;
    let mut report = replay_trace(&sc.plan, &sc.query, &sc.schema, &model, &sc.live, mode);
    for _ in 0..PASSES {
        let t0 = Instant::now();
        report = replay_trace(&sc.plan, &sc.query, &sc.schema, &model, &sc.live, mode);
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (sc.live.len() as f64 / best.max(1e-12), report)
}

/// Times both paths, asserts their reports are bitwise-identical, and
/// returns the speedup after pushing this scenario's numbers.
fn run_scenario(sc: &Scenario, fields: &mut Vec<(String, f64)>) -> f64 {
    let (scalar_tps, s) = best_tuples_per_sec(sc, ExecMode::Scalar);
    let (vec_tps, v) = best_tuples_per_sec(sc, ExecMode::Vectorized);

    // Equal work or the clocks mean nothing.
    assert!(s.all_correct && v.all_correct);
    assert_eq!(s.tuples, v.tuples);
    assert_eq!(s.mean_cost.to_bits(), v.mean_cost.to_bits(), "{}: paths diverged", sc.name);
    assert_eq!(s.max_cost.to_bits(), v.max_cost.to_bits());
    assert_eq!(s.pass_rate.to_bits(), v.pass_rate.to_bits());

    let speedup = vec_tps / scalar_tps.max(1e-12);
    println!(
        "{:<10} {:>7} rows {:>2} preds {:>2} splits {:>14.0} scalar t/s {:>14.0} vec t/s {:>7.1}x",
        sc.name,
        sc.live.len(),
        sc.query.len(),
        sc.plan.split_count(),
        scalar_tps,
        vec_tps,
        speedup
    );
    fields.push((format!("{}.rows", sc.name), sc.live.len() as f64));
    fields.push((format!("{}.scalar.tuples_per_sec", sc.name), scalar_tps));
    fields.push((format!("{}.vectorized.tuples_per_sec", sc.name), vec_tps));
    fields.push((format!("{}.speedup", sc.name), speedup));
    speedup
}

fn main() {
    let mut fields = Vec::new();
    let gated = run_scenario(&synthetic_scenario(), &mut fields);
    // Top-level aliases for the gated scenario.
    let gated_tps =
        fields.iter().find(|(k, _)| k == "synthetic.vectorized.tuples_per_sec").map(|(_, v)| *v);
    fields.push(("speedup".to_string(), gated));
    fields.push(("tuples_per_sec".to_string(), gated_tps.unwrap_or(0.0)));
    run_scenario(&lab_scenario(), &mut fields);

    assert!(
        gated >= GATE,
        "vectorized replay must sustain >= {GATE}x scalar tuples/sec \
         on the synthetic conjunction, got {gated:.1}x"
    );
    println!("\nvectorized replay clears the {GATE}x gate");

    acqp_bench::report::emit_bench_json("vectorized", &fields);
}
