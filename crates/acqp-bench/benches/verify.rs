//! Static-verifier throughput and the certificate-gated interpreter
//! fast path (`DESIGN.md` §15).
//!
//! Two measurements over the Lab workload:
//!
//! * **verification throughput** — full three-pass `verify_wire` runs
//!   per second over a planner-produced corpus. This is the cost the
//!   basestation pays once per dissemination and once per recovered
//!   checkpoint plan; it should be microscopic next to planning.
//! * **checked vs certified interpretation** — per-tuple trace replay
//!   through `execute_wire` (per-leaf validation + order allocation on
//!   every tuple) against `execute_wire_verified` (validation hoisted
//!   into the one-time certificate, stack-staged order). Both paths
//!   replay the identical held-out window and must agree bitwise on
//!   verdicts and costs before any clock is trusted.
//!
//! Acceptance gate (lenient — the fast path removes per-tuple work but
//! both interpreters are already cheap next to acquisition): the
//! certified path sustains at least 0.9x the checked path's tuples/sec,
//! i.e. hoisting validation never *costs* throughput.

use std::time::Instant;

use acqp_core::prelude::*;
use acqp_data::synthetic::SyntheticConfig;
use acqp_data::{lab, synthetic, workload};
use acqp_sensornet::interp::{execute_wire, execute_wire_verified};
use acqp_verify::verify_wire;

const PASSES: usize = 7;
const GATE: f64 = 0.9;

struct Scenario {
    label: String,
    schema: Schema,
    live: Dataset,
    query: Query,
    wire: Vec<u8>,
}

fn scenarios() -> Vec<Scenario> {
    let mut out = Vec::new();

    // Lab: narrow three-predicate queries, sequential and conditional.
    let cfg = lab::LabConfig { motes: 10, epochs: 4_000, seed: 0xbeef, ..lab::LabConfig::small() };
    let g = lab::generate(&cfg);
    let (train, live) = g.split(0.5);
    let est = CountingEstimator::new(&train);
    let queries = workload::lab_queries(&g.schema, &train, 2, 3, 42).expect("lab workload");
    for (qi, query) in queries.into_iter().enumerate() {
        for (tag, k) in [("seq", 0usize), ("cond", 8)] {
            let plan = GreedyPlanner::new(k).plan(&g.schema, &query, &est).expect("planning");
            out.push(Scenario {
                label: format!("lab.q{qi}.{tag}"),
                schema: g.schema.clone(),
                live: live.clone(),
                query: query.clone(),
                wire: plan.encode(),
            });
        }
    }

    // Synthetic §6.3 wide conjunction: a 24-predicate leaf is where the
    // checked path's per-tuple body validation and order allocation
    // actually cost something.
    let cfg = SyntheticConfig::new(24, 3, 0.95).with_rows(20_000).with_seed(0xbeef);
    let g = synthetic::generate(&cfg);
    let (train, live) = g.split(0.5);
    let query = workload::synthetic_query(&cfg, &g.schema);
    let est = CountingEstimator::new(&train);
    let plan = SeqPlanner::auto().plan(&g.schema, &query, &est).expect("planning").simplify();
    out.push(Scenario {
        label: "wide.seq".to_string(),
        schema: g.schema,
        live,
        query,
        wire: plan.encode(),
    });

    out
}

/// Best-of-`PASSES` full-corpus verification rate: (plans/sec,
/// wire bytes/sec).
fn verify_throughput(scs: &[Scenario]) -> (f64, f64) {
    let bytes: usize = scs.iter().map(|s| s.wire.len()).sum();
    let mut best = f64::INFINITY;
    for _ in 0..PASSES {
        let t0 = Instant::now();
        for sc in scs {
            let cert = verify_wire(&sc.wire, &sc.query, &sc.schema).expect("corpus verifies");
            assert!(cert.bound.best_case <= cert.bound.worst_case);
        }
        best = best.min(t0.elapsed().as_secs_f64());
    }
    let per_sec = scs.len() as f64 / best.max(1e-12);
    (per_sec, bytes as f64 / best.max(1e-12))
}

/// Replays the live window through one interpreter, returning best-of
/// tuples/sec and the summed cost for the equal-work assertion.
fn replay_tuples_per_sec(sc: &Scenario, verified: bool) -> (f64, f64) {
    let mut best = f64::INFINITY;
    let mut total = 0.0f64;
    for _ in 0..PASSES {
        let t0 = Instant::now();
        let mut sum = 0.0f64;
        for r in 0..sc.live.len() {
            let mut src = RowSource::new(&sc.live, r);
            let out = if verified {
                execute_wire_verified(&sc.wire, &sc.query, &sc.schema, &mut src)
            } else {
                execute_wire(&sc.wire, &sc.query, &sc.schema, &mut src).expect("valid wire")
            };
            sum += out.cost;
        }
        best = best.min(t0.elapsed().as_secs_f64());
        total = sum;
    }
    (sc.live.len() as f64 / best.max(1e-12), total)
}

fn main() {
    let scs = scenarios();
    let mut fields = Vec::new();

    let (plans_per_sec, bytes_per_sec) = verify_throughput(&scs);
    println!(
        "verify_wire: {:>4} plans {:>14.0} plans/s {:>14.0} wire bytes/s",
        scs.len(),
        plans_per_sec,
        bytes_per_sec
    );
    fields.push(("verify.plans_per_sec".to_string(), plans_per_sec));
    fields.push(("verify.wire_bytes_per_sec".to_string(), bytes_per_sec));

    // Differential before the clocks: both interpreters agree bitwise
    // on every row of every scenario.
    for sc in &scs {
        for r in 0..sc.live.len() {
            let checked =
                execute_wire(&sc.wire, &sc.query, &sc.schema, &mut RowSource::new(&sc.live, r))
                    .expect("valid wire");
            let fast = execute_wire_verified(
                &sc.wire,
                &sc.query,
                &sc.schema,
                &mut RowSource::new(&sc.live, r),
            );
            assert_eq!(checked.verdict, fast.verdict, "{} row {r}", sc.label);
            assert_eq!(checked.cost.to_bits(), fast.cost.to_bits(), "{} row {r}", sc.label);
        }
    }

    let mut worst_ratio = f64::INFINITY;
    for sc in &scs {
        let (checked_tps, checked_cost) = replay_tuples_per_sec(sc, false);
        let (fast_tps, fast_cost) = replay_tuples_per_sec(sc, true);
        assert_eq!(checked_cost.to_bits(), fast_cost.to_bits(), "{}: unequal work", sc.label);
        let ratio = fast_tps / checked_tps.max(1e-12);
        worst_ratio = worst_ratio.min(ratio);
        println!(
            "{:<10} {:>3} wire bytes {:>14.0} checked t/s {:>14.0} certified t/s {:>6.2}x",
            sc.label,
            sc.wire.len(),
            checked_tps,
            fast_tps,
            ratio
        );
        fields.push((format!("{}.checked.tuples_per_sec", sc.label), checked_tps));
        fields.push((format!("{}.certified.tuples_per_sec", sc.label), fast_tps));
        fields.push((format!("{}.speedup", sc.label), ratio));
    }
    fields.push(("speedup.worst".to_string(), worst_ratio));

    assert!(
        worst_ratio >= GATE,
        "certificate-gated interpretation must sustain >= {GATE}x the checked \
         path's tuples/sec on every scenario, got {worst_ratio:.2}x"
    );
    println!("\ncertified fast path clears the {GATE}x gate (worst {worst_ratio:.2}x)");

    acqp_bench::report::emit_bench_json("verify", &fields);
}
