//! # acqp-bench — reproduction harness for the ICDE 2005 evaluation
//!
//! Shared machinery for the per-figure bench targets: a catalogue of the
//! paper's algorithms ([`Algo`]), a parallel per-query experiment runner
//! ([`run_batch`]), and small table/CDF printers so every bench prints
//! rows comparable to the paper's figures.
//!
//! Every bench target in `benches/` is `harness = false`: it regenerates
//! one figure or table deterministically and prints it. Run them all
//! with `cargo bench -p acqp-bench`.

// Determinism tests assert bitwise-equal floats on purpose; the
// workspace-level `float_cmp` warning stays on for library code.
#![cfg_attr(test, allow(clippy::float_cmp))]

use acqp_core::prelude::*;

pub mod report;

pub use report::{emit_bench_json, write_bench_json};

/// An algorithm under evaluation, matching the names used in §6.
#[derive(Debug, Clone)]
pub enum Algo {
    /// §4.1.1's traditional optimizer (marginal selectivities).
    Naive,
    /// `CorrSeq`: correlation-aware sequential plan; the paper uses
    /// `OptSeq` when the query is small and `GreedySeq` otherwise, which
    /// is exactly [`SeqAlgorithm::Auto`].
    CorrSeq(SeqAlgorithm),
    /// `Heuristic-k`: the greedy conditional planner with at most
    /// `splits` conditioning predicates, candidate cuts on an
    /// equal-width grid of `grid_r` points per attribute.
    Heuristic {
        /// Maximum number of conditioning splits (the `k`).
        splits: usize,
        /// Split points per attribute (§4.3); `0` = unrestricted.
        grid_r: usize,
        /// Base sequential algorithm for leaf plans.
        base: SeqAlgorithm,
    },
    /// The exhaustive planner of Fig. 5 on a `grid_r`-point grid with a
    /// subproblem budget.
    Exhaustive {
        /// Split points per attribute.
        grid_r: usize,
        /// Subproblem budget before greedy-leaf fallback.
        budget: usize,
        /// Worker threads for memo warming (`1` = serial search).
        threads: usize,
    },
}

impl Algo {
    /// Display label, in the paper's vocabulary. Grid-restricted
    /// heuristics carry their grid so labels stay unique within a batch.
    pub fn label(&self) -> String {
        match self {
            Algo::Naive => "Naive".into(),
            Algo::CorrSeq(_) => "CorrSeq".into(),
            Algo::Heuristic { splits, grid_r: 0, .. } => format!("Heuristic-{splits}"),
            Algo::Heuristic { splits, grid_r, .. } => format!("Heuristic-{splits}(r={grid_r})"),
            Algo::Exhaustive { grid_r, .. } => format!("Exhaustive(r={grid_r})"),
        }
    }

    /// Builds the plan for `query` from `train`-fitted statistics.
    /// The second return is `Some(true)` when an exhaustive search
    /// completed within budget (the plan is provably optimal under its
    /// grid), `Some(false)` when it was budget-truncated, `None` for
    /// non-exhaustive algorithms.
    pub fn plan(
        &self,
        schema: &Schema,
        query: &Query,
        train: &Dataset,
    ) -> Result<(Plan, Option<bool>)> {
        let est = CountingEstimator::with_ranges(train, Ranges::root(schema));
        match self {
            Algo::Naive => Ok((SeqPlanner::naive().plan(schema, query, &est)?, None)),
            Algo::CorrSeq(algo) => Ok((SeqPlanner::new(*algo).plan(schema, query, &est)?, None)),
            Algo::Heuristic { splits, grid_r, base } => {
                let mut p = GreedyPlanner::new(*splits).with_base(*base);
                if *grid_r > 0 {
                    p = p.with_grid(SplitGrid::for_query(schema, query, *grid_r));
                }
                Ok((p.plan(schema, query, &est)?, None))
            }
            Algo::Exhaustive { grid_r, budget, threads } => {
                let grid = SplitGrid::for_query(schema, query, *grid_r);
                let report = ExhaustivePlanner::with_grid(grid)
                    .max_subproblems(*budget)
                    .threads(*threads)
                    .plan_with_report(schema, query, &est)?;
                Ok((report.plan, Some(!report.truncated)))
            }
        }
    }
}

/// Result of one (query, algorithm) cell.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Which query in the batch.
    pub query_idx: usize,
    /// Algorithm label.
    pub algo: String,
    /// Mean per-tuple cost on the (disjoint) test window.
    pub test_cost: f64,
    /// Mean per-tuple cost on the training window.
    pub train_cost: f64,
    /// Conditioning splits in the produced plan.
    pub splits: usize,
    /// Wire size `ζ(P)` in bytes.
    pub wire_size: usize,
    /// Whether the plan was correct on every train and test tuple.
    pub correct: bool,
    /// For exhaustive cells: whether the search completed within budget
    /// (plan provably optimal under its grid).
    pub exact: Option<bool>,
}

/// Runs every algorithm on every query, train→plan / test→measure, in
/// parallel over queries.
pub fn run_batch(
    schema: &Schema,
    queries: &[Query],
    train: &Dataset,
    test: &Dataset,
    algos: &[Algo],
) -> Vec<Cell> {
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get()).min(16);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let cells = NoPoisonMutex::new(Vec::<Cell>::new());
    crossbeam::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|_| loop {
                let qi = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if qi >= queries.len() {
                    break;
                }
                let query = &queries[qi];
                let mut local = Vec::with_capacity(algos.len());
                for algo in algos {
                    let (plan, exact) = algo
                        .plan(schema, query, train)
                        .unwrap_or_else(|e| panic!("{} failed on query {qi}: {e}", algo.label()));
                    let tr = measure(&plan, query, schema, train);
                    let te = measure(&plan, query, schema, test);
                    local.push(Cell {
                        query_idx: qi,
                        algo: algo.label(),
                        test_cost: te.mean_cost,
                        train_cost: tr.mean_cost,
                        splits: plan.split_count(),
                        wire_size: plan.wire_size(),
                        correct: tr.all_correct && te.all_correct,
                        exact,
                    });
                }
                cells.lock().extend(local);
            });
        }
    })
    .expect("worker panicked");
    let mut out = cells.into_inner();
    out.sort_by(|a, b| (a.query_idx, &a.algo).cmp(&(b.query_idx, &b.algo)));
    out
}

/// Mean test cost per algorithm label.
pub fn mean_by_algo(cells: &[Cell]) -> Vec<(String, f64)> {
    let mut labels: Vec<String> = Vec::new();
    for c in cells {
        if !labels.contains(&c.algo) {
            labels.push(c.algo.clone());
        }
    }
    labels
        .into_iter()
        .map(|l| {
            let (sum, n) = cells
                .iter()
                .filter(|c| c.algo == l)
                .fold((0.0, 0usize), |(s, n), c| (s + c.test_cost, n + 1));
            (l, sum / n.max(1) as f64)
        })
        .collect()
}

/// Per-query cost of `algo`, indexed by query.
pub fn costs_of(cells: &[Cell], algo: &str) -> Vec<f64> {
    let mut v: Vec<(usize, f64)> =
        cells.iter().filter(|c| c.algo == algo).map(|c| (c.query_idx, c.test_cost)).collect();
    v.sort_by_key(|(q, _)| *q);
    v.into_iter().map(|(_, c)| c).collect()
}

/// Prints a cumulative-frequency table of per-query gain ratios
/// (`baseline / subject`), the presentation of Figs. 8(c), 10 and 11:
/// the value at x is the fraction of queries whose gain is ≥ x.
pub fn print_gain_cdf(title: &str, baseline: &[f64], subject: &[f64]) {
    assert_eq!(baseline.len(), subject.len());
    let mut gains: Vec<f64> = baseline
        .iter()
        .zip(subject)
        .map(|(b, s)| if *s > 0.0 { b / s } else { f64::INFINITY })
        .collect();
    gains.sort_by_key(|&g| OrdF64(g));
    println!("  {title}: cumulative frequency of gain (fraction of queries with gain >= x)");
    println!("    {:>8} {:>10}", "gain x", "frac >= x");
    for x in [0.5, 0.8, 0.9, 1.0, 1.1, 1.25, 1.5, 2.0, 3.0, 4.0, 6.0] {
        let frac = gains.iter().filter(|&&g| g >= x).count() as f64 / gains.len() as f64;
        println!("    {x:>8.2} {frac:>10.3}");
    }
    let median = gains[gains.len() / 2];
    let max = gains.last().copied().unwrap_or(f64::NAN);
    println!("    median gain {median:.3}, max gain {max:.3}");
}

/// Prints an aligned `(label, value)` table.
pub fn print_table(title: &str, rows: &[(String, f64)]) {
    println!("{title}");
    for (label, v) in rows {
        println!("  {label:<22} {v:>12.3}");
    }
}

/// Asserts every cell was correct — every plan computed exactly `φ(x)`.
pub fn assert_all_correct(cells: &[Cell]) {
    for c in cells {
        assert!(c.correct, "{} produced an incorrect plan on query {}", c.algo, c.query_idx);
    }
}

/// Headline planner-health rates derived from a drained observability
/// snapshot, for embedding in bench JSON artifacts:
///
/// * `planner.memo.hit_rate` — memo lookups served from the table;
/// * `planner.prune_rate` — candidate cuts abandoned by an admissible
///   lower bound, as a fraction of all split evaluations.
pub fn planner_rates(snap: &acqp_obs::Snapshot) -> Vec<(String, f64)> {
    let hit = snap.counter("planner.memo.hit") as f64;
    let miss = snap.counter("planner.memo.miss") as f64;
    let evaluated = snap.counter("planner.split.evaluated") as f64;
    let pruned = snap.counter("planner.prune.lower_bound") as f64;
    vec![
        ("planner.subproblems.opened".into(), snap.counter("planner.subproblems.opened") as f64),
        ("planner.memo.hit_rate".into(), hit / (hit + miss).max(1.0)),
        ("planner.split.evaluated".into(), evaluated),
        ("planner.prune_rate".into(), pruned / evaluated.max(1.0)),
        ("planner.budget.truncated".into(), snap.counter("planner.budget.truncated") as f64),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use acqp_data::lab::{self, LabConfig};
    use acqp_data::workload::lab_queries;

    #[test]
    fn batch_runner_smoke() {
        let g = lab::generate(&LabConfig { motes: 6, epochs: 220, ..LabConfig::default() });
        let (train, test) = g.split(0.7);
        let queries = lab_queries(&g.schema, &train, 4, 3, 5).unwrap();
        let algos = vec![
            Algo::Naive,
            Algo::CorrSeq(SeqAlgorithm::Auto),
            Algo::Heuristic { splits: 3, grid_r: 8, base: SeqAlgorithm::Auto },
        ];
        let cells = run_batch(&g.schema, &queries, &train, &test, &algos);
        assert_eq!(cells.len(), 12);
        assert_all_correct(&cells);
        let means = mean_by_algo(&cells);
        assert_eq!(means.len(), 3);
        // The heuristic never loses to Naive on *training* data.
        for qi in 0..queries.len() {
            let naive =
                cells.iter().find(|c| c.query_idx == qi && c.algo == "Naive").unwrap().train_cost;
            let heur = cells
                .iter()
                .find(|c| c.query_idx == qi && c.algo == "Heuristic-3(r=8)")
                .unwrap()
                .train_cost;
            assert!(heur <= naive + 1e-6, "query {qi}: heuristic {heur} vs naive {naive}");
        }
    }

    #[test]
    fn bench_json_and_planner_rates() {
        use acqp_obs::{NoopSink, Recorder};
        use std::sync::Arc;

        let g = lab::generate(&LabConfig { motes: 6, epochs: 220, ..LabConfig::default() });
        let (train, _) = g.split(0.7);
        let queries = lab_queries(&g.schema, &train, 2, 3, 5).unwrap();
        let rec = Recorder::new(Arc::new(NoopSink));
        for q in &queries {
            let est = CountingEstimator::with_ranges(&train, Ranges::root(&g.schema));
            ExhaustivePlanner::with_grid(SplitGrid::for_query(&g.schema, q, 3))
                .with_recorder(rec.clone())
                .plan(&g.schema, q, &est)
                .unwrap();
        }
        let rates = planner_rates(&rec.drain());
        let get = |k: &str| rates.iter().find(|(n, _)| n == k).unwrap().1;
        assert!(get("planner.subproblems.opened") > 0.0);
        assert!(get("planner.memo.hit_rate") >= 0.0 && get("planner.memo.hit_rate") <= 1.0);
        assert!(get("planner.split.evaluated") > 0.0);

        let dir = std::env::temp_dir().join(format!("acqp_bench_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let cwd = std::env::current_dir().unwrap();
        std::env::set_current_dir(&dir).unwrap();
        let path = write_bench_json("unit_test", &rates).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::env::set_current_dir(cwd).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        assert!(text.starts_with('{') && text.trim_end().ends_with('}'));
        assert!(text.contains("\"planner.memo.hit_rate\":"));
    }

    #[test]
    fn costs_of_orders_by_query() {
        let cells = vec![
            Cell {
                query_idx: 1,
                algo: "A".into(),
                test_cost: 2.0,
                train_cost: 2.0,
                splits: 0,
                wire_size: 1,
                correct: true,
                exact: None,
            },
            Cell {
                query_idx: 0,
                algo: "A".into(),
                test_cost: 1.0,
                train_cost: 1.0,
                splits: 0,
                wire_size: 1,
                correct: true,
                exact: None,
            },
        ];
        assert_eq!(costs_of(&cells, "A"), vec![1.0, 2.0]);
    }
}
