//! The one place bench artifacts are stamped.
//!
//! Every bench target emits its machine-readable results through
//! [`emit_bench_json`], so artifact naming (`BENCH_<name>.json`),
//! number formatting and error handling live here and nowhere else —
//! acqp-lint's `duplicate-bench-writer` advisory flags any writer or
//! `BENCH_`-prefixed literal that grows back outside this module.

use std::io;
use std::path::PathBuf;

/// Writes `BENCH_<name>.json` in the working directory: one flat JSON
/// object mapping metric names to numbers, so bench results (wall
/// clocks, planner rates) land in a machine-readable artifact next to
/// the printed tables. Returns the path written.
pub fn write_bench_json(name: &str, fields: &[(String, f64)]) -> io::Result<PathBuf> {
    let path = PathBuf::from(format!("BENCH_{name}.json"));
    let mut body = String::from("{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        let v = if v.is_finite() { *v } else { 0.0 };
        body.push_str(&format!("\n  \"{k}\": {v}"));
    }
    body.push_str("\n}\n");
    std::fs::write(&path, body)?;
    Ok(path)
}

/// Writes the artifact and reports the outcome on stdout/stderr — the
/// shared tail of every bench's `main`. A failed write is worth a
/// complaint but never a failed bench run.
pub fn emit_bench_json(name: &str, fields: &[(String, f64)]) {
    match write_bench_json(name, fields) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write bench artifact for {name}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_artifact_roundtrips() {
        let dir = std::env::temp_dir().join(format!("acqp_bench_report_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let cwd = std::env::current_dir().unwrap();
        std::env::set_current_dir(&dir).unwrap();
        let path =
            write_bench_json("unit_test", &[("a.b".to_string(), 1.5), ("c".to_string(), f64::NAN)])
                .unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        std::env::set_current_dir(cwd).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        assert!(body.contains("\"a.b\": 1.5"));
        assert!(body.contains("\"c\": 0"), "non-finite values are zeroed: {body}");
    }
}
