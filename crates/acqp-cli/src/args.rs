//! Minimal flag parsing (no external dependencies): positionals plus
//! `--key value` pairs.

use std::collections::HashMap;

/// Parsed command line: positional arguments and `--key value` flags.
#[derive(Debug, Default, Clone)]
pub struct Args {
    /// Positional arguments in order.
    pub positional: Vec<String>,
    flags: HashMap<String, String>,
}

impl Args {
    /// Parses raw arguments (exclusive of the program name).
    pub fn parse(raw: impl IntoIterator<Item = String>) -> Result<Args, String> {
        let mut out = Args::default();
        let mut it = raw.into_iter().peekable();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                let val = match it.peek() {
                    Some(v) if !v.starts_with("--") => it.next().unwrap(),
                    _ => return Err(format!("flag --{key} needs a value")),
                };
                if out.flags.insert(key.to_string(), val).is_some() {
                    return Err(format!("flag --{key} given twice"));
                }
            } else {
                out.positional.push(a);
            }
        }
        Ok(out)
    }

    /// String flag.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// Parsed flag with a default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("bad value for --{key}: {v}")),
        }
    }

    /// Required string flag.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("missing required flag --{key}"))
    }

    /// Names of flags present (for unknown-flag checks).
    #[allow(dead_code)]
    pub fn flag_names(&self) -> impl Iterator<Item = &str> {
        self.flags.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(v: &[&str]) -> Result<Args, String> {
        Args::parse(v.iter().map(|s| s.to_string()))
    }

    #[test]
    fn positionals_and_flags() {
        let a = parse(&["gen", "lab", "--seed", "7", "--out", "x.csv"]).unwrap();
        assert_eq!(a.positional, vec!["gen", "lab"]);
        assert_eq!(a.get("out"), Some("x.csv"));
        assert_eq!(a.get_or("seed", 0u64).unwrap(), 7);
        assert_eq!(a.get_or("epochs", 123usize).unwrap(), 123);
    }

    #[test]
    fn errors() {
        assert!(parse(&["--flag"]).is_err());
        assert!(parse(&["--a", "1", "--a", "2"]).is_err());
        assert!(parse(&["--n", "x"]).unwrap().get_or("n", 1usize).is_err());
        assert!(parse(&[]).unwrap().require("out").is_err());
    }

    #[test]
    fn flag_followed_by_flag_is_an_error() {
        assert!(parse(&["--a", "--b", "1"]).is_err());
    }
}
