//! Named dataset construction for the CLI.

use std::path::Path;

use acqp_data::garden::{self, GardenConfig};
use acqp_data::lab::{self, LabConfig};
use acqp_data::synthetic::{self, SyntheticConfig};
use acqp_data::Generated;

use crate::args::Args;

/// Dataset kinds the CLI can generate.
pub const KINDS: &[&str] = &["lab", "garden5", "garden11", "synthetic"];

/// Resolves the dataset for a command: either `--dataset <kind>` (a
/// generator) or `--schema <file> --data <file.csv>` (an external
/// trace).
pub fn resolve(args: &Args) -> Result<Generated, String> {
    match (args.get("dataset"), args.get("schema"), args.get("data")) {
        (Some(kind), None, None) => build(kind, args),
        (None, Some(schema_path), Some(data_path)) => {
            let (schema, discretizers) =
                acqp_data::schema_file::load_schema(Path::new(schema_path))
                    .map_err(|e| format!("loading schema {schema_path}: {e}"))?;
            let data = acqp_data::csv::load_csv(Path::new(data_path), &schema)
                .map_err(|e| format!("loading data {data_path}: {e}"))?;
            Ok(Generated { schema, data, discretizers })
        }
        _ => {
            Err("pass either --dataset <kind> or both --schema <file> and --data <file.csv>".into())
        }
    }
}

/// Builds the named dataset, honoring the relevant overrides:
/// `--seed`, `--epochs`, `--motes` (lab/garden) and `--n`, `--gamma`,
/// `--sel`, `--rows` (synthetic).
pub fn build(kind: &str, args: &Args) -> Result<Generated, String> {
    match kind {
        "lab" => {
            let mut cfg = LabConfig::default();
            cfg.seed = args.get_or("seed", cfg.seed)?;
            cfg.epochs = args.get_or("epochs", cfg.epochs)?;
            cfg.motes = args.get_or("motes", cfg.motes)?;
            Ok(lab::generate(&cfg))
        }
        "garden5" | "garden11" => {
            let mut cfg =
                if kind == "garden5" { GardenConfig::garden5() } else { GardenConfig::garden11() };
            cfg.seed = args.get_or("seed", cfg.seed)?;
            cfg.epochs = args.get_or("epochs", 6_000)?;
            Ok(garden::generate(&cfg))
        }
        "synthetic" => {
            let n = args.get_or("n", 10usize)?;
            let gamma = args.get_or("gamma", 1usize)?;
            let sel = args.get_or("sel", 0.5f64)?;
            let cfg = SyntheticConfig::new(n, gamma, sel)
                .with_rows(args.get_or("rows", 20_000usize)?)
                .with_seed(args.get_or("seed", 0x5e17u64)?);
            Ok(synthetic::generate(&cfg))
        }
        other => Err(format!("unknown dataset `{other}` (expected one of: {})", KINDS.join(", "))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Args {
        Args::parse(v.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn builds_each_kind() {
        for kind in KINDS {
            let a = args(&["--epochs", "120", "--rows", "200"]);
            let g = build(kind, &a).unwrap();
            assert!(!g.data.is_empty(), "{kind}");
        }
    }

    #[test]
    fn overrides_apply() {
        let small = build("lab", &args(&["--epochs", "50", "--motes", "4"])).unwrap();
        assert_eq!(small.data.len(), 200);
        let synth =
            build("synthetic", &args(&["--n", "6", "--gamma", "2", "--rows", "77"])).unwrap();
        assert_eq!(synth.schema.len(), 6);
        assert_eq!(synth.data.len(), 77);
    }

    #[test]
    fn unknown_kind_is_an_error() {
        assert!(build("nope", &args(&[])).is_err());
    }
}
