//! `acqp` — the command-line front end of the workspace.
//!
//! ```text
//! acqp info     --dataset lab
//! acqp gen      lab --out lab.csv [--seed N] [--epochs N]
//! acqp plan     --dataset lab --query "light >= 350 AND temp <= 21" \
//!               [--algo naive|corrseq|heuristic|exhaustive] [--splits K] [--grid R]
//! acqp simulate --dataset garden5 --query "temp0 BETWEEN 10 AND 18 AND hum0 <= 75" \
//!               [--motes M] [--splits K]
//! ```

mod args;
mod datasets;
mod query_parse;

use std::path::Path;
use std::process::ExitCode;

use acqp_core::prelude::*;

/// CLI-level result (the core prelude shadows `Result`).
type CliResult<T> = std::result::Result<T, String>;
use acqp_sensornet::{run_simulation, sim::fleet_from_trace, Basestation, EnergyModel};
use args::Args;

const USAGE: &str = "\
acqp — correlation-aware acquisitional query planning (ICDE 2005)

USAGE:
  acqp info     --dataset <kind> | --schema <file> --data <file.csv>
  acqp gen      <kind> --out <file.csv> [--seed N] [--epochs N] [--motes N]
                [--n N --gamma G --sel S --rows R]        (synthetic)
  acqp plan     --dataset <kind> --query \"<expr>\"
                [--algo naive|corrseq|heuristic|exhaustive]
                [--splits K] [--grid R] [--train-frac F] [--explain yes]
                [--threads N] [--plan-budget-ms MS]
  acqp simulate --dataset <kind> --query \"<expr>\" [--motes M] [--splits K]

  <kind> = lab | garden5 | garden11 | synthetic
  <expr> = clause (AND clause)*          values in natural units
  clause = name >= v | name <= v | name > v | name < v | name = v
         | name BETWEEN v AND v | NOT( clause )
";

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    match run(raw) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run(raw: Vec<String>) -> CliResult<()> {
    let args = Args::parse(raw)?;
    match args.positional.first().map(String::as_str) {
        Some("info") => cmd_info(&args),
        Some("gen") => cmd_gen(&args),
        Some("plan") => cmd_plan(&args),
        Some("simulate") => cmd_simulate(&args),
        Some(other) => Err(format!("unknown subcommand `{other}`")),
        None => Err("no subcommand given".into()),
    }
}

fn cmd_info(args: &Args) -> CliResult<()> {
    let g = datasets::resolve(args)?;
    println!("dataset: {} tuples, {} attributes\n", g.data.len(), g.schema.len());
    println!("{:<4} {:<12} {:>7} {:>9}  natural range", "id", "name", "domain", "cost");
    for (i, a) in g.schema.attrs().iter().enumerate() {
        let range = match &g.discretizers[i] {
            Some(d) => format!("[{:.1}, {:.1}]", d.bin_lo(0), d.bin_hi(d.bins() - 1)),
            None => format!("raw 0..{}", a.domain()),
        };
        println!("{i:<4} {:<12} {:>7} {:>9.1}  {range}", a.name(), a.domain(), a.cost());
    }
    Ok(())
}

fn cmd_gen(args: &Args) -> CliResult<()> {
    let kind = args
        .positional
        .get(1)
        .ok_or("gen needs a dataset kind, e.g. `acqp gen lab --out lab.csv`")?;
    let out = args.require("out")?;
    let g = datasets::build(kind, args)?;
    acqp_data::csv::save_csv(Path::new(out), &g.schema, &g.data)
        .map_err(|e| format!("writing {out}: {e}"))?;
    println!("wrote {} tuples x {} attributes to {out}", g.data.len(), g.schema.len());
    Ok(())
}

fn planner_label(algo: &str, splits: usize) -> String {
    match algo {
        "heuristic" => format!("heuristic (at most {splits} splits)"),
        other => other.to_string(),
    }
}

fn cmd_plan(args: &Args) -> CliResult<()> {
    let g = datasets::resolve(args)?;
    let query_text = args.require("query")?;
    let query = query_parse::parse_query(query_text, &g.schema, &g.discretizers)
        .map_err(|e| format!("parsing query: {e}"))?;

    let train_frac: f64 = args.get_or("train-frac", 0.6)?;
    let (train, test) = g.data.split_at(train_frac);
    let est = CountingEstimator::with_ranges(&train, Ranges::root(&g.schema));

    let algo = args.get("algo").unwrap_or("heuristic");
    let splits: usize = args.get_or("splits", 10)?;
    let grid: usize = args.get_or("grid", 12)?;
    let threads: usize = args.get_or("threads", 1)?;
    let plan_budget = match args.get("plan-budget-ms") {
        Some(v) => Some(std::time::Duration::from_millis(
            v.parse().map_err(|_| format!("bad value for --plan-budget-ms: {v}"))?,
        )),
        None => None,
    };
    let mut truncated = false;
    let plan = match algo {
        "naive" => SeqPlanner::naive().plan(&g.schema, &query, &est),
        "corrseq" => SeqPlanner::auto().plan(&g.schema, &query, &est),
        "heuristic" => {
            let mut p = GreedyPlanner::new(splits)
                .with_grid(SplitGrid::for_query(&g.schema, &query, grid))
                .threads(threads);
            if let Some(d) = plan_budget {
                p = p.time_budget(d);
            }
            p.plan_with_report(&g.schema, &query, &est).map(|r| {
                truncated = r.truncated;
                r.plan
            })
        }
        "exhaustive" => {
            let mut p =
                ExhaustivePlanner::with_grid(SplitGrid::for_query(&g.schema, &query, grid.min(3)))
                    .max_subproblems(args.get_or("budget", 1_000_000usize)?)
                    .threads(threads);
            if let Some(d) = plan_budget {
                p = p.time_budget(d);
            }
            p.plan_with_report(&g.schema, &query, &est).map(|r| {
                truncated = r.truncated;
                r.plan
            })
        }
        other => return Err(format!("unknown --algo `{other}`")),
    }
    .map_err(|e| format!("planning: {e}"))?;
    let plan = plan.simplify();
    if truncated {
        println!("note   : planning budget exhausted; plan is best-effort, not optimal");
    }

    println!("query  : {query_text}");
    println!("planner: {}", planner_label(algo, splits));
    println!("plan   : {} splits, {} bytes on the wire\n", plan.split_count(), plan.wire_size());
    if args.get("explain").is_some_and(|v| v != "no") {
        let ex = explain(&plan, &query, &g.schema, &CostModel::PerAttribute, &est);
        println!("{}", ex.render(&g.schema, &query));
        println!("expected cost (model): {:.2}\n", ex.total_cost());
    } else {
        println!("{}", plan.pretty(&g.schema, &query));
    }

    let rtr = measure(&plan, &query, &g.schema, &train);
    let rte = measure(&plan, &query, &g.schema, &test);
    if !(rtr.all_correct && rte.all_correct) {
        return Err("internal error: plan disagreed with direct evaluation".into());
    }
    println!(
        "cost/tuple: {:.2} (train window), {:.2} (held-out window)",
        rtr.mean_cost, rte.mean_cost
    );
    println!("pass rate : {:.1}% of held-out tuples", 100.0 * rte.pass_rate);

    // Always show the Naive baseline for context.
    if algo != "naive" {
        let naive = SeqPlanner::naive()
            .plan(&g.schema, &query, &est)
            .map_err(|e| format!("planning baseline: {e}"))?;
        let base = measure(&naive, &query, &g.schema, &test);
        println!(
            "vs Naive  : {:.2} cost/tuple -> {:.2}x gain",
            base.mean_cost,
            base.mean_cost / rte.mean_cost.max(1e-9)
        );
    }
    Ok(())
}

fn cmd_simulate(args: &Args) -> CliResult<()> {
    let g = datasets::resolve(args)?;
    let query_text = args.require("query")?;
    let query = query_parse::parse_query(query_text, &g.schema, &g.discretizers)
        .map_err(|e| format!("parsing query: {e}"))?;

    let (history, live) = g.data.split_at(0.5);
    let fleet: u16 = args.get_or("motes", 4)?;
    let splits: usize = args.get_or("splits", 8)?;
    let bs = Basestation::new(g.schema.clone(), &history);
    let model = EnergyModel::mica_like();
    let alpha = Basestation::alpha_for(&model, fleet as usize, live.len());
    let (k, planned) = bs
        .plan_query_sized(&query, alpha, &[0, 1, 2, 4, splits.max(1)])
        .map_err(|e| format!("planning: {e}"))?;

    println!("query : {query_text}");
    println!(
        "plan  : Heuristic-{k}, {} splits, {} bytes (alpha = {alpha:.5})",
        planned.plan.split_count(),
        planned.wire.len()
    );
    let mut motes = fleet_from_trace(&live, fleet);
    let rep = run_simulation(&g.schema, &query, &planned, &mut motes, &model, live.len());
    if !rep.all_correct {
        return Err("internal error: simulation verdicts diverged".into());
    }
    println!(
        "\nsimulated {} tuples over {} motes x {} epochs: {} results",
        rep.tuples, fleet, rep.epochs, rep.results
    );
    println!(
        "energy: sensing {:.0} uJ + boards {:.0} uJ + radio {:.0} uJ = {:.0} uJ total",
        rep.network.sensing_uj,
        rep.network.board_uj,
        rep.network.radio_tx_uj + rep.network.radio_rx_uj,
        rep.network.total_uj()
    );
    println!("sensing energy per tuple: {:.1} uJ", rep.sensing_uj_per_tuple);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_vec(v: &[&str]) -> CliResult<()> {
        run(v.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn usage_errors() {
        assert!(run_vec(&[]).is_err());
        assert!(run_vec(&["bogus"]).is_err());
        assert!(run_vec(&["plan", "--dataset", "lab"]).is_err(), "missing --query");
        assert!(run_vec(&["plan", "--dataset", "nope", "--query", "x > 1"]).is_err());
    }

    #[test]
    fn plan_end_to_end_small() {
        // Small lab dataset; heuristic plan.
        assert_eq!(
            run_vec(&[
                "plan",
                "--dataset",
                "lab",
                "--epochs",
                "300",
                "--motes",
                "6",
                "--query",
                "light >= 350 AND temp <= 21",
                "--splits",
                "4",
            ]),
            Ok(())
        );
    }

    #[test]
    fn plan_with_threads_and_budget() {
        assert_eq!(
            run_vec(&[
                "plan",
                "--dataset",
                "lab",
                "--epochs",
                "300",
                "--motes",
                "6",
                "--query",
                "light >= 350 AND temp <= 21",
                "--splits",
                "4",
                "--threads",
                "4",
                "--plan-budget-ms",
                "5000",
            ]),
            Ok(())
        );
        assert_eq!(
            run_vec(&[
                "plan",
                "--dataset",
                "lab",
                "--epochs",
                "300",
                "--motes",
                "6",
                "--query",
                "light >= 350 AND temp <= 21",
                "--algo",
                "exhaustive",
                "--grid",
                "2",
                "--threads",
                "2",
            ]),
            Ok(())
        );
        assert!(run_vec(&[
            "plan",
            "--dataset",
            "lab",
            "--query",
            "light >= 350",
            "--plan-budget-ms",
            "abc",
        ])
        .is_err());
    }

    #[test]
    fn info_and_gen_roundtrip() {
        assert_eq!(run_vec(&["info", "--dataset", "synthetic", "--rows", "50"]), Ok(()));
        let out = std::env::temp_dir().join("acqp_cli_gen.csv");
        let out_s = out.to_str().unwrap();
        assert_eq!(run_vec(&["gen", "synthetic", "--rows", "100", "--out", out_s]), Ok(()));
        assert!(out.exists());
        std::fs::remove_file(out).ok();
    }

    #[test]
    fn simulate_small() {
        assert_eq!(
            run_vec(&[
                "simulate",
                "--dataset",
                "garden5",
                "--epochs",
                "400",
                "--query",
                "temp0 BETWEEN 5 AND 25 AND hum0 <= 90",
                "--motes",
                "2",
                "--splits",
                "2",
            ]),
            Ok(())
        );
    }
}
