//! `acqp` — the command-line front end of the workspace.
//!
//! ```text
//! acqp info     --dataset lab
//! acqp gen      lab --out lab.csv [--seed N] [--epochs N]
//! acqp plan     --dataset lab --query "light >= 350 AND temp <= 21" \
//!               [--algo naive|corrseq|heuristic|exhaustive] [--splits K] [--grid R]
//! acqp simulate --dataset garden5 --query "temp0 BETWEEN 10 AND 18 AND hum0 <= 75" \
//!               [--motes M] [--splits K] [--flight-recorder out.json]
//! acqp serve    --dataset garden5 --schedule "0:200:temp0 <= 18;40:100:hum0 <= 75" \
//!               [--motes M] [--splits K] [--baseline yes]
//! ```

mod args;
mod datasets;
mod query_parse;

use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;

use acqp_core::prelude::*;
use acqp_obs::{FlightRecorder, JsonLinesSink, NoopSink, Recorder, DEFAULT_FLIGHT_CAP};

/// A CLI failure: either a typed error from the core library (bad flag
/// values, I/O on user-supplied paths) or a free-form usage message.
#[derive(Debug, Clone, PartialEq)]
enum CliError {
    /// Typed error carrying structured context.
    Core(Error),
    /// Plain usage / parse message.
    Usage(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Core(e) => write!(f, "{e}"),
            CliError::Usage(m) => write!(f, "{m}"),
        }
    }
}

impl From<Error> for CliError {
    fn from(e: Error) -> Self {
        CliError::Core(e)
    }
}

impl From<String> for CliError {
    fn from(m: String) -> Self {
        CliError::Usage(m)
    }
}

impl From<&str> for CliError {
    fn from(m: &str) -> Self {
        CliError::Usage(m.to_string())
    }
}

/// CLI-level result (the core prelude shadows `Result`).
type CliResult<T> = std::result::Result<T, CliError>;
use acqp_sensornet::{
    run_simulation_adaptive, run_simulation_crashy, run_simulation_faulty, run_simulation_mode,
    sim::fleet_from_trace, AdaptiveConfig, Basestation, CrashConfig, EnergyModel, FaultModel,
    FaultReport, ReplanBudget, ScheduleEntry, ServicePolicy,
};
use acqp_serve::{independent_schedule_energy, serve_schedule, ServeConfig};
use args::Args;

const USAGE: &str = "\
acqp — correlation-aware acquisitional query planning (ICDE 2005)

USAGE:
  acqp info     --dataset <kind> | --schema <file> --data <file.csv>
  acqp gen      <kind> --out <file.csv> [--seed N] [--epochs N] [--motes N]
                [--n N --gamma G --sel S --rows R]        (synthetic)
  acqp plan     --dataset <kind> --query \"<expr>\"
                [--algo naive|corrseq|heuristic|exhaustive]
                [--splits K] [--grid R] [--train-frac F] [--explain yes]
                [--threads N] [--plan-budget-ms MS] [--fallback yes]
                [--exec scalar|vectorized] [--explain-analyze yes]
                [--trace-json <file>] [--metrics yes]
                [--flight-recorder <file>] [--flight-jsonl <file>]
                [--flight-timeline yes] [--flight-cap N]
  acqp simulate --dataset <kind> --query \"<expr>\" [--motes M] [--splits K]
                [--exec scalar|vectorized]
                [--fault-seed N] [--loss-rate F] [--sensing-fail F]
                [--max-attempts N] [--dropout m:from:until[,...]]
                [--replan-threshold F] [--replan-budget N] [--sample-every N]
                [--checkpoint-dir <dir>] [--checkpoint-every N]
                [--crash-epochs e1,e2,...] [--crash-rate F]
                [--trace-json <file>] [--metrics yes]
                [--flight-recorder <file>] [--flight-jsonl <file>]
                [--flight-timeline yes] [--flight-cap N]
  acqp verify   --dataset <kind> --query \"<expr>\"
                [--algo naive|corrseq|heuristic|exhaustive]
                [--splits K] [--grid R] [--json yes]
                | --dataset <kind> --schedule \"admit:window:<expr>[;...]\"
                | --dataset <kind> --query \"<expr>\" --wire <file>
  acqp serve    --dataset <kind> --schedule \"admit:window:<expr>[;...]\"
                [--motes M] [--splits K] [--exec scalar|vectorized]
                [--baseline yes] [--deadline N] [--epoch-budget F]
                [--fault-seed N] [--loss-rate F] [--sensing-fail F]
                [--max-attempts N] [--dropout m:from:until[,...]]
                [--checkpoint-dir <dir>] [--checkpoint-every N]
                [--crash-epochs e1,e2,...] [--crash-rate F]
                [--trace-json <file>] [--metrics yes]
                [--flight-recorder <file>] [--flight-jsonl <file>]
                [--flight-timeline yes] [--flight-cap N]

  --trace-json <file>  stream spans and drained metrics as JSON lines
  --metrics yes        append a metrics summary table to the output
  --flight-recorder <file>  write the deterministic event log as Chrome
                       trace-event JSON (load in Perfetto / about:tracing)
  --flight-jsonl <file>  write per-epoch `epoch.tick` time series as JSONL
  --flight-timeline yes  print a text timeline of the event log
  --flight-cap N       flight ring capacity in events (default 65536);
                       overflow evicts oldest and is counted, never silent
  --explain-analyze yes  (plan) print the predicted-vs-actual cost table
                       with per-predicate regret attribution over the
                       held-out window
  --exec vectorized    run trace replay / the lossless simulation
                       through the columnar batch executor (results are
                       bitwise-identical to scalar; incompatible with
                       fault, re-plan and crash flags)

  fault injection (simulate): --loss-rate / --sensing-fail are
  probabilities in [0, 1]; --fault-seed makes lossy runs reproducible;
  --dropout takes mote outage windows. --replan-threshold (0, 1]
  enables drift-triggered re-planning under --replan-budget subproblems,
  with a full-tuple statistics sample every --sample-every epochs.

  serving: --schedule admits each query at its `admit` epoch for
  `window` epochs; overlapping queries share sensor acquisitions and
  repeat admissions hit the signature-keyed plan cache. --baseline yes
  also runs every query independently and prints the energy ratio
  (lossless runs only). Fault and crash flags work like `simulate`'s;
  --epoch-budget caps the summed expected per-tuple cost of live plans
  (excess admissions queue in schedule order, with a fairness bound so
  one hot signature cannot starve the tail) and --deadline N makes each
  query terminate within N epochs of its scheduled admission — crossing
  it returns the rows delivered so far as a typed timed-out outcome.
  Mid-run re-plan flags (--replan-threshold and friends) stay
  `simulate`-only: the service re-plans through its drift policy.

  verifying: `verify` runs the static plan verifier (structural,
  semantic and cost passes — no execution) over freshly planned wire
  bytes, every plan of a --schedule, or raw bytes from --wire, and
  reports findings. Exit codes mirror acqp-lint: 0 = all plans
  verified, 1 = findings, 2 = operational error. --json yes emits the
  findings as JSON.

  crash injection (simulate): --crash-epochs and --crash-rate kill and
  restart the basestation, recovering from --checkpoint-dir (snapshot
  every --checkpoint-every epochs + WAL replay; without a directory
  every crash cold-starts to the genesis plan). --fallback yes (plan)
  runs the degraded-mode ladder: planning never fails, it degrades.

  <kind> = lab | garden5 | garden11 | synthetic
  <expr> = clause (AND clause)*          values in natural units
  clause = name >= v | name <= v | name > v | name < v | name = v
         | name BETWEEN v AND v | NOT( clause )
";

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    match run(raw) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run(raw: Vec<String>) -> CliResult<ExitCode> {
    let args = Args::parse(raw)?;
    match args.positional.first().map(String::as_str) {
        Some("info") => cmd_info(&args).map(|()| ExitCode::SUCCESS),
        Some("gen") => cmd_gen(&args).map(|()| ExitCode::SUCCESS),
        Some("plan") => cmd_plan(&args).map(|()| ExitCode::SUCCESS),
        Some("simulate") => cmd_simulate(&args).map(|()| ExitCode::SUCCESS),
        Some("serve") => cmd_serve(&args).map(|()| ExitCode::SUCCESS),
        Some("verify") => Ok(cmd_verify(&args)),
        Some(other) => Err(format!("unknown subcommand `{other}`").into()),
        None => Err("no subcommand given".into()),
    }
}

fn cmd_info(args: &Args) -> CliResult<()> {
    let g = datasets::resolve(args)?;
    println!("dataset: {} tuples, {} attributes\n", g.data.len(), g.schema.len());
    println!("{:<4} {:<12} {:>7} {:>9}  natural range", "id", "name", "domain", "cost");
    for (i, a) in g.schema.attrs().iter().enumerate() {
        let range = match &g.discretizers[i] {
            Some(d) => format!("[{:.1}, {:.1}]", d.bin_lo(0), d.bin_hi(d.bins() - 1)),
            None => format!("raw 0..{}", a.domain()),
        };
        println!("{i:<4} {:<12} {:>7} {:>9.1}  {range}", a.name(), a.domain(), a.cost());
    }
    Ok(())
}

fn cmd_gen(args: &Args) -> CliResult<()> {
    let kind = args
        .positional
        .get(1)
        .ok_or("gen needs a dataset kind, e.g. `acqp gen lab --out lab.csv`")?;
    let out = args.require("out")?;
    let g = datasets::build(kind, args)?;
    acqp_data::csv::save_csv(Path::new(out), &g.schema, &g.data)
        .map_err(|e| format!("writing {out}: {e}"))?;
    println!("wrote {} tuples x {} attributes to {out}", g.data.len(), g.schema.len());
    Ok(())
}

/// Builds the command's recorder from `--trace-json` / `--metrics`,
/// attaching a flight recorder when any `--flight-*` output was asked
/// for. Observability stays disabled (zero overhead) otherwise.
fn recorder_from(args: &Args) -> CliResult<Recorder> {
    let flight = flight_from(args)?;
    let rec = if let Some(path) = args.get("trace-json") {
        let sink = JsonLinesSink::create(Path::new(path))
            .map_err(|e| Error::Io { path: path.to_string(), what: e.to_string() })?;
        Recorder::new(Arc::new(sink))
    } else if args.get("metrics").is_some_and(|v| v != "no") {
        Recorder::new(Arc::new(NoopSink))
    } else {
        Recorder::disabled()
    };
    Ok(rec.with_flight(flight))
}

/// Builds the flight recorder from the `--flight-*` flags. Disabled
/// (every emit a no-op) unless at least one output was requested, so
/// default runs stay byte-identical to previous releases.
fn flight_from(args: &Args) -> CliResult<FlightRecorder> {
    let wanted = args.get("flight-recorder").is_some()
        || args.get("flight-jsonl").is_some()
        || args.get("flight-timeline").is_some_and(|v| v != "no");
    if !wanted {
        return Ok(FlightRecorder::disabled());
    }
    let cap: usize = args.get_or("flight-cap", DEFAULT_FLIGHT_CAP)?;
    if cap == 0 {
        return Err(invalid("flight-cap", "0", "the ring needs room for at least one event"));
    }
    Ok(FlightRecorder::new(cap))
}

/// Writes the requested flight-recorder exports and folds the ring's
/// totals into the metric stream (`trace.events` / `trace.dropped`).
fn finish_flight(args: &Args, rec: &Recorder) -> CliResult<()> {
    let flight = rec.flight();
    if !flight.enabled() {
        return Ok(());
    }
    rec.counter("trace.events").incr(flight.emitted());
    rec.counter("trace.dropped").incr(flight.dropped());
    if let Some(path) = args.get("flight-recorder") {
        std::fs::write(path, flight.to_chrome_json())
            .map_err(|e| Error::Io { path: path.to_string(), what: e.to_string() })?;
        println!(
            "flight recorder: {} events retained ({} dropped) -> {path}",
            flight.len(),
            flight.dropped()
        );
    }
    if let Some(path) = args.get("flight-jsonl") {
        std::fs::write(path, flight.to_epoch_jsonl())
            .map_err(|e| Error::Io { path: path.to_string(), what: e.to_string() })?;
        println!("flight time series -> {path}");
    }
    if args.get("flight-timeline").is_some_and(|v| v != "no") {
        println!(
            "
flight timeline:"
        );
        print!("{}", flight.to_timeline());
    }
    Ok(())
}

/// Drains `rec` (flushing any `--trace-json` sink) and prints the
/// `--metrics` summary table when requested.
fn finish_metrics(args: &Args, rec: &Recorder) {
    if !rec.enabled() {
        return;
    }
    let snap = rec.drain();
    if args.get("metrics").is_some_and(|v| v != "no") {
        println!("\nmetrics:");
        print!("{}", snap.render_table());
    }
}

/// A typed bad-flag error.
fn invalid(flag: &str, value: &str, why: &'static str) -> CliError {
    CliError::Core(Error::InvalidFlag { flag: format!("--{flag}"), value: value.to_string(), why })
}

/// Parses `--exec scalar|vectorized` (scalar when absent).
fn exec_mode_from(args: &Args) -> CliResult<ExecMode> {
    match args.get("exec") {
        None | Some("scalar") => Ok(ExecMode::Scalar),
        Some("vectorized") => Ok(ExecMode::Vectorized),
        Some(other) => Err(invalid("exec", other, "expected `scalar` or `vectorized`")),
    }
}

/// Parses a probability flag, rejecting values outside `[0, 1]` with a
/// typed error.
fn prob_flag(args: &Args, flag: &str, default: f64) -> CliResult<f64> {
    let v: f64 = args.get_or(flag, default)?;
    if !v.is_finite() || !(0.0..=1.0).contains(&v) {
        return Err(invalid(flag, args.get(flag).unwrap_or(""), "must be a probability in [0, 1]"));
    }
    Ok(v)
}

/// Builds the simulate command's fault model from its flags, with every
/// out-of-range value rejected as a typed error before anything runs.
fn fault_model_from(args: &Args) -> CliResult<FaultModel> {
    let seed: u64 = args.get_or("fault-seed", 0)?;
    let loss = prob_flag(args, "loss-rate", 0.0)?;
    let sensing = prob_flag(args, "sensing-fail", 0.0)?;
    let max_attempts: u32 = args.get_or("max-attempts", 4)?;
    if max_attempts == 0 {
        return Err(invalid("max-attempts", "0", "at least one attempt is required"));
    }
    let mut faults = FaultModel::lossy(seed, loss)
        .with_sensing_failures(sensing)
        .with_max_attempts(max_attempts);
    if let Some(spec) = args.get("dropout") {
        for part in spec.split(',') {
            let fields: Vec<&str> = part.split(':').collect();
            let parsed = if fields.len() == 3 {
                match (
                    fields[0].parse::<u16>(),
                    fields[1].parse::<usize>(),
                    fields[2].parse::<usize>(),
                ) {
                    (Ok(m), Ok(from), Ok(until)) => Some((m, from, until)),
                    _ => None,
                }
            } else {
                None
            };
            match parsed {
                Some((m, from, until)) if from < until => {
                    faults = faults.with_dropout(m, from, until);
                }
                _ => {
                    return Err(invalid(
                        "dropout",
                        spec,
                        "expected mote:from:until[,mote:from:until...] with from < until",
                    ));
                }
            }
        }
    }
    Ok(faults)
}

fn planner_label(algo: &str, splits: usize) -> String {
    match algo {
        "heuristic" => format!("heuristic (at most {splits} splits)"),
        other => other.to_string(),
    }
}

fn cmd_plan(args: &Args) -> CliResult<()> {
    let g = datasets::resolve(args)?;
    let query_text = args.require("query")?;
    let query = query_parse::parse_query(query_text, &g.schema, &g.discretizers)
        .map_err(|e| format!("parsing query: {e}"))?;

    let train_frac: f64 = args.get_or("train-frac", 0.6)?;
    let (train, test) = g.data.split_at(train_frac);
    let rec = recorder_from(args)?;
    let est = CountingEstimator::with_ranges(&train, Ranges::root(&g.schema)).with_recorder(&rec);

    let algo = args.get("algo").unwrap_or("heuristic");
    let splits: usize = args.get_or("splits", 10)?;
    let grid: usize = args.get_or("grid", 12)?;
    let threads: usize = args.get_or("threads", 1)?;
    let plan_budget = match args.get("plan-budget-ms") {
        Some(v) => Some(std::time::Duration::from_millis(
            v.parse().map_err(|_| format!("bad value for --plan-budget-ms: {v}"))?,
        )),
        None => None,
    };
    let mut truncated = false;
    let mut degradation = DegradationLevel::None;
    let use_fallback = args.get("fallback").is_some_and(|v| v != "no");
    let plan = if use_fallback {
        // The degraded-mode ladder: Exhaustive -> GreedyPlan ->
        // GreedySeq -> Naive under per-stage budgets. Never fails —
        // worst case is a naive ordering tagged with its rung.
        let mut p = FallbackPlanner::new()
            .with_grid(SplitGrid::for_query(&g.schema, &query, grid))
            .max_splits(splits)
            .max_subproblems(args.get_or("budget", 1_000_000usize)?)
            .threads(threads)
            .with_recorder(rec.clone());
        if let Some(d) = plan_budget {
            p = p.stage_budget(d);
        }
        let r = p.plan_data(&g.schema, &query, &train);
        truncated = r.truncated;
        degradation = r.degradation;
        Ok(r.plan)
    } else {
        match algo {
            "naive" => SeqPlanner::naive().plan(&g.schema, &query, &est),
            "corrseq" => SeqPlanner::auto().plan(&g.schema, &query, &est),
            "heuristic" => {
                let mut p = GreedyPlanner::new(splits)
                    .with_grid(SplitGrid::for_query(&g.schema, &query, grid))
                    .threads(threads)
                    .with_recorder(rec.clone());
                if let Some(d) = plan_budget {
                    p = p.time_budget(d);
                }
                p.plan_with_report(&g.schema, &query, &est).map(|r| {
                    truncated = r.truncated;
                    r.plan
                })
            }
            "exhaustive" => {
                let mut p = ExhaustivePlanner::with_grid(SplitGrid::for_query(
                    &g.schema,
                    &query,
                    grid.min(3),
                ))
                .max_subproblems(args.get_or("budget", 1_000_000usize)?)
                .threads(threads)
                .with_recorder(rec.clone());
                if let Some(d) = plan_budget {
                    p = p.time_budget(d);
                }
                p.plan_with_report(&g.schema, &query, &est).map(|r| {
                    truncated = r.truncated;
                    r.plan
                })
            }
            other => return Err(format!("unknown --algo `{other}`").into()),
        }
    }
    .map_err(|e| format!("planning: {e}"))?;
    let plan = plan.simplify();
    if truncated {
        println!("note   : planning budget exhausted; plan is best-effort, not optimal");
    }
    if degradation != DegradationLevel::None {
        println!("note   : fallback ladder degraded to `{}`", degradation.as_str());
    }

    println!("query  : {query_text}");
    let label = if use_fallback {
        format!("fallback ladder (landed on `{}`)", degradation.as_str())
    } else {
        planner_label(algo, splits)
    };
    println!("planner: {label}");
    println!("plan   : {} splits, {} bytes on the wire\n", plan.split_count(), plan.wire_size());
    if args.get("explain").is_some_and(|v| v != "no") {
        let ex = explain(&plan, &query, &g.schema, &CostModel::PerAttribute, &est);
        println!("{}", ex.render(&g.schema, &query));
        println!("expected cost (model): {:.2}\n", ex.total_cost());
    } else {
        println!("{}", plan.pretty(&g.schema, &query));
    }

    let mode = exec_mode_from(args)?;
    let rtr = measure_mode(
        &plan,
        &query,
        &g.schema,
        &CostModel::PerAttribute,
        &train,
        0..train.len(),
        mode,
    );
    let (rte, exec_metrics) = if rec.enabled() {
        // Meter the held-out window: per-attribute acquisitions, cost
        // distribution, per-predicate outcomes.
        let m = ExecMetrics::new(&rec, &g.schema, &query);
        let r = measure_metered_mode(
            &plan,
            &query,
            &g.schema,
            &CostModel::PerAttribute,
            &test,
            0..test.len(),
            mode,
            &m,
        );
        (r, Some(m))
    } else {
        (
            measure_mode(
                &plan,
                &query,
                &g.schema,
                &CostModel::PerAttribute,
                &test,
                0..test.len(),
                mode,
            ),
            None,
        )
    };
    if !(rtr.all_correct && rte.all_correct) {
        return Err("internal error: plan disagreed with direct evaluation".into());
    }
    println!(
        "cost/tuple: {:.2} (train window), {:.2} (held-out window)",
        rtr.mean_cost, rte.mean_cost
    );
    println!("pass rate : {:.1}% of held-out tuples", 100.0 * rte.pass_rate);

    if args.get("explain-analyze").is_some_and(|v| v != "no") {
        // Plan-regret attribution: re-cost the adopted plan under a
        // held-out estimator and decompose predicted-vs-actual into
        // per-predicate estimator-error contributions (telescoping
        // walk; the contributions sum bitwise to the total gap).
        let actual = CountingEstimator::with_ranges(&test, Ranges::root(&g.schema));
        let rep = regret_report(&plan, &query, &g.schema, &CostModel::PerAttribute, &est, &actual);
        println!(
            "
explain-analyze (train-estimated vs held-out actual):"
        );
        print!("{}", rep.render(&g.schema, &query));
    }

    if let Some(m) = &exec_metrics {
        // Estimated-vs-actual selectivity per predicate: the training
        // marginal against the held-out pass fraction (§7's train/test
        // shift, quantified per predicate).
        let table = est.truth_table(&est.root(), &query);
        for j in 0..query.len() {
            let est_sel = table.marginal(j);
            rec.gauge(&format!("exec.pred{j}.est_sel"), est_sel);
            if let Some(actual) = m.actual_selectivity(j) {
                rec.gauge(&format!("exec.pred{j}.actual_sel"), actual);
                rec.gauge(&format!("exec.pred{j}.sel_abs_err"), (est_sel - actual).abs());
            }
        }
    }

    // Always show the Naive baseline for context.
    if algo != "naive" {
        let naive = SeqPlanner::naive()
            .plan(&g.schema, &query, &est)
            .map_err(|e| format!("planning baseline: {e}"))?;
        let base = measure(&naive, &query, &g.schema, &test);
        println!(
            "vs Naive  : {:.2} cost/tuple -> {:.2}x gain",
            base.mean_cost,
            base.mean_cost / rte.mean_cost.max(1e-9)
        );
    }
    finish_flight(args, &rec)?;
    finish_metrics(args, &rec);
    Ok(())
}

/// `acqp verify`: the static plan verifier as a command. Operational
/// failures (bad flags, unreadable files) exit 2; verification findings
/// exit 1; a fully verified corpus exits 0 — mirroring `acqp-lint`.
fn cmd_verify(args: &Args) -> ExitCode {
    match verify_corpus(args) {
        Ok(0) => ExitCode::SUCCESS,
        Ok(_) => ExitCode::from(1),
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

/// One plan to verify: a display label, the query it must be meaningful
/// for, the wire bytes, and the planner's claimed expected cost when
/// one exists (raw `--wire` bytes carry no claim).
type VerifyUnit = (String, Query, Vec<u8>, Option<f64>);

/// Builds the corpus from the flags, runs the verifier over it, prints
/// findings (human or `--json`), and returns how many there were.
fn verify_corpus(args: &Args) -> CliResult<usize> {
    let g = datasets::resolve(args)?;
    let splits: usize = args.get_or("splits", 8)?;
    let grid: usize = args.get_or("grid", 12)?;
    let (train, _) = g.data.split_at(0.6);
    let est = CountingEstimator::with_ranges(&train, Ranges::root(&g.schema));

    let mut units: Vec<VerifyUnit> = Vec::new();
    if let Some(path) = args.get("wire") {
        let text = args.require("query")?;
        let query = query_parse::parse_query(text, &g.schema, &g.discretizers)
            .map_err(|e| format!("parsing query: {e}"))?;
        let bytes =
            std::fs::read(path).map_err(|e| format!("reading wire bytes from {path}: {e}"))?;
        units.push((format!("wire:{path}"), query, bytes, None));
    } else if let Some(spec) = args.get("schedule") {
        for (text, entry) in schedule_from(spec, &g.schema, &g.discretizers)? {
            let plan = GreedyPlanner::new(splits)
                .with_grid(SplitGrid::for_query(&g.schema, &entry.query, grid))
                .plan(&g.schema, &entry.query, &est)
                .map_err(|e| format!("planning `{text}`: {e}"))?;
            let claimed = expected_cost(&plan, &entry.query, &g.schema, &est);
            units.push((text, entry.query, plan.encode(), Some(claimed)));
        }
    } else {
        let text = args.require("query")?;
        let query = query_parse::parse_query(text, &g.schema, &g.discretizers)
            .map_err(|e| format!("parsing query: {e}"))?;
        let algo = args.get("algo").unwrap_or("heuristic");
        let plan = match algo {
            "naive" => SeqPlanner::naive().plan(&g.schema, &query, &est),
            "corrseq" => SeqPlanner::auto().plan(&g.schema, &query, &est),
            "heuristic" => GreedyPlanner::new(splits)
                .with_grid(SplitGrid::for_query(&g.schema, &query, grid))
                .plan(&g.schema, &query, &est),
            "exhaustive" => {
                ExhaustivePlanner::with_grid(SplitGrid::for_query(&g.schema, &query, grid.min(3)))
                    .max_subproblems(args.get_or("budget", 1_000_000usize)?)
                    .plan(&g.schema, &query, &est)
            }
            other => return Err(format!("unknown --algo `{other}`").into()),
        }
        .map_err(|e| format!("planning: {e}"))?;
        let claimed = expected_cost(&plan, &query, &g.schema, &est);
        units.push((text.to_string(), query, plan.encode(), Some(claimed)));
    }

    let json = args.get("json").is_some_and(|v| v != "no");
    let mut findings: Vec<(String, acqp_verify::VerifyError)> = Vec::new();
    for (label, query, wire, claimed) in &units {
        let verdict = acqp_verify::verify_wire(wire, query, &g.schema).and_then(|cert| {
            if let Some(c) = claimed {
                cert.check_claim(*c)?;
            }
            Ok(cert)
        });
        match verdict {
            Ok(cert) if !json => println!(
                "plan `{label}`: {} bytes, {} split(s), {} path(s), cost in [{:.2}, {:.2}] — verified",
                cert.stats.wire_len,
                cert.stats.splits,
                cert.stats.paths,
                cert.bound.best_case,
                cert.bound.worst_case,
            ),
            Ok(_) => {}
            Err(e) => findings.push((label.clone(), e)),
        }
    }

    if json {
        let rows: Vec<String> = findings
            .iter()
            .map(|(label, e)| {
                let offset = e.offset().map_or("null".to_string(), |o| o.to_string());
                format!(
                    "{{\"class\":{},\"plan\":{},\"offset\":{offset},\"message\":{}}}",
                    verify_json_str(e.class()),
                    verify_json_str(label),
                    verify_json_str(&e.to_string()),
                )
            })
            .collect();
        println!(
            "{{\"findings\":[{}],\"plans_checked\":{},\"errors\":{}}}",
            rows.join(","),
            units.len(),
            findings.len(),
        );
    } else {
        for (label, e) in &findings {
            println!("error[{}]: {e}\n  --> plan `{label}`", e.class());
        }
        println!("{} plan(s) checked: {} finding(s)", units.len(), findings.len());
    }
    Ok(findings.len())
}

/// Minimal JSON string escaping for the `verify --json` output.
fn verify_json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn cmd_simulate(args: &Args) -> CliResult<()> {
    let g = datasets::resolve(args)?;
    let query_text = args.require("query")?;
    let query = query_parse::parse_query(query_text, &g.schema, &g.discretizers)
        .map_err(|e| format!("parsing query: {e}"))?;

    let (history, live) = g.data.split_at(0.5);
    let fleet: u16 = args.get_or("motes", 4)?;
    if fleet == 0 {
        return Err(invalid("motes", "0", "the fleet needs at least one mote"));
    }
    let splits: usize = args.get_or("splits", 8)?;
    let faults = fault_model_from(args)?;
    let replan_threshold = if args.get("replan-threshold").is_some() {
        let t: f64 = args.get_or("replan-threshold", 0.15)?;
        if !t.is_finite() || t <= 0.0 || t > 1.0 {
            return Err(invalid(
                "replan-threshold",
                args.get("replan-threshold").unwrap_or(""),
                "must be a divergence in (0, 1]",
            ));
        }
        Some(t)
    } else {
        None
    };
    let sample_every: usize = args.get_or("sample-every", 4)?;
    if sample_every == 0 {
        return Err(invalid("sample-every", "0", "sampling period must be at least 1 epoch"));
    }
    let replan_budget: usize = args.get_or("replan-budget", 50_000)?;
    let checkpoint_dir = args.get("checkpoint-dir").map(std::path::PathBuf::from);
    let checkpoint_every: usize = args.get_or("checkpoint-every", 16)?;
    let crash_rate = prob_flag(args, "crash-rate", 0.0)?;
    let crash_epochs: Vec<usize> = match args.get("crash-epochs") {
        Some(spec) => spec
            .split(',')
            .map(|s| s.trim().parse::<usize>())
            .collect::<std::result::Result<_, _>>()
            .map_err(|_| {
                invalid("crash-epochs", spec, "expected a comma-separated list of epoch numbers")
            })?,
        None => Vec::new(),
    };
    // Any crash/checkpoint flag opts into the crash-prone engine; the
    // default path stays byte-identical to previous releases.
    let crashy = checkpoint_dir.is_some()
        || !crash_epochs.is_empty()
        || crash_rate > 0.0
        || args.get("checkpoint-every").is_some();
    let mode = exec_mode_from(args)?;
    if mode == ExecMode::Vectorized
        && (crashy || replan_threshold.is_some() || !faults.is_lossless())
    {
        return Err(invalid(
            "exec",
            "vectorized",
            "vectorized execution covers only the lossless simulation \
             (drop the fault, re-plan and crash flags)",
        ));
    }
    let bs = Basestation::new(g.schema.clone(), &history);
    let model = EnergyModel::mica_like();
    let alpha = Basestation::alpha_for(&model, fleet as usize, live.len());
    let (k, planned) = bs
        .plan_query_sized(&query, alpha, &[0, 1, 2, 4, splits.max(1)])
        .map_err(|e| format!("planning: {e}"))?;

    println!("query : {query_text}");
    println!(
        "plan  : Heuristic-{k}, {} splits, {} bytes (alpha = {alpha:.5})",
        planned.plan.split_count(),
        planned.wire.len()
    );
    let rec = recorder_from(args)?;
    let mut motes = fleet_from_trace(&live, fleet);
    let adaptive_cfg = replan_threshold.map(|threshold| AdaptiveConfig {
        drift: DriftConfig { threshold, ..DriftConfig::default() },
        sample_every,
        budget: ReplanBudget { max_subproblems: replan_budget.max(1), grid_splits: 3 },
        alpha,
        ..AdaptiveConfig::default()
    });
    let mut crash_info = None;
    let rep = if mode == ExecMode::Vectorized {
        // The lossless batch path: same SimReport, metrics and ledgers
        // as the scalar engine, to the bit. Nothing can be lost, so the
        // fault ledger is trivially clean.
        let sim = run_simulation_mode(
            &g.schema,
            &query,
            &planned,
            &mut motes,
            &model,
            live.len(),
            mode,
            &rec,
        );
        FaultReport {
            delivered_results: sim.results,
            lost_results: 0,
            aborted_tuples: 0,
            offline_epochs: 0,
            undisseminated_epochs: 0,
            samples_delivered: 0,
            bs_tx_uj: fleet as f64 * planned.wire.len() as f64 * model.radio_tx_uj_per_byte,
            replans: Vec::new(),
            sim,
        }
    } else if crashy {
        let crash = CrashConfig { checkpoint_dir, checkpoint_every, crash_epochs, crash_rate };
        let crep = run_simulation_crashy(
            &bs,
            &query,
            &planned,
            &mut motes,
            &model,
            live.len(),
            &faults,
            adaptive_cfg.as_ref(),
            &crash,
            &rec,
        )?;
        crash_info = Some((
            crep.crashes,
            crep.cold_starts,
            crep.corrupt_snapshots,
            crep.wal_replayed,
            crep.checkpoints_written,
            crep.recovery_rediss_uj,
        ));
        crep.fault
    } else if let Some(cfg) = &adaptive_cfg {
        run_simulation_adaptive(
            &bs,
            &query,
            &planned,
            &mut motes,
            &model,
            live.len(),
            &faults,
            cfg,
            &rec,
        )?
    } else {
        run_simulation_faulty(
            &g.schema,
            &query,
            &planned,
            &mut motes,
            &model,
            live.len(),
            &faults,
            &rec,
        )
    };
    if !rep.sim.all_correct {
        return Err(CliError::Usage("internal error: simulation verdicts diverged".into()));
    }
    println!(
        "\nsimulated {} tuples over {} motes x {} epochs: {} results",
        rep.sim.tuples, fleet, rep.sim.epochs, rep.sim.results
    );
    println!(
        "energy: sensing {:.0} uJ + boards {:.0} uJ + radio {:.0} uJ = {:.0} uJ total",
        rep.sim.network.sensing_uj,
        rep.sim.network.board_uj,
        rep.sim.network.radio_tx_uj + rep.sim.network.radio_rx_uj,
        rep.sim.network.total_uj()
    );
    println!("sensing energy per tuple: {:.1} uJ", rep.sim.sensing_uj_per_tuple);
    // Fault and re-plan summaries print only when the feature is
    // active, so a `--loss-rate 0.0` run stays byte-identical to the
    // lossless default.
    if !faults.is_lossless() {
        println!(
            "faults: seed {}, delivered {}/{} results ({:.1}%), {} aborted tuples, \
             {} offline epochs, {} undisseminated",
            faults.seed,
            rep.delivered_results,
            rep.sim.results,
            100.0 * rep.delivery_rate(),
            rep.aborted_tuples,
            rep.offline_epochs,
            rep.undisseminated_epochs
        );
    }
    if let Some((crashes, cold, corrupt, replayed, checkpoints, rediss_uj)) = crash_info {
        println!(
            "crashes: {crashes} injected, {cold} cold starts, {corrupt} corrupt snapshots, \
             {replayed} WAL records replayed"
        );
        println!(
            "recovery: {checkpoints} checkpoints written, re-dissemination cost {rediss_uj:.0} uJ"
        );
    }
    if replan_threshold.is_some() {
        let adopted = rep.replans.iter().filter(|r| r.adopted).count();
        println!("replans: {} triggered, {} adopted", rep.replans.len(), adopted);
        for r in rep.replans.iter().filter(|r| r.adopted) {
            println!(
                "  epoch {}: divergence {:.2}, cost {:.1} -> {:.1}{}",
                r.epoch,
                r.divergence,
                r.stale_cost,
                r.new_cost,
                if r.fell_back { " (greedy fallback)" } else { "" }
            );
        }
    }
    finish_flight(args, &rec)?;
    finish_metrics(args, &rec);
    Ok(())
}

/// Flags that opt into behaviour the serve loop does not support;
/// each is rejected with a typed error before anything runs. Fault and
/// crash flags are serve-compatible since the fault-tolerant service
/// loop landed; mid-run re-planning remains `simulate`-only because
/// the service already re-plans through its drift policy.
const SERVE_INCOMPATIBLE: &[&str] = &["replan-threshold", "replan-budget", "sample-every"];

/// Parses `--schedule "admit:window:<expr>[;...]"` into schedule
/// entries plus the verbatim query texts (for echoing).
fn schedule_from(
    spec: &str,
    schema: &Schema,
    discretizers: &[Option<acqp_core::Discretizer>],
) -> CliResult<Vec<(String, ScheduleEntry)>> {
    let mut out = Vec::new();
    for part in spec.split(';') {
        let fields: Vec<&str> = part.splitn(3, ':').collect();
        if fields.len() != 3 {
            return Err(invalid("schedule", part, "expected admit:window:<expr>[;...]"));
        }
        let admit: usize = fields[0]
            .trim()
            .parse()
            .map_err(|_| invalid("schedule", part, "admission epoch must be a whole number"))?;
        let window: usize = fields[1]
            .trim()
            .parse()
            .map_err(|_| invalid("schedule", part, "window must be a whole number of epochs"))?;
        if window == 0 {
            return Err(invalid("schedule", part, "the observation window needs at least 1 epoch"));
        }
        let text = fields[2].trim();
        let query = query_parse::parse_query(text, schema, discretizers)
            .map_err(|e| format!("parsing query `{text}`: {e}"))?;
        out.push((text.to_string(), ScheduleEntry::new(query, admit, window)));
    }
    Ok(out)
}

fn cmd_serve(args: &Args) -> CliResult<()> {
    for flag in SERVE_INCOMPATIBLE {
        if let Some(v) = args.get(flag) {
            return Err(invalid(
                flag,
                v,
                "mid-run re-plan flags apply to `simulate`; the service \
                 re-plans through its drift policy",
            ));
        }
    }
    let g = datasets::resolve(args)?;
    let mut schedule = schedule_from(args.require("schedule")?, &g.schema, &g.discretizers)?;

    let (history, live) = g.data.split_at(0.5);
    let fleet: u16 = args.get_or("motes", 4)?;
    if fleet == 0 {
        return Err(invalid("motes", "0", "the fleet needs at least one mote"));
    }
    let splits: usize = args.get_or("splits", 8)?;
    let mode = exec_mode_from(args)?;

    // Robustness flags: faults and crashes exactly as `simulate` parses
    // them, plus the serve-only deadline and admission budget.
    let faults = fault_model_from(args)?;
    let checkpoint_dir = args.get("checkpoint-dir").map(std::path::PathBuf::from);
    let checkpoint_every: usize = args.get_or("checkpoint-every", 16)?;
    let crash_rate = prob_flag(args, "crash-rate", 0.0)?;
    let crash_epochs: Vec<usize> = match args.get("crash-epochs") {
        Some(spec) => spec
            .split(',')
            .map(|s| s.trim().parse::<usize>())
            .collect::<std::result::Result<_, _>>()
            .map_err(|_| {
                invalid("crash-epochs", spec, "expected a comma-separated list of epoch numbers")
            })?,
        None => Vec::new(),
    };
    let crashy = checkpoint_dir.is_some()
        || !crash_epochs.is_empty()
        || crash_rate > 0.0
        || args.get("checkpoint-every").is_some();
    let deadline = match args.get("deadline") {
        Some(v) => {
            let d: usize = v
                .parse()
                .map_err(|_| invalid("deadline", v, "must be a whole number of epochs"))?;
            if d == 0 {
                return Err(invalid("deadline", v, "a deadline needs at least 1 epoch"));
            }
            Some(d)
        }
        None => None,
    };
    let epoch_budget = match args.get("epoch-budget") {
        Some(v) => {
            let b: f64 = v
                .parse()
                .map_err(|_| invalid("epoch-budget", v, "must be a per-epoch cost budget in uJ"))?;
            if !b.is_finite() || b <= 0.0 {
                return Err(invalid(
                    "epoch-budget",
                    v,
                    "the per-epoch cost budget must be a positive finite number",
                ));
            }
            Some(b)
        }
        None => None,
    };
    if mode == ExecMode::Vectorized && (crashy || !faults.is_lossless()) {
        return Err(invalid(
            "exec",
            "vectorized",
            "the vectorized service covers only the lossless loop \
             (drop the fault and crash flags)",
        ));
    }
    let baseline = args.get("baseline").is_some_and(|v| v != "no");
    if baseline && (crashy || !faults.is_lossless()) {
        return Err(invalid(
            "baseline",
            args.get("baseline").unwrap_or("yes"),
            "the independent-runs baseline is lossless; it cannot be \
             compared against a faulty or crash-prone service run",
        ));
    }
    let robust = crashy || !faults.is_lossless() || deadline.is_some() || epoch_budget.is_some();
    if let Some(d) = deadline {
        for (_, entry) in schedule.iter_mut() {
            entry.deadline = Some(d);
        }
    }
    let model = EnergyModel::mica_like();
    let alpha = Basestation::alpha_for(&model, fleet as usize, live.len());
    let candidates = vec![0, 1, 2, 4, splits.max(1)];

    // Echo every entry's plan the way `simulate` does, planning each
    // distinct signature once (presentation only — the service itself
    // plans through its own cache). A single-entry schedule therefore
    // prints a preamble byte-identical to `acqp simulate`.
    let bs = Basestation::new(g.schema.clone(), &history);
    let mut shown: std::collections::BTreeMap<u64, (usize, usize, usize)> =
        std::collections::BTreeMap::new();
    for (text, entry) in &schedule {
        let sig = entry.query.signature();
        let (k, split_count, wire_bytes) = match shown.get(&sig) {
            Some(&v) => v,
            None => {
                let (k, planned) = bs
                    .plan_query_sized(&entry.query, alpha, &candidates)
                    .map_err(|e| format!("planning: {e}"))?;
                let v = (k, planned.plan.split_count(), planned.wire.len());
                shown.insert(sig, v);
                v
            }
        };
        println!("query : {text}");
        println!(
            "plan  : Heuristic-{k}, {split_count} splits, {wire_bytes} bytes (alpha = {alpha:.5})"
        );
    }

    let rec = recorder_from(args)?;
    // An inactive crash config must stay `Default` (its nonzero
    // checkpoint cadence would otherwise force the robust path).
    let crash = if crashy {
        CrashConfig { checkpoint_dir, checkpoint_every, crash_epochs, crash_rate }
    } else {
        CrashConfig::default()
    };
    let cfg = ServeConfig {
        alpha,
        candidate_splits: candidates,
        drift: DriftConfig::default(),
        faults: faults.clone(),
        crash,
        policy: ServicePolicy {
            epoch_cost_budget: epoch_budget,
            readmit_on_drift: robust,
            ..ServicePolicy::default()
        },
        collect_rows: false,
    };
    let entries: Vec<ScheduleEntry> = schedule.iter().map(|(_, e)| e.clone()).collect();
    let rep = serve_schedule(
        &g.schema,
        &history,
        &live,
        &entries,
        fleet,
        &model,
        live.len(),
        mode,
        cfg.clone(),
        &rec,
    )
    .map_err(|e| format!("serving: {e}"))?;
    if !rep.service.all_correct() {
        return Err(CliError::Usage("internal error: service verdicts diverged".into()));
    }

    let tuples = rep.service.tuples();
    println!(
        "\nsimulated {} tuples over {} motes x {} epochs: {} results",
        tuples,
        fleet,
        rep.service.epochs,
        rep.service.results()
    );
    println!(
        "energy: sensing {:.0} uJ + boards {:.0} uJ + radio {:.0} uJ = {:.0} uJ total",
        rep.service.network.sensing_uj,
        rep.service.network.board_uj,
        rep.service.network.radio_tx_uj + rep.service.network.radio_rx_uj,
        rep.service.network.total_uj()
    );
    let per_tuple = if tuples > 0 { rep.service.network.sensing_uj / tuples as f64 } else { 0.0 };
    println!("sensing energy per tuple: {per_tuple:.1} uJ");

    // Everything service-specific carries the `serve` prefix so a
    // single-query run can be byte-compared against plain `simulate`
    // by filtering these lines out.
    println!(
        "serve : {} of {} queries admitted; plan cache {} hits / {} misses / {} invalidations",
        rep.admitted,
        entries.len(),
        rep.cache_hits,
        rep.cache_misses,
        rep.cache_invalidations
    );
    println!(
        "serve : plan search expanded {} subproblems ({} on cache hits)",
        rep.total_subproblems, rep.hit_subproblems
    );
    println!(
        "serve : latency p50 {} epochs, p99 {} epochs (admission to first result)",
        rep.p50_latency_epochs, rep.p99_latency_epochs
    );
    println!(
        "serve : acquisitions {} performed / {} demanded; amortized sensing {:.1} uJ/query",
        rep.service.performed_acquisitions,
        rep.service.demanded_acquisitions,
        rep.amortized_sensing_uj_per_query
    );
    for (i, q) in rep.service.queries.iter().enumerate() {
        if !q.admitted {
            match q.shed_at {
                Some(e) => println!("serve : q{i} shed at epoch {e} by admission control"),
                None => println!("serve : q{i} never admitted (admission epoch beyond the run)"),
            }
            continue;
        }
        let lat = match q.latency_epochs {
            Some(l) => format!("first result after {l} epochs"),
            None => "no results".to_string(),
        };
        // The status suffix appears only for degraded outcomes, so a
        // lossless run's per-query lines are byte-identical to before.
        let status = match q.status {
            QueryStatus::Complete => String::new(),
            other => format!(", {}", other.label()),
        };
        println!(
            "serve : q{i} epochs {}..{}, {}/{} results, {}, {}{}",
            q.admit,
            q.completed_at,
            q.results,
            q.tuples,
            if q.cache_hit { "cached plan" } else { "planned" },
            lat,
            status
        );
    }
    // Robustness summaries print only when their feature is active, so
    // a default serve run stays byte-identical to the lossless loop.
    if let Some(rob) = rep.service.robustness.as_ref() {
        if !faults.is_lossless() {
            println!(
                "faults: seed {}, delivered {}/{} results, {} lost, {} aborted tuples, \
                 {} offline epochs",
                faults.seed,
                rob.delivered_results,
                rep.service.results(),
                rob.lost_results,
                rob.aborted_tuples,
                rob.offline_epochs
            );
        }
        if epoch_budget.is_some() || deadline.is_some() {
            println!(
                "policy: {} shed, {} timed out, {} partial; {} budget deferrals, \
                 {} fairness deferrals",
                rep.shed, rep.timed_out, rep.partial, rob.budget_deferrals, rob.fairness_deferrals
            );
        }
        if rob.readmissions > 0 {
            println!(
                "policy: {} live queries re-planned onto fresh statistics after drift",
                rob.readmissions
            );
        }
        if crashy {
            println!(
                "crashes: {} injected, {} cold starts, {} corrupt snapshots, \
                 {} WAL records replayed",
                rob.crashes, rob.cold_starts, rob.corrupt_snapshots, rob.wal_replayed
            );
            println!(
                "recovery: {} checkpoints written, re-dissemination cost {:.0} uJ",
                rob.checkpoints_written, rob.recovery_rediss_uj
            );
        }
    }
    if baseline {
        let independent = independent_schedule_energy(
            &g.schema,
            &history,
            &live,
            &entries,
            fleet,
            &model,
            live.len(),
            mode,
            &cfg,
        )
        .map_err(|e| format!("baseline: {e}"))?;
        println!(
            "serve : shared {:.0} uJ vs {:.0} uJ over {} independent runs ({:.2}x)",
            rep.shared_total_uj,
            independent,
            rep.admitted,
            independent / rep.shared_total_uj.max(1e-9)
        );
    }
    finish_flight(args, &rec)?;
    finish_metrics(args, &rec);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_vec(v: &[&str]) -> CliResult<()> {
        run(v.iter().map(|s| s.to_string()).collect()).map(|_| ())
    }

    #[test]
    fn usage_errors() {
        assert!(run_vec(&[]).is_err());
        assert!(run_vec(&["bogus"]).is_err());
        assert!(run_vec(&["plan", "--dataset", "lab"]).is_err(), "missing --query");
        assert!(run_vec(&["plan", "--dataset", "nope", "--query", "x > 1"]).is_err());
    }

    #[test]
    fn plan_end_to_end_small() {
        // Small lab dataset; heuristic plan.
        assert_eq!(
            run_vec(&[
                "plan",
                "--dataset",
                "lab",
                "--epochs",
                "300",
                "--motes",
                "6",
                "--query",
                "light >= 350 AND temp <= 21",
                "--splits",
                "4",
            ]),
            Ok(())
        );
    }

    #[test]
    fn plan_with_threads_and_budget() {
        assert_eq!(
            run_vec(&[
                "plan",
                "--dataset",
                "lab",
                "--epochs",
                "300",
                "--motes",
                "6",
                "--query",
                "light >= 350 AND temp <= 21",
                "--splits",
                "4",
                "--threads",
                "4",
                "--plan-budget-ms",
                "5000",
            ]),
            Ok(())
        );
        assert_eq!(
            run_vec(&[
                "plan",
                "--dataset",
                "lab",
                "--epochs",
                "300",
                "--motes",
                "6",
                "--query",
                "light >= 350 AND temp <= 21",
                "--algo",
                "exhaustive",
                "--grid",
                "2",
                "--threads",
                "2",
            ]),
            Ok(())
        );
        assert!(run_vec(&[
            "plan",
            "--dataset",
            "lab",
            "--query",
            "light >= 350",
            "--plan-budget-ms",
            "abc",
        ])
        .is_err());
    }

    #[test]
    fn plan_with_trace_json_and_metrics() {
        let trace =
            std::env::temp_dir().join(format!("acqp_cli_trace_{}.jsonl", std::process::id()));
        let trace_s = trace.to_str().unwrap();
        assert_eq!(
            run_vec(&[
                "plan",
                "--dataset",
                "lab",
                "--epochs",
                "300",
                "--motes",
                "6",
                "--query",
                "light >= 350 AND temp <= 21",
                "--splits",
                "4",
                "--trace-json",
                trace_s,
                "--metrics",
                "yes",
            ]),
            Ok(())
        );
        let text = std::fs::read_to_string(&trace).unwrap();
        assert!(!text.is_empty());
        for line in text.lines() {
            let span_shape = line.starts_with("{\"span\":") && line.contains("\"elapsed_us\":");
            let counter_shape = line.starts_with("{\"counter\":") && line.contains("\"value\":");
            assert!(span_shape || counter_shape, "unexpected trace line {line}");
        }
        // Planner, estimator and executor metrics all made it to the trace.
        assert!(text.contains("\"counter\":\"planner.subproblems.opened\""), "{text}");
        assert!(text.contains("\"counter\":\"estimator.mask_cache.hit\""));
        assert!(text.contains("\"counter\":\"exec.acquire."));
        assert!(text.contains("\"counter\":\"exec.pred0.est_sel\""));
        std::fs::remove_file(&trace).ok();
    }

    #[test]
    fn simulate_with_metrics_table() {
        assert_eq!(
            run_vec(&[
                "simulate",
                "--dataset",
                "garden5",
                "--epochs",
                "400",
                "--query",
                "temp0 BETWEEN 5 AND 25 AND hum0 <= 90",
                "--motes",
                "2",
                "--splits",
                "2",
                "--metrics",
                "yes",
            ]),
            Ok(())
        );
    }

    #[test]
    fn info_and_gen_roundtrip() {
        assert_eq!(run_vec(&["info", "--dataset", "synthetic", "--rows", "50"]), Ok(()));
        let out = std::env::temp_dir().join("acqp_cli_gen.csv");
        let out_s = out.to_str().unwrap();
        assert_eq!(run_vec(&["gen", "synthetic", "--rows", "100", "--out", out_s]), Ok(()));
        assert!(out.exists());
        std::fs::remove_file(out).ok();
    }

    #[test]
    fn plan_with_fallback_ladder() {
        assert_eq!(
            run_vec(&[
                "plan",
                "--dataset",
                "lab",
                "--epochs",
                "300",
                "--motes",
                "6",
                "--query",
                "light >= 350 AND temp <= 21",
                "--splits",
                "4",
                "--grid",
                "3",
                "--fallback",
                "yes",
            ]),
            Ok(())
        );
        // A starved budget descends the ladder instead of erroring.
        assert_eq!(
            run_vec(&[
                "plan",
                "--dataset",
                "lab",
                "--epochs",
                "300",
                "--motes",
                "6",
                "--query",
                "light >= 350 AND temp <= 21",
                "--fallback",
                "yes",
                "--budget",
                "1",
            ]),
            Ok(())
        );
    }

    #[test]
    fn simulate_with_crashes_and_checkpoints() {
        let dir = std::env::temp_dir().join(format!("acqp_cli_ckpt_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let dir_s = dir.to_str().unwrap();
        assert_eq!(
            run_vec(&[
                "simulate",
                "--dataset",
                "garden5",
                "--epochs",
                "400",
                "--query",
                "temp0 BETWEEN 5 AND 25 AND hum0 <= 90",
                "--motes",
                "2",
                "--splits",
                "2",
                "--checkpoint-dir",
                dir_s,
                "--checkpoint-every",
                "8",
                "--crash-epochs",
                "20,60",
            ]),
            Ok(())
        );
        assert!(dir.join("wal.log").exists(), "journaling must have written a WAL");
        std::fs::remove_dir_all(&dir).ok();
        // Crashes without a checkpoint dir cold-start; still succeeds.
        assert_eq!(
            run_vec(&[
                "simulate",
                "--dataset",
                "garden5",
                "--epochs",
                "300",
                "--query",
                "temp0 BETWEEN 5 AND 25",
                "--motes",
                "2",
                "--splits",
                "2",
                "--crash-rate",
                "0.05",
            ]),
            Ok(())
        );
        // Bad crash schedules are typed flag errors.
        assert!(run_vec(&[
            "simulate",
            "--dataset",
            "garden5",
            "--epochs",
            "100",
            "--query",
            "temp0 BETWEEN 5 AND 25",
            "--crash-epochs",
            "ten,20",
        ])
        .is_err());
    }

    #[test]
    fn simulate_small() {
        assert_eq!(
            run_vec(&[
                "simulate",
                "--dataset",
                "garden5",
                "--epochs",
                "400",
                "--query",
                "temp0 BETWEEN 5 AND 25 AND hum0 <= 90",
                "--motes",
                "2",
                "--splits",
                "2",
            ]),
            Ok(())
        );
    }

    #[test]
    fn exec_flag_selects_the_vectorized_path() {
        // Both commands accept --exec vectorized end to end.
        assert_eq!(
            run_vec(&[
                "plan",
                "--dataset",
                "synthetic",
                "--rows",
                "200",
                "--query",
                "x0 = 1 AND x1 = 1",
                "--splits",
                "2",
                "--exec",
                "vectorized",
            ]),
            Ok(())
        );
        assert_eq!(
            run_vec(&[
                "simulate",
                "--dataset",
                "garden5",
                "--epochs",
                "300",
                "--query",
                "temp0 BETWEEN 5 AND 25 AND hum0 <= 90",
                "--motes",
                "2",
                "--splits",
                "2",
                "--exec",
                "vectorized",
                "--metrics",
                "yes",
            ]),
            Ok(())
        );
    }

    #[test]
    fn serve_end_to_end_small() {
        assert_eq!(
            run_vec(&[
                "serve",
                "--dataset",
                "garden5",
                "--epochs",
                "300",
                "--schedule",
                "0:80:temp0 BETWEEN 5 AND 25 AND hum0 <= 90;20:60:temp0 BETWEEN 5 AND 25",
                "--motes",
                "2",
                "--splits",
                "2",
                "--baseline",
                "yes",
                "--metrics",
                "yes",
            ]),
            Ok(())
        );
    }

    #[test]
    fn serve_accepts_fault_flags_and_rejects_invalid_combinations() {
        let base = |extra: &[&str]| {
            let mut v = vec![
                "serve",
                "--dataset",
                "garden5",
                "--epochs",
                "200",
                "--schedule",
                "0:40:temp0 BETWEEN 5 AND 25",
            ];
            v.extend_from_slice(extra);
            run_vec(&v)
        };
        // Fault, crash and policy flags are serve-compatible now.
        assert_eq!(base(&["--loss-rate", "0.2", "--fault-seed", "7"]), Ok(()));
        assert_eq!(base(&["--crash-rate", "0.05"]), Ok(()));
        assert_eq!(base(&["--deadline", "8"]), Ok(()));
        assert_eq!(base(&["--epoch-budget", "500"]), Ok(()));
        // Mid-run re-planning stays `simulate`-only.
        assert!(base(&["--replan-threshold", "0.3"]).is_err());
        assert!(base(&["--sample-every", "4"]).is_err());
        // The vectorized service cannot inject faults or crashes.
        assert!(base(&["--exec", "vectorized", "--loss-rate", "0.2"]).is_err());
        assert!(base(&["--exec", "vectorized", "--crash-rate", "0.05"]).is_err());
        // ...but lossless vectorized policy runs are fine.
        assert_eq!(base(&["--exec", "vectorized", "--deadline", "8"]), Ok(()));
        // The independent baseline is meaningless under faults/crashes.
        assert!(base(&["--baseline", "yes", "--loss-rate", "0.2"]).is_err());
        assert!(base(&["--baseline", "yes", "--crash-epochs", "10"]).is_err());
        // Malformed robustness values are typed errors.
        assert!(base(&["--deadline", "0"]).is_err());
        assert!(base(&["--epoch-budget", "-1"]).is_err());
        assert!(base(&["--epoch-budget", "nan"]).is_err());
        assert!(base(&["--loss-rate", "1.5"]).is_err());
        assert!(base(&["--motes", "0"]).is_err());
        assert!(run_vec(&[
            "serve",
            "--dataset",
            "garden5",
            "--epochs",
            "200",
            "--schedule",
            "0:0:temp0 BETWEEN 5 AND 25",
        ])
        .is_err());
        assert!(run_vec(&["serve", "--dataset", "garden5", "--epochs", "200"]).is_err());
    }

    #[test]
    fn exec_flag_rejects_bad_values_and_fault_combinations() {
        let base = |extra: &[&str]| {
            let mut v = vec![
                "simulate",
                "--dataset",
                "garden5",
                "--epochs",
                "100",
                "--query",
                "temp0 BETWEEN 5 AND 25",
                "--exec",
                "vectorized",
            ];
            v.extend_from_slice(extra);
            run_vec(&v)
        };
        assert!(run_vec(&[
            "plan",
            "--dataset",
            "synthetic",
            "--rows",
            "100",
            "--query",
            "x0 = 1",
            "--exec",
            "simd",
        ])
        .is_err());
        assert!(base(&["--loss-rate", "0.2"]).is_err());
        assert!(base(&["--replan-threshold", "0.3"]).is_err());
        assert!(base(&["--crash-rate", "0.05"]).is_err());
        // Lossless vectorized stays fine even with explicit zero rates.
        assert_eq!(base(&["--loss-rate", "0.0"]), Ok(()));
    }
}
