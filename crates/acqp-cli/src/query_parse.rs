//! A small textual query language over a dataset's schema, in natural
//! units.
//!
//! Grammar (case-insensitive keywords):
//!
//! ```text
//! query   := clause ( "AND" clause )*
//! clause  := "NOT" "(" cmp ")" | cmp
//! cmp     := ident op number
//!          | ident "BETWEEN" number "AND" number
//! op      := ">=" | "<=" | ">" | "<" | "="
//! ```
//!
//! Examples: `light >= 350 AND temp <= 21 AND humidity <= 48`,
//! `NOT(temp0 BETWEEN 10 AND 17) AND volt3 < 2.8`.
//!
//! Numbers are given in natural units and converted to discretized bins
//! through the dataset's [`Discretizer`]s (attributes without one —
//! node ids, hours — take their raw integer value).

use acqp_core::{Discretizer, Error, Pred, Query, Result, Schema};

/// Parses `text` into a [`Query`] against `schema`, converting values
/// through `discretizers` (indexed per attribute, `None` = raw bins).
pub fn parse_query(
    text: &str,
    schema: &Schema,
    discretizers: &[Option<Discretizer>],
) -> Result<Query> {
    let tokens = tokenize(text)?;
    let mut p = Parser { tokens, pos: 0, schema, discretizers };
    let preds = p.parse_all()?;
    Query::checked(preds, schema)
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Num(f64),
    Op(&'static str),
    And,
    Not,
    Between,
    LParen,
    RParen,
}

fn bad(what: &'static str) -> Error {
    Error::Parse { what }
}

fn tokenize(text: &str) -> Result<Vec<Tok>> {
    let mut out = Vec::new();
    let b = text.as_bytes();
    let mut i = 0;
    while i < b.len() {
        let c = b[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                out.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                out.push(Tok::RParen);
                i += 1;
            }
            '>' | '<' | '=' => {
                if c != '=' && i + 1 < b.len() && b[i + 1] == b'=' {
                    out.push(Tok::Op(if c == '>' { ">=" } else { "<=" }));
                    i += 2;
                } else {
                    out.push(Tok::Op(match c {
                        '>' => ">",
                        '<' => "<",
                        _ => "=",
                    }));
                    i += 1;
                }
            }
            '0'..='9' | '-' | '.' => {
                let start = i;
                i += 1;
                while i < b.len() && matches!(b[i] as char, '0'..='9' | '.' | 'e' | 'E' | '-' | '+')
                {
                    // Stop '-'/'+' unless part of an exponent.
                    if matches!(b[i] as char, '-' | '+') && !matches!(b[i - 1] as char, 'e' | 'E') {
                        break;
                    }
                    i += 1;
                }
                let s = &text[start..i];
                let v: f64 = s.parse().map_err(|_| bad("malformed number"))?;
                out.push(Tok::Num(v));
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < b.len() && ((b[i] as char).is_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                let word = &text[start..i];
                match word.to_ascii_uppercase().as_str() {
                    "AND" => out.push(Tok::And),
                    "NOT" => out.push(Tok::Not),
                    "BETWEEN" => out.push(Tok::Between),
                    _ => out.push(Tok::Ident(word.to_string())),
                }
            }
            _ => return Err(bad("unexpected character in query")),
        }
    }
    Ok(out)
}

struct Parser<'a> {
    tokens: Vec<Tok>,
    pos: usize,
    schema: &'a Schema,
    discretizers: &'a [Option<Discretizer>],
}

impl Parser<'_> {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, t: &Tok, what: &'static str) -> Result<()> {
        match self.next() {
            Some(ref got) if got == t => Ok(()),
            _ => Err(bad(what)),
        }
    }

    fn parse_all(&mut self) -> Result<Vec<Pred>> {
        let mut preds = vec![self.clause()?];
        while self.peek() == Some(&Tok::And) {
            self.next();
            preds.push(self.clause()?);
        }
        if self.pos != self.tokens.len() {
            return Err(bad("trailing tokens after query"));
        }
        Ok(preds)
    }

    fn clause(&mut self) -> Result<Pred> {
        if self.peek() == Some(&Tok::Not) {
            self.next();
            self.expect(&Tok::LParen, "expected '(' after NOT")?;
            let p = self.cmp()?;
            self.expect(&Tok::RParen, "expected ')' closing NOT")?;
            return Ok(negate(p));
        }
        self.cmp()
    }

    fn cmp(&mut self) -> Result<Pred> {
        let name = match self.next() {
            Some(Tok::Ident(n)) => n,
            _ => return Err(bad("expected attribute name")),
        };
        let attr = self
            .schema
            .by_name(&name)
            .ok_or(Error::UnknownAttr { attr: usize::MAX, n: self.schema.len() })?;
        let k = self.schema.domain(attr);
        match self.next() {
            Some(Tok::Op(op)) => {
                let v = self.number()?;
                let bin = self.to_bin(attr, v);
                Ok(match op {
                    ">=" => Pred::in_range(attr, bin, k - 1),
                    ">" => Pred::in_range(attr, bin.saturating_add(1).min(k - 1), k - 1),
                    "<=" => Pred::in_range(attr, 0, bin),
                    "<" => Pred::in_range(attr, 0, bin.saturating_sub(1)),
                    "=" => Pred::in_range(attr, bin, bin),
                    _ => unreachable!(),
                })
            }
            Some(Tok::Between) => {
                let lo = self.number()?;
                self.expect(&Tok::And, "expected AND inside BETWEEN")?;
                let hi = self.number()?;
                let (blo, bhi) = (self.to_bin(attr, lo), self.to_bin(attr, hi));
                if blo > bhi {
                    return Err(Error::InvertedRange { lo: blo, hi: bhi });
                }
                Ok(Pred::in_range(attr, blo, bhi))
            }
            _ => Err(bad("expected comparison operator or BETWEEN")),
        }
    }

    fn number(&mut self) -> Result<f64> {
        match self.next() {
            Some(Tok::Num(v)) => Ok(v),
            _ => Err(bad("expected a number")),
        }
    }

    fn to_bin(&self, attr: usize, v: f64) -> u16 {
        let k = self.schema.domain(attr);
        match self.discretizers.get(attr).and_then(|d| d.as_ref()) {
            Some(d) => d.quantize(v),
            None => (v.max(0.0).round() as u32).min(u32::from(k) - 1) as u16,
        }
    }
}

fn negate(p: Pred) -> Pred {
    let (lo, hi) = p.bounds();
    if p.is_negated() {
        Pred::in_range(p.attr(), lo, hi)
    } else {
        Pred::not_in_range(p.attr(), lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acqp_core::Attribute;

    fn setup() -> (Schema, Vec<Option<Discretizer>>) {
        let schema = Schema::new(vec![
            Attribute::new("light", 64, 100.0),
            Attribute::new("temp", 64, 100.0),
            Attribute::new("hour", 24, 1.0),
        ])
        .unwrap();
        let d = vec![
            Some(Discretizer::uniform(0.0, 1200.0, 64)),
            Some(Discretizer::uniform(10.0, 35.0, 64)),
            None,
        ];
        (schema, d)
    }

    #[test]
    fn parses_conjunction_with_units() {
        let (s, d) = setup();
        let q = parse_query("light >= 350 AND temp <= 21 AND hour < 6", &s, &d).unwrap();
        assert_eq!(q.len(), 3);
        let p0 = q.pred(0);
        assert_eq!(p0.attr(), 0);
        assert_eq!(p0.bounds(), (d[0].as_ref().unwrap().quantize(350.0), 63));
        let p2 = q.pred(2);
        assert_eq!(p2.attr(), 2);
        assert_eq!(p2.bounds(), (0, 5));
    }

    #[test]
    fn parses_between_and_not() {
        let (s, d) = setup();
        let q = parse_query("NOT(temp BETWEEN 15 AND 25) AND hour = 3", &s, &d).unwrap();
        assert_eq!(q.len(), 2);
        assert!(q.pred(0).is_negated());
        let td = d[1].as_ref().unwrap();
        assert_eq!(q.pred(0).bounds(), (td.quantize(15.0), td.quantize(25.0)));
        assert_eq!(q.pred(1).bounds(), (3, 3));
    }

    #[test]
    fn strict_inequalities_shift_bins() {
        let (s, d) = setup();
        let q = parse_query("hour > 6 AND light < 100", &s, &d).unwrap();
        assert_eq!(q.pred(0).bounds(), (7, 23));
        let lb = d[0].as_ref().unwrap().quantize(100.0);
        assert_eq!(q.pred(1).bounds(), (0, lb - 1));
    }

    #[test]
    fn case_insensitive_keywords_and_whitespace() {
        let (s, d) = setup();
        let q = parse_query("  light>=350   and not( temp between 15 and 20 ) ", &s, &d);
        assert!(q.is_ok(), "{q:?}");
    }

    #[test]
    fn rejects_garbage() {
        let (s, d) = setup();
        assert!(parse_query("", &s, &d).is_err());
        assert!(parse_query("light >=", &s, &d).is_err());
        assert!(parse_query("nosuchattr > 1", &s, &d).is_err());
        assert!(parse_query("light > 1 OR temp < 2", &s, &d).is_err());
        assert!(parse_query("light > 1 temp < 2", &s, &d).is_err());
        assert!(parse_query("light BETWEEN 500 AND 100", &s, &d).is_err());
        assert!(parse_query("light > 1 AND light < 5", &s, &d).is_err(), "dup attr");
        assert!(parse_query("light # 3", &s, &d).is_err());
    }

    #[test]
    fn negative_and_scientific_numbers() {
        let s = Schema::new(vec![Attribute::new("t", 64, 1.0)]).unwrap();
        let d = vec![Some(Discretizer::uniform(-5.0, 35.0, 64))];
        let q = parse_query("t >= -2.5", &s, &d).unwrap();
        assert_eq!(q.pred(0).bounds().0, d[0].as_ref().unwrap().quantize(-2.5));
        let q = parse_query("t < 1e1", &s, &d).unwrap();
        assert!(q.pred(0).bounds().1 < 64);
    }
}
