//! End-to-end CLI tests through the real binary: typed errors for bad
//! user input exit nonzero with a structured message, and the fault
//! flags keep the documented determinism guarantees.

use std::process::{Command, Output};

fn acqp(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_acqp")).args(args).output().expect("spawning the acqp binary")
}

const SIM: &[&str] = &[
    "simulate",
    "--dataset",
    "garden5",
    "--epochs",
    "240",
    "--query",
    "temp0 BETWEEN 5 AND 25 AND hum0 <= 90",
    "--motes",
    "2",
    "--splits",
    "2",
];

fn sim_with(extra: &[&str]) -> Output {
    let mut v: Vec<&str> = SIM.to_vec();
    v.extend_from_slice(extra);
    acqp(&v)
}

fn assert_rejected(out: &Output, needle: &str, ctx: &str) {
    assert!(!out.status.success(), "{ctx}: expected nonzero exit");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains(needle), "{ctx}: stderr missing `{needle}`:\n{stderr}");
}

#[test]
fn malformed_trace_path_is_a_typed_io_error() {
    let out = sim_with(&["--trace-json", "/nonexistent-dir/trace.jsonl"]);
    assert_rejected(&out, "io error on", "bad --trace-json path");
}

#[test]
fn out_of_range_fault_flags_are_typed_errors() {
    let out = sim_with(&["--loss-rate", "1.5"]);
    assert_rejected(&out, "invalid value `1.5` for --loss-rate", "loss rate above 1");

    let out = sim_with(&["--sensing-fail", "-0.1"]);
    assert_rejected(&out, "invalid value", "negative sensing-fail");

    let out = sim_with(&["--max-attempts", "0"]);
    assert_rejected(&out, "invalid value `0` for --max-attempts", "zero attempts");

    let out = sim_with(&["--dropout", "0:9:3"]);
    assert_rejected(&out, "invalid value", "dropout window with from >= until");

    let out = sim_with(&["--dropout", "banana"]);
    assert_rejected(&out, "invalid value", "unparseable dropout spec");
}

#[test]
fn zero_motes_and_bad_replan_threshold_are_typed_errors() {
    let mut v: Vec<&str> = SIM.to_vec();
    let m = v.iter().position(|a| *a == "--motes").unwrap();
    v[m + 1] = "0";
    assert_rejected(&acqp(&v), "invalid value `0` for --motes", "zero motes");

    let out = sim_with(&["--replan-threshold", "1.5"]);
    assert_rejected(&out, "invalid value `1.5` for --replan-threshold", "threshold above 1");

    let out = sim_with(&["--replan-threshold", "0"]);
    assert_rejected(&out, "invalid value `0` for --replan-threshold", "zero threshold");
}

#[test]
fn zero_loss_faulty_flags_leave_output_bitwise_identical() {
    let base = acqp(SIM);
    assert!(base.status.success(), "{}", String::from_utf8_lossy(&base.stderr));
    let zero = sim_with(&["--loss-rate", "0.0", "--fault-seed", "99"]);
    assert!(zero.status.success(), "{}", String::from_utf8_lossy(&zero.stderr));
    assert_eq!(base.stdout, zero.stdout, "loss-rate 0 must not perturb output");
}

#[test]
fn lossy_runs_are_deterministic_for_a_fixed_seed() {
    let flags = &["--loss-rate", "0.3", "--fault-seed", "7", "--sensing-fail", "0.1"];
    let a = sim_with(flags);
    assert!(a.status.success(), "{}", String::from_utf8_lossy(&a.stderr));
    let b = sim_with(flags);
    assert_eq!(a.stdout, b.stdout, "same seed must reproduce the run bitwise");
    let text = String::from_utf8_lossy(&a.stdout);
    assert!(text.contains("faults: seed 7"), "lossy run must print the fault summary:\n{text}");
}

#[test]
fn adaptive_run_prints_replan_summary() {
    let out = sim_with(&["--replan-threshold", "0.2"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("replans:"), "adaptive run must print the replan summary:\n{text}");
}
