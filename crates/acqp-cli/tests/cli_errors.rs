//! End-to-end CLI tests through the real binary: typed errors for bad
//! user input exit nonzero with a structured message, and the fault
//! flags keep the documented determinism guarantees.

use std::process::{Command, Output};

fn acqp(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_acqp")).args(args).output().expect("spawning the acqp binary")
}

const SIM: &[&str] = &[
    "simulate",
    "--dataset",
    "garden5",
    "--epochs",
    "240",
    "--query",
    "temp0 BETWEEN 5 AND 25 AND hum0 <= 90",
    "--motes",
    "2",
    "--splits",
    "2",
];

fn sim_with(extra: &[&str]) -> Output {
    let mut v: Vec<&str> = SIM.to_vec();
    v.extend_from_slice(extra);
    acqp(&v)
}

fn assert_rejected(out: &Output, needle: &str, ctx: &str) {
    assert!(!out.status.success(), "{ctx}: expected nonzero exit");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains(needle), "{ctx}: stderr missing `{needle}`:\n{stderr}");
}

#[test]
fn malformed_trace_path_is_a_typed_io_error() {
    let out = sim_with(&["--trace-json", "/nonexistent-dir/trace.jsonl"]);
    assert_rejected(&out, "io error on", "bad --trace-json path");
}

#[test]
fn out_of_range_fault_flags_are_typed_errors() {
    let out = sim_with(&["--loss-rate", "1.5"]);
    assert_rejected(&out, "invalid value `1.5` for --loss-rate", "loss rate above 1");

    let out = sim_with(&["--sensing-fail", "-0.1"]);
    assert_rejected(&out, "invalid value", "negative sensing-fail");

    let out = sim_with(&["--max-attempts", "0"]);
    assert_rejected(&out, "invalid value `0` for --max-attempts", "zero attempts");

    let out = sim_with(&["--dropout", "0:9:3"]);
    assert_rejected(&out, "invalid value", "dropout window with from >= until");

    let out = sim_with(&["--dropout", "banana"]);
    assert_rejected(&out, "invalid value", "unparseable dropout spec");
}

#[test]
fn zero_motes_and_bad_replan_threshold_are_typed_errors() {
    let mut v: Vec<&str> = SIM.to_vec();
    let m = v.iter().position(|a| *a == "--motes").unwrap();
    v[m + 1] = "0";
    assert_rejected(&acqp(&v), "invalid value `0` for --motes", "zero motes");

    let out = sim_with(&["--replan-threshold", "1.5"]);
    assert_rejected(&out, "invalid value `1.5` for --replan-threshold", "threshold above 1");

    let out = sim_with(&["--replan-threshold", "0"]);
    assert_rejected(&out, "invalid value `0` for --replan-threshold", "zero threshold");
}

#[test]
fn zero_loss_faulty_flags_leave_output_bitwise_identical() {
    let base = acqp(SIM);
    assert!(base.status.success(), "{}", String::from_utf8_lossy(&base.stderr));
    let zero = sim_with(&["--loss-rate", "0.0", "--fault-seed", "99"]);
    assert!(zero.status.success(), "{}", String::from_utf8_lossy(&zero.stderr));
    assert_eq!(base.stdout, zero.stdout, "loss-rate 0 must not perturb output");
}

#[test]
fn lossy_runs_are_deterministic_for_a_fixed_seed() {
    let flags = &["--loss-rate", "0.3", "--fault-seed", "7", "--sensing-fail", "0.1"];
    let a = sim_with(flags);
    assert!(a.status.success(), "{}", String::from_utf8_lossy(&a.stderr));
    let b = sim_with(flags);
    assert_eq!(a.stdout, b.stdout, "same seed must reproduce the run bitwise");
    let text = String::from_utf8_lossy(&a.stdout);
    assert!(text.contains("faults: seed 7"), "lossy run must print the fault summary:\n{text}");
}

#[test]
fn adaptive_run_prints_replan_summary() {
    let out = sim_with(&["--replan-threshold", "0.2"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("replans:"), "adaptive run must print the replan summary:\n{text}");
}

/// Every fault / re-plan / crash flag, with a value that activates it.
/// `--exec vectorized` must reject each one; the scalar path accepts
/// them all. Exhaustive on purpose: a new engine-forking flag added to
/// `simulate` must either join this list or be vectorized-safe.
const ENGINE_FORKING: &[(&str, &str)] = &[
    ("--loss-rate", "0.2"),
    ("--sensing-fail", "0.1"),
    ("--dropout", "0:3:9"),
    ("--max-attempts", "2"),
    ("--fault-seed", "7"),
    ("--replan-threshold", "0.3"),
    ("--checkpoint-every", "8"),
    ("--checkpoint-dir", "/tmp/acqp_cli_vec_conflict_ckpt"),
    ("--crash-epochs", "20"),
    ("--crash-rate", "0.05"),
];

#[test]
fn vectorized_conflicts_with_every_engine_forking_flag() {
    for (flag, value) in ENGINE_FORKING {
        // --fault-seed and --max-attempts alone leave the fault model
        // lossless, so they stay vectorized-safe; pair them with a
        // loss rate to confirm the combination is still rejected.
        let lossless_alone = matches!(*flag, "--fault-seed" | "--max-attempts");
        let mut extra = vec!["--exec", "vectorized", *flag, *value];
        if lossless_alone {
            let accepted = sim_with(&extra);
            assert!(
                accepted.status.success(),
                "{flag} without a loss rate must stay vectorized-safe:\n{}",
                String::from_utf8_lossy(&accepted.stderr)
            );
            extra.extend_from_slice(&["--loss-rate", "0.2"]);
        }
        let out = sim_with(&extra);
        assert_rejected(&out, "invalid value `vectorized` for --exec", flag);
        assert_rejected(&out, "lossless simulation", flag);
    }
}

#[test]
fn scalar_accepts_each_engine_forking_flag() {
    for (flag, value) in ENGINE_FORKING {
        let out = sim_with(&[*flag, *value]);
        assert!(
            out.status.success(),
            "{flag} {value} must run on the scalar engine:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    std::fs::remove_dir_all("/tmp/acqp_cli_vec_conflict_ckpt").ok();
}

const SERVE: &[&str] = &[
    "serve",
    "--dataset",
    "garden5",
    "--epochs",
    "240",
    "--schedule",
    "0:60:temp0 BETWEEN 5 AND 25 AND hum0 <= 90;10:40:temp0 BETWEEN 5 AND 25",
    "--motes",
    "2",
    "--splits",
    "2",
];

fn serve_with(extra: &[&str]) -> Output {
    let mut v: Vec<&str> = SERVE.to_vec();
    v.extend_from_slice(extra);
    acqp(&v)
}

/// Fault and crash flags are serve-compatible since the fault-tolerant
/// service landed; only the mid-run re-plan family stays
/// `simulate`-only (the service re-plans through its drift policy).
#[test]
fn serve_accepts_fault_and_crash_flags_but_rejects_replan_flags() {
    for (flag, value) in ENGINE_FORKING {
        let out = serve_with(&[*flag, *value]);
        if *flag == "--replan-threshold" {
            assert_rejected(&out, &format!("invalid value `{value}` for {flag}"), flag);
            assert_rejected(&out, "drift policy", flag);
        } else {
            assert!(
                out.status.success(),
                "{flag} {value} must run on the robust service:\n{}",
                String::from_utf8_lossy(&out.stderr)
            );
        }
    }
    for (flag, value) in [("--replan-budget", "1000"), ("--sample-every", "4")] {
        let out = serve_with(&[flag, value]);
        assert_rejected(&out, &format!("invalid value `{value}` for {flag}"), flag);
    }
    std::fs::remove_dir_all("/tmp/acqp_cli_vec_conflict_ckpt").ok();
}

/// Combinations the robust service still cannot honor stay typed
/// errors: the vectorized loop cannot inject faults or crashes, and
/// the independent-runs baseline is only meaningful losslessly.
#[test]
fn serve_rejects_still_invalid_flag_combinations() {
    let out = serve_with(&["--exec", "vectorized", "--loss-rate", "0.2"]);
    assert_rejected(&out, "invalid value `vectorized` for --exec", "vectorized + loss");
    let out = serve_with(&["--exec", "vectorized", "--crash-epochs", "20"]);
    assert_rejected(&out, "invalid value `vectorized` for --exec", "vectorized + crashes");
    let out = serve_with(&["--baseline", "yes", "--loss-rate", "0.2"]);
    assert_rejected(&out, "invalid value `yes` for --baseline", "baseline + loss");
    let out = serve_with(&["--baseline", "yes", "--crash-rate", "0.05"]);
    assert_rejected(&out, "invalid value `yes` for --baseline", "baseline + crashes");
    let out = serve_with(&["--deadline", "0"]);
    assert_rejected(&out, "invalid value `0` for --deadline", "zero deadline");
    let out = serve_with(&["--epoch-budget", "-5"]);
    assert_rejected(&out, "invalid value `-5` for --epoch-budget", "negative budget");
}

#[test]
fn loss_zero_serve_output_is_bitwise_identical_to_default() {
    for exec in [&["--exec", "scalar"][..], &["--exec", "vectorized"][..]] {
        let mut base_args: Vec<&str> = exec.to_vec();
        let base = serve_with(&base_args);
        assert!(base.status.success(), "{}", String::from_utf8_lossy(&base.stderr));
        base_args.extend_from_slice(&["--loss-rate", "0.0", "--crash-rate", "0.0"]);
        base_args.extend_from_slice(&["--fault-seed", "123"]);
        let zero = serve_with(&base_args);
        assert!(zero.status.success(), "{}", String::from_utf8_lossy(&zero.stderr));
        assert_eq!(
            base.stdout, zero.stdout,
            "loss-0/no-crash serve must match the lossless loop byte for byte ({exec:?})"
        );
    }
}

#[test]
fn lossy_serve_runs_are_deterministic_for_a_fixed_seed() {
    let flags = &["--loss-rate", "0.25", "--fault-seed", "11", "--sensing-fail", "0.05"];
    let a = serve_with(flags);
    assert!(a.status.success(), "{}", String::from_utf8_lossy(&a.stderr));
    let b = serve_with(flags);
    assert_eq!(a.stdout, b.stdout, "same seed must reproduce the serve run bitwise");
    let text = String::from_utf8_lossy(&a.stdout);
    assert!(text.contains("faults: seed 11"), "lossy serve must print the fault summary:\n{text}");
}

#[test]
fn serve_rejects_malformed_schedules_with_typed_errors() {
    let cases: &[(&str, &str)] = &[
        ("temp0 <= 25", "expected admit:window:<expr>"),
        ("0:60", "expected admit:window:<expr>"),
        ("x:60:temp0 <= 25", "admission epoch must be a whole number"),
        ("0:x:temp0 <= 25", "window must be a whole number"),
        ("0:0:temp0 <= 25", "at least 1 epoch"),
        ("0:60:temp0 <= 25;;", "expected admit:window:<expr>"),
    ];
    for (spec, needle) in cases {
        let mut v: Vec<&str> = SERVE.to_vec();
        let s = v.iter().position(|a| *a == "--schedule").unwrap();
        v[s + 1] = spec;
        assert_rejected(&acqp(&v), needle, spec);
    }
    let mut v: Vec<&str> = SERVE.to_vec();
    let s = v.iter().position(|a| *a == "--schedule").unwrap();
    v[s + 1] = "0:60:bogus_attr <= 25";
    let out = acqp(&v);
    assert!(!out.status.success(), "unknown attribute in a schedule must fail");
}

#[test]
fn serve_runs_both_exec_modes_bitwise_identically() {
    let scalar = serve_with(&[]);
    assert!(scalar.status.success(), "{}", String::from_utf8_lossy(&scalar.stderr));
    let vec = serve_with(&["--exec", "vectorized"]);
    assert!(vec.status.success(), "{}", String::from_utf8_lossy(&vec.stderr));
    assert_eq!(scalar.stdout, vec.stdout, "serve must not fork on the exec mode");
    let text = String::from_utf8_lossy(&scalar.stdout);
    assert!(text.contains("serve : 2 of 2 queries admitted"), "{text}");
}
