//! Attributes, acquisition costs and schemas.
//!
//! Following §2.1 of the paper, a query table has `n` attributes
//! `X_1..X_n`, each taking a discretized value in a finite domain, and
//! each carrying an *acquisition cost* `C_i` — the price (energy,
//! latency, money) of observing the attribute's value for one tuple.
//! Internally values are 0-based: attribute `i` takes values in
//! `0..K_i`, where the paper writes `{1..K_i}`.

use crate::error::{Error, Result};

/// Index of an attribute within a [`Schema`].
pub type AttrId = usize;

/// One attribute of the query table: a name, a discretized domain size
/// `K` and an acquisition cost `C`.
#[derive(Debug, Clone, PartialEq)]
pub struct Attribute {
    name: String,
    domain: u16,
    cost: f64,
}

impl Attribute {
    /// Creates an attribute with `domain` possible values (`0..domain`)
    /// and per-tuple acquisition cost `cost`.
    pub fn new(name: impl Into<String>, domain: u16, cost: f64) -> Self {
        Attribute { name: name.into(), domain, cost }
    }

    /// Attribute name (used by the plan pretty-printer).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Domain size `K`: values are `0..K`.
    pub fn domain(&self) -> u16 {
        self.domain
    }

    /// Acquisition cost `C` of observing this attribute once.
    pub fn cost(&self) -> f64 {
        self.cost
    }
}

/// An ordered collection of attributes; the "query table" of the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct Schema {
    attrs: Vec<Attribute>,
}

impl Schema {
    /// Creates a schema, validating that it is non-empty and every
    /// attribute has a non-empty domain and a finite, non-negative cost.
    pub fn new(attrs: Vec<Attribute>) -> Result<Self> {
        if attrs.is_empty() {
            return Err(Error::EmptySchema);
        }
        for a in &attrs {
            if a.domain == 0 {
                return Err(Error::EmptyDomain { attr: a.name.clone() });
            }
            debug_assert!(a.cost.is_finite() && a.cost >= 0.0, "cost must be finite and >= 0");
        }
        Ok(Schema { attrs })
    }

    /// Number of attributes `n`.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// True when the schema holds no attributes (never true for a
    /// successfully constructed schema).
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// The attribute with id `id`. Panics if out of range.
    pub fn attr(&self, id: AttrId) -> &Attribute {
        &self.attrs[id]
    }

    /// All attributes in order.
    pub fn attrs(&self) -> &[Attribute] {
        &self.attrs
    }

    /// Domain size `K_i` of attribute `id`.
    pub fn domain(&self, id: AttrId) -> u16 {
        self.attrs[id].domain
    }

    /// Acquisition cost `C_i` of attribute `id`.
    pub fn cost(&self, id: AttrId) -> f64 {
        self.attrs[id].cost
    }

    /// Looks an attribute up by name.
    pub fn by_name(&self, name: &str) -> Option<AttrId> {
        self.attrs.iter().position(|a| a.name == name)
    }

    /// Validates that `id` names an attribute of this schema.
    pub fn check_attr(&self, id: AttrId) -> Result<()> {
        if id < self.attrs.len() {
            Ok(())
        } else {
            Err(Error::UnknownAttr { attr: id, n: self.attrs.len() })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema3() -> Schema {
        Schema::new(vec![
            Attribute::new("temp", 16, 100.0),
            Attribute::new("light", 8, 100.0),
            Attribute::new("hour", 24, 1.0),
        ])
        .unwrap()
    }

    #[test]
    fn schema_accessors() {
        let s = schema3();
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.attr(0).name(), "temp");
        assert_eq!(s.domain(1), 8);
        assert_eq!(s.cost(2), 1.0);
        assert_eq!(s.by_name("light"), Some(1));
        assert_eq!(s.by_name("nope"), None);
    }

    #[test]
    fn empty_schema_rejected() {
        assert_eq!(Schema::new(vec![]).unwrap_err(), Error::EmptySchema);
    }

    #[test]
    fn empty_domain_rejected() {
        let err = Schema::new(vec![Attribute::new("x", 0, 1.0)]).unwrap_err();
        assert!(matches!(err, Error::EmptyDomain { .. }));
    }

    #[test]
    fn check_attr_bounds() {
        let s = schema3();
        assert!(s.check_attr(2).is_ok());
        assert!(matches!(s.check_attr(3), Err(Error::UnknownAttr { attr: 3, n: 3 })));
    }
}
