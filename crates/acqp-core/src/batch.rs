//! Vectorized columnar plan execution (`DESIGN.md` §12).
//!
//! The scalar executor of [`crate::exec`] walks one tuple at a time:
//! per tuple it chases `Box` pointers through the plan tree, consults
//! the cost model on every first acquisition and early-terminates the
//! leaf's predicate loop. This module evaluates the same conditional
//! plan over *batches* of tuples instead:
//!
//! * [`ColumnBatch`] — typed column slices plus an optional validity
//!   mask; predicates run as tight loops over `&[u16]`.
//! * [`FlatPlan`] — the plan tree flattened into an index-linked arena,
//!   so traversal never chases a `Box`.
//! * [`PreparedPlan`] — a [`FlatPlan`] specialized to one
//!   `(query, schema, cost model)`: every tuple reaching a given node
//!   has walked the same root path, so its acquisition mask, running
//!   cost and acquisition order are *node constants*. Preparation
//!   computes them once by driving the scalar path's own
//!   [`TupleState::charge`] arithmetic, which is what makes per-tuple
//!   costs bitwise-equal to the scalar walk by construction.
//! * [`BatchExecutor`] — traverses a prepared plan with selection
//!   vectors: split nodes stably partition the selection, sequential
//!   leaves compact it per predicate with branch-free unconditional
//!   exit-state writes.
//!
//! The contract is **bitwise equivalence** with [`crate::exec::execute`]
//! on every tuple — verdicts, `f64` costs, acquisition order, and all
//! metered `exec.*` metrics. The differential harness in
//! `tests/vectorized_equivalence.rs` enforces it property-wise; the
//! batch path additionally records its own `exec.batch.*` subtree.

use acqp_obs::{Counter, FlightRecorder, Hist, Recorder};

use crate::attr::{AttrId, Schema};
use crate::costmodel::CostModel;
use crate::dataset::Dataset;
use crate::exec::{ExecMetrics, ExecOutcome, TupleState};
use crate::plan::Plan;
use crate::query::{Pred, Query};

/// Tuples per batch window for the chunked entry points
/// ([`crate::cost::measure_mode`] and trace replay). One batch of
/// `u16` columns stays comfortably inside L1 even for wide schemas.
pub const BATCH_ROWS: usize = 1024;

/// A batch of tuples in columnar layout: one `&[u16]` slice per schema
/// attribute, all of equal length, plus an optional validity mask for
/// batches with gaps (row subsets that are not contiguous).
#[derive(Debug, Clone)]
pub struct ColumnBatch<'a> {
    cols: Vec<&'a [u16]>,
    rows: usize,
    valid: Option<&'a [bool]>,
}

impl<'a> ColumnBatch<'a> {
    /// A batch over every row of `data`, all valid.
    pub fn from_dataset(data: &'a Dataset) -> ColumnBatch<'a> {
        ColumnBatch::slice(data, 0, data.len())
    }

    /// A batch over the contiguous window `start..start + rows` of
    /// `data`. The window must lie inside the dataset (same contract as
    /// reading those rows through [`crate::exec::RowSource`]).
    pub fn slice(data: &'a Dataset, start: usize, rows: usize) -> ColumnBatch<'a> {
        let cols: Vec<&[u16]> =
            (0..data.width()).map(|a| &data.column(a)[start..start + rows]).collect();
        ColumnBatch { cols, rows, valid: None }
    }

    /// Attaches a validity mask: slot `i` participates only when
    /// `valid[i]`. The mask must cover every row of the batch.
    pub fn with_validity(mut self, valid: &'a [bool]) -> ColumnBatch<'a> {
        assert_eq!(valid.len(), self.rows, "validity mask must cover the batch");
        self.valid = Some(valid);
        self
    }

    /// Number of slots (valid or not) in the batch.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The column slice of attribute `a`.
    pub fn col(&self, a: AttrId) -> &'a [u16] {
        self.cols[a]
    }

    /// Whether slot `slot` participates in execution.
    pub fn is_valid(&self, slot: usize) -> bool {
        self.valid.is_none_or(|v| v[slot])
    }
}

/// One node of an arena-flattened plan. Children are arena indices, so
/// the executor's traversal is pointer-chase-free.
#[derive(Debug, Clone, Copy)]
enum FlatNode {
    /// Decided leaf: accept (`true`) or reject.
    Decided(bool),
    /// Sequential leaf: `seq_arena[start..start + len]` holds the
    /// predicate indices in evaluation order.
    Seq { start: u32, len: u32 },
    /// Conditioning split on `attr` at `cut`; `lo`/`hi` are node ids.
    Split { attr: u32, cut: u16, lo: u32, hi: u32 },
}

/// A conditional plan flattened into two arenas: nodes (index-linked,
/// root at 0) and the concatenated predicate orders of every
/// sequential leaf.
#[derive(Debug, Clone, Default)]
pub struct FlatPlan {
    nodes: Vec<FlatNode>,
    seq_arena: Vec<u32>,
}

impl FlatPlan {
    /// Flattens `plan` (root becomes node 0).
    pub fn from_plan(plan: &Plan) -> FlatPlan {
        let mut fp = FlatPlan::default();
        fp.push(plan);
        fp
    }

    fn push(&mut self, p: &Plan) -> u32 {
        let at = self.nodes.len() as u32;
        match p {
            Plan::Decided(b) => self.nodes.push(FlatNode::Decided(*b)),
            Plan::Seq(seq) => {
                let start = self.seq_arena.len() as u32;
                self.seq_arena.extend(seq.order.iter().map(|&j| j as u32));
                self.nodes.push(FlatNode::Seq { start, len: seq.order.len() as u32 });
            }
            Plan::Split { attr, cut, lo, hi } => {
                // Reserve the slot first so children land after their
                // parent; patch the child ids once both are placed.
                self.nodes.push(FlatNode::Decided(false));
                let lo = self.push(lo);
                let hi = self.push(hi);
                self.nodes[at as usize] = FlatNode::Split { attr: *attr as u32, cut: *cut, lo, hi };
            }
        }
        at
    }

    /// Number of arena nodes (equals [`Plan::node_count`]).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

/// Shared per-node entry state: what every tuple reaching this node has
/// already acquired and paid. `chain_start..+chain_len` indexes the
/// prepared plan's acquisition-order arena.
#[derive(Debug, Clone, Copy)]
struct NodeEntry {
    cost: f64,
    chain_start: u32,
    chain_len: u32,
}

/// One precomputed step of a sequential leaf: the predicate to apply
/// (embedded by value — [`Pred`] is `Copy`) and the exit state of any
/// tuple stopping *at* this step (the fetch precedes the evaluation, so
/// a failing tuple still pays this step's acquisition).
#[derive(Debug, Clone, Copy)]
struct LeafStep {
    pred: Pred,
    pred_idx: u32,
    attr: u32,
    newly_acquired: bool,
    cost_after: f64,
    chain_len_after: u32,
}

/// Step range of a sequential leaf in the step arena.
#[derive(Debug, Clone, Copy, Default)]
struct LeafRange {
    start: u32,
    len: u32,
}

/// A [`FlatPlan`] specialized to a `(query, schema, cost model)` triple:
/// all path-dependent quantities of the scalar walk — acquisition
/// masks, running costs, acquisition orders — hoisted into node
/// constants, computed once through the scalar [`TupleState::charge`]
/// kernel so execution reproduces the scalar `f64` addition sequence
/// exactly. Build once per plan, reuse across batches.
#[derive(Debug, Clone)]
pub struct PreparedPlan {
    flat: FlatPlan,
    entry: Vec<NodeEntry>,
    /// For split nodes: whether the split's fetch is a first
    /// acquisition on this path (charged + counted) or a free re-read.
    split_newly: Vec<bool>,
    leaf: Vec<LeafRange>,
    steps: Vec<LeafStep>,
    /// Acquisition-order arena: each node owns one contiguous run
    /// holding its full chain (entry prefix plus, for sequential
    /// leaves, the per-step extensions).
    chains: Vec<AttrId>,
    n_attrs: usize,
    n_preds: usize,
}

impl PreparedPlan {
    /// Prepares `plan` for batch execution under `query`/`schema`/
    /// `model`.
    pub fn new(plan: &Plan, query: &Query, schema: &Schema, model: &CostModel) -> PreparedPlan {
        let flat = FlatPlan::from_plan(plan);
        let n = flat.node_count();
        let mut pp = PreparedPlan {
            flat,
            entry: vec![NodeEntry { cost: 0.0, chain_start: 0, chain_len: 0 }; n],
            split_newly: vec![false; n],
            leaf: vec![LeafRange::default(); n],
            steps: Vec::new(),
            chains: Vec::new(),
            n_attrs: schema.len(),
            n_preds: query.len(),
        };
        pp.prep_node(0, TupleState::new(schema.len()), query, schema, model);
        pp
    }

    fn prep_node(
        &mut self,
        node: u32,
        mut st: TupleState,
        query: &Query,
        schema: &Schema,
        model: &CostModel,
    ) {
        let n = node as usize;
        match self.flat.nodes[n] {
            FlatNode::Decided(_) => {
                self.entry[n] = self.record_chain(&st);
            }
            FlatNode::Seq { start, len } => {
                let entry_cost = st.cost();
                let entry_len = st.acquired().len() as u32;
                let step_start = self.steps.len() as u32;
                for k in 0..len {
                    let j = self.flat.seq_arena[(start + k) as usize] as usize;
                    let p = query.pred(j);
                    let a = p.attr();
                    let newly_acquired = st.mask() & (1u64 << a) == 0;
                    st.charge(a, schema, model);
                    self.steps.push(LeafStep {
                        pred: p,
                        pred_idx: j as u32,
                        attr: a as u32,
                        newly_acquired,
                        cost_after: st.cost(),
                        chain_len_after: st.acquired().len() as u32,
                    });
                }
                self.leaf[n] = LeafRange { start: step_start, len };
                // The node's chain run holds the *fully extended* chain;
                // entry/step lengths are prefixes of it.
                let full = self.record_chain(&st);
                self.entry[n] = NodeEntry {
                    cost: entry_cost,
                    chain_start: full.chain_start,
                    chain_len: entry_len,
                };
            }
            FlatNode::Split { attr, lo, hi, .. } => {
                let a = attr as usize;
                self.split_newly[n] = st.mask() & (1u64 << a) == 0;
                st.charge(a, schema, model);
                self.prep_node(lo, st.clone(), query, schema, model);
                self.prep_node(hi, st, query, schema, model);
            }
        }
    }

    /// Appends `st`'s acquisition chain as a fresh arena run.
    fn record_chain(&mut self, st: &TupleState) -> NodeEntry {
        let chain_start = self.chains.len() as u32;
        self.chains.extend_from_slice(st.acquired());
        NodeEntry { cost: st.cost(), chain_start, chain_len: st.acquired().len() as u32 }
    }

    /// Number of flattened plan nodes.
    pub fn node_count(&self) -> usize {
        self.flat.node_count()
    }

    fn chain(&self, start: u32, len: u32) -> &[AttrId] {
        &self.chains[start as usize..(start + len) as usize]
    }
}

/// Per-slot outcomes of executing a prepared plan over one batch.
/// Chains are `(start, len)` references into the plan's arena — call
/// [`BatchOutcome::acquired`] to resolve one, or
/// [`BatchOutcome::outcome`] to materialize a scalar-shaped
/// [`ExecOutcome`]. Slots that were invalid in the batch keep their
/// reset values (reject, zero cost, empty chain).
#[derive(Debug, Clone, Default)]
pub struct BatchOutcome {
    verdicts: Vec<bool>,
    costs: Vec<f64>,
    chain_start: Vec<u32>,
    chain_len: Vec<u32>,
}

impl BatchOutcome {
    fn reset(&mut self, rows: usize) {
        self.verdicts.clear();
        self.verdicts.resize(rows, false);
        self.costs.clear();
        self.costs.resize(rows, 0.0);
        self.chain_start.clear();
        self.chain_start.resize(rows, 0);
        self.chain_len.clear();
        self.chain_len.resize(rows, 0);
    }

    /// Number of slots.
    pub fn rows(&self) -> usize {
        self.verdicts.len()
    }

    /// The plan's verdict for `slot`.
    pub fn verdict(&self, slot: usize) -> bool {
        self.verdicts[slot]
    }

    /// Acquisition cost `C(P, x)` charged for `slot` — bitwise equal to
    /// the scalar walk's.
    pub fn cost(&self, slot: usize) -> f64 {
        self.costs[slot]
    }

    /// Number of attributes acquired for `slot`.
    pub fn acquisitions(&self, slot: usize) -> usize {
        self.chain_len[slot] as usize
    }

    /// Attributes acquired for `slot`, in acquisition order, resolved
    /// against the plan the batch was executed with.
    pub fn acquired<'p>(&self, plan: &'p PreparedPlan, slot: usize) -> &'p [AttrId] {
        plan.chain(self.chain_start[slot], self.chain_len[slot])
    }

    /// Materializes `slot` as a scalar-shaped [`ExecOutcome`] (used by
    /// the differential tests to compare paths field-for-field).
    pub fn outcome(&self, plan: &PreparedPlan, slot: usize) -> ExecOutcome {
        ExecOutcome {
            verdict: self.verdicts[slot],
            cost: self.costs[slot],
            acquired: self.acquired(plan, slot).to_vec(),
        }
    }
}

/// Pre-hoisted `exec.batch.*` instruments (see `DESIGN.md` §8),
/// recording batch-path shape: batch count, vectorized tuple count,
/// selection-vector partitions and per-batch occupancy.
#[derive(Debug)]
pub struct BatchMetrics {
    /// `exec.batch.batches` — column batches executed.
    batches: Counter,
    /// `exec.batch.rows` — tuples executed through the batch path.
    rows: Counter,
    /// `exec.batch.partitions` — selection-vector partitions at splits.
    partitions: Counter,
    /// `exec.batch.fill` — valid tuples per executed batch.
    fill: Hist,
    /// Flight handle for the batch-stage trace events emitted by
    /// [`measure_vectorized`]; disabled unless the recorder carries one.
    pub(crate) flight: FlightRecorder,
}

impl BatchMetrics {
    /// Registers the batch instruments on `rec`.
    pub fn new(rec: &Recorder) -> Self {
        BatchMetrics {
            batches: rec.counter("exec.batch.batches"),
            rows: rec.counter("exec.batch.rows"),
            partitions: rec.counter("exec.batch.partitions"),
            fill: rec.hist("exec.batch.fill"),
            flight: rec.flight().clone(),
        }
    }
}

/// Reusable scratch for batch execution: the selection vector, the
/// partition scratch and per-batch metric tallies. Build once, feed it
/// any number of batches of the same prepared plan (or different plans
/// — scratch is resized per call).
#[derive(Debug, Default)]
pub struct BatchExecutor {
    sel: Vec<u32>,
    scratch: Vec<u32>,
    stack: Vec<(u32, usize, usize)>,
    acquire_tally: Vec<u64>,
    eval_tally: Vec<u64>,
    pass_tally: Vec<u64>,
    alive: Vec<u8>,
    survived: Vec<u8>,
    cost_table: Vec<f64>,
    len_table: Vec<u32>,
}

impl BatchExecutor {
    /// Fresh executor with empty scratch.
    pub fn new() -> Self {
        BatchExecutor::default()
    }

    /// Executes `plan` over `batch`, writing per-slot outcomes into
    /// `out` (which is reset to the batch size). With `metrics`, the
    /// same `exec.*` series the scalar metered path records are updated
    /// — per-attribute acquisitions, per-predicate outcomes, per-tuple
    /// cost in slot order — plus the `exec.batch.*` subtree.
    pub fn execute_batch(
        &mut self,
        plan: &PreparedPlan,
        batch: &ColumnBatch<'_>,
        metrics: Option<&ExecMetrics>,
        out: &mut BatchOutcome,
    ) {
        out.reset(batch.rows());
        self.sel.clear();
        match batch.valid {
            None => self.sel.extend(0..batch.rows() as u32),
            Some(v) => {
                self.sel.extend((0..batch.rows()).filter(|&i| v[i]).map(|i| i as u32));
            }
        }
        let valid_rows = self.sel.len();
        self.scratch.resize(valid_rows, 0);
        self.acquire_tally.clear();
        self.acquire_tally.resize(plan.n_attrs, 0);
        self.eval_tally.clear();
        self.eval_tally.resize(plan.n_preds, 0);
        self.pass_tally.clear();
        self.pass_tally.resize(plan.n_preds, 0);
        let mut partitions = 0u64;

        // Root-level sequential plans over a dense (unmasked) batch skip
        // the selection machinery entirely: every predicate becomes one
        // branch-free sweep over raw column slices, with per-row alive
        // and survived-step counters the compiler auto-vectorizes. The
        // survived count indexes a per-step exit table, so the slot
        // outcomes (and every metric tally) are identical to the
        // compaction path's.
        if batch.valid.is_none() {
            if let FlatNode::Seq { .. } = plan.flat.nodes[0] {
                if plan.leaf[0].len as usize <= usize::from(u8::MAX) {
                    self.run_seq_dense(plan, batch, out);
                    if let Some(m) = metrics {
                        self.flush_metrics(m, out, batch, valid_rows, 0);
                    }
                    return;
                }
            }
        }

        self.stack.clear();
        self.stack.push((0, 0, valid_rows));
        while let Some((node, s, len)) = self.stack.pop() {
            if len == 0 {
                continue;
            }
            let n = node as usize;
            match plan.flat.nodes[n] {
                FlatNode::Decided(b) => {
                    let e = plan.entry[n];
                    for &r in &self.sel[s..s + len] {
                        let ri = r as usize;
                        out.verdicts[ri] = b;
                        out.costs[ri] = e.cost;
                        out.chain_start[ri] = e.chain_start;
                        out.chain_len[ri] = e.chain_len;
                    }
                }
                FlatNode::Seq { .. } => {
                    self.run_seq_leaf(plan, batch, n, s, len, out);
                }
                FlatNode::Split { attr, cut, lo, hi } => {
                    let a = attr as usize;
                    if plan.split_newly[n] {
                        self.acquire_tally[a] += len as u64;
                    }
                    partitions += 1;
                    let col = batch.col(a);
                    // Stable branch-free partition: every element is
                    // written to both candidate positions; the index
                    // that advances decides which write sticks.
                    let mut k = 0usize;
                    let mut h = 0usize;
                    for i in 0..len {
                        let r = self.sel[s + i];
                        let is_lo = usize::from(col[r as usize] < cut);
                        self.scratch[h] = r;
                        self.sel[s + k] = r;
                        k += is_lo;
                        h += 1 - is_lo;
                    }
                    self.sel[s + k..s + len].copy_from_slice(&self.scratch[..h]);
                    self.stack.push((hi, s + k, len - k));
                    self.stack.push((lo, s, k));
                }
            }
        }

        if let Some(m) = metrics {
            self.flush_metrics(m, out, batch, valid_rows, partitions);
        }
    }

    /// Runs one sequential leaf over the selection segment
    /// `sel[s..s + len]`: per step, a tight compaction loop with
    /// unconditional exit-state writes (survivors are overwritten by
    /// the next step, and finally by the pass splat).
    fn run_seq_leaf(
        &mut self,
        plan: &PreparedPlan,
        batch: &ColumnBatch<'_>,
        n: usize,
        s: usize,
        len: usize,
        out: &mut BatchOutcome,
    ) {
        let lf = plan.leaf[n];
        let e = plan.entry[n];
        let steps = &plan.steps[lf.start as usize..(lf.start + lf.len) as usize];
        let mut n_sel = len;
        for step in steps {
            if n_sel == 0 {
                break;
            }
            self.eval_tally[step.pred_idx as usize] += n_sel as u64;
            if step.newly_acquired {
                self.acquire_tally[step.attr as usize] += n_sel as u64;
            }
            let col = batch.col(step.attr as usize);
            let pred = step.pred;
            // Branch-free dual compaction: passers stay in the selection
            // vector, failers land in scratch. Exit state is written once
            // per exiting row (it is one constant per step), not per
            // step per row — `reset` already cleared the verdicts.
            let mut kept = 0usize;
            let mut failed = 0usize;
            for i in 0..n_sel {
                let r = self.sel[s + i];
                let pass = pred.eval(col[r as usize]);
                self.scratch[failed] = r;
                self.sel[s + kept] = r;
                kept += usize::from(pass);
                failed += usize::from(!pass);
            }
            for &r in &self.scratch[..failed] {
                let ri = r as usize;
                out.costs[ri] = step.cost_after;
                out.chain_start[ri] = e.chain_start;
                out.chain_len[ri] = step.chain_len_after;
            }
            self.pass_tally[step.pred_idx as usize] += kept as u64;
            n_sel = kept;
        }
        let (final_cost, final_len) = match steps.last() {
            Some(last) => (last.cost_after, last.chain_len_after),
            None => (e.cost, e.chain_len),
        };
        for &r in &self.sel[s..s + n_sel] {
            let ri = r as usize;
            out.verdicts[ri] = true;
            out.costs[ri] = final_cost;
            out.chain_start[ri] = e.chain_start;
            out.chain_len[ri] = final_len;
        }
    }

    /// The dense root-leaf sweep: no selection vector, no compaction.
    /// Each step ANDs its predicate column into a per-row `alive` byte
    /// and bumps a per-row survived-step counter; a final pass maps
    /// survived counts through the precomputed exit tables. Rows dead at
    /// step `j` contribute nothing (`alive` masks the increment), so the
    /// outcome is exactly the compaction path's.
    fn run_seq_dense(
        &mut self,
        plan: &PreparedPlan,
        batch: &ColumnBatch<'_>,
        out: &mut BatchOutcome,
    ) {
        let rows = batch.rows();
        let lf = plan.leaf[0];
        let e = plan.entry[0];
        let steps = &plan.steps[lf.start as usize..(lf.start + lf.len) as usize];
        self.alive.clear();
        self.alive.resize(rows, 1);
        self.survived.clear();
        self.survived.resize(rows, 0);
        let mut n_alive = rows as u64;
        for step in steps {
            if n_alive == 0 {
                break;
            }
            self.eval_tally[step.pred_idx as usize] += n_alive;
            if step.newly_acquired {
                self.acquire_tally[step.attr as usize] += n_alive;
            }
            let col = batch.col(step.attr as usize);
            let pred = step.pred;
            for ((a, s), &v) in self.alive.iter_mut().zip(&mut self.survived).zip(col) {
                let live = *a & u8::from(pred.eval(v));
                *a = live;
                *s += live;
            }
            n_alive = self.alive.iter().map(|&a| u64::from(a)).sum();
            self.pass_tally[step.pred_idx as usize] += n_alive;
        }
        // Exit tables: surviving `k < len` steps means the row failed
        // step `k` (after paying its fetch); surviving all of them is
        // the pass state.
        self.cost_table.clear();
        self.len_table.clear();
        for step in steps {
            self.cost_table.push(step.cost_after);
            self.len_table.push(step.chain_len_after);
        }
        let (final_cost, final_len) = match steps.last() {
            Some(last) => (last.cost_after, last.chain_len_after),
            None => (e.cost, e.chain_len),
        };
        self.cost_table.push(final_cost);
        self.len_table.push(final_len);
        for i in 0..rows {
            let k = usize::from(self.survived[i]);
            out.verdicts[i] = self.alive[i] != 0;
            out.costs[i] = self.cost_table[k];
            out.chain_start[i] = e.chain_start;
            out.chain_len[i] = self.len_table[k];
        }
    }

    /// Flushes the batch's tallies into the shared `exec.*` series and
    /// records the `exec.batch.*` subtree. Counters are order-free and
    /// flushed in bulk; `exec.cost_total` is a float accumulator, so
    /// per-tuple costs are added in slot order — the same order the
    /// scalar metered loop adds them.
    fn flush_metrics(
        &self,
        m: &ExecMetrics,
        out: &BatchOutcome,
        batch: &ColumnBatch<'_>,
        valid_rows: usize,
        partitions: u64,
    ) {
        for (a, &t) in self.acquire_tally.iter().enumerate() {
            if t > 0 {
                m.acquire[a].incr(t);
            }
        }
        for (j, (&ev, &pa)) in self.eval_tally.iter().zip(&self.pass_tally).enumerate() {
            if ev > 0 {
                m.pred_evaluated[j].incr(ev);
            }
            if pa > 0 {
                m.pred_passed[j].incr(pa);
            }
        }
        let mut outputs = 0u64;
        for slot in 0..out.rows() {
            if !batch.is_valid(slot) {
                continue;
            }
            outputs += u64::from(out.verdicts[slot]);
            m.cost_total.add(out.costs[slot]);
            m.cost_per_tuple.observe(out.costs[slot].round().max(0.0) as u64);
            m.acquisitions_per_tuple.observe(u64::from(out.chain_len[slot]));
        }
        m.tuples.incr(valid_rows as u64);
        m.outputs.incr(outputs);
        m.batch.batches.incr(1);
        m.batch.rows.incr(valid_rows as u64);
        if partitions > 0 {
            m.batch.partitions.incr(partitions);
        }
        m.batch.fill.observe(valid_rows as u64);
    }
}

/// Columnar ground truth: `truth[i] = φ(row i)` over the batch, by
/// AND-folding each predicate's column sweep (the vectorized analogue
/// of [`Query::eval_with`] per row).
pub fn truth_columnar(query: &Query, batch: &ColumnBatch<'_>, truth: &mut Vec<bool>) {
    truth.clear();
    truth.resize(batch.rows(), true);
    for p in query.preds() {
        let col = batch.col(p.attr());
        for (t, &v) in truth.iter_mut().zip(col) {
            *t &= p.eval(v);
        }
    }
}

/// The vectorized measurement loop behind [`crate::cost::measure_mode`]:
/// `rows` must be strictly increasing (the caller falls back to the
/// scalar loop otherwise). Chunks the row list into [`BATCH_ROWS`]
/// windows — contiguous runs execute dense, gappy runs through a
/// validity mask — and accumulates the report in row order, so every
/// `f64` fold matches the scalar loop bitwise.
pub(crate) fn measure_vectorized(
    plan: &Plan,
    query: &Query,
    schema: &Schema,
    model: &CostModel,
    data: &Dataset,
    rows: &[usize],
    metrics: Option<&ExecMetrics>,
) -> crate::cost::CostReport {
    let prepared = PreparedPlan::new(plan, query, schema, model);
    // Stage trace: deterministic work tallies, never wall clock
    // (DESIGN.md §13.2) — the flight log stays bitwise-reproducible.
    let flight = metrics.map(|m| m.batch.flight.clone()).unwrap_or_default();
    let prep_seq = flight.emit(
        0,
        0,
        "exec.batch.prepare",
        &[("preds", query.len().into()), ("rows", rows.len().into())],
    );
    let mut exec = BatchExecutor::new();
    let mut out = BatchOutcome::default();
    let mut truth = Vec::new();
    let mut validity = Vec::new();

    let mut total = 0.0;
    let mut max_cost: f64 = 0.0;
    let mut passes = 0usize;
    let mut all_correct = true;
    let mut tuples = 0usize;
    let mut dense_batches = 0u64;
    let mut masked_batches = 0u64;
    for chunk in rows.chunks(BATCH_ROWS) {
        let start = chunk[0];
        let span = chunk[chunk.len() - 1] + 1 - start;
        let dense = span == chunk.len();
        if dense {
            dense_batches += 1;
        } else {
            masked_batches += 1;
        }
        let batch = if dense {
            ColumnBatch::slice(data, start, span)
        } else {
            validity.clear();
            validity.resize(span, false);
            for &row in chunk {
                validity[row - start] = true;
            }
            ColumnBatch::slice(data, start, span).with_validity(&validity)
        };
        exec.execute_batch(&prepared, &batch, metrics, &mut out);
        truth_columnar(query, &batch, &mut truth);
        for &row in chunk {
            let slot = row - start;
            total += out.cost(slot);
            max_cost = max_cost.max(out.cost(slot));
            passes += usize::from(out.verdict(slot));
            all_correct &= out.verdict(slot) == truth[slot];
            tuples += 1;
        }
    }
    flight.emit(
        0,
        prep_seq,
        "exec.batch.run",
        &[
            ("batches", (dense_batches + masked_batches).into()),
            ("dense", dense_batches.into()),
            ("masked", masked_batches.into()),
            ("tuples", tuples.into()),
            ("outputs", passes.into()),
            ("cost_total", total.into()),
        ],
    );
    let d = tuples.max(1) as f64;
    crate::cost::CostReport {
        mean_cost: total / d,
        max_cost,
        pass_rate: passes as f64 / d,
        all_correct,
        tuples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Attribute;
    use crate::exec::{execute_model, RowSource};
    use crate::plan::SeqOrder;

    fn setup() -> (Schema, Dataset, Query) {
        let schema = Schema::new(vec![
            Attribute::new("a", 8, 10.0),
            Attribute::new("b", 8, 20.0),
            Attribute::new("t", 8, 1.0),
        ])
        .unwrap();
        let rows: Vec<Vec<u16>> =
            (0..200u16).map(|i| vec![i % 8, (i / 8) % 8, (i * 3) % 8]).collect();
        let data = Dataset::from_rows(&schema, rows).unwrap();
        let query = Query::new(vec![Pred::in_range(0, 2, 5), Pred::not_in_range(1, 3, 6)]).unwrap();
        (schema, data, query)
    }

    fn plans() -> Vec<Plan> {
        vec![
            Plan::pass(),
            Plan::fail(),
            Plan::Seq(SeqOrder::new(vec![0, 1])),
            Plan::Seq(SeqOrder::new(vec![1, 0])),
            Plan::Seq(SeqOrder::default()),
            Plan::split(
                2,
                3,
                Plan::split(0, 3, Plan::fail(), Plan::Seq(SeqOrder::new(vec![0, 1]))),
                Plan::split(
                    1,
                    5,
                    Plan::Seq(SeqOrder::new(vec![1, 0])),
                    Plan::Seq(SeqOrder::new(vec![0])),
                ),
            ),
            // Re-split on an already-acquired attribute: free re-read.
            Plan::split(
                2,
                4,
                Plan::split(2, 2, Plan::Seq(SeqOrder::new(vec![0, 1])), Plan::fail()),
                Plan::Seq(SeqOrder::new(vec![1, 0])),
            ),
        ]
    }

    #[test]
    fn flattening_preserves_node_count() {
        for plan in plans() {
            assert_eq!(FlatPlan::from_plan(&plan).node_count(), plan.node_count());
        }
    }

    #[test]
    fn batch_outcomes_match_scalar_bitwise() {
        let (schema, data, query) = setup();
        for model in [CostModel::PerAttribute, CostModel::boards(3, &[(vec![0, 1], 100.0)])] {
            for plan in plans() {
                let prepared = PreparedPlan::new(&plan, &query, &schema, &model);
                let mut exec = BatchExecutor::new();
                let mut out = BatchOutcome::default();
                exec.execute_batch(&prepared, &ColumnBatch::from_dataset(&data), None, &mut out);
                for row in 0..data.len() {
                    let scalar = execute_model(
                        &plan,
                        &query,
                        &schema,
                        &model,
                        &mut RowSource::new(&data, row),
                    );
                    let vector = out.outcome(&prepared, row);
                    assert_eq!(scalar.verdict, vector.verdict, "row {row} plan {plan:?}");
                    assert_eq!(scalar.cost.to_bits(), vector.cost.to_bits());
                    assert_eq!(scalar.acquired, vector.acquired);
                }
            }
        }
    }

    #[test]
    fn validity_mask_skips_slots() {
        let (schema, data, query) = setup();
        let plan = Plan::Seq(SeqOrder::new(vec![0, 1]));
        let prepared = PreparedPlan::new(&plan, &query, &schema, &CostModel::PerAttribute);
        let valid: Vec<bool> = (0..data.len()).map(|i| i % 3 == 0).collect();
        let mut exec = BatchExecutor::new();
        let mut out = BatchOutcome::default();
        let batch = ColumnBatch::from_dataset(&data).with_validity(&valid);
        exec.execute_batch(&prepared, &batch, None, &mut out);
        for (row, &is_valid) in valid.iter().enumerate() {
            if is_valid {
                let scalar =
                    crate::exec::execute(&plan, &query, &schema, &mut RowSource::new(&data, row));
                assert_eq!(out.verdict(row), scalar.verdict);
            } else {
                assert!(!out.verdict(row), "invalid slots keep reset state");
                assert_eq!(out.acquisitions(row), 0);
            }
        }
    }

    #[test]
    fn measure_vectorized_empty_rows_is_safe() {
        let (schema, data, query) = setup();
        let plan = Plan::Seq(SeqOrder::new(vec![0, 1]));
        let rep =
            measure_vectorized(&plan, &query, &schema, &CostModel::PerAttribute, &data, &[], None);
        assert_eq!(rep.tuples, 0);
        assert_eq!(rep.mean_cost, 0.0);
        assert!(rep.all_correct);
    }
}
