//! Plan cost: the empirical expectation of Eq. (4)
//! (`C(P) ≈ (1/d) Σ_{x∈D} C(P, x)`, [`measure`]) and the model
//! expectation of Eq. (3) ([`expected_cost`]).

use crate::attr::Schema;
use crate::dataset::Dataset;
use crate::exec::RowSource;
use crate::plan::Plan;
use crate::prob::Estimator;
use crate::query::Query;
use crate::range::Range;

/// Summary of running a plan over every tuple of a dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct CostReport {
    /// Mean per-tuple acquisition cost.
    pub mean_cost: f64,
    /// Highest per-tuple cost observed.
    pub max_cost: f64,
    /// Fraction of tuples the plan outputs.
    pub pass_rate: f64,
    /// Whether the plan's verdict matched `φ(x)` on *every* tuple.
    pub all_correct: bool,
    /// Number of tuples evaluated.
    pub tuples: usize,
}

/// Runs `plan` over every row of `data`, checking the verdict against a
/// direct evaluation of the query.
pub fn measure(plan: &Plan, query: &Query, schema: &Schema, data: &Dataset) -> CostReport {
    measure_rows(plan, query, schema, data, 0..data.len())
}

/// Like [`measure`] with order-dependent acquisition pricing (§7).
pub fn measure_model(
    plan: &Plan,
    query: &Query,
    schema: &Schema,
    model: &crate::costmodel::CostModel,
    data: &Dataset,
) -> CostReport {
    measure_rows_model(plan, query, schema, model, data, 0..data.len())
}

/// Like [`measure`] but restricted to the given row indices.
pub fn measure_rows(
    plan: &Plan,
    query: &Query,
    schema: &Schema,
    data: &Dataset,
    rows: impl IntoIterator<Item = usize>,
) -> CostReport {
    measure_rows_model(plan, query, schema, &crate::costmodel::CostModel::PerAttribute, data, rows)
}

/// The general measurement loop: cost model and row subset.
pub fn measure_rows_model(
    plan: &Plan,
    query: &Query,
    schema: &Schema,
    model: &crate::costmodel::CostModel,
    data: &Dataset,
    rows: impl IntoIterator<Item = usize>,
) -> CostReport {
    measure_loop(plan, query, schema, model, data, rows, None)
}

/// Like [`measure_rows_model`], recording per-attribute acquisition
/// counts, per-tuple cost and per-predicate outcomes into `metrics`
/// (see [`crate::exec::execute_metered`]).
pub fn measure_metered(
    plan: &Plan,
    query: &Query,
    schema: &Schema,
    model: &crate::costmodel::CostModel,
    data: &Dataset,
    rows: impl IntoIterator<Item = usize>,
    metrics: &crate::exec::ExecMetrics,
) -> CostReport {
    measure_loop(plan, query, schema, model, data, rows, Some(metrics))
}

/// Like [`measure_rows_model`], dispatching on [`crate::exec::ExecMode`]:
/// `Scalar` is the seed per-tuple loop verbatim, `Vectorized` routes
/// through the columnar batch executor (`DESIGN.md` §12) and returns a
/// bitwise-identical [`CostReport`]. A non-monotone row list falls back
/// to the scalar loop — batching would reorder the `f64` folds.
pub fn measure_mode(
    plan: &Plan,
    query: &Query,
    schema: &Schema,
    model: &crate::costmodel::CostModel,
    data: &Dataset,
    rows: impl IntoIterator<Item = usize>,
    mode: crate::exec::ExecMode,
) -> CostReport {
    measure_mode_inner(plan, query, schema, model, data, rows, mode, None)
}

/// [`measure_mode`] with metering: both modes record the same `exec.*`
/// series ([`crate::exec::ExecMetrics`]); the vectorized path
/// additionally fills the `exec.batch.*` subtree.
#[allow(clippy::too_many_arguments)]
pub fn measure_metered_mode(
    plan: &Plan,
    query: &Query,
    schema: &Schema,
    model: &crate::costmodel::CostModel,
    data: &Dataset,
    rows: impl IntoIterator<Item = usize>,
    mode: crate::exec::ExecMode,
    metrics: &crate::exec::ExecMetrics,
) -> CostReport {
    measure_mode_inner(plan, query, schema, model, data, rows, mode, Some(metrics))
}

#[allow(clippy::too_many_arguments)]
fn measure_mode_inner(
    plan: &Plan,
    query: &Query,
    schema: &Schema,
    model: &crate::costmodel::CostModel,
    data: &Dataset,
    rows: impl IntoIterator<Item = usize>,
    mode: crate::exec::ExecMode,
    metrics: Option<&crate::exec::ExecMetrics>,
) -> CostReport {
    match mode {
        crate::exec::ExecMode::Scalar => {
            measure_loop(plan, query, schema, model, data, rows, metrics)
        }
        crate::exec::ExecMode::Vectorized => {
            let rows: Vec<usize> = rows.into_iter().collect();
            if rows.windows(2).all(|w| w[0] < w[1]) {
                crate::batch::measure_vectorized(plan, query, schema, model, data, &rows, metrics)
            } else {
                measure_loop(plan, query, schema, model, data, rows, metrics)
            }
        }
    }
}

fn measure_loop(
    plan: &Plan,
    query: &Query,
    schema: &Schema,
    model: &crate::costmodel::CostModel,
    data: &Dataset,
    rows: impl IntoIterator<Item = usize>,
    metrics: Option<&crate::exec::ExecMetrics>,
) -> CostReport {
    let mut total = 0.0;
    let mut max_cost: f64 = 0.0;
    let mut passes = 0usize;
    let mut all_correct = true;
    let mut tuples = 0usize;
    for row in rows {
        let mut src = RowSource::new(data, row);
        let out = match metrics {
            Some(m) => crate::exec::execute_metered(plan, query, schema, model, &mut src, m),
            None => crate::exec::execute_model(plan, query, schema, model, &mut src),
        };
        total += out.cost;
        max_cost = max_cost.max(out.cost);
        passes += usize::from(out.verdict);
        let truth = query.eval_with(|a| data.value(row, a));
        all_correct &= out.verdict == truth;
        tuples += 1;
    }
    let d = tuples.max(1) as f64;
    CostReport { mean_cost: total / d, max_cost, pass_rate: passes as f64 / d, all_correct, tuples }
}

/// Model-expected cost of `plan` under `est`, per the recursion of
/// Eq. (3): split nodes weight child costs by the conditioned branch
/// probabilities; sequential leaves charge each predicate's effective
/// cost times the probability every earlier predicate held.
///
/// Under a [`crate::prob::CountingEstimator`] built from dataset `D`,
/// this equals [`measure`]`(plan, …, D).mean_cost` exactly.
pub fn expected_cost<E: Estimator>(plan: &Plan, query: &Query, schema: &Schema, est: &E) -> f64 {
    expected_cost_model(plan, query, schema, &crate::costmodel::CostModel::PerAttribute, est)
}

/// [`expected_cost`] under an order-dependent cost model (§7).
pub fn expected_cost_model<E: Estimator>(
    plan: &Plan,
    query: &Query,
    schema: &Schema,
    model: &crate::costmodel::CostModel,
    est: &E,
) -> f64 {
    expected_cost_at(plan, query, schema, model, est, &est.root())
}

fn expected_cost_at<E: Estimator>(
    plan: &Plan,
    query: &Query,
    schema: &Schema,
    model: &crate::costmodel::CostModel,
    est: &E,
    ctx: &E::Ctx,
) -> f64 {
    use crate::costmodel::acquired_mask;
    match plan {
        Plan::Decided(_) => 0.0,
        Plan::Seq(seq) => {
            let ranges = est.ranges(ctx);
            let initial = acquired_mask(schema, ranges);
            let attr_of: Vec<usize> = query.preds().iter().map(|p| p.attr()).collect();
            est.truth_table(ctx, query).seq_cost_model(&seq.order, &attr_of, schema, model, initial)
        }
        Plan::Split { attr, cut, lo, hi } => {
            let ranges = est.ranges(ctx);
            let r = ranges.get(*attr);
            let c0 = model.cost(schema, *attr, acquired_mask(schema, ranges));
            // Clamp hand-built plans whose cut falls outside the range.
            if *cut <= r.lo() {
                return c0 + expected_cost_at(hi, query, schema, model, est, ctx);
            }
            if *cut > r.hi() {
                return c0 + expected_cost_at(lo, query, schema, model, est, ctx);
            }
            let p_lo = est.prob_below(ctx, *attr, *cut).clamp(0.0, 1.0);
            let mut c = c0;
            if p_lo > 0.0 {
                let child = est.refine(ctx, *attr, Range::new(r.lo(), cut - 1));
                c += p_lo * expected_cost_at(lo, query, schema, model, est, &child);
            }
            if p_lo < 1.0 {
                let child = est.refine(ctx, *attr, Range::new(*cut, r.hi()));
                c += (1.0 - p_lo) * expected_cost_at(hi, query, schema, model, est, &child);
            }
            c
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Attribute;
    use crate::plan::SeqOrder;
    use crate::prob::CountingEstimator;
    use crate::query::Pred;
    use crate::range::Ranges;

    #[test]
    fn measures_mean_and_correctness() {
        let schema =
            Schema::new(vec![Attribute::new("a", 4, 10.0), Attribute::new("b", 4, 2.0)]).unwrap();
        // Half the rows fail the first predicate.
        let rows: Vec<Vec<u16>> = (0..8u16).map(|i| vec![i % 4, i % 2]).collect();
        let data = Dataset::from_rows(&schema, rows).unwrap();
        let query = Query::new(vec![Pred::in_range(0, 0, 1), Pred::in_range(1, 1, 1)]).unwrap();
        let plan = Plan::Seq(SeqOrder::new(vec![0, 1]));
        let rep = measure(&plan, &query, &schema, &data);
        assert!(rep.all_correct);
        assert_eq!(rep.tuples, 8);
        // 4 rows fail pred0 (cost 10); 4 rows evaluate both (cost 12).
        assert!((rep.mean_cost - 11.0).abs() < 1e-12);
        assert_eq!(rep.max_cost, 12.0);
        // pred0 passes when a in {0,1}; of those 4 rows, b==1 for rows 1 and 5 only.
        assert!((rep.pass_rate - 0.25).abs() < 1e-12);
    }

    #[test]
    fn detects_incorrect_plans() {
        let schema = Schema::new(vec![Attribute::new("a", 4, 1.0)]).unwrap();
        let data = Dataset::from_rows(&schema, vec![vec![0], vec![3]]).unwrap();
        let query = Query::new(vec![Pred::in_range(0, 0, 1)]).unwrap();
        // A plan that always accepts is wrong for the row with a=3.
        let rep = measure(&Plan::pass(), &query, &schema, &data);
        assert!(!rep.all_correct);
    }

    #[test]
    fn expected_cost_equals_measured_on_training_data() {
        let schema = Schema::new(vec![
            Attribute::new("a", 4, 10.0),
            Attribute::new("b", 4, 2.0),
            Attribute::new("t", 4, 0.5),
        ])
        .unwrap();
        let rows: Vec<Vec<u16>> =
            (0..64u16).map(|i| vec![i % 4, (i / 4) % 4, (i / 16) % 4]).collect();
        let data = Dataset::from_rows(&schema, rows).unwrap();
        let query = Query::new(vec![Pred::in_range(0, 1, 2), Pred::in_range(1, 0, 1)]).unwrap();
        let est = CountingEstimator::with_ranges(&data, Ranges::root(&schema));
        // A hand-built conditional plan with nested splits and seq leaves.
        let plan = Plan::split(
            2,
            2,
            Plan::split(0, 2, Plan::Seq(SeqOrder::new(vec![0, 1])), Plan::fail()),
            Plan::Seq(SeqOrder::new(vec![1, 0])),
        );
        let model = expected_cost(&plan, &query, &schema, &est);
        let rep = measure(&plan, &query, &schema, &data);
        assert!(
            (model - rep.mean_cost).abs() < 1e-9,
            "model {model} vs measured {}",
            rep.mean_cost
        );
    }

    #[test]
    fn expected_cost_clamps_out_of_range_cuts() {
        let schema = Schema::new(vec![Attribute::new("a", 4, 3.0)]).unwrap();
        let data = Dataset::from_rows(&schema, vec![vec![0], vec![3]]).unwrap();
        let query = Query::new(vec![Pred::in_range(0, 0, 1)]).unwrap();
        let est = CountingEstimator::with_ranges(&data, Ranges::root(&schema));
        // Nested split re-splitting `a` at a cut outside the child range.
        let plan = Plan::split(
            0,
            2,
            Plan::split(0, 3, Plan::pass(), Plan::fail()), // cut 3 > child hi 1
            Plan::fail(),
        );
        let c = expected_cost(&plan, &query, &schema, &est);
        assert!((c - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_dataset_is_safe() {
        let schema = Schema::new(vec![Attribute::new("a", 4, 1.0)]).unwrap();
        let data = Dataset::from_rows(&schema, vec![]).unwrap();
        let query = Query::new(vec![Pred::in_range(0, 0, 1)]).unwrap();
        let rep = measure(&Plan::pass(), &query, &schema, &data);
        assert_eq!(rep.tuples, 0);
        assert_eq!(rep.mean_cost, 0.0);
        assert!(rep.all_correct);
    }
}
