//! Order-dependent acquisition costs — §7, "Complex acquisition costs".
//!
//! The base model charges each attribute its schema cost exactly once.
//! The *boards* model adds the paper's motivating example: "motes have
//! sensor boards with multiple sensors that are powered up
//! simultaneously. Thus, the cost of acquiring a reading can be
//! decomposed as the high cost of powering up the board, plus a low
//! cost for a reading of each sensor in the board." The cost of an
//! acquisition then depends on *which attributes were acquired before
//! it* — exactly the conditionality §7 suggests simulating in the
//! planners.
//!
//! All planners and the executor take a [`CostModel`]; a plan that
//! clusters same-board sensors amortizes the power-up, and the planners
//! discover such clusterings because the model is consulted with the
//! current acquired-set at every step.

use crate::attr::{AttrId, Schema};

/// How acquiring an attribute is priced, given what was already
/// acquired for the current tuple. Attribute sets are bitmasks, so
/// schemas are limited to 64 attributes when planning with cost models
/// (the Garden-11 schema has 34).
///
/// ```
/// use acqp_core::{Attribute, CostModel, Schema};
///
/// let schema = Schema::new(vec![
///     Attribute::new("light", 8, 10.0),
///     Attribute::new("temp", 8, 10.0),
/// ]).unwrap();
/// // Both sensors share a board that costs 50 to power up.
/// let m = CostModel::boards(2, &[(vec![0, 1], 50.0)]);
/// assert_eq!(m.cost(&schema, 0, 0b00), 60.0);  // cold board
/// assert_eq!(m.cost(&schema, 1, 0b01), 10.0);  // warmed by the sibling
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub enum CostModel {
    /// Each attribute costs its schema cost, independent of order.
    #[default]
    PerAttribute,
    /// Schema costs plus a shared-board power-up: the first acquisition
    /// from a board also pays that board's power-up cost.
    Boards {
        /// `board_of[attr]` — which board the attribute's sensor sits
        /// on, if any.
        board_of: Vec<Option<u8>>,
        /// Power-up cost of each board.
        powerup: Vec<f64>,
    },
}

impl CostModel {
    /// Builds a boards model from `(attrs, powerup_cost)` groups.
    pub fn boards(n_attrs: usize, groups: &[(Vec<AttrId>, f64)]) -> CostModel {
        let mut board_of = vec![None; n_attrs];
        let mut powerup = Vec::with_capacity(groups.len());
        for (b, (attrs, cost)) in groups.iter().enumerate() {
            for &a in attrs {
                debug_assert!(board_of[a].is_none(), "attribute {a} on two boards");
                board_of[a] = Some(b as u8);
            }
            powerup.push(*cost);
        }
        CostModel::Boards { board_of, powerup }
    }

    /// Cost of acquiring `attr` when the attributes in `acquired`
    /// (bitmask) are already in hand. Returns 0 when `attr` itself was
    /// already acquired.
    #[inline]
    pub fn cost(&self, schema: &Schema, attr: AttrId, acquired: u64) -> f64 {
        if acquired & (1u64 << attr) != 0 {
            return 0.0;
        }
        match self {
            CostModel::PerAttribute => schema.cost(attr),
            CostModel::Boards { board_of, powerup } => {
                let mut c = schema.cost(attr);
                if let Some(b) = board_of[attr] {
                    // Board already powered iff some acquired attribute
                    // shares it.
                    let powered = board_of
                        .iter()
                        .enumerate()
                        .any(|(a, &bd)| bd == Some(b) && acquired & (1u64 << a) != 0);
                    if !powered {
                        c += powerup[usize::from(b)];
                    }
                }
                c
            }
        }
    }

    /// Conservative per-attribute lower bound on the acquisition cost
    /// (used by admissible pruning): the schema cost alone.
    #[inline]
    pub fn min_cost(&self, schema: &Schema, attr: AttrId, acquired: u64) -> f64 {
        if acquired & (1u64 << attr) != 0 {
            0.0
        } else {
            schema.cost(attr)
        }
    }
}

/// Bitmask of attributes that a plan has acquired once the ranges have
/// been narrowed from their full domains (splitting an attribute
/// acquires it; see Fig. 5's cost rule).
pub fn acquired_mask(schema: &Schema, ranges: &crate::range::Ranges) -> u64 {
    debug_assert!(schema.len() <= 64, "cost-model planning supports <= 64 attributes");
    let mut mask = 0u64;
    for a in 0..schema.len() {
        if !ranges.attr_unacquired(schema, a) {
            mask |= 1 << a;
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Attribute;
    use crate::range::{Range, Ranges};

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::new("light", 8, 10.0),
            Attribute::new("temp", 8, 10.0),
            Attribute::new("hour", 8, 1.0),
        ])
        .unwrap()
    }

    #[test]
    fn per_attribute_is_memoryless() {
        let s = schema();
        let m = CostModel::PerAttribute;
        assert_eq!(m.cost(&s, 0, 0), 10.0);
        assert_eq!(m.cost(&s, 0, 0b010), 10.0);
        assert_eq!(m.cost(&s, 0, 0b001), 0.0, "already acquired is free");
    }

    #[test]
    fn board_powerup_charged_once_per_board() {
        let s = schema();
        let m = CostModel::boards(3, &[(vec![0, 1], 50.0)]);
        // Cold board: sensor + powerup.
        assert_eq!(m.cost(&s, 0, 0), 60.0);
        // Board warmed by the sibling sensor: just the sensor.
        assert_eq!(m.cost(&s, 1, 0b001), 10.0);
        // Off-board attribute never pays powerup.
        assert_eq!(m.cost(&s, 2, 0), 1.0);
        // Already-acquired attr is free even with boards.
        assert_eq!(m.cost(&s, 1, 0b010), 0.0);
    }

    #[test]
    fn acquired_mask_tracks_narrowed_ranges() {
        let s = schema();
        let root = Ranges::root(&s);
        assert_eq!(acquired_mask(&s, &root), 0);
        let narrowed = root.with(1, Range::new(2, 5));
        assert_eq!(acquired_mask(&s, &narrowed), 0b010);
    }

    #[test]
    fn min_cost_is_a_lower_bound() {
        let s = schema();
        let m = CostModel::boards(3, &[(vec![0, 1], 50.0)]);
        for attr in 0..3 {
            for acquired in [0u64, 0b001, 0b011] {
                assert!(m.min_cost(&s, attr, acquired) <= m.cost(&s, attr, acquired));
            }
        }
    }
}
