//! Historical datasets: column-major discretized samples.
//!
//! The planners of §3–4 estimate every probability from a historical
//! dataset `D` of `d` tuples (§2.3, §5). Storage is column-major so the
//! counting estimator can scan a single attribute of a row subset without
//! touching the rest of the tuple.

use crate::attr::{AttrId, Schema};
use crate::error::{Error, Result};
use crate::range::Ranges;

/// A dataset of discretized tuples over a [`Schema`], stored column-major.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// `cols[a][row]` = value of attribute `a` in tuple `row`.
    cols: Vec<Vec<u16>>,
    rows: usize,
}

impl Dataset {
    /// Builds a dataset from row-major tuples, validating arity and
    /// domain membership against `schema`.
    pub fn from_rows(schema: &Schema, rows: Vec<Vec<u16>>) -> Result<Self> {
        let n = schema.len();
        let mut cols: Vec<Vec<u16>> = (0..n).map(|_| Vec::with_capacity(rows.len())).collect();
        for (i, row) in rows.iter().enumerate() {
            if row.len() != n {
                return Err(Error::BadRow { row: i, what: "wrong arity" });
            }
            for (a, &v) in row.iter().enumerate() {
                if v >= schema.domain(a) {
                    return Err(Error::BadRow { row: i, what: "value outside attribute domain" });
                }
                cols[a].push(v);
            }
        }
        Ok(Dataset { cols, rows: rows.len() })
    }

    /// Builds directly from columns (every column must have the same
    /// length); validates domains.
    pub fn from_columns(schema: &Schema, cols: Vec<Vec<u16>>) -> Result<Self> {
        if cols.len() != schema.len() {
            return Err(Error::BadRow { row: 0, what: "wrong number of columns" });
        }
        let rows = cols.first().map_or(0, Vec::len);
        for (a, col) in cols.iter().enumerate() {
            if col.len() != rows {
                return Err(Error::BadRow { row: 0, what: "ragged columns" });
            }
            if col.iter().any(|&v| v >= schema.domain(a)) {
                return Err(Error::BadRow { row: 0, what: "value outside attribute domain" });
            }
        }
        Ok(Dataset { cols, rows })
    }

    /// Number of tuples `d`.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True when the dataset holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Number of attributes.
    pub fn width(&self) -> usize {
        self.cols.len()
    }

    /// Value of attribute `a` in tuple `row`.
    #[inline]
    pub fn value(&self, row: usize, a: AttrId) -> u16 {
        self.cols[a][row]
    }

    /// The whole column of attribute `a`.
    pub fn column(&self, a: AttrId) -> &[u16] {
        &self.cols[a]
    }

    /// Materializes tuple `row` (allocates; prefer [`Dataset::value`] in
    /// hot paths).
    pub fn row(&self, row: usize) -> Vec<u16> {
        self.cols.iter().map(|c| c[row]).collect()
    }

    /// Splits into `(train, test)` at `frac` (fraction of rows that go to
    /// `train`), preserving order — i.e. a *time* split, matching the
    /// paper's disjoint train/test windows (§6).
    pub fn split_at(&self, frac: f64) -> (Dataset, Dataset) {
        let cut = ((self.rows as f64) * frac.clamp(0.0, 1.0)).round() as usize;
        let train =
            Dataset { cols: self.cols.iter().map(|c| c[..cut].to_vec()).collect(), rows: cut };
        let test = Dataset {
            cols: self.cols.iter().map(|c| c[cut..].to_vec()).collect(),
            rows: self.rows - cut,
        };
        (train, test)
    }

    /// A copy containing only every `stride`-th row, used to subsample
    /// training data for the expensive exhaustive planner.
    pub fn thin(&self, stride: usize) -> Dataset {
        let stride = stride.max(1);
        Dataset {
            cols: self.cols.iter().map(|c| c.iter().step_by(stride).copied().collect()).collect(),
            rows: self.rows.div_ceil(stride),
        }
    }

    /// A copy containing only the first `n` rows.
    pub fn take(&self, n: usize) -> Dataset {
        let n = n.min(self.rows);
        Dataset { cols: self.cols.iter().map(|c| c[..n].to_vec()).collect(), rows: n }
    }

    /// Row indices admitted by `ranges`.
    pub fn rows_matching(&self, ranges: &Ranges) -> Vec<u32> {
        (0..self.rows as u32)
            .filter(|&r| {
                ranges
                    .as_slice()
                    .iter()
                    .enumerate()
                    .all(|(a, rg)| rg.contains(self.cols[a][r as usize]))
            })
            .collect()
    }
}

/// Maps a real-valued signal into `0..bins` discretized values, keeping
/// the bin edges so plans can be pretty-printed in natural units.
///
/// §2.1 requires real-valued attributes to be "discretized appropriately";
/// sensor ADCs do this naturally. The generators in `acqp-data` quantize
/// through this type.
#[derive(Debug, Clone, PartialEq)]
pub struct Discretizer {
    min: f64,
    max: f64,
    bins: u16,
}

impl Discretizer {
    /// Equal-width discretizer over `[min, max]` with `bins ≥ 1` bins.
    pub fn uniform(min: f64, max: f64, bins: u16) -> Self {
        debug_assert!(bins >= 1 && max > min);
        Discretizer { min, max, bins }
    }

    /// Number of bins (the attribute's domain size).
    pub fn bins(&self) -> u16 {
        self.bins
    }

    /// Quantizes `x`, clamping out-of-range inputs into the end bins.
    pub fn quantize(&self, x: f64) -> u16 {
        let t = (x - self.min) / (self.max - self.min);
        let b = (t * f64::from(self.bins)).floor();
        (b.max(0.0) as u32).min(u32::from(self.bins) - 1) as u16
    }

    /// Lower edge (natural units) of bin `b`.
    pub fn bin_lo(&self, b: u16) -> f64 {
        self.min + (self.max - self.min) * f64::from(b) / f64::from(self.bins)
    }

    /// Upper edge (natural units) of bin `b`.
    pub fn bin_hi(&self, b: u16) -> f64 {
        self.bin_lo(b + 1)
    }

    /// Midpoint (natural units) of bin `b`.
    pub fn bin_mid(&self, b: u16) -> f64 {
        (self.bin_lo(b) + self.bin_hi(b)) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Attribute;

    fn schema() -> Schema {
        Schema::new(vec![Attribute::new("a", 4, 10.0), Attribute::new("b", 8, 1.0)]).unwrap()
    }

    #[test]
    fn from_rows_roundtrip() {
        let s = schema();
        let d = Dataset::from_rows(&s, vec![vec![0, 1], vec![3, 7], vec![2, 2]]).unwrap();
        assert_eq!(d.len(), 3);
        assert_eq!(d.width(), 2);
        assert_eq!(d.value(1, 0), 3);
        assert_eq!(d.row(2), vec![2, 2]);
        assert_eq!(d.column(1), &[1, 7, 2]);
    }

    #[test]
    fn bad_rows_rejected() {
        let s = schema();
        assert!(matches!(Dataset::from_rows(&s, vec![vec![0]]), Err(Error::BadRow { row: 0, .. })));
        assert!(matches!(
            Dataset::from_rows(&s, vec![vec![0, 1], vec![4, 0]]),
            Err(Error::BadRow { row: 1, .. })
        ));
    }

    #[test]
    fn from_columns_checks_shape() {
        let s = schema();
        assert!(Dataset::from_columns(&s, vec![vec![0, 1], vec![1, 2]]).is_ok());
        assert!(Dataset::from_columns(&s, vec![vec![0], vec![1, 2]]).is_err());
        assert!(Dataset::from_columns(&s, vec![vec![0, 9], vec![1, 2]]).is_err());
    }

    #[test]
    fn split_preserves_order() {
        let s = schema();
        let rows: Vec<Vec<u16>> = (0..10).map(|i| vec![i % 4, i % 8]).collect();
        let d = Dataset::from_rows(&s, rows).unwrap();
        let (tr, te) = d.split_at(0.7);
        assert_eq!(tr.len(), 7);
        assert_eq!(te.len(), 3);
        assert_eq!(te.value(0, 1), 7);
    }

    #[test]
    fn thin_and_take() {
        let s = schema();
        let rows: Vec<Vec<u16>> = (0..9).map(|i| vec![i % 4, i % 8]).collect();
        let d = Dataset::from_rows(&s, rows).unwrap();
        assert_eq!(d.thin(3).len(), 3);
        assert_eq!(d.thin(0).len(), 9); // stride clamped to 1
        assert_eq!(d.take(4).len(), 4);
        assert_eq!(d.take(100).len(), 9);
    }

    #[test]
    fn rows_matching_filters() {
        let s = schema();
        let d = Dataset::from_rows(&s, vec![vec![0, 0], vec![1, 5], vec![3, 5]]).unwrap();
        let ranges = Ranges::root(&s).with(1, crate::range::Range::new(4, 7));
        assert_eq!(d.rows_matching(&ranges), vec![1, 2]);
    }

    #[test]
    fn discretizer_quantize_and_edges() {
        let q = Discretizer::uniform(0.0, 100.0, 10);
        assert_eq!(q.quantize(0.0), 0);
        assert_eq!(q.quantize(99.9), 9);
        assert_eq!(q.quantize(100.0), 9); // clamped at top
        assert_eq!(q.quantize(-5.0), 0); // clamped at bottom
        assert_eq!(q.quantize(35.0), 3);
        assert_eq!(q.bin_lo(3), 30.0);
        assert_eq!(q.bin_hi(3), 40.0);
        assert_eq!(q.bin_mid(3), 35.0);
    }
}
