//! Selectivity-drift detection on top of exec metering.
//!
//! A conditional plan is chosen against *historical* per-predicate
//! selectivities; deployed, the executor streams back how often each
//! predicate actually held (the `exec.pred<j>.evaluated` /
//! `exec.pred<j>.passed` counters of [`crate::exec::ExecMetrics`]). When
//! the live pass fractions diverge from the estimates the plan was built
//! on, the plan's cost model is stale and a supervisor should re-plan —
//! the re-optimize-under-uncertainty loop of *Probably Approximately
//! Optimal Query Optimization* (Trummer & Koch), specialized to the
//! paper's per-predicate marginals.
//!
//! [`DriftMonitor`] is deliberately passive: it accumulates counts and
//! answers [`DriftMonitor::drifted`]; *acting* on drift (re-planning,
//! re-dissemination, hysteresis) lives with the caller — in this
//! workspace, the sensornet basestation.

use crate::error::{Error, Result};
use crate::exec::ExecMetrics;
use crate::prob::Estimator;
use crate::query::Query;

/// Thresholds governing when selectivity divergence counts as drift.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftConfig {
    /// Maximum tolerated absolute divergence `|estimated − actual|` on
    /// any single predicate before [`DriftMonitor::drifted`] fires.
    /// Selectivities live in `[0, 1]`, so useful thresholds do too.
    pub threshold: f64,
    /// Minimum number of evaluations of a predicate before its actual
    /// selectivity is trusted (small samples are noise, not drift).
    pub min_samples: u64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig { threshold: 0.15, min_samples: 32 }
    }
}

impl DriftConfig {
    /// Validates the configuration: the threshold must be a finite
    /// positive fraction.
    pub fn validate(&self) -> Result<()> {
        if !self.threshold.is_finite() || self.threshold <= 0.0 || self.threshold > 1.0 {
            return Err(Error::InvalidFlag {
                flag: "drift threshold".into(),
                value: format!("{}", self.threshold),
                why: "must be a finite value in (0, 1]",
            });
        }
        Ok(())
    }
}

/// The per-predicate selectivities an estimator predicts at the root
/// context — what the planner believed when it built the plan.
pub fn estimated_selectivities<E: Estimator>(query: &Query, est: &E) -> Vec<f64> {
    let table = est.truth_table(&est.root(), query);
    (0..query.len()).map(|j| table.marginal(j)).collect()
}

/// Accumulates per-predicate evaluated/passed counts and compares the
/// implied actual selectivities against the planning-time estimates.
#[derive(Debug, Clone)]
pub struct DriftMonitor {
    cfg: DriftConfig,
    est: Vec<f64>,
    evaluated: Vec<u64>,
    passed: Vec<u64>,
}

impl DriftMonitor {
    /// Creates a monitor for a plan whose planning-time per-predicate
    /// selectivities were `est` (see [`estimated_selectivities`]).
    pub fn new(est: Vec<f64>, cfg: DriftConfig) -> Result<Self> {
        cfg.validate()?;
        if est.is_empty() {
            return Err(Error::EmptyQuery);
        }
        let n = est.len();
        Ok(DriftMonitor { cfg, est, evaluated: vec![0; n], passed: vec![0; n] })
    }

    /// Number of predicates tracked.
    pub fn len(&self) -> usize {
        self.est.len()
    }

    /// True if the monitor tracks no predicates (unreachable through
    /// [`DriftMonitor::new`], which rejects empty estimates).
    pub fn is_empty(&self) -> bool {
        self.est.is_empty()
    }

    /// The configuration in force.
    pub fn config(&self) -> &DriftConfig {
        &self.cfg
    }

    /// Records one evaluation of predicate `j` and whether it held.
    pub fn observe(&mut self, j: usize, held: bool) {
        self.evaluated[j] += 1;
        self.passed[j] += u64::from(held);
    }

    /// Records a batch of evaluations of predicate `j` (e.g. counters
    /// piggybacked on an uplink packet). `passed` must not exceed
    /// `evaluated`.
    pub fn observe_counts(&mut self, j: usize, evaluated: u64, passed: u64) {
        debug_assert!(passed <= evaluated);
        self.evaluated[j] += evaluated;
        self.passed[j] += passed;
    }

    /// Overwrites the accumulated counts with the cumulative totals of
    /// `metrics` (idempotent sync for callers that keep a single
    /// [`ExecMetrics`] alive, where counters only ever grow).
    pub fn sync_from_exec(&mut self, metrics: &ExecMetrics) {
        for j in 0..self.est.len() {
            let (evaluated, passed) = metrics.pred_counts(j);
            self.evaluated[j] = evaluated;
            self.passed[j] = passed;
        }
    }

    /// The planning-time estimate for predicate `j`.
    pub fn estimated(&self, j: usize) -> f64 {
        self.est[j]
    }

    /// The observed pass fraction of predicate `j`, or `None` while it
    /// has fewer than `min_samples` evaluations.
    pub fn actual(&self, j: usize) -> Option<f64> {
        (self.evaluated[j] >= self.cfg.min_samples.max(1))
            .then(|| self.passed[j] as f64 / self.evaluated[j] as f64)
    }

    /// `|estimated − actual|` for predicate `j`, when enough samples
    /// have accumulated.
    pub fn divergence(&self, j: usize) -> Option<f64> {
        self.actual(j).map(|a| (self.est[j] - a).abs())
    }

    /// The largest per-predicate divergence with enough samples
    /// (`0.0` when no predicate qualifies yet).
    pub fn max_divergence(&self) -> f64 {
        (0..self.est.len()).filter_map(|j| self.divergence(j)).fold(0.0, f64::max)
    }

    /// Total evaluations absorbed across all predicates.
    pub fn total_evaluated(&self) -> u64 {
        self.evaluated.iter().sum()
    }

    /// True when some sufficiently-sampled predicate's actual
    /// selectivity strays beyond the configured threshold.
    pub fn drifted(&self) -> bool {
        self.max_divergence() > self.cfg.threshold
    }

    /// Re-arms the monitor for a freshly installed plan: new estimates,
    /// counts back to zero. The estimate vector must keep its length —
    /// the query (and hence predicate indexing) is unchanged.
    pub fn reset(&mut self, est: Vec<f64>) {
        assert_eq!(est.len(), self.est.len(), "query shape changed under the monitor");
        self.est = est;
        self.evaluated.iter_mut().for_each(|c| *c = 0);
        self.passed.iter_mut().for_each(|c| *c = 0);
    }

    /// Exports the monitor's full mutable state for checkpointing. The
    /// estimates are f64 bit patterns and the counts are exact, so a
    /// [`DriftMonitor::from_state`] round trip is bit-identical: the
    /// restored monitor makes the same `drifted()` decisions at the
    /// same instants as the original.
    pub fn state(&self) -> DriftMonitorState {
        DriftMonitorState {
            est: self.est.clone(),
            evaluated: self.evaluated.clone(),
            passed: self.passed.clone(),
        }
    }

    /// Rebuilds a monitor from a checkpointed state. Rejects shapes
    /// that cannot have come from a valid monitor (empty or mismatched
    /// vector lengths, passed counts exceeding evaluated counts) so a
    /// corrupt checkpoint surfaces as an error, not a later panic.
    pub fn from_state(state: DriftMonitorState, cfg: DriftConfig) -> Result<Self> {
        cfg.validate()?;
        let n = state.est.len();
        if n == 0 {
            return Err(Error::EmptyQuery);
        }
        if state.evaluated.len() != n || state.passed.len() != n {
            return Err(Error::Parse { what: "drift-monitor state vectors disagree in length" });
        }
        if state.passed.iter().zip(&state.evaluated).any(|(p, e)| p > e) {
            return Err(Error::Parse { what: "drift-monitor passed count exceeds evaluated" });
        }
        Ok(DriftMonitor { cfg, est: state.est, evaluated: state.evaluated, passed: state.passed })
    }
}

/// A [`DriftMonitor`]'s checkpointable state (see [`DriftMonitor::state`]).
#[derive(Debug, Clone, PartialEq)]
pub struct DriftMonitorState {
    /// Planning-time per-predicate selectivity estimates.
    pub est: Vec<f64>,
    /// Evaluations absorbed per predicate.
    pub evaluated: Vec<u64>,
    /// Passes absorbed per predicate.
    pub passed: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::{Attribute, Schema};
    use crate::dataset::Dataset;
    use crate::prob::CountingEstimator;
    use crate::query::Pred;
    use crate::range::Ranges;

    fn monitor(est: Vec<f64>, threshold: f64, min_samples: u64) -> DriftMonitor {
        DriftMonitor::new(est, DriftConfig { threshold, min_samples }).unwrap()
    }

    #[test]
    fn config_validation_rejects_bad_thresholds() {
        for t in [0.0, -1.0, 1.5, f64::NAN, f64::INFINITY] {
            assert!(DriftConfig { threshold: t, min_samples: 1 }.validate().is_err(), "{t}");
        }
        assert!(DriftConfig::default().validate().is_ok());
        assert!(DriftMonitor::new(vec![], DriftConfig::default()).is_err());
    }

    #[test]
    fn min_samples_gates_actuals() {
        let mut m = monitor(vec![0.5], 0.1, 4);
        for _ in 0..3 {
            m.observe(0, false);
        }
        assert_eq!(m.actual(0), None);
        assert_eq!(m.max_divergence(), 0.0);
        assert!(!m.drifted());
        m.observe(0, false);
        assert_eq!(m.actual(0), Some(0.0));
        assert!(m.drifted());
    }

    #[test]
    fn divergence_tracks_worst_predicate() {
        let mut m = monitor(vec![0.5, 0.9], 0.3, 1);
        m.observe_counts(0, 10, 5); // matches the estimate exactly
        m.observe_counts(1, 10, 2); // actual 0.2 vs estimated 0.9
        assert!((m.divergence(0).unwrap() - 0.0).abs() < 1e-12);
        assert!((m.divergence(1).unwrap() - 0.7).abs() < 1e-12);
        assert!((m.max_divergence() - 0.7).abs() < 1e-12);
        assert!(m.drifted());
        assert_eq!(m.total_evaluated(), 20);

        m.reset(vec![0.5, 0.2]);
        assert!(!m.drifted());
        assert_eq!(m.total_evaluated(), 0);
    }

    #[test]
    fn state_round_trip_is_bit_identical() {
        let mut m = monitor(vec![0.5, 0.9], 0.3, 2);
        m.observe_counts(0, 10, 5);
        m.observe_counts(1, 7, 1);
        let state = m.state();
        let restored = DriftMonitor::from_state(state.clone(), *m.config()).unwrap();
        for j in 0..2 {
            assert_eq!(m.estimated(j).to_bits(), restored.estimated(j).to_bits());
            assert_eq!(m.actual(j), restored.actual(j));
        }
        assert_eq!(m.drifted(), restored.drifted());
        assert_eq!(m.total_evaluated(), restored.total_evaluated());
        assert_eq!(restored.state(), state);

        // Corrupt shapes are rejected, never panicking later.
        let bad = DriftMonitorState { est: vec![0.5], evaluated: vec![1, 2], passed: vec![0] };
        assert!(DriftMonitor::from_state(bad, DriftConfig::default()).is_err());
        let inverted = DriftMonitorState { est: vec![0.5], evaluated: vec![1], passed: vec![2] };
        assert!(DriftMonitor::from_state(inverted, DriftConfig::default()).is_err());
        assert!(DriftMonitor::from_state(
            DriftMonitorState { est: vec![], evaluated: vec![], passed: vec![] },
            DriftConfig::default()
        )
        .is_err());
    }

    #[test]
    fn estimated_selectivities_match_truth_table() {
        let schema =
            Schema::new(vec![Attribute::new("a", 2, 1.0), Attribute::new("b", 2, 1.0)]).unwrap();
        // a passes 3/4 of rows; b passes 1/4.
        let data =
            Dataset::from_rows(&schema, vec![vec![1, 0], vec![1, 0], vec![1, 1], vec![0, 0]])
                .unwrap();
        let est = CountingEstimator::with_ranges(&data, Ranges::root(&schema));
        let q = Query::new(vec![Pred::in_range(0, 1, 1), Pred::in_range(1, 1, 1)]).unwrap();
        let sels = estimated_selectivities(&q, &est);
        assert!((sels[0] - 0.75).abs() < 1e-12);
        assert!((sels[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn sync_from_exec_reuses_metering_counters() {
        use crate::exec::ExecMetrics;
        use acqp_obs::Recorder;

        let schema = Schema::new(vec![Attribute::new("a", 2, 1.0)]).unwrap();
        let q = Query::new(vec![Pred::in_range(0, 1, 1)]).unwrap();
        let rec = Recorder::disabled();
        let metrics = ExecMetrics::new(&rec, &schema, &q);
        let mut m = monitor(vec![0.9], 0.2, 2);
        m.sync_from_exec(&metrics);
        assert_eq!(m.actual(0), None);
        // Simulate the executor evaluating pred 0 four times, one pass.
        let plan = crate::plan::Plan::Seq(crate::plan::SeqOrder::new(vec![0]));
        let model = crate::costmodel::CostModel::PerAttribute;
        let data = Dataset::from_rows(&schema, vec![vec![0], vec![0], vec![0], vec![1]]).unwrap();
        for row in 0..data.len() {
            let mut src = crate::exec::RowSource::new(&data, row);
            crate::exec::execute_metered(&plan, &q, &schema, &model, &mut src, &metrics);
        }
        m.sync_from_exec(&metrics);
        assert_eq!(m.actual(0), Some(0.25));
        assert!(m.drifted());
        // Sync is idempotent — counters are cumulative, not deltas.
        m.sync_from_exec(&metrics);
        assert_eq!(m.total_evaluated(), 4);
    }
}
