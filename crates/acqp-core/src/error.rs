//! Error type shared across the crate.

use std::fmt;

/// Errors produced when constructing models, queries or plans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A schema was constructed with no attributes, or an attribute had an
    /// empty domain.
    EmptySchema,
    /// An attribute domain size of zero (every attribute must take at
    /// least one value).
    EmptyDomain {
        /// Offending attribute name.
        attr: String,
    },
    /// An attribute id referenced an attribute outside the schema.
    UnknownAttr {
        /// The out-of-range attribute id.
        attr: usize,
        /// Number of attributes in the schema.
        n: usize,
    },
    /// A predicate range was inverted (`lo > hi`).
    InvertedRange {
        /// Lower endpoint supplied.
        lo: u16,
        /// Upper endpoint supplied.
        hi: u16,
    },
    /// Two predicates referenced the same attribute. The paper's queries
    /// (and this implementation) allow at most one unary predicate per
    /// attribute.
    DuplicatePredicate {
        /// Attribute with more than one predicate.
        attr: usize,
    },
    /// A query had no predicates.
    EmptyQuery,
    /// An attribute's domain is too narrow to carry a non-trivial range
    /// predicate (workload generators need at least two values to place
    /// a range with nonzero width).
    DegenerateDomain {
        /// Offending attribute name.
        attr: String,
        /// Observed domain size.
        k: u16,
    },
    /// A dataset row had the wrong arity or an out-of-domain value.
    BadRow {
        /// Row index in the input.
        row: usize,
        /// Explanation.
        what: &'static str,
    },
    /// A query had too many predicates for an exponential-time algorithm
    /// (`OptSeq` is O(m·2^m); the exhaustive planner is worse).
    TooManyPredicates {
        /// Number of predicates in the query.
        m: usize,
        /// Maximum the algorithm accepts.
        max: usize,
    },
    /// Plan wire-format decoding failed.
    BadWireFormat {
        /// Byte offset of the failure.
        offset: usize,
        /// Explanation.
        what: &'static str,
    },
    /// Textual input (e.g. a query expression) failed to parse.
    Parse {
        /// Explanation.
        what: &'static str,
    },
    /// The training data (or conditioned model) had no support at all,
    /// so no probabilities can be estimated.
    NoData,
    /// An I/O operation on a user-supplied path failed (the underlying
    /// `std::io::Error` message is captured as text so the variant stays
    /// `Clone + PartialEq`).
    Io {
        /// Path that failed.
        path: String,
        /// Explanation from the operating system.
        what: String,
    },
    /// A command-line flag carried a value outside its admissible range.
    InvalidFlag {
        /// Flag name, e.g. `--loss-rate`.
        flag: String,
        /// The offending value, as supplied.
        value: String,
        /// What the flag requires.
        why: &'static str,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::EmptySchema => write!(f, "schema must contain at least one attribute"),
            Error::EmptyDomain { attr } => {
                write!(f, "attribute `{attr}` has an empty domain")
            }
            Error::UnknownAttr { attr, n } => {
                write!(f, "attribute id {attr} out of range (schema has {n})")
            }
            Error::InvertedRange { lo, hi } => {
                write!(f, "inverted range [{lo}, {hi}]")
            }
            Error::DuplicatePredicate { attr } => {
                write!(f, "more than one predicate on attribute {attr}")
            }
            Error::EmptyQuery => write!(f, "query must contain at least one predicate"),
            Error::DegenerateDomain { attr, k } => {
                write!(f, "attribute `{attr}` has a degenerate domain of {k} value(s); range workloads need at least 2")
            }
            Error::BadRow { row, what } => write!(f, "bad dataset row {row}: {what}"),
            Error::TooManyPredicates { m, max } => {
                write!(f, "query has {m} predicates; this algorithm accepts at most {max}")
            }
            Error::BadWireFormat { offset, what } => {
                write!(f, "bad plan wire format at byte {offset}: {what}")
            }
            Error::Parse { what } => write!(f, "parse error: {what}"),
            Error::NoData => write!(f, "no historical data to estimate probabilities from"),
            Error::Io { path, what } => write!(f, "io error on `{path}`: {what}"),
            Error::InvalidFlag { flag, value, why } => {
                write!(f, "invalid value `{value}` for {flag}: {why}")
            }
        }
    }
}

impl std::error::Error for Error {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;
