//! Per-tuple plan execution — the traversal cost of Eq. (1).
//!
//! Executing a plan on a tuple walks one root-to-leaf path, *acquiring*
//! each attribute the first time a node needs it and charging its
//! acquisition cost exactly once. Re-reading an already-acquired
//! attribute is free: a second split on the same attribute merely routes
//! on the remembered value.

use crate::attr::{AttrId, Schema};
use crate::dataset::Dataset;
use crate::plan::Plan;
use crate::query::Query;

/// Source of attribute values for one tuple. The dataset-backed
/// [`RowSource`] simply reads a stored row; the sensornet substrate
/// implements this with energy-accounting sensor reads.
pub trait TupleSource {
    /// Observes (acquires) the value of attribute `attr` for the current
    /// tuple. Called at most once per attribute per tuple.
    fn acquire(&mut self, attr: AttrId) -> u16;
}

/// A [`TupleSource`] reading one row of a [`Dataset`].
#[derive(Debug, Clone, Copy)]
pub struct RowSource<'a> {
    data: &'a Dataset,
    row: usize,
}

impl<'a> RowSource<'a> {
    /// Wraps row `row` of `data`.
    pub fn new(data: &'a Dataset, row: usize) -> Self {
        RowSource { data, row }
    }
}

impl TupleSource for RowSource<'_> {
    fn acquire(&mut self, attr: AttrId) -> u16 {
        self.data.value(self.row, attr)
    }
}

/// Result of executing a plan on one tuple.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecOutcome {
    /// Whether the plan outputs (`true`) or rejects (`false`) the tuple.
    pub verdict: bool,
    /// Total acquisition cost `C(P, x)` charged along the traversal.
    pub cost: f64,
    /// Attributes acquired, in acquisition order.
    pub acquired: Vec<AttrId>,
}

/// Executes `plan` for the tuple behind `src`, charging acquisition
/// costs from `schema` per Eq. (1).
pub fn execute(
    plan: &Plan,
    query: &Query,
    schema: &Schema,
    src: &mut impl TupleSource,
) -> ExecOutcome {
    execute_model(plan, query, schema, &crate::costmodel::CostModel::PerAttribute, src)
}

/// Like [`execute`] but with order-dependent acquisition pricing
/// (§7 "Complex acquisition costs"), e.g. shared-board power-ups.
pub fn execute_model(
    plan: &Plan,
    query: &Query,
    schema: &Schema,
    model: &crate::costmodel::CostModel,
    src: &mut impl TupleSource,
) -> ExecOutcome {
    let mut st =
        ExecState { cache: vec![None; schema.len()], mask: 0, cost: 0.0, acquired: Vec::new() };
    let mut node = plan;
    loop {
        match node {
            Plan::Decided(b) => {
                return ExecOutcome { verdict: *b, cost: st.cost, acquired: st.acquired };
            }
            Plan::Seq(seq) => {
                for &j in &seq.order {
                    let p = query.pred(j);
                    let v = st.fetch(p.attr(), schema, model, src);
                    if !p.eval(v) {
                        return ExecOutcome {
                            verdict: false,
                            cost: st.cost,
                            acquired: st.acquired,
                        };
                    }
                }
                return ExecOutcome { verdict: true, cost: st.cost, acquired: st.acquired };
            }
            Plan::Split { attr, cut, lo, hi } => {
                let v = st.fetch(*attr, schema, model, src);
                node = if v < *cut { lo } else { hi };
            }
        }
    }
}

struct ExecState {
    cache: Vec<Option<u16>>,
    mask: u64,
    cost: f64,
    acquired: Vec<AttrId>,
}

impl ExecState {
    #[inline]
    fn fetch(
        &mut self,
        attr: AttrId,
        schema: &Schema,
        model: &crate::costmodel::CostModel,
        src: &mut impl TupleSource,
    ) -> u16 {
        if let Some(v) = self.cache[attr] {
            return v;
        }
        let v = src.acquire(attr);
        self.cache[attr] = Some(v);
        self.cost += model.cost(schema, attr, self.mask);
        self.mask |= 1u64 << attr;
        self.acquired.push(attr);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Attribute;
    use crate::plan::SeqOrder;
    use crate::query::Pred;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::new("x0", 4, 10.0),
            Attribute::new("x1", 4, 20.0),
            Attribute::new("x2", 4, 1.0),
        ])
        .unwrap()
    }

    fn query() -> Query {
        Query::new(vec![Pred::in_range(0, 0, 1), Pred::in_range(1, 2, 3)]).unwrap()
    }

    struct FixedTuple(Vec<u16>, usize);
    impl TupleSource for FixedTuple {
        fn acquire(&mut self, attr: AttrId) -> u16 {
            self.1 += 1;
            self.0[attr]
        }
    }

    #[test]
    fn seq_early_termination() {
        let s = schema();
        let q = query();
        let plan = Plan::Seq(SeqOrder::new(vec![0, 1]));
        // First predicate fails -> only x0 acquired.
        let mut src = FixedTuple(vec![3, 3, 0], 0);
        let out = execute(&plan, &q, &s, &mut src);
        assert!(!out.verdict);
        assert_eq!(out.cost, 10.0);
        assert_eq!(out.acquired, vec![0]);
        assert_eq!(src.1, 1);

        // Both pass -> both acquired.
        let mut src = FixedTuple(vec![1, 2, 0], 0);
        let out = execute(&plan, &q, &s, &mut src);
        assert!(out.verdict);
        assert_eq!(out.cost, 30.0);
        assert_eq!(out.acquired, vec![0, 1]);
    }

    #[test]
    fn split_routes_and_charges_once() {
        let s = schema();
        let q = query();
        // Condition on cheap x2, then different orders; re-split on x2 is free.
        let plan = Plan::split(
            2,
            2,
            Plan::split(2, 1, Plan::fail(), Plan::Seq(SeqOrder::new(vec![1, 0]))),
            Plan::Seq(SeqOrder::new(vec![0, 1])),
        );
        // x2 = 1 -> lo branch -> inner split (free) -> hi -> eval pred1 first.
        let mut src = FixedTuple(vec![0, 2, 1], 0);
        let out = execute(&plan, &q, &s, &mut src);
        assert!(out.verdict);
        // x2 once (1.0) + x1 (20) + x0 (10)
        assert_eq!(out.cost, 31.0);
        assert_eq!(out.acquired, vec![2, 1, 0]);
        assert_eq!(src.1, 3, "x2 must be acquired exactly once");

        // x2 = 0 -> lo, lo -> REJECT with only x2 acquired.
        let mut src = FixedTuple(vec![0, 2, 0], 0);
        let out = execute(&plan, &q, &s, &mut src);
        assert!(!out.verdict);
        assert_eq!(out.cost, 1.0);
    }

    #[test]
    fn decided_leaf_costs_nothing() {
        let s = schema();
        let q = query();
        let out = execute(&Plan::pass(), &q, &s, &mut FixedTuple(vec![0, 0, 0], 0));
        assert!(out.verdict);
        assert_eq!(out.cost, 0.0);
        assert!(out.acquired.is_empty());
    }

    #[test]
    fn row_source_reads_dataset() {
        let s = schema();
        let d = Dataset::from_rows(&s, vec![vec![1, 2, 3], vec![0, 0, 0]]).unwrap();
        let q = query();
        let plan = Plan::Seq(SeqOrder::new(vec![0, 1]));
        let out = execute(&plan, &q, &s, &mut RowSource::new(&d, 0));
        assert!(out.verdict);
        let out = execute(&plan, &q, &s, &mut RowSource::new(&d, 1));
        assert!(!out.verdict);
    }

    #[test]
    fn empty_seq_outputs() {
        let s = schema();
        let q = query();
        let out =
            execute(&Plan::Seq(SeqOrder::default()), &q, &s, &mut FixedTuple(vec![3, 0, 0], 0));
        assert!(out.verdict);
        assert_eq!(out.cost, 0.0);
    }
}
