//! Per-tuple plan execution — the traversal cost of Eq. (1).
//!
//! Executing a plan on a tuple walks one root-to-leaf path, *acquiring*
//! each attribute the first time a node needs it and charging its
//! acquisition cost exactly once. Re-reading an already-acquired
//! attribute is free: a second split on the same attribute merely routes
//! on the remembered value.

use acqp_obs::{Counter, FloatCounter, Hist, Recorder};

use crate::attr::{AttrId, Schema};
use crate::dataset::Dataset;
use crate::plan::Plan;
use crate::query::Query;

/// Selects the execution path for batch-capable entry points
/// ([`crate::cost::measure_mode`], historical-trace replay and the
/// sensornet simulation loop). `Scalar` — the default — is the seed
/// per-tuple interpreter, unchanged. `Vectorized` routes through the
/// columnar batch executor of [`crate::batch`], which is proven
/// bitwise-equal to the scalar path by the differential harness in
/// `tests/vectorized_equivalence.rs` (see `DESIGN.md` §12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Per-tuple root-to-leaf tree walk (the seed path).
    #[default]
    Scalar,
    /// Columnar selection-vector execution over
    /// [`crate::batch::ColumnBatch`]es of [`crate::batch::BATCH_ROWS`]
    /// tuples.
    Vectorized,
}

/// How one scheduled query ended, for callers that serve many queries
/// with retry, deadline, and admission-control policies (the sensornet
/// service loop). The lossless loop only ever produces `Complete`;
/// every degraded terminal state is typed so downstream accounting can
/// never silently conflate "finished" with "gave up".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueryStatus {
    /// Ran its full window and every produced result was delivered.
    #[default]
    Complete,
    /// Ran its full window but lost work to faults along the way
    /// (dropped result packets, aborted tuples, or offline motes): the
    /// reported rows are a prefix-correct subset of the lossless run's.
    Partial,
    /// Never executed: admission control dropped it (budget exhausted
    /// past its queueing bound, or its deadline expired while queued),
    /// or its admission epoch fell beyond the run.
    Shed,
    /// Admitted but terminated at its deadline before the window ended;
    /// rows delivered up to the cutoff are reported.
    TimedOut,
}

impl QueryStatus {
    /// Stable single-byte encoding for persistence (WAL records).
    pub fn to_u8(self) -> u8 {
        match self {
            QueryStatus::Complete => 0,
            QueryStatus::Partial => 1,
            QueryStatus::Shed => 2,
            QueryStatus::TimedOut => 3,
        }
    }

    /// Inverse of [`QueryStatus::to_u8`]; `None` on unknown bytes.
    pub fn from_u8(b: u8) -> Option<Self> {
        match b {
            0 => Some(QueryStatus::Complete),
            1 => Some(QueryStatus::Partial),
            2 => Some(QueryStatus::Shed),
            3 => Some(QueryStatus::TimedOut),
            _ => None,
        }
    }

    /// Short lowercase label for reports and flight events.
    pub fn label(self) -> &'static str {
        match self {
            QueryStatus::Complete => "complete",
            QueryStatus::Partial => "partial",
            QueryStatus::Shed => "shed",
            QueryStatus::TimedOut => "timed_out",
        }
    }
}

/// Source of attribute values for one tuple. The dataset-backed
/// [`RowSource`] simply reads a stored row; the sensornet substrate
/// implements this with energy-accounting sensor reads.
pub trait TupleSource {
    /// Observes (acquires) the value of attribute `attr` for the current
    /// tuple. Called at most once per attribute per tuple.
    fn acquire(&mut self, attr: AttrId) -> u16;
}

/// A [`TupleSource`] reading one row of a [`Dataset`].
#[derive(Debug, Clone, Copy)]
pub struct RowSource<'a> {
    data: &'a Dataset,
    row: usize,
}

impl<'a> RowSource<'a> {
    /// Wraps row `row` of `data`.
    pub fn new(data: &'a Dataset, row: usize) -> Self {
        RowSource { data, row }
    }
}

impl TupleSource for RowSource<'_> {
    fn acquire(&mut self, attr: AttrId) -> u16 {
        self.data.value(self.row, attr)
    }
}

/// Result of executing a plan on one tuple.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecOutcome {
    /// Whether the plan outputs (`true`) or rejects (`false`) the tuple.
    pub verdict: bool,
    /// Total acquisition cost `C(P, x)` charged along the traversal.
    pub cost: f64,
    /// Attributes acquired, in acquisition order.
    pub acquired: Vec<AttrId>,
}

/// Executes `plan` for the tuple behind `src`, charging acquisition
/// costs from `schema` per Eq. (1).
pub fn execute(
    plan: &Plan,
    query: &Query,
    schema: &Schema,
    src: &mut impl TupleSource,
) -> ExecOutcome {
    execute_model(plan, query, schema, &crate::costmodel::CostModel::PerAttribute, src)
}

/// Like [`execute`] but with order-dependent acquisition pricing
/// (§7 "Complex acquisition costs"), e.g. shared-board power-ups.
pub fn execute_model(
    plan: &Plan,
    query: &Query,
    schema: &Schema,
    model: &crate::costmodel::CostModel,
    src: &mut impl TupleSource,
) -> ExecOutcome {
    execute_inner(plan, query, schema, model, src, None)
}

/// Like [`execute_model`], recording per-attribute acquisition counts,
/// per-tuple cost, and per-predicate evaluation outcomes into `metrics`.
pub fn execute_metered(
    plan: &Plan,
    query: &Query,
    schema: &Schema,
    model: &crate::costmodel::CostModel,
    src: &mut impl TupleSource,
    metrics: &ExecMetrics,
) -> ExecOutcome {
    execute_inner(plan, query, schema, model, src, Some(metrics))
}

fn execute_inner(
    plan: &Plan,
    query: &Query,
    schema: &Schema,
    model: &crate::costmodel::CostModel,
    src: &mut impl TupleSource,
    metrics: Option<&ExecMetrics>,
) -> ExecOutcome {
    let mut st = TupleState::new(schema.len());
    let mut node = plan;
    let verdict = loop {
        match node {
            Plan::Decided(b) => break *b,
            Plan::Seq(seq) => {
                break eval_seq_leaf(&mut st, &seq.order, query, schema, model, src, metrics)
            }
            Plan::Split { attr, cut, lo, hi } => {
                let v = st.fetch(*attr, schema, model, src, metrics);
                node = if v < *cut { lo } else { hi };
            }
        }
    };
    if let Some(m) = metrics {
        m.tuples.incr(1);
        m.outputs.incr(u64::from(verdict));
        m.cost_total.add(st.cost);
        m.cost_per_tuple.observe(st.cost.round().max(0.0) as u64);
        m.acquisitions_per_tuple.observe(st.acquired.len() as u64);
    }
    st.into_outcome(verdict)
}

/// Evaluates one sequential leaf — predicates in `order`, early
/// termination on the first failure — fetching each predicate's
/// attribute through `st` and recording per-predicate outcomes.
///
/// This is *the* scalar predicate kernel: the tree executor above, the
/// sensornet wire interpreter and the vectorized path's per-leaf cost
/// tables all go through it (directly or via [`TupleState::charge`]),
/// so the paths cannot drift semantically.
pub fn eval_seq_leaf(
    st: &mut TupleState,
    order: &[usize],
    query: &Query,
    schema: &Schema,
    model: &crate::costmodel::CostModel,
    src: &mut impl TupleSource,
    metrics: Option<&ExecMetrics>,
) -> bool {
    for &j in order {
        let p = query.pred(j);
        let v = st.fetch(p.attr(), schema, model, src, metrics);
        let held = p.eval(v);
        if let Some(m) = metrics {
            m.pred_evaluated[j].incr(1);
            m.pred_passed[j].incr(u64::from(held));
        }
        if !held {
            return false;
        }
    }
    true
}

/// Pre-hoisted executor instruments (`exec.*`), built once per
/// measurement run so the per-tuple hot path records through lock-free
/// handles. See `DESIGN.md` §8 for the metric names.
#[derive(Debug)]
pub struct ExecMetrics {
    /// `exec.acquire.<attr>` — acquisitions charged, per attribute.
    pub(crate) acquire: Vec<Counter>,
    /// `exec.tuples` — tuples executed.
    pub(crate) tuples: Counter,
    /// `exec.outputs` — tuples the plan output.
    pub(crate) outputs: Counter,
    /// `exec.cost_total` — summed acquisition cost over all tuples.
    pub(crate) cost_total: FloatCounter,
    /// `exec.cost_per_tuple` — per-tuple cost distribution (rounded).
    pub(crate) cost_per_tuple: Hist,
    /// `exec.acquisitions_per_tuple` — attributes acquired per tuple.
    pub(crate) acquisitions_per_tuple: Hist,
    /// `exec.pred<j>.evaluated` — times predicate `j` was evaluated.
    pub(crate) pred_evaluated: Vec<Counter>,
    /// `exec.pred<j>.passed` — times predicate `j` held.
    pub(crate) pred_passed: Vec<Counter>,
    /// `exec.batch.*` — batch-path instruments (zero on scalar runs;
    /// registering them unconditionally keeps snapshots mode-agnostic).
    pub(crate) batch: crate::batch::BatchMetrics,
}

impl ExecMetrics {
    /// Registers the executor instruments for `schema`/`query` on `rec`.
    pub fn new(rec: &Recorder, schema: &Schema, query: &Query) -> Self {
        ExecMetrics {
            acquire: (0..schema.len())
                .map(|a| rec.counter(&format!("exec.acquire.{}", schema.attr(a).name())))
                .collect(),
            tuples: rec.counter("exec.tuples"),
            outputs: rec.counter("exec.outputs"),
            cost_total: rec.float_counter("exec.cost_total"),
            cost_per_tuple: rec.hist("exec.cost_per_tuple"),
            acquisitions_per_tuple: rec.hist("exec.acquisitions_per_tuple"),
            pred_evaluated: (0..query.len())
                .map(|j| rec.counter(&format!("exec.pred{j}.evaluated")))
                .collect(),
            pred_passed: (0..query.len())
                .map(|j| rec.counter(&format!("exec.pred{j}.passed")))
                .collect(),
            batch: crate::batch::BatchMetrics::new(rec),
        }
    }

    /// Observed pass fraction of predicate `j` (its actual selectivity
    /// over the tuples that evaluated it), or `None` before any
    /// evaluation.
    pub fn actual_selectivity(&self, j: usize) -> Option<f64> {
        let n = self.pred_evaluated[j].value();
        (n > 0).then(|| self.pred_passed[j].value() as f64 / n as f64)
    }

    /// Cumulative `(evaluated, passed)` counts for predicate `j` — the
    /// raw inputs behind [`ExecMetrics::actual_selectivity`], consumed
    /// by the drift monitor.
    pub fn pred_counts(&self, j: usize) -> (u64, u64) {
        (self.pred_evaluated[j].value(), self.pred_passed[j].value())
    }
}

/// Cross-query acquisition cache for one `(epoch, mote)` slot of a
/// multi-query service run: the first query to acquire an attribute
/// pays for the sensor read, every later query in the same slot is
/// served from the cache for free. Reused across slots via
/// [`SharedScratch::reset`] to keep the per-epoch loop allocation-free.
#[derive(Debug, Clone)]
pub struct SharedScratch {
    cache: Vec<Option<u16>>,
    acquired: Vec<AttrId>,
}

impl SharedScratch {
    /// Empty scratch for a schema of `n_attrs` attributes.
    pub fn new(n_attrs: usize) -> SharedScratch {
        SharedScratch { cache: vec![None; n_attrs], acquired: Vec::new() }
    }

    /// Clears the cache for the next `(epoch, mote)` slot without
    /// releasing its capacity.
    pub fn reset(&mut self) {
        for v in &mut self.cache {
            *v = None;
        }
        self.acquired.clear();
    }

    /// Attributes physically acquired in this slot, in first-demand
    /// order across all queries — the slot's deduplicated acquisition
    /// chain.
    pub fn acquired(&self) -> &[AttrId] {
        &self.acquired
    }
}

/// A [`TupleSource`] that lets several queries share one underlying
/// source: the first `acquire` of an attribute delegates to `inner`
/// (charging whatever that source charges — e.g. sensing energy) and
/// caches the value in the [`SharedScratch`]; repeat acquisitions by
/// later queries in the same slot return the cached value without
/// touching `inner`. This is the multi-query acquisition merge of
/// `DESIGN.md` §14.
#[derive(Debug)]
pub struct SharedSource<'a, S> {
    inner: &'a mut S,
    scratch: &'a mut SharedScratch,
}

impl<'a, S: TupleSource> SharedSource<'a, S> {
    /// Wraps `inner`, deduplicating acquisitions through `scratch`.
    pub fn new(inner: &'a mut S, scratch: &'a mut SharedScratch) -> Self {
        SharedSource { inner, scratch }
    }
}

impl<S: TupleSource> TupleSource for SharedSource<'_, S> {
    fn acquire(&mut self, attr: AttrId) -> u16 {
        if let Some(v) = self.scratch.cache[attr] {
            return v;
        }
        let v = self.inner.acquire(attr);
        self.scratch.cache[attr] = Some(v);
        self.scratch.acquired.push(attr);
        v
    }
}

/// Per-tuple acquisition state: the value cache, the acquired-set
/// bitmask, the running cost and the acquisition order. Shared by the
/// tree executor, the sensornet wire interpreter and the vectorized
/// path's plan preparation, so every path charges Eq. (1) through the
/// same arithmetic.
#[derive(Debug, Clone)]
pub struct TupleState {
    cache: Vec<Option<u16>>,
    mask: u64,
    cost: f64,
    acquired: Vec<AttrId>,
}

impl TupleState {
    /// Fresh state for a schema of `n_attrs` attributes: nothing
    /// acquired, zero cost.
    pub fn new(n_attrs: usize) -> TupleState {
        TupleState { cache: vec![None; n_attrs], mask: 0, cost: 0.0, acquired: Vec::new() }
    }

    /// Returns `attr`'s value, acquiring (and charging) it on first use;
    /// re-reads are free per Eq. (1).
    #[inline]
    pub fn fetch(
        &mut self,
        attr: AttrId,
        schema: &Schema,
        model: &crate::costmodel::CostModel,
        src: &mut impl TupleSource,
        metrics: Option<&ExecMetrics>,
    ) -> u16 {
        if let Some(v) = self.cache[attr] {
            return v;
        }
        let v = src.acquire(attr);
        self.cache[attr] = Some(v);
        self.charge(attr, schema, model);
        if let Some(m) = metrics {
            m.acquire[attr].incr(1);
        }
        v
    }

    /// Charges the first acquisition of `attr` (cost under the current
    /// acquired mask, mask update, acquisition order) without reading a
    /// value — already-acquired attributes are a no-op. The vectorized
    /// plan preparation drives this against a value-less state to
    /// precompute every path's cost with scalar-identical arithmetic.
    #[inline]
    pub(crate) fn charge(
        &mut self,
        attr: AttrId,
        schema: &Schema,
        model: &crate::costmodel::CostModel,
    ) {
        let bit = 1u64 << attr;
        if self.mask & bit != 0 {
            return;
        }
        self.cost += model.cost(schema, attr, self.mask);
        self.mask |= bit;
        self.acquired.push(attr);
    }

    /// Acquired-set bitmask (bit `a` set once attribute `a` is charged).
    pub fn mask(&self) -> u64 {
        self.mask
    }

    /// Running acquisition cost `C(P, x)` so far.
    pub fn cost(&self) -> f64 {
        self.cost
    }

    /// Attributes acquired so far, in acquisition order.
    pub fn acquired(&self) -> &[AttrId] {
        &self.acquired
    }

    /// Finalizes the walk into an [`ExecOutcome`].
    pub fn into_outcome(self, verdict: bool) -> ExecOutcome {
        ExecOutcome { verdict, cost: self.cost, acquired: self.acquired }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Attribute;
    use crate::plan::SeqOrder;
    use crate::query::Pred;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::new("x0", 4, 10.0),
            Attribute::new("x1", 4, 20.0),
            Attribute::new("x2", 4, 1.0),
        ])
        .unwrap()
    }

    fn query() -> Query {
        Query::new(vec![Pred::in_range(0, 0, 1), Pred::in_range(1, 2, 3)]).unwrap()
    }

    struct FixedTuple(Vec<u16>, usize);
    impl TupleSource for FixedTuple {
        fn acquire(&mut self, attr: AttrId) -> u16 {
            self.1 += 1;
            self.0[attr]
        }
    }

    #[test]
    fn seq_early_termination() {
        let s = schema();
        let q = query();
        let plan = Plan::Seq(SeqOrder::new(vec![0, 1]));
        // First predicate fails -> only x0 acquired.
        let mut src = FixedTuple(vec![3, 3, 0], 0);
        let out = execute(&plan, &q, &s, &mut src);
        assert!(!out.verdict);
        assert_eq!(out.cost, 10.0);
        assert_eq!(out.acquired, vec![0]);
        assert_eq!(src.1, 1);

        // Both pass -> both acquired.
        let mut src = FixedTuple(vec![1, 2, 0], 0);
        let out = execute(&plan, &q, &s, &mut src);
        assert!(out.verdict);
        assert_eq!(out.cost, 30.0);
        assert_eq!(out.acquired, vec![0, 1]);
    }

    #[test]
    fn split_routes_and_charges_once() {
        let s = schema();
        let q = query();
        // Condition on cheap x2, then different orders; re-split on x2 is free.
        let plan = Plan::split(
            2,
            2,
            Plan::split(2, 1, Plan::fail(), Plan::Seq(SeqOrder::new(vec![1, 0]))),
            Plan::Seq(SeqOrder::new(vec![0, 1])),
        );
        // x2 = 1 -> lo branch -> inner split (free) -> hi -> eval pred1 first.
        let mut src = FixedTuple(vec![0, 2, 1], 0);
        let out = execute(&plan, &q, &s, &mut src);
        assert!(out.verdict);
        // x2 once (1.0) + x1 (20) + x0 (10)
        assert_eq!(out.cost, 31.0);
        assert_eq!(out.acquired, vec![2, 1, 0]);
        assert_eq!(src.1, 3, "x2 must be acquired exactly once");

        // x2 = 0 -> lo, lo -> REJECT with only x2 acquired.
        let mut src = FixedTuple(vec![0, 2, 0], 0);
        let out = execute(&plan, &q, &s, &mut src);
        assert!(!out.verdict);
        assert_eq!(out.cost, 1.0);
    }

    #[test]
    fn decided_leaf_costs_nothing() {
        let s = schema();
        let q = query();
        let out = execute(&Plan::pass(), &q, &s, &mut FixedTuple(vec![0, 0, 0], 0));
        assert!(out.verdict);
        assert_eq!(out.cost, 0.0);
        assert!(out.acquired.is_empty());
    }

    #[test]
    fn row_source_reads_dataset() {
        let s = schema();
        let d = Dataset::from_rows(&s, vec![vec![1, 2, 3], vec![0, 0, 0]]).unwrap();
        let q = query();
        let plan = Plan::Seq(SeqOrder::new(vec![0, 1]));
        let out = execute(&plan, &q, &s, &mut RowSource::new(&d, 0));
        assert!(out.verdict);
        let out = execute(&plan, &q, &s, &mut RowSource::new(&d, 1));
        assert!(!out.verdict);
    }

    #[test]
    fn metered_execution_counts_acquisitions_and_predicates() {
        use acqp_obs::NoopSink;
        use std::sync::Arc;

        let s = schema();
        let q = query();
        let rec = Recorder::new(Arc::new(NoopSink));
        let m = ExecMetrics::new(&rec, &s, &q);
        let plan = Plan::Seq(SeqOrder::new(vec![0, 1]));
        let model = crate::costmodel::CostModel::PerAttribute;
        // Row 1: pred0 fails (only x0 acquired). Row 2: both pass.
        for row in [vec![3, 3, 0], vec![1, 2, 0]] {
            execute_metered(&plan, &q, &s, &model, &mut FixedTuple(row, 0), &m);
        }
        let snap = rec.drain();
        assert_eq!(snap.counter("exec.tuples"), 2);
        assert_eq!(snap.counter("exec.outputs"), 1);
        assert_eq!(snap.counter("exec.acquire.x0"), 2);
        assert_eq!(snap.counter("exec.acquire.x1"), 1);
        assert_eq!(snap.counter("exec.acquire.x2"), 0);
        assert_eq!(snap.counter("exec.pred0.evaluated"), 2);
        assert_eq!(snap.counter("exec.pred0.passed"), 1);
        assert_eq!(snap.counter("exec.pred1.evaluated"), 1);
        assert_eq!(snap.counter("exec.pred1.passed"), 1);
        assert!((snap.value("exec.cost_total") - 40.0).abs() < 1e-9);
        assert_eq!(snap.hists["exec.acquisitions_per_tuple"].1, 2);
        assert!((m.actual_selectivity(0).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn shared_source_charges_inner_once_per_attribute() {
        let s = schema();
        let q = query();
        let plan = Plan::Seq(SeqOrder::new(vec![0, 1]));
        let mut inner = FixedTuple(vec![1, 2, 0], 0);
        let mut scratch = SharedScratch::new(s.len());

        // Two queries over the same slot: the second run re-demands x0
        // and x1 but the underlying source is only read twice in total.
        for _ in 0..2 {
            let mut shared = SharedSource::new(&mut inner, &mut scratch);
            let out = execute(&plan, &q, &s, &mut shared);
            assert!(out.verdict);
            // Per-query outcomes still report the full chain and cost.
            assert_eq!(out.acquired, vec![0, 1]);
            assert_eq!(out.cost, 30.0);
        }
        assert_eq!(inner.1, 2, "inner source read once per distinct attribute");
        assert_eq!(scratch.acquired(), &[0, 1]);

        // Next slot: reset re-arms the cache.
        scratch.reset();
        assert!(scratch.acquired().is_empty());
        let mut shared = SharedSource::new(&mut inner, &mut scratch);
        execute(&plan, &q, &s, &mut shared);
        assert_eq!(inner.1, 4);
    }

    #[test]
    fn empty_seq_outputs() {
        let s = schema();
        let q = query();
        let out =
            execute(&Plan::Seq(SeqOrder::default()), &q, &s, &mut FixedTuple(vec![3, 0, 0], 0));
        assert!(out.verdict);
        assert_eq!(out.cost, 0.0);
    }
}
