//! Existential queries — §7, "Generalization to other types of queries".
//!
//! *"We may only be interested in finding out if there exists a sensor
//! that is recording high values of light and temperature. We can use
//! conditional plans to significantly reduce the number of acquisitions
//! made by determining which of the sensors are most likely to satisfy
//! the predicates."*
//!
//! An [`ExistsQuery`] is a disjunction of conjunctive *branches* —
//! typically one branch per sensor. Evaluating it means probing branches
//! until one passes (early **success**, the dual of conjunctive early
//! failure). Everything is the mirror image of the conjunctive
//! machinery: ordering branches by `cost / P(success | previous
//! failures)` is Munagala's greedy run on the *branch-failure*
//! indicators, and conditioning splits on cheap attributes select which
//! sensor to try first.
//!
//! The planner here estimates probabilities directly from a historical
//! [`Dataset`] (the §5 counting approach). Branch evaluation costs are
//! estimated unconditionally of other branches' outcomes — a standard
//! pipelined-filters approximation; the executor's attribute cache
//! makes the measured cost only cheaper when branches share attributes.

use crate::attr::{AttrId, Schema};
use crate::cost::CostReport;
use crate::costmodel::{acquired_mask, CostModel};
use crate::dataset::Dataset;
use crate::error::{Error, Result};
use crate::exec::{RowSource, TupleSource};
use crate::planner::SplitGrid;
use crate::prob::{CountingEstimator, Estimator, TruthTable};
use crate::query::Query;
use crate::range::{Range, Ranges};

/// A disjunction of conjunctive branches: true iff *some* branch's
/// conjunction holds.
///
/// ```
/// use acqp_core::prelude::*;
///
/// let schema = Schema::new(vec![
///     Attribute::new("s0", 4, 100.0),
///     Attribute::new("s1", 4, 100.0),
/// ]).unwrap();
/// // "Does any sensor read 3?"
/// let q = ExistsQuery::checked(vec![
///     Query::new(vec![Pred::in_range(0, 3, 3)]).unwrap(),
///     Query::new(vec![Pred::in_range(1, 3, 3)]).unwrap(),
/// ], &schema).unwrap();
/// assert!(q.eval_with(|a| [0, 3][a]));
/// assert!(!q.eval_with(|a| [0, 1][a]));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ExistsQuery {
    branches: Vec<Query>,
}

impl ExistsQuery {
    /// Builds an existential query; at most 64 branches.
    pub fn new(branches: Vec<Query>) -> Result<Self> {
        if branches.is_empty() {
            return Err(Error::EmptyQuery);
        }
        if branches.len() > 64 {
            return Err(Error::TooManyPredicates { m: branches.len(), max: 64 });
        }
        Ok(ExistsQuery { branches })
    }

    /// Validates every branch against `schema`.
    pub fn checked(branches: Vec<Query>, schema: &Schema) -> Result<Self> {
        for b in &branches {
            for p in b.preds() {
                schema.check_attr(p.attr())?;
            }
        }
        Self::new(branches)
    }

    /// The branches.
    pub fn branches(&self) -> &[Query] {
        &self.branches
    }

    /// Number of branches.
    pub fn len(&self) -> usize {
        self.branches.len()
    }

    /// Never empty after construction.
    pub fn is_empty(&self) -> bool {
        self.branches.is_empty()
    }

    /// `∃ b: b(x)`.
    pub fn eval_with(&self, mut value: impl FnMut(AttrId) -> u16) -> bool {
        self.branches.iter().any(|b| b.eval_with(&mut value))
    }
}

/// One step of a sequential existential plan: evaluate `branch` with
/// the given inner predicate order.
#[derive(Debug, Clone, PartialEq)]
pub struct BranchStep {
    /// Branch index into [`ExistsQuery::branches`].
    pub branch: usize,
    /// Predicate order within the branch (early failure moves to the
    /// next branch).
    pub inner: Vec<usize>,
}

/// An existential plan: the dual of [`crate::plan::Plan`], with early
/// success instead of early failure at the leaves.
#[derive(Debug, Clone, PartialEq)]
pub enum ExistsPlan {
    /// Verdict known from ranges alone.
    Decided(bool),
    /// Probe branches in order; output true at the first branch whose
    /// conjunction holds, false if all fail.
    Seq(Vec<BranchStep>),
    /// Conditioning split `T(X_attr ≥ cut)`.
    Split {
        /// Attribute observed at this node.
        attr: AttrId,
        /// Low branch takes values `< cut`.
        cut: u16,
        /// Plan for `X_attr < cut`.
        lo: Box<ExistsPlan>,
        /// Plan for `X_attr ≥ cut`.
        hi: Box<ExistsPlan>,
    },
}

impl ExistsPlan {
    /// Number of conditioning splits.
    pub fn split_count(&self) -> usize {
        match self {
            ExistsPlan::Decided(_) | ExistsPlan::Seq(_) => 0,
            ExistsPlan::Split { lo, hi, .. } => 1 + lo.split_count() + hi.split_count(),
        }
    }
}

/// Executes an existential plan for one tuple, charging acquisition
/// costs once per attribute (shared attributes across branches are
/// cached exactly like within conjunctive plans).
pub fn execute_exists(
    plan: &ExistsPlan,
    query: &ExistsQuery,
    schema: &Schema,
    model: &CostModel,
    src: &mut impl TupleSource,
) -> crate::exec::ExecOutcome {
    let mut cache: Vec<Option<u16>> = vec![None; schema.len()];
    let mut mask = 0u64;
    let mut cost = 0.0;
    let mut acquired = Vec::new();
    let fetch = |attr: AttrId,
                 src: &mut dyn FnMut(AttrId) -> u16,
                 cache: &mut Vec<Option<u16>>,
                 mask: &mut u64,
                 cost: &mut f64,
                 acquired: &mut Vec<AttrId>| {
        if let Some(v) = cache[attr] {
            return v;
        }
        let v = src(attr);
        cache[attr] = Some(v);
        *cost += model.cost(schema, attr, *mask);
        *mask |= 1u64 << attr;
        acquired.push(attr);
        v
    };
    let mut read = |a: AttrId| src.acquire(a);
    let mut node = plan;
    loop {
        match node {
            ExistsPlan::Decided(b) => {
                return crate::exec::ExecOutcome { verdict: *b, cost, acquired };
            }
            ExistsPlan::Seq(steps) => {
                for step in steps {
                    let b = &query.branches[step.branch];
                    let mut branch_ok = true;
                    for &j in &step.inner {
                        let p = b.pred(j);
                        let v = fetch(
                            p.attr(),
                            &mut read,
                            &mut cache,
                            &mut mask,
                            &mut cost,
                            &mut acquired,
                        );
                        if !p.eval(v) {
                            branch_ok = false;
                            break;
                        }
                    }
                    if branch_ok {
                        return crate::exec::ExecOutcome { verdict: true, cost, acquired };
                    }
                }
                return crate::exec::ExecOutcome { verdict: false, cost, acquired };
            }
            ExistsPlan::Split { attr, cut, lo, hi } => {
                let v = fetch(*attr, &mut read, &mut cache, &mut mask, &mut cost, &mut acquired);
                node = if v < *cut { lo } else { hi };
            }
        }
    }
}

/// Runs an existential plan over every dataset row, validating verdicts.
pub fn measure_exists(
    plan: &ExistsPlan,
    query: &ExistsQuery,
    schema: &Schema,
    data: &Dataset,
) -> CostReport {
    let model = CostModel::PerAttribute;
    let mut total = 0.0;
    let mut max_cost: f64 = 0.0;
    let mut passes = 0usize;
    let mut all_correct = true;
    for row in 0..data.len() {
        let out = execute_exists(plan, query, schema, &model, &mut RowSource::new(data, row));
        total += out.cost;
        max_cost = max_cost.max(out.cost);
        passes += usize::from(out.verdict);
        all_correct &= out.verdict == query.eval_with(|a| data.value(row, a));
    }
    let d = data.len().max(1) as f64;
    CostReport {
        mean_cost: total / d,
        max_cost,
        pass_rate: passes as f64 / d,
        all_correct,
        tuples: data.len(),
    }
}

/// Plans existential queries from a historical dataset: greedy branch
/// ordering (the dual of `GreedySeq`) plus greedy conditioning splits.
#[derive(Debug, Clone)]
pub struct ExistsPlanner {
    max_splits: usize,
    grid_points: usize,
    min_support: usize,
}

impl ExistsPlanner {
    /// Planner with at most `max_splits` conditioning predicates.
    pub fn new(max_splits: usize) -> Self {
        ExistsPlanner { max_splits, grid_points: 8, min_support: 8 }
    }

    /// Candidate split points per attribute (§4.3).
    pub fn with_grid_points(mut self, r: usize) -> Self {
        self.grid_points = r;
        self
    }

    /// Builds the plan.
    pub fn plan(&self, schema: &Schema, query: &ExistsQuery, data: &Dataset) -> Result<ExistsPlan> {
        // Candidate grid: equal-width plus every branch predicate's
        // endpoints.
        let mut grid = SplitGrid::equal_width(schema, self.grid_points);
        for b in query.branches() {
            grid = merge_query_endpoints(grid, schema, b, self.grid_points);
        }
        let est = CountingEstimator::with_ranges(data, Ranges::root(schema));
        let root = est.root();
        self.plan_at(schema, query, &est, &grid, &root, self.max_splits)
    }

    #[allow(clippy::too_many_arguments)]
    fn plan_at(
        &self,
        schema: &Schema,
        query: &ExistsQuery,
        est: &CountingEstimator<'_>,
        grid: &SplitGrid,
        ctx: &<CountingEstimator<'_> as Estimator>::Ctx,
        splits_left: usize,
    ) -> Result<ExistsPlan> {
        let ranges = est.ranges(ctx).clone();
        if let Some(b) = truth_given(query, &ranges) {
            return Ok(ExistsPlan::Decided(b));
        }
        let (seq, seq_cost) = self.seq_plan(schema, query, est, ctx)?;
        if splits_left == 0 || est.support(ctx) < self.min_support {
            return Ok(seq);
        }

        // Greedy split: best (attr, cut) by expected cost with
        // sequential children (Eq. 6's dual).
        let mut best: Option<(AttrId, u16, f64)> = None;
        let mask = acquired_mask(schema, &ranges);
        let model = CostModel::PerAttribute;
        for attr in 0..schema.len() {
            let r = ranges.get(attr);
            if r.is_point() {
                continue;
            }
            let c0 = model.cost(schema, attr, mask);
            if best.as_ref().is_some_and(|b| c0 >= b.2) {
                continue;
            }
            for cut in grid.cuts_in(attr, r) {
                let p_lo = est.prob_below(ctx, attr, cut).clamp(0.0, 1.0);
                let lo_ctx = est.refine(ctx, attr, Range::new(r.lo(), cut - 1));
                let hi_ctx = est.refine(ctx, attr, Range::new(cut, r.hi()));
                let mut c = c0;
                if p_lo > 0.0 {
                    let (_, lc) = self.seq_plan(schema, query, est, &lo_ctx)?;
                    c += p_lo * lc;
                }
                if best.as_ref().is_some_and(|b| c >= b.2) {
                    continue;
                }
                if p_lo < 1.0 {
                    let (_, hc) = self.seq_plan(schema, query, est, &hi_ctx)?;
                    c += (1.0 - p_lo) * hc;
                }
                if best.as_ref().is_none_or(|b| c < b.2) {
                    best = Some((attr, cut, c));
                }
            }
        }

        match best {
            Some((attr, cut, c)) if c + 1e-9 < seq_cost => {
                let r = ranges.get(attr);
                let lo_ctx = est.refine(ctx, attr, Range::new(r.lo(), cut - 1));
                let hi_ctx = est.refine(ctx, attr, Range::new(cut, r.hi()));
                // Split the remaining budget between the children.
                let child_budget = (splits_left - 1) / 2;
                let lo = self.plan_at(
                    schema,
                    query,
                    est,
                    grid,
                    &lo_ctx,
                    child_budget + (splits_left - 1) % 2,
                )?;
                let hi = self.plan_at(schema, query, est, grid, &hi_ctx, child_budget)?;
                Ok(ExistsPlan::Split { attr, cut, lo: Box::new(lo), hi: Box::new(hi) })
            }
            _ => Ok(seq),
        }
    }

    /// The sequential existential plan for one subproblem, with its
    /// expected cost: greedy branch ordering over the branch-failure
    /// joint distribution, inner orders via the conjunctive machinery.
    fn seq_plan(
        &self,
        schema: &Schema,
        query: &ExistsQuery,
        est: &CountingEstimator<'_>,
        ctx: &<CountingEstimator<'_> as Estimator>::Ctx,
    ) -> Result<(ExistsPlan, f64)> {
        let ranges = est.ranges(ctx).clone();
        if let Some(b) = truth_given(query, &ranges) {
            return Ok((ExistsPlan::Decided(b), 0.0));
        }
        let initial = acquired_mask(schema, &ranges);
        let model = CostModel::PerAttribute;
        let seq = crate::planner::SeqPlanner::auto();

        // Per-branch: inner order + expected decide-cost + truth table.
        // Branches already disproven by the ranges are dropped: their
        // remaining predicates could otherwise spuriously pass.
        let nb = query.len();
        let mut steps = Vec::with_capacity(nb);
        let mut branch_cost = Vec::with_capacity(nb);
        let mut alive = Vec::with_capacity(nb);
        for (i, b) in query.branches().iter().enumerate() {
            match b.truth_given(&ranges) {
                Some(false) => {
                    steps.push(Vec::new());
                    branch_cost.push(0.0);
                }
                Some(true) => unreachable!("handled by truth_given above"),
                None => {
                    let table = est.truth_table(ctx, b);
                    let (inner, cost) = seq.order_for(schema, b, &ranges, &table)?;
                    steps.push(inner);
                    branch_cost.push(cost);
                    alive.push(i);
                }
            }
        }

        // Branch-failure joint over the context's rows.
        let data = est.dataset();
        let fail_table = TruthTable::from_masks(
            nb,
            ctx_rows(ctx).iter().map(|&row| {
                let mut m = 0u64;
                for (i, b) in query.branches().iter().enumerate() {
                    if !b.eval_with(|a| data.value(row as usize, a)) {
                        m |= 1 << i;
                    }
                }
                m
            }),
        );

        // Greedy over branches: minimize cost / P(success | prior fails),
        // i.e. Munagala on the failure indicators.
        let mut remaining: Vec<usize> = alive;
        let mut order = Vec::with_capacity(nb);
        let mut failed_set = 0u64;
        while !remaining.is_empty() {
            let mut pick = 0usize;
            let mut pick_rank = f64::INFINITY;
            for (idx, &i) in remaining.iter().enumerate() {
                // P(branch i fails | earlier all failed).
                let p_fail = fail_table.cond_prob(i, failed_set);
                let p_succ = 1.0 - p_fail;
                let rank = if p_succ <= 0.0 { f64::INFINITY } else { branch_cost[i] / p_succ };
                if idx == 0 || rank < pick_rank {
                    pick = idx;
                    pick_rank = rank;
                }
            }
            let i = remaining.swap_remove(pick);
            failed_set |= 1 << i;
            order.push(i);
        }

        // Expected cost: Σ cost_i · P(all earlier branches failed).
        let mut cost = 0.0;
        let mut prefix = 0u64;
        for &i in &order {
            cost += branch_cost[i] * fail_table.prob_all(prefix);
            prefix |= 1 << i;
        }
        let _ = (initial, model);

        let plan = ExistsPlan::Seq(
            order.into_iter().map(|i| BranchStep { branch: i, inner: steps[i].clone() }).collect(),
        );
        Ok((plan, cost))
    }
}

/// Truth of the existential query from ranges alone.
fn truth_given(query: &ExistsQuery, ranges: &Ranges) -> Option<bool> {
    let mut all_false = true;
    for b in query.branches() {
        match b.truth_given(ranges) {
            Some(true) => return Some(true),
            Some(false) => {}
            None => all_false = false,
        }
    }
    if all_false {
        Some(false)
    } else {
        None
    }
}

fn ctx_rows(ctx: &crate::prob::CountingCtx) -> &[u32] {
    ctx.rows()
}

fn merge_query_endpoints(grid: SplitGrid, schema: &Schema, query: &Query, r: usize) -> SplitGrid {
    // SplitGrid::for_query builds equal-width + endpoints from scratch;
    // simply rebuild per branch and rely on idempotent dedup by taking
    // the union through for_query repeatedly.
    let _ = grid;
    SplitGrid::for_query(schema, query, r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Attribute;
    use crate::query::Pred;

    /// Three "motes", each with one expensive sensor, plus a cheap clock
    /// that determines which mote runs hot.
    fn setup() -> (Schema, Dataset, ExistsQuery) {
        let schema = Schema::new(vec![
            Attribute::new("s0", 4, 100.0),
            Attribute::new("s1", 4, 100.0),
            Attribute::new("s2", 4, 100.0),
            Attribute::new("hour", 3, 1.0),
        ])
        .unwrap();
        // hour h => sensor h is high (value 3) 90% of the time, others
        // low.
        let mut rows = Vec::new();
        for i in 0..600u32 {
            let h = (i % 3) as u16;
            let mut row = vec![0u16, 0, 0, h];
            for s in 0..3u16 {
                let hot = s == h && i % 10 != 0;
                let cold_hot = s != h && i % 25 == 0;
                row[usize::from(s)] = if hot || cold_hot { 3 } else { (i % 3) as u16 };
            }
            rows.push(row);
        }
        let data = Dataset::from_rows(&schema, rows).unwrap();
        let branches = (0..3).map(|s| Query::new(vec![Pred::in_range(s, 3, 3)]).unwrap()).collect();
        (schema.clone(), data, ExistsQuery::new(branches).unwrap())
    }

    #[test]
    fn validation() {
        assert!(matches!(ExistsQuery::new(vec![]), Err(Error::EmptyQuery)));
        let (schema, _, _) = setup();
        let bad =
            ExistsQuery::checked(vec![Query::new(vec![Pred::in_range(9, 0, 1)]).unwrap()], &schema);
        assert!(bad.is_err());
    }

    #[test]
    fn eval_is_disjunction() {
        let (_, data, q) = setup();
        for row in 0..20 {
            let direct = (0..3).any(|s| data.value(row, s) == 3);
            assert_eq!(q.eval_with(|a| data.value(row, a)), direct);
        }
    }

    #[test]
    fn sequential_exists_plan_is_exact() {
        let (schema, data, q) = setup();
        let plan = ExistsPlanner::new(0).plan(&schema, &q, &data).unwrap();
        assert_eq!(plan.split_count(), 0);
        let rep = measure_exists(&plan, &q, &schema, &data);
        assert!(rep.all_correct);
    }

    #[test]
    fn conditional_exists_plan_probes_the_likely_sensor_first() {
        let (schema, data, q) = setup();
        let seq = ExistsPlanner::new(0).plan(&schema, &q, &data).unwrap();
        let cond = ExistsPlanner::new(4).plan(&schema, &q, &data).unwrap();
        assert!(cond.split_count() >= 1, "should condition on the clock");
        let rs = measure_exists(&seq, &q, &schema, &data);
        let rc = measure_exists(&cond, &q, &schema, &data);
        assert!(rs.all_correct && rc.all_correct);
        assert!(
            rc.mean_cost < rs.mean_cost * 0.8,
            "conditional {} should clearly beat sequential {}",
            rc.mean_cost,
            rs.mean_cost
        );
        // The hour costs 1 and usually identifies the hot sensor: mean
        // cost should be near one expensive probe.
        assert!(rc.mean_cost < 160.0, "got {}", rc.mean_cost);
    }

    #[test]
    fn shared_attributes_are_cached_across_branches() {
        // Two branches over the SAME attribute: the second branch must
        // not pay again.
        let schema = Schema::new(vec![Attribute::new("x", 8, 10.0)]).unwrap();
        let data = Dataset::from_rows(&schema, vec![vec![1], vec![6]]).unwrap();
        let q = ExistsQuery::new(vec![
            Query::new(vec![Pred::in_range(0, 0, 2)]).unwrap(),
            Query::new(vec![Pred::in_range(0, 5, 7)]).unwrap(),
        ])
        .unwrap();
        let plan = ExistsPlan::Seq(vec![
            BranchStep { branch: 0, inner: vec![0] },
            BranchStep { branch: 1, inner: vec![0] },
        ]);
        let rep = measure_exists(&plan, &q, &schema, &data);
        assert!(rep.all_correct);
        assert_eq!(rep.mean_cost, 10.0, "x acquired once per tuple");
        assert_eq!(rep.pass_rate, 1.0);
    }

    #[test]
    fn decided_by_ranges() {
        let (schema, data, _) = setup();
        // A branch whose predicate spans the whole domain is proven true.
        let q = ExistsQuery::new(vec![Query::new(vec![Pred::in_range(0, 0, 3)]).unwrap()]).unwrap();
        let plan = ExistsPlanner::new(2).plan(&schema, &q, &data).unwrap();
        assert_eq!(plan, ExistsPlan::Decided(true));
    }
}
