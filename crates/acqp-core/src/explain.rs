//! Plan introspection — an `EXPLAIN ANALYZE` for conditional plans.
//!
//! [`explain`] walks a plan under an estimator and annotates every node
//! with the probability a tuple reaches it, the expected cost charged
//! there, and (for sequential leaves) each predicate's conditional pass
//! probability. The renderer prints the annotated tree; totals equal
//! the Eq. (3) expected cost exactly, which the tests pin down.

use crate::attr::Schema;
use crate::costmodel::{acquired_mask, CostModel};
use crate::plan::Plan;
use crate::prob::Estimator;
use crate::query::Query;
use crate::range::Range;

/// One annotated node of an explained plan.
#[derive(Debug, Clone, PartialEq)]
pub enum ExplainNode {
    /// A decided leaf.
    Decided {
        /// Verdict at this leaf.
        verdict: bool,
        /// Probability of reaching the leaf.
        reach: f64,
    },
    /// A sequential leaf.
    Seq {
        /// Probability of reaching the leaf.
        reach: f64,
        /// Expected cost charged at the leaf, *given* it is reached.
        cost_here: f64,
        /// Per step: predicate index, effective acquisition cost and the
        /// conditional probability the predicate passes.
        steps: Vec<SeqStepInfo>,
    },
    /// A conditioning split.
    Split {
        /// Attribute observed.
        attr: usize,
        /// Cut point.
        cut: u16,
        /// Probability of reaching the node.
        reach: f64,
        /// Acquisition cost charged here, given the node is reached.
        cost_here: f64,
        /// `P(X_attr < cut | reached)`.
        p_lo: f64,
        /// Low child.
        lo: Box<ExplainNode>,
        /// High child.
        hi: Box<ExplainNode>,
    },
}

/// Expected evaluation of one sequential-leaf step.
#[derive(Debug, Clone, PartialEq)]
pub struct SeqStepInfo {
    /// Predicate index into the query.
    pub pred: usize,
    /// Effective acquisition cost when the step runs.
    pub cost: f64,
    /// Probability the step runs (given the leaf is reached).
    pub p_run: f64,
    /// Conditional probability the predicate passes, given it runs.
    pub p_pass: f64,
}

impl ExplainNode {
    /// Total expected cost of the explained plan (reach-weighted).
    pub fn total_cost(&self) -> f64 {
        match self {
            ExplainNode::Decided { .. } => 0.0,
            ExplainNode::Seq { reach, cost_here, .. } => reach * cost_here,
            ExplainNode::Split { reach, cost_here, lo, hi, .. } => {
                reach * cost_here + lo.total_cost() + hi.total_cost()
            }
        }
    }

    /// Renders the annotated tree.
    pub fn render(&self, schema: &Schema, query: &Query) -> String {
        let mut out = String::new();
        self.render_into(schema, query, 0, &mut out);
        out
    }

    fn render_into(&self, schema: &Schema, query: &Query, indent: usize, out: &mut String) {
        use std::fmt::Write;
        let pad = "  ".repeat(indent);
        match self {
            ExplainNode::Decided { verdict, reach } => {
                let _ = writeln!(
                    out,
                    "{pad}=> {} [reach {:.1}%]",
                    if *verdict { "OUTPUT" } else { "REJECT" },
                    reach * 100.0
                );
            }
            ExplainNode::Seq { reach, cost_here, steps } => {
                let _ = writeln!(
                    out,
                    "{pad}=> sequential [reach {:.1}%, E[cost|here] {:.1}]",
                    reach * 100.0,
                    cost_here
                );
                for s in steps {
                    let p = query.pred(s.pred);
                    let _ = writeln!(
                        out,
                        "{pad}   - {} (cost {:.1}) runs {:.1}%, passes {:.1}%",
                        schema.attr(p.attr()).name(),
                        s.cost,
                        (s.p_run * 100.0).max(0.0),
                        (s.p_pass * 100.0).max(0.0)
                    );
                }
            }
            ExplainNode::Split { attr, cut, reach, cost_here, p_lo, lo, hi } => {
                let name = schema.attr(*attr).name();
                let _ = writeln!(
                    out,
                    "{pad}observe {name} [reach {:.1}%, cost {:.1}]: {name} < {cut} w.p. {:.1}%",
                    reach * 100.0,
                    cost_here,
                    p_lo * 100.0
                );
                lo.render_into(schema, query, indent + 1, out);
                hi.render_into(schema, query, indent + 1, out);
            }
        }
    }
}

/// Annotates `plan` with reach probabilities and expected costs under
/// `est` (Eq. (3)'s recursion, kept per node).
pub fn explain<E: Estimator>(
    plan: &Plan,
    query: &Query,
    schema: &Schema,
    model: &CostModel,
    est: &E,
) -> ExplainNode {
    explain_at(plan, query, schema, model, est, &est.root(), 1.0)
}

fn explain_at<E: Estimator>(
    plan: &Plan,
    query: &Query,
    schema: &Schema,
    model: &CostModel,
    est: &E,
    ctx: &E::Ctx,
    reach: f64,
) -> ExplainNode {
    match plan {
        Plan::Decided(b) => ExplainNode::Decided { verdict: *b, reach },
        Plan::Seq(seq) => {
            let ranges = est.ranges(ctx);
            let mut acquired = acquired_mask(schema, ranges);
            let table = est.truth_table(ctx, query);
            let mut steps = Vec::with_capacity(seq.order.len());
            let mut cost_here = 0.0;
            let mut prefix = 0u64;
            let mut p_run = 1.0;
            for &j in &seq.order {
                let attr = query.pred(j).attr();
                let cost = model.cost(schema, attr, acquired);
                let p_pass = table.cond_prob(j, prefix);
                steps.push(SeqStepInfo { pred: j, cost, p_run, p_pass });
                cost_here += cost * p_run;
                acquired |= 1 << attr;
                prefix |= 1 << j;
                p_run *= p_pass;
            }
            ExplainNode::Seq { reach, cost_here, steps }
        }
        Plan::Split { attr, cut, lo, hi } => {
            let ranges = est.ranges(ctx);
            let r = ranges.get(*attr);
            let cost_here = model.cost(schema, *attr, acquired_mask(schema, ranges));
            // Out-of-range cuts (hand-built plans) route one way.
            let p_lo = if *cut <= r.lo() {
                0.0
            } else if *cut > r.hi() {
                1.0
            } else {
                est.prob_below(ctx, *attr, *cut).clamp(0.0, 1.0)
            };
            let lo_node = if p_lo > 0.0 && *cut > r.lo() {
                let child = est.refine(ctx, *attr, Range::new(r.lo(), cut - 1));
                explain_at(lo, query, schema, model, est, &child, reach * p_lo)
            } else {
                zero_reach(lo)
            };
            let hi_node = if p_lo < 1.0 && *cut <= r.hi() {
                let child = est.refine(ctx, *attr, Range::new(*cut, r.hi()));
                explain_at(hi, query, schema, model, est, &child, reach * (1.0 - p_lo))
            } else {
                zero_reach(hi)
            };
            ExplainNode::Split {
                attr: *attr,
                cut: *cut,
                reach,
                cost_here,
                p_lo,
                lo: Box::new(lo_node),
                hi: Box::new(hi_node),
            }
        }
    }
}

/// Structure-preserving zero-probability annotation for unreachable
/// subtrees.
fn zero_reach(plan: &Plan) -> ExplainNode {
    match plan {
        Plan::Decided(b) => ExplainNode::Decided { verdict: *b, reach: 0.0 },
        Plan::Seq(_) => ExplainNode::Seq { reach: 0.0, cost_here: 0.0, steps: Vec::new() },
        Plan::Split { attr, cut, lo, hi } => ExplainNode::Split {
            attr: *attr,
            cut: *cut,
            reach: 0.0,
            cost_here: 0.0,
            p_lo: 0.0,
            lo: Box::new(zero_reach(lo)),
            hi: Box::new(zero_reach(hi)),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Attribute;
    use crate::cost::expected_cost;
    use crate::dataset::Dataset;
    use crate::planner::GreedyPlanner;
    use crate::prob::CountingEstimator;
    use crate::query::Pred;
    use crate::range::Ranges;

    fn setup() -> (Schema, Dataset, Query) {
        let schema = Schema::new(vec![
            Attribute::new("a", 4, 10.0),
            Attribute::new("b", 4, 4.0),
            Attribute::new("t", 4, 0.5),
        ])
        .unwrap();
        let rows: Vec<Vec<u16>> =
            (0..128u16).map(|i| vec![(i / 2) % 4, (i / 8) % 4, (i / 32) % 4]).collect();
        let data = Dataset::from_rows(&schema, rows).unwrap();
        let query = Query::new(vec![Pred::in_range(0, 1, 2), Pred::in_range(1, 0, 1)]).unwrap();
        (schema, data, query)
    }

    #[test]
    fn totals_match_expected_cost() {
        let (schema, data, query) = setup();
        let est = CountingEstimator::with_ranges(&data, Ranges::root(&schema));
        let plan = GreedyPlanner::new(4).plan(&schema, &query, &est).unwrap();
        let ex = explain(&plan, &query, &schema, &CostModel::PerAttribute, &est);
        let want = expected_cost(&plan, &query, &schema, &est);
        assert!(
            (ex.total_cost() - want).abs() < 1e-9,
            "explain total {} vs Eq.(3) {}",
            ex.total_cost(),
            want
        );
    }

    #[test]
    fn reach_probabilities_sum_to_one_at_leaves() {
        let (schema, data, query) = setup();
        let est = CountingEstimator::with_ranges(&data, Ranges::root(&schema));
        let plan = GreedyPlanner::new(4).plan(&schema, &query, &est).unwrap();
        let ex = explain(&plan, &query, &schema, &CostModel::PerAttribute, &est);
        fn leaf_reach(n: &ExplainNode) -> f64 {
            match n {
                ExplainNode::Decided { reach, .. } | ExplainNode::Seq { reach, .. } => *reach,
                ExplainNode::Split { lo, hi, .. } => leaf_reach(lo) + leaf_reach(hi),
            }
        }
        assert!((leaf_reach(&ex) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn render_mentions_names_and_percentages() {
        let (schema, data, query) = setup();
        let est = CountingEstimator::with_ranges(&data, Ranges::root(&schema));
        let plan = GreedyPlanner::new(2).plan(&schema, &query, &est).unwrap();
        let ex = explain(&plan, &query, &schema, &CostModel::PerAttribute, &est);
        let text = ex.render(&schema, &query);
        assert!(text.contains('%'), "{text}");
        assert!(text.contains("reach"), "{text}");
    }

    /// Full-text snapshot of the renderer on a hand-built plan: one split
    /// on the cheap clock attribute with a sequential leaf per branch.
    /// Pins wording, indentation and number formatting — `acqp plan
    /// --explain` output is user-facing and should not drift silently.
    #[test]
    fn render_snapshot() {
        let (schema, data, query) = setup();
        let est = CountingEstimator::with_ranges(&data, Ranges::root(&schema));
        let plan = Plan::split(
            2,
            2,
            Plan::Seq(crate::plan::SeqOrder::new(vec![1, 0])),
            Plan::Seq(crate::plan::SeqOrder::new(vec![0, 1])),
        );
        let ex = explain(&plan, &query, &schema, &CostModel::PerAttribute, &est);
        let text = ex.render(&schema, &query);
        let want = "\
observe t [reach 100.0%, cost 0.5]: t < 2 w.p. 50.0%
  => sequential [reach 50.0%, E[cost|here] 9.0]
     - b (cost 4.0) runs 100.0%, passes 50.0%
     - a (cost 10.0) runs 50.0%, passes 50.0%
  => sequential [reach 50.0%, E[cost|here] 12.0]
     - a (cost 10.0) runs 100.0%, passes 50.0%
     - b (cost 4.0) runs 50.0%, passes 50.0%
";
        assert_eq!(text, want);
    }

    #[test]
    fn seq_step_probabilities_are_conditional() {
        let (schema, data, query) = setup();
        let est = CountingEstimator::with_ranges(&data, Ranges::root(&schema));
        let plan = crate::plan::Plan::Seq(crate::plan::SeqOrder::new(vec![0, 1]));
        let ex = explain(&plan, &query, &schema, &CostModel::PerAttribute, &est);
        let ExplainNode::Seq { steps, .. } = &ex else { panic!() };
        assert_eq!(steps.len(), 2);
        assert_eq!(steps[0].p_run, 1.0);
        // Second step runs exactly when the first passes.
        assert!((steps[1].p_run - steps[0].p_pass).abs() < 1e-12);
    }
}
