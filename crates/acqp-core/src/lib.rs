//! # acqp-core — conditional plans for acquisitional query processing
//!
//! This crate implements the algorithms of *"Exploiting Correlated
//! Attributes in Acquisitional Query Processing"* (Deshpande, Guestrin,
//! Hong, Madden — ICDE 2005).
//!
//! In acquisitional systems — sensor networks, wide-area sources — reading
//! one attribute of one tuple carries a high cost (energy, latency). For a
//! multi-predicate range query, the order in which predicates are
//! evaluated therefore matters enormously, and because attributes are
//! *correlated*, the best order differs from tuple to tuple. The paper's
//! contribution, reproduced here, is the **conditional plan**: a binary
//! decision tree that observes cheap attributes and branches into
//! different predicate orderings depending on what it sees.
//!
//! ## Layout
//!
//! * [`attr`] — attributes, acquisition costs, schemas.
//! * [`range`] — discretized value ranges and range vectors (the
//!   *subproblems* of the paper's dynamic program).
//! * [`dataset`] — column-major historical data plus discretization.
//! * [`query`] — unary range predicates and conjunctive queries.
//! * [`plan`] — the conditional-plan tree, its compact wire format
//!   (`ζ(P)` of §2.4) and pretty-printer.
//! * [`exec`] — the per-tuple plan interpreter implementing the traversal
//!   cost of Eq. (1).
//! * [`cost`] — measured expected cost over a dataset (Eq. 4).
//! * [`drift`] — estimated-vs-actual selectivity monitoring on top of
//!   exec metering, the trigger for re-planning deployed plans.
//! * [`prob`] — probability estimation from historical data (§5).
//! * [`planner`] — `Naive`, `OptSeq`, `GreedySeq` (§4.1), the exhaustive
//!   dynamic program (Fig. 5), and the greedy conditional planner
//!   (Figs. 6–7), plus split-point selection (§4.3).
//!
//! ## Quick start
//!
//! ```
//! use acqp_core::prelude::*;
//!
//! // Two expensive sensors and one free clock, 4-valued domains.
//! let schema = Schema::new(vec![
//!     Attribute::new("temp", 4, 100.0),
//!     Attribute::new("light", 4, 100.0),
//!     Attribute::new("hour", 4, 1.0),
//! ]).unwrap();
//!
//! // Historical data where temp/light are perfectly predicted by hour.
//! let mut rows = Vec::new();
//! for hour in 0..4u16 {
//!     for _ in 0..8 {
//!         let temp = if hour >= 2 { 3 } else { 0 };
//!         let light = if hour >= 2 { 3 } else { 0 };
//!         rows.push(vec![temp, light, hour]);
//!     }
//! }
//! let data = Dataset::from_rows(&schema, rows).unwrap();
//!
//! // SELECT * WHERE temp >= 2 AND light <= 1
//! let query = Query::new(vec![
//!     Pred::in_range(0, 2, 3),
//!     Pred::in_range(1, 0, 1),
//! ]).unwrap();
//!
//! let est = CountingEstimator::new(&data);
//! let plan = GreedyPlanner::new(8).plan(&schema, &query, &est).unwrap();
//! let report = measure(&plan, &query, &schema, &data);
//! assert!(report.all_correct);
//! // The conditional plan reads the free clock and rejects every tuple
//! // after acquiring at most one expensive sensor.
//! assert!(report.mean_cost <= 101.0);
//! ```

#![warn(missing_docs)]
// Determinism tests assert bitwise-equal floats on purpose; the
// workspace-level `float_cmp` warning stays on for library code.
#![cfg_attr(test, allow(clippy::float_cmp))]
pub mod attr;
pub mod batch;
pub mod cost;
pub mod costmodel;
pub mod dataset;
pub mod drift;
pub mod error;
pub mod exec;
pub mod exists;
pub mod explain;
pub mod plan;
pub mod planner;
pub mod prob;
pub mod query;
pub mod range;
pub mod regret;
pub mod sync;

/// Convenient glob-import of the public API.
pub mod prelude {
    pub use crate::attr::{AttrId, Attribute, Schema};
    pub use crate::batch::{
        truth_columnar, BatchExecutor, BatchMetrics, BatchOutcome, ColumnBatch, FlatPlan,
        PreparedPlan, BATCH_ROWS,
    };
    pub use crate::cost::{
        expected_cost, expected_cost_model, measure, measure_metered, measure_metered_mode,
        measure_mode, measure_model, measure_rows, CostReport,
    };
    pub use crate::costmodel::{acquired_mask, CostModel};
    pub use crate::dataset::{Dataset, Discretizer};
    pub use crate::drift::{estimated_selectivities, DriftConfig, DriftMonitor, DriftMonitorState};
    pub use crate::error::{Error, Result};
    pub use crate::exec::{
        eval_seq_leaf, execute, execute_metered, execute_model, ExecMetrics, ExecMode, ExecOutcome,
        QueryStatus, RowSource, SharedScratch, SharedSource, TupleSource, TupleState,
    };
    pub use crate::exists::{
        execute_exists, measure_exists, BranchStep, ExistsPlan, ExistsPlanner, ExistsQuery,
    };
    pub use crate::explain::{explain, ExplainNode, SeqStepInfo};
    pub use crate::plan::{Plan, SeqOrder};
    pub use crate::planner::{
        enumerate_plans, full_tree_count, DegradationLevel, EnumeratedPlans, ExhaustivePlanner,
        FallbackPlanner, GreedyPlanner, NaivePlanner, OrdF64, PlanReport, SeqAlgorithm, SeqPlanner,
        SplitGrid,
    };
    pub use crate::prob::{
        CountingEstimator, Estimator, IndependenceEstimator, TruthAccum, TruthTable,
    };
    pub use crate::query::{Pred, Query};
    pub use crate::range::{Range, Ranges};
    pub use crate::regret::{regret_report, NodeCostRow, PredRegret, RegretReport};
    pub use crate::sync::NoPoisonMutex;
}

pub use prelude::*;
