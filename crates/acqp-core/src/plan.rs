//! Conditional plan trees, their size `ζ(P)` and wire format.
//!
//! A conditional plan (§2.1) is a binary decision tree. Interior nodes
//! carry a *conditioning predicate* `T(X_i ≥ x)` that splits into a
//! low branch (`X_i < x`) and a high branch (`X_i ≥ x`). Leaves either
//! carry a decided verdict, or a residual *sequential plan*: an order in
//! which to evaluate the still-undecided query predicates, stopping at
//! the first failure.
//!
//! The compact wire encoding defined here is what the basestation ships
//! to the motes (§2.5); its byte length is the plan size `ζ(P)` in the
//! communication-aware objective of §2.4.

use crate::attr::{AttrId, Schema};
use crate::error::{Error, Result};
use crate::query::Query;

/// A residual sequential plan: indices of query predicates, evaluated in
/// order with early termination on the first failed predicate.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct SeqOrder {
    /// Predicate indices (into [`Query::preds`]) in evaluation order.
    pub order: Vec<usize>,
}

impl SeqOrder {
    /// Creates a sequential order from predicate indices.
    pub fn new(order: Vec<usize>) -> Self {
        SeqOrder { order }
    }
}

/// A conditional query plan.
///
/// ```
/// use acqp_core::{Plan, SeqOrder};
///
/// // "Observe attribute 2; below 12 evaluate predicate 1 then 0,
/// //  otherwise reject."
/// let plan = Plan::split(2, 12, Plan::Seq(SeqOrder::new(vec![1, 0])), Plan::fail());
/// assert_eq!(plan.split_count(), 1);
/// // The wire encoding is what a basestation ships to the motes.
/// let bytes = plan.encode();
/// assert_eq!(Plan::decode(&bytes).unwrap(), plan);
/// assert_eq!(bytes.len(), plan.wire_size());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// The verdict is already known: output or reject the tuple.
    Decided(bool),
    /// Evaluate the remaining predicates sequentially.
    Seq(SeqOrder),
    /// Conditioning split `T(X_attr ≥ cut)`: execute `lo` when the
    /// observed value is `< cut`, `hi` otherwise.
    Split {
        /// Attribute acquired / inspected at this node.
        attr: AttrId,
        /// Split point: low branch is `[.., cut-1]`, high is `[cut, ..]`.
        cut: u16,
        /// Plan for `X_attr < cut`.
        lo: Box<Plan>,
        /// Plan for `X_attr ≥ cut`.
        hi: Box<Plan>,
    },
}

impl Plan {
    /// A leaf accepting the tuple.
    pub fn pass() -> Plan {
        Plan::Decided(true)
    }

    /// A leaf rejecting the tuple.
    pub fn fail() -> Plan {
        Plan::Decided(false)
    }

    /// Builds a split node.
    pub fn split(attr: AttrId, cut: u16, lo: Plan, hi: Plan) -> Plan {
        Plan::Split { attr, cut, lo: Box::new(lo), hi: Box::new(hi) }
    }

    /// Total number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        match self {
            Plan::Decided(_) | Plan::Seq(_) => 1,
            Plan::Split { lo, hi, .. } => 1 + lo.node_count() + hi.node_count(),
        }
    }

    /// Number of conditioning splits (interior nodes); the paper's
    /// `Heuristic-k` bounds this by `k`.
    pub fn split_count(&self) -> usize {
        match self {
            Plan::Decided(_) | Plan::Seq(_) => 0,
            Plan::Split { lo, hi, .. } => 1 + lo.split_count() + hi.split_count(),
        }
    }

    /// Height of the tree (a lone leaf has depth 1).
    pub fn depth(&self) -> usize {
        match self {
            Plan::Decided(_) | Plan::Seq(_) => 1,
            Plan::Split { lo, hi, .. } => 1 + lo.depth().max(hi.depth()),
        }
    }

    /// Plan size `ζ(P)` in bytes: the length of the wire encoding
    /// shipped to query-processing nodes (§2.4).
    pub fn wire_size(&self) -> usize {
        self.encode().len()
    }

    /// Structurally simplifies the plan: any split whose two subtrees
    /// are identical is replaced by that subtree (the observation cannot
    /// change what happens next; deferring — or dropping — the
    /// acquisition never increases cost, because attributes are charged
    /// on first use and board power-ups depend only on the acquired
    /// *set*). Verdicts are preserved exactly; wire size and expected
    /// cost can only shrink.
    pub fn simplify(&self) -> Plan {
        match self {
            Plan::Decided(_) | Plan::Seq(_) => self.clone(),
            Plan::Split { attr, cut, lo, hi } => {
                let lo = lo.simplify();
                let hi = hi.simplify();
                if lo == hi {
                    lo
                } else {
                    Plan::split(*attr, *cut, lo, hi)
                }
            }
        }
    }

    /// Iterates over all leaves.
    pub fn for_each_leaf(&self, f: &mut impl FnMut(&Plan)) {
        match self {
            Plan::Split { lo, hi, .. } => {
                lo.for_each_leaf(f);
                hi.for_each_leaf(f);
            }
            leaf => f(leaf),
        }
    }

    // ---- wire format ------------------------------------------------

    /// Encodes into the compact byte format executed by the sensornet
    /// interpreter.
    ///
    /// Grammar (little-endian):
    /// `0x00` = reject, `0x01` = accept,
    /// `0x02 len:u8 (pred:u8)*` = sequential leaf,
    /// `0x03 attr:u8 cut:u16 <lo> <hi>` = split.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Plan::Decided(false) => out.push(0x00),
            Plan::Decided(true) => out.push(0x01),
            Plan::Seq(s) => {
                debug_assert!(s.order.len() <= u8::MAX as usize);
                out.push(0x02);
                out.push(s.order.len() as u8);
                out.extend(s.order.iter().map(|&p| p as u8));
            }
            Plan::Split { attr, cut, lo, hi } => {
                debug_assert!(*attr <= u8::MAX as usize);
                out.push(0x03);
                out.push(*attr as u8);
                out.extend_from_slice(&cut.to_le_bytes());
                lo.encode_into(out);
                hi.encode_into(out);
            }
        }
    }

    /// Decodes a plan from its wire encoding, consuming the whole buffer.
    pub fn decode(bytes: &[u8]) -> Result<Plan> {
        let mut pos = 0usize;
        let plan = Self::decode_at(bytes, &mut pos)?;
        if pos != bytes.len() {
            return Err(Error::BadWireFormat { offset: pos, what: "trailing bytes" });
        }
        Ok(plan)
    }

    fn decode_at(bytes: &[u8], pos: &mut usize) -> Result<Plan> {
        let tag =
            *bytes.get(*pos).ok_or(Error::BadWireFormat { offset: *pos, what: "truncated" })?;
        *pos += 1;
        match tag {
            0x00 => Ok(Plan::Decided(false)),
            0x01 => Ok(Plan::Decided(true)),
            0x02 => {
                let len = *bytes
                    .get(*pos)
                    .ok_or(Error::BadWireFormat { offset: *pos, what: "truncated seq len" })?
                    as usize;
                *pos += 1;
                let end = *pos + len;
                let body = bytes
                    .get(*pos..end)
                    .ok_or(Error::BadWireFormat { offset: *pos, what: "truncated seq body" })?;
                *pos = end;
                Ok(Plan::Seq(SeqOrder::new(body.iter().map(|&b| b as usize).collect())))
            }
            0x03 => {
                let Some(&[a, c0, c1]) = bytes.get(*pos..*pos + 3) else {
                    return Err(Error::BadWireFormat { offset: *pos, what: "truncated split" });
                };
                let attr = a as usize;
                let cut = u16::from_le_bytes([c0, c1]);
                *pos += 3;
                let lo = Self::decode_at(bytes, pos)?;
                let hi = Self::decode_at(bytes, pos)?;
                Ok(Plan::split(attr, cut, lo, hi))
            }
            _ => Err(Error::BadWireFormat { offset: *pos - 1, what: "unknown tag" }),
        }
    }

    // ---- pretty printing ---------------------------------------------

    /// Renders the plan as an indented tree using attribute names, in the
    /// style of the paper's Fig. 9.
    pub fn pretty(&self, schema: &Schema, query: &Query) -> String {
        let mut out = String::new();
        self.pretty_into(schema, query, 0, &mut out);
        out
    }

    fn pretty_into(&self, schema: &Schema, query: &Query, indent: usize, out: &mut String) {
        use std::fmt::Write;
        let pad = "  ".repeat(indent);
        match self {
            Plan::Decided(b) => {
                let _ = writeln!(out, "{pad}=> {}", if *b { "OUTPUT" } else { "REJECT" });
            }
            Plan::Seq(s) => {
                if s.order.is_empty() {
                    let _ = writeln!(out, "{pad}=> OUTPUT (all predicates proven)");
                } else {
                    let descr: Vec<String> = s
                        .order
                        .iter()
                        .map(|&j| {
                            let p = query.pred(j);
                            let (lo, hi) = p.bounds();
                            let name = schema.attr(p.attr()).name();
                            if p.is_negated() {
                                format!("NOT({lo} <= {name} <= {hi})")
                            } else {
                                format!("{lo} <= {name} <= {hi}")
                            }
                        })
                        .collect();
                    let _ = writeln!(out, "{pad}=> evaluate [{}]", descr.join(", "));
                }
            }
            Plan::Split { attr, cut, lo, hi } => {
                let name = schema.attr(*attr).name();
                let _ = writeln!(out, "{pad}if {name} < {cut}:");
                lo.pretty_into(schema, query, indent + 1, out);
                let _ = writeln!(out, "{pad}else ({name} >= {cut}):");
                hi.pretty_into(schema, query, indent + 1, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Attribute;
    use crate::query::Pred;

    fn sample_plan() -> Plan {
        Plan::split(
            2,
            12,
            Plan::Seq(SeqOrder::new(vec![1, 0])),
            Plan::split(0, 3, Plan::fail(), Plan::Seq(SeqOrder::new(vec![0, 1]))),
        )
    }

    #[test]
    fn counting_metrics() {
        let p = sample_plan();
        assert_eq!(p.node_count(), 5);
        assert_eq!(p.split_count(), 2);
        assert_eq!(p.depth(), 3);
        assert_eq!(Plan::pass().node_count(), 1);
        assert_eq!(Plan::pass().split_count(), 0);
    }

    #[test]
    fn wire_roundtrip() {
        let p = sample_plan();
        let bytes = p.encode();
        assert_eq!(bytes.len(), p.wire_size());
        let back = Plan::decode(&bytes).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn wire_rejects_garbage() {
        assert!(matches!(Plan::decode(&[]), Err(Error::BadWireFormat { .. })));
        assert!(matches!(Plan::decode(&[0x07]), Err(Error::BadWireFormat { .. })));
        assert!(matches!(Plan::decode(&[0x03, 0x00]), Err(Error::BadWireFormat { .. })));
        // trailing bytes
        assert!(matches!(Plan::decode(&[0x01, 0x01]), Err(Error::BadWireFormat { .. })));
        // truncated seq body
        assert!(matches!(Plan::decode(&[0x02, 0x03, 0x01]), Err(Error::BadWireFormat { .. })));
    }

    #[test]
    fn simplify_collapses_identical_siblings() {
        // A split whose branches agree is pointless.
        let p = Plan::split(
            1,
            3,
            Plan::split(0, 2, Plan::fail(), Plan::pass()),
            Plan::split(0, 2, Plan::fail(), Plan::pass()),
        );
        let s = p.simplify();
        assert_eq!(s, Plan::split(0, 2, Plan::fail(), Plan::pass()));
        assert!(s.wire_size() < p.wire_size());
        // Simplification cascades bottom-up.
        let p2 = Plan::split(2, 1, Plan::split(0, 1, Plan::pass(), Plan::pass()), Plan::pass());
        assert_eq!(p2.simplify(), Plan::pass());
        // Useful splits survive.
        let keep = Plan::split(0, 2, Plan::fail(), Plan::pass());
        assert_eq!(keep.simplify(), keep);
    }

    #[test]
    fn leaf_iteration() {
        let p = sample_plan();
        let mut leaves = 0;
        p.for_each_leaf(&mut |_| leaves += 1);
        assert_eq!(leaves, 3);
    }

    #[test]
    fn pretty_mentions_names() {
        let schema = crate::attr::Schema::new(vec![
            Attribute::new("temp", 16, 100.0),
            Attribute::new("light", 16, 100.0),
            Attribute::new("hour", 24, 1.0),
        ])
        .unwrap();
        let q = Query::new(vec![Pred::in_range(0, 0, 7), Pred::not_in_range(1, 3, 9)]).unwrap();
        let text = sample_plan().pretty(&schema, &q);
        assert!(text.contains("if hour < 12:"));
        assert!(text.contains("NOT(3 <= light <= 9)"));
        assert!(text.contains("REJECT"));
    }
}
