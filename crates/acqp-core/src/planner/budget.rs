//! Cooperative planning budgets and search reports.
//!
//! Plan search is worst-case exponential (#P-hard, Thm 3.1), so both
//! conditional planners accept an effort budget: a cap on expanded
//! subproblems and an optional wall-clock deadline. The budget is
//! *cooperative* — every worker consults the same shared [`SearchLimits`]
//! before expanding a subproblem, and once it is exhausted the search
//! degrades gracefully: open subproblems are closed with the best
//! sequential plan found so far, and the result is flagged as truncated.
//!
//! Truncation trades optimality for latency, never validity: a truncated
//! plan still computes `φ` exactly on every tuple, and its expected cost
//! is at least the optimum's (see `tests/parallel_equivalence.rs`).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use crate::plan::Plan;

/// How far down the fallback ladder a plan came from (§ DESIGN.md §10).
///
/// The ladder `Exhaustive → GreedyPlan → GreedySeq → Naive` trades plan
/// quality for robustness: each rung needs strictly less machinery (and
/// less trust in the estimator) than the one above, and the bottom rung
/// is a pure function of the schema that cannot fail. Every level yields
/// an *executable, correct* plan — degradation affects expected cost
/// only, never answers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum DegradationLevel {
    /// The primary (exhaustive dynamic-program) search succeeded.
    #[default]
    None,
    /// The exhaustive search was unavailable (panic, budget exhausted)
    /// and the greedy conditional planner produced the plan.
    GreedyPlan,
    /// Conditional planning was unavailable; the greedy sequential
    /// ordering (§4.1.2) produced the plan.
    GreedySeq,
    /// Even sequential optimization was unavailable; the plan is the
    /// naive cost-ordered predicate sequence, built without consulting
    /// an estimator at all.
    Naive,
}

impl DegradationLevel {
    /// Stable lower-case label used in the `fallback.*` obs taxonomy and
    /// CLI output.
    pub fn as_str(self) -> &'static str {
        match self {
            DegradationLevel::None => "none",
            DegradationLevel::GreedyPlan => "greedy_plan",
            DegradationLevel::GreedySeq => "greedy_seq",
            DegradationLevel::Naive => "naive",
        }
    }
}

/// The outcome of a plan search: the plan plus how the search went.
#[derive(Debug, Clone)]
pub struct PlanReport {
    /// The produced conditional plan.
    pub plan: Plan,
    /// The plan's expected cost under the estimator's model.
    pub expected_cost: f64,
    /// Subproblems expanded (exhaustive) or leaf expansions applied
    /// (greedy) during the search.
    pub subproblems: usize,
    /// Whether the search hit its subproblem cap or deadline and closed
    /// remaining work with sequential fallbacks. Untruncated exhaustive
    /// results are provably optimal under their split grid.
    pub truncated: bool,
    /// Worker panics caught and isolated during a parallel search. The
    /// plan is still valid — panicked subproblems were re-solved or
    /// closed by surviving workers — but a nonzero count flags that the
    /// process survived something abnormal.
    pub worker_panics: usize,
    /// Which rung of the fallback ladder produced this plan. Planners
    /// invoked directly always report [`DegradationLevel::None`]; the
    /// [`super::FallbackPlanner`] records how far it had to descend.
    pub degradation: DegradationLevel,
}

/// Shared, thread-safe effort accounting for one plan search.
#[derive(Debug)]
pub(crate) struct SearchLimits {
    max_subproblems: usize,
    deadline: Option<Instant>,
    used: AtomicUsize,
    truncated: AtomicBool,
}

/// How many subproblem expansions pass between deadline polls. Reading
/// the monotonic clock is a vsyscall — cheap, but not free on a path
/// taken millions of times — so the deadline is only consulted on every
/// 64th expansion (the attempt counter is already maintained for the
/// subproblem cap). At worst a search overruns its deadline by 63
/// subproblems' work; once tripped, every later call denies immediately.
const DEADLINE_CHECK_INTERVAL: usize = 64;

impl SearchLimits {
    pub(crate) fn new(max_subproblems: usize, budget: Option<Duration>) -> Self {
        SearchLimits {
            max_subproblems,
            deadline: budget.map(|d| Instant::now() + d),
            used: AtomicUsize::new(0),
            truncated: AtomicBool::new(false),
        }
    }

    /// Claims one subproblem expansion. Returns `false` (and marks the
    /// search truncated) when the cap or deadline has been reached; the
    /// caller must then close its subproblem with a fallback plan.
    pub(crate) fn try_expand(&self) -> bool {
        let n = self.used.fetch_add(1, Ordering::Relaxed);
        if self.truncated.load(Ordering::Relaxed) {
            return false;
        }
        let deadline_hit = n.is_multiple_of(DEADLINE_CHECK_INTERVAL)
            && self.deadline.is_some_and(|d| Instant::now() >= d);
        if n >= self.max_subproblems || deadline_hit {
            self.truncated.store(true, Ordering::Relaxed);
            return false;
        }
        true
    }

    /// Expansions attempted so far (successful or denied).
    pub(crate) fn used(&self) -> usize {
        self.used.load(Ordering::Relaxed)
    }

    pub(crate) fn truncated(&self) -> bool {
        self.truncated.load(Ordering::Relaxed)
    }
}

/// A monotonic deadline for best-so-far search loops.
///
/// The greedy planner stops *improving* its plan when the deadline
/// passes — expiry never invalidates work already done. Keeping the
/// clock reads in this module confines wall-clock access to the one
/// place where it may only truncate a search, never reorder it
/// (enforced by acqp-lint's `wallclock-in-planner` rule).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Deadline(Option<Instant>);

impl Deadline {
    /// A deadline `budget` from now; `None` never expires.
    pub(crate) fn after(budget: Option<Duration>) -> Self {
        Deadline(budget.map(|d| Instant::now() + d))
    }

    /// Whether the deadline has passed.
    pub(crate) fn expired(&self) -> bool {
        self.0.is_some_and(|d| Instant::now() >= d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cap_denies_after_limit() {
        let l = SearchLimits::new(3, None);
        assert!(l.try_expand());
        assert!(l.try_expand());
        assert!(l.try_expand());
        assert!(!l.truncated());
        assert!(!l.try_expand());
        assert!(l.truncated());
        assert_eq!(l.used(), 4);
    }

    #[test]
    fn expired_deadline_denies_immediately() {
        let l = SearchLimits::new(usize::MAX, Some(Duration::ZERO));
        assert!(!l.try_expand());
        assert!(l.truncated());
    }

    /// The deadline is only polled every `DEADLINE_CHECK_INTERVAL`
    /// expansions, but truncation must still fire — on attempt 0 (the
    /// first poll) and then stick for every later attempt, so an expired
    /// deadline can never leak more than one polling window of work.
    #[test]
    fn coarse_deadline_polling_still_truncates_and_sticks() {
        let l = SearchLimits::new(usize::MAX, Some(Duration::ZERO));
        for i in 0..(3 * DEADLINE_CHECK_INTERVAL) {
            assert!(!l.try_expand(), "attempt {i} granted after deadline expiry");
        }
        assert!(l.truncated());
        assert_eq!(l.used(), 3 * DEADLINE_CHECK_INTERVAL);
    }

    /// A deadline that expires mid-search trips at the next polling
    /// point: grants can continue for at most one interval afterwards.
    #[test]
    fn mid_search_expiry_trips_within_one_interval() {
        let l = SearchLimits::new(usize::MAX, Some(Duration::from_millis(5)));
        // Burn past the first polling point while the deadline is live.
        for _ in 0..10 {
            assert!(l.try_expand());
        }
        std::thread::sleep(Duration::from_millis(10));
        let granted_after_expiry =
            (0..2 * DEADLINE_CHECK_INTERVAL).filter(|_| l.try_expand()).count();
        assert!(
            granted_after_expiry < DEADLINE_CHECK_INTERVAL,
            "deadline ignored for {granted_after_expiry} expansions"
        );
        assert!(l.truncated());
        assert!(!l.try_expand());
    }

    #[test]
    fn limits_are_shared_across_threads() {
        let l = SearchLimits::new(100, None);
        let granted: usize = crossbeam::scope(|s| {
            let handles: Vec<_> =
                (0..4).map(|_| s.spawn(|_| (0..50).filter(|_| l.try_expand()).count())).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(granted, 100);
        assert!(l.truncated());
    }
}
