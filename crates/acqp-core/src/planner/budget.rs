//! Cooperative planning budgets and search reports.
//!
//! Plan search is worst-case exponential (#P-hard, Thm 3.1), so both
//! conditional planners accept an effort budget: a cap on expanded
//! subproblems and an optional wall-clock deadline. The budget is
//! *cooperative* — every worker consults the same shared [`SearchLimits`]
//! before expanding a subproblem, and once it is exhausted the search
//! degrades gracefully: open subproblems are closed with the best
//! sequential plan found so far, and the result is flagged as truncated.
//!
//! Truncation trades optimality for latency, never validity: a truncated
//! plan still computes `φ` exactly on every tuple, and its expected cost
//! is at least the optimum's (see `tests/parallel_equivalence.rs`).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use crate::plan::Plan;

/// The outcome of a plan search: the plan plus how the search went.
#[derive(Debug, Clone)]
pub struct PlanReport {
    /// The produced conditional plan.
    pub plan: Plan,
    /// The plan's expected cost under the estimator's model.
    pub expected_cost: f64,
    /// Subproblems expanded (exhaustive) or leaf expansions applied
    /// (greedy) during the search.
    pub subproblems: usize,
    /// Whether the search hit its subproblem cap or deadline and closed
    /// remaining work with sequential fallbacks. Untruncated exhaustive
    /// results are provably optimal under their split grid.
    pub truncated: bool,
}

/// Shared, thread-safe effort accounting for one plan search.
#[derive(Debug)]
pub(crate) struct SearchLimits {
    max_subproblems: usize,
    deadline: Option<Instant>,
    used: AtomicUsize,
    truncated: AtomicBool,
}

impl SearchLimits {
    pub(crate) fn new(max_subproblems: usize, budget: Option<Duration>) -> Self {
        SearchLimits {
            max_subproblems,
            deadline: budget.map(|d| Instant::now() + d),
            used: AtomicUsize::new(0),
            truncated: AtomicBool::new(false),
        }
    }

    /// Claims one subproblem expansion. Returns `false` (and marks the
    /// search truncated) when the cap or deadline has been reached; the
    /// caller must then close its subproblem with a fallback plan.
    pub(crate) fn try_expand(&self) -> bool {
        let n = self.used.fetch_add(1, Ordering::Relaxed);
        if n >= self.max_subproblems || self.deadline.is_some_and(|d| Instant::now() >= d) {
            self.truncated.store(true, Ordering::Relaxed);
            return false;
        }
        true
    }

    /// Expansions attempted so far (successful or denied).
    pub(crate) fn used(&self) -> usize {
        self.used.load(Ordering::Relaxed)
    }

    pub(crate) fn truncated(&self) -> bool {
        self.truncated.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cap_denies_after_limit() {
        let l = SearchLimits::new(3, None);
        assert!(l.try_expand());
        assert!(l.try_expand());
        assert!(l.try_expand());
        assert!(!l.truncated());
        assert!(!l.try_expand());
        assert!(l.truncated());
        assert_eq!(l.used(), 4);
    }

    #[test]
    fn expired_deadline_denies_immediately() {
        let l = SearchLimits::new(usize::MAX, Some(Duration::ZERO));
        assert!(!l.try_expand());
        assert!(l.truncated());
    }

    #[test]
    fn limits_are_shared_across_threads() {
        let l = SearchLimits::new(100, None);
        let granted: usize = crossbeam::scope(|s| {
            let handles: Vec<_> =
                (0..4).map(|_| s.spawn(|_| (0..50).filter(|_| l.try_expand()).count())).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(granted, 100);
        assert!(l.truncated());
    }
}
