//! Brute-force enumeration of conditional plans for tiny instances —
//! the generate-and-test view of §2.2 / Fig. 3.
//!
//! Only practical for a handful of attributes with tiny domains; used to
//! validate the dynamic program and to reproduce the Fig. 3 example.
//!
//! Two counting conventions exist for "how many plans are there":
//!
//! * [`full_tree_count`] counts *acquisition trees* — every branch
//!   acquires every attribute in some order, with regions past a decided
//!   verdict merely "grayed out" (not executed). This is the convention
//!   under which the paper counts **12** plans for its three-attribute
//!   example (`s(n) = n · s(n−1)²`, `s(3) = 12`).
//! * [`enumerate_plans`] enumerates *executed* trees — branches stop as
//!   soon as the verdict is decided, so plans differing only in grayed
//!   regions coincide. The same example yields 8 distinct executed
//!   plans.

use crate::attr::Schema;
use crate::error::{Error, Result};
use crate::plan::Plan;
use crate::prob::Estimator;
use crate::query::Query;
use crate::range::Range;

use super::OrdF64;

/// All executed conditional plans for a (tiny) instance, each with its
/// model-expected cost.
#[derive(Debug, Clone)]
pub struct EnumeratedPlans {
    /// `(plan, expected_cost)` pairs, in enumeration order.
    pub plans: Vec<(Plan, f64)>,
}

impl EnumeratedPlans {
    /// The minimum expected cost over all enumerated plans.
    pub fn best_cost(&self) -> f64 {
        self.plans.iter().map(|(_, c)| *c).fold(f64::INFINITY, f64::min)
    }

    /// The plan achieving [`EnumeratedPlans::best_cost`].
    pub fn best_plan(&self) -> Option<&Plan> {
        self.plans.iter().min_by(|a, b| OrdF64(a.1).cmp(&OrdF64(b.1))).map(|(p, _)| p)
    }
}

/// Number of full acquisition trees over `n` attributes:
/// `s(n) = n · s(n−1)²`, `s(0) = 1`. This is the paper's "12 total
/// possible plans" for `n = 3`.
pub fn full_tree_count(n: u32) -> u128 {
    match n {
        0 => 1,
        _ => {
            let prev = full_tree_count(n - 1);
            u128::from(n) * prev * prev
        }
    }
}

/// Enumerates every executed conditional plan (pure split trees with
/// branches stopping at decided verdicts), with expected costs under
/// `est`. Fails with [`Error::TooManyPredicates`] if more than `limit`
/// plans would be produced.
pub fn enumerate_plans<E: Estimator>(
    schema: &Schema,
    query: &Query,
    est: &E,
    limit: usize,
) -> Result<EnumeratedPlans> {
    let root = est.root();
    let plans = enumerate_at(schema, query, est, &root, limit)?;
    Ok(EnumeratedPlans { plans })
}

fn enumerate_at<E: Estimator>(
    schema: &Schema,
    query: &Query,
    est: &E,
    ctx: &E::Ctx,
    limit: usize,
) -> Result<Vec<(Plan, f64)>> {
    let ranges = est.ranges(ctx).clone();
    if let Some(b) = query.truth_given(&ranges) {
        return Ok(vec![(Plan::Decided(b), 0.0)]);
    }
    let mut out: Vec<(Plan, f64)> = Vec::new();
    for attr in 0..schema.len() {
        let r = ranges.get(attr);
        if r.is_point() {
            continue;
        }
        let c0 = ranges.effective_cost(schema, attr);
        for cut in (r.lo() + 1)..=r.hi() {
            let p_lo = est.prob_below(ctx, attr, cut).clamp(0.0, 1.0);
            let lo_ctx = est.refine(ctx, attr, Range::new(r.lo(), cut - 1));
            let hi_ctx = est.refine(ctx, attr, Range::new(cut, r.hi()));
            let lo_plans = enumerate_at(schema, query, est, &lo_ctx, limit)?;
            let hi_plans = enumerate_at(schema, query, est, &hi_ctx, limit)?;
            for (lp, lc) in &lo_plans {
                for (hp, hc) in &hi_plans {
                    if out.len() >= limit {
                        return Err(Error::TooManyPredicates { m: out.len() + 1, max: limit });
                    }
                    let cost = c0 + p_lo * lc + (1.0 - p_lo) * hc;
                    out.push((Plan::split(attr, cut, lp.clone(), hp.clone()), cost));
                }
            }
        }
    }
    // A subproblem with undecided predicates but no splittable attribute
    // cannot occur: an undecided predicate implies a non-point range on
    // its attribute.
    debug_assert!(!out.is_empty());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Attribute;
    use crate::dataset::Dataset;
    use crate::planner::ExhaustivePlanner;
    use crate::prob::CountingEstimator;
    use crate::query::Pred;
    use crate::range::Ranges;

    /// The Fig. 3 instance: three binary attributes, query
    /// `X1 = 1 ∧ X2 = 1` (0-based: `X1 = 0 ∧ X2 = 0`).
    fn fig3() -> (Schema, Dataset, Query) {
        let schema = Schema::new(vec![
            Attribute::new("x1", 2, 1.0),
            Attribute::new("x2", 2, 1.0),
            Attribute::new("x3", 2, 1.0),
        ])
        .unwrap();
        // Correlated data: x3 predicts x1/x2.
        let mut rows = Vec::new();
        for i in 0..16u16 {
            let x3 = i % 2;
            let x1 = if x3 == 0 { u16::from(i % 8 == 0) } else { u16::from(i % 4 != 1) };
            let x2 = if x3 == 0 { u16::from(i % 4 == 0) } else { u16::from(i % 8 != 1) };
            rows.push(vec![x1, x2, x3]);
        }
        let data = Dataset::from_rows(&schema, rows).unwrap();
        let query = Query::new(vec![Pred::in_range(0, 0, 0), Pred::in_range(1, 0, 0)]).unwrap();
        (schema, data, query)
    }

    #[test]
    fn paper_counts_twelve_full_trees_for_three_attrs() {
        assert_eq!(full_tree_count(0), 1);
        assert_eq!(full_tree_count(1), 1);
        assert_eq!(full_tree_count(2), 2);
        assert_eq!(full_tree_count(3), 12);
        assert_eq!(full_tree_count(4), 576);
    }

    #[test]
    fn executed_tree_enumeration_count() {
        let (schema, data, query) = fig3();
        let est = CountingEstimator::with_ranges(&data, Ranges::root(&schema));
        let e = enumerate_plans(&schema, &query, &est, 10_000).unwrap();
        // Executed trees collapse the paper's 12 full trees to 8:
        // root x1 -> {x2 | x3->(x2,x2)} = 2, root x2 -> 2,
        // root x3 -> (x1|x2) × (x1|x2) = 4.
        assert_eq!(e.plans.len(), 8);
    }

    #[test]
    fn enumeration_minimum_matches_exhaustive_dp() {
        let (schema, data, query) = fig3();
        let est = CountingEstimator::with_ranges(&data, Ranges::root(&schema));
        let e = enumerate_plans(&schema, &query, &est, 10_000).unwrap();
        let (_, dp_cost) = ExhaustivePlanner::new().plan_with_cost(&schema, &query, &est).unwrap();
        assert!(
            (e.best_cost() - dp_cost).abs() < 1e-9,
            "enumeration best {} vs DP {}",
            e.best_cost(),
            dp_cost
        );
    }

    #[test]
    fn every_enumerated_plan_is_correct() {
        let (schema, data, query) = fig3();
        let est = CountingEstimator::with_ranges(&data, Ranges::root(&schema));
        let e = enumerate_plans(&schema, &query, &est, 10_000).unwrap();
        for (plan, _) in &e.plans {
            let rep = crate::cost::measure(plan, &query, &schema, &data);
            assert!(rep.all_correct, "incorrect plan: {plan:?}");
        }
    }

    /// Compact structural signature for golden comparisons:
    /// `x<attr>@<cut>(<lo>,<hi>)`, `T`/`F` for decided leaves.
    fn sig(p: &Plan) -> String {
        match p {
            Plan::Decided(b) => (if *b { "T" } else { "F" }).into(),
            Plan::Seq(o) => format!("seq{o:?}"),
            Plan::Split { attr, cut, lo, hi } => {
                format!("x{attr}@{cut}({},{})", sig(lo), sig(hi))
            }
        }
    }

    /// Golden pin of the full Fig. 3 enumeration: exact structures, exact
    /// order, costs to 1e-6. Guards both the enumeration order (which the
    /// DP's determinism argument leans on) and the estimator's arithmetic.
    #[test]
    fn fig3_enumeration_golden() {
        let (schema, data, query) = fig3();
        let est = CountingEstimator::with_ranges(&data, Ranges::root(&schema));
        let e = enumerate_plans(&schema, &query, &est, 10_000).unwrap();
        let got: Vec<(String, f64)> =
            e.plans.iter().map(|(p, c)| (sig(p), (c * 1e6).round() / 1e6)).collect();
        let want: Vec<(&str, f64)> = vec![
            ("x0@1(x1@1(T,F),F)", 1.625),
            ("x0@1(x2@1(x1@1(T,F),x1@1(T,F)),F)", 2.25),
            ("x1@1(x0@1(T,F),F)", 1.375),
            ("x1@1(x2@1(x0@1(T,F),x0@1(T,F)),F)", 1.75),
            ("x2@1(x0@1(x1@1(T,F),F),x0@1(x1@1(T,F),F))", 2.625),
            ("x2@1(x0@1(x1@1(T,F),F),x1@1(x0@1(T,F),F))", 2.5),
            ("x2@1(x1@1(x0@1(T,F),F),x0@1(x1@1(T,F),F))", 2.5),
            ("x2@1(x1@1(x0@1(T,F),F),x1@1(x0@1(T,F),F))", 2.375),
        ];
        assert_eq!(got.len(), want.len(), "got {got:#?}");
        for (i, ((gs, gc), (ws, wc))) in got.iter().zip(&want).enumerate() {
            assert_eq!(gs, ws, "plan {i} structure");
            assert!((gc - wc).abs() < 1e-9, "plan {i} cost {gc} != {wc}");
        }
        // full_tree_count stays pinned to the paper's closed form.
        assert_eq!(
            (0..=5).map(full_tree_count).collect::<Vec<_>>(),
            vec![1, 1, 2, 12, 576, 1_658_880]
        );
    }

    #[test]
    fn limit_guards_explosion() {
        let (schema, data, query) = fig3();
        let est = CountingEstimator::with_ranges(&data, Ranges::root(&schema));
        let err = enumerate_plans(&schema, &query, &est, 3).unwrap_err();
        assert!(matches!(err, Error::TooManyPredicates { .. }));
    }
}
