//! The optimal conditional planner — Fig. 5's `EXHAUSTIVEPLAN`.
//!
//! A dynamic program over range subproblems `Subproblem(φ, R_1, …, R_n)`:
//!
//! * **Base cases** — the ranges alone determine `φ` (leaf `Decided`),
//!   or every query attribute has already been acquired (leaf `Seq` over
//!   the undecided predicates, which costs nothing at runtime because
//!   their attributes are in hand).
//! * **Recursive case** — try every candidate conditioning predicate
//!   `T(X_i ≥ x)` allowed by the split grid, recursing into the two
//!   induced subproblems, weighting by `P(X_i ∈ [a, x−1] | R_1…R_n)`
//!   (Eq. 5).
//! * **Memoization** — optimal results are cached by range vector in a
//!   sharded concurrent table shared by every search thread.
//! * **Pruning** — all pruning is *local to a subproblem* and uses only
//!   canonical quantities: the greedy sequential plan seeds an incumbent
//!   upper bound, candidates whose admissible lower bound
//!   `C'_i + P_lo·lb(lo) + P_hi·lb(hi)` cannot strictly beat it are
//!   skipped, and a candidate is abandoned as soon as its accumulated
//!   cost plus the remaining branch's lower bound reaches the incumbent.
//!
//! ## Determinism under parallelism
//!
//! Unlike classic branch-and-bound, no caller-supplied cost bound flows
//! into recursive calls. That makes [`Search::solve`] a *pure function
//! of the subproblem*: every skip decision compares canonical values
//! (child optima, admissible bounds, the local incumbent) that do not
//! depend on what the rest of the tree is doing, so the `(cost, plan)`
//! computed for a given range vector is identical in any execution
//! order. Parallel search exploits this by running the same `solve` on
//! many subproblems concurrently, purely to *warm the shared memo
//! table*; the final combining pass runs the identical serial code and
//! therefore returns a bit-for-bit identical expected cost regardless
//! of thread count or scheduling. The only escape hatch is the
//! cooperative budget: once it trips, subproblems close with sequential
//! fallbacks whose placement depends on timing, so equivalence is only
//! guaranteed for untruncated searches (truncated plans remain valid
//! and can only cost more than the optimum).
//!
//! The worst-case complexity is exponential in the number of attributes
//! (the problem is #P-hard, Thm 3.1), so a `max_subproblems` cap and an
//! optional wall-clock deadline bound the effort: past the budget,
//! remaining subproblems are closed with greedy sequential leaves (the
//! result degrades gracefully toward the heuristic planner instead of
//! running forever).

use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeSet;
// acqp-lint: allow(nondeterministic-iteration): memo shards are probed by key only — see MemoShard
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

use acqp_obs::{Counter, Recorder};
use crossbeam::deque::{Injector, Steal};

use crate::attr::Schema;
use crate::error::Result;
use crate::plan::{Plan, SeqOrder};
use crate::prob::Estimator;
use crate::query::Query;
use crate::range::{Range, Ranges};
use crate::sync::NoPoisonMutex;

use super::budget::{DegradationLevel, PlanReport, SearchLimits};
use super::seq::SeqPlanner;
use super::spsf::SplitGrid;
use super::OrdF64;

/// The exhaustive dynamic-programming planner of Fig. 5.
#[derive(Debug, Clone)]
pub struct ExhaustivePlanner {
    grid: Option<SplitGrid>,
    max_subproblems: usize,
    time_budget: Option<Duration>,
    threads: usize,
    cost_model: crate::costmodel::CostModel,
    recorder: Recorder,
}

impl Default for ExhaustivePlanner {
    fn default() -> Self {
        Self::new()
    }
}

impl ExhaustivePlanner {
    /// Planner over the unrestricted split grid (every cut of every
    /// attribute) with a default effort budget, single-threaded.
    pub fn new() -> Self {
        ExhaustivePlanner {
            grid: None,
            max_subproblems: 2_000_000,
            time_budget: None,
            threads: 1,
            cost_model: crate::costmodel::CostModel::PerAttribute,
            recorder: Recorder::disabled(),
        }
    }

    /// Planner restricted to the given candidate split grid (§4.3).
    pub fn with_grid(grid: SplitGrid) -> Self {
        ExhaustivePlanner { grid: Some(grid), ..Self::new() }
    }

    /// Uses order-dependent acquisition costs (§7 "Complex acquisition
    /// costs"), e.g. shared-board power-ups.
    pub fn with_cost_model(mut self, model: crate::costmodel::CostModel) -> Self {
        self.cost_model = model;
        self
    }

    /// Sets the subproblem budget; past it, open subproblems are closed
    /// with greedy sequential leaves.
    pub fn max_subproblems(mut self, n: usize) -> Self {
        self.max_subproblems = n;
        self
    }

    /// Adds a wall-clock deadline: once elapsed, the search degrades to
    /// sequential fallbacks exactly like an exhausted subproblem cap.
    pub fn time_budget(mut self, d: Duration) -> Self {
        self.time_budget = Some(d);
        self
    }

    /// Number of search threads. With `n > 1` the planner fans the DP's
    /// subproblems over a scoped work-stealing pool that warms a shared
    /// memo table; the answer is bit-identical to `threads(1)` whenever
    /// the search completes within budget.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// Attaches an observability recorder. The search records memo
    /// hits/misses, prune and split-evaluation counts, budget events and
    /// warm/combine phase timings through it; see `DESIGN.md` §8 for the
    /// metric taxonomy. Metrics never feed back into search decisions,
    /// so recording cannot perturb the chosen plan.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Finds the minimum expected-cost conditional plan.
    pub fn plan<E: Estimator>(&self, schema: &Schema, query: &Query, est: &E) -> Result<Plan> {
        self.plan_with_report(schema, query, est).map(|r| r.plan)
    }

    /// Like [`ExhaustivePlanner::plan`], also returning the model-expected cost.
    pub fn plan_with_cost<E: Estimator>(
        &self,
        schema: &Schema,
        query: &Query,
        est: &E,
    ) -> Result<(Plan, f64)> {
        self.plan_with_report(schema, query, est).map(|r| (r.plan, r.expected_cost))
    }

    /// Like [`ExhaustivePlanner::plan_with_cost`], also returning the
    /// number of subproblem expansions attempted (for effort studies).
    pub fn plan_with_stats<E: Estimator>(
        &self,
        schema: &Schema,
        query: &Query,
        est: &E,
    ) -> Result<(Plan, f64, usize)> {
        self.plan_with_report(schema, query, est).map(|r| (r.plan, r.expected_cost, r.subproblems))
    }

    /// Full search outcome: plan, expected cost, effort, truncation.
    pub fn plan_with_report<E: Estimator>(
        &self,
        schema: &Schema,
        query: &Query,
        est: &E,
    ) -> Result<PlanReport> {
        let grid = match &self.grid {
            Some(g) => g.clone(),
            None => SplitGrid::all(schema),
        };
        let search = Search {
            schema,
            query,
            est,
            grid,
            memo: ShardedMemo::new(),
            seq: SeqPlanner::greedy().with_cost_model(self.cost_model.clone()),
            model: self.cost_model.clone(),
            limits: SearchLimits::new(self.max_subproblems, self.time_budget),
            metrics: SearchMetrics::new(&self.recorder),
            panics: AtomicUsize::new(0),
        };
        let root = est.root();
        let flight = self.recorder.flight().clone();
        let start_seq = flight.emit(
            0,
            0,
            "plan.search.start",
            &[
                ("planner", "exhaustive".into()),
                ("preds", query.len().into()),
                ("threads", self.threads.into()),
            ],
        );
        let span = self.recorder.span("planner.exhaustive");
        if self.threads > 1 {
            let _warm = span.child("warm");
            search.warm_parallel(&root, self.threads);
        }
        let (cost, plan) = {
            let _combine = span.child("combine");
            let (cost, plan, _) = search.solve(&root)?;
            (cost, plan)
        };
        drop(span);
        if search.limits.truncated() {
            search.metrics.budget_truncated.incr(1);
            flight.emit(
                0,
                start_seq,
                "plan.search.truncated",
                &[("subproblems", search.limits.used().into())],
            );
        }
        if self.recorder.enabled() {
            search.memo.report_shards(&self.recorder);
        }
        // Search-effort summary. Cost and plan are bitwise-deterministic
        // (PR 1's serial/parallel equality); the memo/prune tallies are
        // exact single-threaded and may vary run-to-run under a parallel
        // warm, like the counters they mirror.
        flight.emit(
            0,
            start_seq,
            "plan.search.end",
            &[
                ("cost", cost.into()),
                ("subproblems", search.limits.used().into()),
                ("truncated", search.limits.truncated().into()),
                ("memo_hits", search.metrics.memo_hit.value().into()),
                ("memo_misses", search.metrics.memo_miss.value().into()),
                (
                    "pruned",
                    (search.metrics.prune_attr_cost.value()
                        + search.metrics.prune_lower_bound.value())
                    .into(),
                ),
                ("budget_denied", search.metrics.budget_denied.value().into()),
            ],
        );
        Ok(PlanReport {
            plan,
            expected_cost: cost,
            subproblems: search.limits.used(),
            truncated: search.limits.truncated(),
            worker_panics: search.panics.load(Ordering::Relaxed),
            degradation: DegradationLevel::None,
        })
    }
}

/// Pre-hoisted instrument handles for one plan search: looked up once
/// per search so the hot DP loop records through lock-free handles. All
/// handles are detached no-ops under [`Recorder::disabled`].
struct SearchMetrics {
    /// Incremented adjacent to every `SearchLimits::try_expand` call, so
    /// its total equals [`PlanReport::subproblems`] exactly.
    opened: Counter,
    memo_hit: Counter,
    memo_miss: Counter,
    /// Attributes skipped because their bare acquisition cost already
    /// meets the incumbent.
    prune_attr_cost: Counter,
    /// Candidate cuts abandoned by an admissible lower-bound check.
    prune_lower_bound: Counter,
    /// Candidate split points evaluated (cut loop iterations).
    split_evaluated: Counter,
    /// Expansions denied by the cooperative budget.
    budget_denied: Counter,
    /// 1 when the search ended truncated.
    budget_truncated: Counter,
    /// Worker panics caught by the warm pool's isolation shell.
    panic_caught: Counter,
}

impl SearchMetrics {
    fn new(rec: &Recorder) -> Self {
        SearchMetrics {
            opened: rec.counter("planner.subproblems.opened"),
            memo_hit: rec.counter("planner.memo.hit"),
            memo_miss: rec.counter("planner.memo.miss"),
            prune_attr_cost: rec.counter("planner.prune.attr_cost"),
            prune_lower_bound: rec.counter("planner.prune.lower_bound"),
            split_evaluated: rec.counter("planner.split.evaluated"),
            budget_denied: rec.counter("planner.budget.denied"),
            budget_truncated: rec.counter("planner.budget.truncated"),
            panic_caught: rec.counter("planner.panic.caught"),
        }
    }
}

const MEMO_SHARDS: usize = 64;

/// One shard of the memo. A hash map is safe here despite the
/// determinism rules: the table is probed by key only — results never
/// depend on iteration order (`report_shards` reads `len()` alone) —
/// and lookups are the hottest operation in the whole search.
// acqp-lint: allow(nondeterministic-iteration): lookup-only table — iteration order never reaches planner output
type MemoShard = HashMap<Ranges, (f64, Plan)>;

/// A concurrent memo table: optimal `(cost, plan)` per range vector,
/// striped over independently locked shards to keep contention low.
/// Values are canonical (see the module docs), so racing writers for the
/// same key always store the same value and overwrites are benign.
struct ShardedMemo {
    shards: Vec<NoPoisonMutex<MemoShard>>,
    /// Per-shard lookup outcomes: `(hits, misses)` per shard, kept as
    /// plain relaxed atomics (noise next to the shard mutex) so shard
    /// balance can be reported even though lookups race.
    stats: Vec<(AtomicU64, AtomicU64)>,
}

impl ShardedMemo {
    fn new() -> Self {
        ShardedMemo {
            shards: (0..MEMO_SHARDS).map(|_| NoPoisonMutex::new(MemoShard::new())).collect(),
            stats: (0..MEMO_SHARDS).map(|_| (AtomicU64::new(0), AtomicU64::new(0))).collect(),
        }
    }

    fn shard_index(&self, key: &Ranges) -> usize {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        h.finish() as usize % MEMO_SHARDS
    }

    fn get(&self, key: &Ranges) -> Option<(f64, Plan)> {
        let i = self.shard_index(key);
        let found = self.shards[i].lock().get(key).cloned();
        let (hits, misses) = &self.stats[i];
        if found.is_some() { hits } else { misses }.fetch_add(1, Ordering::Relaxed);
        found
    }

    fn insert(&self, key: Ranges, value: (f64, Plan)) {
        self.shards[self.shard_index(&key)].lock().insert(key, value);
    }

    /// Publishes per-shard hit/miss/size gauges
    /// (`planner.memo.shard<i>.hits` etc.) for shards that saw traffic.
    fn report_shards(&self, rec: &Recorder) {
        for (i, (hits, misses)) in self.stats.iter().enumerate() {
            let (h, m) = (hits.load(Ordering::Relaxed), misses.load(Ordering::Relaxed));
            if h + m == 0 {
                continue;
            }
            rec.gauge(&format!("planner.memo.shard{i}.hits"), h as f64);
            rec.gauge(&format!("planner.memo.shard{i}.misses"), m as f64);
            rec.gauge(
                &format!("planner.memo.shard{i}.entries"),
                self.shards[i].lock().len() as f64,
            );
        }
    }
}

struct Search<'a, E: Estimator> {
    schema: &'a Schema,
    query: &'a Query,
    est: &'a E,
    grid: SplitGrid,
    memo: ShardedMemo,
    seq: SeqPlanner,
    model: crate::costmodel::CostModel,
    limits: SearchLimits,
    metrics: SearchMetrics,
    /// Worker panics caught during `warm_parallel` (see there).
    panics: AtomicUsize,
}

impl<E: Estimator> Search<'_, E> {
    /// Solves one subproblem to optimality (or to a sequential fallback
    /// once the budget trips). Returns `(cost, plan, exact)`; `exact`
    /// is false when any subproblem in this subtree was closed by the
    /// budget, in which case the value is an upper bound on the optimum
    /// and is not memoized.
    fn solve(&self, ctx: &E::Ctx) -> Result<(f64, Plan, bool)> {
        let ranges = self.est.ranges(ctx).clone();

        // Base case 1: ranges decide the query.
        if let Some(b) = self.query.truth_given(&ranges) {
            return Ok((0.0, Plan::Decided(b), true));
        }
        // Base case 2: every query attribute acquired — the residual
        // predicates evaluate for free on values already in hand.
        if self.query.preds().iter().all(|p| !ranges.attr_unacquired(self.schema, p.attr())) {
            let order = self.query.undecided(&ranges);
            return Ok((0.0, Plan::Seq(SeqOrder::new(order)), true));
        }
        match self.memo.get(&ranges) {
            Some((c, p)) => {
                self.metrics.memo_hit.incr(1);
                return Ok((c, p, true));
            }
            None => self.metrics.memo_miss.incr(1),
        }

        // `opened` tracks expansion *attempts* exactly like
        // `SearchLimits::used`, so it always equals the report's
        // `subproblems` (asserted in `tests/parallel_equivalence.rs`).
        self.metrics.opened.incr(1);
        if !self.limits.try_expand() {
            // Effort budget exhausted: close this subproblem with a
            // greedy sequential leaf. Not cached (it is not optimal).
            self.metrics.budget_denied.incr(1);
            let (cost, plan) = self.seq_leaf(ctx, &ranges)?;
            return Ok((cost, plan, false));
        }

        // Incumbent: a sequential leaf is itself a valid plan for this
        // subproblem (it is expressible as a chain of splits at
        // predicate endpoints), so its cost is a sound upper bound that
        // makes the admissible lower-bound skips below bite. This is
        // the "more elaborate pruning" §3.2 alludes to.
        let (seq_cost, seq_plan) = self.seq_leaf(ctx, &ranges)?;
        let mut best_cost = seq_cost;
        let mut best_plan = seq_plan;
        let mut exact = true;

        // Try cheap conditioning attributes first: good incumbents found
        // early make the admissible lower-bound pruning bite sooner.
        let mask = crate::costmodel::acquired_mask(self.schema, &ranges);
        let mut attr_order: Vec<usize> =
            (0..self.schema.len()).filter(|&a| !ranges.get(a).is_point()).collect();
        attr_order.sort_by(|&a, &b| {
            OrdF64(self.model.cost(self.schema, a, mask))
                .cmp(&OrdF64(self.model.cost(self.schema, b, mask)))
                .then(a.cmp(&b))
        });

        for attr in attr_order {
            let r = ranges.get(attr);
            let c0 = self.model.cost(self.schema, attr, mask);
            // Child costs are non-negative, so no split on this
            // attribute can strictly beat the incumbent.
            if c0 >= best_cost {
                self.metrics.prune_attr_cost.incr(1);
                continue;
            }
            let mut hist: Option<Vec<f64>> = None;
            let cuts: Vec<u16> = self.grid.cuts_in(attr, r).collect();
            for cut in cuts {
                self.metrics.split_evaluated.incr(1);
                let h = hist.get_or_insert_with(|| self.est.hist(ctx, attr));
                let p_lo: f64 =
                    h[usize::from(r.lo())..usize::from(cut)].iter().sum::<f64>().clamp(0.0, 1.0);
                let p_hi = 1.0 - p_lo;
                let lo_ranges = ranges.with(attr, Range::new(r.lo(), cut - 1));
                let hi_ranges = ranges.with(attr, Range::new(cut, r.hi()));
                // Admissible lower bounds: every completion of a
                // subproblem with an undecided predicate must acquire at
                // least its cheapest undecided predicate attribute.
                let lb_lo = self.lower_bound(&lo_ranges);
                let lb_hi = self.lower_bound(&hi_ranges);
                let mut acc = c0;
                if acc + p_lo * lb_lo + p_hi * lb_hi >= best_cost {
                    self.metrics.prune_lower_bound.incr(1);
                    continue;
                }

                let lo_plan;
                if p_lo > 0.0 {
                    let child = self.est.refine(ctx, attr, Range::new(r.lo(), cut - 1));
                    let (c, p, e) = self.solve(&child)?;
                    acc += p_lo * c;
                    lo_plan = p;
                    exact &= e;
                } else {
                    // Zero-mass branch (a "grayed out" region): still
                    // needs a valid plan in case the test distribution
                    // reaches it.
                    lo_plan = self.zero_mass_leaf(&lo_ranges);
                }
                if acc + p_hi * lb_hi >= best_cost {
                    self.metrics.prune_lower_bound.incr(1);
                    continue;
                }

                let hi_plan;
                if p_hi > 0.0 {
                    let child = self.est.refine(ctx, attr, Range::new(cut, r.hi()));
                    let (c, p, e) = self.solve(&child)?;
                    acc += p_hi * c;
                    hi_plan = p;
                    exact &= e;
                } else {
                    hi_plan = self.zero_mass_leaf(&hi_ranges);
                }
                if acc < best_cost {
                    best_cost = acc;
                    best_plan = Plan::split(attr, cut, lo_plan, hi_plan);
                }
            }
        }

        if exact {
            self.memo.insert(ranges, (best_cost, best_plan.clone()));
        }
        Ok((best_cost, best_plan, exact))
    }

    /// Admissible lower bound on the optimal completion cost of a
    /// subproblem: unless the ranges already decide `φ`, every path to a
    /// decided leaf must acquire at least the cheapest attribute of an
    /// undecided predicate.
    fn lower_bound(&self, ranges: &Ranges) -> f64 {
        if self.query.truth_given(ranges).is_some() {
            return 0.0;
        }
        let mask = crate::costmodel::acquired_mask(self.schema, ranges);
        let lb = self
            .query
            .preds()
            .iter()
            .filter(|p| p.truth_given(ranges.get(p.attr())).is_none())
            .map(|p| self.model.min_cost(self.schema, p.attr(), mask))
            .fold(f64::INFINITY, f64::min);
        if lb.is_finite() {
            lb
        } else {
            0.0
        }
    }

    fn seq_leaf(&self, ctx: &E::Ctx, ranges: &Ranges) -> Result<(f64, Plan)> {
        let table = self.est.truth_table(ctx, self.query);
        let (order, cost) = self.seq.order_for(self.schema, self.query, ranges, &table)?;
        Ok((cost, Plan::Seq(SeqOrder::new(order))))
    }

    fn zero_mass_leaf(&self, ranges: &Ranges) -> Plan {
        match self.query.truth_given(ranges) {
            Some(b) => Plan::Decided(b),
            None => Plan::Seq(SeqOrder::new(self.query.undecided(ranges))),
        }
    }

    /// Warms the shared memo by solving a frontier of subproblems on a
    /// scoped work-stealing pool. Purely an accelerator: every value a
    /// worker computes is the same one the final serial pass would, so
    /// the combine below it sees memo hits instead of recomputation.
    /// Worker errors are swallowed here — a failing subproblem is not
    /// memoized, so the serial pass re-encounters the same error
    /// deterministically.
    ///
    /// Worker *panics* are likewise isolated: each `solve` runs under
    /// `catch_unwind`, so one panicking subproblem costs only its own
    /// memo entry while the surviving workers drain the queue. The memo
    /// shards use [`NoPoisonMutex`], so a panic inside an estimator call
    /// cannot poison shared planner state (only whole `(cost, plan)`
    /// values are ever inserted). Caught panics are counted into
    /// `planner.panic.caught` and surface as
    /// [`PlanReport::worker_panics`]; the combine pass still returns a
    /// correct report because it re-solves anything the dead worker
    /// failed to memoize.
    fn warm_parallel(&self, root: &E::Ctx, threads: usize) {
        let tasks = self.frontier(root, threads * 4);
        if tasks.len() < 2 {
            return;
        }
        let injector = Injector::new();
        for t in tasks {
            injector.push(t);
        }
        let scope_result = crossbeam::scope(|s| {
            for _ in 0..threads {
                s.spawn(|_| loop {
                    match injector.steal() {
                        Steal::Success(ctx) => {
                            if catch_unwind(AssertUnwindSafe(|| {
                                let _ = self.solve(&ctx);
                            }))
                            .is_err()
                            {
                                self.panics.fetch_add(1, Ordering::Relaxed);
                                self.metrics.panic_caught.incr(1);
                            }
                        }
                        Steal::Empty => break,
                        Steal::Retry => {}
                    }
                });
            }
        });
        // `catch_unwind` above absorbs worker panics, so the scope only
        // errs if a thread died outside the isolation shell (e.g. the
        // runtime failed to spawn). Even then the warm pass is merely an
        // accelerator — record the event and let the serial combine
        // produce the answer.
        if scope_result.is_err() {
            self.panics.fetch_add(1, Ordering::Relaxed);
            self.metrics.panic_caught.incr(1);
        }
    }

    /// Collects distinct reachable subproblems one or two split levels
    /// below the root — the fan-out units for the worker pool. Zero-mass
    /// and already-decided children are excluded: the serial pass never
    /// recurses into them, so warming them would only burn budget.
    fn frontier(&self, root: &E::Ctx, target: usize) -> Vec<E::Ctx> {
        let mut cur = vec![root.clone()];
        for _depth in 0..2 {
            if cur.len() >= target {
                break;
            }
            let mut seen: BTreeSet<Ranges> = BTreeSet::new();
            let mut next = Vec::new();
            for ctx in &cur {
                let ranges = self.est.ranges(ctx).clone();
                if self.query.truth_given(&ranges).is_some() {
                    continue;
                }
                for attr in 0..self.schema.len() {
                    let r = ranges.get(attr);
                    if r.is_point() {
                        continue;
                    }
                    for cut in self.grid.cuts_in(attr, r) {
                        for child_r in [Range::new(r.lo(), cut - 1), Range::new(cut, r.hi())] {
                            if !seen.insert(ranges.with(attr, child_r)) {
                                continue;
                            }
                            let child = self.est.refine(ctx, attr, child_r);
                            if self.est.mass(&child) > 0.0 {
                                next.push(child);
                            }
                        }
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            cur = next;
        }
        cur
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Attribute;
    use crate::cost::measure;
    use crate::dataset::Dataset;
    use crate::prob::CountingEstimator;
    use crate::query::Pred;

    /// The motivating example of §2.1 / Fig. 2: temp and light predicates
    /// with selectivity 1/2 each, costs 1; an extra free "time" attribute
    /// skews selectivities to 1/10 by day/night. The conditional plan
    /// must cost ~1.1 versus 1.5 sequential.
    #[test]
    fn fig2_motivating_example() {
        let schema = Schema::new(vec![
            Attribute::new("temp", 2, 1.0),  // bit: temp > 20C
            Attribute::new("light", 2, 1.0), // bit: light < 100 lux
            Attribute::new("time", 2, 0.0),  // 0 = night, 1 = day; free
        ])
        .unwrap();
        // Night: P(temp-pred)=1/10, P(light-pred)=9/10.
        // Day:   P(temp-pred)=9/10, P(light-pred)=1/10.
        // Marginals are 1/2 each. Encode with 20 rows (10 night, 10 day).
        let mut rows = Vec::new();
        for i in 0..10u16 {
            rows.push(vec![u16::from(i < 1), u16::from(i < 9), 0]); // night
            rows.push(vec![u16::from(i < 9), u16::from(i < 1), 1]); // day
        }
        let data = Dataset::from_rows(&schema, rows).unwrap();
        let query = Query::new(vec![Pred::in_range(0, 1, 1), Pred::in_range(1, 1, 1)]).unwrap();
        let est = CountingEstimator::with_ranges(&data, Ranges::root(&schema));
        let (plan, cost) = ExhaustivePlanner::new().plan_with_cost(&schema, &query, &est).unwrap();
        // Expected: observe time (free); at night evaluate temp first
        // (cost 1 + 1/10·1 = 1.1), by day light first (1.1). Total 1.1.
        assert!((cost - 1.1).abs() < 1e-9, "cost {cost}");
        let rep = measure(&plan, &query, &schema, &data);
        assert!(rep.all_correct);
        assert!((rep.mean_cost - 1.1).abs() < 1e-9);
    }

    #[test]
    fn expected_cost_matches_measured_cost_on_training_data() {
        // With a counting estimator, the model expectation *is* the
        // empirical mean on the training set.
        let schema = Schema::new(vec![
            Attribute::new("a", 4, 7.0),
            Attribute::new("b", 4, 3.0),
            Attribute::new("t", 4, 0.5),
        ])
        .unwrap();
        let mut x = 42u64;
        let mut rng = move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((x >> 33) % 4) as u16
        };
        let rows: Vec<Vec<u16>> = (0..200)
            .map(|_| {
                let t = rng();
                vec![(t + rng() % 2) % 4, (3 - t + rng() % 2) % 4, t]
            })
            .collect();
        let data = Dataset::from_rows(&schema, rows).unwrap();
        let query = Query::new(vec![Pred::in_range(0, 0, 1), Pred::in_range(1, 2, 3)]).unwrap();
        let est = CountingEstimator::with_ranges(&data, Ranges::root(&schema));
        let (plan, cost) = ExhaustivePlanner::new().plan_with_cost(&schema, &query, &est).unwrap();
        let rep = measure(&plan, &query, &schema, &data);
        assert!(rep.all_correct);
        assert!((cost - rep.mean_cost).abs() < 1e-9, "model {cost} vs measured {}", rep.mean_cost);
    }

    #[test]
    fn never_worse_than_optimal_sequential() {
        let schema =
            Schema::new(vec![Attribute::new("a", 3, 5.0), Attribute::new("b", 3, 5.0)]).unwrap();
        let rows: Vec<Vec<u16>> = (0..27).map(|i| vec![i % 3, (i / 3) % 3]).collect();
        let data = Dataset::from_rows(&schema, rows).unwrap();
        let query = Query::new(vec![Pred::in_range(0, 0, 1), Pred::in_range(1, 1, 2)]).unwrap();
        let est = CountingEstimator::with_ranges(&data, Ranges::root(&schema));
        let (_, ex) = ExhaustivePlanner::new().plan_with_cost(&schema, &query, &est).unwrap();
        let (_, seq) = SeqPlanner::optimal().plan_with_cost(&schema, &query, &est).unwrap();
        assert!(ex <= seq + 1e-9, "exhaustive {ex} > optseq {seq}");
    }

    #[test]
    fn budget_exhaustion_degrades_gracefully() {
        let schema = Schema::new(vec![
            Attribute::new("a", 8, 5.0),
            Attribute::new("b", 8, 5.0),
            Attribute::new("c", 8, 1.0),
        ])
        .unwrap();
        let rows: Vec<Vec<u16>> = (0..64).map(|i| vec![i % 8, (i / 8) % 8, i % 8]).collect();
        let data = Dataset::from_rows(&schema, rows).unwrap();
        let query = Query::new(vec![Pred::in_range(0, 2, 5), Pred::in_range(1, 0, 3)]).unwrap();
        let est = CountingEstimator::with_ranges(&data, Ranges::root(&schema));
        let planner = ExhaustivePlanner::new().max_subproblems(3);
        let report = planner.plan_with_report(&schema, &query, &est).unwrap();
        assert!(report.truncated, "a 3-subproblem budget must truncate here");
        let rep = measure(&report.plan, &query, &schema, &data);
        assert!(rep.all_correct, "budget fallback must stay correct");
    }

    #[test]
    fn zero_time_budget_degrades_gracefully() {
        let schema =
            Schema::new(vec![Attribute::new("a", 6, 2.0), Attribute::new("b", 6, 2.0)]).unwrap();
        let rows: Vec<Vec<u16>> = (0..36).map(|i| vec![i % 6, (i / 6) % 6]).collect();
        let data = Dataset::from_rows(&schema, rows).unwrap();
        let query = Query::new(vec![Pred::in_range(0, 1, 4), Pred::in_range(1, 2, 5)]).unwrap();
        let est = CountingEstimator::with_ranges(&data, Ranges::root(&schema));
        let report = ExhaustivePlanner::new()
            .time_budget(Duration::ZERO)
            .plan_with_report(&schema, &query, &est)
            .unwrap();
        assert!(report.truncated);
        assert!(measure(&report.plan, &query, &schema, &data).all_correct);
    }

    #[test]
    fn coarse_grid_dead_end_still_correct() {
        let schema = Schema::new(vec![Attribute::new("a", 16, 5.0)]).unwrap();
        let rows: Vec<Vec<u16>> = (0..16).map(|i| vec![i]).collect();
        let data = Dataset::from_rows(&schema, rows).unwrap();
        // Grid with zero candidate cuts: the planner must fall back to a
        // sequential leaf at the root.
        let grid = SplitGrid::per_attr(&schema, &[0]);
        let query = Query::new(vec![Pred::in_range(0, 3, 9)]).unwrap();
        let est = CountingEstimator::with_ranges(&data, Ranges::root(&schema));
        let (plan, cost) =
            ExhaustivePlanner::with_grid(grid).plan_with_cost(&schema, &query, &est).unwrap();
        assert_eq!(plan, Plan::Seq(SeqOrder::new(vec![0])));
        assert!((cost - 5.0).abs() < 1e-12);
        assert!(measure(&plan, &query, &schema, &data).all_correct);
    }

    #[test]
    fn parallel_matches_serial_bitwise() {
        let schema = Schema::new(vec![
            Attribute::new("a", 5, 4.0),
            Attribute::new("b", 5, 2.0),
            Attribute::new("t", 5, 0.5),
        ])
        .unwrap();
        let mut x = 9u64;
        let mut rng = move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((x >> 33) % 5) as u16
        };
        let rows: Vec<Vec<u16>> = (0..250)
            .map(|_| {
                let t = rng();
                vec![(t + rng() % 2) % 5, (4 - t + rng() % 3) % 5, t]
            })
            .collect();
        let data = Dataset::from_rows(&schema, rows).unwrap();
        let query = Query::new(vec![Pred::in_range(0, 0, 2), Pred::in_range(1, 2, 4)]).unwrap();
        let est = CountingEstimator::with_ranges(&data, Ranges::root(&schema));
        let serial = ExhaustivePlanner::new().plan_with_report(&schema, &query, &est).unwrap();
        assert!(!serial.truncated);
        for threads in [2, 4, 8] {
            let par = ExhaustivePlanner::new()
                .threads(threads)
                .plan_with_report(&schema, &query, &est)
                .unwrap();
            assert!(!par.truncated);
            assert_eq!(
                serial.expected_cost.to_bits(),
                par.expected_cost.to_bits(),
                "threads={threads}: serial {} vs parallel {}",
                serial.expected_cost,
                par.expected_cost
            );
            assert_eq!(serial.plan, par.plan, "threads={threads}");
        }
    }
}
