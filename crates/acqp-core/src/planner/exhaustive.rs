//! The optimal conditional planner — Fig. 5's `EXHAUSTIVEPLAN`.
//!
//! A depth-first dynamic program over range subproblems
//! `Subproblem(φ, R_1, …, R_n)`:
//!
//! * **Base cases** — the ranges alone determine `φ` (leaf `Decided`),
//!   or every query attribute has already been acquired (leaf `Seq` over
//!   the undecided predicates, which costs nothing at runtime because
//!   their attributes are in hand).
//! * **Recursive case** — try every candidate conditioning predicate
//!   `T(X_i ≥ x)` allowed by the split grid, recursing into the two
//!   induced subproblems, weighting by `P(X_i ∈ [a, x−1] | R_1…R_n)`
//!   (Eq. 5).
//! * **Memoization** — optimal results are cached by range vector;
//!   results obtained under a pruning bound are *not* cached, exactly as
//!   the paper's pseudo-code notes.
//! * **Pruning** — a branch is abandoned as soon as its partial cost
//!   reaches the best cost found so far. Unlike the paper's pseudo-code,
//!   which hands the *un-normalized* remaining budget to recursive calls,
//!   we divide the remaining budget by the branch probability
//!   (`(bound − acc) / p`), which keeps the bound sound: a pruned child
//!   provably cannot be part of a better plan.
//!
//! The worst-case complexity is exponential in the number of attributes
//! (the problem is #P-hard, Thm 3.1), so a `max_subproblems` budget
//! bounds the effort: past the budget, remaining subproblems are closed
//! with greedy sequential leaves (the result degrades gracefully toward
//! the heuristic planner instead of running forever).

use std::collections::HashMap;

use crate::attr::Schema;
use crate::error::Result;
use crate::plan::{Plan, SeqOrder};
use crate::prob::Estimator;
use crate::query::Query;
use crate::range::{Range, Ranges};

use super::seq::SeqPlanner;
use super::spsf::SplitGrid;

/// The exhaustive dynamic-programming planner of Fig. 5.
#[derive(Debug, Clone)]
pub struct ExhaustivePlanner {
    grid: Option<SplitGrid>,
    max_subproblems: usize,
    cost_model: crate::costmodel::CostModel,
}

impl Default for ExhaustivePlanner {
    fn default() -> Self {
        Self::new()
    }
}

impl ExhaustivePlanner {
    /// Planner over the unrestricted split grid (every cut of every
    /// attribute) with a default effort budget.
    pub fn new() -> Self {
        ExhaustivePlanner {
            grid: None,
            max_subproblems: 2_000_000,
            cost_model: crate::costmodel::CostModel::PerAttribute,
        }
    }

    /// Planner restricted to the given candidate split grid (§4.3).
    pub fn with_grid(grid: SplitGrid) -> Self {
        ExhaustivePlanner { grid: Some(grid), ..Self::new() }
    }

    /// Uses order-dependent acquisition costs (§7 "Complex acquisition
    /// costs"), e.g. shared-board power-ups.
    pub fn with_cost_model(mut self, model: crate::costmodel::CostModel) -> Self {
        self.cost_model = model;
        self
    }

    /// Sets the subproblem budget; past it, open subproblems are closed
    /// with greedy sequential leaves.
    pub fn max_subproblems(mut self, n: usize) -> Self {
        self.max_subproblems = n;
        self
    }

    /// Finds the minimum expected-cost conditional plan.
    pub fn plan<E: Estimator>(&self, schema: &Schema, query: &Query, est: &E) -> Result<Plan> {
        self.plan_with_cost(schema, query, est).map(|(p, _)| p)
    }

    /// Like [`ExhaustivePlanner::plan`], also returning the model-expected cost.
    pub fn plan_with_cost<E: Estimator>(
        &self,
        schema: &Schema,
        query: &Query,
        est: &E,
    ) -> Result<(Plan, f64)> {
        let grid = match &self.grid {
            Some(g) => g.clone(),
            None => SplitGrid::all(schema),
        };
        let mut search = Search {
            schema,
            query,
            est,
            grid,
            memo: HashMap::new(),
            lb_memo: HashMap::new(),
            seq: SeqPlanner::greedy().with_cost_model(self.cost_model.clone()),
            model: self.cost_model.clone(),
            budget: self.max_subproblems,
            used: 0,
        };
        let root = est.root();
        let (cost, plan) = search
            .solve(&root, f64::INFINITY)?
            .expect("unbounded search always yields a plan");
        Ok((plan, cost))
    }

    /// Number of memoized subproblems the last call would create — not
    /// tracked across calls; exposed for the scalability bench via
    /// [`ExhaustivePlanner::plan_with_stats`].
    pub fn plan_with_stats<E: Estimator>(
        &self,
        schema: &Schema,
        query: &Query,
        est: &E,
    ) -> Result<(Plan, f64, usize)> {
        let grid = match &self.grid {
            Some(g) => g.clone(),
            None => SplitGrid::all(schema),
        };
        let mut search = Search {
            schema,
            query,
            est,
            grid,
            memo: HashMap::new(),
            lb_memo: HashMap::new(),
            seq: SeqPlanner::greedy().with_cost_model(self.cost_model.clone()),
            model: self.cost_model.clone(),
            budget: self.max_subproblems,
            used: 0,
        };
        let root = est.root();
        let (cost, plan) = search
            .solve(&root, f64::INFINITY)?
            .expect("unbounded search always yields a plan");
        Ok((plan, cost, search.used))
    }
}

struct Search<'a, E: Estimator> {
    schema: &'a Schema,
    query: &'a Query,
    est: &'a E,
    grid: SplitGrid,
    memo: HashMap<Ranges, (f64, Plan)>,
    /// Proven lower bounds for subproblems that were pruned: a prior
    /// `solve(…, bound)` returning `None` proves `opt ≥ bound`, so later
    /// visits with an equal-or-smaller bound can return immediately
    /// instead of re-exploring.
    lb_memo: HashMap<Ranges, f64>,
    seq: SeqPlanner,
    model: crate::costmodel::CostModel,
    budget: usize,
    used: usize,
}

impl<E: Estimator> Search<'_, E> {
    /// Returns `Ok(None)` when every plan for this subproblem provably
    /// costs at least `bound`; otherwise the optimal `(cost, plan)`.
    fn solve(&mut self, ctx: &E::Ctx, bound: f64) -> Result<Option<(f64, Plan)>> {
        let ranges = self.est.ranges(ctx).clone();

        // Base case 1: ranges decide the query.
        if let Some(b) = self.query.truth_given(&ranges) {
            return Ok(Some((0.0, Plan::Decided(b))));
        }
        // Base case 2: every query attribute acquired — the residual
        // predicates evaluate for free on values already in hand.
        if self
            .query
            .preds()
            .iter()
            .all(|p| !ranges.attr_unacquired(self.schema, p.attr()))
        {
            let order = self.query.undecided(&ranges);
            return Ok(Some((0.0, Plan::Seq(SeqOrder::new(order)))));
        }
        if let Some((c, p)) = self.memo.get(&ranges) {
            return Ok(Some((*c, p.clone())));
        }
        if let Some(&lb) = self.lb_memo.get(&ranges) {
            if lb >= bound {
                return Ok(None);
            }
        }

        self.used += 1;
        if self.used > self.budget {
            // Effort budget exhausted: close this subproblem with a
            // greedy sequential leaf. Not cached (it is not optimal).
            let (cost, plan) = self.seq_leaf(ctx, &ranges)?;
            return Ok(Some((cost, plan)));
        }

        // Branch-and-bound incumbent: a sequential leaf is itself a valid
        // plan for this subproblem (it is expressible as a chain of
        // splits at predicate endpoints), so its cost is a sound initial
        // upper bound. This is the "more elaborate pruning" §3.2 alludes
        // to, and it shrinks the explored space by orders of magnitude.
        let (seq_cost, seq_plan) = self.seq_leaf(ctx, &ranges)?;
        let mut best: Option<(f64, Plan)> =
            if seq_cost < bound { Some((seq_cost, seq_plan)) } else { None };
        let mut bound_local = bound.min(seq_cost);

        // Try cheap conditioning attributes first: good incumbents found
        // early make the admissible lower-bound pruning below bite.
        let mask = crate::costmodel::acquired_mask(self.schema, &ranges);
        let mut attr_order: Vec<usize> = (0..self.schema.len())
            .filter(|&a| !ranges.get(a).is_point())
            .collect();
        attr_order.sort_by(|&a, &b| {
            self.model
                .cost(self.schema, a, mask)
                .partial_cmp(&self.model.cost(self.schema, b, mask))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });

        for attr in attr_order {
            let r = ranges.get(attr);
            let c0 = self.model.cost(self.schema, attr, mask);
            if c0 >= bound_local {
                continue;
            }
            let mut hist: Option<Vec<f64>> = None;
            let cuts: Vec<u16> = self.grid.cuts_in(attr, r).collect();
            for cut in cuts {
                let h = hist.get_or_insert_with(|| self.est.hist(ctx, attr));
                let p_lo: f64 =
                    h[usize::from(r.lo())..usize::from(cut)].iter().sum::<f64>().clamp(0.0, 1.0);
                let p_hi = 1.0 - p_lo;
                let lo_ranges = ranges.with(attr, Range::new(r.lo(), cut - 1));
                let hi_ranges = ranges.with(attr, Range::new(cut, r.hi()));
                // Admissible lower bounds: every completion path of a
                // subproblem with an undecided predicate must acquire at
                // least its cheapest undecided predicate attribute.
                let lb_lo = self.lower_bound(&lo_ranges);
                let lb_hi = self.lower_bound(&hi_ranges);
                let mut acc = c0;
                if acc + p_lo * lb_lo + p_hi * lb_hi >= bound_local {
                    continue;
                }

                let lo_plan;
                if p_lo > 0.0 {
                    let child = self.est.refine(ctx, attr, Range::new(r.lo(), cut - 1));
                    let child_bound = (bound_local - acc - p_hi * lb_hi) / p_lo;
                    match self.solve(&child, child_bound)? {
                        None => continue,
                        Some((c, p)) => {
                            acc += p_lo * c;
                            lo_plan = p;
                        }
                    }
                } else {
                    // Zero-mass branch (a "grayed out" region): still
                    // needs a valid plan in case the test distribution
                    // reaches it.
                    lo_plan = self.zero_mass_leaf(&lo_ranges);
                }
                if acc + p_hi * lb_hi >= bound_local {
                    continue;
                }

                let hi_plan;
                if p_hi > 0.0 {
                    let child = self.est.refine(ctx, attr, Range::new(cut, r.hi()));
                    match self.solve(&child, (bound_local - acc) / p_hi)? {
                        None => continue,
                        Some((c, p)) => {
                            acc += p_hi * c;
                            hi_plan = p;
                        }
                    }
                } else {
                    hi_plan = self.zero_mass_leaf(&hi_ranges);
                }
                if acc < bound_local {
                    bound_local = acc;
                    best = Some((acc, Plan::split(attr, cut, lo_plan, hi_plan)));
                }
            }
        }

        match best {
            Some((c, p)) => {
                // `best` beat the caller's bound, so pruning never
                // removed a cheaper candidate: this is the optimum and
                // may be cached (Fig. 5 caches exactly in this case).
                self.memo.insert(ranges, (c, p.clone()));
                Ok(Some((c, p)))
            }
            None => {
                // Nothing under `bound` exists: record the proof so a
                // revisit with the same or smaller bound is free.
                let slot = self.lb_memo.entry(ranges).or_insert(f64::NEG_INFINITY);
                *slot = slot.max(bound);
                Ok(None)
            }
        }
    }

    /// Admissible lower bound on the optimal completion cost of a
    /// subproblem: unless the ranges already decide `φ`, every path to a
    /// decided leaf must acquire at least the cheapest attribute of an
    /// undecided predicate.
    fn lower_bound(&self, ranges: &Ranges) -> f64 {
        if self.query.truth_given(ranges).is_some() {
            return 0.0;
        }
        let mask = crate::costmodel::acquired_mask(self.schema, ranges);
        let lb = self
            .query
            .preds()
            .iter()
            .filter(|p| p.truth_given(ranges.get(p.attr())).is_none())
            .map(|p| self.model.min_cost(self.schema, p.attr(), mask))
            .fold(f64::INFINITY, f64::min);
        if lb.is_finite() {
            lb
        } else {
            0.0
        }
    }

    fn seq_leaf(&self, ctx: &E::Ctx, ranges: &Ranges) -> Result<(f64, Plan)> {
        let table = self.est.truth_table(ctx, self.query);
        let (order, cost) = self.seq.order_for(self.schema, self.query, ranges, &table)?;
        Ok((cost, Plan::Seq(SeqOrder::new(order))))
    }

    fn zero_mass_leaf(&self, ranges: &Ranges) -> Plan {
        match self.query.truth_given(ranges) {
            Some(b) => Plan::Decided(b),
            None => Plan::Seq(SeqOrder::new(self.query.undecided(ranges))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Attribute;
    use crate::cost::measure;
    use crate::dataset::Dataset;
    use crate::prob::CountingEstimator;
    use crate::query::Pred;

    /// The motivating example of §2.1 / Fig. 2: temp and light predicates
    /// with selectivity 1/2 each, costs 1; an extra free "time" attribute
    /// skews selectivities to 1/10 by day/night. The conditional plan
    /// must cost ~1.1 versus 1.5 sequential.
    #[test]
    fn fig2_motivating_example() {
        let schema = Schema::new(vec![
            Attribute::new("temp", 2, 1.0),  // bit: temp > 20C
            Attribute::new("light", 2, 1.0), // bit: light < 100 lux
            Attribute::new("time", 2, 0.0),  // 0 = night, 1 = day; free
        ])
        .unwrap();
        // Night: P(temp-pred)=1/10, P(light-pred)=9/10.
        // Day:   P(temp-pred)=9/10, P(light-pred)=1/10.
        // Marginals are 1/2 each. Encode with 20 rows (10 night, 10 day).
        let mut rows = Vec::new();
        for i in 0..10u16 {
            rows.push(vec![u16::from(i < 1), u16::from(i < 9), 0]); // night
            rows.push(vec![u16::from(i < 9), u16::from(i < 1), 1]); // day
        }
        let data = Dataset::from_rows(&schema, rows).unwrap();
        let query =
            Query::new(vec![Pred::in_range(0, 1, 1), Pred::in_range(1, 1, 1)]).unwrap();
        let est = CountingEstimator::with_ranges(&data, Ranges::root(&schema));
        let (plan, cost) = ExhaustivePlanner::new()
            .plan_with_cost(&schema, &query, &est)
            .unwrap();
        // Expected: observe time (free); at night evaluate temp first
        // (cost 1 + 1/10·1 = 1.1), by day light first (1.1). Total 1.1.
        assert!((cost - 1.1).abs() < 1e-9, "cost {cost}");
        let rep = measure(&plan, &query, &schema, &data);
        assert!(rep.all_correct);
        assert!((rep.mean_cost - 1.1).abs() < 1e-9);
    }

    #[test]
    fn expected_cost_matches_measured_cost_on_training_data() {
        // With a counting estimator, the model expectation *is* the
        // empirical mean on the training set.
        let schema = Schema::new(vec![
            Attribute::new("a", 4, 7.0),
            Attribute::new("b", 4, 3.0),
            Attribute::new("t", 4, 0.5),
        ])
        .unwrap();
        let mut x = 42u64;
        let mut rng = move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((x >> 33) % 4) as u16
        };
        let rows: Vec<Vec<u16>> = (0..200)
            .map(|_| {
                let t = rng();
                vec![(t + rng() % 2) % 4, (3 - t + rng() % 2) % 4, t]
            })
            .collect();
        let data = Dataset::from_rows(&schema, rows).unwrap();
        let query =
            Query::new(vec![Pred::in_range(0, 0, 1), Pred::in_range(1, 2, 3)]).unwrap();
        let est = CountingEstimator::with_ranges(&data, Ranges::root(&schema));
        let (plan, cost) = ExhaustivePlanner::new()
            .plan_with_cost(&schema, &query, &est)
            .unwrap();
        let rep = measure(&plan, &query, &schema, &data);
        assert!(rep.all_correct);
        assert!(
            (cost - rep.mean_cost).abs() < 1e-9,
            "model {cost} vs measured {}",
            rep.mean_cost
        );
    }

    #[test]
    fn never_worse_than_optimal_sequential() {
        let schema = Schema::new(vec![
            Attribute::new("a", 3, 5.0),
            Attribute::new("b", 3, 5.0),
        ])
        .unwrap();
        let rows: Vec<Vec<u16>> =
            (0..27).map(|i| vec![i % 3, (i / 3) % 3]).collect();
        let data = Dataset::from_rows(&schema, rows).unwrap();
        let query =
            Query::new(vec![Pred::in_range(0, 0, 1), Pred::in_range(1, 1, 2)]).unwrap();
        let est = CountingEstimator::with_ranges(&data, Ranges::root(&schema));
        let (_, ex) = ExhaustivePlanner::new().plan_with_cost(&schema, &query, &est).unwrap();
        let (_, seq) = SeqPlanner::optimal().plan_with_cost(&schema, &query, &est).unwrap();
        assert!(ex <= seq + 1e-9, "exhaustive {ex} > optseq {seq}");
    }

    #[test]
    fn budget_exhaustion_degrades_gracefully() {
        let schema = Schema::new(vec![
            Attribute::new("a", 8, 5.0),
            Attribute::new("b", 8, 5.0),
            Attribute::new("c", 8, 1.0),
        ])
        .unwrap();
        let rows: Vec<Vec<u16>> = (0..64).map(|i| vec![i % 8, (i / 8) % 8, i % 8]).collect();
        let data = Dataset::from_rows(&schema, rows).unwrap();
        let query =
            Query::new(vec![Pred::in_range(0, 2, 5), Pred::in_range(1, 0, 3)]).unwrap();
        let est = CountingEstimator::with_ranges(&data, Ranges::root(&schema));
        let planner = ExhaustivePlanner::new().max_subproblems(3);
        let (plan, _) = planner.plan_with_cost(&schema, &query, &est).unwrap();
        let rep = measure(&plan, &query, &schema, &data);
        assert!(rep.all_correct, "budget fallback must stay correct");
    }

    #[test]
    fn coarse_grid_dead_end_still_correct() {
        let schema = Schema::new(vec![Attribute::new("a", 16, 5.0)]).unwrap();
        let rows: Vec<Vec<u16>> = (0..16).map(|i| vec![i]).collect();
        let data = Dataset::from_rows(&schema, rows).unwrap();
        // Grid with zero candidate cuts: the planner must fall back to a
        // sequential leaf at the root.
        let grid = SplitGrid::per_attr(&schema, &[0]);
        let query = Query::new(vec![Pred::in_range(0, 3, 9)]).unwrap();
        let est = CountingEstimator::with_ranges(&data, Ranges::root(&schema));
        let (plan, cost) =
            ExhaustivePlanner::with_grid(grid).plan_with_cost(&schema, &query, &est).unwrap();
        assert_eq!(plan, Plan::Seq(SeqOrder::new(vec![0])));
        assert!((cost - 5.0).abs() < 1e-12);
        assert!(measure(&plan, &query, &schema, &data).all_correct);
    }
}
