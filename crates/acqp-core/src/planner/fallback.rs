//! The degraded-mode fallback chain: planning that never fails.
//!
//! A deployed basestation cannot afford a planner that errors, panics,
//! or runs unbounded — a query with no plan acquires nothing. The
//! [`FallbackPlanner`] therefore descends a ladder of strictly simpler
//! plan producers until one succeeds within its stage budget:
//!
//! ```text
//! Exhaustive  — optimal DP (Fig. 5); needs estimator + search budget
//!    ↓ truncated / panicked / errored
//! GreedyPlan  — polynomial conditional heuristic (Figs. 6–7)
//!    ↓ truncated / panicked / errored
//! GreedySeq   — greedy sequential ordering (§4.1.2); no search loop
//!    ↓ panicked / errored
//! Naive       — cost-ascending predicate sequence; pure function of
//!               the schema, cannot fail
//! ```
//!
//! Every rung yields an *executable, correct* plan — correctness of a
//! conditional plan never depends on the estimator, only its expected
//! cost does — so descending trades efficiency for survival. The rung
//! that produced the final plan is recorded in
//! [`PlanReport::degradation`] and in the `fallback.*` obs taxonomy;
//! each abandoned rung increments a `fallback.descend.*` counter naming
//! why (budget truncation, caught panic, or error).
//!
//! Estimator health is handled one level up: [`FallbackPlanner::plan_data`]
//! inspects the historical dataset and substitutes uniform-independence
//! priors ([`IndependenceEstimator`] over an empty fit) when the
//! statistics are missing, so corrupt or absent history degrades the
//! plan, never the process.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use acqp_obs::Recorder;

use crate::attr::Schema;
use crate::costmodel::CostModel;
use crate::dataset::Dataset;
use crate::error::Result;
use crate::plan::{Plan, SeqOrder};
use crate::prob::{CountingEstimator, Estimator, IndependenceEstimator};
use crate::query::Query;
use crate::range::Ranges;

use super::budget::{DegradationLevel, PlanReport};
use super::exhaustive::ExhaustivePlanner;
use super::greedy::GreedyPlanner;
use super::seq::SeqPlanner;
use super::spsf::SplitGrid;
use super::OrdF64;

/// A planner that walks the degradation ladder and always returns a
/// plan (note: [`FallbackPlanner::plan_with_report`] returns a bare
/// [`PlanReport`], not a `Result`).
#[derive(Debug, Clone)]
pub struct FallbackPlanner {
    grid: Option<SplitGrid>,
    max_splits: usize,
    stage_subproblems: usize,
    stage_budget: Option<Duration>,
    threads: usize,
    cost_model: CostModel,
    recorder: Recorder,
}

impl Default for FallbackPlanner {
    fn default() -> Self {
        Self::new()
    }
}

impl FallbackPlanner {
    /// A ladder with generous defaults: an exhaustive stage capped at
    /// 1M subproblems, a greedy stage allowing 8 conditioning splits,
    /// no wall-clock deadline.
    pub fn new() -> Self {
        FallbackPlanner {
            grid: None,
            max_splits: 8,
            stage_subproblems: 1_000_000,
            stage_budget: None,
            threads: 1,
            cost_model: CostModel::PerAttribute,
            recorder: Recorder::disabled(),
        }
    }

    /// Restricts candidate split points for the conditional stages.
    pub fn with_grid(mut self, grid: SplitGrid) -> Self {
        self.grid = Some(grid);
        self
    }

    /// Split budget of the greedy conditional stage.
    pub fn max_splits(mut self, k: usize) -> Self {
        self.max_splits = k;
        self
    }

    /// Subproblem cap applied to the exhaustive stage; exceeding it
    /// descends a rung instead of returning the truncated plan.
    pub fn max_subproblems(mut self, n: usize) -> Self {
        self.stage_subproblems = n;
        self
    }

    /// Per-stage wall-clock deadline: each conditional stage gets this
    /// long before the ladder descends past it.
    pub fn stage_budget(mut self, d: Duration) -> Self {
        self.stage_budget = Some(d);
        self
    }

    /// Threads for the conditional stages' parallel search.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// Order-dependent acquisition costs (§7).
    pub fn with_cost_model(mut self, model: CostModel) -> Self {
        self.cost_model = model;
        self
    }

    /// Attaches an observability recorder for the `fallback.*` taxonomy.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Plans against a historical dataset, first checking estimator
    /// health: an empty dataset (statistics deleted, corrupt, or never
    /// collected) cannot support counting estimation, so the ladder
    /// runs over uniform-independence priors instead
    /// (`fallback.uniform_priors` counts the substitution).
    pub fn plan_data(&self, schema: &Schema, query: &Query, data: &Dataset) -> PlanReport {
        if data.is_empty() {
            self.recorder.counter("fallback.uniform_priors").incr(1);
            let est = IndependenceEstimator::new(data, Ranges::root(schema));
            return self.plan_with_report(schema, query, &est);
        }
        let est = CountingEstimator::with_ranges(data, Ranges::root(schema));
        self.plan_with_report(schema, query, &est)
    }

    /// Walks the ladder over an arbitrary estimator. Infallible: the
    /// bottom rung is a pure function of schema and query.
    pub fn plan_with_report<E: Estimator>(
        &self,
        schema: &Schema,
        query: &Query,
        est: &E,
    ) -> PlanReport {
        let mut panics = 0usize;

        // Rung 1 — exhaustive DP under the stage budget.
        let mut ex = match &self.grid {
            Some(g) => ExhaustivePlanner::with_grid(g.clone()),
            None => ExhaustivePlanner::new(),
        }
        .max_subproblems(self.stage_subproblems)
        .threads(self.threads)
        .with_cost_model(self.cost_model.clone())
        .with_recorder(self.recorder.clone());
        if let Some(d) = self.stage_budget {
            ex = ex.time_budget(d);
        }
        match self.try_stage("exhaustive", &mut panics, || ex.plan_with_report(schema, query, est))
        {
            Some(r) if !r.truncated => {
                return self.finish(r, DegradationLevel::None, panics);
            }
            Some(_) => self.descend("exhaustive", "truncated"),
            None => {}
        }

        // Rung 2 — greedy conditional heuristic.
        let mut gr = GreedyPlanner::new(self.max_splits)
            .threads(self.threads)
            .with_cost_model(self.cost_model.clone())
            .with_recorder(self.recorder.clone());
        if let Some(g) = &self.grid {
            gr = gr.with_grid(g.clone());
        }
        if let Some(d) = self.stage_budget {
            gr = gr.time_budget(d);
        }
        match self.try_stage("greedy_plan", &mut panics, || gr.plan_with_report(schema, query, est))
        {
            Some(r) if !r.truncated => {
                return self.finish(r, DegradationLevel::GreedyPlan, panics);
            }
            Some(_) => self.descend("greedy_plan", "truncated"),
            None => {}
        }

        // Rung 3 — greedy sequential ordering; no search loop left to
        // budget, only estimator failures can push past it.
        let seq = SeqPlanner::greedy().with_cost_model(self.cost_model.clone());
        if let Some((plan, cost)) =
            self.try_stage("greedy_seq", &mut panics, || seq.plan_with_cost(schema, query, est))
        {
            let report = PlanReport {
                plan,
                expected_cost: cost,
                subproblems: 0,
                truncated: false,
                worker_panics: 0,
                degradation: DegradationLevel::GreedySeq,
            };
            return self.finish(report, DegradationLevel::GreedySeq, panics);
        }

        // Rung 4 — naive cost-ascending sequence. Never consults the
        // estimator, so nothing below the ladder can take it down.
        let report = self.naive_report(schema, query);
        self.finish(report, DegradationLevel::Naive, panics)
    }

    /// Runs one rung under panic isolation. `None` means the rung was
    /// abandoned (panicked or errored) and the appropriate
    /// `fallback.descend.*` counter has been recorded.
    fn try_stage<T>(
        &self,
        stage: &str,
        panics: &mut usize,
        f: impl FnOnce() -> Result<T>,
    ) -> Option<T> {
        match catch_unwind(AssertUnwindSafe(f)) {
            Ok(Ok(v)) => Some(v),
            Ok(Err(_)) => {
                self.descend(stage, "error");
                None
            }
            Err(_) => {
                *panics += 1;
                self.recorder.counter("fallback.panic.caught").incr(1);
                self.descend(stage, "panic");
                None
            }
        }
    }

    fn descend(&self, stage: &str, why: &str) {
        self.recorder.counter(&format!("fallback.descend.{stage}.{why}")).incr(1);
        self.recorder.flight().emit(
            0,
            0,
            "plan.fallback.descend",
            &[("stage", stage.into()), ("why", why.into())],
        );
    }

    fn finish(&self, mut report: PlanReport, level: DegradationLevel, panics: usize) -> PlanReport {
        report.degradation = level;
        report.worker_panics += panics;
        let stage = match level {
            DegradationLevel::None => "exhaustive",
            DegradationLevel::GreedyPlan => "greedy_plan",
            DegradationLevel::GreedySeq => "greedy_seq",
            DegradationLevel::Naive => "naive",
        };
        self.recorder.counter(&format!("fallback.stage.{stage}")).incr(1);
        self.recorder.flight().emit(
            0,
            0,
            "plan.fallback.stage",
            &[("stage", stage.into()), ("cost", report.expected_cost.into())],
        );
        if level != DegradationLevel::None {
            self.recorder.gauge("fallback.degradation_level", level as u8 as f64);
        }
        report
    }

    /// The bottom rung: evaluate every predicate in ascending
    /// acquisition-cost order (ties by predicate index). The reported
    /// expected cost is the worst case — every predicate evaluated on
    /// every tuple — which is the only sound estimate available without
    /// an estimator.
    fn naive_report(&self, schema: &Schema, query: &Query) -> PlanReport {
        let mut order: Vec<usize> = (0..query.len()).collect();
        order.sort_by(|&a, &b| {
            let ca = self.cost_model.cost(schema, query.pred(a).attr(), 0);
            let cb = self.cost_model.cost(schema, query.pred(b).attr(), 0);
            OrdF64(ca).cmp(&OrdF64(cb)).then(a.cmp(&b))
        });
        let mut mask = 0u64;
        let mut cost = 0.0;
        for &j in &order {
            let attr = query.pred(j).attr();
            cost += self.cost_model.cost(schema, attr, mask);
            mask |= 1u64 << attr;
        }
        PlanReport {
            plan: Plan::Seq(SeqOrder::new(order)),
            expected_cost: cost,
            subproblems: 0,
            truncated: false,
            worker_panics: 0,
            degradation: DegradationLevel::Naive,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Attribute;
    use crate::cost::measure;
    use crate::query::Pred;

    fn setup() -> (Schema, Dataset, Query) {
        let schema = Schema::new(vec![
            Attribute::new("a", 4, 10.0),
            Attribute::new("b", 4, 5.0),
            Attribute::new("t", 4, 0.5),
        ])
        .unwrap();
        let rows: Vec<Vec<u16>> = (0..64).map(|i| vec![i % 4, (i / 4) % 4, (i / 16) % 4]).collect();
        let data = Dataset::from_rows(&schema, rows).unwrap();
        let query = Query::new(vec![Pred::in_range(0, 0, 1), Pred::in_range(1, 2, 3)]).unwrap();
        (schema, data, query)
    }

    #[test]
    fn healthy_ladder_stays_on_top_rung() {
        let (schema, data, query) = setup();
        let report = FallbackPlanner::new().plan_data(&schema, &query, &data);
        assert_eq!(report.degradation, DegradationLevel::None);
        assert_eq!(report.worker_panics, 0);
        assert!(measure(&report.plan, &query, &schema, &data).all_correct);
    }

    #[test]
    fn empty_statistics_use_uniform_priors_but_still_plan() {
        use acqp_obs::{NoopSink, Recorder};
        let (schema, _, query) = setup();
        let empty = Dataset::from_rows(&schema, vec![]).unwrap();
        let rec = Recorder::new(std::sync::Arc::new(NoopSink));
        let report =
            FallbackPlanner::new().with_recorder(rec.clone()).plan_data(&schema, &query, &empty);
        // Uniform priors still drive a full ladder; the top rung works.
        assert_eq!(report.degradation, DegradationLevel::None);
        let (_, data, _) = setup();
        assert!(measure(&report.plan, &query, &schema, &data).all_correct);
        assert_eq!(rec.drain().counter("fallback.uniform_priors"), 1);
    }

    #[test]
    fn naive_rung_is_estimator_free_and_cost_ordered() {
        let (schema, data, query) = setup();
        let report = FallbackPlanner::new().naive_report(&schema, &query);
        assert_eq!(report.degradation, DegradationLevel::Naive);
        // b (cost 5) before a (cost 10): predicate 1 first.
        assert_eq!(report.plan, Plan::Seq(SeqOrder::new(vec![1, 0])));
        assert!((report.expected_cost - 15.0).abs() < 1e-12);
        assert!(measure(&report.plan, &query, &schema, &data).all_correct);
    }

    #[test]
    fn degradation_levels_order_by_severity() {
        assert!(DegradationLevel::None < DegradationLevel::GreedyPlan);
        assert!(DegradationLevel::GreedyPlan < DegradationLevel::GreedySeq);
        assert!(DegradationLevel::GreedySeq < DegradationLevel::Naive);
        assert_eq!(DegradationLevel::default(), DegradationLevel::None);
        assert_eq!(DegradationLevel::Naive.as_str(), "naive");
    }
}
