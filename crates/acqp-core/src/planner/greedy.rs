//! The polynomial-time greedy conditional planner — Figs. 6 and 7.
//!
//! The planner maintains a current plan whose leaves each hold (a) the
//! best *sequential* plan for that leaf's subproblem and (b) the locally
//! optimal binary split (`GREEDYSPLIT`): the conditioning predicate
//! `T(X_i ≥ x)` minimizing
//!
//! ```text
//! C'_i + P(X_i < x | R) · Ĵ(lo) + P(X_i ≥ x | R) · Ĵ(hi)
//! ```
//!
//! where `Ĵ` is the expected cost of the (pluggable) sequential planner
//! on the induced subproblem (Eq. 6). Leaves wait in a priority queue
//! keyed by the expected gain of applying their split,
//! `P(R_1, …, R_n) · (C(Ĵ) − C̄)`, and the highest-gain leaf is expanded
//! until `max_splits` conditioning predicates have been inserted (the
//! plan-size bound motivated by mote RAM in §2.4) or no leaf's split
//! improves on its sequential plan.
//!
//! The split search sweeps candidate cuts left to right, deriving each
//! side's conditioned truth distribution by prefix-merging per-value
//! tables ([`Estimator::truth_by_value`]) — one pass over the leaf's
//! support per attribute instead of one per candidate cut.
//!
//! With [`GreedyPlanner::threads`] > 1 the per-attribute cut sweeps of
//! `GREEDYSPLIT` run concurrently on a scoped pool. Each attribute's
//! sweep is self-contained (no cross-attribute pruning), and the winner
//! is reduced in attribute-index order with a strict `<`, so the chosen
//! split — and therefore the whole plan — is bit-identical to the
//! single-threaded search.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use acqp_obs::{Counter, Recorder};

use crate::attr::Schema;
use crate::error::Result;
use crate::plan::{Plan, SeqOrder};
use crate::prob::{Estimator, TruthAccum, TruthTable};
use crate::query::Query;
use crate::range::{Range, Ranges};
use crate::sync::NoPoisonMutex;

use super::budget::{Deadline, DegradationLevel, PlanReport};
use super::seq::{SeqAlgorithm, SeqPlanner};
use super::spsf::SplitGrid;
use super::OrdF64;

/// The greedy conditional planner (`GREEDYPLAN`, Fig. 7).
///
/// ```
/// use acqp_core::prelude::*;
///
/// // A free clock perfectly predicts two expensive sensors.
/// let schema = Schema::new(vec![
///     Attribute::new("a", 2, 100.0),
///     Attribute::new("b", 2, 100.0),
///     Attribute::new("clock", 2, 0.0),
/// ])?;
/// let rows: Vec<Vec<u16>> = (0..40).map(|i| {
///     let t = i % 2;
///     vec![t, 1 - t, t]
/// }).collect();
/// let data = Dataset::from_rows(&schema, rows)?;
/// let query = Query::new(vec![Pred::in_range(0, 1, 1), Pred::in_range(1, 1, 1)])?;
///
/// let est = CountingEstimator::with_ranges(&data, Ranges::root(&schema));
/// let (plan, cost) = GreedyPlanner::new(4).plan_with_cost(&schema, &query, &est)?;
/// // The plan reads the clock and probes the sensor that will fail:
/// // exactly one expensive acquisition per tuple.
/// assert!(plan.split_count() >= 1);
/// assert!((cost - 100.0).abs() < 1e-9);
/// assert!(measure(&plan, &query, &schema, &data).all_correct);
/// # Ok::<(), acqp_core::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct GreedyPlanner {
    max_splits: usize,
    grid: Option<SplitGrid>,
    base: SeqAlgorithm,
    min_support: usize,
    min_gain: f64,
    threads: usize,
    time_budget: Option<Duration>,
    cost_model: crate::costmodel::CostModel,
    recorder: Recorder,
}

impl GreedyPlanner {
    /// Planner allowing at most `max_splits` conditioning predicates
    /// (the paper's `Heuristic-k`), choosing base sequential plans
    /// automatically (`OptSeq` for small queries, `GreedySeq` for large
    /// ones) over the unrestricted split grid.
    pub fn new(max_splits: usize) -> Self {
        GreedyPlanner {
            max_splits,
            grid: None,
            base: SeqAlgorithm::Auto,
            min_support: 2,
            min_gain: 1e-9,
            threads: 1,
            time_budget: None,
            cost_model: crate::costmodel::CostModel::PerAttribute,
            recorder: Recorder::disabled(),
        }
    }

    /// Attaches an observability recorder: leaf expansions, split-point
    /// evaluations and deadline truncation are counted through it (see
    /// `DESIGN.md` §8). Metrics never influence which leaf expands.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Number of threads for the `GREEDYSPLIT` attribute sweeps. The
    /// produced plan is bit-identical for any thread count.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// Adds a wall-clock deadline: once elapsed, no further leaves are
    /// expanded and the best-so-far plan is returned (flagged truncated
    /// in [`GreedyPlanner::plan_with_report`] when gainful leaves
    /// remained).
    pub fn time_budget(mut self, d: Duration) -> Self {
        self.time_budget = Some(d);
        self
    }

    /// Uses order-dependent acquisition costs (§7 "Complex acquisition
    /// costs"), e.g. shared-board power-ups.
    pub fn with_cost_model(mut self, model: crate::costmodel::CostModel) -> Self {
        self.cost_model = model;
        self
    }

    /// Restricts candidate split points (§4.3).
    pub fn with_grid(mut self, grid: SplitGrid) -> Self {
        self.grid = Some(grid);
        self
    }

    /// Selects the sequential algorithm used for base plans (the paper
    /// uses `OptSeq` on the Lab dataset, `GreedySeq` on Garden).
    pub fn with_base(mut self, base: SeqAlgorithm) -> Self {
        self.base = base;
        self
    }

    /// Leaves backed by fewer than `n` historical tuples are not split
    /// further (variance guard; §7 discusses how support halves with
    /// every split). Default 2.
    pub fn with_min_support(mut self, n: usize) -> Self {
        self.min_support = n;
        self
    }

    /// A split is only applied when its expected whole-plan gain
    /// exceeds `gain` cost units (a regularizer against fitting
    /// training-set noise: marginal splits rarely survive the
    /// train/test distribution shift §7 warns about). Default ~0.
    pub fn with_min_gain(mut self, gain: f64) -> Self {
        self.min_gain = gain.max(1e-9);
        self
    }

    /// The configured split budget.
    pub fn max_splits(&self) -> usize {
        self.max_splits
    }

    /// Builds the conditional plan.
    pub fn plan<E: Estimator>(&self, schema: &Schema, query: &Query, est: &E) -> Result<Plan> {
        self.plan_with_cost(schema, query, est).map(|(p, _)| p)
    }

    /// Builds the conditional plan, returning its model-expected cost.
    pub fn plan_with_cost<E: Estimator>(
        &self,
        schema: &Schema,
        query: &Query,
        est: &E,
    ) -> Result<(Plan, f64)> {
        self.plan_with_report(schema, query, est).map(|r| (r.plan, r.expected_cost))
    }

    /// Full search outcome: plan, expected cost, leaf expansions
    /// applied, and whether the deadline cut the expansion short.
    pub fn plan_with_report<E: Estimator>(
        &self,
        schema: &Schema,
        query: &Query,
        est: &E,
    ) -> Result<PlanReport> {
        let grid = match &self.grid {
            Some(g) => g.clone(),
            None => SplitGrid::all(schema),
        };
        let seq = SeqPlanner::new(self.base).with_cost_model(self.cost_model.clone());
        let root_ctx = est.root();
        let root_ranges = est.ranges(&root_ctx).clone();
        let flight = self.recorder.flight().clone();
        let start_seq = flight.emit(
            0,
            0,
            "plan.search.start",
            &[("planner", "greedy".into()), ("preds", query.len().into())],
        );
        if let Some(b) = query.truth_given(&root_ranges) {
            flight.emit(
                0,
                start_seq,
                "plan.search.end",
                &[
                    ("cost", 0.0.into()),
                    ("subproblems", 0usize.into()),
                    ("truncated", false.into()),
                ],
            );
            return Ok(PlanReport {
                plan: Plan::Decided(b),
                expected_cost: 0.0,
                subproblems: 0,
                truncated: false,
                worker_panics: 0,
                degradation: DegradationLevel::None,
            });
        }
        let deadline = Deadline::after(self.time_budget);
        let _span = self.recorder.span("planner.greedy");
        // Leaf expansions applied; kept equal to the report's
        // `subproblems` field, mirroring the exhaustive planner.
        let opened = self.recorder.counter("planner.subproblems.opened");
        let split_eval = self.recorder.counter("planner.split.evaluated");
        // Worker panics caught by the parallel sweep's isolation shell.
        let panics = AtomicUsize::new(0);

        // Arena-based tree under construction. Leaf payloads live in
        // `leaves`; arena nodes reference them by slot.
        enum TNode {
            Leaf(usize),
            Split { attr: usize, cut: u16, lo: usize, hi: usize },
        }
        struct LeafState<C> {
            ctx: C,
            ranges: Ranges,
            decided: Option<bool>,
            order: Vec<usize>,
            seq_cost: f64,
            split: Option<BestSplit>,
            arena_idx: usize,
        }

        let mut arena: Vec<TNode> = Vec::new();
        let mut leaves: Vec<Option<LeafState<E::Ctx>>> = Vec::new();
        let mut heap: BinaryHeap<(OrdF64, Reverse<usize>, usize)> = BinaryHeap::new();
        let mut counter = 0usize;
        // Expected cost of the evolving plan, updated by each expansion.
        let mut plan_cost;

        // Seed with the root leaf.
        {
            let table = est.truth_table(&root_ctx, query);
            let (order, seq_cost) = seq.order_for(schema, query, &root_ranges, &table)?;
            plan_cost = seq_cost;
            let split = self.greedy_split(
                schema,
                query,
                est,
                &seq,
                &grid,
                &root_ctx,
                &table,
                &split_eval,
                &panics,
            )?;
            let state = LeafState {
                ctx: root_ctx,
                ranges: root_ranges,
                decided: None,
                order,
                seq_cost,
                split,
                arena_idx: 0,
            };
            arena.push(TNode::Leaf(0));
            if let Some(s) = &state.split {
                let gain = est.mass(&state.ctx) * (state.seq_cost - s.total);
                if gain > self.min_gain {
                    heap.push((OrdF64(gain), Reverse(counter), 0));
                    counter += 1;
                }
            }
            leaves.push(Some(state));
        }

        let mut splits_used = 0usize;
        let mut truncated = false;
        while splits_used < self.max_splits {
            if deadline.expired() {
                // Best-so-far degradation: the current tree is already a
                // complete, valid plan; we just stop improving it.
                truncated = !heap.is_empty();
                break;
            }
            let Some((OrdF64(gain), _, slot)) = heap.pop() else { break };
            let Some(leaf) = leaves[slot].take() else { continue };
            let Some(split) = leaf.split else {
                // Only split-bearing leaves are enqueued; if one arrives
                // anyway, restore it so the arena stays realizable.
                debug_assert!(false, "enqueued leaf without a split");
                leaves[slot] = Some(leaf);
                continue;
            };
            plan_cost -= gain;

            let r = leaf.ranges.get(split.attr);
            let lo_r = Range::new(r.lo(), split.cut - 1);
            let hi_r = Range::new(split.cut, r.hi());

            let lo_idx = arena.len();
            let hi_idx = arena.len() + 1;
            arena[leaf.arena_idx] =
                TNode::Split { attr: split.attr, cut: split.cut, lo: lo_idx, hi: hi_idx };

            for (child_r, arena_idx) in [(lo_r, lo_idx), (hi_r, hi_idx)] {
                let ctx = est.refine(&leaf.ctx, split.attr, child_r);
                let ranges = leaf.ranges.with(split.attr, child_r);
                let decided = query.truth_given(&ranges);
                let (order, seq_cost) = if decided.is_some() {
                    (Vec::new(), 0.0)
                } else {
                    let table = est.truth_table(&ctx, query);
                    seq.order_for(schema, query, &ranges, &table)?
                };
                let split = if decided.is_some() || est.support(&ctx) < self.min_support {
                    None
                } else {
                    let table = est.truth_table(&ctx, query);
                    self.greedy_split(
                        schema,
                        query,
                        est,
                        &seq,
                        &grid,
                        &ctx,
                        &table,
                        &split_eval,
                        &panics,
                    )?
                };
                let state = LeafState { ctx, ranges, decided, order, seq_cost, split, arena_idx };
                let leaf_slot = leaves.len();
                arena.push(TNode::Leaf(leaf_slot));
                if let Some(s) = &state.split {
                    let child_gain = est.mass(&state.ctx) * (state.seq_cost - s.total);
                    if child_gain > self.min_gain {
                        heap.push((OrdF64(child_gain), Reverse(counter), leaf_slot));
                        counter += 1;
                    }
                }
                leaves.push(Some(state));
            }
            splits_used += 1;
            opened.incr(1);
        }
        if truncated {
            self.recorder.counter("planner.budget.truncated").incr(1);
            flight.emit(
                0,
                start_seq,
                "plan.search.truncated",
                &[("subproblems", splits_used.into())],
            );
        }

        // Realize the arena into a Plan.
        fn realize<C>(arena: &[TNode], leaves: &[Option<LeafState<C>>], idx: usize) -> Plan {
            match &arena[idx] {
                TNode::Leaf(slot) => {
                    // acqp-lint: allow(panic-in-lib): arena leaves are populated before any node references their slot, and expansion restores the slot on every path
                    let leaf = leaves[*slot].as_ref().expect("live leaf");
                    match leaf.decided {
                        Some(b) => Plan::Decided(b),
                        None => Plan::Seq(SeqOrder::new(leaf.order.clone())),
                    }
                }
                TNode::Split { attr, cut, lo, hi } => Plan::split(
                    *attr,
                    *cut,
                    realize(arena, leaves, *lo),
                    realize(arena, leaves, *hi),
                ),
            }
        }
        let worker_panics = panics.load(Ordering::Relaxed);
        if worker_panics > 0 {
            self.recorder.counter("planner.panic.caught").incr(worker_panics as u64);
        }
        flight.emit(
            0,
            start_seq,
            "plan.search.end",
            &[
                ("cost", plan_cost.into()),
                ("subproblems", splits_used.into()),
                ("truncated", truncated.into()),
                ("split_evaluated", split_eval.value().into()),
            ],
        );
        Ok(PlanReport {
            plan: realize(&arena, &leaves, 0),
            expected_cost: plan_cost,
            subproblems: splits_used,
            truncated,
            worker_panics,
            degradation: DegradationLevel::None,
        })
    }

    /// `GREEDYSPLIT` (Fig. 6): the locally optimal conditioning
    /// predicate for one subproblem, or `None` when no valid split
    /// exists.
    ///
    /// Each attribute's cut sweep is scored independently (optionally in
    /// parallel) and the winner is reduced in attribute-index order with
    /// a strict `<`, so the result does not depend on thread count.
    ///
    /// A worker that panics mid-sweep is isolated (`catch_unwind` around
    /// each attribute's scoring, [`NoPoisonMutex`] around the result
    /// slots): its slot is simply left empty and re-scored serially
    /// after the pool drains, so the reduce still sees every candidate
    /// and the chosen split stays bit-identical to the serial sweep.
    #[allow(clippy::too_many_arguments)] // mirrors Fig. 6's parameter list
    fn greedy_split<E: Estimator>(
        &self,
        schema: &Schema,
        query: &Query,
        est: &E,
        seq: &SeqPlanner,
        grid: &SplitGrid,
        ctx: &E::Ctx,
        table: &TruthTable,
        split_eval: &Counter,
        panics: &AtomicUsize,
    ) -> Result<Option<BestSplit>> {
        let ranges = est.ranges(ctx).clone();
        let total_w = table.total();
        if total_w <= 0.0 {
            return Ok(None);
        }
        let cand: Vec<usize> = (0..schema.len()).filter(|&a| !ranges.get(a).is_point()).collect();

        let scored: Vec<Result<Option<BestSplit>>> = if self.threads > 1 && cand.len() > 1 {
            let slots: NoPoisonMutex<Vec<Option<Result<Option<BestSplit>>>>> =
                NoPoisonMutex::new(vec![None; cand.len()]);
            let next = AtomicUsize::new(0);
            let scope_result = crossbeam::scope(|s| {
                for _ in 0..self.threads.min(cand.len()) {
                    s.spawn(|_| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= cand.len() {
                            break;
                        }
                        let r = catch_unwind(AssertUnwindSafe(|| {
                            self.score_attr(
                                schema, query, est, seq, grid, ctx, table, &ranges, total_w,
                                cand[i], split_eval,
                            )
                        }));
                        match r {
                            Ok(r) => slots.lock()[i] = Some(r),
                            Err(_) => {
                                panics.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    });
                }
            });
            if scope_result.is_err() {
                // A worker died outside its isolation shell; its slots
                // are re-scored below like any other panicked slot.
                panics.fetch_add(1, Ordering::Relaxed);
            }
            slots
                .into_inner()
                .into_iter()
                .enumerate()
                .map(|(i, slot)| match slot {
                    Some(r) => r,
                    // Panicked (or never-started) slot: re-score on this
                    // thread. `score_attr` is a pure function of the
                    // subproblem, so the serial retry returns exactly
                    // what the healthy worker would have.
                    None => self.score_attr(
                        schema, query, est, seq, grid, ctx, table, &ranges, total_w, cand[i],
                        split_eval,
                    ),
                })
                .collect()
        } else {
            cand.iter()
                .map(|&a| {
                    self.score_attr(
                        schema, query, est, seq, grid, ctx, table, &ranges, total_w, a, split_eval,
                    )
                })
                .collect()
        };

        // Deterministic reduce: first strictly-better wins, scanning
        // attributes in index order — ties keep the lower attribute id,
        // matching the serial sweep.
        let mut best: Option<BestSplit> = None;
        for r in scored {
            if let Some(s) = r? {
                if best.as_ref().is_none_or(|b| s.total < b.total) {
                    best = Some(s);
                }
            }
        }
        Ok(best)
    }

    /// Scores every candidate cut of one attribute, returning the
    /// attribute's best split. Self-contained per attribute — no state
    /// from other attributes' sweeps — so calls can run concurrently
    /// while producing exactly the serial sweep's values.
    #[allow(clippy::too_many_arguments)]
    fn score_attr<E: Estimator>(
        &self,
        schema: &Schema,
        query: &Query,
        est: &E,
        seq: &SeqPlanner,
        grid: &SplitGrid,
        ctx: &E::Ctx,
        table: &TruthTable,
        ranges: &Ranges,
        total_w: f64,
        attr: usize,
        split_eval: &Counter,
    ) -> Result<Option<BestSplit>> {
        let r = ranges.get(attr);
        let c0 =
            self.cost_model.cost(schema, attr, crate::costmodel::acquired_mask(schema, ranges));
        let cuts: Vec<u16> = grid.cuts_in(attr, r).collect();
        if cuts.is_empty() {
            return Ok(None);
        }
        let by_value = est.truth_by_value(ctx, attr, query);
        debug_assert_eq!(by_value.len(), r.width() as usize);

        split_eval.incr(cuts.len() as u64);
        let mut best: Option<BestSplit> = None;
        let mut acc = TruthAccum::new();
        let mut merged_upto = r.lo(); // values < merged_upto are in `acc`
        for cut in cuts {
            while merged_upto < cut {
                acc.add_table(&by_value[usize::from(merged_upto - r.lo())]);
                merged_upto += 1;
            }
            let lo_table = acc.snapshot(query.len());
            let p_lo = (lo_table.total() / total_w).clamp(0.0, 1.0);
            let mut c = c0;

            let lo_ranges = ranges.with(attr, Range::new(r.lo(), cut - 1));
            if p_lo > 0.0 {
                let (_, lo_cost) = seq.order_for(schema, query, &lo_ranges, &lo_table)?;
                c += p_lo * lo_cost;
            }
            if let Some(b) = &best {
                if c >= b.total {
                    continue;
                }
            }
            let p_hi = 1.0 - p_lo;
            if p_hi > 0.0 {
                let hi_table = table.subtract(&lo_table);
                let hi_ranges = ranges.with(attr, Range::new(cut, r.hi()));
                let (_, hi_cost) = seq.order_for(schema, query, &hi_ranges, &hi_table)?;
                c += p_hi * hi_cost;
            }
            if best.as_ref().is_none_or(|b| c < b.total) {
                best = Some(BestSplit { attr, cut, total: c });
            }
        }
        Ok(best)
    }
}

/// The outcome of `GREEDYSPLIT`: which conditioning predicate to apply
/// and the expected cost of the split-plus-sequential-children plan.
#[derive(Debug, Clone, Copy, PartialEq)]
struct BestSplit {
    attr: usize,
    cut: u16,
    total: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Attribute;
    use crate::cost::measure;
    use crate::dataset::Dataset;
    use crate::planner::ExhaustivePlanner;
    use crate::prob::CountingEstimator;
    use crate::query::Pred;

    fn day_night_setup() -> (Schema, Dataset, Query) {
        let schema = Schema::new(vec![
            Attribute::new("temp", 2, 1.0),
            Attribute::new("light", 2, 1.0),
            Attribute::new("time", 2, 0.0),
        ])
        .unwrap();
        let mut rows = Vec::new();
        for i in 0..10u16 {
            rows.push(vec![u16::from(i < 1), u16::from(i < 9), 0]);
            rows.push(vec![u16::from(i < 9), u16::from(i < 1), 1]);
        }
        let data = Dataset::from_rows(&schema, rows).unwrap();
        let query = Query::new(vec![Pred::in_range(0, 1, 1), Pred::in_range(1, 1, 1)]).unwrap();
        (schema, data, query)
    }

    #[test]
    fn finds_the_fig2_conditional_plan() {
        let (schema, data, query) = day_night_setup();
        let est = CountingEstimator::with_ranges(&data, Ranges::root(&schema));
        let (plan, cost) = GreedyPlanner::new(4).plan_with_cost(&schema, &query, &est).unwrap();
        assert!((cost - 1.1).abs() < 1e-9, "cost {cost}");
        assert!(plan.split_count() >= 1);
        // Root split must condition on the free time attribute.
        match &plan {
            Plan::Split { attr, .. } => assert_eq!(*attr, 2),
            other => panic!("expected split at root, got {other:?}"),
        }
        let rep = measure(&plan, &query, &schema, &data);
        assert!(rep.all_correct);
        assert!((rep.mean_cost - 1.1).abs() < 1e-9);
    }

    #[test]
    fn zero_splits_equals_base_sequential() {
        let (schema, data, query) = day_night_setup();
        let est = CountingEstimator::with_ranges(&data, Ranges::root(&schema));
        let (plan, cost) = GreedyPlanner::new(0).plan_with_cost(&schema, &query, &est).unwrap();
        assert_eq!(plan.split_count(), 0);
        let (_, seq_cost) = SeqPlanner::auto().plan_with_cost(&schema, &query, &est).unwrap();
        assert!((cost - seq_cost).abs() < 1e-12);
    }

    #[test]
    fn respects_split_budget() {
        let (schema, data, query) = day_night_setup();
        let est = CountingEstimator::with_ranges(&data, Ranges::root(&schema));
        for k in 0..4 {
            let plan = GreedyPlanner::new(k).plan(&schema, &query, &est).unwrap();
            assert!(plan.split_count() <= k, "k={k} got {}", plan.split_count());
        }
    }

    #[test]
    fn cost_reported_matches_measured_on_training_data() {
        let schema = Schema::new(vec![
            Attribute::new("a", 6, 9.0),
            Attribute::new("b", 6, 4.0),
            Attribute::new("t", 6, 0.25),
        ])
        .unwrap();
        let mut x = 7u64;
        let mut rng = move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((x >> 33) % 6) as u16
        };
        let rows: Vec<Vec<u16>> = (0..300)
            .map(|_| {
                let t = rng();
                vec![(t + rng() % 2) % 6, (5 - t + rng() % 2) % 6, t]
            })
            .collect();
        let data = Dataset::from_rows(&schema, rows).unwrap();
        let query = Query::new(vec![Pred::in_range(0, 0, 2), Pred::in_range(1, 3, 5)]).unwrap();
        let est = CountingEstimator::with_ranges(&data, Ranges::root(&schema));
        let (plan, cost) = GreedyPlanner::new(6).plan_with_cost(&schema, &query, &est).unwrap();
        let rep = measure(&plan, &query, &schema, &data);
        assert!(rep.all_correct);
        assert!(
            (cost - rep.mean_cost).abs() < 1e-9,
            "planner-claimed {cost} vs measured {}",
            rep.mean_cost
        );
    }

    #[test]
    fn sandwiched_between_exhaustive_and_sequential() {
        let (schema, data, query) = day_night_setup();
        let est = CountingEstimator::with_ranges(&data, Ranges::root(&schema));
        let (_, ex) = ExhaustivePlanner::new().plan_with_cost(&schema, &query, &est).unwrap();
        let (_, gr) = GreedyPlanner::new(10).plan_with_cost(&schema, &query, &est).unwrap();
        let (_, sq) = SeqPlanner::optimal().plan_with_cost(&schema, &query, &est).unwrap();
        assert!(ex <= gr + 1e-9);
        assert!(gr <= sq + 1e-9);
    }

    #[test]
    fn decided_root_query() {
        let schema = Schema::new(vec![Attribute::new("a", 4, 1.0)]).unwrap();
        let data = Dataset::from_rows(&schema, vec![vec![0], vec![3]]).unwrap();
        let est = CountingEstimator::with_ranges(&data, Ranges::root(&schema));
        let q = Query::new(vec![Pred::in_range(0, 0, 3)]).unwrap();
        let (plan, cost) = GreedyPlanner::new(5).plan_with_cost(&schema, &q, &est).unwrap();
        assert_eq!(plan, Plan::Decided(true));
        assert_eq!(cost, 0.0);
    }

    #[test]
    fn min_support_blocks_tiny_leaves() {
        let (schema, data, query) = day_night_setup();
        let est = CountingEstimator::with_ranges(&data, Ranges::root(&schema));
        // Impossibly high support requirement: after the root only leaves
        // with >= 1000 tuples could split; none exist, so exactly the
        // root split (made before any support check) plus children that
        // never split.
        let plan =
            GreedyPlanner::new(10).with_min_support(1000).plan(&schema, &query, &est).unwrap();
        assert!(plan.split_count() <= 1);
    }

    /// Dense instance where many attributes compete per split, so the
    /// parallel per-attribute sweeps actually fan out.
    fn dense_setup() -> (Schema, Dataset, Query) {
        let schema = Schema::new(vec![
            Attribute::new("a", 5, 7.0),
            Attribute::new("b", 5, 5.0),
            Attribute::new("c", 5, 3.0),
            Attribute::new("d", 5, 1.0),
        ])
        .unwrap();
        let mut x = 99u64;
        let mut rng = move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((x >> 33) % 5) as u16
        };
        let rows: Vec<Vec<u16>> = (0..400)
            .map(|_| {
                let d = rng();
                vec![(d + rng() % 2) % 5, (4 - d + rng() % 3) % 5, rng(), d]
            })
            .collect();
        let data = Dataset::from_rows(&schema, rows).unwrap();
        let query = Query::new(vec![
            Pred::in_range(0, 0, 2),
            Pred::in_range(1, 2, 4),
            Pred::in_range(2, 0, 3),
        ])
        .unwrap();
        (schema, data, query)
    }

    #[test]
    fn parallel_matches_serial_bitwise() {
        let (schema, data, query) = dense_setup();
        let est = CountingEstimator::with_ranges(&data, Ranges::root(&schema));
        let serial = GreedyPlanner::new(8).plan_with_report(&schema, &query, &est).unwrap();
        assert!(!serial.truncated);
        for threads in [2, 4, 8] {
            let par = GreedyPlanner::new(8)
                .threads(threads)
                .plan_with_report(&schema, &query, &est)
                .unwrap();
            assert!(!par.truncated);
            assert_eq!(
                serial.expected_cost.to_bits(),
                par.expected_cost.to_bits(),
                "threads={threads}: {} vs {}",
                serial.expected_cost,
                par.expected_cost
            );
            assert_eq!(serial.plan, par.plan, "threads={threads}");
        }
    }

    #[test]
    fn zero_time_budget_truncates_to_valid_plan() {
        let (schema, data, query) = dense_setup();
        let est = CountingEstimator::with_ranges(&data, Ranges::root(&schema));
        let report = GreedyPlanner::new(8)
            .time_budget(Duration::ZERO)
            .plan_with_report(&schema, &query, &est)
            .unwrap();
        assert!(report.truncated);
        assert_eq!(report.plan.split_count(), 0);
        let rep = measure(&report.plan, &query, &schema, &data);
        assert!(rep.all_correct);
    }
}
