//! Plan-search algorithms.
//!
//! * [`SeqPlanner`] — sequential (non-branching) plans: `Naive`
//!   (§4.1.1), optimal `OptSeq` (§4.1.2) and `GreedySeq` (§4.1.3).
//! * [`ExhaustivePlanner`] — the optimal conditional planner of Fig. 5:
//!   depth-first dynamic programming over range subproblems with
//!   memoization and cost-bound pruning.
//! * [`GreedyPlanner`] — the polynomial heuristic of Figs. 6–7: locally
//!   optimal binary splits expanded off a priority queue, bounded by a
//!   maximum number of splits.
//! * [`SplitGrid`] — candidate split-point restriction (§4.3), measured
//!   by the Split Point Selection Factor (SPSF).
//! * [`enumerate_plans`] — brute-force enumeration of all conditional
//!   plans for tiny instances (the Fig. 3 example).
//! * [`FallbackPlanner`] — the degraded-mode ladder
//!   `Exhaustive → GreedyPlan → GreedySeq → Naive`: panic-isolated,
//!   budget-driven planning that always returns an executable plan
//!   tagged with its [`DegradationLevel`].

mod budget;
mod enumerate;
mod exhaustive;
mod fallback;
mod greedy;
mod seq;
mod spsf;

pub use budget::{DegradationLevel, PlanReport};
pub use enumerate::{enumerate_plans, full_tree_count, EnumeratedPlans};
pub use exhaustive::ExhaustivePlanner;
pub use fallback::FallbackPlanner;
pub use greedy::GreedyPlanner;
pub use seq::{NaivePlanner, SeqAlgorithm, SeqPlanner};
pub use spsf::SplitGrid;

/// A totally ordered f64 for priority queues, sorts and argmin
/// selections; NaNs compare smallest so a NaN priority can never
/// displace a finite one. This is the workspace's *only* sanctioned way
/// to order floats — acqp-lint's `float-partial-cmp` rule rejects raw
/// `partial_cmp` everywhere else, because `unwrap_or(Equal)` silently
/// turns a NaN cost into an order-dependent sort.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrdF64(pub f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // acqp-lint: allow(float-partial-cmp): OrdF64 is the one place the partial order is totalized
        self.0.partial_cmp(&other.0).unwrap_or_else(|| {
            // Treat NaN as -inf.
            match (self.0.is_nan(), other.0.is_nan()) {
                (true, true) => std::cmp::Ordering::Equal,
                (true, false) => std::cmp::Ordering::Less,
                (false, true) => std::cmp::Ordering::Greater,
                // acqp-lint: allow(panic-in-lib): partial_cmp on f64 only returns None when an operand is NaN
                (false, false) => unreachable!(),
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::OrdF64;
    use std::cmp::Ordering;

    #[test]
    fn ordf64_orders() {
        let mut v = [OrdF64(2.0), OrdF64(f64::NAN), OrdF64(-1.0), OrdF64(0.5)];
        v.sort();
        assert!(v[0].0.is_nan());
        assert_eq!(v[1].0, -1.0);
        assert_eq!(v[3].0, 2.0);
    }

    /// Representative values covering every interesting comparison class.
    fn probes() -> Vec<OrdF64> {
        vec![
            OrdF64(f64::NAN),
            OrdF64(f64::NEG_INFINITY),
            OrdF64(-1.0),
            OrdF64(-0.0),
            OrdF64(0.0),
            OrdF64(1.0),
            OrdF64(f64::MAX),
            OrdF64(f64::INFINITY),
        ]
    }

    /// `cmp` is a total order: total, antisymmetric, transitive, and
    /// consistent with `partial_cmp` — even with NaN in the mix, which
    /// is exactly the case `BinaryHeap<OrdF64>` has to survive.
    #[test]
    fn ordf64_total_order_laws() {
        let v = probes();
        for a in &v {
            assert_eq!(a.cmp(a), Ordering::Equal, "reflexive: {a:?}");
            for b in &v {
                // Totality + antisymmetry.
                assert_eq!(a.cmp(b), b.cmp(a).reverse(), "{a:?} vs {b:?}");
                // partial_cmp agrees (OrdF64's order is never partial).
                assert_eq!(a.partial_cmp(b), Some(a.cmp(b)), "{a:?} vs {b:?}");
                for c in &v {
                    // Transitivity.
                    if a.cmp(b) != Ordering::Greater && b.cmp(c) != Ordering::Greater {
                        assert_ne!(
                            a.cmp(c),
                            Ordering::Greater,
                            "transitivity broke: {a:?} <= {b:?} <= {c:?}"
                        );
                    }
                }
            }
        }
    }

    /// NaN is the minimum element, so as a max-heap priority it can
    /// never displace a finite gain.
    #[test]
    fn ordf64_nan_is_smallest() {
        let nan = OrdF64(f64::NAN);
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
        for x in probes().iter().filter(|x| !x.0.is_nan()) {
            assert_eq!(nan.cmp(x), Ordering::Less, "NaN vs {x:?}");
            assert_eq!(x.cmp(&nan), Ordering::Greater, "{x:?} vs NaN");
        }
        let mut heap = std::collections::BinaryHeap::from(probes());
        assert_eq!(heap.pop().unwrap().0, f64::INFINITY);
        assert!(heap.into_sorted_vec()[0].0.is_nan());
    }
}
