//! Plan-search algorithms.
//!
//! * [`SeqPlanner`] — sequential (non-branching) plans: `Naive`
//!   (§4.1.1), optimal `OptSeq` (§4.1.2) and `GreedySeq` (§4.1.3).
//! * [`ExhaustivePlanner`] — the optimal conditional planner of Fig. 5:
//!   depth-first dynamic programming over range subproblems with
//!   memoization and cost-bound pruning.
//! * [`GreedyPlanner`] — the polynomial heuristic of Figs. 6–7: locally
//!   optimal binary splits expanded off a priority queue, bounded by a
//!   maximum number of splits.
//! * [`SplitGrid`] — candidate split-point restriction (§4.3), measured
//!   by the Split Point Selection Factor (SPSF).
//! * [`enumerate_plans`] — brute-force enumeration of all conditional
//!   plans for tiny instances (the Fig. 3 example).

mod enumerate;
mod exhaustive;
mod greedy;
mod seq;
mod spsf;

pub use enumerate::{enumerate_plans, full_tree_count, EnumeratedPlans};
pub use exhaustive::ExhaustivePlanner;
pub use greedy::GreedyPlanner;
pub use seq::{NaivePlanner, SeqAlgorithm, SeqPlanner};
pub use spsf::SplitGrid;

/// A totally ordered f64 for priority queues; NaNs compare smallest so a
/// NaN priority can never displace a finite one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct OrdF64(pub f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).unwrap_or_else(|| {
            // Treat NaN as -inf.
            match (self.0.is_nan(), other.0.is_nan()) {
                (true, true) => std::cmp::Ordering::Equal,
                (true, false) => std::cmp::Ordering::Less,
                (false, true) => std::cmp::Ordering::Greater,
                (false, false) => unreachable!(),
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::OrdF64;

    #[test]
    fn ordf64_orders() {
        let mut v = [OrdF64(2.0), OrdF64(f64::NAN), OrdF64(-1.0), OrdF64(0.5)];
        v.sort();
        assert!(v[0].0.is_nan());
        assert_eq!(v[1].0, -1.0);
        assert_eq!(v[3].0, 2.0);
    }
}
