//! Sequential (non-branching) plans — §4.1.
//!
//! A sequential plan fixes one order over the query predicates and
//! evaluates them with early termination; it never uses conditioning
//! splits. Three ordering algorithms are provided:
//!
//! * **Naive** (§4.1.1) — rank predicates by `cost / (1 − selectivity)`
//!   using *marginal* selectivities only, as traditional optimizers do.
//!   Correlations are ignored, which is exactly the weakness conditional
//!   plans exploit.
//! * **GreedySeq** (§4.1.3, Munagala et al.) — repeatedly pick the
//!   predicate minimizing `C_j / (1 − p_j)`, where `p_j` conditions on
//!   every predicate already chosen having been *satisfied*. Known to be
//!   4-approximate.
//! * **OptSeq** (§4.1.2) — the optimal sequential order, computed by a
//!   dynamic program over subsets of satisfied predicates in
//!   `O(m · 2^m)` after rediscretizing each query attribute to its
//!   predicate's truth value.

use crate::attr::{AttrId, Schema};
use crate::costmodel::{acquired_mask, CostModel};
use crate::error::{Error, Result};
use crate::plan::{Plan, SeqOrder};
use crate::prob::{Estimator, TruthTable};
use crate::query::Query;
use crate::range::Ranges;

use super::OrdF64;

/// Hard cap on `m` for the `O(m·2^m)` optimal-sequential DP.
pub const OPTSEQ_MAX_PREDS: usize = 20;

/// How a sequential order is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeqAlgorithm {
    /// Traditional `cost / (1 − selectivity)` ranking on marginals.
    Naive,
    /// Munagala et al.'s correlation-aware greedy (4-approximate).
    Greedy,
    /// Exact subset DP; errors when more than [`OPTSEQ_MAX_PREDS`]
    /// predicates are undecided.
    Optimal,
    /// `Optimal` when few enough predicates are undecided, `Greedy`
    /// otherwise — matching the paper's practice of using `OptSeq` on the
    /// Lab dataset and `GreedySeq` on Garden/synthetic.
    Auto,
}

/// Threshold below which [`SeqAlgorithm::Auto`] uses the exact DP.
const AUTO_OPT_LIMIT: usize = 12;

/// Plans sequential predicate orders.
#[derive(Debug, Clone, PartialEq)]
pub struct SeqPlanner {
    algo: SeqAlgorithm,
    cost_model: CostModel,
}

impl SeqPlanner {
    /// Creates a planner with the given ordering algorithm.
    pub fn new(algo: SeqAlgorithm) -> Self {
        SeqPlanner { algo, cost_model: CostModel::PerAttribute }
    }

    /// Uses order-dependent acquisition costs (§7 "Complex acquisition
    /// costs") — e.g. shared-board power-ups that make clustering
    /// same-board predicates cheaper.
    pub fn with_cost_model(mut self, model: CostModel) -> Self {
        self.cost_model = model;
        self
    }

    /// §4.1.1's traditional optimizer.
    pub fn naive() -> Self {
        Self::new(SeqAlgorithm::Naive)
    }

    /// §4.1.3's correlation-aware greedy.
    pub fn greedy() -> Self {
        Self::new(SeqAlgorithm::Greedy)
    }

    /// §4.1.2's optimal sequential DP.
    pub fn optimal() -> Self {
        Self::new(SeqAlgorithm::Optimal)
    }

    /// Optimal for small queries, greedy for large ones.
    pub fn auto() -> Self {
        Self::new(SeqAlgorithm::Auto)
    }

    /// The configured algorithm.
    pub fn algorithm(&self) -> SeqAlgorithm {
        self.algo
    }

    /// Produces a whole-query sequential [`Plan`].
    pub fn plan<E: Estimator>(&self, schema: &Schema, query: &Query, est: &E) -> Result<Plan> {
        self.plan_with_cost(schema, query, est).map(|(p, _)| p)
    }

    /// Produces the plan together with its model-expected cost.
    pub fn plan_with_cost<E: Estimator>(
        &self,
        schema: &Schema,
        query: &Query,
        est: &E,
    ) -> Result<(Plan, f64)> {
        let ctx = est.root();
        let ranges = est.ranges(&ctx);
        if let Some(b) = query.truth_given(ranges) {
            return Ok((Plan::Decided(b), 0.0));
        }
        let table = est.truth_table(&ctx, query);
        let (order, cost) = self.order_for(schema, query, ranges, &table)?;
        Ok((Plan::Seq(SeqOrder::new(order)), cost))
    }

    /// Chooses an order over the predicates still undecided under
    /// `ranges`, and returns it with its expected cost. `table` must be
    /// the truth distribution conditioned on `ranges`.
    ///
    /// This is the `OPTSEQUENTIAL` subroutine of Figs. 6–7 (with the
    /// algorithm pluggable).
    pub fn order_for(
        &self,
        schema: &Schema,
        query: &Query,
        ranges: &Ranges,
        table: &TruthTable,
    ) -> Result<(Vec<usize>, f64)> {
        let undecided = query.undecided(ranges);
        if undecided.is_empty() {
            return Ok((Vec::new(), 0.0));
        }
        // Attributes already acquired by conditioning splits above (their
        // ranges were narrowed); predicates over them evaluate for free.
        let initial = acquired_mask(schema, ranges);
        let attr_of: Vec<AttrId> = query.preds().iter().map(|p| p.attr()).collect();
        let env = SeqEnv { schema, model: &self.cost_model, attr_of: &attr_of, initial };
        let algo = match self.algo {
            SeqAlgorithm::Auto if undecided.len() <= AUTO_OPT_LIMIT => SeqAlgorithm::Optimal,
            SeqAlgorithm::Auto => SeqAlgorithm::Greedy,
            a => a,
        };
        let order = match algo {
            SeqAlgorithm::Naive => naive_order(&undecided, &env, table),
            SeqAlgorithm::Greedy => greedy_order(&undecided, &env, table),
            SeqAlgorithm::Optimal => optimal_order(&undecided, &env, table)?,
            // acqp-lint: allow(panic-in-lib): Auto is resolved to a concrete algorithm by the match directly above
            SeqAlgorithm::Auto => unreachable!(),
        };
        let cost = table.seq_cost_model(&order, &attr_of, schema, &self.cost_model, initial);
        Ok((order, cost))
    }
}

/// Shared context for the ordering algorithms: schema, cost model,
/// predicate→attribute map and the initially-acquired attribute set.
struct SeqEnv<'a> {
    schema: &'a Schema,
    model: &'a CostModel,
    attr_of: &'a [AttrId],
    initial: u64,
}

impl SeqEnv<'_> {
    /// Acquisition cost of predicate `j` once the predicates in `done`
    /// (by index) have been evaluated.
    fn cost(&self, j: usize, done_attrs: u64) -> f64 {
        self.model.cost(self.schema, self.attr_of[j], self.initial | done_attrs)
    }

    fn attr_bit(&self, j: usize) -> u64 {
        1u64 << self.attr_of[j]
    }
}

/// The `Naive` whole-query planner of §4.1.1, as its own type for
/// discoverability.
#[derive(Debug, Clone, Copy, Default)]
pub struct NaivePlanner;

impl NaivePlanner {
    /// Plans with the traditional `cost / (1 − selectivity)` rule.
    pub fn plan<E: Estimator>(schema: &Schema, query: &Query, est: &E) -> Result<Plan> {
        SeqPlanner::naive().plan(schema, query, est)
    }
}

/// Rank = `cost / (1 − selectivity)` on marginals, ascending; ties by
/// predicate index for determinism. Costs are taken at the start state
/// (a traditional optimizer does not model order-dependence either).
fn naive_order(undecided: &[usize], env: &SeqEnv<'_>, table: &TruthTable) -> Vec<usize> {
    let mut order = undecided.to_vec();
    let rank = |j: usize| {
        let p_true = table.marginal(j);
        let denom = 1.0 - p_true;
        if denom <= 0.0 {
            f64::INFINITY
        } else {
            env.cost(j, 0) / denom
        }
    };
    order.sort_by(|&a, &b| OrdF64(rank(a)).cmp(&OrdF64(rank(b))).then(a.cmp(&b)));
    order
}

/// Munagala et al.'s greedy: repeatedly take `argmin_j C_j / (1 − p_j)`
/// with `p_j = P(φ_j | all chosen predicates satisfied)` and `C_j` the
/// cost-model price given everything acquired so far.
fn greedy_order(undecided: &[usize], env: &SeqEnv<'_>, table: &TruthTable) -> Vec<usize> {
    let mut remaining = undecided.to_vec();
    let mut order = Vec::with_capacity(remaining.len());
    let mut satisfied: u64 = 0;
    let mut done_attrs: u64 = 0;
    while !remaining.is_empty() {
        let mut best = 0usize;
        let mut best_rank = f64::INFINITY;
        let mut best_cost = f64::INFINITY;
        for (idx, &j) in remaining.iter().enumerate() {
            let p = table.cond_prob(j, satisfied);
            let denom = 1.0 - p;
            let c = env.cost(j, done_attrs);
            let rank = if denom <= 0.0 { f64::INFINITY } else { c / denom };
            // Primary: minimize rank; among all-infinite ranks (predicates
            // that never fail) prefer the cheapest; final tie on index.
            // Exact float equality is deliberate: ties only matter when two
            // candidates produce the *same* computed rank/cost, and an
            // epsilon here would make the chosen order depend on iteration
            // position instead of the index tie-break.
            #[allow(clippy::float_cmp)]
            let better = rank < best_rank
                || (rank == best_rank && c < best_cost)
                || (rank == best_rank && c == best_cost && j < remaining[best]);
            if idx == 0 || better {
                best = idx;
                best_rank = rank;
                best_cost = c;
            }
        }
        let j = remaining.swap_remove(best);
        satisfied |= 1 << j;
        done_attrs |= env.attr_bit(j);
        order.push(j);
    }
    order
}

/// Exact DP over subsets of satisfied predicates (§4.1.2).
///
/// `J(S) = min_{j∉S} C_j + P(φ_j | S) · J(S ∪ {j})`, `J(full) = 0`;
/// probabilities come from superset sums of the truth table projected
/// onto the undecided predicates.
fn optimal_order(undecided: &[usize], env: &SeqEnv<'_>, table: &TruthTable) -> Result<Vec<usize>> {
    let u = undecided.len();
    if u > OPTSEQ_MAX_PREDS {
        return Err(Error::TooManyPredicates { m: u, max: OPTSEQ_MAX_PREDS });
    }
    let proj = table.project(undecided);
    let g = proj.superset_weights();
    let full = (1usize << u) - 1;
    let mut value = vec![0.0f64; full + 1];
    let mut choice = vec![usize::MAX; full + 1];
    // Attribute mask of a satisfied-predicate subset: the state's
    // acquired set is determined by which predicates were evaluated.
    let attrs_of = |s: usize| -> u64 {
        undecided
            .iter()
            .enumerate()
            .filter(|(j, _)| s & (1 << j) != 0)
            .fold(0u64, |m, (_, &pred)| m | (1u64 << env.attr_of[pred]))
    };
    // Iterate S descending: S | bit > S numerically, so supersets are done.
    for s in (0..full).rev() {
        if g[s] <= 0.0 {
            // Unreachable state; value irrelevant.
            continue;
        }
        let done_attrs = attrs_of(s);
        let mut best = f64::INFINITY;
        let mut best_j = usize::MAX;
        for (j, &pred) in undecided.iter().enumerate() {
            let bit = 1usize << j;
            if s & bit != 0 {
                continue;
            }
            let p = g[s | bit] / g[s];
            let c = env.cost(pred, done_attrs) + p * value[s | bit];
            if c < best {
                best = c;
                best_j = j;
            }
        }
        value[s] = best;
        choice[s] = best_j;
    }
    // Reconstruct the order from the empty set.
    let mut order = Vec::with_capacity(u);
    let mut s = 0usize;
    while s != full {
        let j = choice[s];
        if j == usize::MAX {
            // Zero-support state (probability-0 under the model): append
            // the remaining predicates in index order.
            order.extend(
                undecided.iter().enumerate().filter(|(j, _)| s & (1 << j) == 0).map(|(_, &p)| p),
            );
            break;
        }
        order.push(undecided[j]);
        s |= 1 << j;
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Attribute;
    use crate::dataset::Dataset;
    use crate::prob::CountingEstimator;
    use crate::query::Pred;

    /// Schema: two expensive attrs (a: 10, b: 40) over domain {0,1}.
    fn schema2() -> Schema {
        Schema::new(vec![Attribute::new("a", 2, 10.0), Attribute::new("b", 2, 40.0)]).unwrap()
    }

    /// a=1 in half the rows; b=1 in a quarter; independent.
    fn data2(schema: &Schema) -> Dataset {
        let mut rows = Vec::new();
        for i in 0..8u16 {
            rows.push(vec![i % 2, u16::from(i % 4 == 0)]);
        }
        Dataset::from_rows(schema, rows).unwrap()
    }

    fn query2() -> Query {
        Query::new(vec![Pred::in_range(0, 1, 1), Pred::in_range(1, 1, 1)]).unwrap()
    }

    #[test]
    fn naive_orders_by_rank() {
        let s = schema2();
        let d = data2(&s);
        let est = CountingEstimator::with_ranges(&d, Ranges::root(&s));
        let (plan, cost) = SeqPlanner::naive().plan_with_cost(&s, &query2(), &est).unwrap();
        // rank(a) = 10/(1-0.5) = 20; rank(b) = 40/(1-0.25) = 53.3 -> a first.
        match &plan {
            Plan::Seq(o) => assert_eq!(o.order, vec![0, 1]),
            _ => panic!("expected Seq"),
        }
        // cost = 10 + P(a=1)*40 = 10 + 20 = 30.
        assert!((cost - 30.0).abs() < 1e-12);
    }

    #[test]
    fn optimal_beats_or_ties_other_orders() {
        let s = schema2();
        let d = data2(&s);
        let est = CountingEstimator::with_ranges(&d, Ranges::root(&s));
        let q = query2();
        let (_, opt) = SeqPlanner::optimal().plan_with_cost(&s, &q, &est).unwrap();
        // order [0,1]: 10 + 0.5*40 = 30; order [1,0]: 40 + 0.25*10 = 42.5.
        assert!((opt - 30.0).abs() < 1e-12);
    }

    #[test]
    fn greedy_uses_conditionals() {
        // Build data where b is almost always false *given* a true, so
        // greedy flips the order relative to marginals.
        let s =
            Schema::new(vec![Attribute::new("a", 2, 10.0), Attribute::new("b", 2, 10.0)]).unwrap();
        // Patterns: (a=1,b=0) x4, (a=0,b=1) x4 -> marginals 0.5/0.5 but
        // P(b|a)=0.
        let rows: Vec<Vec<u16>> =
            (0..8).map(|i| if i % 2 == 0 { vec![1, 0] } else { vec![0, 1] }).collect();
        let d = Dataset::from_rows(&s, rows).unwrap();
        let est = CountingEstimator::with_ranges(&d, Ranges::root(&s));
        let q = Query::new(vec![Pred::in_range(0, 1, 1), Pred::in_range(1, 1, 1)]).unwrap();
        let (_, cost) = SeqPlanner::greedy().plan_with_cost(&s, &q, &est).unwrap();
        // Either order pays 10 up front and, with probability 1/2, pays
        // another 10 to discover the (always-false) second predicate:
        // 10 + 0.5·10 = 15. Greedy's conditionals make it match OptSeq.
        assert!((cost - 15.0).abs() < 1e-12);
        let (_, opt) = SeqPlanner::optimal().plan_with_cost(&s, &q, &est).unwrap();
        assert!((cost - opt).abs() < 1e-12);
    }

    #[test]
    fn optimal_matches_bruteforce_on_random_instances() {
        use std::collections::HashSet;
        // Deterministic pseudo-random datasets; compare DP vs all m!
        // orders.
        let mut x = 0xdeadbeefu64;
        let mut rng = move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (x >> 33) as u32
        };
        for trial in 0..20 {
            let m = 2 + (trial % 4) as usize; // 2..=5 predicates
            let attrs: Vec<Attribute> = (0..m)
                .map(|i| Attribute::new(format!("x{i}"), 2, f64::from(1 + rng() % 50)))
                .collect();
            let s = Schema::new(attrs).unwrap();
            let rows: Vec<Vec<u16>> =
                (0..64).map(|_| (0..m).map(|_| (rng() % 2) as u16).collect()).collect();
            let d = Dataset::from_rows(&s, rows).unwrap();
            let est = CountingEstimator::with_ranges(&d, Ranges::root(&s));
            let q = Query::new((0..m).map(|i| Pred::in_range(i, 1, 1)).collect()).unwrap();
            let ctx = est.root();
            let table = est.truth_table(&ctx, &q);
            let ranges = est.ranges(&ctx).clone();
            let eff: Vec<f64> = (0..m).map(|i| s.cost(i)).collect();

            let (order, dp_cost) =
                SeqPlanner::optimal().order_for(&s, &q, &ranges, &table).unwrap();
            assert_eq!(order.iter().copied().collect::<HashSet<_>>().len(), m);

            // Brute force all permutations.
            let mut perm: Vec<usize> = (0..m).collect();
            let mut best = f64::INFINITY;
            permute(&mut perm, 0, &mut |p| {
                best = best.min(table.seq_cost(p, &eff));
            });
            assert!((dp_cost - best).abs() < 1e-9, "trial {trial}: dp {dp_cost} vs brute {best}");
        }

        fn permute(v: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize])) {
            if k == v.len() {
                f(v);
                return;
            }
            for i in k..v.len() {
                v.swap(k, i);
                permute(v, k + 1, f);
                v.swap(k, i);
            }
        }
    }

    #[test]
    fn optimal_rejects_huge_queries() {
        let n = 25;
        let attrs: Vec<Attribute> =
            (0..n).map(|i| Attribute::new(format!("x{i}"), 2, 1.0)).collect();
        let s = Schema::new(attrs).unwrap();
        let d = Dataset::from_rows(&s, vec![vec![0; n]]).unwrap();
        let est = CountingEstimator::with_ranges(&d, Ranges::root(&s));
        let q = Query::new((0..n).map(|i| Pred::in_range(i, 0, 0)).collect()).unwrap();
        let err = SeqPlanner::optimal().plan_with_cost(&s, &q, &est).unwrap_err();
        assert!(matches!(err, Error::TooManyPredicates { m: 25, .. }));
        // Auto degrades to greedy instead of erroring.
        assert!(SeqPlanner::auto().plan_with_cost(&s, &q, &est).is_ok());
    }

    #[test]
    fn decided_query_yields_decided_plan() {
        let s = schema2();
        let d = data2(&s);
        let est = CountingEstimator::with_ranges(&d, Ranges::root(&s));
        // Predicate spans the whole domain -> proven true by the root
        // ranges.
        let q = Query::new(vec![Pred::in_range(0, 0, 1)]).unwrap();
        let (plan, cost) = SeqPlanner::greedy().plan_with_cost(&s, &q, &est).unwrap();
        assert_eq!(plan, Plan::Decided(true));
        assert_eq!(cost, 0.0);
    }
}
