//! Candidate split-point restriction — §4.3.
//!
//! The planners only consider conditioning predicates `T(X_i ≥ x)` whose
//! cut `x` lies on a per-attribute grid. The paper divides each domain
//! into equal-width ranges and keeps the endpoints; the *Split Point
//! Selection Factor* `SPSF = Π_i r_i` measures how much freedom the
//! planner retains (`r_i` = number of candidate cuts for attribute `i`).
//!
//! Beyond the paper's equal-width rule, [`SplitGrid::for_query`] also
//! injects the query's own predicate endpoints into the grid, so that
//! "acquire the attribute and test its predicate" is always expressible
//! as a pair of splits regardless of how coarse the grid is.

use crate::attr::{AttrId, Schema};
use crate::query::Query;
use crate::range::Range;

/// Per-attribute candidate split points.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitGrid {
    /// `cuts[a]` — sorted, deduplicated candidate cut values `x` (a cut
    /// `x` splits a range `[a, b]` with `a < x ≤ b` into `[a, x−1]`,
    /// `[x, b]`). Valid cuts lie in `1..K_a`.
    cuts: Vec<Vec<u16>>,
}

impl SplitGrid {
    /// Unrestricted grid: every cut `1..K_i` of every attribute
    /// (SPSF = Π (K_i − 1)).
    pub fn all(schema: &Schema) -> Self {
        SplitGrid { cuts: schema.attrs().iter().map(|a| (1..a.domain()).collect()).collect() }
    }

    /// Equal-width grid with (at most) `r` split points per attribute.
    pub fn equal_width(schema: &Schema, r: usize) -> Self {
        Self::per_attr(schema, &vec![r; schema.len()])
    }

    /// Equal-width grid with `rs[i]` split points for attribute `i`.
    pub fn per_attr(schema: &Schema, rs: &[usize]) -> Self {
        assert_eq!(rs.len(), schema.len());
        let cuts = schema
            .attrs()
            .iter()
            .zip(rs)
            .map(|(a, &r)| {
                let k = u32::from(a.domain());
                let mut v: Vec<u16> = (1..=r as u32)
                    .map(|j| ((k * j) as f64 / (r as f64 + 1.0)).round() as u32)
                    .filter(|&c| c >= 1 && c < k)
                    .map(|c| c as u16)
                    .collect();
                v.sort_unstable();
                v.dedup();
                v
            })
            .collect();
        SplitGrid { cuts }
    }

    /// Equal-width grid augmented with the query's predicate endpoints
    /// (`lo` and `hi+1` of each predicate), so predicates stay exactly
    /// expressible under any SPSF.
    pub fn for_query(schema: &Schema, query: &Query, r: usize) -> Self {
        let mut g = Self::equal_width(schema, r);
        for p in query.preds() {
            let a = p.attr();
            let k = schema.domain(a);
            let (lo, hi) = p.bounds();
            for c in [lo, hi.saturating_add(1)] {
                if c >= 1 && c < k {
                    g.cuts[a].push(c);
                }
            }
            g.cuts[a].sort_unstable();
            g.cuts[a].dedup();
        }
        g
    }

    /// Candidate cuts for attribute `a` that are valid inside `range`
    /// (`range.lo < cut ≤ range.hi`).
    pub fn cuts_in(&self, a: AttrId, range: Range) -> impl Iterator<Item = u16> + '_ {
        let lo = range.lo();
        let hi = range.hi();
        self.cuts[a].iter().copied().filter(move |&c| c > lo && c <= hi)
    }

    /// Number of candidate cuts for attribute `a`.
    pub fn num_cuts(&self, a: AttrId) -> usize {
        self.cuts[a].len()
    }

    /// `log10` of the Split Point Selection Factor `Π_i r_i` (the raw
    /// product overflows f64 readability for wide schemas).
    pub fn log10_spsf(&self) -> f64 {
        self.cuts.iter().map(|c| (c.len().max(1) as f64).log10()).sum()
    }

    /// The Split Point Selection Factor `Π_i r_i` itself (saturating).
    pub fn spsf(&self) -> f64 {
        self.cuts.iter().map(|c| c.len().max(1) as f64).product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Attribute;
    use crate::query::Pred;

    fn schema() -> Schema {
        Schema::new(vec![Attribute::new("a", 16, 10.0), Attribute::new("b", 4, 1.0)]).unwrap()
    }

    #[test]
    fn all_cuts() {
        let g = SplitGrid::all(&schema());
        assert_eq!(g.num_cuts(0), 15);
        assert_eq!(g.num_cuts(1), 3);
        assert_eq!(g.spsf(), 45.0);
    }

    #[test]
    fn equal_width_counts() {
        let g = SplitGrid::equal_width(&schema(), 3);
        assert_eq!(g.num_cuts(0), 3);
        // Domain 4 with r=3 -> cuts {1,2,3}.
        assert_eq!(g.num_cuts(1), 3);
        let g1 = SplitGrid::equal_width(&schema(), 1);
        // Single midpoint cut.
        assert_eq!(g1.cuts_in(0, Range::full(16)).collect::<Vec<_>>(), vec![8]);
        assert_eq!(g1.cuts_in(1, Range::full(4)).collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn equal_width_saturates_at_domain() {
        // Asking for more points than the domain has just yields all cuts.
        let g = SplitGrid::equal_width(&schema(), 100);
        assert_eq!(g.num_cuts(1), 3);
    }

    #[test]
    fn cuts_in_respects_range() {
        let g = SplitGrid::all(&schema());
        let cuts: Vec<u16> = g.cuts_in(0, Range::new(4, 7)).collect();
        assert_eq!(cuts, vec![5, 6, 7]);
        // Point ranges admit no cut.
        assert!(g.cuts_in(0, Range::new(3, 3)).next().is_none());
    }

    #[test]
    fn for_query_includes_endpoints() {
        let s = schema();
        let q = Query::new(vec![Pred::in_range(0, 3, 11)]).unwrap();
        let g = SplitGrid::for_query(&s, &q, 1);
        let cuts: Vec<u16> = g.cuts_in(0, Range::full(16)).collect();
        // midpoint 8 plus endpoints 3 and 12.
        assert_eq!(cuts, vec![3, 8, 12]);
    }

    #[test]
    fn for_query_clamps_endpoints() {
        let s = schema();
        // hi+1 == K is not a valid cut; lo == 0 is not a valid cut.
        let q = Query::new(vec![Pred::in_range(0, 0, 15)]).unwrap();
        let g = SplitGrid::for_query(&s, &q, 0);
        assert_eq!(g.num_cuts(0), 0);
    }

    #[test]
    fn spsf_logs() {
        let g = SplitGrid::equal_width(&schema(), 3);
        assert!((g.log10_spsf() - (9.0f64).log10()).abs() < 1e-12);
    }

    #[test]
    fn binary_domain_has_exactly_one_cut() {
        // Domain size 2: the only valid cut is 1, at every SPSF >= 1.
        let s = Schema::new(vec![Attribute::new("flag", 2, 1.0)]).unwrap();
        for r in [1usize, 2, 5, 100] {
            let g = SplitGrid::equal_width(&s, r);
            assert_eq!(g.cuts_in(0, Range::full(2)).collect::<Vec<_>>(), vec![1], "r={r}");
        }
        assert_eq!(SplitGrid::all(&s).num_cuts(0), 1);
        assert_eq!(SplitGrid::all(&s).spsf(), 1.0);
    }

    #[test]
    fn spsf_one_is_the_midpoint_only() {
        // SPSF=1 keeps a single midpoint cut per attribute, so the grid's
        // product measure is 1 per attribute and cuts never fall outside
        // the open interval (0, K).
        let s = schema();
        let g = SplitGrid::equal_width(&s, 1);
        for a in 0..s.len() {
            assert_eq!(g.num_cuts(a), 1, "attr {a}");
            let c = g.cuts_in(a, Range::full(s.domain(a))).next().unwrap();
            assert!(c >= 1 && c < s.domain(a));
        }
        assert_eq!(g.spsf(), 1.0);
        assert_eq!(g.log10_spsf(), 0.0);
    }

    #[test]
    fn empty_candidate_set() {
        // r=0 yields no candidate cuts anywhere; spsf() uses max(1) so
        // the product measure stays 1 rather than collapsing to 0.
        let s = schema();
        let g = SplitGrid::equal_width(&s, 0);
        for a in 0..s.len() {
            assert_eq!(g.num_cuts(a), 0, "attr {a}");
            assert!(g.cuts_in(a, Range::full(s.domain(a))).next().is_none());
        }
        assert_eq!(g.spsf(), 1.0);
        assert_eq!(g.log10_spsf(), 0.0);
        // A point range admits no cut even on an unrestricted grid.
        let all = SplitGrid::all(&s);
        assert!(all.cuts_in(0, Range::new(9, 9)).next().is_none());
    }
}
