//! Dataset-backed probability estimation by counting (§2.3, §5).
//!
//! A context holds the sorted row ids of the historical tuples that
//! satisfy the context's range constraints — the set
//! `D(R_1, …, R_n)` of §5. Refining a context by one more range filters
//! the parent's rows with a single column scan, mirroring the paper's
//! incremental per-attribute index construction. Truth bitmasks over the
//! query's predicates are computed once per (dataset, query) pair and
//! cached, so building a conditioned joint truth distribution is a gather
//! plus an aggregation.

use std::sync::Arc;

use acqp_obs::{Counter, Recorder};

use crate::attr::AttrId;
use crate::dataset::Dataset;
use crate::prob::{Estimator, TruthTable};
use crate::query::Query;
use crate::range::{Range, Ranges};
use crate::sync::NoPoisonMutex;

/// A conditioned view of the dataset: range constraints plus the rows
/// that satisfy them.
#[derive(Debug, Clone)]
pub struct CountingCtx {
    ranges: Ranges,
    rows: Arc<Vec<u32>>,
}

impl CountingCtx {
    /// Row ids backing this context.
    pub fn rows(&self) -> &[u32] {
        &self.rows
    }
}

/// Estimates every probability by counting a historical [`Dataset`].
pub struct CountingEstimator<'d> {
    data: &'d Dataset,
    root_ranges: Ranges,
    /// Memoized per-row truth bitmasks for the most recent query,
    /// behind a non-poisoning mutex so planner worker threads can share
    /// the estimator even when one of them panics mid-search.
    mask_cache: NoPoisonMutex<Option<(Query, Arc<Vec<u64>>)>>,
    /// `estimator.mask_cache.hit` — lookups served from the cache.
    cache_hit: Counter,
    /// `estimator.mask_cache.miss` — lookups that rebuilt the masks.
    cache_miss: Counter,
}

impl<'d> CountingEstimator<'d> {
    /// Builds an estimator over `data`. The schema is implied by the
    /// dataset's width and per-column maxima; use
    /// [`CountingEstimator::with_ranges`] to pass explicit domains.
    pub fn new(data: &'d Dataset) -> Self {
        // Domain sizes are recovered from the dataset's columns; planners
        // always pass schema-derived root ranges through `refine`, so the
        // root here only needs to admit every row.
        let ranges = Ranges::from_vec(
            (0..data.width())
                .map(|a| {
                    let hi = data.column(a).iter().copied().max().unwrap_or(0);
                    Range::new(0, hi)
                })
                .collect(),
        );
        Self::with_ranges(data, ranges)
    }

    /// Builds an estimator whose root context carries the given (full)
    /// ranges — normally `Ranges::root(schema)`.
    pub fn with_ranges(data: &'d Dataset, ranges: Ranges) -> Self {
        debug_assert_eq!(ranges.len(), data.width());
        CountingEstimator {
            data,
            root_ranges: ranges,
            mask_cache: NoPoisonMutex::new(None),
            cache_hit: Counter::new(),
            cache_miss: Counter::new(),
        }
    }

    /// Registers the mask-cache hit/miss counters
    /// (`estimator.mask_cache.hit` / `.miss`) on `rec`, replacing the
    /// detached defaults.
    pub fn with_recorder(mut self, rec: &Recorder) -> Self {
        self.cache_hit = rec.counter("estimator.mask_cache.hit");
        self.cache_miss = rec.counter("estimator.mask_cache.miss");
        self
    }

    /// The underlying dataset.
    pub fn dataset(&self) -> &'d Dataset {
        self.data
    }

    /// The cached per-row truth masks, if a query has been estimated:
    /// the pair `(query, masks)` where `masks[row]` is
    /// [`Query::truth_mask`] of that historical row. This is the
    /// estimator's learned statistic worth checkpointing — recomputing
    /// it is one full pass over the dataset per query.
    pub fn cached_masks(&self) -> Option<(Query, Vec<u64>)> {
        let cache = self.mask_cache.lock();
        cache.as_ref().map(|(q, m)| (q.clone(), m.as_ref().clone()))
    }

    /// Seeds the mask cache from a recovered checkpoint. The masks must
    /// have been produced by [`CountingEstimator::cached_masks`] over a
    /// bit-identical dataset; a length mismatch means the checkpoint does
    /// not describe this dataset and is ignored (the cache will simply
    /// rebuild on first use).
    pub fn seed_masks(&self, query: Query, masks: Vec<u64>) -> bool {
        if masks.len() != self.data.len() {
            return false;
        }
        let mut cache = self.mask_cache.lock();
        *cache = Some((query, Arc::new(masks)));
        true
    }

    fn masks_for(&self, query: &Query) -> Arc<Vec<u64>> {
        let mut cache = self.mask_cache.lock();
        if let Some((q, masks)) = cache.as_ref() {
            if q == query {
                self.cache_hit.incr(1);
                return Arc::clone(masks);
            }
        }
        self.cache_miss.incr(1);
        let masks: Vec<u64> =
            (0..self.data.len()).map(|row| query.truth_mask(|a| self.data.value(row, a))).collect();
        let masks = Arc::new(masks);
        *cache = Some((query.clone(), Arc::clone(&masks)));
        masks
    }
}

impl Estimator for CountingEstimator<'_> {
    type Ctx = CountingCtx;

    fn root(&self) -> CountingCtx {
        CountingCtx {
            ranges: self.root_ranges.clone(),
            rows: Arc::new((0..self.data.len() as u32).collect()),
        }
    }

    fn refine(&self, ctx: &CountingCtx, attr: AttrId, r: Range) -> CountingCtx {
        debug_assert!(ctx.ranges.get(attr).contains_range(r), "refine must narrow the range");
        let col = self.data.column(attr);
        let rows: Vec<u32> =
            ctx.rows.iter().copied().filter(|&i| r.contains(col[i as usize])).collect();
        CountingCtx { ranges: ctx.ranges.with(attr, r), rows: Arc::new(rows) }
    }

    fn ranges<'c>(&self, ctx: &'c CountingCtx) -> &'c Ranges {
        &ctx.ranges
    }

    fn mass(&self, ctx: &CountingCtx) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            ctx.rows.len() as f64 / self.data.len() as f64
        }
    }

    fn support(&self, ctx: &CountingCtx) -> usize {
        ctx.rows.len()
    }

    fn hist(&self, ctx: &CountingCtx, attr: AttrId) -> Vec<f64> {
        let r = ctx.ranges.get(attr);
        let k = usize::from(r.hi()) + 1;
        let mut h = vec![0.0f64; k];
        if ctx.rows.is_empty() {
            // Uniform fallback over the context's range (§5's estimates
            // are undefined with no support; planners treat such branches
            // as zero-mass anyway).
            let w = 1.0 / f64::from(r.width() as u16);
            for v in r.lo()..=r.hi() {
                h[usize::from(v)] = w;
            }
            return h;
        }
        let col = self.data.column(attr);
        let inc = 1.0 / ctx.rows.len() as f64;
        for &row in ctx.rows.iter() {
            let v = col[row as usize];
            debug_assert!(r.contains(v));
            h[usize::from(v)] += inc;
        }
        h
    }

    fn truth_table(&self, ctx: &CountingCtx, query: &Query) -> TruthTable {
        let masks = self.masks_for(query);
        TruthTable::from_masks(query.len(), ctx.rows.iter().map(|&row| masks[row as usize]))
    }

    fn truth_by_value(&self, ctx: &CountingCtx, attr: AttrId, query: &Query) -> Vec<TruthTable> {
        use crate::prob::TruthAccum;
        let r = ctx.ranges.get(attr);
        let masks = self.masks_for(query);
        let col = self.data.column(attr);
        let mut accs: Vec<TruthAccum> = (0..r.width()).map(|_| TruthAccum::new()).collect();
        for &row in ctx.rows.iter() {
            let v = col[row as usize];
            debug_assert!(r.contains(v));
            accs[usize::from(v - r.lo())].add(masks[row as usize], 1.0);
        }
        accs.into_iter().map(|a| a.into_table(query.len())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::{Attribute, Schema};
    use crate::query::Pred;

    fn setup() -> (Schema, Dataset) {
        let schema = Schema::new(vec![
            Attribute::new("a", 4, 100.0),
            Attribute::new("b", 4, 100.0),
            Attribute::new("t", 2, 1.0),
        ])
        .unwrap();
        // t=0 rows: a small, b large. t=1 rows: a large, b small.
        let mut rows = Vec::new();
        for i in 0..4u16 {
            rows.push(vec![i % 2, 2 + i % 2, 0]);
            rows.push(vec![2 + i % 2, i % 2, 1]);
        }
        let data = Dataset::from_rows(&schema, rows).unwrap();
        (schema, data)
    }

    #[test]
    fn root_spans_everything() {
        let (schema, data) = setup();
        let est = CountingEstimator::with_ranges(&data, Ranges::root(&schema));
        let root = est.root();
        assert_eq!(est.support(&root), 8);
        assert_eq!(est.mass(&root), 1.0);
        assert_eq!(est.ranges(&root).get(0), Range::full(4));
    }

    #[test]
    fn refine_filters_rows() {
        let (schema, data) = setup();
        let est = CountingEstimator::with_ranges(&data, Ranges::root(&schema));
        let root = est.root();
        let t0 = est.refine(&root, 2, Range::new(0, 0));
        assert_eq!(est.support(&t0), 4);
        assert_eq!(est.mass(&t0), 0.5);
        // All t=0 rows have small a.
        let small_a = est.refine(&t0, 0, Range::new(0, 1));
        assert_eq!(est.support(&small_a), 4);
        let large_a = est.refine(&t0, 0, Range::new(2, 3));
        assert_eq!(est.support(&large_a), 0);
    }

    #[test]
    fn hist_is_normalized_and_conditional() {
        let (schema, data) = setup();
        let est = CountingEstimator::with_ranges(&data, Ranges::root(&schema));
        let root = est.root();
        let h = est.hist(&root, 0);
        assert!((h.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((h[0] - 0.25).abs() < 1e-12);

        let t1 = est.refine(&root, 2, Range::new(1, 1));
        let h = est.hist(&t1, 0);
        assert_eq!(h[0], 0.0);
        assert!((h[2] - 0.5).abs() < 1e-12);
        assert!((h[3] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn hist_uniform_fallback_on_empty() {
        let (schema, data) = setup();
        let est = CountingEstimator::with_ranges(&data, Ranges::root(&schema));
        let root = est.root();
        let t0 = est.refine(&root, 2, Range::new(0, 0));
        let empty = est.refine(&t0, 0, Range::new(2, 3));
        assert_eq!(est.support(&empty), 0);
        let h = est.hist(&empty, 0);
        assert!((h[2] - 0.5).abs() < 1e-12);
        assert!((h[3] - 0.5).abs() < 1e-12);
        assert_eq!(h[0], 0.0);
    }

    #[test]
    fn prob_below_matches_counts() {
        let (schema, data) = setup();
        let est = CountingEstimator::with_ranges(&data, Ranges::root(&schema));
        let root = est.root();
        // P(a < 2) = 1/2 overall.
        assert!((est.prob_below(&root, 0, 2) - 0.5).abs() < 1e-12);
        let t1 = est.refine(&root, 2, Range::new(1, 1));
        // Given t=1, a is always >= 2.
        assert_eq!(est.prob_below(&t1, 0, 2), 0.0);
    }

    #[test]
    fn truth_table_counts_patterns() {
        let (schema, data) = setup();
        let est = CountingEstimator::with_ranges(&data, Ranges::root(&schema));
        let q = Query::new(vec![Pred::in_range(0, 0, 1), Pred::in_range(1, 0, 1)]).unwrap();
        let root = est.root();
        let t = est.truth_table(&root, &q);
        assert_eq!(t.total(), 8.0);
        // t=0 rows satisfy pred0 only (mask 01); t=1 rows satisfy pred1
        // only (mask 10): perfectly anti-correlated.
        assert!((t.prob_all(0b01) - 0.5).abs() < 1e-12);
        assert!((t.prob_all(0b10) - 0.5).abs() < 1e-12);
        assert_eq!(t.prob_all(0b11), 0.0);

        // Conditioned on t=1, pred1 always true.
        let t1 = est.refine(&root, 2, Range::new(1, 1));
        let tt = est.truth_table(&t1, &q);
        assert!((tt.prob_all(0b10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mask_cache_reused_and_invalidated() {
        let (schema, data) = setup();
        let est = CountingEstimator::with_ranges(&data, Ranges::root(&schema));
        let q1 = Query::new(vec![Pred::in_range(0, 0, 1)]).unwrap();
        let q2 = Query::new(vec![Pred::in_range(1, 0, 1)]).unwrap();
        let root = est.root();
        let a = est.truth_table(&root, &q1);
        let b = est.truth_table(&root, &q2);
        let a2 = est.truth_table(&root, &q1);
        assert_eq!(a, a2);
        assert!((a.prob_all(0b1) - 0.5).abs() < 1e-12);
        assert!((b.prob_all(0b1) - 0.5).abs() < 1e-12);
    }

    /// Satellite check for PR 2: planning the same query repeatedly must
    /// serve truth masks from the cache, and the recorder must see it.
    #[test]
    fn mask_cache_hit_rate_reported_through_recorder() {
        use acqp_obs::{NoopSink, Recorder};

        let (schema, data) = setup();
        let rec = Recorder::new(std::sync::Arc::new(NoopSink));
        let est = CountingEstimator::with_ranges(&data, Ranges::root(&schema)).with_recorder(&rec);
        let q = Query::new(vec![Pred::in_range(0, 0, 1), Pred::in_range(1, 0, 1)]).unwrap();
        let root = est.root();
        for _ in 0..3 {
            est.truth_table(&root, &q);
            est.truth_by_value(&root, 0, &q);
        }
        let snap = rec.drain();
        assert_eq!(snap.counter("estimator.mask_cache.miss"), 1);
        assert_eq!(snap.counter("estimator.mask_cache.hit"), 5);
    }

    /// Checkpoint support: exported masks re-seeded into a fresh
    /// estimator must reproduce the same truth tables without a rebuild.
    #[test]
    fn cached_masks_round_trip_bitwise() {
        let (schema, data) = setup();
        let est = CountingEstimator::with_ranges(&data, Ranges::root(&schema));
        let q = Query::new(vec![Pred::in_range(0, 0, 1), Pred::in_range(1, 0, 1)]).unwrap();
        assert!(est.cached_masks().is_none());
        let root = est.root();
        let before = est.truth_table(&root, &q);
        let (cq, masks) = est.cached_masks().unwrap();
        assert_eq!(cq, q);

        use acqp_obs::{NoopSink, Recorder};
        let rec = Recorder::new(std::sync::Arc::new(NoopSink));
        let fresh =
            CountingEstimator::with_ranges(&data, Ranges::root(&schema)).with_recorder(&rec);
        assert!(fresh.seed_masks(cq, masks));
        let after = fresh.truth_table(&fresh.root(), &q);
        assert_eq!(before, after);
        // The seeded cache serves the query without a single miss.
        let snap = rec.drain();
        assert_eq!(snap.counter("estimator.mask_cache.miss"), 0);
        assert_eq!(snap.counter("estimator.mask_cache.hit"), 1);

        // Masks for a different dataset shape are rejected, not trusted.
        let thin = Dataset::from_rows(&schema, vec![vec![0, 0, 0]]).unwrap();
        let other = CountingEstimator::with_ranges(&thin, Ranges::root(&schema));
        assert!(!other.seed_masks(q, vec![0; 99]));
    }

    #[test]
    fn empty_dataset() {
        let schema = Schema::new(vec![Attribute::new("a", 4, 1.0)]).unwrap();
        let data = Dataset::from_rows(&schema, vec![]).unwrap();
        let est = CountingEstimator::with_ranges(&data, Ranges::root(&schema));
        let root = est.root();
        assert_eq!(est.mass(&root), 0.0);
        assert_eq!(est.support(&root), 0);
        let h = est.hist(&root, 0);
        assert!((h.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }
}
