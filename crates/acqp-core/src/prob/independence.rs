//! A deliberately correlation-blind estimator.
//!
//! [`IndependenceEstimator`] answers every probability as if the
//! attributes were mutually independent: each attribute keeps only its
//! marginal histogram, and joint truth distributions are products of
//! per-predicate marginals. It exists as an *ablation baseline*: running
//! the conditional planner on top of it shows how much of the paper's
//! gain comes from modelling correlations rather than from the plan
//! machinery itself — under independence, conditioning on one attribute
//! never changes another's distribution, so `GREEDYSPLIT` finds no
//! beneficial split and the planner collapses to the `Naive`-style
//! marginal ordering.

use std::sync::Arc;

use crate::attr::AttrId;
use crate::dataset::Dataset;
use crate::prob::{Estimator, TruthTable};
use crate::query::Query;
use crate::range::{Range, Ranges};

/// Context: range constraints over independent marginals.
#[derive(Debug, Clone)]
pub struct IndepCtx {
    ranges: Ranges,
    /// Probability mass of each attribute's current range under its
    /// marginal (cached so `mass` is O(1) after refinement).
    range_mass: Arc<Vec<f64>>,
}

/// Estimates probabilities from per-attribute marginal histograms,
/// assuming full independence.
pub struct IndependenceEstimator {
    root_ranges: Ranges,
    /// Marginal histogram of every attribute over its full domain.
    marginals: Vec<Vec<f64>>,
    /// Effective sample size (for `support`).
    rows: usize,
}

impl IndependenceEstimator {
    /// Fits marginals from `data` with root ranges `ranges`.
    pub fn new(data: &Dataset, ranges: Ranges) -> Self {
        debug_assert_eq!(data.width(), ranges.len());
        let marginals = (0..data.width())
            .map(|a| {
                let k = usize::from(ranges.get(a).hi()) + 1;
                let mut h = vec![0.0f64; k];
                for &v in data.column(a) {
                    h[usize::from(v)] += 1.0;
                }
                let z: f64 = h.iter().sum();
                if z > 0.0 {
                    h.iter_mut().for_each(|p| *p /= z);
                } else {
                    h.iter_mut().for_each(|p| *p = 1.0 / k as f64);
                }
                h
            })
            .collect();
        IndependenceEstimator { root_ranges: ranges, marginals, rows: data.len() }
    }

    fn range_mass(&self, a: AttrId, r: Range) -> f64 {
        self.marginals[a][usize::from(r.lo())..=usize::from(r.hi())].iter().sum()
    }
}

impl Estimator for IndependenceEstimator {
    type Ctx = IndepCtx;

    fn root(&self) -> IndepCtx {
        let mass = (0..self.root_ranges.len())
            .map(|a| self.range_mass(a, self.root_ranges.get(a)))
            .collect();
        IndepCtx { ranges: self.root_ranges.clone(), range_mass: Arc::new(mass) }
    }

    fn refine(&self, ctx: &IndepCtx, attr: AttrId, r: Range) -> IndepCtx {
        debug_assert!(ctx.ranges.get(attr).contains_range(r));
        let mut mass = ctx.range_mass.as_ref().clone();
        mass[attr] = self.range_mass(attr, r);
        IndepCtx { ranges: ctx.ranges.with(attr, r), range_mass: Arc::new(mass) }
    }

    fn ranges<'c>(&self, ctx: &'c IndepCtx) -> &'c Ranges {
        &ctx.ranges
    }

    fn mass(&self, ctx: &IndepCtx) -> f64 {
        ctx.range_mass.iter().product()
    }

    fn support(&self, ctx: &IndepCtx) -> usize {
        // Effective support scales with the region's probability.
        (self.rows as f64 * self.mass(ctx)).round() as usize
    }

    fn hist(&self, ctx: &IndepCtx, attr: AttrId) -> Vec<f64> {
        let r = ctx.ranges.get(attr);
        let mut h = vec![0.0f64; usize::from(r.hi()) + 1];
        let z = ctx.range_mass[attr];
        if z > 0.0 {
            for v in r.lo()..=r.hi() {
                h[usize::from(v)] = self.marginals[attr][usize::from(v)] / z;
            }
        } else {
            let w = 1.0 / f64::from(r.width() as u16);
            for v in r.lo()..=r.hi() {
                h[usize::from(v)] = w;
            }
        }
        h
    }

    fn truth_table(&self, ctx: &IndepCtx, query: &Query) -> TruthTable {
        // Product distribution over independent predicate bits,
        // conditioned on each attribute's current range.
        let probs: Vec<f64> = query
            .preds()
            .iter()
            .map(|p| {
                let a = p.attr();
                let r = ctx.ranges.get(a);
                let z = ctx.range_mass[a];
                if z <= 0.0 {
                    return 0.5;
                }
                let mut t = 0.0;
                for v in r.lo()..=r.hi() {
                    if p.eval(v) {
                        t += self.marginals[a][usize::from(v)];
                    }
                }
                (t / z).clamp(0.0, 1.0)
            })
            .collect();
        let m = query.len();
        // Enumerate the 2^m product outcomes (queries are small enough
        // for the planners that call this; guarded).
        assert!(m <= 24, "independence truth table is dense in 2^m");
        let entries = (0..(1u64 << m)).map(|mask| {
            let mut w = self.rows.max(1) as f64;
            for (j, &p) in probs.iter().enumerate() {
                w *= if mask & (1 << j) != 0 { p } else { 1.0 - p };
            }
            (mask, w)
        });
        TruthTable::from_weighted(m, entries.filter(|(_, w)| *w > 0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::{Attribute, Schema};
    use crate::planner::{GreedyPlanner, SeqPlanner};
    use crate::prob::CountingEstimator;
    use crate::query::Pred;

    /// Perfectly anti-correlated data: a == 1-b always; t predicts both.
    fn setup() -> (Schema, Dataset) {
        let schema = Schema::new(vec![
            Attribute::new("a", 2, 10.0),
            Attribute::new("b", 2, 10.0),
            Attribute::new("t", 2, 0.5),
        ])
        .unwrap();
        let rows: Vec<Vec<u16>> = (0..100).map(|i| vec![i % 2, 1 - i % 2, i % 2]).collect();
        (schema.clone(), Dataset::from_rows(&schema, rows).unwrap())
    }

    #[test]
    fn marginals_match_but_joint_factorizes() {
        let (schema, data) = setup();
        let est = IndependenceEstimator::new(&data, Ranges::root(&schema));
        let root = est.root();
        assert!((est.mass(&root) - 1.0).abs() < 1e-9);
        let h = est.hist(&root, 0);
        assert!((h[0] - 0.5).abs() < 1e-9);

        let q = Query::new(vec![Pred::in_range(0, 1, 1), Pred::in_range(1, 1, 1)]).unwrap();
        let t = est.truth_table(&root, &q);
        // Truth: P(a=1 AND b=1) = 0 in the data, but independence says 1/4.
        assert!((t.prob_all(0b11) - 0.25).abs() < 1e-9);
        let counting = CountingEstimator::with_ranges(&data, Ranges::root(&schema));
        let ct = counting.truth_table(&counting.root(), &q);
        assert_eq!(ct.prob_all(0b11), 0.0);
    }

    #[test]
    fn refinement_never_changes_other_attributes() {
        let (schema, data) = setup();
        let est = IndependenceEstimator::new(&data, Ranges::root(&schema));
        let root = est.root();
        let h_before = est.hist(&root, 0);
        let t1 = est.refine(&root, 2, Range::new(1, 1));
        let h_after = est.hist(&t1, 0);
        assert_eq!(h_before, h_after, "independence: conditioning is a no-op elsewhere");
        assert!((est.mass(&t1) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn greedy_planner_finds_no_splits_under_independence() {
        let (schema, data) = setup();
        let q = Query::new(vec![Pred::in_range(0, 1, 1), Pred::in_range(1, 1, 1)]).unwrap();
        let indep = IndependenceEstimator::new(&data, Ranges::root(&schema));
        let plan = GreedyPlanner::new(10).plan(&schema, &q, &indep).unwrap();
        assert_eq!(
            plan.split_count(),
            0,
            "no conditioning can help when nothing is correlated: {plan:?}"
        );
        // And the sequential order equals the Naive ranking.
        let naive = SeqPlanner::naive().plan(&schema, &q, &indep).unwrap();
        assert_eq!(plan, naive);
    }

    #[test]
    fn support_scales_with_mass() {
        let (schema, data) = setup();
        let est = IndependenceEstimator::new(&data, Ranges::root(&schema));
        let root = est.root();
        assert_eq!(est.support(&root), 100);
        let half = est.refine(&root, 0, Range::new(0, 0));
        assert_eq!(est.support(&half), 50);
    }
}
