//! Probability estimation from historical data (§2.3, §5).
//!
//! The planners need two families of quantities at every subproblem
//! `Subproblem(φ, R_1, …, R_n)`:
//!
//! 1. *Range probabilities* `P(X_i ∈ [a, x−1] | R_1, …, R_n)` — obtained
//!    from a per-attribute normalized histogram of the conditioned
//!    distribution, accumulated incrementally (Eq. 7).
//! 2. *Joint truth distributions* over the rediscretized query
//!    predicates `X'_1, …, X'_m` (§4.1.2, §5.2) — represented here as a
//!    weighted [`TruthTable`] of predicate truth bitmasks.
//!
//! The [`Estimator`] trait abstracts over where those quantities come
//! from: [`CountingEstimator`] answers them by counting a historical
//! dataset exactly as §5 describes; the `acqp-gm` crate answers them
//! from a Chow–Liu tree model (§7, "Graphical Models").

mod counting;
mod independence;
mod truth;

pub use counting::{CountingCtx, CountingEstimator};
pub use independence::{IndepCtx, IndependenceEstimator};
pub use truth::{TruthAccum, TruthTable};

use crate::attr::AttrId;
use crate::query::Query;
use crate::range::{Range, Ranges};

/// Legacy alias retained for handle-style call sites; contexts are owned
/// values (`Estimator::Ctx`), not ids.
pub type CtxId = usize;

/// A conditioned probability model over the schema's attributes.
///
/// A `Ctx` value represents the model conditioned on a conjunction of
/// range constraints — one subproblem of the planners' recursion.
/// Contexts are refined functionally: [`Estimator::refine`] returns a new
/// context conditioned on one additional range.
///
/// Estimators are `Sync` and contexts are `Send + Sync` so the planners
/// can fan subproblems out across a thread pool: workers share one
/// estimator by reference and move contexts through a work queue.
pub trait Estimator: Sync {
    /// Conditioning context; cheap to clone.
    type Ctx: Clone + Send + Sync;

    /// The unconditioned model (every attribute spans its full domain).
    fn root(&self) -> Self::Ctx;

    /// Conditions `ctx` on `X_attr ∈ r`. `r` must be a subset of the
    /// context's current range for `attr`.
    fn refine(&self, ctx: &Self::Ctx, attr: AttrId, r: Range) -> Self::Ctx;

    /// The range constraints defining `ctx`.
    fn ranges<'c>(&self, ctx: &'c Self::Ctx) -> &'c Ranges;

    /// `P(R_1, …, R_n)` — probability mass of this context relative to
    /// the root; the leaf-priority weight of Fig. 7.
    fn mass(&self, ctx: &Self::Ctx) -> f64;

    /// Number of samples (or effective samples) backing the context.
    /// Zero means the conditioned distribution has no support and
    /// histograms fall back to uniform.
    fn support(&self, ctx: &Self::Ctx) -> usize;

    /// Normalized histogram `P(X_attr = v | ctx)` over the full domain
    /// `0..K_attr` (zero outside the context's range). When the context
    /// has no support the histogram is uniform over the range.
    fn hist(&self, ctx: &Self::Ctx, attr: AttrId) -> Vec<f64>;

    /// Weighted joint truth distribution of the query's predicates
    /// conditioned on `ctx` (§5.2's rediscretized joint histogram).
    fn truth_table(&self, ctx: &Self::Ctx, query: &Query) -> TruthTable;

    /// For every value `v` in the context's range of `attr`, the joint
    /// truth distribution of the query's predicates conditioned on
    /// `ctx ∧ (X_attr = v)`, indexed by `v − range.lo`.
    ///
    /// The greedy split search (Fig. 6) sweeps candidate cuts left to
    /// right and derives each side's truth table by prefix-merging these
    /// per-value tables, avoiding a context refinement per candidate.
    /// The default implementation refines once per value; counting
    /// estimators override it with a single pass.
    fn truth_by_value(&self, ctx: &Self::Ctx, attr: AttrId, query: &Query) -> Vec<TruthTable> {
        let r = self.ranges(ctx).get(attr);
        (r.lo()..=r.hi())
            .map(|v| {
                let child = self.refine(ctx, attr, Range::new(v, v));
                self.truth_table(&child, query)
            })
            .collect()
    }

    /// `P(X_attr ∈ [range.lo, cut−1] | ctx)` — the split probability
    /// `P_{<x}` of Figs. 5–6, derived from [`Estimator::hist`] by the
    /// incremental rule of Eq. (7).
    fn prob_below(&self, ctx: &Self::Ctx, attr: AttrId, cut: u16) -> f64 {
        let h = self.hist(ctx, attr);
        let r = self.ranges(ctx).get(attr);
        h[usize::from(r.lo())..usize::from(cut)].iter().sum()
    }
}
