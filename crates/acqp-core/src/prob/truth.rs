//! Weighted joint truth distributions over query predicates.
//!
//! §4.1.2 rediscretizes each query attribute `X_i` into a boolean
//! `X'_i = [X_i satisfies φ_i]` and plans over the joint distribution
//! `P(X'_1, …, X'_m)`. We represent that joint as a *weighted multiset of
//! truth bitmasks*: one entry per distinct outcome pattern seen in the
//! conditioned data (or sampled from a model), with its weight. On
//! correlated data this is dramatically smaller than the dense `2^m`
//! table, and every quantity the sequential planners need — prefix
//! probabilities, greedy conditionals, the `O(m·2^m)` subset DP — reads
//! straight off it.

use std::collections::BTreeMap;

/// Weighted multiset of predicate-truth bitmasks (bit `j` ⇔ predicate
/// `j` holds).
///
/// ```
/// use acqp_core::TruthTable;
///
/// // Three historical tuples over two predicates: both pass, only the
/// // first passes, neither passes.
/// let t = TruthTable::from_masks(2, [0b11, 0b01, 0b00]);
/// assert_eq!(t.total(), 3.0);
/// assert!((t.marginal(0) - 2.0 / 3.0).abs() < 1e-12);
/// // P(pred1 | pred0) = 1/2.
/// assert!((t.cond_prob(1, 0b01) - 0.5).abs() < 1e-12);
/// // Expected cost of evaluating pred0 (cost 10) then pred1 (cost 4):
/// // always pay 10, pay 4 in the 2/3 of cases where pred0 held.
/// let c = t.seq_cost(&[0, 1], &[10.0, 4.0]);
/// assert!((c - (10.0 + 4.0 * 2.0 / 3.0)).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TruthTable {
    m: usize,
    masks: Vec<u64>,
    weights: Vec<f64>,
    total: f64,
}

impl TruthTable {
    /// Aggregates an iterator of `(mask, weight)` pairs over `m`
    /// predicates.
    pub fn from_weighted(m: usize, it: impl IntoIterator<Item = (u64, f64)>) -> Self {
        debug_assert!(m <= 64);
        let mut agg: BTreeMap<u64, f64> = BTreeMap::new();
        for (mask, w) in it {
            debug_assert!(m == 64 || mask < (1u64 << m));
            *agg.entry(mask).or_insert(0.0) += w;
        }
        // BTreeMap iteration is already mask-ordered — the canonical
        // layout the planners' bitwise-determinism guarantee rests on.
        let (masks, weights): (Vec<u64>, Vec<f64>) = agg.into_iter().unzip();
        let total = weights.iter().sum();
        TruthTable { m, masks, weights, total }
    }

    /// Aggregates unit-weight masks (one per historical tuple).
    pub fn from_masks(m: usize, masks: impl IntoIterator<Item = u64>) -> Self {
        Self::from_weighted(m, masks.into_iter().map(|k| (k, 1.0)))
    }

    /// Number of predicates.
    pub fn num_preds(&self) -> usize {
        self.m
    }

    /// Number of distinct truth patterns.
    pub fn num_patterns(&self) -> usize {
        self.masks.len()
    }

    /// Total weight (the conditioned sample mass).
    pub fn total(&self) -> f64 {
        self.total
    }

    /// True when the table has no support.
    pub fn is_empty(&self) -> bool {
        self.total <= 0.0
    }

    /// `P(all predicates in `subset` are true)`.
    pub fn prob_all(&self, subset: u64) -> f64 {
        if self.total <= 0.0 {
            return 0.0;
        }
        self.weight_superset(subset) / self.total
    }

    /// Total weight of patterns whose mask is a superset of `subset`.
    pub fn weight_superset(&self, subset: u64) -> f64 {
        self.masks
            .iter()
            .zip(&self.weights)
            .filter(|(&mask, _)| mask & subset == subset)
            .map(|(_, &w)| w)
            .sum()
    }

    /// `P(φ_j | all predicates in `given` true)`. Returns 0.5 when the
    /// conditioning event has no support (uninformative prior; such
    /// states are reached with probability 0 under the model anyway).
    pub fn cond_prob(&self, j: usize, given: u64) -> f64 {
        let g = self.weight_superset(given);
        if g <= 0.0 {
            return 0.5;
        }
        self.weight_superset(given | (1 << j)) / g
    }

    /// Expected cost of evaluating predicates in `order` sequentially
    /// with early termination, where `eff_cost[j]` is the (effective)
    /// acquisition cost of predicate `j`'s attribute:
    /// `Σ_t eff_cost[o_t] · P(o_1 … o_{t−1} all true)`.
    pub fn seq_cost(&self, order: &[usize], eff_cost: &[f64]) -> f64 {
        if self.total <= 0.0 {
            // No support: charge the full pessimistic order (all
            // predicates evaluated); this only matters for zero-mass
            // branches.
            return order.iter().map(|&j| eff_cost[j]).sum();
        }
        let mut cost = 0.0;
        let mut prefix: u64 = 0;
        let mut survivors = self.total;
        for &j in order {
            cost += eff_cost[j] * (survivors / self.total);
            prefix |= 1 << j;
            survivors = self.weight_superset(prefix);
            if survivors <= 0.0 {
                break;
            }
        }
        cost
    }

    /// Like [`TruthTable::seq_cost`] but with order-dependent costs from
    /// a [`crate::costmodel::CostModel`]: `attr_of[j]` is predicate
    /// `j`'s attribute, and `initial` the attributes already acquired
    /// when the sequence starts. Every surviving path has acquired the
    /// same attributes at step `t`, so the acquired mask evolves
    /// deterministically along the order.
    pub fn seq_cost_model(
        &self,
        order: &[usize],
        attr_of: &[crate::attr::AttrId],
        schema: &crate::attr::Schema,
        model: &crate::costmodel::CostModel,
        initial: u64,
    ) -> f64 {
        let mut acquired = initial;
        if self.total <= 0.0 {
            let mut cost = 0.0;
            for &j in order {
                cost += model.cost(schema, attr_of[j], acquired);
                acquired |= 1 << attr_of[j];
            }
            return cost;
        }
        let mut cost = 0.0;
        let mut prefix: u64 = 0;
        let mut survivors = self.total;
        for &j in order {
            cost += model.cost(schema, attr_of[j], acquired) * (survivors / self.total);
            acquired |= 1 << attr_of[j];
            prefix |= 1 << j;
            survivors = self.weight_superset(prefix);
            if survivors <= 0.0 {
                break;
            }
        }
        cost
    }

    /// Dense superset-sum table `g[S] = Σ_{mask ⊇ S} weight(mask)` for
    /// all `2^m` subsets, via the zeta transform. Used by the `OptSeq`
    /// subset DP; guarded to small `m` by callers.
    pub fn superset_weights(&self) -> Vec<f64> {
        assert!(self.m <= 25, "superset_weights is O(m·2^m); m={} too large", self.m);
        let size = 1usize << self.m;
        let mut g = vec![0.0f64; size];
        for (&mask, &w) in self.masks.iter().zip(&self.weights) {
            g[mask as usize] += w;
        }
        for bit in 0..self.m {
            let b = 1usize << bit;
            for s in 0..size {
                if s & b == 0 {
                    g[s] += g[s | b];
                }
            }
        }
        g
    }

    /// Marginal probability that predicate `j` holds.
    pub fn marginal(&self, j: usize) -> f64 {
        self.prob_all(1 << j)
    }

    /// Iterates over `(mask, weight)` pairs.
    pub fn entries(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.masks.iter().copied().zip(self.weights.iter().copied())
    }

    /// Projects onto a subset of predicates: bit `i` of the projected
    /// masks is bit `bits[i]` of the original. Used to compact a table to
    /// the undecided predicates before the `OptSeq` subset DP.
    pub fn project(&self, bits: &[usize]) -> TruthTable {
        TruthTable::from_weighted(
            bits.len(),
            self.entries().map(|(mask, w)| {
                let mut p = 0u64;
                for (i, &b) in bits.iter().enumerate() {
                    p |= ((mask >> b) & 1) << i;
                }
                (p, w)
            }),
        )
    }

    /// Per-pattern weight subtraction (`self − other`), clamped at zero.
    /// Used to derive the high side of a split from the whole table and
    /// the accumulated low side in one pass.
    pub fn subtract(&self, other: &TruthTable) -> TruthTable {
        debug_assert_eq!(self.m, other.m);
        let mut acc = TruthAccum::new();
        for (mask, w) in self.entries() {
            acc.add(mask, w);
        }
        for (mask, w) in other.entries() {
            acc.add(mask, -w);
        }
        acc.into_table(self.m)
    }
}

/// Mutable accumulator for building [`TruthTable`]s incrementally — the
/// prefix-merge used when sweeping split points left to right.
#[derive(Debug, Clone, Default)]
pub struct TruthAccum {
    agg: BTreeMap<u64, f64>,
}

impl TruthAccum {
    /// Empty accumulator.
    pub fn new() -> Self {
        TruthAccum { agg: BTreeMap::new() }
    }

    /// Adds weight `w` to pattern `mask`.
    pub fn add(&mut self, mask: u64, w: f64) {
        *self.agg.entry(mask).or_insert(0.0) += w;
    }

    /// Merges a whole table in.
    pub fn add_table(&mut self, t: &TruthTable) {
        for (mask, w) in t.entries() {
            self.add(mask, w);
        }
    }

    /// Snapshot as a [`TruthTable`] over `m` predicates, dropping
    /// non-positive weights.
    pub fn snapshot(&self, m: usize) -> TruthTable {
        TruthTable::from_weighted(
            m,
            self.agg.iter().filter(|(_, &w)| w > 0.0).map(|(&k, &w)| (k, w)),
        )
    }

    /// Consumes the accumulator into a [`TruthTable`].
    pub fn into_table(self, m: usize) -> TruthTable {
        self.snapshot(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Patterns: 11 (w=3), 01 (w=1), 00 (w=4) over m=2.
    fn table() -> TruthTable {
        TruthTable::from_weighted(2, vec![(0b11, 2.0), (0b01, 1.0), (0b00, 4.0), (0b11, 1.0)])
    }

    #[test]
    fn aggregation_merges_duplicates() {
        let t = table();
        assert_eq!(t.num_patterns(), 3);
        assert_eq!(t.total(), 8.0);
        assert_eq!(t.num_preds(), 2);
    }

    #[test]
    fn probabilities() {
        let t = table();
        assert!((t.prob_all(0b00) - 1.0).abs() < 1e-12);
        assert!((t.prob_all(0b01) - 0.5).abs() < 1e-12); // masks 11,01 -> 4/8
        assert!((t.prob_all(0b10) - 3.0 / 8.0).abs() < 1e-12);
        assert!((t.prob_all(0b11) - 3.0 / 8.0).abs() < 1e-12);
        assert!((t.marginal(0) - 0.5).abs() < 1e-12);
        // P(pred1 | pred0) = P(11)/P(01-bit) = (3/8)/(4/8)
        assert!((t.cond_prob(1, 0b01) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn cond_prob_no_support_returns_half() {
        let t = TruthTable::from_masks(2, vec![0b00]);
        assert_eq!(t.cond_prob(1, 0b01), 0.5);
    }

    #[test]
    fn seq_cost_matches_hand_computation() {
        let t = table();
        let costs = [10.0, 4.0];
        // Order [0, 1]: pay 10 always; pred0 true w.p. 1/2 -> pay 4 then.
        assert!((t.seq_cost(&[0, 1], &costs) - (10.0 + 0.5 * 4.0)).abs() < 1e-12);
        // Order [1, 0]: pay 4 always; pred1 true w.p. 3/8 -> pay 10 then.
        assert!((t.seq_cost(&[1, 0], &costs) - (4.0 + 3.0 / 8.0 * 10.0)).abs() < 1e-12);
    }

    #[test]
    fn seq_cost_empty_table_is_pessimistic() {
        let t = TruthTable::from_masks(2, Vec::<u64>::new());
        assert!(t.is_empty());
        assert_eq!(t.seq_cost(&[0, 1], &[10.0, 4.0]), 14.0);
    }

    #[test]
    fn superset_weights_zeta() {
        let t = table();
        let g = t.superset_weights();
        assert_eq!(g.len(), 4);
        assert!((g[0b00] - 8.0).abs() < 1e-12);
        assert!((g[0b01] - 4.0).abs() < 1e-12);
        assert!((g[0b10] - 3.0).abs() < 1e-12);
        assert!((g[0b11] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn project_gathers_bits() {
        let t = TruthTable::from_weighted(3, vec![(0b101, 2.0), (0b010, 3.0), (0b111, 1.0)]);
        let p = t.project(&[2, 0]); // new bit0 = old bit2, new bit1 = old bit0
        assert_eq!(p.num_preds(), 2);
        // 0b101 -> bit2=1,bit0=1 -> 0b11 (w=2); 0b010 -> 0b00 (w=3); 0b111 -> 0b11 (w=1)
        assert!((p.weight_superset(0b11) - 3.0).abs() < 1e-12);
        assert!((p.prob_all(0b00) - 1.0).abs() < 1e-12);
        assert_eq!(p.total(), 6.0);
    }

    #[test]
    fn subtract_and_accumulate() {
        let whole = TruthTable::from_weighted(2, vec![(0b11, 5.0), (0b01, 3.0)]);
        let part = TruthTable::from_weighted(2, vec![(0b11, 2.0)]);
        let rest = whole.subtract(&part);
        assert_eq!(rest.total(), 6.0);
        assert!((rest.weight_superset(0b11) - 3.0).abs() < 1e-12);

        let mut acc = TruthAccum::new();
        acc.add_table(&part);
        acc.add(0b01, 1.5);
        let snap = acc.snapshot(2);
        assert_eq!(snap.total(), 3.5);
    }

    #[test]
    fn superset_weights_against_bruteforce_random() {
        // Pseudo-random patterns, m = 5.
        let mut masks = Vec::new();
        let mut x = 0x9e3779b9u64;
        for _ in 0..200 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            masks.push((x >> 33) & 0b11111);
        }
        let t = TruthTable::from_masks(5, masks.clone());
        let g = t.superset_weights();
        for s in 0u64..32 {
            let brute = masks.iter().filter(|&&m| m & s == s).count() as f64;
            assert!((g[s as usize] - brute).abs() < 1e-9, "mismatch at {s}");
        }
    }
}
