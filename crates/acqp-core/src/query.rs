//! Range predicates and conjunctive queries.
//!
//! The paper's query class (Query 1, §1) is
//! `SELECT … WHERE l_1 ≤ a_1 ≤ r_1 AND … AND l_k ≤ a_k ≤ r_k`.
//! We additionally support negated ranges `NOT(l ≤ a ≤ r)`, which the
//! Garden workload of §6.2 uses.

use crate::attr::{AttrId, Schema};
use crate::error::{Error, Result};
use crate::range::{Range, Ranges};

/// A unary predicate over a single attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pred {
    /// `lo ≤ X_attr ≤ hi`.
    In {
        /// Attribute the predicate reads.
        attr: AttrId,
        /// Lower endpoint (inclusive, discretized).
        lo: u16,
        /// Upper endpoint (inclusive, discretized).
        hi: u16,
    },
    /// `NOT (lo ≤ X_attr ≤ hi)`.
    NotIn {
        /// Attribute the predicate reads.
        attr: AttrId,
        /// Lower endpoint (inclusive, discretized).
        lo: u16,
        /// Upper endpoint (inclusive, discretized).
        hi: u16,
    },
}

impl Pred {
    /// Convenience constructor for `lo ≤ X_attr ≤ hi`.
    pub fn in_range(attr: AttrId, lo: u16, hi: u16) -> Pred {
        Pred::In { attr, lo, hi }
    }

    /// Convenience constructor for `NOT (lo ≤ X_attr ≤ hi)`.
    pub fn not_in_range(attr: AttrId, lo: u16, hi: u16) -> Pred {
        Pred::NotIn { attr, lo, hi }
    }

    /// The attribute this predicate reads.
    pub fn attr(&self) -> AttrId {
        match *self {
            Pred::In { attr, .. } | Pred::NotIn { attr, .. } => attr,
        }
    }

    /// The predicate's range endpoints `(lo, hi)`.
    pub fn bounds(&self) -> (u16, u16) {
        match *self {
            Pred::In { lo, hi, .. } | Pred::NotIn { lo, hi, .. } => (lo, hi),
        }
    }

    /// True when this is a negated range.
    pub fn is_negated(&self) -> bool {
        matches!(self, Pred::NotIn { .. })
    }

    /// Truth of the predicate on a concrete value. Evaluated without
    /// short-circuiting: both compares are data-independent, so the
    /// non-branching form lets the batch executor's tight loops (and
    /// `truth_columnar`) auto-vectorize.
    #[inline]
    pub fn eval(&self, v: u16) -> bool {
        match *self {
            Pred::In { lo, hi, .. } => (lo <= v) & (v <= hi),
            Pred::NotIn { lo, hi, .. } => (v < lo) | (hi < v),
        }
    }

    /// Truth of the predicate given only that the attribute lies in `r`:
    /// `Some(b)` when the range alone determines the outcome, `None` when
    /// both outcomes remain possible.
    pub fn truth_given(&self, r: Range) -> Option<bool> {
        let (lo, hi) = self.bounds();
        let pr = Range::new(lo, hi.max(lo));
        let inside = pr.contains_range(r);
        let outside = pr.disjoint(r);
        let (t, f) = if self.is_negated() { (outside, inside) } else { (inside, outside) };
        if t {
            Some(true)
        } else if f {
            Some(false)
        } else {
            None
        }
    }

    fn validate(&self, schema: &Schema) -> Result<()> {
        let attr = self.attr();
        schema.check_attr(attr)?;
        let (lo, hi) = self.bounds();
        if lo > hi {
            return Err(Error::InvertedRange { lo, hi });
        }
        if hi >= schema.domain(attr) {
            return Err(Error::BadRow { row: 0, what: "predicate endpoint outside domain" });
        }
        Ok(())
    }
}

/// A conjunction `φ = φ_1 ∧ … ∧ φ_m` of unary predicates, at most one
/// per attribute.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Query {
    preds: Vec<Pred>,
}

impl Query {
    /// Creates a conjunctive query; rejects empty queries and duplicate
    /// predicates on one attribute.
    pub fn new(preds: Vec<Pred>) -> Result<Self> {
        if preds.is_empty() {
            return Err(Error::EmptyQuery);
        }
        for (i, p) in preds.iter().enumerate() {
            if preds[..i].iter().any(|q| q.attr() == p.attr()) {
                return Err(Error::DuplicatePredicate { attr: p.attr() });
            }
            let (lo, hi) = p.bounds();
            if lo > hi {
                return Err(Error::InvertedRange { lo, hi });
            }
        }
        Ok(Query { preds })
    }

    /// Creates a query and validates all predicates against `schema`.
    pub fn checked(preds: Vec<Pred>, schema: &Schema) -> Result<Self> {
        let q = Query::new(preds)?;
        for p in &q.preds {
            p.validate(schema)?;
        }
        Ok(q)
    }

    /// Number of predicates `m`.
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// True when the query is predicate-free (never true after
    /// construction).
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// The predicates, in declaration order.
    pub fn preds(&self) -> &[Pred] {
        &self.preds
    }

    /// Predicate `j`.
    pub fn pred(&self, j: usize) -> Pred {
        self.preds[j]
    }

    /// The distinct attributes referenced by the query.
    pub fn attrs(&self) -> Vec<AttrId> {
        self.preds.iter().map(Pred::attr).collect()
    }

    /// A stable 64-bit signature of the query's predicate structure:
    /// FNV-1a over the canonical `(attr, lo, hi, negated)` encoding of
    /// every predicate in declaration order. Unlike `std::hash::Hash`
    /// (whose output may vary between runs and toolchains), this value
    /// is a fixed function of the query alone, so it can key plan
    /// caches that outlive a process — `acqp-serve` keys cached
    /// `PlanReport`s by `(signature, stats epoch)`.
    pub fn signature(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        fn eat(mut h: u64, bytes: &[u8]) -> u64 {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(FNV_PRIME);
            }
            h
        }
        let mut h = FNV_OFFSET;
        for p in &self.preds {
            let (lo, hi) = p.bounds();
            h = eat(h, &(p.attr() as u64).to_le_bytes());
            h = eat(h, &lo.to_le_bytes());
            h = eat(h, &hi.to_le_bytes());
            h = eat(h, &[u8::from(p.is_negated())]);
        }
        h
    }

    /// Evaluates `φ(x)` on a full tuple.
    pub fn eval(&self, tuple: &[u16]) -> bool {
        self.preds.iter().all(|p| p.eval(tuple[p.attr()]))
    }

    /// Evaluates `φ` on a dataset row accessor.
    pub fn eval_with(&self, mut value: impl FnMut(AttrId) -> u16) -> bool {
        self.preds.iter().all(|p| p.eval(value(p.attr())))
    }

    /// Truth of `φ` given only the range knowledge in `ranges`:
    /// `Some(false)` as soon as any predicate is disproven, `Some(true)`
    /// when all are proven, `None` otherwise.
    pub fn truth_given(&self, ranges: &Ranges) -> Option<bool> {
        let mut all_true = true;
        for p in &self.preds {
            match p.truth_given(ranges.get(p.attr())) {
                Some(false) => return Some(false),
                Some(true) => {}
                None => all_true = false,
            }
        }
        if all_true {
            Some(true)
        } else {
            None
        }
    }

    /// Indices of predicates whose truth is *not* determined by `ranges`.
    pub fn undecided(&self, ranges: &Ranges) -> Vec<usize> {
        self.preds
            .iter()
            .enumerate()
            .filter(|(_, p)| p.truth_given(ranges.get(p.attr())).is_none())
            .map(|(j, _)| j)
            .collect()
    }

    /// The per-row truth bitmask: bit `j` set iff predicate `j` holds.
    /// Used by the counting estimator to make sequential-plan costing
    /// popcount-cheap (§5.2).
    pub fn truth_mask(&self, mut value: impl FnMut(AttrId) -> u16) -> u64 {
        debug_assert!(self.preds.len() <= 64);
        let mut mask = 0u64;
        for (j, p) in self.preds.iter().enumerate() {
            if p.eval(value(p.attr())) {
                mask |= 1 << j;
            }
        }
        mask
    }

    /// Marginal selectivity of each predicate on `data` — the fraction
    /// of tuples it accepts. The `Naive` planner orders by
    /// `cost / (1 − selectivity)` using exactly these numbers (§4.1.1).
    pub fn selectivities(&self, data: &crate::dataset::Dataset) -> Vec<f64> {
        let d = data.len().max(1) as f64;
        self.preds
            .iter()
            .map(|p| {
                let col = data.column(p.attr());
                col.iter().filter(|&&v| p.eval(v)).count() as f64 / d
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Attribute;
    use crate::dataset::Dataset;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::new("a", 10, 100.0),
            Attribute::new("b", 10, 100.0),
            Attribute::new("c", 10, 1.0),
        ])
        .unwrap()
    }

    #[test]
    fn pred_eval() {
        let p = Pred::in_range(0, 3, 6);
        assert!(!p.eval(2));
        assert!(p.eval(3) && p.eval(6));
        assert!(!p.eval(7));
        let np = Pred::not_in_range(0, 3, 6);
        assert!(np.eval(2) && np.eval(7));
        assert!(!np.eval(4));
    }

    #[test]
    fn pred_truth_given_range() {
        let p = Pred::in_range(0, 3, 6);
        assert_eq!(p.truth_given(Range::new(4, 5)), Some(true));
        assert_eq!(p.truth_given(Range::new(7, 9)), Some(false));
        assert_eq!(p.truth_given(Range::new(0, 9)), None);
        assert_eq!(p.truth_given(Range::new(6, 7)), None);

        let np = Pred::not_in_range(0, 3, 6);
        assert_eq!(np.truth_given(Range::new(4, 5)), Some(false));
        assert_eq!(np.truth_given(Range::new(7, 9)), Some(true));
        assert_eq!(np.truth_given(Range::new(0, 9)), None);
    }

    #[test]
    fn query_validation() {
        assert_eq!(Query::new(vec![]).unwrap_err(), Error::EmptyQuery);
        let dup = Query::new(vec![Pred::in_range(0, 0, 1), Pred::in_range(0, 2, 3)]);
        assert!(matches!(dup, Err(Error::DuplicatePredicate { attr: 0 })));
        let inv = Query::new(vec![Pred::in_range(0, 5, 2)]);
        assert!(matches!(inv, Err(Error::InvertedRange { .. })));
        let s = schema();
        let oob = Query::checked(vec![Pred::in_range(0, 0, 10)], &s);
        assert!(oob.is_err());
        let bad_attr = Query::checked(vec![Pred::in_range(9, 0, 1)], &s);
        assert!(matches!(bad_attr, Err(Error::UnknownAttr { .. })));
    }

    #[test]
    fn query_eval_and_mask() {
        let q = Query::new(vec![
            Pred::in_range(0, 3, 6),
            Pred::not_in_range(1, 0, 4),
            Pred::in_range(2, 0, 9),
        ])
        .unwrap();
        let t = [4u16, 7, 0];
        assert!(q.eval(&t));
        assert_eq!(q.truth_mask(|a| t[a]), 0b111);
        let t2 = [4u16, 2, 0];
        assert!(!q.eval(&t2));
        assert_eq!(q.truth_mask(|a| t2[a]), 0b101);
    }

    #[test]
    fn query_truth_given_and_undecided() {
        let s = schema();
        let q = Query::new(vec![Pred::in_range(0, 3, 6), Pred::in_range(1, 0, 4)]).unwrap();
        let root = Ranges::root(&s);
        assert_eq!(q.truth_given(&root), None);
        assert_eq!(q.undecided(&root), vec![0, 1]);

        let proven = root.with(0, Range::new(4, 5)).with(1, Range::new(0, 2));
        assert_eq!(q.truth_given(&proven), Some(true));
        assert!(q.undecided(&proven).is_empty());

        let failed = root.with(0, Range::new(7, 9));
        assert_eq!(q.truth_given(&failed), Some(false));
    }

    #[test]
    fn selectivities_count_fractions() {
        let s = schema();
        let rows: Vec<Vec<u16>> = (0..10).map(|i| vec![i, 9 - i, 0]).collect();
        let d = Dataset::from_rows(&s, rows).unwrap();
        let q = Query::new(vec![Pred::in_range(0, 0, 4), Pred::in_range(1, 0, 1)]).unwrap();
        let sel = q.selectivities(&d);
        assert!((sel[0] - 0.5).abs() < 1e-12);
        assert!((sel[1] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn signature_is_stable_and_discriminating() {
        let q = Query::new(vec![Pred::in_range(0, 1, 4), Pred::not_in_range(1, 2, 3)]).unwrap();
        // Pure function of the predicate list: recomputing and cloning
        // cannot change it (this is what makes it a valid cache key).
        assert_eq!(q.signature(), q.signature());
        assert_eq!(q.signature(), q.clone().signature());
        // Every component of a predicate participates.
        let variants = [
            Query::new(vec![Pred::in_range(0, 1, 4), Pred::in_range(1, 2, 3)]).unwrap(),
            Query::new(vec![Pred::in_range(0, 1, 5), Pred::not_in_range(1, 2, 3)]).unwrap(),
            Query::new(vec![Pred::in_range(0, 2, 4), Pred::not_in_range(1, 2, 3)]).unwrap(),
            Query::new(vec![Pred::in_range(2, 1, 4), Pred::not_in_range(1, 2, 3)]).unwrap(),
            Query::new(vec![Pred::in_range(0, 1, 4)]).unwrap(),
        ];
        for v in &variants {
            assert_ne!(q.signature(), v.signature(), "{v:?}");
        }
        // Declaration order matters: plans depend on it, so the cache
        // key must too.
        let swapped =
            Query::new(vec![Pred::not_in_range(1, 2, 3), Pred::in_range(0, 1, 4)]).unwrap();
        assert_ne!(q.signature(), swapped.signature());
    }
}
