//! Value ranges and range vectors — the *subproblems* of the paper's
//! dynamic program (§3.2).
//!
//! A subproblem is written `Subproblem(φ, R_1=[a_1,b_1], …, R_n=[a_n,b_n])`:
//! the plan so far has narrowed each attribute `X_i` to an inclusive range
//! `R_i`. Splitting a subproblem on a conditioning predicate
//! `T(X_i ≥ x)` divides `R_i = [a, b]` into `[a, x−1]` and `[x, b]`.

use crate::attr::{AttrId, Schema};

/// An inclusive range `[lo, hi]` of discretized attribute values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Range {
    lo: u16,
    hi: u16,
}

impl Range {
    /// Creates `[lo, hi]`. Panics (debug) if inverted.
    pub fn new(lo: u16, hi: u16) -> Self {
        debug_assert!(lo <= hi, "inverted range [{lo}, {hi}]");
        Range { lo, hi }
    }

    /// The full domain `[0, k-1]` of an attribute with `k` values.
    pub fn full(k: u16) -> Self {
        debug_assert!(k > 0);
        Range { lo: 0, hi: k - 1 }
    }

    /// Lower endpoint (inclusive).
    pub fn lo(&self) -> u16 {
        self.lo
    }

    /// Upper endpoint (inclusive).
    pub fn hi(&self) -> u16 {
        self.hi
    }

    /// Number of values in the range.
    pub fn width(&self) -> u32 {
        u32::from(self.hi) - u32::from(self.lo) + 1
    }

    /// True when this range covers the whole `k`-value domain — i.e. the
    /// attribute has *not* been acquired yet (Fig. 5 charges its cost
    /// `C_i` exactly in this case).
    pub fn is_full(&self, k: u16) -> bool {
        self.lo == 0 && self.hi == k - 1
    }

    /// True when the range pins a single value.
    pub fn is_point(&self) -> bool {
        self.lo == self.hi
    }

    /// Membership test.
    pub fn contains(&self, v: u16) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// True when `other` lies entirely inside `self`.
    pub fn contains_range(&self, other: Range) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// True when the two ranges share no value.
    pub fn disjoint(&self, other: Range) -> bool {
        self.hi < other.lo || other.hi < self.lo
    }

    /// Splits at `cut` into `([lo, cut-1], [cut, hi])`. `cut` must satisfy
    /// `lo < cut <= hi`.
    pub fn split_at(&self, cut: u16) -> (Range, Range) {
        debug_assert!(
            self.lo < cut && cut <= self.hi,
            "cut {cut} outside ({}, {}]",
            self.lo,
            self.hi
        );
        (Range::new(self.lo, cut - 1), Range::new(cut, self.hi))
    }

    /// Intersection, if non-empty.
    pub fn intersect(&self, other: Range) -> Option<Range> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then(|| Range::new(lo, hi))
    }
}

/// A vector of ranges, one per schema attribute: the key identifying a
/// subproblem in the exhaustive planner's memo table.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ranges(Box<[Range]>);

impl Ranges {
    /// The root subproblem: every attribute spans its full domain.
    pub fn root(schema: &Schema) -> Self {
        Ranges(schema.attrs().iter().map(|a| Range::full(a.domain())).collect())
    }

    /// Builds from an explicit vector (one range per attribute).
    pub fn from_vec(v: Vec<Range>) -> Self {
        Ranges(v.into_boxed_slice())
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if there are no attributes (cannot happen for a schema-built
    /// value).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Range of attribute `a`.
    pub fn get(&self, a: AttrId) -> Range {
        self.0[a]
    }

    /// All ranges in attribute order.
    pub fn as_slice(&self) -> &[Range] {
        &self.0
    }

    /// A copy with attribute `a` replaced by `r`.
    pub fn with(&self, a: AttrId, r: Range) -> Ranges {
        let mut v = self.0.clone();
        v[a] = r;
        Ranges(v)
    }

    /// True when attribute `a` still spans its full domain under
    /// `schema` — i.e. splitting on it must pay its acquisition cost.
    pub fn attr_unacquired(&self, schema: &Schema, a: AttrId) -> bool {
        self.0[a].is_full(schema.domain(a))
    }

    /// Effective acquisition cost of attribute `a` at this subproblem:
    /// `C_a` if unacquired, else 0 (Fig. 5's `C'`).
    pub fn effective_cost(&self, schema: &Schema, a: AttrId) -> f64 {
        if self.attr_unacquired(schema, a) {
            schema.cost(a)
        } else {
            0.0
        }
    }

    /// True when the tuple `row` (full attribute vector) is consistent
    /// with every range.
    pub fn admits(&self, row: &[u16]) -> bool {
        self.0.iter().zip(row).all(|(r, &v)| r.contains(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Attribute;

    #[test]
    fn range_basics() {
        let r = Range::new(2, 5);
        assert_eq!(r.width(), 4);
        assert!(r.contains(2) && r.contains(5) && !r.contains(6));
        assert!(!r.is_point());
        assert!(Range::new(3, 3).is_point());
        assert!(Range::full(8).is_full(8));
        assert!(!r.is_full(8));
    }

    #[test]
    fn range_split() {
        let r = Range::new(0, 7);
        let (lo, hi) = r.split_at(3);
        assert_eq!(lo, Range::new(0, 2));
        assert_eq!(hi, Range::new(3, 7));
        assert_eq!(lo.width() + hi.width(), r.width());
    }

    #[test]
    fn range_set_ops() {
        let a = Range::new(0, 4);
        let b = Range::new(3, 9);
        let c = Range::new(6, 9);
        assert!(!a.disjoint(b));
        assert!(a.disjoint(c));
        assert_eq!(a.intersect(b), Some(Range::new(3, 4)));
        assert_eq!(a.intersect(c), None);
        assert!(b.contains_range(c));
        assert!(!c.contains_range(b));
    }

    #[test]
    fn full_range_single_value_domain() {
        let r = Range::full(1);
        assert!(r.is_full(1));
        assert!(r.is_point());
        assert_eq!(r.width(), 1);
    }

    fn schema() -> Schema {
        Schema::new(vec![Attribute::new("a", 4, 10.0), Attribute::new("b", 8, 1.0)]).unwrap()
    }

    #[test]
    fn ranges_root_and_with() {
        let s = schema();
        let root = Ranges::root(&s);
        assert_eq!(root.get(0), Range::full(4));
        assert!(root.attr_unacquired(&s, 0));
        assert_eq!(root.effective_cost(&s, 0), 10.0);

        let narrowed = root.with(0, Range::new(1, 2));
        assert!(!narrowed.attr_unacquired(&s, 0));
        assert_eq!(narrowed.effective_cost(&s, 0), 0.0);
        // The original is unchanged.
        assert!(root.attr_unacquired(&s, 0));
    }

    #[test]
    fn ranges_admits() {
        let s = schema();
        let root = Ranges::root(&s);
        assert!(root.admits(&[3, 7]));
        let narrowed = root.with(1, Range::new(0, 3));
        assert!(narrowed.admits(&[3, 3]));
        assert!(!narrowed.admits(&[3, 4]));
    }
}
