//! Plan-regret attribution — `EXPLAIN ANALYZE` for estimator error
//! (DESIGN.md §13.4).
//!
//! The planner chose its plan believing the *training* estimator's
//! probabilities; reality billed the *actual* (held-out) ones. The gap
//! between the two expected costs is the plan's **regret**, and this
//! module decomposes it into per-predicate contributions by a
//! telescoping one-factor-at-a-time walk:
//!
//! Let `M_k` be the plan's expected cost when predicates `0..k` use the
//! actual estimator's conditional probabilities and predicates `k..n`
//! use the training estimator's (split nodes follow the predicate over
//! their attribute; splits on unpredicated attributes switch last, as a
//! residual "structure" term). Then
//!
//! ```text
//! contribution(j) = M_{j+1} − M_j
//! Σ_j contribution(j) + structure = M_last − M_0 = actual − predicted
//! ```
//!
//! — exact in real arithmetic, and the **reported total regret is
//! defined as the in-order left fold of the contributions** (an
//! [`crate::planner::OrdF64`]-stable, bitwise-deterministic sum), so
//! the table's rows always sum bitwise to its total.
//!
//! Every `M_k` is a full deterministic tree walk; `n+2` walks per
//! report keep the whole attribution exact rather than sampled.

use crate::attr::Schema;
use crate::costmodel::{acquired_mask, CostModel};
use crate::explain::{explain, ExplainNode};
use crate::plan::Plan;
use crate::prob::Estimator;
use crate::query::Query;
use crate::range::Range;

/// One predicate's share of the plan's regret.
#[derive(Debug, Clone, PartialEq)]
pub struct PredRegret {
    /// Predicate index into the query.
    pub pred: usize,
    /// Root-marginal pass probability under the training estimator.
    pub est_sel: f64,
    /// Root-marginal pass probability under the actual estimator.
    pub actual_sel: f64,
    /// `M_{j+1} − M_j`: the cost delta from switching this predicate's
    /// probabilities (and its attribute's splits) from estimated to
    /// actual, downstream consequences included.
    pub contribution: f64,
}

/// One plan node's predicted-vs-actual expected cost (reach-weighted).
#[derive(Debug, Clone, PartialEq)]
pub struct NodeCostRow {
    /// Path from the root: `lo`/`hi` hops, dot-separated (`root`,
    /// `root.lo`, `root.lo.hi`, …).
    pub path: String,
    /// Node label (`observe t<2`, `seq[1,0]`, `decided`).
    pub label: String,
    /// `reach × cost_here` under the training estimator.
    pub predicted: f64,
    /// `reach × cost_here` under the actual estimator.
    pub actual: f64,
}

/// The full regret decomposition for one plan.
#[derive(Debug, Clone, PartialEq)]
pub struct RegretReport {
    /// `M_0`: expected cost under the training estimator (what the
    /// planner believed).
    pub predicted_cost: f64,
    /// `M_last`: expected cost under the actual estimator (what the
    /// model says reality bills; exact for counting estimators over
    /// the held-out data).
    pub actual_cost: f64,
    /// Per-predicate contributions, predicate order.
    pub contributions: Vec<PredRegret>,
    /// Residual from splits on attributes no predicate covers.
    pub structure_regret: f64,
    /// The in-order left fold of `contributions` then
    /// `structure_regret`: bitwise-reproducible, and what the rendered
    /// table reports as the total gap.
    pub total_regret: f64,
    /// Per-node predicted-vs-actual cost table, preorder.
    pub nodes: Vec<NodeCostRow>,
}

impl RegretReport {
    /// Renders the `--explain-analyze` table: per-node costs, then the
    /// per-predicate decomposition whose rows sum to the printed total.
    pub fn render(&self, schema: &Schema, query: &Query) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "  {:<20} {:<18} {:>12} {:>12} {:>12}",
            "node", "op", "predicted", "actual", "delta"
        );
        for n in &self.nodes {
            let _ = writeln!(
                out,
                "  {:<20} {:<18} {:>12.4} {:>12.4} {:>+12.4}",
                n.path,
                n.label,
                n.predicted,
                n.actual,
                n.actual - n.predicted
            );
        }
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "  {:<6} {:<12} {:>10} {:>10} {:>14}",
            "pred", "attr", "est_sel", "actual", "contribution"
        );
        for c in &self.contributions {
            let _ = writeln!(
                out,
                "  {:<6} {:<12} {:>10.4} {:>10.4} {:>+14.6}",
                c.pred,
                schema.attr(query.pred(c.pred).attr()).name(),
                c.est_sel,
                c.actual_sel,
                c.contribution
            );
        }
        if self.structure_regret != 0.0 {
            let _ = writeln!(
                out,
                "  {:<6} {:<12} {:>10} {:>10} {:>+14.6}",
                "-", "(structure)", "-", "-", self.structure_regret
            );
        }
        let _ = writeln!(out);
        let _ = writeln!(out, "  predicted expected cost : {:.6}", self.predicted_cost);
        let _ = writeln!(out, "  actual expected cost    : {:.6}", self.actual_cost);
        let _ = writeln!(out, "  total regret (row sum)  : {:+.6}", self.total_regret);
        out
    }
}

/// Lockstep mixed-cost walker: one plan, two estimators, a per-predicate
/// switch deciding whose probabilities each factor uses.
struct MixedWalk<'a, P: Estimator, A: Estimator> {
    schema: &'a Schema,
    query: &'a Query,
    model: &'a CostModel,
    pred_est: &'a P,
    act_est: &'a A,
    /// `use_actual[j]`: predicate `j`'s factors come from `act_est`.
    use_actual: &'a [bool],
    /// Splits on unpredicated attributes come from `act_est`.
    structure_actual: bool,
}

impl<P: Estimator, A: Estimator> MixedWalk<'_, P, A> {
    fn owner(&self, attr: usize) -> Option<usize> {
        self.query.preds().iter().position(|p| p.attr() == attr)
    }

    fn cost(&self, plan: &Plan, pctx: &P::Ctx, actx: &A::Ctx, reach: f64) -> f64 {
        match plan {
            Plan::Decided(_) => 0.0,
            Plan::Seq(seq) => {
                let ranges = self.pred_est.ranges(pctx);
                let mut acquired = acquired_mask(self.schema, ranges);
                let tp = self.pred_est.truth_table(pctx, self.query);
                let ta = self.act_est.truth_table(actx, self.query);
                let mut cost = 0.0;
                let mut p_run = 1.0;
                let mut prefix = 0u64;
                for &j in &seq.order {
                    let attr = self.query.pred(j).attr();
                    cost += self.model.cost(self.schema, attr, acquired) * p_run * reach;
                    let p_pass = if self.use_actual[j] {
                        ta.cond_prob(j, prefix)
                    } else {
                        tp.cond_prob(j, prefix)
                    };
                    acquired |= 1 << attr;
                    prefix |= 1 << j;
                    p_run *= p_pass;
                }
                cost
            }
            Plan::Split { attr, cut, lo, hi } => {
                let ranges = self.pred_est.ranges(pctx);
                let r = ranges.get(*attr);
                let mut total =
                    reach * self.model.cost(self.schema, *attr, acquired_mask(self.schema, ranges));
                // Structural routing (out-of-range cuts) is
                // estimator-independent; in-range probabilities follow
                // the switch for the predicate over this attribute.
                let p_lo = if *cut <= r.lo() {
                    0.0
                } else if *cut > r.hi() {
                    1.0
                } else if self
                    .owner(*attr)
                    .map(|j| self.use_actual[j])
                    .unwrap_or(self.structure_actual)
                {
                    self.act_est.prob_below(actx, *attr, *cut).clamp(0.0, 1.0)
                } else {
                    self.pred_est.prob_below(pctx, *attr, *cut).clamp(0.0, 1.0)
                };
                // Zero-probability branches are skipped rather than
                // recursed at reach 0: refining an estimator into an
                // empty region can yield NaN conditionals, and
                // NaN × 0 would poison the sum.
                if p_lo > 0.0 && *cut > r.lo() {
                    let pc = self.pred_est.refine(pctx, *attr, Range::new(r.lo(), cut - 1));
                    let ac = self.act_est.refine(actx, *attr, Range::new(r.lo(), cut - 1));
                    total += self.cost(lo, &pc, &ac, reach * p_lo);
                }
                if p_lo < 1.0 && *cut <= r.hi() {
                    let pc = self.pred_est.refine(pctx, *attr, Range::new(*cut, r.hi()));
                    let ac = self.act_est.refine(actx, *attr, Range::new(*cut, r.hi()));
                    total += self.cost(hi, &pc, &ac, reach * (1.0 - p_lo));
                }
                total
            }
        }
    }
}

/// Decomposes the gap between `plan`'s expected cost under
/// `predicted_est` (what the planner believed) and under `actual_est`
/// (held-out reality) into per-predicate contributions. See the module
/// docs for the telescoping construction and its exactness guarantee.
pub fn regret_report<P: Estimator, A: Estimator>(
    plan: &Plan,
    query: &Query,
    schema: &Schema,
    model: &CostModel,
    predicted_est: &P,
    actual_est: &A,
) -> RegretReport {
    let n = query.len();
    // M_k for k = 0..=n (predicates 0..k switched), plus one final
    // step switching the structure residual.
    let mut mixed = Vec::with_capacity(n + 2);
    for k in 0..=n + 1 {
        let use_actual: Vec<bool> = (0..n).map(|j| j < k).collect();
        let walk = MixedWalk {
            schema,
            query,
            model,
            pred_est: predicted_est,
            act_est: actual_est,
            use_actual: &use_actual,
            structure_actual: k > n,
        };
        mixed.push(walk.cost(plan, &predicted_est.root(), &actual_est.root(), 1.0));
    }

    let tp = predicted_est.truth_table(&predicted_est.root(), query);
    let ta = actual_est.truth_table(&actual_est.root(), query);
    let contributions: Vec<PredRegret> = (0..n)
        .map(|j| PredRegret {
            pred: j,
            est_sel: tp.cond_prob(j, 0),
            actual_sel: ta.cond_prob(j, 0),
            contribution: mixed[j + 1] - mixed[j],
        })
        .collect();
    let structure_regret = mixed[n + 1] - mixed[n];
    // The reported total is the in-order fold of the rows — the same
    // sum a reader of the table would form — so rows always sum
    // bitwise to it. Telescoping makes it equal (up to fp rounding of
    // the identical-magnitude terms) to `actual − predicted`.
    let total_regret =
        contributions.iter().fold(0.0, |acc, c| acc + c.contribution) + structure_regret;

    let pred_tree = explain(plan, query, schema, model, predicted_est);
    let act_tree = explain(plan, query, schema, model, actual_est);
    let mut nodes = Vec::new();
    collect_nodes(&pred_tree, &act_tree, schema, "root", &mut nodes);

    RegretReport {
        predicted_cost: mixed[0],
        actual_cost: mixed[n + 1],
        contributions,
        structure_regret,
        total_regret,
        nodes,
    }
}

/// Preorder lockstep collection of per-node cost rows from the two
/// explain trees (same plan ⇒ same shape).
fn collect_nodes(
    p: &ExplainNode,
    a: &ExplainNode,
    schema: &Schema,
    path: &str,
    out: &mut Vec<NodeCostRow>,
) {
    match (p, a) {
        (ExplainNode::Decided { verdict, .. }, ExplainNode::Decided { .. }) => {
            out.push(NodeCostRow {
                path: path.to_string(),
                label: format!("decided:{}", if *verdict { "output" } else { "reject" }),
                predicted: 0.0,
                actual: 0.0,
            });
        }
        (
            ExplainNode::Seq { reach: pr, cost_here: pc, steps },
            ExplainNode::Seq { reach: ar, cost_here: ac, .. },
        ) => {
            let order: Vec<String> = steps.iter().map(|s| s.pred.to_string()).collect();
            out.push(NodeCostRow {
                path: path.to_string(),
                label: format!("seq[{}]", order.join(",")),
                predicted: pr * pc,
                actual: ar * ac,
            });
        }
        (
            ExplainNode::Split { attr, cut, reach: pr, cost_here: pc, lo: plo, hi: phi, .. },
            ExplainNode::Split { reach: ar, cost_here: ac, lo: alo, hi: ahi, .. },
        ) => {
            out.push(NodeCostRow {
                path: path.to_string(),
                label: format!("observe {}<{}", schema.attr(*attr).name(), cut),
                predicted: pr * pc,
                actual: ar * ac,
            });
            collect_nodes(plo, alo, schema, &format!("{path}.lo"), out);
            collect_nodes(phi, ahi, schema, &format!("{path}.hi"), out);
        }
        // Same plan produces same-shaped trees; unreachable by
        // construction, but degrade gracefully rather than panic.
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Attribute;
    use crate::dataset::Dataset;
    use crate::planner::GreedyPlanner;
    use crate::prob::CountingEstimator;
    use crate::query::Pred;
    use crate::range::Ranges;

    fn setup() -> (Schema, Dataset, Dataset, Query) {
        let schema = Schema::new(vec![
            Attribute::new("a", 4, 10.0),
            Attribute::new("b", 4, 4.0),
            Attribute::new("t", 4, 0.5),
        ])
        .unwrap();
        // Train and held-out halves with deliberately different joint
        // distributions, so the regret is nonzero.
        let train_rows: Vec<Vec<u16>> =
            (0..128u16).map(|i| vec![(i / 2) % 4, (i / 8) % 4, (i / 32) % 4]).collect();
        let test_rows: Vec<Vec<u16>> =
            (0..128u16).map(|i| vec![(i / 3) % 4, (i / 5) % 4, (i / 16) % 4]).collect();
        let train = Dataset::from_rows(&schema, train_rows).unwrap();
        let test = Dataset::from_rows(&schema, test_rows).unwrap();
        let query = Query::new(vec![Pred::in_range(0, 1, 2), Pred::in_range(1, 0, 1)]).unwrap();
        (schema, train, test, query)
    }

    #[test]
    fn contributions_fold_to_total_bitwise() {
        let (schema, train, test, query) = setup();
        let tr = CountingEstimator::with_ranges(&train, Ranges::root(&schema));
        let te = CountingEstimator::with_ranges(&test, Ranges::root(&schema));
        let plan = GreedyPlanner::new(4).plan(&schema, &query, &tr).unwrap();
        let rep = regret_report(&plan, &query, &schema, &CostModel::PerAttribute, &tr, &te);
        let fold =
            rep.contributions.iter().fold(0.0f64, |a, c| a + c.contribution) + rep.structure_regret;
        assert_eq!(fold.to_bits(), rep.total_regret.to_bits());
        // Telescoping: the fold matches the endpoint gap up to rounding.
        assert!(
            (rep.total_regret - (rep.actual_cost - rep.predicted_cost)).abs() < 1e-9,
            "fold {} vs gap {}",
            rep.total_regret,
            rep.actual_cost - rep.predicted_cost
        );
        assert!(rep.total_regret.abs() > 0.0, "setup should produce nonzero regret");
    }

    #[test]
    fn endpoints_match_plain_explains() {
        let (schema, train, test, query) = setup();
        let tr = CountingEstimator::with_ranges(&train, Ranges::root(&schema));
        let te = CountingEstimator::with_ranges(&test, Ranges::root(&schema));
        let plan = GreedyPlanner::new(4).plan(&schema, &query, &tr).unwrap();
        let rep = regret_report(&plan, &query, &schema, &CostModel::PerAttribute, &tr, &te);
        let pred = explain(&plan, &query, &schema, &CostModel::PerAttribute, &tr).total_cost();
        let act = explain(&plan, &query, &schema, &CostModel::PerAttribute, &te).total_cost();
        assert!((rep.predicted_cost - pred).abs() < 1e-9, "{} vs {}", rep.predicted_cost, pred);
        assert!((rep.actual_cost - act).abs() < 1e-9, "{} vs {}", rep.actual_cost, act);
    }

    #[test]
    fn same_estimator_means_zero_regret() {
        let (schema, train, _, query) = setup();
        let tr = CountingEstimator::with_ranges(&train, Ranges::root(&schema));
        let plan = GreedyPlanner::new(4).plan(&schema, &query, &tr).unwrap();
        let rep = regret_report(&plan, &query, &schema, &CostModel::PerAttribute, &tr, &tr);
        // Every M_k is the identical computation ⇒ contributions are
        // exactly 0.0, not merely small.
        for c in &rep.contributions {
            assert_eq!(c.contribution, 0.0);
            assert_eq!(c.est_sel, c.actual_sel);
        }
        assert_eq!(rep.structure_regret, 0.0);
        assert_eq!(rep.total_regret, 0.0);
    }

    #[test]
    fn render_has_rows_and_total() {
        let (schema, train, test, query) = setup();
        let tr = CountingEstimator::with_ranges(&train, Ranges::root(&schema));
        let te = CountingEstimator::with_ranges(&test, Ranges::root(&schema));
        let plan = GreedyPlanner::new(4).plan(&schema, &query, &tr).unwrap();
        let rep = regret_report(&plan, &query, &schema, &CostModel::PerAttribute, &tr, &te);
        let text = rep.render(&schema, &query);
        assert!(text.contains("total regret"), "{text}");
        assert!(text.contains("predicted"), "{text}");
        assert!(!rep.nodes.is_empty());
        assert!(text.contains("contribution"), "{text}");
    }
}
