//! Non-poisoning synchronization primitives for shared planner state.
//!
//! The parallel planners share a memo table and an estimator mask cache
//! across worker threads. With [`std::sync::Mutex`], a worker that
//! panics while holding the lock *poisons* it, and every later
//! `lock().unwrap()` converts one isolated worker failure into a
//! process-wide abort. That is exactly backwards for a basestation that
//! must keep planning through faults: the data guarded by these locks is
//! a cache of pure-function results (memoized subproblem solutions,
//! per-row truth masks), so a panic mid-update can at worst lose an
//! entry — it can never leave the map in a logically corrupt state,
//! because entries are inserted whole after being computed.
//!
//! [`NoPoisonMutex`] keeps std's mutex underneath but recovers the guard
//! from a [`PoisonError`] instead of propagating it, making the lock
//! safe to share with panic-isolated workers (see the planners'
//! `catch_unwind` shells).

use std::sync::{Mutex, MutexGuard, PoisonError};

/// A [`Mutex`] whose lock never observes poisoning.
///
/// Poisoning exists to warn that a critical section was interrupted
/// mid-update. Every critical section guarded by this type performs a
/// single atomic-at-the-Rust-level operation (a `HashMap` insert/lookup
/// of a fully built value, an `Option` replacement), so the warning
/// carries no information here and recovery is always sound.
#[derive(Debug, Default)]
pub struct NoPoisonMutex<T>(Mutex<T>);

impl<T> NoPoisonMutex<T> {
    /// Wraps `value` in a new unlocked mutex.
    pub fn new(value: T) -> Self {
        NoPoisonMutex(Mutex::new(value))
    }

    /// Acquires the lock, recovering from poisoning if a previous holder
    /// panicked.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the mutex and returns the inner value, ignoring poison.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn lock_survives_a_panicking_holder() {
        let m = NoPoisonMutex::new(vec![1u32]);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut g = m.lock();
            g.push(2);
            panic!("worker died holding the lock");
        }));
        assert!(result.is_err());
        // A std Mutex would now be poisoned and `lock().unwrap()` would
        // abort; the wrapper recovers and the completed insert is intact.
        let g = m.lock();
        assert_eq!(*g, vec![1, 2]);
    }

    #[test]
    fn into_inner_ignores_poison() {
        let m = NoPoisonMutex::new(7u32);
        let _ = catch_unwind(AssertUnwindSafe(|| {
            let _g = m.lock();
            panic!("poison");
        }));
        assert_eq!(m.into_inner(), 7);
    }
}
