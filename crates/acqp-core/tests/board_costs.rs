//! Integration tests for §7's complex acquisition costs: planners that
//! know about shared sensor boards cluster same-board predicates, and
//! every cost claim matches the model-priced executor.

// Cost assertions compare exact model-priced floats on purpose.
#![allow(clippy::float_cmp)]

use acqp_core::prelude::*;

/// Schema: light/temp share board 0; humidity sits on board 1; hour is
/// boardless and free-ish.
fn board_setup() -> (Schema, Dataset, Query, CostModel) {
    let schema = Schema::new(vec![
        Attribute::new("light", 4, 10.0),
        Attribute::new("temp", 4, 10.0),
        Attribute::new("humidity", 4, 10.0),
        Attribute::new("hour", 4, 1.0),
    ])
    .unwrap();
    // Independent-ish data with all predicates ~50% selective.
    let mut rows = Vec::new();
    for i in 0..256u32 {
        rows.push(vec![
            (i % 4) as u16,
            ((i / 4) % 4) as u16,
            ((i / 16) % 4) as u16,
            ((i / 64) % 4) as u16,
        ]);
    }
    let data = Dataset::from_rows(&schema, rows).unwrap();
    let query = Query::checked(
        vec![Pred::in_range(0, 0, 1), Pred::in_range(1, 0, 1), Pred::in_range(2, 0, 1)],
        &schema,
    )
    .unwrap();
    // A power-up dwarfing the per-sensor cost makes clustering decisive.
    let model = CostModel::boards(4, &[(vec![0, 1], 40.0), (vec![2], 40.0)]);
    (schema, data, query, model)
}

#[test]
fn optimal_order_clusters_same_board_sensors() {
    let (schema, data, query, model) = board_setup();
    let est = CountingEstimator::with_ranges(&data, Ranges::root(&schema));
    let plan =
        SeqPlanner::optimal().with_cost_model(model.clone()).plan(&schema, &query, &est).unwrap();
    let Plan::Seq(seq) = &plan else { panic!("expected sequential plan") };
    // light (0) and temp (1) share a board; with uniform ~50%
    // selectivities, evaluating them back-to-back amortizes the 40-unit
    // power-up, so they must be adjacent in the optimal order.
    let pos0 = seq.order.iter().position(|&j| query.pred(j).attr() == 0).unwrap();
    let pos1 = seq.order.iter().position(|&j| query.pred(j).attr() == 1).unwrap();
    assert_eq!(pos0.abs_diff(pos1), 1, "same-board predicates should be adjacent: {:?}", seq.order);
    // And the shared-board pair must come first: starting with humidity
    // risks paying both boards' power-ups more often.
    assert!(pos0.min(pos1) == 0, "board pair should lead: {:?}", seq.order);
}

#[test]
fn board_blind_plan_costs_more_under_board_pricing() {
    let (schema, data, query, model) = board_setup();
    let est = CountingEstimator::with_ranges(&data, Ranges::root(&schema));
    let aware =
        SeqPlanner::optimal().with_cost_model(model.clone()).plan(&schema, &query, &est).unwrap();
    // A deliberately interleaved order: board0, board1, board0.
    let blind = Plan::Seq(SeqOrder::new(vec![0, 2, 1]));
    let c_aware = measure_model(&aware, &query, &schema, &model, &data);
    let c_blind = measure_model(&blind, &query, &schema, &model, &data);
    assert!(c_aware.all_correct && c_blind.all_correct);
    assert!(
        c_aware.mean_cost < c_blind.mean_cost,
        "aware {} vs blind {}",
        c_aware.mean_cost,
        c_blind.mean_cost
    );
}

#[test]
fn claimed_cost_matches_model_priced_executor() {
    let (schema, data, query, model) = board_setup();
    let est = CountingEstimator::with_ranges(&data, Ranges::root(&schema));
    for planner in [
        SeqPlanner::naive().with_cost_model(model.clone()),
        SeqPlanner::greedy().with_cost_model(model.clone()),
        SeqPlanner::optimal().with_cost_model(model.clone()),
    ] {
        let (plan, claimed) = planner.plan_with_cost(&schema, &query, &est).unwrap();
        let measured = measure_model(&plan, &query, &schema, &model, &data);
        assert!(measured.all_correct);
        assert!(
            (claimed - measured.mean_cost).abs() < 1e-9,
            "claimed {claimed} vs measured {}",
            measured.mean_cost
        );
    }
    // The conditional planner too.
    let (plan, claimed) = GreedyPlanner::new(4)
        .with_cost_model(model.clone())
        .plan_with_cost(&schema, &query, &est)
        .unwrap();
    let measured = measure_model(&plan, &query, &schema, &model, &data);
    assert!(measured.all_correct);
    assert!((claimed - measured.mean_cost).abs() < 1e-9);
    // Eq. (3) agrees as well.
    let eq3 = expected_cost_model(&plan, &query, &schema, &model, &est);
    assert!((eq3 - measured.mean_cost).abs() < 1e-9);
}

#[test]
fn executor_charges_powerup_once_per_tuple() {
    let (schema, data, query, model) = board_setup();
    // Evaluate all three predicates: light+temp share one power-up.
    let plan = Plan::Seq(SeqOrder::new(vec![0, 1, 2]));
    // Row 0 satisfies everything (all zeros).
    let out = execute_model(&plan, &query, &schema, &model, &mut RowSource::new(&data, 0));
    assert!(out.verdict);
    // light: 10+40, temp: 10 (board warm), humidity: 10+40.
    assert_eq!(out.cost, 110.0);
}

#[test]
fn per_attribute_model_reduces_to_plain_costs() {
    let (schema, data, query, _) = board_setup();
    let est = CountingEstimator::with_ranges(&data, Ranges::root(&schema));
    let a = SeqPlanner::optimal().plan_with_cost(&schema, &query, &est).unwrap();
    let b = SeqPlanner::optimal()
        .with_cost_model(CostModel::PerAttribute)
        .plan_with_cost(&schema, &query, &est)
        .unwrap();
    assert_eq!(a.0, b.0);
    assert!((a.1 - b.1).abs() < 1e-12);
}

#[test]
fn exhaustive_planner_honors_boards() {
    let (schema, data, query, model) = board_setup();
    let est = CountingEstimator::with_ranges(&data, Ranges::root(&schema));
    let grid = SplitGrid::for_query(&schema, &query, 2);
    let (plan, claimed) = ExhaustivePlanner::with_grid(grid)
        .with_cost_model(model.clone())
        .plan_with_cost(&schema, &query, &est)
        .unwrap();
    let measured = measure_model(&plan, &query, &schema, &model, &data);
    assert!(measured.all_correct);
    assert!(
        (claimed - measured.mean_cost).abs() < 1e-9,
        "claimed {claimed} vs measured {}",
        measured.mean_cost
    );
    // It can never beat the true optimum priced under the same model,
    // and must be at least as good as the optimal sequential plan.
    let (_, seq_cost) =
        SeqPlanner::optimal().with_cost_model(model).plan_with_cost(&schema, &query, &est).unwrap();
    assert!(claimed <= seq_cost + 1e-9);
}
