//! Plan-regret attribution invariants (DESIGN.md §13.4).
//!
//! The explain-analyze report decomposes the predicted-vs-actual
//! expected-cost gap into per-predicate estimator-error contributions
//! via a telescoping mixed-cost walk. Two properties must hold on any
//! plan and any train/test split:
//!
//!  * the contributions (plus the structure residual) sum — in the
//!    report's own fold order, bitwise — to the reported total regret;
//!  * pricing the plan against the *same* estimator on both sides
//!    yields exactly zero regret everywhere.

use acqp_core::prelude::*;
use proptest::prelude::*;

fn setup(div_a: u16, div_b: u16, rows: usize) -> (Schema, Dataset, Query) {
    let schema = Schema::new(vec![
        Attribute::new("a", 6, 90.0),
        Attribute::new("b", 6, 40.0),
        Attribute::new("t", 6, 5.0),
    ])
    .unwrap();
    let rows: Vec<Vec<u16>> =
        (0..rows as u16).map(|i| vec![(i / div_a) % 6, (i / div_b) % 6, i % 6]).collect();
    let data = Dataset::from_rows(&schema, rows).unwrap();
    let query = Query::new(vec![Pred::in_range(0, 0, 2), Pred::in_range(1, 1, 4)]).unwrap();
    (schema, data, query)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn contributions_sum_bitwise_to_the_total_gap(
        div_a in 2u16..11,
        div_b in 2u16..11,
        rows in 60usize..200,
        frac_pct in 30usize..70,
        splits in 0usize..4,
    ) {
        let frac = frac_pct as f64 / 100.0;
        let (schema, data, query) = setup(div_a, div_b, rows);
        let (train, test) = data.split_at(frac);
        let train_est = CountingEstimator::with_ranges(&train, Ranges::root(&schema));
        let test_est = CountingEstimator::with_ranges(&test, Ranges::root(&schema));
        let plan = GreedyPlanner::new(splits)
            .with_grid(SplitGrid::for_query(&schema, &query, 6))
            .plan(&schema, &query, &train_est)
            .unwrap();

        let rep = regret_report(
            &plan, &query, &schema, &CostModel::PerAttribute, &train_est, &test_est,
        );
        // The report's own definition: an in-order left fold of the
        // per-predicate rows plus the structure residual. Bitwise.
        let fold = rep
            .contributions
            .iter()
            .fold(0.0f64, |acc, c| acc + c.contribution)
            + rep.structure_regret;
        prop_assert_eq!(fold.to_bits(), rep.total_regret.to_bits());
        // And the decomposition is exhaustive: the telescoping walk
        // starts at the predicted cost and ends at the actual cost.
        prop_assert!(
            (rep.predicted_cost + rep.total_regret - rep.actual_cost).abs() < 1e-6,
            "walk endpoints drifted: {} + {} != {}",
            rep.predicted_cost, rep.total_regret, rep.actual_cost
        );
    }

    #[test]
    fn same_estimator_means_zero_regret(
        div_a in 2u16..11,
        rows in 60usize..200,
        splits in 0usize..4,
    ) {
        let (schema, data, query) = setup(div_a, 3, rows);
        let est = CountingEstimator::with_ranges(&data, Ranges::root(&schema));
        let plan = GreedyPlanner::new(splits)
            .with_grid(SplitGrid::for_query(&schema, &query, 6))
            .plan(&schema, &query, &est)
            .unwrap();
        let rep = regret_report(&plan, &query, &schema, &CostModel::PerAttribute, &est, &est);
        prop_assert_eq!(rep.total_regret.to_bits(), 0.0f64.to_bits());
        prop_assert_eq!(rep.structure_regret.to_bits(), 0.0f64.to_bits());
        for c in &rep.contributions {
            prop_assert_eq!(c.contribution.to_bits(), 0.0f64.to_bits());
        }
    }
}
