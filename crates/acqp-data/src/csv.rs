//! Plain CSV import/export, so real TinyDB/TinyOS traces can replace the
//! statistical generators.
//!
//! Format: a header row of attribute names, then one row of discretized
//! `u16` values per tuple. Hand-rolled (the format is trivial and keeps
//! the workspace dependency-light).
//!
//! Loading never panics, whatever the bytes: every failure mode —
//! unreadable file, invalid UTF-8, bad header, malformed row, value
//! outside the schema's domain — is a typed [`LoadError`].

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use acqp_core::{Dataset, Schema};

use crate::error::{io_err, LoadError, Result};

/// Writes `data` as CSV with a header derived from `schema`.
pub fn save_csv(path: &Path, schema: &Schema, data: &Dataset) -> Result<()> {
    let mut out = BufWriter::new(File::create(path).map_err(|e| io_err(path, e))?);
    let write = |out: &mut BufWriter<File>| -> std::io::Result<()> {
        let names: Vec<&str> = schema.attrs().iter().map(|a| a.name()).collect();
        writeln!(out, "{}", names.join(","))?;
        for row in 0..data.len() {
            for a in 0..schema.len() {
                if a > 0 {
                    write!(out, ",")?;
                }
                write!(out, "{}", data.value(row, a))?;
            }
            writeln!(out)?;
        }
        out.flush()
    };
    write(&mut out).map_err(|e| io_err(path, e))
}

/// Reads a CSV produced by [`save_csv`] (or any header + u16 rows file
/// whose columns match `schema` in order).
pub fn load_csv(path: &Path, schema: &Schema) -> Result<Dataset> {
    let file = File::open(path).map_err(|e| io_err(path, e))?;
    parse_csv(BufReader::new(file), schema).map_err(|e| match e {
        // Mid-stream read failures (including invalid UTF-8) carry the
        // path for context.
        LoadError::Io { what, .. } => LoadError::Io { path: path.display().to_string(), what },
        other => other,
    })
}

/// Parses CSV from any reader — the pure core behind [`load_csv`],
/// directly fuzzable without touching the filesystem.
pub fn parse_csv<R: BufRead>(reader: R, schema: &Schema) -> Result<Dataset> {
    let mut lines = reader.lines();
    let header = lines
        .next()
        .ok_or(LoadError::Header { what: "empty csv".into() })?
        .map_err(|e| LoadError::Io { path: String::new(), what: e.to_string() })?;
    let names: Vec<&str> = header.split(',').collect();
    if names.len() != schema.len() {
        return Err(LoadError::Header {
            what: format!("csv has {} columns, schema has {}", names.len(), schema.len()),
        });
    }
    let mut rows = Vec::new();
    for (i, line) in lines.enumerate() {
        let lineno = i + 2;
        let line = line.map_err(|e| LoadError::Io { path: String::new(), what: e.to_string() })?;
        if line.is_empty() {
            continue;
        }
        let mut row = Vec::with_capacity(schema.len());
        for field in line.split(',') {
            let v: u16 = field.trim().parse().map_err(|_| LoadError::Line {
                line: lineno,
                what: format!("`{field}` is not a u16 value"),
            })?;
            row.push(v);
        }
        if row.len() != schema.len() {
            return Err(LoadError::Line {
                line: lineno,
                what: format!("{} values, schema has {} columns", row.len(), schema.len()),
            });
        }
        rows.push(row);
    }
    Ok(Dataset::from_rows(schema, rows)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use acqp_core::Attribute;

    #[test]
    fn roundtrip() {
        let schema =
            Schema::new(vec![Attribute::new("a", 8, 1.0), Attribute::new("b", 8, 2.0)]).unwrap();
        let data = Dataset::from_rows(&schema, vec![vec![0, 7], vec![3, 3], vec![5, 1]]).unwrap();
        let dir = std::env::temp_dir().join("acqp_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.csv");
        save_csv(&path, &schema, &data).unwrap();
        let back = load_csv(&path, &schema).unwrap();
        assert_eq!(back.len(), 3);
        for r in 0..3 {
            assert_eq!(back.row(r), data.row(r));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_mismatched_columns() {
        let schema = Schema::new(vec![Attribute::new("a", 8, 1.0)]).unwrap();
        let dir = std::env::temp_dir().join("acqp_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.csv");
        std::fs::write(&path, "a,b\n1,2\n").unwrap();
        assert!(load_csv(&path, &schema).is_err());
        std::fs::write(&path, "a\nx\n").unwrap();
        assert!(load_csv(&path, &schema).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn typed_errors_carry_location() {
        let schema = Schema::new(vec![Attribute::new("a", 8, 1.0)]).unwrap();
        match parse_csv("a\n1\nbogus\n".as_bytes(), &schema) {
            Err(LoadError::Line { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected a line error, got {other:?}"),
        }
        match parse_csv("".as_bytes(), &schema) {
            Err(LoadError::Header { .. }) => {}
            other => panic!("expected a header error, got {other:?}"),
        }
        // Values beyond the domain surface core validation, not a panic.
        match parse_csv("a\n9\n".as_bytes(), &schema) {
            Err(LoadError::Data(_)) => {}
            other => panic!("expected a data error, got {other:?}"),
        }
        // Missing file is an Io error with the path in it.
        match load_csv(Path::new("/nonexistent/acqp.csv"), &schema) {
            Err(LoadError::Io { path, .. }) => assert!(path.contains("acqp.csv")),
            other => panic!("expected an io error, got {other:?}"),
        }
    }
}
