//! Plain CSV import/export, so real TinyDB/TinyOS traces can replace the
//! statistical generators.
//!
//! Format: a header row of attribute names, then one row of discretized
//! `u16` values per tuple. Hand-rolled (the format is trivial and keeps
//! the workspace dependency-light).

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use acqp_core::{Dataset, Schema};

/// Writes `data` as CSV with a header derived from `schema`.
pub fn save_csv(path: &Path, schema: &Schema, data: &Dataset) -> io::Result<()> {
    let mut out = BufWriter::new(File::create(path)?);
    let names: Vec<&str> = schema.attrs().iter().map(|a| a.name()).collect();
    writeln!(out, "{}", names.join(","))?;
    for row in 0..data.len() {
        for a in 0..schema.len() {
            if a > 0 {
                write!(out, ",")?;
            }
            write!(out, "{}", data.value(row, a))?;
        }
        writeln!(out)?;
    }
    out.flush()
}

/// Reads a CSV produced by [`save_csv`] (or any header + u16 rows file
/// whose columns match `schema` in order).
pub fn load_csv(path: &Path, schema: &Schema) -> io::Result<Dataset> {
    let mut lines = BufReader::new(File::open(path)?).lines();
    let header =
        lines.next().ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty csv"))??;
    let names: Vec<&str> = header.split(',').collect();
    if names.len() != schema.len() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("csv has {} columns, schema has {}", names.len(), schema.len()),
        ));
    }
    let mut rows = Vec::new();
    for (i, line) in lines.enumerate() {
        let line = line?;
        if line.is_empty() {
            continue;
        }
        let row: Result<Vec<u16>, _> = line.split(',').map(str::parse::<u16>).collect();
        let row = row.map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("row {}: {e}", i + 2))
        })?;
        rows.push(row);
    }
    Dataset::from_rows(schema, rows)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use acqp_core::Attribute;

    #[test]
    fn roundtrip() {
        let schema =
            Schema::new(vec![Attribute::new("a", 8, 1.0), Attribute::new("b", 8, 2.0)]).unwrap();
        let data = Dataset::from_rows(&schema, vec![vec![0, 7], vec![3, 3], vec![5, 1]]).unwrap();
        let dir = std::env::temp_dir().join("acqp_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.csv");
        save_csv(&path, &schema, &data).unwrap();
        let back = load_csv(&path, &schema).unwrap();
        assert_eq!(back.len(), 3);
        for r in 0..3 {
            assert_eq!(back.row(r), data.row(r));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_mismatched_columns() {
        let schema = Schema::new(vec![Attribute::new("a", 8, 1.0)]).unwrap();
        let dir = std::env::temp_dir().join("acqp_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.csv");
        std::fs::write(&path, "a,b\n1,2\n").unwrap();
        assert!(load_csv(&path, &schema).is_err());
        std::fs::write(&path, "a\nx\n").unwrap();
        assert!(load_csv(&path, &schema).is_err());
        std::fs::remove_file(&path).ok();
    }
}
