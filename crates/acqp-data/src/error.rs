//! Typed loader errors.
//!
//! The CSV and schema-file loaders ingest bytes from outside the
//! process — exactly the inputs that show up truncated, corrupted, or
//! malicious. Every failure mode is a variant here; none of them is a
//! panic (see `tests/corruption.rs` for the fuzz-style guarantee).

use std::fmt;

/// Why a trace or schema file failed to load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadError {
    /// The underlying file could not be read or written.
    Io {
        /// Path involved.
        path: String,
        /// The OS error text.
        what: String,
    },
    /// The file-level structure is wrong (empty file, bad header,
    /// column count mismatch).
    Header {
        /// What was wrong.
        what: String,
    },
    /// A specific line failed to parse (1-based line number).
    Line {
        /// 1-based line number in the input.
        line: usize,
        /// What was wrong.
        what: String,
    },
    /// The parsed content was rejected by `acqp-core` validation
    /// (wrong arity, value outside the attribute's domain, ...).
    Data(acqp_core::Error),
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Io { path, what } => write!(f, "{path}: {what}"),
            LoadError::Header { what } => write!(f, "{what}"),
            LoadError::Line { line, what } => write!(f, "line {line}: {what}"),
            LoadError::Data(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<acqp_core::Error> for LoadError {
    fn from(e: acqp_core::Error) -> Self {
        LoadError::Data(e)
    }
}

/// Shorthand for loader results.
pub type Result<T> = std::result::Result<T, LoadError>;

pub(crate) fn io_err(path: &std::path::Path, e: std::io::Error) -> LoadError {
    LoadError::Io { path: path.display().to_string(), what: e.to_string() }
}
