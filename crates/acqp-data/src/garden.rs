//! The Garden dataset — a statistical twin of the forest deployment of
//! §6.2.
//!
//! Eleven motes (or a five-mote subset) each expose *temperature*,
//! *voltage* and *humidity*; a global *time* attribute completes the
//! schema (3·M + 1 attributes — 16 for Garden-5, 34 for Garden-11).
//! Temperature and humidity cost 100 units; voltage and time cost 1.
//!
//! The motes share a forest microclimate: a common diurnal temperature
//! wave plus weather fronts spanning hours, with small per-mote offsets
//! (canopy position). Humidity moves inversely to temperature and spikes
//! during rain events. Battery voltage sags measurably in the cold, so
//! the *cheap* voltage of one mote carries information about the
//! *expensive* temperature of every mote — exactly the cross-attribute
//! correlation Figs. 10–11 exploit.

use acqp_core::{Attribute, Dataset, Discretizer, Schema};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::rng::normal;
use crate::Generated;

/// Configuration for the Garden generator.
#[derive(Debug, Clone)]
pub struct GardenConfig {
    /// Number of motes (5 for Garden-5, 11 for Garden-11).
    pub motes: u16,
    /// Number of sampling epochs.
    pub epochs: usize,
    /// Minutes between epochs.
    pub epoch_minutes: u32,
    /// Discretization bins for temperature and humidity.
    pub sensor_bins: u16,
    /// Acquisition cost of temperature/humidity.
    pub expensive_cost: f64,
    /// Acquisition cost of voltage/time.
    pub cheap_cost: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GardenConfig {
    fn default() -> Self {
        GardenConfig {
            motes: 11,
            epochs: 2_500,
            epoch_minutes: 15,
            sensor_bins: 64,
            expensive_cost: 100.0,
            cheap_cost: 1.0,
            seed: 0x9a2d,
        }
    }
}

impl GardenConfig {
    /// The Garden-5 subset of §6.2.
    pub fn garden5() -> Self {
        GardenConfig { motes: 5, ..Self::default() }
    }

    /// The full Garden-11 deployment of §6.2.
    pub fn garden11() -> Self {
        Self::default()
    }

    /// A small configuration for unit tests.
    pub fn small() -> Self {
        GardenConfig { motes: 3, epochs: 400, ..Self::default() }
    }
}

/// Attribute ids within the Garden schema.
#[derive(Debug, Clone, Copy)]
pub struct GardenAttrs {
    motes: u16,
}

impl GardenAttrs {
    /// Layout helper for a deployment with `motes` motes.
    pub fn new(motes: u16) -> Self {
        GardenAttrs { motes }
    }

    /// Temperature of mote `m`.
    pub fn temp(&self, m: u16) -> usize {
        debug_assert!(m < self.motes);
        usize::from(m) * 3
    }

    /// Voltage of mote `m`.
    pub fn voltage(&self, m: u16) -> usize {
        usize::from(m) * 3 + 1
    }

    /// Humidity of mote `m`.
    pub fn humidity(&self, m: u16) -> usize {
        usize::from(m) * 3 + 2
    }

    /// The shared time-of-day attribute.
    pub fn time(&self) -> usize {
        usize::from(self.motes) * 3
    }

    /// Total attribute count (3·motes + 1).
    pub fn len(&self) -> usize {
        usize::from(self.motes) * 3 + 1
    }

    /// Never empty.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Generates the Garden dataset.
pub fn generate(cfg: &GardenConfig) -> Generated {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let temp_d = Discretizer::uniform(-5.0, 35.0, cfg.sensor_bins);
    let hum_d = Discretizer::uniform(20.0, 100.0, cfg.sensor_bins);
    let volt_d = Discretizer::uniform(2.3, 3.1, cfg.sensor_bins.min(32));

    let layout = GardenAttrs::new(cfg.motes);
    let mut attrs = Vec::with_capacity(layout.len());
    for m in 0..cfg.motes {
        attrs.push(Attribute::new(format!("temp{m}"), temp_d.bins(), cfg.expensive_cost));
        attrs.push(Attribute::new(format!("volt{m}"), volt_d.bins(), cfg.cheap_cost));
        attrs.push(Attribute::new(format!("hum{m}"), hum_d.bins(), cfg.expensive_cost));
    }
    attrs.push(Attribute::new("time", 24, cfg.cheap_cost));
    let schema = Schema::new(attrs).expect("garden schema is valid");

    // Per-mote microclimate: canopy position shifts the mean and damps
    // or amplifies the diurnal swing; shelter damps rain response. This
    // heterogeneity is what makes *which mote to probe next* depend on
    // observed values — the leverage conditional plans exploit.
    // Amplitudes below zero model cold-air pooling hollows that move
    // *against* the canopy-level diurnal wave — their predicate failures
    // anti-correlate with everyone else's, which is what defeats
    // marginal-selectivity (Naive) ordering per-tuple.
    let t_off: Vec<f64> = (0..cfg.motes).map(|_| rng.gen_range(-2.0..2.0)).collect();
    let t_amp: Vec<f64> = (0..cfg.motes)
        .map(|i| if i % 4 == 3 { rng.gen_range(-0.7..-0.2) } else { rng.gen_range(0.3..1.5) })
        .collect();
    let h_off: Vec<f64> = (0..cfg.motes).map(|_| rng.gen_range(-4.0..4.0)).collect();
    let h_slope: Vec<f64> = (0..cfg.motes).map(|_| rng.gen_range(-2.2..-1.2)).collect();
    let rain_gain: Vec<f64> = (0..cfg.motes).map(|_| rng.gen_range(6.0..30.0)).collect();
    let batt0: Vec<f64> = (0..cfg.motes).map(|_| rng.gen_range(2.95..3.08)).collect();

    // Weather front: an AR(1) walk over epochs; rain events several
    // hours long.
    let mut front = 0.0f64;
    let mut rain_left = 0usize;
    let mut rows = Vec::with_capacity(cfg.epochs);

    for epoch in 0..cfg.epochs {
        let minutes = epoch as u32 * cfg.epoch_minutes;
        let hour_f = f64::from(minutes % (24 * 60)) / 60.0;
        let hour = ((minutes / 60) % 24) as u16;
        front = 0.985 * front + normal(&mut rng, 0.0, 0.3);
        if rain_left == 0 && rng.gen_bool(0.004) {
            rain_left = rng.gen_range(8..40); // a few hours of rain
        }
        let raining = rain_left > 0;
        rain_left = rain_left.saturating_sub(1);

        // Diurnal wave peaking mid-afternoon.
        let diurnal = 8.0 * ((hour_f - 14.5) / 24.0 * 2.0 * std::f64::consts::PI).cos();
        let base_temp = 14.0 + front - if raining { 4.0 } else { 0.0 };

        let mut row = Vec::with_capacity(layout.len());
        for m in 0..cfg.motes {
            let mi = m as usize;
            let t = base_temp + t_amp[mi] * diurnal + t_off[mi] + normal(&mut rng, 0.0, 0.45);
            let h = (62.0
                + h_slope[mi] * (t - 14.0)
                + h_off[mi]
                + if raining { rain_gain[mi] } else { 0.0 }
                + normal(&mut rng, 0.0, 1.8))
            .clamp(20.0, 99.9);
            // Battery voltage tracks temperature (~6 mV/°C thermal
            // coefficient) on top of a slow discharge.
            let drain = 0.03 * epoch as f64 / cfg.epochs as f64;
            let v = batt0[m as usize] - drain + 0.006 * (t - 15.0) + normal(&mut rng, 0.0, 0.008);
            row.push(temp_d.quantize(t));
            row.push(volt_d.quantize(v));
            row.push(hum_d.quantize(h));
        }
        row.push(hour);
        rows.push(row);
    }

    let data = Dataset::from_rows(&schema, rows).expect("generated rows fit the schema");
    let mut discretizers: Vec<Option<Discretizer>> = Vec::with_capacity(layout.len());
    for _ in 0..cfg.motes {
        discretizers.push(Some(temp_d.clone()));
        discretizers.push(Some(volt_d.clone()));
        discretizers.push(Some(hum_d.clone()));
    }
    discretizers.push(None);
    Generated { schema, data, discretizers }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corr(data: &Dataset, a: usize, b: usize) -> f64 {
        let n = data.len() as f64;
        let ca = data.column(a);
        let cb = data.column(b);
        let ma = ca.iter().map(|&v| f64::from(v)).sum::<f64>() / n;
        let mb = cb.iter().map(|&v| f64::from(v)).sum::<f64>() / n;
        let (mut cov, mut va, mut vb) = (0.0, 0.0, 0.0);
        for i in 0..data.len() {
            let da = f64::from(ca[i]) - ma;
            let db = f64::from(cb[i]) - mb;
            cov += da * db;
            va += da * da;
            vb += db * db;
        }
        cov / (va.sqrt() * vb.sqrt())
    }

    #[test]
    fn layout_matches_paper_counts() {
        assert_eq!(GardenAttrs::new(5).len(), 16);
        assert_eq!(GardenAttrs::new(11).len(), 34);
        let l = GardenAttrs::new(5);
        assert_eq!(l.temp(0), 0);
        assert_eq!(l.voltage(0), 1);
        assert_eq!(l.humidity(4), 14);
        assert_eq!(l.time(), 15);
    }

    #[test]
    fn schema_costs() {
        let g = generate(&GardenConfig::small());
        let l = GardenAttrs::new(3);
        assert_eq!(g.schema.cost(l.temp(0)), 100.0);
        assert_eq!(g.schema.cost(l.voltage(0)), 1.0);
        assert_eq!(g.schema.cost(l.humidity(2)), 100.0);
        assert_eq!(g.schema.cost(l.time()), 1.0);
    }

    #[test]
    fn cross_mote_temperature_correlation() {
        let g = generate(&GardenConfig::garden5());
        let l = GardenAttrs::new(5);
        let r = corr(&g.data, l.temp(0), l.temp(4));
        assert!(r > 0.8, "cross-mote temp correlation r = {r}");
        // Humidity anti-correlates with temperature.
        let rh = corr(&g.data, l.temp(1), l.humidity(1));
        assert!(rh < -0.5, "temp vs humidity r = {rh}");
    }

    #[test]
    fn cheap_voltage_predicts_expensive_temperature() {
        let g = generate(&GardenConfig::garden5());
        let l = GardenAttrs::new(5);
        // Voltage of mote 0 vs temperature of *another* (non-contrarian)
        // mote.
        let r = corr(&g.data, l.voltage(0), l.temp(1));
        assert!(r > 0.35, "voltage-temp cross correlation r = {r}");
    }

    #[test]
    fn contrarian_mote_anticorrelates() {
        // Every fourth mote (id % 4 == 3) sits in a cold-air pooling
        // hollow and moves against the diurnal wave.
        let g = generate(&GardenConfig::garden5());
        let l = GardenAttrs::new(5);
        let r = corr(&g.data, l.temp(0), l.temp(3));
        assert!(r < 0.3, "contrarian mote should not track the wave, r = {r}");
    }

    #[test]
    fn determinism_and_domains() {
        let cfg = GardenConfig::small();
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.data.column(0), b.data.column(0));
        for attr in 0..a.schema.len() {
            let k = a.schema.domain(attr);
            assert!(a.data.column(attr).iter().all(|&v| v < k));
        }
    }
}
