//! The Lab dataset — a statistical twin of the Intel-lab trace of §6.1.
//!
//! The paper's Lab data has six attributes: expensive *light*,
//! *temperature* and *humidity* (cost 100 each) and cheap *nodeid*,
//! *hour* and *voltage* (cost 1 each). The correlations its plans
//! exploit, all reproduced here, are:
//!
//! * **light ↔ hour** (Fig. 1): dark at night, a wide bright band by
//!   day; nearly deterministic outside working hours.
//! * **light ↔ nodeid ↔ hour** (Fig. 9): nodes 1–6 sit in a part of the
//!   lab unused at night (dark whenever it's late), while nodes 7+ are
//!   sometimes used until late, so light is less predictable there.
//! * **temperature ↔ hour**: the building is cooler at night.
//! * **humidity ↔ hour** (Fig. 9's discussion): HVAC runs by day and
//!   keeps humidity low; at night it is off and humidity climbs.
//! * **voltage**: slow per-mote battery decline — cheap but largely
//!   uninformative, a deliberate distractor.

use acqp_core::{Attribute, Dataset, Discretizer, Schema};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::rng::normal;
use crate::Generated;

/// Attribute indices of the Lab schema.
pub mod attrs {
    /// Expensive light sensor (cost 100).
    pub const LIGHT: usize = 0;
    /// Expensive temperature sensor (cost 100).
    pub const TEMP: usize = 1;
    /// Expensive humidity sensor (cost 100).
    pub const HUMIDITY: usize = 2;
    /// Cheap node identifier (cost 1).
    pub const NODEID: usize = 3;
    /// Cheap hour-of-day clock (cost 1).
    pub const HOUR: usize = 4;
    /// Cheap battery voltage (cost 1).
    pub const VOLTAGE: usize = 5;
}

/// Configuration for the Lab generator.
#[derive(Debug, Clone)]
pub struct LabConfig {
    /// Number of motes (the paper had ~45; nodes `0..boundary` behave
    /// like its nodes 1–6).
    pub motes: u16,
    /// Motes with id `< night_quiet_boundary` sit in the zone that is
    /// never occupied at night.
    pub night_quiet_boundary: u16,
    /// Number of sampling epochs (readings per mote).
    pub epochs: usize,
    /// Minutes between epochs.
    pub epoch_minutes: u32,
    /// Discretization bins for light / temperature / humidity / voltage.
    pub sensor_bins: u16,
    /// Acquisition cost of the expensive sensors.
    pub expensive_cost: f64,
    /// Acquisition cost of the cheap attributes.
    pub cheap_cost: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LabConfig {
    fn default() -> Self {
        LabConfig {
            motes: 20,
            night_quiet_boundary: 6,
            epochs: 2_000,
            epoch_minutes: 10,
            sensor_bins: 64,
            expensive_cost: 100.0,
            cheap_cost: 1.0,
            seed: 0x1ab,
        }
    }
}

impl LabConfig {
    /// A small configuration for unit tests and doc examples.
    pub fn small() -> Self {
        LabConfig { motes: 8, epochs: 300, ..Self::default() }
    }
}

/// Generates the Lab dataset.
pub fn generate(cfg: &LabConfig) -> Generated {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let light_d = Discretizer::uniform(0.0, 1200.0, cfg.sensor_bins);
    let temp_d = Discretizer::uniform(10.0, 35.0, cfg.sensor_bins);
    let hum_d = Discretizer::uniform(20.0, 80.0, cfg.sensor_bins);
    let volt_d = Discretizer::uniform(2.2, 3.1, cfg.sensor_bins.min(32));

    let schema = Schema::new(vec![
        Attribute::new("light", light_d.bins(), cfg.expensive_cost),
        Attribute::new("temp", temp_d.bins(), cfg.expensive_cost),
        Attribute::new("humidity", hum_d.bins(), cfg.expensive_cost),
        Attribute::new("nodeid", cfg.motes, cfg.cheap_cost),
        Attribute::new("hour", 24, cfg.cheap_cost),
        Attribute::new("voltage", volt_d.bins(), cfg.cheap_cost),
    ])
    .expect("lab schema is valid");

    // Per-mote battery start levels.
    let batt0: Vec<f64> = (0..cfg.motes).map(|_| rng.gen_range(2.9..3.05)).collect();
    // Per-day evening-occupancy draw for the late-night zone.
    let mut rows = Vec::with_capacity(cfg.epochs * cfg.motes as usize);
    let mut late_zone_busy_tonight = false;
    let mut current_day = u32::MAX;

    for epoch in 0..cfg.epochs {
        let minutes = epoch as u32 * cfg.epoch_minutes;
        let day = minutes / (24 * 60);
        let hour_f = f64::from(minutes % (24 * 60)) / 60.0;
        let hour = (minutes / 60) % 24;
        let weekday = (day % 7) < 5;
        if day != current_day {
            current_day = day;
            // Roughly half the evenings someone works late in zone B.
            late_zone_busy_tonight = rng.gen_bool(0.5);
        }
        // Daylight: bell-shaped between 6h and 20h.
        let daylight = if (6.0..20.0).contains(&hour_f) {
            let t = (hour_f - 6.0) / 14.0;
            550.0 * (std::f64::consts::PI * t).sin().max(0.0)
        } else {
            0.0
        };

        for mote in 0..cfg.motes {
            let quiet_zone = mote < cfg.night_quiet_boundary;
            // Occupancy: working hours on weekdays; zone B also evenings.
            let working_hours = weekday && (8.0..18.0).contains(&hour_f);
            let evening = (18.0..24.0).contains(&hour_f);
            let occupied = (working_hours && rng.gen_bool(0.9))
                || (!quiet_zone && evening && late_zone_busy_tonight && rng.gen_bool(0.8));

            let artificial = if occupied { 420.0 } else { 0.0 };
            let light =
                (daylight * rng.gen_range(0.55..1.0) + artificial + normal(&mut rng, 3.0, 2.0))
                    .max(0.0);

            let base_temp = if (7.0..19.0).contains(&hour_f) { 23.5 } else { 18.5 };
            let temp = base_temp + if occupied { 1.5 } else { 0.0 } + normal(&mut rng, 0.0, 1.0);

            // HVAC dries the air by day; off at night.
            let hvac_on = (6.0..20.0).contains(&hour_f);
            let humidity =
                if hvac_on { normal(&mut rng, 40.0, 4.0) } else { normal(&mut rng, 58.0, 5.0) };

            let drain = 0.25 * epoch as f64 / cfg.epochs as f64;
            let voltage = batt0[mote as usize] - drain + normal(&mut rng, 0.0, 0.01);

            rows.push(vec![
                light_d.quantize(light),
                temp_d.quantize(temp),
                hum_d.quantize(humidity),
                mote,
                hour as u16,
                volt_d.quantize(voltage),
            ]);
        }
    }

    let data = Dataset::from_rows(&schema, rows).expect("generated rows fit the schema");
    Generated {
        schema,
        data,
        discretizers: vec![Some(light_d), Some(temp_d), Some(hum_d), None, None, Some(volt_d)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corr(data: &Dataset, a: usize, b: usize) -> f64 {
        let n = data.len() as f64;
        let ca = data.column(a);
        let cb = data.column(b);
        let ma = ca.iter().map(|&v| f64::from(v)).sum::<f64>() / n;
        let mb = cb.iter().map(|&v| f64::from(v)).sum::<f64>() / n;
        let mut cov = 0.0;
        let mut va = 0.0;
        let mut vb = 0.0;
        for i in 0..data.len() {
            let da = f64::from(ca[i]) - ma;
            let db = f64::from(cb[i]) - mb;
            cov += da * db;
            va += da * da;
            vb += db * db;
        }
        cov / (va.sqrt() * vb.sqrt())
    }

    #[test]
    fn shape_and_determinism() {
        let cfg = LabConfig::small();
        let g1 = generate(&cfg);
        let g2 = generate(&cfg);
        assert_eq!(g1.data.len(), cfg.epochs * cfg.motes as usize);
        assert_eq!(g1.schema.len(), 6);
        assert_eq!(g1.data.column(attrs::LIGHT), g2.data.column(attrs::LIGHT));
        // A different seed changes the data.
        let g3 = generate(&LabConfig { seed: 999, ..cfg });
        assert_ne!(g1.data.column(attrs::LIGHT), g3.data.column(attrs::LIGHT));
    }

    #[test]
    fn night_is_dark_in_the_quiet_zone() {
        let g = generate(&LabConfig::small());
        let mut dark = 0usize;
        let mut total = 0usize;
        for row in 0..g.data.len() {
            let hour = g.data.value(row, attrs::HOUR);
            let node = g.data.value(row, attrs::NODEID);
            if !(6..20).contains(&hour) && node < 6 {
                total += 1;
                // < ~40 lux.
                if g.data.value(row, attrs::LIGHT) <= 2 {
                    dark += 1;
                }
            }
        }
        assert!(total > 100);
        assert!(
            dark as f64 / total as f64 > 0.95,
            "quiet zone must be dark at night ({dark}/{total})"
        );
    }

    #[test]
    fn diurnal_correlations_present() {
        let g = generate(&LabConfig::default());
        // Day indicator vs sensors: build a synthetic day column via hour.
        // Directly: temp correlates positively with daytime hours bucket.
        let day_flags: Vec<u16> =
            g.data.column(attrs::HOUR).iter().map(|&h| u16::from((7..19).contains(&h))).collect();
        // Splice a temp/day comparison by hand.
        let n = g.data.len() as f64;
        let temp = g.data.column(attrs::TEMP);
        let mt = temp.iter().map(|&v| f64::from(v)).sum::<f64>() / n;
        let md = day_flags.iter().map(|&v| f64::from(v)).sum::<f64>() / n;
        let mut cov = 0.0;
        let mut vt = 0.0;
        let mut vd = 0.0;
        for i in 0..temp.len() {
            let a = f64::from(temp[i]) - mt;
            let b = f64::from(day_flags[i]) - md;
            cov += a * b;
            vt += a * a;
            vd += b * b;
        }
        let r_temp_day = cov / (vt.sqrt() * vd.sqrt());
        assert!(r_temp_day > 0.6, "temp should track daytime, r = {r_temp_day}");
        // Humidity drops by day (HVAC): negative correlation with temp.
        let r_th = corr(&g.data, attrs::TEMP, attrs::HUMIDITY);
        assert!(r_th < -0.4, "temp vs humidity r = {r_th}");
        // Voltage is a weak distractor.
        let r_lv = corr(&g.data, attrs::LIGHT, attrs::VOLTAGE).abs();
        assert!(r_lv < 0.3, "light vs voltage r = {r_lv}");
    }

    #[test]
    fn values_fit_domains() {
        let g = generate(&LabConfig::small());
        for a in 0..g.schema.len() {
            let k = g.schema.domain(a);
            assert!(g.data.column(a).iter().all(|&v| v < k), "attr {a} out of domain");
        }
    }
}
