//! # acqp-data — dataset substrates for acquisitional query processing
//!
//! The paper's evaluation (§6) runs on two real sensor-network traces
//! and one published synthetic generator. The real traces are not
//! redistributable, so this crate provides *statistical twins* that
//! reproduce exactly the correlation structure the paper's algorithms
//! exploit (see DESIGN.md §2 for the substitution argument):
//!
//! * [`lab`] — the Intel Lab-style trace: per-mote light / temperature /
//!   humidity with strong diurnal structure, occupancy bursts, zoned
//!   node behaviour, plus cheap `nodeid` / `hour` / `voltage` attributes
//!   (Figs. 1, 8, 9).
//! * [`garden`] — the forest deployment: 5 or 11 motes × (temperature,
//!   voltage, humidity) sharing a microclimate, plus a global `time`
//!   attribute (Figs. 10, 11).
//! * [`synthetic`] — a reimplementation of the Babu et al. generator the
//!   paper adapts: `n` binary attributes in correlated groups with
//!   calibrated 80% within-group agreement (Fig. 12).
//! * [`workload`] — the query generators of §6 (random 3-predicate Lab
//!   queries at ~50% per-predicate selectivity, Garden range and
//!   NOT-range predicates over every mote, the synthetic all-expensive
//!   conjunction).
//! * [`csv`] — plain-text import/export so real TinyDB traces can be
//!   dropped in. Loaders return typed [`LoadError`]s and never panic on
//!   hostile bytes (fuzzed in `tests/corruption.rs`).
//! * [`schema_file`] — textual schema descriptions (name, domain, cost,
//!   natural range) so external traces plan without writing Rust.
//!
//! All generators are deterministic given a seed.

#![warn(missing_docs)]
// Determinism tests assert bitwise-equal floats on purpose; the
// workspace-level `float_cmp` warning stays on for library code.
#![cfg_attr(test, allow(clippy::float_cmp))]
pub mod csv;
pub mod error;
pub mod garden;
pub mod lab;
pub mod replay;
pub mod rng;
pub mod schema_file;
pub mod synthetic;
pub mod workload;

use acqp_core::{Dataset, Discretizer, Schema};

pub use error::LoadError;

/// A generated dataset bundle: schema, discretized data, and the
/// discretizers that map bins back to natural units (None for attributes
/// that are natively discrete, like node ids).
#[derive(Debug, Clone)]
pub struct Generated {
    /// Attribute schema (names, domains, acquisition costs).
    pub schema: Schema,
    /// The discretized samples.
    pub data: Dataset,
    /// Per-attribute discretizers for pretty-printing in natural units.
    pub discretizers: Vec<Option<Discretizer>>,
}

impl Generated {
    /// Splits into time-disjoint `(train, test)` datasets, as §6 does.
    pub fn split(&self, train_frac: f64) -> (Dataset, Dataset) {
        self.data.split_at(train_frac)
    }
}

/// Sample standard deviation of a discretized column, used by the Lab
/// workload generator (predicate width = 2σ).
pub fn column_std(data: &Dataset, attr: usize) -> f64 {
    let col = data.column(attr);
    if col.len() < 2 {
        return 0.0;
    }
    let n = col.len() as f64;
    let mean = col.iter().map(|&v| f64::from(v)).sum::<f64>() / n;
    let var = col.iter().map(|&v| (f64::from(v) - mean).powi(2)).sum::<f64>() / (n - 1.0);
    var.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use acqp_core::Attribute;

    #[test]
    fn column_std_known_values() {
        let schema = Schema::new(vec![Attribute::new("a", 10, 1.0)]).unwrap();
        let data = Dataset::from_rows(
            &schema,
            vec![vec![2], vec![4], vec![4], vec![4], vec![5], vec![5], vec![7], vec![9]],
        )
        .unwrap();
        // Known sample std of [2,4,4,4,5,5,7,9] = sqrt(32/7).
        assert!((column_std(&data, 0) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn column_std_degenerate() {
        let schema = Schema::new(vec![Attribute::new("a", 10, 1.0)]).unwrap();
        let data = Dataset::from_rows(&schema, vec![vec![3]]).unwrap();
        assert_eq!(column_std(&data, 0), 0.0);
    }
}
