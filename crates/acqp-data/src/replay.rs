//! Historical-trace replay: run a plan over every row of a recorded
//! dataset as if each row arrived as a live tuple.
//!
//! This is the evaluation harness of §6 — expected cost is measured by
//! replaying the held-out portion of a trace through the plan — and the
//! entry point the vectorized executor is benchmarked against. Both
//! functions dispatch on [`ExecMode`]: `Scalar` walks the plan tree per
//! tuple, `Vectorized` batches the trace through the columnar executor;
//! the two are bitwise-identical (reports, metrics) by construction and
//! by the differential suite in `tests/vectorized_equivalence.rs`.

use acqp_core::{
    measure_metered_mode, measure_mode, CostModel, CostReport, Dataset, ExecMetrics, ExecMode,
    Plan, Query, Schema,
};

/// Replays `plan` over every row of `data` and reports measured cost,
/// selectivity and correctness (Eq. 4 over the trace).
pub fn replay_trace(
    plan: &Plan,
    query: &Query,
    schema: &Schema,
    model: &CostModel,
    data: &Dataset,
    mode: ExecMode,
) -> CostReport {
    measure_mode(plan, query, schema, model, data, 0..data.len(), mode)
}

/// Like [`replay_trace`], additionally recording per-tuple executor
/// metrics (`exec.*`, and `exec.batch.*` under
/// [`ExecMode::Vectorized`]) into `metrics`.
pub fn replay_trace_metered(
    plan: &Plan,
    query: &Query,
    schema: &Schema,
    model: &CostModel,
    data: &Dataset,
    mode: ExecMode,
    metrics: &ExecMetrics,
) -> CostReport {
    measure_metered_mode(plan, query, schema, model, data, 0..data.len(), mode, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lab::{self, LabConfig};
    use crate::workload;
    use acqp_core::prelude::*;

    #[test]
    fn replay_modes_are_bitwise_identical_on_lab_trace() {
        let g = lab::generate(&LabConfig { motes: 4, epochs: 128, seed: 11, ..LabConfig::small() });
        let (train, live) = g.split(0.5);
        let query = workload::lab_queries(&g.schema, &train, 1, 3, 7).unwrap().pop().unwrap();
        let est = CountingEstimator::new(&train);
        let plan = GreedyPlanner::new(8).plan(&g.schema, &query, &est).unwrap();
        let model = CostModel::PerAttribute;

        let s = replay_trace(&plan, &query, &g.schema, &model, &live, ExecMode::Scalar);
        let v = replay_trace(&plan, &query, &g.schema, &model, &live, ExecMode::Vectorized);
        assert_eq!(s.tuples, v.tuples);
        assert_eq!(s.pass_rate.to_bits(), v.pass_rate.to_bits());
        assert_eq!(s.mean_cost.to_bits(), v.mean_cost.to_bits());
        assert_eq!(s.max_cost.to_bits(), v.max_cost.to_bits());
        assert_eq!(s.all_correct, v.all_correct);
    }
}
