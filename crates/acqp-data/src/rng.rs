//! Small random-sampling helpers shared by the generators.

use rand::Rng;

/// Standard normal sample via the Box–Muller transform (kept in-crate so
/// the workspace does not need `rand_distr`).
pub fn gaussian(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Normal sample with the given mean and standard deviation.
pub fn normal(rng: &mut impl Rng, mean: f64, std: f64) -> f64 {
    mean + std * gaussian(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn normal_shifts_and_scales() {
        let mut rng = StdRng::seed_from_u64(8);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 10.0, 3.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(gaussian(&mut a), gaussian(&mut b));
        }
    }
}
