//! Plain-text schema descriptions, so real traces (TinyDB exports,
//! anything CSV-shaped) can be planned against without writing Rust.
//!
//! Format — one attribute per line, comma-separated:
//!
//! ```text
//! # name, domain_bins, acquisition_cost [, natural_min, natural_max]
//! light, 64, 100, 0, 1200
//! temp,  64, 100, 10, 35
//! hour,  24, 1
//! ```
//!
//! Lines starting with `#` and blank lines are ignored. When the
//! optional natural range is present, a uniform [`Discretizer`] is
//! attached so queries can be written in natural units.
//!
//! Loading never panics, whatever the bytes: every failure mode is a
//! typed [`LoadError`] naming the offending line.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use acqp_core::{Attribute, Discretizer, Schema};

use crate::error::{io_err, LoadError, Result};

/// A schema plus its per-attribute discretizers.
pub type SchemaWithUnits = (Schema, Vec<Option<Discretizer>>);

/// Parses a schema description file.
pub fn load_schema(path: &Path) -> Result<SchemaWithUnits> {
    let file = File::open(path).map_err(|e| io_err(path, e))?;
    parse_schema(BufReader::new(file)).map_err(|e| match e {
        LoadError::Io { what, .. } => LoadError::Io { path: path.display().to_string(), what },
        other => other,
    })
}

/// Parses a schema description from any reader — the pure core behind
/// [`load_schema`], directly fuzzable without touching the filesystem.
pub fn parse_schema<R: BufRead>(reader: R) -> Result<SchemaWithUnits> {
    let mut attrs = Vec::new();
    let mut discs = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| LoadError::Io { path: String::new(), what: e.to_string() })?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        let err =
            |what: String| LoadError::Line { line: lineno + 1, what: format!("{what}: `{line}`") };
        if !(3..=5).contains(&fields.len()) || fields.len() == 4 {
            return Err(err("expected `name, bins, cost` or `name, bins, cost, min, max`".into()));
        }
        let name = fields[0];
        if name.is_empty() {
            return Err(err("empty attribute name".into()));
        }
        let bins: u16 = fields[1].parse().map_err(|_| err("bad domain size".into()))?;
        if bins == 0 {
            return Err(err("domain size must be positive".into()));
        }
        let cost: f64 = fields[2].parse().map_err(|_| err("bad cost".into()))?;
        if !cost.is_finite() || cost < 0.0 {
            return Err(err("cost must be finite and non-negative".into()));
        }
        let disc = if fields.len() == 5 {
            let min: f64 = fields[3].parse().map_err(|_| err("bad natural min".into()))?;
            let max: f64 = fields[4].parse().map_err(|_| err("bad natural max".into()))?;
            if !(min.is_finite() && max.is_finite()) {
                return Err(err("natural range must be finite".into()));
            }
            if max <= min {
                return Err(err("natural max must exceed min".into()));
            }
            Some(Discretizer::uniform(min, max, bins))
        } else {
            None
        };
        attrs.push(Attribute::new(name, bins, cost));
        discs.push(disc);
    }
    let schema = Schema::new(attrs)?;
    Ok((schema, discs))
}

/// Writes a schema description file round-trippable by [`load_schema`].
pub fn save_schema(
    path: &Path,
    schema: &Schema,
    discretizers: &[Option<Discretizer>],
) -> Result<()> {
    let mut out = BufWriter::new(File::create(path).map_err(|e| io_err(path, e))?);
    let write = |out: &mut BufWriter<File>| -> std::io::Result<()> {
        writeln!(out, "# name, domain_bins, acquisition_cost [, natural_min, natural_max]")?;
        for (i, a) in schema.attrs().iter().enumerate() {
            match discretizers.get(i).and_then(|d| d.as_ref()) {
                Some(d) => writeln!(
                    out,
                    "{}, {}, {}, {}, {}",
                    a.name(),
                    a.domain(),
                    a.cost(),
                    d.bin_lo(0),
                    d.bin_hi(d.bins() - 1)
                )?,
                None => writeln!(out, "{}, {}, {}", a.name(), a.domain(), a.cost())?,
            }
        }
        out.flush()
    };
    write(&mut out).map_err(|e| io_err(path, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("acqp_schema_file");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn parse_and_roundtrip() {
        let p = tmp("ok.schema");
        std::fs::write(
            &p,
            "# comment\n\nlight, 64, 100, 0, 1200\ntemp, 64, 100, 10, 35\nhour, 24, 1\n",
        )
        .unwrap();
        let (schema, discs) = load_schema(&p).unwrap();
        assert_eq!(schema.len(), 3);
        assert_eq!(schema.attr(0).name(), "light");
        assert_eq!(schema.domain(2), 24);
        assert_eq!(schema.cost(1), 100.0);
        assert!(discs[0].is_some() && discs[2].is_none());
        assert_eq!(discs[0].as_ref().unwrap().quantize(1200.0), 63);

        let p2 = tmp("rt.schema");
        save_schema(&p2, &schema, &discs).unwrap();
        let (schema2, discs2) = load_schema(&p2).unwrap();
        assert_eq!(schema, schema2);
        assert_eq!(discs, discs2);
        std::fs::remove_file(&p).ok();
        std::fs::remove_file(&p2).ok();
    }

    #[test]
    fn rejects_malformed_lines() {
        for (name, body) in [
            ("f1", "light\n"),
            ("f2", "light, x, 1\n"),
            ("f3", "light, 8, 1, 5\n"),
            ("f4", "light, 8, 1, 10, 5\n"),
            ("f5", "light, 0, 1\n"),
            ("f6", ", 8, 1\n"),
            ("f7", ""),
            ("f8", "light, 8, NaN\n"),
            ("f9", "light, 8, 1, NaN, 5\n"),
        ] {
            let p = tmp(name);
            std::fs::write(&p, body).unwrap();
            assert!(load_schema(&p).is_err(), "{body:?} should fail");
            std::fs::remove_file(&p).ok();
        }
    }

    #[test]
    fn errors_name_the_offending_line() {
        match parse_schema("# header\nlight, 8, 1\nbroken\n".as_bytes()) {
            Err(LoadError::Line { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected a line error, got {other:?}"),
        }
    }
}
