//! The synthetic generator of §6.3, reimplementing the data generator of
//! Babu et al. (*Adaptive ordering of pipelined stream filters*, SIGMOD
//! 2004) as adapted by the paper.
//!
//! Parameters: `n` binary attributes, correlation factor `Γ`, and
//! unconditional selectivity `sel`. The attributes form
//! `⌈n / (Γ+1)⌉` groups of (up to) `Γ+1` attributes each, such that:
//!
//! 1. any two attributes in the same group are positively correlated and
//!    take **identical values for 80% of the tuples**,
//! 2. attributes in different groups are independent,
//! 3. every attribute's marginal `P(X = 1) ≈ sel`.
//!
//! One attribute per group is *cheap* (cost 1), the rest are *expensive*
//! (cost 100); the benchmark query asks whether **all expensive
//! attributes equal 1**, so with Γ > 0 a cheap group-mate is an almost
//! free oracle for its expensive peers.
//!
//! To hit the 80% pairwise-identity exactly we draw, per group and
//! tuple, a latent "copy" event with probability `β`: all members equal
//! the group leader draw; otherwise all members are independent
//! Bernoulli(`sel`). Two members then agree with probability
//! `β + (1−β)·c` where `c = sel² + (1−sel)²`, and `β` is calibrated so
//! this equals 0.8 (clamped to `[0, 1]` for extreme `sel`).

use acqp_core::{Attribute, Dataset, Schema};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Generated;

/// Configuration for the Babu-et-al synthetic generator.
#[derive(Debug, Clone)]
pub struct SyntheticConfig {
    /// Number of attributes `n`.
    pub n: usize,
    /// Correlation factor `Γ`: group size is `Γ + 1`.
    pub gamma: usize,
    /// Unconditional selectivity `sel = P(X = 1)`.
    pub sel: f64,
    /// Target pairwise within-group identity (the paper's 0.8).
    pub identity: f64,
    /// Number of tuples.
    pub rows: usize,
    /// Cost of the cheap attribute in each group.
    pub cheap_cost: f64,
    /// Cost of the expensive attributes.
    pub expensive_cost: f64,
    /// RNG seed.
    pub seed: u64,
}

impl SyntheticConfig {
    /// The paper's parameterization with `rows` tuples.
    pub fn new(n: usize, gamma: usize, sel: f64) -> Self {
        SyntheticConfig {
            n,
            gamma,
            sel,
            identity: 0.8,
            rows: 10_000,
            cheap_cost: 1.0,
            expensive_cost: 100.0,
            seed: 0x5e17,
        }
    }

    /// Overrides the number of tuples.
    pub fn with_rows(mut self, rows: usize) -> Self {
        self.rows = rows;
        self
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of groups `⌈n / (Γ+1)⌉`.
    pub fn groups(&self) -> usize {
        self.n.div_ceil(self.gamma + 1)
    }

    /// Ids of the cheap attributes (the first member of each group).
    pub fn cheap_attrs(&self) -> Vec<usize> {
        (0..self.groups()).map(|g| g * (self.gamma + 1)).collect()
    }

    /// Ids of the expensive attributes (the paper's query predicates).
    pub fn expensive_attrs(&self) -> Vec<usize> {
        (0..self.n).filter(|a| a % (self.gamma + 1) != 0).collect()
    }

    /// The calibrated latent-copy probability β.
    pub fn beta(&self) -> f64 {
        let c = self.sel * self.sel + (1.0 - self.sel) * (1.0 - self.sel);
        if c >= 1.0 {
            0.0
        } else {
            ((self.identity - c) / (1.0 - c)).clamp(0.0, 1.0)
        }
    }
}

/// Generates the synthetic dataset.
pub fn generate(cfg: &SyntheticConfig) -> Generated {
    assert!(cfg.n >= 1 && (0.0..=1.0).contains(&cfg.sel));
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let beta = cfg.beta();
    let group_size = cfg.gamma + 1;

    let schema = Schema::new(
        (0..cfg.n)
            .map(|a| {
                let cost = if a % group_size == 0 { cfg.cheap_cost } else { cfg.expensive_cost };
                Attribute::new(format!("x{a}"), 2, cost)
            })
            .collect(),
    )
    .expect("synthetic schema is valid");

    let mut rows = Vec::with_capacity(cfg.rows);
    for _ in 0..cfg.rows {
        let mut row = vec![0u16; cfg.n];
        let mut a = 0usize;
        while a < cfg.n {
            let members = group_size.min(cfg.n - a);
            let leader = u16::from(rng.gen_bool(cfg.sel));
            if rng.gen_bool(beta) {
                for slot in &mut row[a..a + members] {
                    *slot = leader;
                }
            } else {
                for slot in &mut row[a..a + members] {
                    *slot = u16::from(rng.gen_bool(cfg.sel));
                }
            }
            a += members;
        }
        rows.push(row);
    }

    let data = Dataset::from_rows(&schema, rows).expect("generated rows fit the schema");
    Generated { schema, data, discretizers: vec![None; cfg.n] }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairwise_identity(data: &Dataset, a: usize, b: usize) -> f64 {
        let ca = data.column(a);
        let cb = data.column(b);
        let same = ca.iter().zip(cb).filter(|(x, y)| x == y).count();
        same as f64 / data.len() as f64
    }

    #[test]
    fn group_structure_matches_paper_predicate_counts() {
        // The four Fig. 12 settings must yield 5, 7, 20 and 30 expensive
        // attributes (= query predicates).
        assert_eq!(SyntheticConfig::new(10, 1, 0.5).expensive_attrs().len(), 5);
        assert_eq!(SyntheticConfig::new(10, 3, 0.5).expensive_attrs().len(), 7);
        assert_eq!(SyntheticConfig::new(40, 1, 0.5).expensive_attrs().len(), 20);
        assert_eq!(SyntheticConfig::new(40, 3, 0.5).expensive_attrs().len(), 30);
        assert_eq!(SyntheticConfig::new(10, 3, 0.5).groups(), 3);
    }

    #[test]
    fn within_group_identity_near_eighty_percent() {
        let cfg = SyntheticConfig::new(8, 3, 0.5).with_rows(40_000);
        let g = generate(&cfg);
        for (a, b) in [(0, 1), (1, 2), (2, 3), (4, 7)] {
            let id = pairwise_identity(&g.data, a, b);
            assert!((id - 0.8).abs() < 0.02, "attrs {a},{b}: identity {id}");
        }
    }

    #[test]
    fn cross_group_independence() {
        let cfg = SyntheticConfig::new(8, 3, 0.5).with_rows(40_000);
        let g = generate(&cfg);
        // Independent fair bits agree half the time.
        let id = pairwise_identity(&g.data, 1, 5);
        assert!((id - 0.5).abs() < 0.02, "cross-group identity {id}");
    }

    #[test]
    fn marginals_match_sel() {
        for sel in [0.3, 0.5, 0.7] {
            let cfg = SyntheticConfig::new(6, 2, sel).with_rows(40_000);
            let g = generate(&cfg);
            for a in 0..6 {
                let p = g.data.column(a).iter().filter(|&&v| v == 1).count() as f64
                    / g.data.len() as f64;
                assert!((p - sel).abs() < 0.02, "attr {a} sel {p} (want {sel})");
            }
        }
    }

    #[test]
    fn costs_follow_group_layout() {
        let g = generate(&SyntheticConfig::new(10, 1, 0.5).with_rows(10));
        assert_eq!(g.schema.cost(0), 1.0);
        assert_eq!(g.schema.cost(1), 100.0);
        assert_eq!(g.schema.cost(2), 1.0);
        assert_eq!(g.schema.cost(3), 100.0);
    }

    #[test]
    fn beta_calibration_extremes() {
        // sel = 0 or 1 makes c = 1; identity is trivially 1, β clamps 0.
        assert_eq!(SyntheticConfig::new(4, 1, 0.0).beta(), 0.0);
        assert_eq!(SyntheticConfig::new(4, 1, 1.0).beta(), 0.0);
        // sel = 0.5 -> c = 0.5 -> β = 0.6.
        assert!((SyntheticConfig::new(4, 1, 0.5).beta() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn ragged_final_group() {
        // n not divisible by Γ+1: last group is smaller but still valid.
        let cfg = SyntheticConfig::new(7, 2, 0.5).with_rows(100);
        let g = generate(&cfg);
        assert_eq!(g.schema.len(), 7);
        assert_eq!(cfg.groups(), 3);
        assert_eq!(cfg.cheap_attrs(), vec![0, 3, 6]);
    }
}
