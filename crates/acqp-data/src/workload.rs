//! Query workload generators reproducing §6's experimental setups.

use acqp_core::planner::OrdF64;
use acqp_core::{Dataset, Error, Pred, Query, Result, Schema};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::column_std;
use crate::garden::GardenAttrs;
use crate::lab::attrs as lab_attrs;
use crate::synthetic::SyntheticConfig;

/// §6.1's Lab workload: queries with `preds` range predicates over the
/// expensive attributes (light, temperature, humidity). The left
/// endpoint is uniform over the domain and the width is two standard
/// deviations of the attribute, which makes most predicates ~50%
/// selective — the challenging regime the paper deliberately chose.
///
/// Errors with [`Error::NoData`] when the training set is empty (no
/// distribution to place ranges against) and
/// [`Error::DegenerateDomain`] when an expensive attribute's domain has
/// fewer than two values (no nonzero-width range fits).
pub fn lab_queries(
    schema: &Schema,
    train: &Dataset,
    n_queries: usize,
    preds: usize,
    seed: u64,
) -> Result<Vec<Query>> {
    assert!((1..=3).contains(&preds), "lab queries use 1..=3 expensive predicates");
    if train.is_empty() {
        return Err(Error::NoData);
    }
    let expensive = [lab_attrs::LIGHT, lab_attrs::TEMP, lab_attrs::HUMIDITY];
    for &a in &expensive {
        let k = schema.domain(a);
        if k < 2 {
            return Err(Error::DegenerateDomain { attr: schema.attr(a).name().to_string(), k });
        }
    }
    let sigma: Vec<f64> = expensive.iter().map(|&a| column_std(train, a)).collect();
    // Per attribute: the left endpoints whose 2σ-wide range is satisfied
    // by roughly half the training data — the paper's "challenging
    // setting where most predicates are satisfied by a large
    // (approximately 50%) portion of the data set".
    let candidates: Vec<(u16, Vec<u16>)> = expensive
        .iter()
        .enumerate()
        .map(|(i, &a)| {
            let k = schema.domain(a);
            let width = (2.0 * sigma[i]).round().max(1.0) as u16;
            let col = train.column(a);
            let n = col.len() as f64; // nonzero: empty training sets error out above
            let mut counts = vec![0usize; usize::from(k) + 1];
            for &v in col {
                counts[usize::from(v) + 1] += 1;
            }
            for j in 1..counts.len() {
                counts[j] += counts[j - 1];
            }
            let sel = |lo: u16| {
                let hi = lo.saturating_add(width).min(k - 1);
                (counts[usize::from(hi) + 1] - counts[usize::from(lo)]) as f64 / n
            };
            let mut good: Vec<u16> =
                (0..k).filter(|&lo| (0.35..=0.65).contains(&sel(lo))).collect();
            if good.is_empty() {
                // Fall back to the endpoint closest to 50%.
                let best = (0..k)
                    .min_by(|&x, &y| {
                        OrdF64((sel(x) - 0.5).abs()).cmp(&OrdF64((sel(y) - 0.5).abs()))
                    })
                    .unwrap_or(0);
                good.push(best);
            }
            (width, good)
        })
        .collect();

    let mut rng = StdRng::seed_from_u64(seed);
    let mut queries = Vec::with_capacity(n_queries);
    while queries.len() < n_queries {
        let mut ps = Vec::with_capacity(preds);
        for (i, &a) in expensive.iter().enumerate().take(preds) {
            let k = schema.domain(a);
            let (width, good) = &candidates[i];
            let lo = good[rng.gen_range(0..good.len())];
            let hi = lo.saturating_add(*width).min(k - 1);
            ps.push(Pred::in_range(a, lo, hi));
        }
        if let Ok(q) = Query::checked(ps, schema) {
            queries.push(q);
        }
    }
    Ok(queries)
}

/// §6.2's Garden workload: *identical* range predicates over temperature
/// and humidity of **every** mote (10 predicates for Garden-5, 22 for
/// Garden-11). Per query, a width factor `f` is drawn from
/// `[1.25, 3.25]` and the shared range `⟨a, b⟩` has width `f·σ` of the
/// pooled per-sensor-type distribution, centred on a value drawn from
/// the pooled data (paralleling the Lab workload's 2σ widths; placing
/// ranges uniformly over the *raw* domain lands most of them outside
/// the occupied region and makes every query degenerate-selective).
/// With probability 1/2 the predicates are negated (`NOT(a ≤ x ≤ b)`),
/// matching the two query forms the paper lists.
pub fn garden_queries(
    schema: &Schema,
    motes: u16,
    n_queries: usize,
    seed: u64,
) -> Result<Vec<Query>> {
    garden_queries_on(schema, None, motes, n_queries, seed)
}

/// [`garden_queries`] with ranges placed against the given training
/// data's pooled per-sensor-type distributions (recommended); passing
/// `None` falls back to uniform placement over the raw domains.
///
/// Errors with [`Error::EmptyQuery`] for a zero-mote fleet (the shared
/// predicates would be over nothing), [`Error::NoData`] when a training
/// set is supplied but pools no values, and
/// [`Error::DegenerateDomain`] when a sensor domain has fewer than two
/// values.
pub fn garden_queries_on(
    schema: &Schema,
    train: Option<&Dataset>,
    motes: u16,
    n_queries: usize,
    seed: u64,
) -> Result<Vec<Query>> {
    if motes == 0 {
        return Err(Error::EmptyQuery);
    }
    let layout = GardenAttrs::new(motes);
    for attr in [layout.temp(0), layout.humidity(0)] {
        let k = schema.domain(attr);
        if k < 2 {
            return Err(Error::DegenerateDomain { attr: schema.attr(attr).name().to_string(), k });
        }
    }
    // Pooled values and std-dev per sensor type (temp = 0, humidity = 1).
    let pooled: Option<[(Vec<u16>, f64); 2]> = train.map(|d| {
        let collect = |pick: &dyn Fn(u16) -> usize| -> (Vec<u16>, f64) {
            let mut vals = Vec::new();
            for m in 0..motes {
                vals.extend_from_slice(d.column(pick(m)));
            }
            let n = vals.len().max(1) as f64;
            let mean = vals.iter().map(|&v| f64::from(v)).sum::<f64>() / n;
            let std = (vals.iter().map(|&v| (f64::from(v) - mean).powi(2)).sum::<f64>() / n).sqrt();
            (vals, std)
        };
        [collect(&|m| layout.temp(m)), collect(&|m| layout.humidity(m))]
    });
    if let Some(p) = &pooled {
        if p.iter().any(|(vals, _)| vals.is_empty()) {
            return Err(Error::NoData);
        }
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let mut queries = Vec::with_capacity(n_queries);
    while queries.len() < n_queries {
        let negate = rng.gen_bool(0.5);
        let f: f64 = rng.gen_range(1.25..3.25);
        // One shared range per sensor type for this query.
        let mut ranges = [(0u16, 0u16); 2];
        for (kind, slot) in ranges.iter_mut().enumerate() {
            let attr = if kind == 0 { layout.temp(0) } else { layout.humidity(0) };
            let k = schema.domain(attr);
            *slot = match &pooled {
                Some(p) => {
                    let (vals, std) = &p[kind];
                    let width = ((f * std).round() as u16).clamp(1, k - 1);
                    let center = vals[rng.gen_range(0..vals.len())];
                    let lo = center.saturating_sub(width / 2);
                    let hi = (lo + width).min(k - 1);
                    (lo, hi)
                }
                None => {
                    let width = ((f64::from(k) / f).round() as u16).clamp(1, k - 1);
                    let lo = rng.gen_range(0..k - width);
                    (lo, lo + width)
                }
            };
        }
        let mut ps = Vec::new();
        for m in 0..motes {
            for (kind, attr) in [(0, layout.temp(m)), (1, layout.humidity(m))] {
                let (lo, hi) = ranges[kind];
                ps.push(if negate {
                    Pred::not_in_range(attr, lo, hi)
                } else {
                    Pred::in_range(attr, lo, hi)
                });
            }
        }
        if let Ok(q) = Query::checked(ps, schema) {
            queries.push(q);
        }
    }
    Ok(queries)
}

/// §6.3's synthetic workload: the conjunction `X_e = 1` over every
/// expensive attribute.
pub fn synthetic_query(cfg: &SyntheticConfig, schema: &Schema) -> Query {
    let preds = cfg.expensive_attrs().into_iter().map(|a| Pred::in_range(a, 1, 1)).collect();
    Query::checked(preds, schema).expect("synthetic query is valid for its schema")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::garden::{self, GardenConfig};
    use crate::lab::{self, LabConfig};
    use crate::synthetic;

    #[test]
    fn lab_queries_have_requested_shape() {
        let g = lab::generate(&LabConfig::small());
        let (train, _) = g.split(0.7);
        let qs = lab_queries(&g.schema, &train, 20, 3, 1).unwrap();
        assert_eq!(qs.len(), 20);
        for q in &qs {
            assert_eq!(q.len(), 3);
            let attrs = q.attrs();
            assert!(attrs.contains(&lab_attrs::LIGHT));
            assert!(attrs.contains(&lab_attrs::TEMP));
            assert!(attrs.contains(&lab_attrs::HUMIDITY));
        }
        // Deterministic given the seed.
        let qs2 = lab_queries(&g.schema, &train, 20, 3, 1).unwrap();
        assert_eq!(qs, qs2);
    }

    #[test]
    fn lab_predicates_not_too_selective() {
        // The paper tuned predicates toward ~50% selectivity; verify the
        // median marginal selectivity lands in a broad middle band.
        let g = lab::generate(&LabConfig::small());
        let (train, _) = g.split(0.7);
        let qs = lab_queries(&g.schema, &train, 40, 3, 2).unwrap();
        let mut sels: Vec<f64> = qs.iter().flat_map(|q| q.selectivities(&train)).collect();
        sels.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sels[sels.len() / 2];
        assert!(
            (0.3..=0.7).contains(&median),
            "median predicate selectivity {median} should be near 50%"
        );
    }

    #[test]
    fn garden_queries_cover_all_motes() {
        let g = garden::generate(&GardenConfig::garden5());
        let qs = garden_queries(&g.schema, 5, 15, 3).unwrap();
        assert_eq!(qs.len(), 15);
        for q in &qs {
            assert_eq!(q.len(), 10, "temp+humidity per mote");
        }
        let g11 = garden::generate(&GardenConfig::garden11());
        let qs11 = garden_queries(&g11.schema, 11, 5, 3).unwrap();
        for q in &qs11 {
            assert_eq!(q.len(), 22);
        }
    }

    #[test]
    fn garden_queries_mix_negated_and_plain() {
        let g = garden::generate(&GardenConfig::garden5());
        let qs = garden_queries(&g.schema, 5, 40, 9).unwrap();
        let negated = qs.iter().filter(|q| q.preds()[0].is_negated()).count();
        assert!(negated > 5 && negated < 35, "negated {negated}/40");
        // Within a query all predicates share the negation form.
        for q in &qs {
            let first = q.preds()[0].is_negated();
            assert!(q.preds().iter().all(|p| p.is_negated() == first));
        }
    }

    #[test]
    fn empty_training_set_is_a_typed_error() {
        let g = lab::generate(&LabConfig::small());
        let empty = Dataset::from_rows(&g.schema, Vec::new()).unwrap();
        assert_eq!(lab_queries(&g.schema, &empty, 4, 3, 1), Err(Error::NoData));
        // The garden generator pools per-sensor-type values; an empty
        // training set pools nothing and must error the same way rather
        // than silently yielding 0.0 selectivities (or panicking on an
        // empty sample pool).
        let g5 = garden::generate(&GardenConfig::garden5());
        let empty5 = Dataset::from_rows(&g5.schema, Vec::new()).unwrap();
        assert_eq!(garden_queries_on(&g5.schema, Some(&empty5), 5, 4, 1), Err(Error::NoData));
    }

    #[test]
    fn degenerate_domains_are_typed_errors() {
        use acqp_core::Attribute;
        // A lab-shaped schema whose expensive attributes collapse to a
        // single value: no nonzero-width range fits, and the old code
        // underflowed on `k - 1`.
        let g = lab::generate(&LabConfig::small());
        let narrow = Schema::new(
            g.schema
                .attrs()
                .iter()
                .map(|a| Attribute::new(a.name(), 1, a.cost()))
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let train = Dataset::from_rows(&narrow, vec![vec![0; narrow.len()]]).unwrap();
        match lab_queries(&narrow, &train, 4, 3, 1) {
            Err(Error::DegenerateDomain { k: 1, .. }) => {}
            other => panic!("expected DegenerateDomain, got {other:?}"),
        }
        // Same for the garden generator, whose width clamp paniced
        // (`clamp(1, 0)`) on single-valued domains.
        let g5 = garden::generate(&GardenConfig::garden5());
        let narrow5 = Schema::new(
            g5.schema
                .attrs()
                .iter()
                .map(|a| Attribute::new(a.name(), 1, a.cost()))
                .collect::<Vec<_>>(),
        )
        .unwrap();
        match garden_queries_on(&narrow5, None, 5, 4, 1) {
            Err(Error::DegenerateDomain { k: 1, .. }) => {}
            other => panic!("expected DegenerateDomain, got {other:?}"),
        }
        // Zero motes: no predicates to generate at all.
        assert_eq!(garden_queries_on(&g5.schema, None, 0, 4, 1), Err(Error::EmptyQuery));
    }

    #[test]
    fn synthetic_query_targets_expensive_attrs() {
        let cfg = SyntheticConfig::new(10, 3, 0.5).with_rows(50);
        let g = synthetic::generate(&cfg);
        let q = synthetic_query(&cfg, &g.schema);
        assert_eq!(q.len(), 7);
        for p in q.preds() {
            assert_eq!(g.schema.cost(p.attr()), 100.0);
            assert_eq!(p.bounds(), (1, 1));
        }
    }
}
