//! Fuzz-style robustness for the external-input loaders: no byte
//! stream — random garbage, truncated files, or a corrupted valid
//! artifact — may panic the CSV or schema parsers. Failures must be
//! typed [`LoadError`]s, successes must validate against the schema.

use acqp_core::{Attribute, Schema};
use acqp_data::csv::parse_csv;
use acqp_data::schema_file::parse_schema;
use proptest::prelude::*;

fn schema() -> Schema {
    Schema::new(vec![Attribute::new("a", 16, 1.0), Attribute::new("b", 300, 2.0)]).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 192, ..ProptestConfig::default() })]

    /// Arbitrary bytes (including invalid UTF-8) never panic the CSV
    /// parser, and anything it accepts fits the schema.
    #[test]
    fn random_bytes_never_panic_csv(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        if let Ok(data) = parse_csv(&bytes[..], &schema()) {
            for r in 0..data.len() {
                prop_assert!(data.value(r, 0) < 16 && data.value(r, 1) < 300);
            }
        }
    }

    /// Arbitrary bytes never panic the schema parser, and anything it
    /// accepts is a valid schema with finite costs.
    #[test]
    fn random_bytes_never_panic_schema(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        if let Ok((schema, discs)) = parse_schema(&bytes[..]) {
            prop_assert_eq!(schema.len(), discs.len());
            for a in schema.attrs() {
                prop_assert!(a.domain() > 0);
                prop_assert!(a.cost().is_finite());
            }
        }
    }

    /// Corrupting a *valid* CSV — overwriting a window with garbage or
    /// truncating it — degrades to a typed error or a still-valid
    /// dataset, never a panic.
    #[test]
    fn corrupted_valid_csv_never_panics(
        pos in 0usize..64,
        garbage in proptest::collection::vec(any::<u8>(), 1..8),
        cut in 0usize..64,
    ) {
        let good = b"a,b\n1,2\n15,299\n0,0\n3,7\n".to_vec();
        let mut bytes = good.clone();
        let pos = pos % bytes.len();
        for (i, g) in garbage.iter().enumerate() {
            if pos + i < bytes.len() {
                bytes[pos + i] = *g;
            }
        }
        let _ = parse_csv(&bytes[..], &schema());
        let cut = cut % (good.len() + 1);
        let _ = parse_csv(&good[..cut], &schema());
    }
}
