//! [`GmEstimator`] — the [`Estimator`] implementation backed by a
//! Chow–Liu tree.
//!
//! Histograms and split probabilities are *exact* under the model (one
//! message pass); joint truth-distributions over query predicates are
//! estimated from a fresh conditional sample of fixed size, so — unlike
//! the counting estimator — the effective support does **not** halve
//! with every conditioning split (§7's motivation).

use std::hash::{Hash, Hasher};
use std::sync::Arc;

use acqp_core::{AttrId, Estimator, Query, Range, Ranges, TruthTable};
use acqp_obs::{Counter, Recorder};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::tree::ChowLiuTree;

/// Context: range evidence plus a conditional sample drawn under it.
#[derive(Debug, Clone)]
pub struct GmCtx {
    ranges: Ranges,
    mass: f64,
    /// Exact conditioned marginals per attribute.
    marginals: Arc<Vec<Vec<f64>>>,
    /// Column-major conditional sample (`samples[attr][i]`).
    samples: Arc<Vec<Vec<u16>>>,
}

impl GmCtx {
    /// The conditional sample backing truth-table estimates.
    pub fn sample_len(&self) -> usize {
        self.samples.first().map_or(0, Vec::len)
    }
}

/// Model-based probability estimator over a fitted [`ChowLiuTree`].
pub struct GmEstimator<'t> {
    tree: &'t ChowLiuTree,
    root_ranges: Ranges,
    sample_size: usize,
    seed: u64,
    /// `estimator.gm.ctx_built` — conditioned contexts materialized
    /// (each costs one message pass plus `sample_size` draws).
    ctx_built: Counter,
}

impl<'t> GmEstimator<'t> {
    /// Creates an estimator drawing `sample_size` tuples per subproblem.
    pub fn new(tree: &'t ChowLiuTree, root_ranges: Ranges, sample_size: usize, seed: u64) -> Self {
        assert_eq!(tree.len(), root_ranges.len());
        GmEstimator { tree, root_ranges, sample_size, seed, ctx_built: Counter::new() }
    }

    /// Registers the context-build counter (`estimator.gm.ctx_built`) on
    /// `rec`, replacing the detached default.
    pub fn with_recorder(mut self, rec: &Recorder) -> Self {
        self.ctx_built = rec.counter("estimator.gm.ctx_built");
        self
    }

    fn build_ctx(&self, ranges: Ranges) -> GmCtx {
        self.ctx_built.incr(1);
        let cond = self.tree.condition(&ranges);
        let mass = cond.mass();
        let n = self.tree.len();
        let mut cols: Vec<Vec<u16>> = vec![Vec::with_capacity(self.sample_size); n];
        if mass > 0.0 {
            // Deterministic per-subproblem stream: the same ranges always
            // yield the same sample, so planning is reproducible.
            let mut h = std::collections::hash_map::DefaultHasher::new();
            ranges.hash(&mut h);
            let mut rng = StdRng::seed_from_u64(self.seed ^ h.finish());
            let mut buf = vec![0u16; n];
            for _ in 0..self.sample_size {
                cond.sample_into(&mut rng, &mut buf);
                for (col, &v) in cols.iter_mut().zip(&buf) {
                    col.push(v);
                }
            }
        }
        let marginals = (0..n).map(|i| cond.marginal(i).to_vec()).collect();
        GmCtx { ranges, mass, marginals: Arc::new(marginals), samples: Arc::new(cols) }
    }
}

impl Estimator for GmEstimator<'_> {
    type Ctx = GmCtx;

    fn root(&self) -> GmCtx {
        self.build_ctx(self.root_ranges.clone())
    }

    fn refine(&self, ctx: &GmCtx, attr: AttrId, r: Range) -> GmCtx {
        debug_assert!(ctx.ranges.get(attr).contains_range(r));
        self.build_ctx(ctx.ranges.with(attr, r))
    }

    fn ranges<'c>(&self, ctx: &'c GmCtx) -> &'c Ranges {
        &ctx.ranges
    }

    fn mass(&self, ctx: &GmCtx) -> f64 {
        ctx.mass
    }

    fn support(&self, ctx: &GmCtx) -> usize {
        if ctx.mass > 0.0 {
            ctx.sample_len()
        } else {
            0
        }
    }

    fn hist(&self, ctx: &GmCtx, attr: AttrId) -> Vec<f64> {
        // Exact under the model; truncated to the context's range.
        let r = ctx.ranges.get(attr);
        let mut h = ctx.marginals[attr].clone();
        h.truncate(usize::from(r.hi()) + 1);
        h[..usize::from(r.lo())].fill(0.0);
        let z: f64 = h.iter().sum();
        if z > 0.0 {
            h.iter_mut().for_each(|p| *p /= z);
        } else {
            let w = 1.0 / f64::from(r.width() as u16);
            for v in r.lo()..=r.hi() {
                h[usize::from(v)] = w;
            }
        }
        h
    }

    fn truth_table(&self, ctx: &GmCtx, query: &Query) -> TruthTable {
        let s = ctx.sample_len();
        TruthTable::from_masks(query.len(), (0..s).map(|i| query.truth_mask(|a| ctx.samples[a][i])))
    }

    fn truth_by_value(&self, ctx: &GmCtx, attr: AttrId, query: &Query) -> Vec<TruthTable> {
        // Bucket the existing conditional sample by the split attribute,
        // exactly like the counting estimator buckets rows — one pass
        // instead of one fresh conditioning per candidate value.
        use acqp_core::TruthAccum;
        let r = ctx.ranges.get(attr);
        let col = &ctx.samples[attr];
        let mut accs: Vec<TruthAccum> = (0..r.width()).map(|_| TruthAccum::new()).collect();
        for (i, &v) in col.iter().enumerate() {
            debug_assert!(r.contains(v));
            let mask = query.truth_mask(|a| ctx.samples[a][i]);
            accs[usize::from(v - r.lo())].add(mask, 1.0);
        }
        accs.into_iter().map(|a| a.into_table(query.len())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acqp_core::prelude::*;
    use acqp_core::{Attribute, Schema};

    /// Day/night data: t predicts a and b strongly.
    fn setup() -> (Schema, Dataset) {
        let schema = Schema::new(vec![
            Attribute::new("a", 2, 10.0),
            Attribute::new("b", 2, 10.0),
            Attribute::new("t", 2, 0.5),
        ])
        .unwrap();
        let mut rows = Vec::new();
        for i in 0..200u16 {
            let t = i % 2;
            let a = if i % 10 == 0 { 1 - t } else { t };
            let b = if i % 14 == 0 { t } else { 1 - t };
            rows.push(vec![a, b, t]);
        }
        (schema.clone(), Dataset::from_rows(&schema, rows).unwrap())
    }

    #[test]
    fn estimator_contract_basics() {
        let (schema, data) = setup();
        let tree = ChowLiuTree::fit(&schema, &data, 0.5);
        let est = GmEstimator::new(&tree, Ranges::root(&schema), 1000, 7);
        let root = est.root();
        assert!((est.mass(&root) - 1.0).abs() < 1e-9);
        assert_eq!(est.support(&root), 1000);
        let h = est.hist(&root, 0);
        assert!((h.iter().sum::<f64>() - 1.0).abs() < 1e-9);

        let night = est.refine(&root, 2, Range::new(0, 0));
        assert!((est.mass(&night) - 0.5).abs() < 0.05);
        // Support does NOT halve — the §7 point of using a model.
        assert_eq!(est.support(&night), 1000);
        // Given t=0, a is mostly 0. (The tree may route the a–t
        // dependence through b, so the model slightly underestimates the
        // empirical 0.9.)
        let h = est.hist(&night, 0);
        assert!(h[0] > 0.7, "P(a=0|t=0) = {}", h[0]);
    }

    #[test]
    fn contexts_are_deterministic() {
        let (schema, data) = setup();
        let tree = ChowLiuTree::fit(&schema, &data, 0.5);
        let est = GmEstimator::new(&tree, Ranges::root(&schema), 500, 7);
        let a = est.root();
        let b = est.root();
        assert_eq!(a.samples, b.samples);
        let ra = est.refine(&a, 2, Range::new(1, 1));
        let rb = est.refine(&b, 2, Range::new(1, 1));
        assert_eq!(ra.samples, rb.samples);
    }

    #[test]
    fn truth_table_tracks_model_probabilities() {
        let (schema, data) = setup();
        let tree = ChowLiuTree::fit(&schema, &data, 0.5);
        let est = GmEstimator::new(&tree, Ranges::root(&schema), 4000, 7);
        let q = Query::new(vec![Pred::in_range(0, 1, 1), Pred::in_range(1, 1, 1)]).unwrap();
        let root = est.root();
        let tt = est.truth_table(&root, &q);
        // a=1 and b=1 are strongly anti-correlated (a tracks t, b tracks
        // 1-t): P(both) is small.
        assert!(tt.prob_all(0b11) < 0.15, "P(both) = {}", tt.prob_all(0b11));
        // a = t except for the 20 flipped even rows, so P(a=1) is
        // (100 + 20)/200 = 0.6 exactly; allow ~5σ of sampling noise on
        // the 4000-tuple estimate.
        assert!((tt.marginal(0) - 0.6).abs() < 0.04, "marginal {}", tt.marginal(0));
    }

    #[test]
    fn truth_by_value_is_consistent_with_truth_table() {
        let (schema, data) = setup();
        let tree = ChowLiuTree::fit(&schema, &data, 0.5);
        let est = GmEstimator::new(&tree, Ranges::root(&schema), 2000, 7);
        let q = Query::new(vec![Pred::in_range(0, 1, 1)]).unwrap();
        let root = est.root();
        let by_v = est.truth_by_value(&root, 2, &q);
        assert_eq!(by_v.len(), 2);
        let total: f64 = by_v.iter().map(|t| t.total()).sum();
        assert_eq!(total, 2000.0);
        let whole = est.truth_table(&root, &q);
        // Recombining buckets reproduces the whole-table marginal.
        let p_recombined = (by_v[0].weight_superset(1) + by_v[1].weight_superset(1)) / total;
        assert!((p_recombined - whole.marginal(0)).abs() < 1e-12);
    }

    #[test]
    fn planner_runs_end_to_end_with_gm_estimator() {
        let (schema, data) = setup();
        let tree = ChowLiuTree::fit(&schema, &data, 0.5);
        let est = GmEstimator::new(&tree, Ranges::root(&schema), 2000, 7);
        let q = Query::new(vec![Pred::in_range(0, 1, 1), Pred::in_range(1, 1, 1)]).unwrap();
        let plan = GreedyPlanner::new(4).plan(&schema, &q, &est).unwrap();
        let rep = measure(&plan, &q, &schema, &data);
        assert!(rep.all_correct);
        // The model should discover the conditioning attribute t, making
        // the plan cheaper than the naive order's empirical cost.
        let naive = NaivePlanner::plan(
            &schema,
            &q,
            &CountingEstimator::with_ranges(&data, Ranges::root(&schema)),
        )
        .unwrap();
        let naive_rep = measure(&naive, &q, &schema, &data);
        assert!(
            rep.mean_cost <= naive_rep.mean_cost + 1e-9,
            "gm-planned {} vs naive {}",
            rep.mean_cost,
            naive_rep.mean_cost
        );
    }

    #[test]
    fn zero_mass_context_support_is_zero() {
        let (schema, data) = setup();
        // alpha = 0 and t never takes value... both values occur; force a
        // zero-mass region by conditioning a to 1 and b to 1 and t to 0
        // with alpha=0 data that lacks such rows? Row (a=1,b=1,t=0)
        // occurs when i%10==0 fails... build directly instead:
        let rows: Vec<Vec<u16>> = (0..100).map(|i| vec![i % 2, i % 2, i % 2]).collect();
        let data2 = Dataset::from_rows(&schema, rows).unwrap();
        let tree = ChowLiuTree::fit(&schema, &data2, 0.0);
        let est = GmEstimator::new(&tree, Ranges::root(&schema), 100, 3);
        let root = est.root();
        let c = est.refine(&root, 0, Range::new(1, 1));
        let c = est.refine(&c, 1, Range::new(0, 0));
        assert_eq!(est.mass(&c), 0.0);
        assert_eq!(est.support(&c), 0);
        let _ = data;
    }
}
