//! # acqp-gm — graphical-model probability estimation
//!
//! §7 of the paper ("Graphical Models") observes two weaknesses of
//! estimating probabilities by counting a historical dataset: every
//! estimate costs a scan, and after each conditioning split the
//! surviving sample halves, so deep subproblems are estimated from
//! almost no data and the planner overfits. The proposed remedy is a
//! *compact probabilistic model* of the data.
//!
//! This crate implements that remedy as a **Chow–Liu tree**: the
//! maximum-mutual-information spanning tree over the attributes, with
//! Laplace-smoothed conditional probability tables. It supports:
//!
//! * exact inference of per-attribute marginals under *range evidence*
//!   (each attribute constrained to an interval) via one
//!   upward–downward message pass ([`ChowLiuTree::condition`]);
//! * exact conditional *sampling* under the same evidence, used to build
//!   joint truth-distributions over query predicates;
//! * [`GmEstimator`], a drop-in [`acqp_core::Estimator`]: unlike the
//!   counting estimator, its effective support never shrinks as the
//!   planner descends — every subproblem is backed by a fresh
//!   `sample_size`-tuple draw from the conditioned model.

#![warn(missing_docs)]
// Determinism tests assert bitwise-equal floats on purpose; the
// workspace-level `float_cmp` warning stays on for library code.
#![cfg_attr(test, allow(clippy::float_cmp))]
mod estimator;
mod tree;

pub use estimator::{GmCtx, GmEstimator};
pub use tree::{ChowLiuTree, Conditioned};
