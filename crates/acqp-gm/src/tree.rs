//! Chow–Liu trees: structure learning, range-evidence inference and
//! conditional sampling.

use acqp_core::{Dataset, Ranges, Schema};
use rand::Rng;

/// A tree-structured Bayesian network over the schema's attributes.
///
/// Attribute 0..n are nodes; every non-root node `i` has one parent
/// `parent[i]` and a CPT `P(X_i | X_parent)`. Structure is the maximum
/// spanning tree under pairwise mutual information (Chow & Liu, 1968).
///
/// ```
/// use acqp_core::{Attribute, Dataset, Range, Ranges, Schema};
/// use acqp_gm::ChowLiuTree;
///
/// let schema = Schema::new(vec![
///     Attribute::new("x", 2, 10.0),
///     Attribute::new("y", 2, 10.0),
/// ]).unwrap();
/// // y copies x 80% of the time on the x = 1 rows.
/// let rows: Vec<Vec<u16>> = (0..200).map(|i| {
///     let x = i % 2;
///     vec![x, if i % 10 == 1 { 1 - x } else { x }]
/// }).collect();
/// let data = Dataset::from_rows(&schema, rows).unwrap();
///
/// let tree = ChowLiuTree::fit(&schema, &data, 0.5);
/// // Condition on x = 1 with one message pass: P(y = 1 | x = 1) ≈ 0.8.
/// let cond = tree.condition(&Ranges::root(&schema).with(0, Range::new(1, 1)));
/// assert!((cond.marginal(1)[1] - 0.8).abs() < 0.05);
/// ```
#[derive(Debug, Clone)]
pub struct ChowLiuTree {
    domains: Vec<u16>,
    root: usize,
    parent: Vec<Option<usize>>,
    children: Vec<Vec<usize>>,
    /// Topological order (parents before children), starting at `root`.
    topo: Vec<usize>,
    /// `P(X_root = x)`.
    prior: Vec<f64>,
    /// `cpt[i][x_p][x_i] = P(X_i = x_i | X_parent = x_p)`; empty for the
    /// root.
    cpt: Vec<Vec<Vec<f64>>>,
}

impl ChowLiuTree {
    /// Fits structure and parameters to `data` with Laplace smoothing
    /// `alpha` (counts start at `alpha` instead of zero).
    pub fn fit(schema: &Schema, data: &Dataset, alpha: f64) -> Self {
        let n = schema.len();
        assert!(n >= 1);
        let domains: Vec<u16> = (0..n).map(|a| schema.domain(a)).collect();
        let d = data.len();

        // Pairwise mutual information.
        let mut mi = vec![0.0f64; n * n];
        if d > 0 {
            for i in 0..n {
                for j in (i + 1)..n {
                    let (ki, kj) = (usize::from(domains[i]), usize::from(domains[j]));
                    let mut joint = vec![0.0f64; ki * kj];
                    let (ci, cj) = (data.column(i), data.column(j));
                    for r in 0..d {
                        joint[usize::from(ci[r]) * kj + usize::from(cj[r])] += 1.0;
                    }
                    let mut pi = vec![0.0f64; ki];
                    let mut pj = vec![0.0f64; kj];
                    for a in 0..ki {
                        for b in 0..kj {
                            pi[a] += joint[a * kj + b];
                            pj[b] += joint[a * kj + b];
                        }
                    }
                    let total = d as f64;
                    let mut m = 0.0;
                    for a in 0..ki {
                        for b in 0..kj {
                            let pab = joint[a * kj + b] / total;
                            if pab > 0.0 {
                                m += pab * (pab / ((pi[a] / total) * (pj[b] / total))).ln();
                            }
                        }
                    }
                    mi[i * n + j] = m;
                    mi[j * n + i] = m;
                }
            }
        }

        // Maximum spanning tree (Prim from node 0).
        let root = 0usize;
        let mut in_tree = vec![false; n];
        let mut best_w = vec![f64::NEG_INFINITY; n];
        let mut best_p = vec![usize::MAX; n];
        in_tree[root] = true;
        for j in 0..n {
            if j != root {
                best_w[j] = mi[root * n + j];
                best_p[j] = root;
            }
        }
        let mut parent: Vec<Option<usize>> = vec![None; n];
        for _ in 1..n {
            let mut pick = usize::MAX;
            let mut w = f64::NEG_INFINITY;
            for j in 0..n {
                if !in_tree[j] && best_w[j] > w {
                    w = best_w[j];
                    pick = j;
                }
            }
            if pick == usize::MAX {
                break;
            }
            in_tree[pick] = true;
            parent[pick] = Some(best_p[pick]);
            for j in 0..n {
                if !in_tree[j] && mi[pick * n + j] > best_w[j] {
                    best_w[j] = mi[pick * n + j];
                    best_p[j] = pick;
                }
            }
        }

        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, p) in parent.iter().enumerate() {
            if let Some(p) = p {
                children[*p].push(i);
            }
        }
        // Topological order by BFS from the root.
        let mut topo = Vec::with_capacity(n);
        let mut queue = std::collections::VecDeque::from([root]);
        while let Some(u) = queue.pop_front() {
            topo.push(u);
            queue.extend(children[u].iter().copied());
        }
        debug_assert_eq!(topo.len(), n, "tree must span all attributes");

        // Parameters.
        let kr = usize::from(domains[root]);
        let mut prior = vec![alpha; kr];
        for &v in data.column(root) {
            prior[usize::from(v)] += 1.0;
        }
        let z: f64 = prior.iter().sum();
        prior.iter_mut().for_each(|p| *p /= z);

        let mut cpt: Vec<Vec<Vec<f64>>> = vec![Vec::new(); n];
        for i in 0..n {
            let Some(p) = parent[i] else { continue };
            let (kp, ki) = (usize::from(domains[p]), usize::from(domains[i]));
            let mut counts = vec![vec![alpha; ki]; kp];
            let (cp, ci) = (data.column(p), data.column(i));
            for r in 0..d {
                counts[usize::from(cp[r])][usize::from(ci[r])] += 1.0;
            }
            for row in &mut counts {
                let z: f64 = row.iter().sum();
                if z > 0.0 {
                    row.iter_mut().for_each(|c| *c /= z);
                } else {
                    row.iter_mut().for_each(|c| *c = 1.0 / ki as f64);
                }
            }
            cpt[i] = counts;
        }

        ChowLiuTree { domains, root, parent, children, topo, prior, cpt }
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.domains.len()
    }

    /// True when the tree has no nodes (cannot happen after `fit`).
    pub fn is_empty(&self) -> bool {
        self.domains.is_empty()
    }

    /// The parent of node `i` (None for the root).
    pub fn parent(&self, i: usize) -> Option<usize> {
        self.parent[i]
    }

    /// Total number of free parameters (the §7 "polynomial number of
    /// parameters" the model replaces the exponential joint with).
    pub fn parameter_count(&self) -> usize {
        let mut count = self.prior.len() - 1;
        for i in 0..self.len() {
            if let Some(p) = self.parent[i] {
                count += usize::from(self.domains[p]) * (usize::from(self.domains[i]) - 1);
            }
        }
        count
    }

    /// Average log-likelihood (nats per tuple) of `data` under the
    /// model — a model-selection diagnostic for comparing structures and
    /// smoothing strengths on held-out data.
    pub fn log_likelihood(&self, data: &Dataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let mut total = 0.0;
        for row in 0..data.len() {
            let mut ll = 0.0;
            for &i in &self.topo {
                let xi = usize::from(data.value(row, i));
                let p = match self.parent[i] {
                    None => self.prior[xi],
                    Some(par) => {
                        let xp = usize::from(data.value(row, par));
                        self.cpt[i][xp][xi]
                    }
                };
                // Zero-probability events (possible with alpha = 0) are
                // floored so one impossible tuple does not swamp the
                // diagnostic.
                ll += p.max(1e-300).ln();
            }
            total += ll;
        }
        total / data.len() as f64
    }

    /// Conditions the tree on range evidence: one upward–downward pass.
    pub fn condition<'t>(&'t self, ranges: &Ranges) -> Conditioned<'t> {
        let n = self.len();
        debug_assert_eq!(ranges.len(), n);
        // Evidence masks.
        let masks: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let r = ranges.get(i);
                (0..self.domains[i]).map(|v| if r.contains(v) { 1.0 } else { 0.0 }).collect()
            })
            .collect();

        // Upward pass: lambda_i(x) = mask_i(x) · Π_c mu_{c→i}(x);
        // mu_{i→p}(x_p) = Σ_x cpt_i[x_p][x] · lambda_i(x).
        let mut lambda: Vec<Vec<f64>> = masks;
        let mut mu: Vec<Vec<f64>> = vec![Vec::new(); n];
        for &i in self.topo.iter().rev() {
            for &c in &self.children[i] {
                let m = mu[c].clone();
                for (x, l) in lambda[i].iter_mut().enumerate() {
                    *l *= m[x];
                }
            }
            if let Some(p) = self.parent[i] {
                let kp = usize::from(self.domains[p]);
                let mut out = vec![0.0f64; kp];
                for (xp, slot) in out.iter_mut().enumerate() {
                    *slot = self.cpt[i][xp].iter().zip(&lambda[i]).map(|(c, l)| c * l).sum();
                }
                mu[i] = out;
            }
        }

        // Root belief and evidence probability.
        let root_belief: Vec<f64> =
            self.prior.iter().zip(&lambda[self.root]).map(|(p, l)| p * l).collect();
        let mass: f64 = root_belief.iter().sum();

        // Downward pass for marginals: belief_i ∝ pi_i · lambda_i with
        // pi_i(x) = Σ_xp cpt_i[xp][x] · (belief_p(xp) / mu_{i→p}(xp)).
        let mut belief: Vec<Vec<f64>> = vec![Vec::new(); n];
        belief[self.root] = root_belief;
        for &i in &self.topo {
            if let Some(p) = self.parent[i] {
                let kp = usize::from(self.domains[p]);
                let ki = usize::from(self.domains[i]);
                let excl: Vec<f64> = (0..kp)
                    .map(|xp| {
                        let m = mu[i][xp];
                        if m > 0.0 {
                            belief[p][xp] / m
                        } else {
                            0.0
                        }
                    })
                    .collect();
                let mut b = vec![0.0f64; ki];
                for (xp, &e) in excl.iter().enumerate() {
                    if e > 0.0 {
                        for (x, slot) in b.iter_mut().enumerate() {
                            *slot += self.cpt[i][xp][x] * e * lambda[i][x];
                        }
                    }
                }
                belief[i] = b;
            }
        }
        // Normalize marginals.
        let marginals: Vec<Vec<f64>> = belief
            .iter()
            .map(|b| {
                let z: f64 = b.iter().sum();
                if z > 0.0 {
                    b.iter().map(|x| x / z).collect()
                } else {
                    // No support under evidence: uniform placeholder.
                    vec![1.0 / b.len().max(1) as f64; b.len()]
                }
            })
            .collect();

        Conditioned { tree: self, lambda, mass: mass.max(0.0), marginals }
    }
}

/// The tree conditioned on range evidence: exact marginals, the evidence
/// probability, and an exact conditional sampler.
#[derive(Debug)]
pub struct Conditioned<'t> {
    tree: &'t ChowLiuTree,
    lambda: Vec<Vec<f64>>,
    mass: f64,
    marginals: Vec<Vec<f64>>,
}

impl Conditioned<'_> {
    /// `P(evidence)` — the probability a tuple drawn from the model
    /// satisfies every range.
    pub fn mass(&self) -> f64 {
        self.mass
    }

    /// Exact `P(X_i = x | evidence)`.
    pub fn marginal(&self, i: usize) -> &[f64] {
        &self.marginals[i]
    }

    /// Draws one tuple from `P(X | evidence)` exactly, top-down:
    /// the root from its conditioned marginal, each child from
    /// `P(x_c | x_p, evidence) ∝ cpt[x_p][x_c] · lambda_c(x_c)`.
    pub fn sample_into(&self, rng: &mut impl Rng, out: &mut [u16]) {
        let t = self.tree;
        for &i in &t.topo {
            let weights: Vec<f64> = match t.parent[i] {
                None => t.prior.iter().zip(&self.lambda[i]).map(|(p, l)| p * l).collect(),
                Some(p) => {
                    let xp = usize::from(out[p]);
                    t.cpt[i][xp].iter().zip(&self.lambda[i]).map(|(c, l)| c * l).collect()
                }
            };
            out[i] = sample_index(rng, &weights) as u16;
        }
    }
}

/// Samples an index proportionally to `weights` (uniform fallback when
/// all weights vanish).
fn sample_index(rng: &mut impl Rng, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return rng.gen_range(0..weights.len());
    }
    let mut u: f64 = rng.gen_range(0.0..total);
    for (i, w) in weights.iter().enumerate() {
        u -= w;
        if u <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use acqp_core::{Attribute, Range};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Data where b copies a and c copies b: a chain a—b—c.
    fn chain_data() -> (Schema, Dataset) {
        let schema = Schema::new(vec![
            Attribute::new("a", 3, 1.0),
            Attribute::new("b", 3, 1.0),
            Attribute::new("c", 3, 1.0),
        ])
        .unwrap();
        let mut rows = Vec::new();
        let mut x = 1u64;
        for _ in 0..3000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let a = ((x >> 33) % 3) as u16;
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let b = if (x >> 33) % 10 < 8 { a } else { ((x >> 40) % 3) as u16 };
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let c = if (x >> 33) % 10 < 8 { b } else { ((x >> 40) % 3) as u16 };
            rows.push(vec![a, b, c]);
        }
        (schema.clone(), Dataset::from_rows(&schema, rows).unwrap())
    }

    #[test]
    fn fit_recovers_chain_structure() {
        let (schema, data) = chain_data();
        let t = ChowLiuTree::fit(&schema, &data, 0.5);
        // MI(a,b) and MI(b,c) exceed MI(a,c), so the MST is the chain
        // a—b—c (rooted at 0): parent(b)=a, parent(c)=b.
        assert_eq!(t.parent(0), None);
        assert_eq!(t.parent(1), Some(0));
        assert_eq!(t.parent(2), Some(1));
        assert!(t.parameter_count() < 3 * 3 * 3, "tree is compact");
    }

    #[test]
    fn unconditioned_marginals_match_data() {
        let (schema, data) = chain_data();
        let t = ChowLiuTree::fit(&schema, &data, 0.1);
        let cond = t.condition(&Ranges::root(&schema));
        assert!((cond.mass() - 1.0).abs() < 1e-9);
        for a in 0..3 {
            let emp: Vec<f64> = (0..3)
                .map(|v| {
                    data.column(a).iter().filter(|&&x| x == v as u16).count() as f64
                        / data.len() as f64
                })
                .collect();
            for (v, &e) in emp.iter().enumerate() {
                assert!(
                    (cond.marginal(a)[v] - e).abs() < 0.02,
                    "attr {a} val {v}: model {} emp {}",
                    cond.marginal(a)[v],
                    e
                );
            }
        }
    }

    #[test]
    fn conditioning_matches_bruteforce_enumeration() {
        let (schema, data) = chain_data();
        let t = ChowLiuTree::fit(&schema, &data, 0.5);
        // Evidence: b in {1,2}, c = 0.
        let ranges = Ranges::root(&schema).with(1, Range::new(1, 2)).with(2, Range::new(0, 0));
        let cond = t.condition(&ranges);

        // Brute force over the 27 joint states using the tree's own
        // factorization.
        let joint =
            |a: usize, b: usize, c: usize| -> f64 { t.prior[a] * t.cpt[1][a][b] * t.cpt[2][b][c] };
        let mut z = 0.0;
        let mut pa = [0.0f64; 3];
        for (a, slot) in pa.iter_mut().enumerate() {
            for b in 1..3 {
                let p = joint(a, b, 0);
                z += p;
                *slot += p;
            }
        }
        assert!((cond.mass() - z).abs() < 1e-12, "mass {} vs {}", cond.mass(), z);
        for (a, &p) in pa.iter().enumerate() {
            assert!(
                (cond.marginal(0)[a] - p / z).abs() < 1e-12,
                "P(a={a}|e): {} vs {}",
                cond.marginal(0)[a],
                p / z
            );
        }
    }

    #[test]
    fn sampling_respects_evidence_and_marginals() {
        let (schema, data) = chain_data();
        let t = ChowLiuTree::fit(&schema, &data, 0.5);
        let ranges = Ranges::root(&schema).with(1, Range::new(2, 2));
        let cond = t.condition(&ranges);
        let mut rng = StdRng::seed_from_u64(11);
        let mut buf = [0u16; 3];
        let n = 20_000;
        let mut count_a = [0usize; 3];
        for _ in 0..n {
            cond.sample_into(&mut rng, &mut buf);
            assert_eq!(buf[1], 2, "evidence must hold in every sample");
            count_a[usize::from(buf[0])] += 1;
        }
        for (a, &c) in count_a.iter().enumerate() {
            let emp = c as f64 / n as f64;
            assert!(
                (emp - cond.marginal(0)[a]).abs() < 0.02,
                "P(a={a}|e): sampled {emp} vs exact {}",
                cond.marginal(0)[a]
            );
        }
    }

    #[test]
    fn log_likelihood_prefers_the_true_structure() {
        let (schema, data) = chain_data();
        let (train, test) = data.split_at(0.5);
        let fitted = ChowLiuTree::fit(&schema, &train, 0.5);
        // A deliberately wrong model: fit on shuffled-column data so the
        // tree learns no dependence structure.
        let scrambled_rows: Vec<Vec<u16>> = (0..train.len())
            .map(|r| {
                vec![
                    train.value(r, 0),
                    train.value((r + 7) % train.len(), 1),
                    train.value((r + 13) % train.len(), 2),
                ]
            })
            .collect();
        let scrambled = Dataset::from_rows(&schema, scrambled_rows).unwrap();
        let blind = ChowLiuTree::fit(&schema, &scrambled, 0.5);
        let ll_fit = fitted.log_likelihood(&test);
        let ll_blind = blind.log_likelihood(&test);
        assert!(
            ll_fit > ll_blind + 0.1,
            "fitted {ll_fit:.3} should beat structure-blind {ll_blind:.3}"
        );
        // Sanity: likelihoods are negative log-probabilities.
        assert!(ll_fit < 0.0);
    }

    #[test]
    fn zero_mass_evidence_is_handled() {
        let (schema, data) = chain_data();
        // Remove all rows with a = 2 so P(a=2, b=copying...) is tiny but
        // smoothing keeps it positive; then build impossible evidence by
        // fitting with alpha = 0 on filtered data.
        let rows: Vec<Vec<u16>> =
            (0..data.len()).map(|r| data.row(r)).filter(|row| row[0] != 2).collect();
        let filtered = Dataset::from_rows(&schema, rows).unwrap();
        let t = ChowLiuTree::fit(&schema, &filtered, 0.0);
        let cond = t.condition(&Ranges::root(&schema).with(0, Range::new(2, 2)));
        assert_eq!(cond.mass(), 0.0);
        // Marginals fall back to uniform rather than NaN.
        assert!(cond.marginal(1).iter().all(|p| p.is_finite()));
    }

    #[test]
    fn single_attribute_tree() {
        let schema = Schema::new(vec![Attribute::new("a", 4, 1.0)]).unwrap();
        let data = Dataset::from_rows(&schema, vec![vec![1], vec![1], vec![3]]).unwrap();
        let t = ChowLiuTree::fit(&schema, &data, 0.0);
        let cond = t.condition(&Ranges::root(&schema));
        assert!((cond.marginal(0)[1] - 2.0 / 3.0).abs() < 1e-12);
        let narrowed = t.condition(&Ranges::root(&schema).with(0, Range::new(0, 1)));
        assert!((narrowed.mass() - 2.0 / 3.0).abs() < 1e-12);
        assert!((narrowed.marginal(0)[1] - 1.0).abs() < 1e-12);
    }
}
