//! Cross-file, call-graph-aware lint pass (lint v2).
//!
//! The per-file rules in [`crate::rules`] see one file at a time, so a
//! violation reached *through* a helper is invisible to them: a planner
//! calling a budget.rs function that reads the wall clock outside the
//! sanctioned `Deadline`/`SearchLimits` impls, recovery code calling an
//! exempt helper that unwraps, deterministic code calling into a crate
//! that iterates a `HashMap`. This pass builds a lightweight
//! intra-workspace call graph from the masked source — no parser, no
//! type information:
//!
//! 1. **Definitions**: every `fn name` with a brace-matched body range,
//!    its innermost `impl` header, and whether it sits in test code.
//! 2. **Call sites**: an identifier immediately before `(` that is not
//!    a keyword and not itself a definition. Macros never match (the
//!    `!` sits between the name and the paren).
//! 3. **Resolution**: a call binds to a definition only when the name
//!    is defined exactly once in the whole workspace, so a method name
//!    shared by two types can never mis-bind.
//!
//! Taint (a rule's pattern occurring in a function body) seeds only in
//! *rule-exempt* library code — in-scope occurrences are already
//! findings of the per-file pass — and propagates transitively through
//! exempt functions. A finding is emitted at each in-scope call site
//! that reaches a tainted function, carrying the witness chain from the
//! call down to the raw pattern.

use std::collections::{BTreeMap, BTreeSet};

use crate::rules::{self, Finding, Severity};
use crate::scan::{self, ScannedFile};

/// One scanned workspace file handed to the cross-file pass.
pub struct GraphFile<'a> {
    /// Workspace-relative path with `/` separators.
    pub relpath: &'a str,
    /// Raw source, for snippets.
    pub source: &'a str,
    /// Lexed view.
    pub scan: &'a ScannedFile,
}

/// One `fn` definition found in the masked source.
#[derive(Debug)]
struct FnDef {
    name: String,
    /// Index into the file list.
    file: usize,
    /// 1-based line of the `fn` keyword.
    line: usize,
    /// Byte range of the brace-matched body (masked-source offsets).
    body: (usize, usize),
    in_test: bool,
    /// Header text of the innermost `impl` block containing the def,
    /// e.g. `impl SearchLimits`.
    impl_header: Option<String>,
}

/// One call site: `name(` in the masked source.
#[derive(Debug)]
struct CallSite {
    /// Definition whose body contains this site, if any.
    caller: Option<usize>,
    callee: String,
    file: usize,
    /// Byte offset of the callee identifier.
    offset: usize,
}

/// The assembled graph over one workspace scan.
struct Graph {
    defs: Vec<FnDef>,
    calls: Vec<CallSite>,
    /// name → definition indices; a call resolves only on unique names.
    by_name: BTreeMap<String, Vec<usize>>,
}

/// Configuration of one transitively-propagated rule.
struct TaintRule {
    rule: &'static str,
    patterns: &'static [&'static str],
    /// Files where the per-file pass reports the pattern directly and
    /// where this pass reports tainted *calls*.
    in_scope: fn(&str) -> bool,
    /// Exempt definitions that may legitimately contain the pattern
    /// and must not taint their callers.
    sanctioned: fn(&FnDef, &str) -> bool,
    /// Trailing advice appended to the witness chain.
    advice: &'static str,
}

fn never_sanctioned(_def: &FnDef, _relpath: &str) -> bool {
    false
}

/// Wall-clock reads are sanctioned only inside budget.rs's
/// `impl Deadline` / `impl SearchLimits` blocks, where they can only
/// truncate a search; any other budget.rs clock reader taints callers.
fn wallclock_sanctioned(def: &FnDef, relpath: &str) -> bool {
    relpath.ends_with("planner/budget.rs")
        && def
            .impl_header
            .as_deref()
            .is_some_and(|h| h.contains("Deadline") || h.contains("SearchLimits"))
}

const TAINT_RULES: &[TaintRule] = &[
    TaintRule {
        rule: "wallclock-in-planner",
        patterns: &["Instant::now", "SystemTime::now"],
        in_scope: |p| !rules::is_test_path(p) && !p.ends_with("planner/budget.rs"),
        sanctioned: wallclock_sanctioned,
        advice: "wall-clock reads make search behaviour load-dependent; route deadlines \
                 through planner::budget's SearchLimits/Deadline",
    },
    TaintRule {
        rule: "nondeterministic-iteration",
        patterns: &["HashMap", "HashSet"],
        in_scope: |p| !rules::is_test_path(p) && rules::in_deterministic_scope(p),
        sanctioned: never_sanctioned,
        advice: "the helper iterates a randomly-seeded std table; use BTreeMap/BTreeSet in \
                 the helper or keep the call off deterministic result paths",
    },
    TaintRule {
        rule: "panic-in-lib",
        patterns: &[".unwrap()", ".expect(", "panic!", "unreachable!", "todo!", "unimplemented!"],
        in_scope: |p| !rules::is_test_path(p) && rules::in_panic_scope(p),
        sanctioned: never_sanctioned,
        advice: "a reachable panic inside an infallible-by-construction path; make the \
                 helper return an error or degrade",
    },
];

/// Runs the cross-file pass. Returns findings plus `(file, line)` of
/// allow comments that suppressed one.
pub fn check_workspace(files: &[GraphFile<'_>]) -> (Vec<Finding>, Vec<(String, usize)>) {
    let graph = build_graph(files);
    let mut findings = Vec::new();
    let mut used = Vec::new();
    for rule in TAINT_RULES {
        run_rule(rule, files, &graph, &mut findings, &mut used);
    }
    (findings, used)
}

fn run_rule(
    rule: &TaintRule,
    files: &[GraphFile<'_>],
    graph: &Graph,
    findings: &mut Vec<Finding>,
    used: &mut Vec<(String, usize)>,
) {
    // Definitions eligible to carry taint: exempt library code only.
    // In-scope occurrences are the per-file pass's findings, and test
    // code is exempt from the rule altogether.
    let eligible = |d: &FnDef| {
        let relpath = files[d.file].relpath;
        !d.in_test
            && !rules::is_test_path(relpath)
            && !(rule.in_scope)(relpath)
            && !(rule.sanctioned)(d, relpath)
    };

    // Seed: an unsuppressed pattern occurrence inside an eligible body.
    let mut chains: BTreeMap<usize, Vec<String>> = BTreeMap::new();
    for (i, def) in graph.defs.iter().enumerate() {
        if !eligible(def) {
            continue;
        }
        let gf = &files[def.file];
        let body = &gf.scan.masked[def.body.0..def.body.1];
        'pats: for pat in rule.patterns {
            for at in rules::occurrences(body, pat) {
                let line = gf.scan.line_of(def.body.0 + at);
                if let Some(allow) = gf.scan.allow_for(rule.rule, line) {
                    used.push((gf.relpath.to_string(), allow.line));
                    continue;
                }
                chains.insert(i, vec![describe(def, gf), format!("`{pat}`")]);
                break 'pats;
            }
        }
    }

    // Propagate to fixpoint among eligible definitions.
    loop {
        let mut grew = false;
        for cs in &graph.calls {
            let Some(caller) = cs.caller else { continue };
            if chains.contains_key(&caller) || !eligible(&graph.defs[caller]) {
                continue;
            }
            let Some(callee) = resolve(graph, &cs.callee) else { continue };
            if let Some(tail) = chains.get(&callee) {
                let mut chain =
                    vec![describe(&graph.defs[caller], &files[graph.defs[caller].file])];
                chain.extend(tail.iter().cloned());
                chains.insert(caller, chain);
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }

    // Report: every in-scope, non-test call site reaching a tainted def.
    let mut seen: BTreeSet<(usize, usize)> = BTreeSet::new();
    for cs in &graph.calls {
        let gf = &files[cs.file];
        if !(rule.in_scope)(gf.relpath) || gf.scan.in_test_code(cs.offset) {
            continue;
        }
        let Some(callee) = resolve(graph, &cs.callee) else { continue };
        let Some(chain) = chains.get(&callee) else { continue };
        let line = gf.scan.line_of(cs.offset);
        if !seen.insert((cs.file, cs.offset)) {
            continue;
        }
        if let Some(allow) = gf.scan.allow_for(rule.rule, line) {
            used.push((gf.relpath.to_string(), allow.line));
            continue;
        }
        findings.push(Finding {
            rule: rule.rule,
            severity: Severity::Error,
            file: gf.relpath.to_string(),
            line,
            snippet: gf.scan.line_text(gf.source, line).to_string(),
            message: format!(
                "call to `{}` reaches {} through exempt code — {}",
                cs.callee,
                render_chain(chain),
                rule.advice
            ),
        });
    }
}

/// `name (file:line)` for witness chains.
fn describe(def: &FnDef, gf: &GraphFile<'_>) -> String {
    format!("`{}` ({}:{})", def.name, gf.relpath, def.line)
}

/// ` → `-joined chain, elided in the middle past five links.
fn render_chain(chain: &[String]) -> String {
    if chain.len() <= 5 {
        return chain.join(" → ");
    }
    let head = chain[..3].join(" → ");
    let tail = chain[chain.len() - 1].as_str();
    format!("{head} → … → {tail}")
}

/// The unique definition of `name`, if exactly one exists anywhere in
/// the workspace (ambiguous names never bind — see the module docs).
fn resolve(graph: &Graph, name: &str) -> Option<usize> {
    match graph.by_name.get(name)?.as_slice() {
        [one] => Some(*one),
        _ => None,
    }
}

fn build_graph(files: &[GraphFile<'_>]) -> Graph {
    let mut defs = Vec::new();
    let mut calls = Vec::new();
    for (fi, gf) in files.iter().enumerate() {
        extract_defs(fi, gf, &mut defs);
    }
    let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (i, d) in defs.iter().enumerate() {
        by_name.entry(d.name.clone()).or_default().push(i);
    }
    for (fi, gf) in files.iter().enumerate() {
        extract_calls(fi, gf, &defs, &mut calls);
    }
    Graph { defs, calls, by_name }
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Every `fn` definition in one file, with brace-matched body ranges.
fn extract_defs(file: usize, gf: &GraphFile<'_>, out: &mut Vec<FnDef>) {
    let masked = &gf.scan.masked;
    let bytes = masked.as_bytes();
    let impls = impl_blocks(masked);
    for at in rules::occurrences(masked, "fn") {
        let mut j = at + 2;
        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        let name_start = j;
        while j < bytes.len() && is_ident(bytes[j]) {
            j += 1;
        }
        if j == name_start || bytes[name_start].is_ascii_digit() {
            continue; // `fn(` pointer types and stray keywords
        }
        let name = masked[name_start..j].to_string();
        // The body is the first brace after the signature; a `;` first
        // means a bodiless trait/extern declaration.
        let Some(open) = masked[j..].find(['{', ';']).map(|p| j + p) else { continue };
        if bytes[open] == b';' {
            continue;
        }
        let end = scan::match_delim(bytes, open, b'{', b'}').unwrap_or(masked.len());
        let impl_header = impls
            .iter()
            .filter(|(_, s, e)| (*s..*e).contains(&at))
            .min_by_key(|(_, s, e)| e - s)
            .map(|(h, _, _)| h.clone());
        out.push(FnDef {
            name,
            file,
            line: gf.scan.line_of(at),
            body: (open, end),
            in_test: gf.scan.in_test_code(at),
            impl_header,
        });
    }
}

/// `(header, body_start, body_end)` of every `impl` block. Headers are
/// the raw text between the keyword and the opening brace.
fn impl_blocks(masked: &str) -> Vec<(String, usize, usize)> {
    let bytes = masked.as_bytes();
    let mut out = Vec::new();
    for at in rules::occurrences(masked, "impl") {
        let Some(open) = masked[at..].find('{').map(|p| at + p) else { continue };
        let header = masked[at..open].split_whitespace().collect::<Vec<_>>().join(" ");
        let end = scan::match_delim(bytes, open, b'{', b'}').unwrap_or(masked.len());
        out.push((header, open, end));
    }
    out
}

/// Every `name(` call site in one file, attributed to the innermost
/// definition whose body contains it.
fn extract_calls(file: usize, gf: &GraphFile<'_>, defs: &[FnDef], out: &mut Vec<CallSite>) {
    let masked = &gf.scan.masked;
    let bytes = masked.as_bytes();
    for i in 1..bytes.len() {
        if bytes[i] != b'(' || !is_ident(bytes[i - 1]) {
            continue;
        }
        let mut s = i;
        while s > 0 && is_ident(bytes[s - 1]) {
            s -= 1;
        }
        let name = &masked[s..i];
        if bytes[s].is_ascii_digit() || is_keyword(name) {
            continue;
        }
        // `fn name(` is the definition, not a call.
        let mut k = s;
        while k > 0 && bytes[k - 1].is_ascii_whitespace() {
            k -= 1;
        }
        if k >= 2 && &masked[k - 2..k] == "fn" && (k < 3 || !is_ident(bytes[k - 3])) {
            continue;
        }
        let caller = defs
            .iter()
            .enumerate()
            .filter(|(_, d)| d.file == file && (d.body.0..d.body.1).contains(&s))
            .min_by_key(|(_, d)| d.body.1 - d.body.0)
            .map(|(di, _)| di);
        out.push(CallSite { caller, callee: name.to_string(), file, offset: s });
    }
}

fn is_keyword(name: &str) -> bool {
    matches!(
        name,
        "if" | "while"
            | "for"
            | "match"
            | "return"
            | "loop"
            | "fn"
            | "as"
            | "in"
            | "move"
            | "mut"
            | "ref"
            | "where"
            | "unsafe"
            | "async"
            | "await"
            | "dyn"
            | "impl"
            | "let"
            | "pub"
            | "use"
            | "mod"
            | "crate"
            | "super"
            | "self"
            | "Self"
            | "else"
            | "break"
            | "continue"
            | "true"
            | "false"
            | "struct"
            | "enum"
            | "trait"
            | "type"
            | "const"
            | "static"
            | "extern"
            | "box"
            | "yield"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Owned {
        relpath: String,
        source: String,
        scan: ScannedFile,
    }

    fn lint(files: &[(&str, &str)]) -> Vec<Finding> {
        let owned: Vec<Owned> = files
            .iter()
            .map(|(p, s)| Owned {
                relpath: p.to_string(),
                source: s.to_string(),
                scan: ScannedFile::new(s),
            })
            .collect();
        let graph_files: Vec<GraphFile<'_>> = owned
            .iter()
            .map(|o| GraphFile { relpath: &o.relpath, source: &o.source, scan: &o.scan })
            .collect();
        check_workspace(&graph_files).0
    }

    const SNEAKY_BUDGET: &str = "pub struct Deadline(u64);\n\
         impl Deadline {\n    pub fn expired(&self) -> bool { Instant::now(); false }\n}\n\
         pub fn sneaky_now() -> u64 { Instant::now(); 0 }\n";

    #[test]
    fn transitive_wallclock_through_budget_helper_is_caught() {
        let planner = "pub fn search() -> u64 { sneaky_now() }\n";
        let f = lint(&[
            ("crates/acqp-core/src/planner/budget.rs", SNEAKY_BUDGET),
            ("crates/acqp-core/src/planner/search.rs", planner),
        ]);
        assert_eq!(f.len(), 1, "{f:#?}");
        assert_eq!(f[0].rule, "wallclock-in-planner");
        assert_eq!(f[0].file, "crates/acqp-core/src/planner/search.rs");
        assert!(f[0].message.contains("sneaky_now"), "{}", f[0].message);
        assert!(f[0].message.contains("Instant::now"), "{}", f[0].message);
    }

    #[test]
    fn sanctioned_deadline_impl_does_not_taint() {
        let planner = "pub fn search(d: &Deadline) -> bool { d.expired() }\n";
        let f = lint(&[
            ("crates/acqp-core/src/planner/budget.rs", SNEAKY_BUDGET),
            ("crates/acqp-core/src/planner/search.rs", planner),
        ]);
        assert!(f.is_empty(), "{f:#?}");
    }

    #[test]
    fn taint_propagates_through_chains_of_exempt_helpers() {
        let obs = "pub fn leak_order() -> u64 { let m: HashMap<u64, u64> = HashMap::new(); 0 }\n\
                   pub fn relay() -> u64 { leak_order() }\n";
        let core = "pub fn total() -> u64 { relay() }\n";
        let f = lint(&[
            ("crates/acqp-obs/src/lib.rs", obs),
            ("crates/acqp-core/src/estimator.rs", core),
        ]);
        let nd: Vec<_> = f.iter().filter(|f| f.rule == "nondeterministic-iteration").collect();
        assert_eq!(nd.len(), 1, "{f:#?}");
        assert_eq!(nd[0].file, "crates/acqp-core/src/estimator.rs");
        assert!(nd[0].message.contains("relay"), "{}", nd[0].message);
        assert!(nd[0].message.contains("leak_order"), "{}", nd[0].message);
    }

    #[test]
    fn transitive_panic_into_recovery_is_caught_and_allow_suppresses() {
        let helper = "pub fn decode_or_die(b: &[u8]) -> u8 { b.first().copied().unwrap() }\n";
        let recovery = "pub fn recover(b: &[u8]) -> u8 { decode_or_die(b) }\n";
        let f = lint(&[
            ("crates/acqp-sensornet/src/wire_util.rs", helper),
            ("crates/acqp-sensornet/src/recovery.rs", recovery),
        ]);
        let panics: Vec<_> = f.iter().filter(|f| f.rule == "panic-in-lib").collect();
        assert_eq!(panics.len(), 1, "{f:#?}");
        assert_eq!(panics[0].file, "crates/acqp-sensornet/src/recovery.rs");

        let suppressed = "// acqp-lint: allow(panic-in-lib): helper is total on admitted plans\n\
                          pub fn recover(b: &[u8]) -> u8 { decode_or_die(b) }\n";
        let f = lint(&[
            ("crates/acqp-sensornet/src/wire_util.rs", helper),
            ("crates/acqp-sensornet/src/recovery.rs", suppressed),
        ]);
        assert!(f.iter().all(|f| f.rule != "panic-in-lib"), "{f:#?}");
    }

    #[test]
    fn ambiguous_names_and_test_code_never_bind() {
        // Two defs named `helper` → calls to it cannot resolve.
        let a = "pub fn helper() { let m: HashMap<u8, u8> = HashMap::new(); }\n";
        let b = "pub fn helper() {}\n";
        let core = "pub fn go() { helper() }\n";
        let f = lint(&[
            ("crates/acqp-obs/src/a.rs", a),
            ("crates/acqp-obs/src/b.rs", b),
            ("crates/acqp-core/src/estimator.rs", core),
        ]);
        assert!(f.is_empty(), "{f:#?}");

        // A seeded helper only reachable from #[cfg(test)] code is fine.
        let test_only = "pub fn seeded() { let m: HashSet<u8> = HashSet::new(); }\n";
        let core = "#[cfg(test)]\nmod tests { fn t() { seeded() } }\n";
        let f = lint(&[
            ("crates/acqp-obs/src/c.rs", test_only),
            ("crates/acqp-core/src/estimator.rs", core),
        ]);
        assert!(f.is_empty(), "{f:#?}");
    }

    #[test]
    fn defs_and_calls_extract_with_impl_headers() {
        let src = "impl Deadline {\n    pub fn after(d: u64) -> Self { mk(d) }\n}\n\
                   fn mk(d: u64) -> Deadline { Deadline(d) }\n";
        let scan = ScannedFile::new(src);
        let gf = GraphFile { relpath: "x/src/a.rs", source: src, scan: &scan };
        let mut defs = Vec::new();
        extract_defs(0, &gf, &mut defs);
        assert_eq!(defs.len(), 2, "{defs:#?}");
        assert_eq!(defs[0].name, "after");
        assert_eq!(defs[0].impl_header.as_deref(), Some("impl Deadline"));
        assert_eq!(defs[1].name, "mk");
        assert_eq!(defs[1].impl_header, None);
        let mut calls = Vec::new();
        extract_calls(0, &gf, &defs, &mut calls);
        let names: Vec<&str> = calls.iter().map(|c| c.callee.as_str()).collect();
        assert!(names.contains(&"mk"), "{names:?}");
        assert!(names.contains(&"Deadline"), "tuple-struct ctor is a call: {names:?}");
        let mk_call = calls.iter().find(|c| c.callee == "mk").expect("fixture");
        assert_eq!(mk_call.caller, Some(0), "call attributed to `after`");
    }
}
