//! acqp-lint: the workspace invariant checker.
//!
//! PRs 1–4 established guarantees — bitwise-identical plans for any
//! `--threads n`, poison-free locking, planning that is infallible by
//! construction, and a stable metrics taxonomy — that example-based
//! tests can only sample. This crate makes them structural: a
//! zero-dependency scanner ([`scan`]) lexes every `.rs` file in the
//! workspace, the named rules ([`rules`]) pattern-match the masked
//! source, and [`taxonomy`] checks the observability contract against
//! DESIGN.md §8 in both directions. `cargo run -p acqp-lint --
//! --workspace` exits nonzero on any unsuppressed finding; see
//! `--explain <rule>` for the rationale behind each rule and DESIGN.md
//! §11 for the suppression mechanism.

pub mod callgraph;
pub mod rules;
pub mod scan;
pub mod taxonomy;

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use rules::{Finding, Severity};

/// Result of linting a workspace.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Findings that fail the lint.
    pub fn errors(&self) -> usize {
        self.findings.iter().filter(|f| f.severity == Severity::Error).count()
    }

    /// Findings that are reported but do not fail the lint.
    pub fn advisories(&self) -> usize {
        self.findings.iter().filter(|f| f.severity == Severity::Advisory).count()
    }
}

/// Lints every `.rs` file under `root` plus the DESIGN.md taxonomy.
///
/// `Err` is reserved for environmental problems (unreadable files, a
/// missing taxonomy table); findings — however many — are `Ok`.
pub fn lint_workspace(root: &Path) -> Result<Report, String> {
    let files = collect_rs_files(root)?;
    let mut report = Report { findings: Vec::new(), files_scanned: files.len() };
    let mut emits: Vec<taxonomy::MetricEmit> = Vec::new();
    // Allow comments that suppressed at least one finding, and the full
    // set, both keyed by (file, line); the difference is stale.
    let mut used_allows: BTreeSet<(String, usize)> = BTreeSet::new();
    let mut all_allows: Vec<(String, usize, String)> = Vec::new();

    let mut scanned_files: Vec<(String, String, scan::ScannedFile)> = Vec::new();
    for path in &files {
        let relpath = rel(root, path);
        let source = std::fs::read_to_string(path).map_err(|e| format!("{relpath}: {e}"))?;
        let scanned = scan::ScannedFile::new(&source);
        scanned_files.push((relpath, source, scanned));
    }

    for (relpath, source, scanned) in &scanned_files {
        let ctx = rules::FileCtx { relpath, source, scan: scanned };
        let (findings, used) = rules::check_file(&ctx);
        report.findings.extend(findings);
        for line in used {
            used_allows.insert((relpath.clone(), line));
        }
        for a in &scanned.allows {
            all_allows.push((relpath.clone(), a.line, a.rule.clone()));
        }
        // The linter's own crate is full of deliberately violating
        // fixture names; its emits are not part of the taxonomy.
        if !relpath.starts_with("crates/acqp-lint/") && !rules::is_test_path(relpath) {
            emits.extend(taxonomy::collect_metric_emits(relpath, source, scanned));
        }
    }

    // The v2 cross-file pass: violations reached through helpers in
    // rule-exempt code (see `callgraph`).
    let graph_files: Vec<callgraph::GraphFile<'_>> = scanned_files
        .iter()
        .map(|(relpath, source, scanned)| callgraph::GraphFile { relpath, source, scan: scanned })
        .collect();
    let (graph_findings, graph_used) = callgraph::check_workspace(&graph_files);
    report.findings.extend(graph_findings);
    used_allows.extend(graph_used);

    check_taxonomy(root, &emits, &mut used_allows, &mut report.findings)?;

    for (file, line, rule) in all_allows {
        if rules::rule_info(&rule).is_some() && !used_allows.contains(&(file.clone(), line)) {
            report.findings.push(Finding {
                rule: "unused-allow",
                severity: Severity::Advisory,
                file,
                line,
                snippet: String::new(),
                message: format!("allow({rule}) suppresses nothing — remove the stale comment"),
            });
        }
    }

    report.findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(report)
}

/// Both directions of the `metric-taxonomy` contract.
fn check_taxonomy(
    root: &Path,
    emits: &[taxonomy::MetricEmit],
    used_allows: &mut BTreeSet<(String, usize)>,
    findings: &mut Vec<Finding>,
) -> Result<(), String> {
    let design_path = root.join("DESIGN.md");
    let design = std::fs::read_to_string(&design_path).map_err(|e| format!("DESIGN.md: {e}"))?;
    let entries = taxonomy::parse_taxonomy(&design)?;

    let mut covered = vec![false; entries.len()];
    for emit in emits {
        let mut matched = false;
        for (i, entry) in entries.iter().enumerate() {
            if taxonomy::pattern_matches(&entry.pattern, &emit.normalized) {
                covered[i] = true;
                matched = true;
            }
        }
        if matched {
            continue;
        }
        if let Some(allow_line) = emit.allowed_at {
            used_allows.insert((emit.file.clone(), allow_line));
            continue;
        }
        findings.push(Finding {
            rule: "metric-taxonomy",
            severity: Severity::Error,
            file: emit.file.clone(),
            line: emit.line,
            snippet: emit.snippet.clone(),
            message: format!(
                "metric `{}` is not documented in the DESIGN.md §8 taxonomy table",
                emit.normalized
            ),
        });
    }

    for (entry, covered) in entries.iter().zip(&covered) {
        if *covered || entry.kind == "span-child" {
            continue;
        }
        findings.push(Finding {
            rule: "metric-taxonomy",
            severity: Severity::Error,
            file: "DESIGN.md".to_string(),
            line: entry.line,
            snippet: format!("`{}` ({})", entry.pattern, entry.kind),
            message: format!(
                "documented metric `{}` is emitted nowhere in the workspace — stale row?",
                entry.pattern
            ),
        });
    }
    Ok(())
}

/// Every `.rs` file under `root`, sorted, skipping build output,
/// vendored crates, VCS metadata and the lint fixtures (which violate
/// on purpose).
fn collect_rs_files(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries = std::fs::read_dir(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name.starts_with('.')
                    || name == "target"
                    || name == "vendor"
                    || name == "fixtures"
                {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Workspace-relative path with `/` separators (rule scopes and output
/// stay stable across platforms).
fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Human-readable rendering, one block per finding.
pub fn render_human(report: &Report) -> String {
    let mut out = String::new();
    for f in &report.findings {
        out.push_str(&format!("{}[{}]: {}\n", f.severity.as_str(), f.rule, f.message));
        out.push_str(&format!("  --> {}:{}\n", f.file, f.line));
        if !f.snippet.is_empty() {
            out.push_str(&format!("   | {}\n", f.snippet));
        }
    }
    out.push_str(&format!(
        "{} file(s) scanned: {} error(s), {} advisory(ies)\n",
        report.files_scanned,
        report.errors(),
        report.advisories()
    ));
    out
}

/// JSON rendering for the CI artifact.
pub fn render_json(report: &Report) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": {}, \"severity\": {}, \"file\": {}, \"line\": {}, \"snippet\": {}, \"message\": {}}}",
            json_str(f.rule),
            json_str(f.severity.as_str()),
            json_str(&f.file),
            f.line,
            json_str(&f.snippet),
            json_str(&f.message)
        ));
    }
    if !report.findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!(
        "],\n  \"files_scanned\": {},\n  \"errors\": {},\n  \"advisories\": {}\n}}\n",
        report.files_scanned,
        report.errors(),
        report.advisories()
    ));
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn json_output_parses_shape() {
        let report = Report {
            findings: vec![Finding {
                rule: "raw-mutex",
                severity: Severity::Error,
                file: "crates/x/src/a.rs".to_string(),
                line: 3,
                snippet: "use std::sync::Mutex;".to_string(),
                message: "msg".to_string(),
            }],
            files_scanned: 1,
        };
        let json = render_json(&report);
        assert!(json.contains("\"rule\": \"raw-mutex\""));
        assert!(json.contains("\"line\": 3"));
        assert!(json.contains("\"errors\": 1"));
    }
}
