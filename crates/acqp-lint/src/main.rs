//! CLI for the workspace invariant checker.
//!
//! ```text
//! acqp-lint --workspace [--root <dir>] [--json <file|->]
//! acqp-lint --explain <rule>
//! acqp-lint --rules
//! ```
//!
//! Exit codes: 0 clean (advisories allowed), 1 unsuppressed error
//! findings, 2 usage or environment error.

use std::path::PathBuf;
use std::process::ExitCode;

use acqp_lint::rules::{self, Severity};

struct Options {
    root: PathBuf,
    json: Option<PathBuf>,
}

const USAGE: &str = "\
acqp-lint: workspace invariant checker

USAGE:
    acqp-lint --workspace [--root <dir>] [--json <file|->]
    acqp-lint --explain <rule>
    acqp-lint --rules

OPTIONS:
    --workspace        lint every .rs file under the root (default: cwd)
    --root <dir>       workspace root to lint
    --json <file|->    additionally write findings as JSON ('-' = stdout)
    --explain <rule>   print the rationale behind a rule
    --rules            list all rules
    -h, --help         this text

Suppress a finding in place with a justified comment on the same line
or the line above:  // acqp-lint: allow(<rule>): <reason>
";

fn main() -> ExitCode {
    match parse_args(std::env::args().skip(1).collect()) {
        Ok(Command::Lint(opts)) => run_lint(&opts),
        Ok(Command::Explain(rule)) => run_explain(&rule),
        Ok(Command::Rules) => {
            for r in rules::RULES {
                println!("{:<26} {:<9} {}", r.id, r.severity.as_str(), r.summary);
            }
            ExitCode::SUCCESS
        }
        Ok(Command::Help) => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

enum Command {
    Lint(Options),
    Explain(String),
    Rules,
    Help,
}

fn parse_args(args: Vec<String>) -> Result<Command, String> {
    let mut opts = Options { root: PathBuf::from("."), json: None };
    let mut lint = false;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => lint = true,
            "--root" => {
                opts.root = PathBuf::from(it.next().ok_or("--root needs a directory")?);
                lint = true;
            }
            "--json" => opts.json = Some(PathBuf::from(it.next().ok_or("--json needs a path")?)),
            "--explain" => {
                return Ok(Command::Explain(it.next().ok_or("--explain needs a rule id")?))
            }
            "--rules" => return Ok(Command::Rules),
            "-h" | "--help" => return Ok(Command::Help),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if lint || opts.json.is_some() {
        Ok(Command::Lint(opts))
    } else {
        Ok(Command::Help)
    }
}

fn run_lint(opts: &Options) -> ExitCode {
    let report = match acqp_lint::lint_workspace(&opts.root) {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };
    if let Some(path) = &opts.json {
        let json = acqp_lint::render_json(&report);
        if path.as_os_str() == "-" {
            print!("{json}");
        } else if let Err(e) = std::fs::write(path, &json) {
            eprintln!("error: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    print!("{}", acqp_lint::render_human(&report));
    if report.findings.iter().any(|f| f.severity == Severity::Error) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn run_explain(rule: &str) -> ExitCode {
    match rules::rule_info(rule) {
        Some(info) => {
            println!("{} ({})\n", info.id, info.severity.as_str());
            println!("{}\n", info.summary);
            // Re-wrap the explain text to the terminal-friendly width it
            // was written at.
            for line in wrap(info.explain, 78) {
                println!("{line}");
            }
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("error: unknown rule `{rule}` — see acqp-lint --rules");
            ExitCode::from(2)
        }
    }
}

fn wrap(text: &str, width: usize) -> Vec<String> {
    let mut lines = Vec::new();
    let mut line = String::new();
    for word in text.split_whitespace() {
        if !line.is_empty() && line.len() + 1 + word.len() > width {
            lines.push(std::mem::take(&mut line));
        }
        if !line.is_empty() {
            line.push(' ');
        }
        line.push_str(word);
    }
    if !line.is_empty() {
        lines.push(line);
    }
    lines
}
