//! The named invariant rules and the pattern engine that runs them.
//!
//! Each rule guards an invariant established by an earlier PR (see
//! `DESIGN.md` §11): bitwise-deterministic plan search, poison-free
//! locking, planning that is infallible by construction, total float
//! orderings and the stable observability taxonomy. Rules scan the
//! *masked* source produced by [`crate::scan`], so comments, strings
//! and char literals can never trip a pattern, and `#[cfg(test)]`
//! items are exempt wholesale.

use crate::scan::ScannedFile;

/// How a finding affects the exit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fails the lint (nonzero exit).
    Error,
    /// Reported, but does not fail the lint.
    Advisory,
}

impl Severity {
    /// Stable lower-case label used in output.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Advisory => "advisory",
        }
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (`raw-mutex`, `metric-taxonomy`, …).
    pub rule: &'static str,
    /// Error or advisory.
    pub severity: Severity,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// The trimmed source line.
    pub snippet: String,
    /// What is wrong and what to do instead.
    pub message: String,
}

/// Static description of a rule, for `--explain` and `--rules`.
pub struct RuleInfo {
    /// Stable rule id.
    pub id: &'static str,
    /// Error or advisory.
    pub severity: Severity,
    /// One-line summary.
    pub summary: &'static str,
    /// Long-form rationale: which invariant, which PR, how to fix.
    pub explain: &'static str,
}

/// Every rule, including the meta rules guarding the suppression
/// mechanism itself.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "wallclock-in-planner",
        severity: Severity::Error,
        summary: "no Instant::now/SystemTime::now outside planner/budget.rs and bench/test code",
        explain: "Plan selection is P* = argmin_P E[C(P,x)] over a deterministic search; the \
                  repo guarantees bitwise-identical plans for any --threads n (PR 1). A wall \
                  clock read on a search path makes results depend on machine load. All \
                  deadline handling belongs in acqp-core/src/planner/budget.rs (SearchLimits / \
                  Deadline), which confines clock reads to the cooperative budget that may only \
                  *truncate* a search, never reorder it. Benches, tests and examples are \
                  exempt. Suppress with `// acqp-lint: allow(wallclock-in-planner): <reason>` \
                  only for observational timing that is never read back into a decision.",
    },
    RuleInfo {
        id: "nondeterministic-iteration",
        severity: Severity::Error,
        summary: "no std HashMap/HashSet in planner/estimator/sensornet/persist code",
        explain: "std's HashMap and HashSet use a randomly seeded hasher: iteration order \
                  changes run to run. Any result that is built by iterating one — float \
                  accumulation order, tie-breaks, serialized output — silently loses the \
                  bitwise determinism PRs 1–4 promise. Use BTreeMap/BTreeSet in \
                  acqp-core, acqp-gm, acqp-sensornet and acqp-persist. A lookup-only table \
                  whose iteration order provably never escapes may keep a HashMap under \
                  `// acqp-lint: allow(nondeterministic-iteration): <why order cannot escape>`.",
    },
    RuleInfo {
        id: "raw-mutex",
        severity: Severity::Error,
        summary: "library code must use sync::NoPoisonMutex, not std::sync::Mutex",
        explain: "A worker that panics while holding a std::sync::Mutex poisons it, and every \
                  later lock().unwrap() turns one isolated worker failure into a process-wide \
                  abort — exactly what the panic-isolated planners and the crash-safe \
                  basestation (PRs 1 and 4) exist to prevent. Library code shares caches of \
                  pure-function results across panic-isolated workers, so it must lock through \
                  acqp_core::sync::NoPoisonMutex, which recovers the guard instead of \
                  propagating poison. Crates that sit below acqp-core in the dependency graph \
                  (acqp-obs) may keep std's mutex with \
                  `// acqp-lint: allow(raw-mutex): <reason>`.",
    },
    RuleInfo {
        id: "panic-in-lib",
        severity: Severity::Error,
        summary: "no .unwrap()/.expect()/panic! in planner and recovery paths",
        explain: "Planning is infallible by construction (PR 4's fallback ladder ends in a \
                  rung that cannot fail) and recovery must survive arbitrarily corrupt \
                  on-disk state (PR 4's checkpoint/WAL scanner reports corruption instead of \
                  dying). A reachable unwrap/expect/panic! in acqp-core/src/planner, \
                  acqp-persist or acqp-sensornet/src/recovery.rs breaks both guarantees. \
                  Return an error, degrade, or restructure so the invariant is checked by \
                  types (slice patterns instead of try_into().unwrap()). assert!/debug_assert! \
                  are permitted — they state invariants rather than handle errors. A genuinely \
                  unreachable case may stay under \
                  `// acqp-lint: allow(panic-in-lib): <the invariant that makes it unreachable>`.",
    },
    RuleInfo {
        id: "float-partial-cmp",
        severity: Severity::Error,
        summary: "f64 comparisons and sorts must go through planner::OrdF64",
        explain: "partial_cmp on f64 is not total: NaN compares as None, and the customary \
                  `.unwrap_or(Ordering::Equal)` makes sorts and min_by silently \
                  order-dependent — the same failure that collapses cost-model comparisons \
                  (Eq. 1–3) and P* = argmin selection. acqp_core::planner::OrdF64 is the one \
                  total order (NaN compares smallest, so a NaN priority can never displace a \
                  finite one in the planners' max-heaps); compare with \
                  OrdF64(a).cmp(&OrdF64(b)). The only legitimate partial_cmp call sites \
                  are inside OrdF64's own impl, marked with \
                  `// acqp-lint: allow(float-partial-cmp): <reason>`.",
    },
    RuleInfo {
        id: "metric-taxonomy",
        severity: Severity::Error,
        summary:
            "every Recorder dot-path must appear in DESIGN.md §8's taxonomy table, and vice versa",
        explain: "The observability taxonomy (PR 2) is a contract: CI smoke tests, bench JSON \
                  artifacts and downstream dashboards parse these names. This rule collects \
                  every dot-path string literal passed to Recorder::counter/float_counter/\
                  hist/gauge/span (including through format!, with `{…}` normalized to `<*>`) \
                  plus every flight-recorder event name (the third argument of \
                  FlightRecorder::emit/emit_owned, documented as kind `event` — DESIGN.md \
                  §13) and checks them against the table between the acqp-lint:taxonomy \
                  markers in DESIGN.md §8 — in both directions, so documentation can neither \
                  lag nor lead the code. Rows of kind `span-child` document child-span paths \
                  that are assembled at runtime and are exempt from the source-side check.",
    },
    RuleInfo {
        id: "duplicate-bench-writer",
        severity: Severity::Advisory,
        summary: "bench artifact (BENCH_*.json) stamping belongs in acqp-bench/src/report.rs",
        explain: "Every bench emits its machine-readable artifact through \
                  acqp_bench::report::emit_bench_json, so artifact naming, number formatting \
                  and error handling stay in one place. A second `fn write_bench_json` or a \
                  stray `BENCH_`-prefixed literal outside report.rs means the helper is being \
                  re-grown in place — call the shared one instead. Advisory: reported, but \
                  does not fail the lint.",
    },
    RuleInfo {
        id: "unchecked-wire-access",
        severity: Severity::Error,
        summary: "wire-format decoders must use slice patterns or .get(), not scalar indexing",
        explain: "The plan wire format and the persistence frames are parsed from untrusted \
                  bytes: checkpoint files survive torn writes, and the static verifier's whole \
                  job (PR 10) is rejecting corrupt plans with typed errors. A scalar index \
                  expression (`buf[pos]`) in decode code panics on truncated input — the exact \
                  failure the BadWireFormat/VerifyError paths exist to prevent. Destructure \
                  with slice patterns (`let [tag, rest @ ..] = …`) or call `.get(..)` and \
                  handle `None`. Range slicing (`buf[a..b]`) is exempt: it is the idiom \
                  directly after an explicit length check, and a panic there is caught by the \
                  same length discipline. acqp-persist/src/codec.rs, the one sanctioned \
                  bounds-checked reader, is exempt wholesale. Suppress with \
                  `// acqp-lint: allow(unchecked-wire-access): <why the index is in bounds>`.",
    },
    RuleInfo {
        id: "bare-allow",
        severity: Severity::Error,
        summary: "every acqp-lint allow comment must carry a reason",
        explain: "Suppressions are part of the invariant record: an allow without a reason \
                  cannot be audited or re-litigated when the code changes. Write \
                  `// acqp-lint: allow(<rule>): <one-line reason>`.",
    },
    RuleInfo {
        id: "unknown-allow",
        severity: Severity::Error,
        summary: "allow comments must name an existing rule",
        explain: "An allow naming a rule that does not exist suppresses nothing and usually \
                  means a typo is silently disarming a real suppression. Check the id against \
                  `acqp-lint --rules`.",
    },
    RuleInfo {
        id: "unused-allow",
        severity: Severity::Advisory,
        summary: "allow comments that suppress nothing should be removed",
        explain: "A suppression that no longer matches a finding is stale documentation: the \
                  violating code moved or was fixed. Remove the comment so the next reader \
                  does not assume the violation is still there.",
    },
];

/// Looks up a rule by id.
pub fn rule_info(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == id)
}

/// Whether `relpath` is test/bench/example code, exempt from the
/// library-code rules.
pub fn is_test_path(relpath: &str) -> bool {
    let p = relpath;
    p.starts_with("tests/")
        || p.contains("/tests/")
        || p.starts_with("benches/")
        || p.contains("/benches/")
        || p.starts_with("examples/")
        || p.contains("/examples/")
        || p.ends_with("build.rs")
}

/// Deterministic-path crates covered by `nondeterministic-iteration`.
pub(crate) fn in_deterministic_scope(relpath: &str) -> bool {
    [
        "crates/acqp-core/src/",
        "crates/acqp-gm/src/",
        "crates/acqp-sensornet/src/",
        "crates/acqp-persist/src/",
        "crates/acqp-verify/src/",
    ]
    .iter()
    .any(|p| relpath.starts_with(p))
}

/// Paths covered by `panic-in-lib`: planner, recovery and verifier code.
pub(crate) fn in_panic_scope(relpath: &str) -> bool {
    relpath.starts_with("crates/acqp-core/src/planner/")
        || relpath.starts_with("crates/acqp-persist/src/")
        || relpath.starts_with("crates/acqp-verify/src/")
        || relpath == "crates/acqp-sensornet/src/recovery.rs"
}

/// Paths covered by `unchecked-wire-access`: code that parses the plan
/// wire format or the persistence frames from raw bytes. codec.rs is
/// the sanctioned bounds-checked reader and is exempt.
pub(crate) fn in_wire_scope(relpath: &str) -> bool {
    (relpath.starts_with("crates/acqp-persist/src/")
        && relpath != "crates/acqp-persist/src/codec.rs")
        || relpath == "crates/acqp-core/src/plan.rs"
        || relpath == "crates/acqp-sensornet/src/interp.rs"
        || relpath.starts_with("crates/acqp-verify/src/")
        || relpath.rsplit('/').next().is_some_and(|f| f.contains("wire"))
}

/// One file's lint context.
pub struct FileCtx<'a> {
    /// Workspace-relative path with `/` separators.
    pub relpath: &'a str,
    /// Raw source.
    pub source: &'a str,
    /// Lexed view.
    pub scan: &'a ScannedFile,
}

impl FileCtx<'_> {
    fn finding(
        &self,
        rule: &'static str,
        severity: Severity,
        line: usize,
        message: String,
    ) -> Finding {
        Finding {
            rule,
            severity,
            file: self.relpath.to_string(),
            line,
            snippet: self.scan.line_text(self.source, line).to_string(),
            message,
        }
    }
}

/// Byte offsets of every occurrence of `pat` in `hay` that is not
/// embedded in a longer identifier (checked when the pattern starts or
/// ends with an identifier character).
pub(crate) fn occurrences(hay: &str, pat: &str) -> Vec<usize> {
    let bytes = hay.as_bytes();
    let first_ident =
        pat.as_bytes().first().is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_');
    let last_ident = pat.as_bytes().last().is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_');
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(p) = hay[from..].find(pat) {
        let at = from + p;
        from = at + 1;
        if first_ident && at > 0 {
            let prev = bytes[at - 1];
            if prev.is_ascii_alphanumeric() || prev == b'_' {
                continue;
            }
        }
        if last_ident {
            if let Some(&next) = bytes.get(at + pat.len()) {
                if next.is_ascii_alphanumeric() || next == b'_' {
                    continue;
                }
            }
        }
        out.push(at);
    }
    out
}

/// Runs one pattern list as a rule over a file, honouring test regions
/// and allow comments. `used_allow_lines` collects the lines of allow
/// comments that actually suppressed something.
fn pattern_rule(
    ctx: &FileCtx<'_>,
    rule: &'static str,
    patterns: &[&str],
    message: impl Fn(&str) -> String,
    findings: &mut Vec<Finding>,
    used_allow_lines: &mut Vec<usize>,
) {
    for pat in patterns {
        for at in occurrences(&ctx.scan.masked, pat) {
            if ctx.scan.in_test_code(at) {
                continue;
            }
            let line = ctx.scan.line_of(at);
            if let Some(allow) = ctx.scan.allow_for(rule, line) {
                used_allow_lines.push(allow.line);
                continue;
            }
            findings.push(ctx.finding(rule, Severity::Error, line, message(pat)));
        }
    }
}

/// Runs every per-file rule. Returns the findings plus the lines of
/// allow comments that suppressed at least one of them.
pub fn check_file(ctx: &FileCtx<'_>) -> (Vec<Finding>, Vec<usize>) {
    let mut findings = Vec::new();
    let mut used = Vec::new();
    let lib = !is_test_path(ctx.relpath);

    if lib && !ctx.relpath.ends_with("planner/budget.rs") {
        pattern_rule(
            ctx,
            "wallclock-in-planner",
            &["Instant::now", "SystemTime::now"],
            |p| {
                format!("{p} outside planner/budget.rs — wall-clock reads make search behaviour load-dependent; use planner::budget (SearchLimits/Deadline)")
            },
            &mut findings,
            &mut used,
        );
    }

    if lib && in_deterministic_scope(ctx.relpath) {
        pattern_rule(
            ctx,
            "nondeterministic-iteration",
            &["HashMap", "HashSet"],
            |p| {
                format!("std {p} in a deterministic result path — iteration order is randomly seeded; use BTreeMap/BTreeSet")
            },
            &mut findings,
            &mut used,
        );
    }

    if lib && ctx.relpath != "crates/acqp-core/src/sync.rs" {
        check_raw_mutex(ctx, &mut findings, &mut used);
    }

    if lib && in_panic_scope(ctx.relpath) {
        pattern_rule(
            ctx,
            "panic-in-lib",
            &[".unwrap()", ".expect(", "panic!", "unreachable!", "todo!", "unimplemented!"],
            |p| {
                format!("{p} in an infallible-by-construction path — return an error or degrade instead of panicking")
            },
            &mut findings,
            &mut used,
        );
    }

    if lib {
        pattern_rule(
            ctx,
            "float-partial-cmp",
            &[".partial_cmp("],
            |_| {
                "partial_cmp is not a total order (NaN ⇒ None) — compare through planner::OrdF64"
                    .to_string()
            },
            &mut findings,
            &mut used,
        );
    }

    if ctx.relpath != "crates/acqp-bench/src/report.rs" {
        check_duplicate_bench_writer(ctx, &mut findings, &mut used);
    }

    if lib && in_wire_scope(ctx.relpath) {
        check_unchecked_wire_access(ctx, &mut findings, &mut used);
    }

    check_allow_hygiene(ctx, &mut findings);
    (findings, used)
}

/// `raw-mutex`: fully qualified `std::sync::Mutex` paths plus `use
/// std::sync::…` imports that bring in the bare `Mutex` name.
fn check_raw_mutex(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>, used: &mut Vec<usize>) {
    const RULE: &str = "raw-mutex";
    let masked = &ctx.scan.masked;
    let mut sites: Vec<usize> = occurrences(masked, "std::sync::Mutex");
    // Grouped imports (`use std::sync::{Arc, Mutex}`) never contain the
    // qualified path the scan above looks for; inspect the statement.
    for at in occurrences(masked, "use std::sync::") {
        let stmt_end = masked[at..].find(';').map_or(masked.len(), |p| at + p);
        let stmt = &masked[at..stmt_end];
        if !stmt.contains('{') {
            continue; // plain import — already caught as a qualified path
        }
        if let Some(rel) = occurrences(stmt, "Mutex").first() {
            sites.push(at + rel);
        }
    }
    sites.sort_unstable();
    sites.dedup();
    for at in sites {
        if ctx.scan.in_test_code(at) {
            continue;
        }
        let line = ctx.scan.line_of(at);
        if let Some(allow) = ctx.scan.allow_for(RULE, line) {
            used.push(allow.line);
            continue;
        }
        findings.push(ctx.finding(
            RULE,
            Severity::Error,
            line,
            "std::sync::Mutex poisons on panic — use acqp_core::sync::NoPoisonMutex".to_string(),
        ));
    }
}

/// `duplicate-bench-writer`: a re-grown writer function or a stray
/// `BENCH_` artifact literal outside `acqp-bench/src/report.rs`.
fn check_duplicate_bench_writer(
    ctx: &FileCtx<'_>,
    findings: &mut Vec<Finding>,
    used: &mut Vec<usize>,
) {
    const RULE: &str = "duplicate-bench-writer";
    let mut sites: Vec<usize> =
        occurrences(&ctx.scan.masked, "fn write_bench_json").into_iter().collect();
    for lit in &ctx.scan.strings {
        // acqp-lint: allow(duplicate-bench-writer): this is the rule's own detection pattern
        if lit.content.starts_with("BENCH_") {
            sites.push(lit.start);
        }
    }
    sites.sort_unstable();
    for at in sites {
        if ctx.scan.in_test_code(at) {
            continue;
        }
        let line = ctx.scan.line_of(at);
        if let Some(allow) = ctx.scan.allow_for(RULE, line) {
            used.push(allow.line);
            continue;
        }
        findings.push(ctx.finding(
            RULE,
            Severity::Advisory,
            line,
            "bench artifact stamping outside acqp-bench/src/report.rs — call report::emit_bench_json".to_string(),
        ));
    }
}

/// `unchecked-wire-access`: a scalar index expression (`buf[pos]`) in
/// wire-parsing code. Range slicing (`buf[a..b]`, `buf[..n]`) is exempt
/// — see the rule's `explain`.
fn check_unchecked_wire_access(
    ctx: &FileCtx<'_>,
    findings: &mut Vec<Finding>,
    used: &mut Vec<usize>,
) {
    const RULE: &str = "unchecked-wire-access";
    let masked = ctx.scan.masked.as_bytes();
    for i in 1..masked.len() {
        if masked[i] != b'[' || !(masked[i - 1].is_ascii_alphanumeric() || masked[i - 1] == b'_') {
            continue;
        }
        let Some(end) = crate::scan::match_delim(masked, i, b'[', b']') else { continue };
        let content = ctx.scan.masked[i + 1..end - 1].trim();
        // `buf[a..b]` is range slicing; an empty index never parses.
        if content.is_empty() || content.contains("..") {
            continue;
        }
        if ctx.scan.in_test_code(i) {
            continue;
        }
        let line = ctx.scan.line_of(i);
        if let Some(allow) = ctx.scan.allow_for(RULE, line) {
            used.push(allow.line);
            continue;
        }
        findings.push(ctx.finding(
            RULE,
            Severity::Error,
            line,
            format!(
                "scalar index `[{content}]` in wire-parsing code panics on truncated input — use a slice pattern or .get()"
            ),
        ));
    }
}

/// Meta rules over the suppression comments themselves.
fn check_allow_hygiene(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    for allow in &ctx.scan.allows {
        if rule_info(&allow.rule).is_none() {
            findings.push(ctx.finding(
                "unknown-allow",
                Severity::Error,
                allow.line,
                format!("allow names unknown rule `{}` — see acqp-lint --rules", allow.rule),
            ));
        } else if allow.reason.is_empty() {
            findings.push(ctx.finding(
                "bare-allow",
                Severity::Error,
                allow.line,
                format!(
                    "allow({}) carries no reason — write `// acqp-lint: allow({}): <why>`",
                    allow.rule, allow.rule
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(relpath: &str, src: &str) -> Vec<Finding> {
        let scan = ScannedFile::new(src);
        let ctx = FileCtx { relpath, source: src, scan: &scan };
        check_file(&ctx).0
    }

    #[test]
    fn word_boundaries_hold() {
        assert_eq!(occurrences("HashMap NoHashMap HashMapX x::HashMap", "HashMap"), vec![0, 30]);
        assert_eq!(occurrences("a.partial_cmp(b)", ".partial_cmp("), vec![1]);
    }

    #[test]
    fn qualified_mutex_and_grouped_import_both_flag() {
        let f = run("crates/acqp-obs/src/fake.rs", "use std::sync::{Arc, Mutex};\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "raw-mutex");
        let f = run("crates/acqp-bench/src/fake.rs", "let c = std::sync::Mutex::new(());\n");
        assert_eq!(f.len(), 1);
        let f = run(
            "x/src/a.rs",
            "use std::sync::{Arc, MutexGuard, PoisonError};\nuse crate::NoPoisonMutex;\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn sync_rs_is_exempt_from_raw_mutex() {
        let f = run("crates/acqp-core/src/sync.rs", "use std::sync::{Mutex, MutexGuard};\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn allow_with_reason_suppresses_and_bare_allow_flags() {
        let src = "use std::sync::Mutex; // acqp-lint: allow(raw-mutex): dependency root\n";
        assert!(run("crates/x/src/a.rs", src).is_empty());
        let src = "use std::sync::Mutex; // acqp-lint: allow(raw-mutex)\n";
        let f = run("crates/x/src/a.rs", src);
        assert_eq!(f.iter().map(|f| f.rule).collect::<Vec<_>>(), vec!["bare-allow"]);
    }

    #[test]
    fn unknown_allow_flags() {
        let f = run("crates/x/src/a.rs", "// acqp-lint: allow(no-such-rule): because\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "unknown-allow");
    }
}
