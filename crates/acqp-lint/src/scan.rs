//! Comment/string/char-literal-aware Rust source scanner.
//!
//! acqp-lint deliberately avoids a real parser — `syn` would be an
//! external dependency, and the build environment has no registry
//! access — so this module lexes just enough of Rust's surface syntax
//! to answer three questions *exactly*:
//!
//! 1. which bytes are code (as opposed to comment, string or char
//!    literal), so `HashMap` in a doc comment or `".unwrap()"` in a
//!    string never trips a pattern rule;
//! 2. which string literals exist, where, and with what content, so
//!    the `metric-taxonomy` rule can collect `Recorder` dot-paths;
//! 3. which byte ranges belong to `#[cfg(test)]` items, so test-only
//!    code is exempt from the library-code rules.
//!
//! The scanner handles line and (nested) block comments, doc comments,
//! plain/byte/raw string literals (any `#` count), char and byte-char
//! literals, and distinguishes lifetimes from char literals.

/// One string literal found in a source file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrLit {
    /// Byte offset of the opening quote (or `r`/`b` prefix).
    pub start: usize,
    /// 1-based line of the opening quote.
    pub line: usize,
    /// Literal content, escapes left as written.
    pub content: String,
}

/// One `acqp-lint: allow(<rule>)` suppression comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// 1-based line the comment sits on.
    pub line: usize,
    /// The rule id inside `allow(...)`.
    pub rule: String,
    /// The justification after `allow(rule):`, trimmed. Empty when the
    /// comment carries no reason — itself a finding (`bare-allow`).
    pub reason: String,
}

/// A lexed source file: the mask plus everything extracted on the way.
#[derive(Debug)]
pub struct ScannedFile {
    /// Source with every comment, string and char literal blanked to
    /// spaces. Newlines are preserved, so byte offsets and line numbers
    /// in the mask match the original text exactly.
    pub masked: String,
    /// Every string literal, in file order.
    pub strings: Vec<StrLit>,
    /// Half-open byte ranges covered by `#[cfg(test)]` items.
    pub test_regions: Vec<(usize, usize)>,
    /// Suppression comments, in file order.
    pub allows: Vec<Allow>,
    /// Byte offset of each line start (index 0 = line 1).
    line_starts: Vec<usize>,
}

impl ScannedFile {
    /// Lexes `source` into a scanned file.
    pub fn new(source: &str) -> ScannedFile {
        let mut masked = source.as_bytes().to_vec();
        let mut strings = Vec::new();
        let mut comments = Vec::new();
        lex(source.as_bytes(), &mut masked, &mut strings, &mut comments);
        // The mask only ever replaces bytes with ASCII spaces, so it
        // stays valid UTF-8 even when multi-byte chars are blanked.
        let masked = String::from_utf8(masked).unwrap_or_default();
        let line_starts = line_starts(source);
        let mut out = ScannedFile {
            test_regions: find_test_regions(masked.as_bytes()),
            allows: find_allows(source, &comments, &line_starts),
            masked,
            line_starts,
            strings: Vec::new(),
        };
        for s in &mut strings {
            s.line = out.line_of(s.start);
        }
        out.strings = strings;
        out
    }

    /// 1-based line containing byte `offset`.
    pub fn line_of(&self, offset: usize) -> usize {
        self.line_starts.partition_point(|&s| s <= offset)
    }

    /// Whether byte `offset` falls inside a `#[cfg(test)]` item.
    pub fn in_test_code(&self, offset: usize) -> bool {
        self.test_regions.iter().any(|&(a, b)| (a..b).contains(&offset))
    }

    /// The trimmed source line at 1-based `line`, for snippets.
    pub fn line_text<'a>(&self, source: &'a str, line: usize) -> &'a str {
        let start = self.line_starts[line - 1];
        let end = self.line_starts.get(line).map_or(source.len(), |&e| e);
        source[start..end].trim_end_matches('\n').trim()
    }

    /// The allow entry suppressing rule `rule` at `line`, if any: the
    /// comment may share the line or sit on the line directly above.
    pub fn allow_for(&self, rule: &str, line: usize) -> Option<&Allow> {
        self.allows.iter().find(|a| a.rule == rule && (a.line == line || a.line + 1 == line))
    }
}

fn line_starts(source: &str) -> Vec<usize> {
    let mut starts = vec![0usize];
    for (i, b) in source.bytes().enumerate() {
        if b == b'\n' {
            starts.push(i + 1);
        }
    }
    starts
}

/// Blanks byte `i..j` of the mask, keeping newlines.
fn blank(masked: &mut [u8], range: std::ops::Range<usize>) {
    for b in &mut masked[range] {
        if *b != b'\n' {
            *b = b' ';
        }
    }
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Core lexer: walks `src`, blanking comments/strings/chars in
/// `masked`, pushing string literals (line numbers filled later) and
/// comment byte ranges.
fn lex(
    src: &[u8],
    masked: &mut [u8],
    strings: &mut Vec<StrLit>,
    comments: &mut Vec<(usize, usize)>,
) {
    let mut i = 0usize;
    while i < src.len() {
        let b = src[i];
        match b {
            b'/' if src.get(i + 1) == Some(&b'/') => {
                let end = src[i..].iter().position(|&b| b == b'\n').map_or(src.len(), |p| i + p);
                blank(masked, i..end);
                comments.push((i, end));
                i = end;
            }
            b'/' if src.get(i + 1) == Some(&b'*') => {
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < src.len() && depth > 0 {
                    if src[j] == b'/' && src.get(j + 1) == Some(&b'*') {
                        depth += 1;
                        j += 2;
                    } else if src[j] == b'*' && src.get(j + 1) == Some(&b'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                blank(masked, i..j);
                comments.push((i, j));
                i = j;
            }
            b'"' => i = lex_string(src, masked, strings, i, i),
            b'r' | b'b' if !prev_is_ident(src, i) => {
                if let Some(next) = raw_or_byte_literal(src, i) {
                    i = next(src, masked, strings, i);
                } else {
                    i += 1;
                }
            }
            b'\'' => i = lex_char_or_lifetime(src, masked, i),
            _ => i += 1,
        }
    }
}

fn prev_is_ident(src: &[u8], i: usize) -> bool {
    i > 0 && is_ident(src[i - 1])
}

type LitLexer = fn(&[u8], &mut [u8], &mut Vec<StrLit>, usize) -> usize;

/// Dispatches `r"`, `r#`, `b"`, `br`, `b'` prefixes at `i`, or `None`
/// when `i` starts a plain identifier.
fn raw_or_byte_literal(src: &[u8], i: usize) -> Option<LitLexer> {
    match (src[i], src.get(i + 1)) {
        (b'r', Some(b'"' | b'#')) => Some(lex_raw_from_prefix),
        (b'b', Some(b'"')) => Some(|s, m, out, i| lex_string(s, m, out, i, i + 1)),
        (b'b', Some(b'r')) if matches!(src.get(i + 2), Some(b'"' | b'#')) => {
            Some(|s, m, out, i| lex_raw(s, m, out, i, i + 2))
        }
        (b'b', Some(b'\'')) => Some(|s, m, _out, i| lex_byte_char(s, m, i)),
        _ => None,
    }
}

fn lex_raw_from_prefix(src: &[u8], masked: &mut [u8], out: &mut Vec<StrLit>, i: usize) -> usize {
    lex_raw(src, masked, out, i, i + 1)
}

/// Lexes a plain or byte string whose opening quote is at `quote`;
/// `start` is where the literal began (`b` prefix included).
fn lex_string(
    src: &[u8],
    masked: &mut [u8],
    out: &mut Vec<StrLit>,
    start: usize,
    quote: usize,
) -> usize {
    let mut j = quote + 1;
    while j < src.len() {
        match src[j] {
            b'\\' => j += 2,
            b'"' => break,
            _ => j += 1,
        }
    }
    let end = (j + 1).min(src.len());
    out.push(StrLit {
        start,
        line: 0,
        content: String::from_utf8_lossy(&src[quote + 1..j.min(src.len())]).into_owned(),
    });
    blank(masked, start..end);
    end
}

/// Lexes a raw string starting at `start` whose `#`/quote run begins at
/// `hashes_at` (after the `r` / `br` prefix).
fn lex_raw(
    src: &[u8],
    masked: &mut [u8],
    out: &mut Vec<StrLit>,
    start: usize,
    hashes_at: usize,
) -> usize {
    let mut h = 0usize;
    while src.get(hashes_at + h) == Some(&b'#') {
        h += 1;
    }
    let quote = hashes_at + h;
    if src.get(quote) != Some(&b'"') {
        return start + 1; // `r#[cfg]`-style attribute syntax, not a string
    }
    let body_start = quote + 1;
    let mut j = body_start;
    let end = loop {
        match src[j..].iter().position(|&b| b == b'"') {
            None => break src.len(),
            Some(p) => {
                let q = j + p;
                if src[q + 1..].len() >= h && src[q + 1..q + 1 + h].iter().all(|&b| b == b'#') {
                    break q + 1 + h;
                }
                j = q + 1;
            }
        }
    };
    let body_end = end.saturating_sub(1 + h).max(body_start);
    out.push(StrLit {
        start,
        line: 0,
        content: String::from_utf8_lossy(&src[body_start..body_end]).into_owned(),
    });
    blank(masked, start..end);
    end
}

/// Lexes `'x'` / `'\n'` char literals; leaves lifetimes (`'a`) alone.
fn lex_char_or_lifetime(src: &[u8], masked: &mut [u8], i: usize) -> usize {
    match src.get(i + 1) {
        Some(b'\\') => {
            let mut j = i + 2;
            while j < src.len() && src[j] != b'\'' {
                j += 1;
            }
            let end = (j + 1).min(src.len());
            blank(masked, i..end);
            end
        }
        Some(&c) => {
            // One UTF-8 char then a closing quote ⇒ char literal;
            // anything else is a lifetime or loop label.
            let ch_len = match c {
                0x00..=0x7f => 1,
                0xc0..=0xdf => 2,
                0xe0..=0xef => 3,
                _ => 4,
            };
            if src.get(i + 1 + ch_len) == Some(&b'\'') {
                let end = i + 2 + ch_len;
                blank(masked, i..end);
                end
            } else {
                i + 1
            }
        }
        None => i + 1,
    }
}

fn lex_byte_char(src: &[u8], masked: &mut [u8], i: usize) -> usize {
    // `b'` then either an escape or a single byte, then `'`.
    let mut j = i + 2;
    if src.get(j) == Some(&b'\\') {
        j += 2;
    } else {
        j += 1;
    }
    let end = (j + 1).min(src.len());
    blank(masked, i..end);
    end
}

/// Finds `#[cfg(test)]`-guarded items in already-masked source and
/// returns the byte range of each (attribute through closing brace or
/// semicolon). Works on the mask so braces inside strings or comments
/// cannot unbalance the match.
fn find_test_regions(masked: &[u8]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i + 1 < masked.len() {
        if masked[i] != b'#' || masked[i + 1] != b'[' {
            i += 1;
            continue;
        }
        let attr_start = i;
        let Some(attr_end) = match_delim(masked, i + 1, b'[', b']') else { break };
        let attr = &masked[i + 2..attr_end - 1];
        i = attr_end;
        if !contains(attr, b"cfg(test") && !contains(attr, b"cfg(all(test") {
            continue;
        }
        // Skip whitespace and any further attributes to the guarded
        // item, then to its body.
        let mut j = attr_end;
        loop {
            while j < masked.len() && masked[j].is_ascii_whitespace() {
                j += 1;
            }
            if j + 1 < masked.len() && masked[j] == b'#' && masked[j + 1] == b'[' {
                match match_delim(masked, j + 1, b'[', b']') {
                    Some(e) => j = e,
                    None => return regions,
                }
            } else {
                break;
            }
        }
        let body = masked[j..].iter().position(|&b| b == b'{' || b == b';').map(|p| j + p);
        let end = match body {
            Some(p) if masked[p] == b';' => p + 1,
            Some(p) => match match_delim(masked, p, b'{', b'}') {
                Some(e) => e,
                None => masked.len(),
            },
            None => masked.len(),
        };
        regions.push((attr_start, end));
        i = attr_end;
    }
    regions
}

/// Byte offset one past the delimiter closing the one at `open_at`.
pub(crate) fn match_delim(masked: &[u8], open_at: usize, open: u8, close: u8) -> Option<usize> {
    let mut depth = 0usize;
    for (k, &b) in masked.iter().enumerate().skip(open_at) {
        if b == open {
            depth += 1;
        } else if b == close {
            depth -= 1;
            if depth == 0 {
                return Some(k + 1);
            }
        }
    }
    None
}

fn contains(haystack: &[u8], needle: &[u8]) -> bool {
    haystack.windows(needle.len()).any(|w| w == needle)
}

/// Extracts `// acqp-lint: allow(rule): reason` comments. The marker
/// must sit inside an actual comment (ranges come from the lexer), so
/// a string literal spelling the marker cannot suppress anything. Doc
/// comments don't count either: a suppression is a directive, not
/// documentation, and docs should be free to *describe* the syntax.
fn find_allows(source: &str, comments: &[(usize, usize)], line_starts: &[usize]) -> Vec<Allow> {
    const MARKER: &str = "acqp-lint: allow(";
    let mut allows = Vec::new();
    for &(start, end) in comments {
        let text = &source[start..end.min(source.len())];
        if ["///", "//!", "/**", "/*!"].iter().any(|d| text.starts_with(d)) {
            continue;
        }
        let Some(at) = text.find(MARKER) else { continue };
        let rest = &text[at + MARKER.len()..];
        let Some(close) = rest.find(')') else { continue };
        let rule = rest[..close].trim().to_string();
        let after = rest[close + 1..].lines().next().unwrap_or("").trim();
        let reason = after.strip_prefix(':').map(str::trim).unwrap_or("").to_string();
        let line = line_starts.partition_point(|&s| s <= start + at);
        allows.push(Allow { line, rule, reason });
    }
    allows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked() {
        let src = r#"
let a = "Instant::now() in a string";
// Instant::now() in a line comment
/* Instant::now() in a block /* nested */ comment */
/// Doc comment: HashMap<K, V>
let b = a; // trailing
"#;
        let f = ScannedFile::new(src);
        assert!(!f.masked.contains("Instant::now"));
        assert!(!f.masked.contains("HashMap"));
        assert!(f.masked.contains("let a ="));
        assert!(f.masked.contains("let b = a;"));
        assert_eq!(f.masked.len(), src.len());
        assert_eq!(f.strings.len(), 1);
        assert_eq!(f.strings[0].content, "Instant::now() in a string");
        assert_eq!(f.strings[0].line, 2);
    }

    #[test]
    fn raw_and_byte_strings_are_blanked() {
        let src = r##"let x = r#"raw "quoted" HashMap"#; let y = b"bytes"; let z = br#"raw"#;"##;
        let f = ScannedFile::new(src);
        assert!(!f.masked.contains("HashMap"));
        assert!(!f.masked.contains("bytes"));
        assert!(f.masked.contains("let y ="));
        assert_eq!(f.strings.len(), 3);
        assert_eq!(f.strings[0].content, r#"raw "quoted" HashMap"#);
    }

    #[test]
    fn char_literals_blank_but_lifetimes_survive() {
        let src = "fn f<'a>(x: &'a str) -> char { let c = '{'; let d = '\\n'; c }";
        let f = ScannedFile::new(src);
        assert!(f.masked.contains("fn f<'a>(x: &'a str)"));
        assert!(!f.masked.contains("'{'"));
        // The masked `{` inside the char literal must not unbalance
        // brace matching: the fn body still closes.
        assert!(f.masked.trim_end().ends_with('}'));
    }

    #[test]
    fn cfg_test_regions_cover_mod_bodies() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let f = ScannedFile::new(src);
        assert_eq!(f.test_regions.len(), 1);
        let unwrap_at = src.find(".unwrap").expect("fixture");
        assert!(f.in_test_code(unwrap_at));
        assert!(!f.in_test_code(src.find("fn lib").expect("fixture")));
        assert!(!f.in_test_code(src.find("fn after").expect("fixture")));
    }

    #[test]
    fn cfg_test_with_extra_attribute_and_strings_with_braces() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod t { const S: &str = \"}\"; fn u() { v.unwrap() } }\nfn real() {}\n";
        let f = ScannedFile::new(src);
        let unwrap_at = src.find(".unwrap").expect("fixture");
        assert!(f.in_test_code(unwrap_at));
        assert!(!f.in_test_code(src.find("fn real").expect("fixture")));
    }

    #[test]
    fn allows_parse_rule_and_reason() {
        let src = "let m = std::sync::Mutex::new(()); // acqp-lint: allow(raw-mutex): dependency root\n// acqp-lint: allow(panic-in-lib)\nx.unwrap();\nlet s = \"acqp-lint: allow(raw-mutex): not a comment\";\n/// Doc text describing acqp-lint: allow(raw-mutex): not a directive\nfn g() {}\n";
        let f = ScannedFile::new(src);
        assert_eq!(f.allows.len(), 2, "string literals and doc comments are not suppressions");
        assert_eq!(f.allows[0].rule, "raw-mutex");
        assert_eq!(f.allows[0].reason, "dependency root");
        assert_eq!(f.allows[1].rule, "panic-in-lib");
        assert_eq!(f.allows[1].reason, "");
        assert!(f.allow_for("raw-mutex", 1).is_some());
        assert!(f.allow_for("panic-in-lib", 3).is_some(), "allow on preceding line applies");
        assert!(f.allow_for("raw-mutex", 4).is_none(), "string literal is not a suppression");
    }

    #[test]
    fn line_numbers_are_exact() {
        let src = "a\nb\nc Instant::now()\n";
        let f = ScannedFile::new(src);
        assert_eq!(f.line_of(src.find("Instant").expect("fixture")), 3);
    }
}
