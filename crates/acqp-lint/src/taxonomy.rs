//! The `metric-taxonomy` rule: DESIGN.md §8's table is the contract.
//!
//! Source side, every dot-path string literal handed to a
//! `Recorder` method (`counter`, `float_counter`, `hist`, `gauge`,
//! `span` — directly or through `format!`) is collected, with `{…}`
//! interpolations normalized to the `<*>` wildcard. Flight-recorder
//! event names — the third argument of `FlightRecorder::emit` /
//! `emit_owned` — are collected the same way and documented as rows of
//! kind `event` (DESIGN.md §13). Doc side, the markdown table between
//! the `acqp-lint:taxonomy:begin/end` markers in DESIGN.md is parsed
//! into patterns. The rule then checks both directions: no emitted
//! name may be undocumented, and no documented name may be dead —
//! except rows of kind `span-child`, which describe paths assembled at
//! runtime (`span.child("warm")`) and are covered by the runtime
//! round-trip test instead.

use crate::scan::ScannedFile;

/// Comment markers delimiting the canonical table in DESIGN.md.
pub const BEGIN_MARKER: &str = "<!-- acqp-lint:taxonomy:begin -->";
/// See [`BEGIN_MARKER`].
pub const END_MARKER: &str = "<!-- acqp-lint:taxonomy:end -->";

/// Recorder methods whose first argument names a metric.
const METHODS: &[&str] = &[".counter(", ".float_counter(", ".hist(", ".gauge(", ".span("];

/// One metric name found at a Recorder call site.
#[derive(Debug, Clone)]
pub struct MetricEmit {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the literal.
    pub line: usize,
    /// The literal as written (`exec.pred{j}.passed`).
    pub raw: String,
    /// With `{…}` replaced by `<*>` (`exec.pred<*>.passed`).
    pub normalized: String,
    /// Trimmed source line, for snippets.
    pub snippet: String,
    /// Line of a `// acqp-lint: allow(metric-taxonomy)` comment
    /// covering this emit, if any.
    pub allowed_at: Option<usize>,
}

/// One row of the DESIGN.md taxonomy table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaxonomyEntry {
    /// Name pattern, `<*>` as a within-segment wildcard.
    pub pattern: String,
    /// Instrument kind (`counter`, `gauge`, `hist`, `float_counter`,
    /// `span`, `span-child`).
    pub kind: String,
    /// 1-based line of the row in DESIGN.md.
    pub line: usize,
}

/// Collects every metric name emitted by non-test code in one file.
pub fn collect_metric_emits(relpath: &str, source: &str, scan: &ScannedFile) -> Vec<MetricEmit> {
    let mut out = Vec::new();
    for lit in &scan.strings {
        if scan.in_test_code(lit.start) || !is_metric_name(&lit.content) {
            continue;
        }
        let prefix = &scan.masked[..lit.start];
        if !is_recorder_call(prefix) && !is_emit_call(prefix) {
            continue;
        }
        out.push(MetricEmit {
            file: relpath.to_string(),
            line: lit.line,
            raw: lit.content.clone(),
            normalized: normalize(&lit.content),
            snippet: scan.line_text(source, lit.line).to_string(),
            allowed_at: scan.allow_for("metric-taxonomy", lit.line).map(|a| a.line),
        });
    }
    out
}

/// A metric name is a lowercase dot-path, possibly with `{…}` format
/// interpolations: `planner.memo.shard{i}.hits`.
fn is_metric_name(s: &str) -> bool {
    if !s.contains('.') || s.starts_with('.') || s.ends_with('.') {
        return false;
    }
    let mut depth = 0usize;
    for c in s.chars() {
        match c {
            '{' => depth += 1,
            '}' => depth = depth.saturating_sub(1),
            _ if depth > 0 => {}
            'a'..='z' | '0'..='9' | '_' | '.' => {}
            _ => return false,
        }
    }
    depth == 0
}

/// Whether the masked text before a literal ends in a Recorder metric
/// method call, directly (`rec.gauge("…`) or through format
/// (`rec.gauge(&format!("…`). Works across line breaks.
fn is_recorder_call(prefix: &str) -> bool {
    let mut p = prefix.trim_end();
    if let Some(stripped) = p.strip_suffix("format!(") {
        p = stripped.trim_end();
        p = p.strip_suffix('&').unwrap_or(p).trim_end();
    }
    METHODS.iter().any(|m| p.ends_with(m))
}

/// Whether the masked text before a literal places it as the *name*
/// argument (third position) of a `FlightRecorder::emit` /
/// `emit_owned` call: the prefix since the call opener must hold
/// exactly two top-level commas (`epoch`, `cause`) and no statement
/// boundary.
fn is_emit_call(prefix: &str) -> bool {
    for marker in [".emit(", ".emit_owned("] {
        let Some(i) = prefix.rfind(marker) else { continue };
        let tail = &prefix[i + marker.len()..];
        let mut depth = 0usize;
        let mut commas = 0usize;
        let mut open = true;
        for c in tail.chars() {
            match c {
                '(' | '[' | '{' => depth += 1,
                ')' | ']' | '}' => {
                    if depth == 0 {
                        open = false;
                        break;
                    }
                    depth -= 1;
                }
                ',' if depth == 0 => commas += 1,
                ';' if depth == 0 => {
                    open = false;
                    break;
                }
                _ => {}
            }
        }
        if open && commas == 2 {
            return true;
        }
    }
    false
}

/// `{…}` → `<*>`.
pub fn normalize(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    let mut depth = 0usize;
    for c in raw.chars() {
        match c {
            '{' => {
                if depth == 0 {
                    out.push_str("<*>");
                }
                depth += 1;
            }
            '}' => depth = depth.saturating_sub(1),
            _ if depth > 0 => {}
            _ => out.push(c),
        }
    }
    out
}

/// Parses the marker-delimited table out of DESIGN.md. Errors if the
/// markers are missing — the contract must exist to be checked.
pub fn parse_taxonomy(design: &str) -> Result<Vec<TaxonomyEntry>, String> {
    let begin =
        design.find(BEGIN_MARKER).ok_or_else(|| format!("DESIGN.md: missing {BEGIN_MARKER}"))?;
    let end = design.find(END_MARKER).ok_or_else(|| format!("DESIGN.md: missing {END_MARKER}"))?;
    if end < begin {
        return Err("DESIGN.md: taxonomy end marker precedes begin marker".to_string());
    }
    let mut entries = Vec::new();
    let first_line = design[..begin].lines().count() + 1;
    for (i, row) in design[begin..end].lines().enumerate() {
        let row = row.trim();
        if !row.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = row.trim_matches('|').split('|').map(str::trim).collect();
        let Some(pattern) =
            cells.first().and_then(|c| c.strip_prefix('`')).and_then(|c| c.strip_suffix('`'))
        else {
            continue; // header or separator row
        };
        entries.push(TaxonomyEntry {
            pattern: pattern.to_string(),
            kind: cells.get(1).unwrap_or(&"").to_string(),
            line: first_line + i,
        });
    }
    if entries.is_empty() {
        return Err("DESIGN.md: taxonomy table between markers has no rows".to_string());
    }
    Ok(entries)
}

/// Segment-wise match of a table pattern against an emitted name.
/// `<*>` wildcards within a segment: `exec.pred<*>.passed` matches
/// `exec.pred0.passed` (and the normalized `exec.pred<*>.passed`).
pub fn pattern_matches(pattern: &str, name: &str) -> bool {
    let ps: Vec<&str> = pattern.split('.').collect();
    let ns: Vec<&str> = name.split('.').collect();
    ps.len() == ns.len() && ps.iter().zip(&ns).all(|(p, n)| segment_matches(p, n))
}

fn segment_matches(p: &str, n: &str) -> bool {
    match p.find("<*>") {
        None => p == n,
        Some(i) => {
            let (pre, suf) = (&p[..i], &p[i + 3..]);
            n.len() >= pre.len() + suf.len() && n.starts_with(pre) && n.ends_with(suf)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn emits(src: &str) -> Vec<MetricEmit> {
        let scan = ScannedFile::new(src);
        collect_metric_emits("crates/x/src/a.rs", src, &scan)
    }

    #[test]
    fn direct_and_format_calls_collect() {
        let src = r#"
fn f(rec: &Recorder) {
    let c = rec.counter("planner.memo.hit");
    rec.gauge(&format!("planner.memo.shard{i}.hits"), 1.0);
    rec.gauge(
        &format!("planner.memo.shard{i}.entries"),
        2.0,
    );
}
"#;
        let e = emits(src);
        assert_eq!(e.len(), 3);
        assert_eq!(e[0].normalized, "planner.memo.hit");
        assert_eq!(e[1].normalized, "planner.memo.shard<*>.hits");
        assert_eq!(e[2].normalized, "planner.memo.shard<*>.entries", "multiline call collects");
    }

    #[test]
    fn flight_emit_names_collect_from_the_third_argument() {
        let src = r#"
fn f(flight: &FlightRecorder) {
    flight.emit(0, 0, "plan.search.start", &[("preds", 2.into())]);
    flight.emit(
        e as u64,
        down_seq,
        "crash.recover",
        &[("cold_start", true.into())],
    );
    let seq = flight.emit_owned(e as u64, root, "epoch.tick", fields);
}
"#;
        let e = emits(src);
        assert_eq!(e.len(), 3, "{e:#?}");
        assert_eq!(e[0].normalized, "plan.search.start");
        assert_eq!(e[1].normalized, "crash.recover", "multiline emit collects");
        assert_eq!(e[2].normalized, "epoch.tick");
    }

    #[test]
    fn emit_field_keys_and_later_arguments_do_not_collect() {
        let src = r#"
fn f(flight: &FlightRecorder) {
    flight.emit(0, 0, "sim.start", &[("a.dotted.key", 1.into())]);
    let far = 1; // an unrelated statement after an emit call
    other("plan.search.end");
}
"#;
        let e = emits(src);
        assert_eq!(e.len(), 1, "{e:#?}");
        assert_eq!(e[0].normalized, "sim.start");
    }

    #[test]
    fn non_metric_literals_are_ignored() {
        let src = r#"
fn f(rec: &Recorder, est: &E) {
    println!("planner.memo.hit");          // not a Recorder call
    rec.counter("no dots here");           // not a dot-path
    let h = est.hist(&root, 0);            // no literal argument
    out.push_str(&format!("  {v:>12.3}")); // format noise, wrong prefix
    let _ = span.child("warm");            // no dot: runtime child path
}
"#;
        assert!(emits(src).is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod t { fn f(r: &R) { r.counter(\"made.up.name\"); } }\n";
        assert!(emits(src).is_empty());
    }

    #[test]
    fn wildcard_matching_is_segment_wise() {
        assert!(pattern_matches("exec.pred<*>.passed", "exec.pred0.passed"));
        assert!(pattern_matches("exec.pred<*>.passed", "exec.pred<*>.passed"));
        assert!(pattern_matches("fallback.descend.<*>.<*>", "fallback.descend.exhaustive.panic"));
        assert!(!pattern_matches("exec.pred<*>.passed", "exec.pred0.evaluated"));
        assert!(!pattern_matches("exec.pred<*>", "exec.pred0.passed"), "segment counts must agree");
        assert!(!pattern_matches("exec.tuples", "exec.outputs"));
        assert!(pattern_matches("exec.tuples", "exec.tuples"));
    }

    #[test]
    fn taxonomy_table_parses_rows_and_lines() {
        let md = "intro\n<!-- acqp-lint:taxonomy:begin -->\n\n| name | kind | meaning |\n|---|---|---|\n| `planner.memo.hit` | counter | memo hits |\n| `planner.exhaustive.warm` | span-child | warm phase |\n<!-- acqp-lint:taxonomy:end -->\n";
        let t = parse_taxonomy(md).expect("parses");
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].pattern, "planner.memo.hit");
        assert_eq!(t[0].kind, "counter");
        assert_eq!(t[0].line, 6);
        assert_eq!(t[1].kind, "span-child");
        assert!(parse_taxonomy("no markers").is_err());
    }
}
