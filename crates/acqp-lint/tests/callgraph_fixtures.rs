//! Pins lint v2 against v1 on the seeded transitive wall-clock case,
//! and both directions of the `unchecked-wire-access` rule.
//!
//! The wall-clock fixture is the exact blind spot the call-graph pass
//! exists for: `budget.rs` is wholesale exempt from the per-file
//! `wallclock-in-planner` rule, so a clock read hidden in a budget.rs
//! helper *outside* the sanctioned `Deadline`/`SearchLimits` impls is
//! invisible to v1 — `rules::check_file` returns nothing for either
//! file — while the workspace pass taints the helper and flags the
//! planner's call site with the witness chain.

use std::path::PathBuf;

use acqp_lint::lint_workspace;
use acqp_lint::rules::{self, FileCtx, Finding};
use acqp_lint::scan::ScannedFile;

/// budget.rs with sanctioned impls plus one sneaky free helper.
const BUDGET: &str = concat!(
    "use std::time::{Duration, Instant};\n\n",
    "pub struct Deadline(Option<Instant>);\n\n",
    "impl Deadline {\n",
    "    pub fn after(budget: Option<Duration>) -> Self {\n",
    "        Deadline(budget.map(|d| Instant::now() + d))\n",
    "    }\n",
    "    pub fn expired(&self) -> bool {\n",
    "        self.0.is_some_and(|d| Instant::now() >= d)\n",
    "    }\n",
    "}\n\n",
    "pub fn sneaky_now() -> Instant {\n",
    "    Instant::now()\n",
    "}\n",
);

/// A planner file calling both the sanctioned impl and the sneaky
/// helper. Only the latter may be flagged. The sneaky call sits on
/// line 2.
const PLANNER: &str = concat!(
    "pub fn search_started() -> std::time::Instant {\n",
    "    sneaky_now()\n",
    "}\n\n",
    "pub fn within_budget(d: &Deadline) -> bool {\n",
    "    !d.expired()\n",
    "}\n",
);

const WIRE_VIOLATING: &str = include_str!("fixtures/wire_access_violating.rs");
const WIRE_CLEAN: &str = include_str!("fixtures/wire_access_clean.rs");

fn per_file(relpath: &str, src: &str) -> Vec<Finding> {
    let scan = ScannedFile::new(src);
    let ctx = FileCtx { relpath, source: src, scan: &scan };
    rules::check_file(&ctx).0
}

#[test]
fn v1_per_file_pass_misses_the_transitive_wallclock() {
    // budget.rs is exempt from the per-file rule wholesale…
    let budget = per_file("crates/acqp-core/src/planner/budget.rs", BUDGET);
    assert!(budget.iter().all(|f| f.rule != "wallclock-in-planner"), "{budget:#?}");
    // …and the planner file contains no clock pattern of its own.
    let planner = per_file("crates/acqp-core/src/planner/search.rs", PLANNER);
    assert!(planner.is_empty(), "{planner:#?}");
}

#[test]
fn v2_workspace_pass_catches_it_with_a_witness_chain() {
    let dir = fake_workspace("wallclock");
    let planner_dir = dir.join("crates/acqp-core/src/planner");
    std::fs::create_dir_all(&planner_dir).unwrap();
    std::fs::write(planner_dir.join("budget.rs"), BUDGET).unwrap();
    std::fs::write(planner_dir.join("search.rs"), PLANNER).unwrap();

    let report = lint_workspace(&dir).expect("lint runs");
    let wc: Vec<&Finding> =
        report.findings.iter().filter(|f| f.rule == "wallclock-in-planner").collect();
    assert_eq!(wc.len(), 1, "{:#?}", report.findings);
    assert_eq!(wc[0].file, "crates/acqp-core/src/planner/search.rs");
    assert_eq!(wc[0].line, 2);
    assert!(wc[0].message.contains("sneaky_now"), "{}", wc[0].message);
    assert!(wc[0].message.contains("Instant::now"), "{}", wc[0].message);
    // The sanctioned Deadline::expired call produced nothing else.
    assert_eq!(report.findings.len(), 1, "{:#?}", report.findings);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unchecked_wire_access_flags_scalar_indexing_in_wire_scope() {
    let f = per_file("crates/acqp-verify/src/decode.rs", WIRE_VIOLATING);
    let wire: Vec<&Finding> = f.iter().filter(|f| f.rule == "unchecked-wire-access").collect();
    assert_eq!(wire.len(), 3, "{f:#?}");
    assert!(wire.iter().all(|f| f.file == "crates/acqp-verify/src/decode.rs"));
    // The same code outside wire scope is not this rule's business.
    let elsewhere = per_file("crates/acqp-core/src/schema.rs", WIRE_VIOLATING);
    assert!(elsewhere.iter().all(|f| f.rule != "unchecked-wire-access"), "{elsewhere:#?}");
}

#[test]
fn slice_pattern_decoders_lint_clean() {
    for relpath in [
        "crates/acqp-verify/src/decode.rs",
        "crates/acqp-persist/src/frames.rs",
        "crates/acqp-sensornet/src/interp.rs",
        "crates/acqp-gm/src/wire_shadow.rs",
    ] {
        let f = per_file(relpath, WIRE_CLEAN);
        assert!(f.is_empty(), "{relpath}: {f:#?}");
    }
    // codec.rs is the sanctioned bounds-checked reader.
    let f = per_file("crates/acqp-persist/src/codec.rs", WIRE_VIOLATING);
    assert!(f.iter().all(|f| f.rule != "unchecked-wire-access"), "{f:#?}");
}

fn fake_workspace(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("acqp_lint_cg_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        dir.join("DESIGN.md"),
        concat!(
            "# fake\n\n<!-- acqp-lint:taxonomy:begin -->\n",
            "| name | kind | meaning |\n|---|---|---|\n",
            "| `fixture.child` | span-child | keeps the table non-empty |\n",
            "<!-- acqp-lint:taxonomy:end -->\n",
        ),
    )
    .unwrap();
    dir
}
