//! Fixture: violations behind justified allow comments (suppressed),
//! plus the three allow-hygiene failure shapes.

pub fn suppressed_same_line(v: Option<u32>) -> u32 {
    v.unwrap() // acqp-lint: allow(panic-in-lib): fixture exercises same-line suppression
}

pub fn suppressed_line_above(a: f64, b: f64) -> Option<std::cmp::Ordering> {
    // acqp-lint: allow(float-partial-cmp): fixture exercises line-above suppression
    a.partial_cmp(&b)
}

// acqp-lint: allow(panic-in-lib)
pub fn bare_allow_is_an_error() {}

// acqp-lint: allow(no-such-rule): the rule id does not exist
pub fn unknown_rule_is_an_error() {}

// acqp-lint: allow(raw-mutex): nothing on the next line uses a mutex
pub fn stale_allow_is_advisory() {}
