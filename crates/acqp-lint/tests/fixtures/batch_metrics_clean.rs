//! Fixture: exactly the documented `exec.batch.*` subtree, one emit per
//! taxonomy row — lints clean in both directions.

pub fn register(rec: &acqp_obs::Recorder) {
    let _ = rec.counter("exec.batch.batches");
    let _ = rec.counter("exec.batch.rows");
    let _ = rec.counter("exec.batch.partitions");
    let _ = rec.hist("exec.batch.fill");
}
