//! Fixture: `exec.batch.*` emits that break the taxonomy contract in
//! both directions. Never compiled — the batch-taxonomy test copies it
//! into a fake workspace and lints it.
//!
//! * `exec.batch.bogus` is emitted but undocumented (code leads docs).
//! * `exec.batch.partitions` is documented in the fake DESIGN.md but
//!   never emitted here (docs lead code — stale row).

pub fn register(rec: &acqp_obs::Recorder) {
    let _ = rec.counter("exec.batch.batches");
    let _ = rec.counter("exec.batch.rows");
    let _ = rec.counter("exec.batch.bogus"); // MARK:undocumented
    let _ = rec.hist("exec.batch.fill");
}
