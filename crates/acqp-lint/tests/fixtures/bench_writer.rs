//! Fixture: a re-grown bench artifact writer outside
//! `acqp-bench/src/report.rs` — both advisory shapes.

pub fn write_bench_json(name: &str) -> String {
    // MARK:writer-fn (the `fn write_bench_json` above is the finding)
    format!("BENCH_{name}.json") // MARK:bench-literal
}
