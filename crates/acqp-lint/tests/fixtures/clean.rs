//! Fixture: every rule pattern appears here, yet nothing may be
//! flagged — each occurrence is in a string literal, a doc comment,
//! or `#[cfg(test)]` code, none of which the scanner may match.

/// Planners must never call `Instant::now()` or `SystemTime::now`;
/// nor may library code reach for `std::sync::Mutex`, a `HashMap`
/// in a result path, `.unwrap()` on recovery data, or
/// `.partial_cmp(` on floats.
pub fn doc_only() {}

pub fn patterns_in_strings() -> Vec<&'static str> {
    vec![
        "Instant::now() is banned in planners",
        "std::sync::Mutex poisons",
        "HashMap iteration order is seeded",
        "call .unwrap() and die",
        ".partial_cmp( returns Option",
        "fn write_bench_json lives in report.rs",
    ]
}

pub fn escaped_and_raw() {
    let _ = "quote \" then Instant::now()";
    let _ = r#"raw string with .unwrap() and "quotes""#;
    let _ = 'x';
    let _: Vec<&'static str> = Vec::new(); // lifetime, not a char literal
}

/* block comment mentioning SystemTime::now and unreachable!()
   /* nested: panic! todo! unimplemented! */
   still inside the outer comment */
pub fn after_comments() {}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    use std::time::Instant;

    #[test]
    fn test_code_is_exempt() {
        let t = Instant::now();
        let mut m = HashMap::new();
        m.insert(1u32, t);
        assert!(m.get(&1).unwrap().elapsed().as_secs() < 1);
        assert_eq!(1.0f64.partial_cmp(&2.0).unwrap(), std::cmp::Ordering::Less);
    }
}
