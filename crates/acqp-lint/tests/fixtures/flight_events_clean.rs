//! Fixture: flight-recorder emits matching the documented `event` rows
//! exactly — lints clean in both directions.

pub fn run(flight: &acqp_obs::FlightRecorder) {
    let start = flight.emit(0, 0, "sim.start", &[("motes", 2u64.into())]);
    for e in 0..4u64 {
        flight.emit_owned(e, start, "epoch.tick", vec![("tuples".to_string(), 2u64.into())]);
    }
    flight.emit(
        4,
        start,
        "sim.end",
        &[("tuples", 8u64.into()), ("all_correct", true.into())],
    );
}
