//! Fixture: one undocumented flight event (`sim.bogus`) and no emit for
//! the documented `epoch.tick` row — violates in both directions.

pub fn run(flight: &acqp_obs::FlightRecorder) {
    let start = flight.emit(0, 0, "sim.start", &[("motes", 2u64.into())]);
    flight.emit(1, start, "sim.bogus", &[]);
    flight.emit(4, start, "sim.end", &[("tuples", 8u64.into())]);
}
