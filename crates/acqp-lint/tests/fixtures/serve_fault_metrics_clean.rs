//! Fixture: the robust service's fault/shed/degradation instruments
//! and flight events matching the documented rows exactly — lints
//! clean in both directions.

pub fn run(rec: &acqp_obs::Recorder, flight: &acqp_obs::FlightRecorder) {
    rec.counter("serve.fault.result.lost").incr(1);
    rec.counter("serve.shed.queries").incr(1);
    rec.counter("serve.degraded.timeouts").incr(1);
    let degraded = rec.hist("serve.latency.degraded");
    degraded.observe(5);
    let shed = flight.emit(3, 0, "serve.shed", &[("query", 1u64.into())]);
    flight.emit(4, shed, "serve.timeout", &[("results", 2u64.into())]);
    flight.emit(5, shed, "serve.readmit", &[("cache_hit", false.into())]);
}
