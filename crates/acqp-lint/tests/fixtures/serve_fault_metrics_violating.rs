//! Fixture: one undocumented shed counter (`serve.shed.bogus`), one
//! undocumented degradation event (`serve.degraded.vanish`), and no
//! emit for the documented `serve.latency.degraded` and
//! `serve.readmit` rows — violates in both directions, for both
//! instrument families.

pub fn run(rec: &acqp_obs::Recorder, flight: &acqp_obs::FlightRecorder) {
    rec.counter("serve.fault.result.lost").incr(1);
    rec.counter("serve.shed.queries").incr(1);
    rec.counter("serve.shed.bogus").incr(1);
    rec.counter("serve.degraded.timeouts").incr(1);
    let shed = flight.emit(3, 0, "serve.shed", &[("query", 1u64.into())]);
    flight.emit(4, shed, "serve.timeout", &[("results", 2u64.into())]);
    flight.emit(5, shed, "serve.degraded.vanish", &[]);
}
