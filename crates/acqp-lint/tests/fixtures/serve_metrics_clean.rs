//! Fixture: the multi-query service's instruments and flight events
//! matching the documented `serve.*` rows exactly — lints clean in
//! both directions.

pub fn run(rec: &acqp_obs::Recorder, flight: &acqp_obs::FlightRecorder) {
    let _span = rec.span("serve.run");
    let hits = rec.counter("serve.cache.hits");
    let latency = rec.hist("serve.latency_epochs");
    let admit = flight.emit(0, 0, "serve.admit", &[("cache_hit", true.into())]);
    hits.incr(1);
    latency.observe(3);
    rec.gauge("serve.stats_epoch", 1.0);
    flight.emit(1, admit, "serve.complete", &[("results", 4u64.into())]);
}
