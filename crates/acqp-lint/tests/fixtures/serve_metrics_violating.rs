//! Fixture: one undocumented service counter (`serve.bogus`), one
//! undocumented flight event (`serve.vanish`), and no emit for the
//! documented `serve.latency_epochs` and `serve.complete` rows —
//! violates in both directions, for both instrument families.

pub fn run(rec: &acqp_obs::Recorder, flight: &acqp_obs::FlightRecorder) {
    let _span = rec.span("serve.run");
    rec.counter("serve.cache.hits").incr(1);
    rec.counter("serve.bogus").incr(1);
    rec.gauge("serve.stats_epoch", 1.0);
    let admit = flight.emit(0, 0, "serve.admit", &[("cache_hit", true.into())]);
    flight.emit(1, admit, "serve.vanish", &[]);
}
