//! Fixture: the static-verification gate's instruments matching the
//! documented `verify.*` rows exactly — lints clean in both directions.

pub fn gate(rec: &acqp_obs::Recorder) {
    let checked = rec.counter("verify.checked");
    let rejected = rec.counter("verify.rejected");
    let demoted = rec.counter("verify.recovery.demoted");
    let clamped = rec.counter("verify.cost.clamped");
    let wire_bytes = rec.hist("verify.wire_bytes");
    checked.incr(1);
    rejected.incr(1);
    demoted.incr(1);
    clamped.incr(1);
    wire_bytes.observe(17);
}
