//! Fixture: one undocumented verifier counter (`verify.bogus`) and no
//! emit for the documented `verify.cost.clamped` and `verify.wire_bytes`
//! rows — violates the taxonomy in both directions.

pub fn gate(rec: &acqp_obs::Recorder) {
    rec.counter("verify.checked").incr(1);
    rec.counter("verify.rejected").incr(1);
    rec.counter("verify.recovery.demoted").incr(1);
    rec.counter("verify.bogus").incr(1);
}
