//! Fixture: one unsuppressed violation per pattern rule. Never
//! compiled — the rule tests feed it to `check_file` under scoped
//! fake paths and assert each marker line is flagged.

use std::collections::HashMap; // MARK:nondet-import
use std::sync::{Arc, Mutex}; // MARK:mutex-grouped
use std::time::Instant;

fn wallclock_probe() -> Instant {
    Instant::now() // MARK:wallclock
}

fn nondet_probe(m: &HashMap<u32, u32>) -> Vec<u32> {
    m.values().copied().collect()
}

fn mutex_probe() -> std::sync::Mutex<u32> {
    std::sync::Mutex::new(0) // MARK:mutex-qualified
}

fn panic_probe(v: Option<u32>) -> u32 {
    v.unwrap() // MARK:unwrap
}

fn float_probe(a: f64, b: f64) -> std::cmp::Ordering {
    a.partial_cmp(&b).unwrap() // MARK:partial-cmp
}
