//! Fixture: the same decoder written the sanctioned way — slice
//! patterns, `.get(..)`, and range slicing behind explicit length
//! checks. Expected findings: none.

pub fn decode_split_header(bytes: &[u8]) -> Option<(u8, u16)> {
    let &[tag, c0, c1, ..] = bytes else { return None };
    Some((tag, u16::from_le_bytes([c0, c1])))
}

pub fn seq_body(bytes: &[u8], len: usize) -> Option<&[u8]> {
    bytes.get(2..2 + len)
}

pub fn header_prefix(bytes: &[u8]) -> &[u8] {
    if bytes.len() >= 4 { &bytes[..4] } else { bytes }
}
