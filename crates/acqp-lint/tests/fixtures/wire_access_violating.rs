//! Fixture: a wire-format decoder built on scalar indexing — every
//! `bytes[i]` panics on truncated input instead of returning a typed
//! decode error. Expected findings: three `unchecked-wire-access`.

pub fn decode_split_header(bytes: &[u8]) -> (u8, u16) {
    let tag = bytes[0];
    let cut = u16::from_le_bytes([bytes[1], bytes[2]]);
    (tag, cut)
}
