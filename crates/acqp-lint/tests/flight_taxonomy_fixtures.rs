//! Both directions of the `metric-taxonomy` contract on flight-recorder
//! event names (DESIGN.md §13, rows of kind `event`): the violating
//! fixture must produce an undocumented-event finding *and* a
//! stale-row finding; the clean fixture must lint to zero findings
//! against the same table.

use std::path::{Path, PathBuf};

use acqp_lint::lint_workspace;
use acqp_lint::rules::Severity;

const VIOLATING: &str = include_str!("fixtures/flight_events_violating.rs");
const CLEAN: &str = include_str!("fixtures/flight_events_clean.rs");

/// A minimal marker-delimited table holding only `event` rows.
const FAKE_DESIGN: &str = concat!(
    "# fake\n\n<!-- acqp-lint:taxonomy:begin -->\n",
    "| name | kind | meaning |\n|---|---|---|\n",
    "| `sim.start` | event | run opened |\n",
    "| `sim.end` | event | run closed |\n",
    "| `epoch.tick` | event | per-epoch time series |\n",
    "<!-- acqp-lint:taxonomy:end -->\n",
);

fn fake_workspace(tag: &str, fixture: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("acqp_lint_flight_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let src = dir.join("crates/acqp-sensornet/src");
    std::fs::create_dir_all(&src).unwrap();
    std::fs::write(dir.join("DESIGN.md"), FAKE_DESIGN).unwrap();
    std::fs::write(src.join("flight_fixture.rs"), fixture).unwrap();
    dir
}

fn taxonomy_messages(root: &Path) -> Vec<String> {
    let report = lint_workspace(root).expect("lint runs");
    report
        .findings
        .iter()
        .inspect(|f| assert_eq!(f.severity, Severity::Error, "{f:?}"))
        .filter(|f| f.rule == "metric-taxonomy")
        .map(|f| format!("{}: {}", f.file, f.message))
        .collect()
}

#[test]
fn violating_fixture_is_flagged_in_both_directions() {
    let dir = fake_workspace("viol", VIOLATING);
    let messages = taxonomy_messages(&dir);

    // Code leads docs: the bogus event is undocumented.
    assert!(
        messages.iter().any(|m| {
            m.starts_with("crates/acqp-sensornet/src/flight_fixture.rs:")
                && m.contains("`sim.bogus` is not documented")
        }),
        "missing undocumented-event finding: {messages:#?}"
    );
    // Docs lead code: the epoch.tick row matches no emit.
    assert!(
        messages
            .iter()
            .any(|m| m.starts_with("DESIGN.md:") && m.contains("`epoch.tick` is emitted nowhere")),
        "missing stale-row finding: {messages:#?}"
    );
    assert_eq!(messages.len(), 2, "{messages:#?}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn clean_fixture_lints_to_zero_findings() {
    let dir = fake_workspace("clean", CLEAN);
    let report = lint_workspace(&dir).expect("lint runs");
    assert!(report.findings.is_empty(), "{:#?}", report.findings);
    std::fs::remove_dir_all(&dir).ok();
}
