//! Per-rule fixture tests: feed each fixture to `check_file` under a
//! scoped fake path and pin down exactly which lines are flagged.

use acqp_lint::rules::{check_file, FileCtx, Finding, Severity};
use acqp_lint::scan::ScannedFile;

const VIOLATIONS: &str = include_str!("fixtures/violations.rs");
const CLEAN: &str = include_str!("fixtures/clean.rs");
const ALLOWED: &str = include_str!("fixtures/allowed.rs");
const BENCH_WRITER: &str = include_str!("fixtures/bench_writer.rs");

fn run(relpath: &str, source: &str) -> (Vec<Finding>, Vec<usize>) {
    let scan = ScannedFile::new(source);
    check_file(&FileCtx { relpath, source, scan: &scan })
}

/// 1-based line of the first line containing `marker`.
fn line_of(source: &str, marker: &str) -> usize {
    source
        .lines()
        .position(|l| l.contains(marker))
        .unwrap_or_else(|| panic!("marker {marker:?} not in fixture"))
        + 1
}

fn lines_for(findings: &[Finding], rule: &str) -> Vec<usize> {
    findings.iter().filter(|f| f.rule == rule).map(|f| f.line).collect()
}

#[test]
fn violations_fixture_flags_every_rule_in_planner_scope() {
    // planner path: wallclock + nondet + mutex + panic + float all apply.
    let (findings, _) = run("crates/acqp-core/src/planner/fixture.rs", VIOLATIONS);
    assert_eq!(
        lines_for(&findings, "wallclock-in-planner"),
        vec![line_of(VIOLATIONS, "MARK:wallclock")]
    );
    assert_eq!(
        lines_for(&findings, "nondeterministic-iteration"),
        vec![line_of(VIOLATIONS, "MARK:nondet-import"), line_of(VIOLATIONS, "&HashMap<u32")]
    );
    assert_eq!(
        lines_for(&findings, "raw-mutex"),
        vec![
            line_of(VIOLATIONS, "MARK:mutex-grouped"),
            line_of(VIOLATIONS, "-> std::sync::Mutex<u32>"),
            line_of(VIOLATIONS, "MARK:mutex-qualified"),
        ]
    );
    // `.unwrap()` on the Option probe plus the one chained after partial_cmp.
    assert_eq!(
        lines_for(&findings, "panic-in-lib"),
        vec![line_of(VIOLATIONS, "MARK:unwrap"), line_of(VIOLATIONS, "MARK:partial-cmp")]
    );
    assert_eq!(
        lines_for(&findings, "float-partial-cmp"),
        vec![line_of(VIOLATIONS, "MARK:partial-cmp")]
    );
    for f in &findings {
        assert_eq!(f.severity, Severity::Error, "{f:?}");
        assert!(!f.snippet.is_empty(), "{f:?}");
    }
}

#[test]
fn rule_scopes_follow_the_path_not_the_content() {
    // budget.rs is the one sanctioned wall-clock site.
    let (findings, _) = run("crates/acqp-core/src/planner/budget.rs", VIOLATIONS);
    assert!(lines_for(&findings, "wallclock-in-planner").is_empty());

    // Outside the deterministic result path, HashMap is fine; outside
    // the panic scope, unwrap is clippy's problem, not ours.
    let (findings, _) = run("crates/acqp-bench/src/lib.rs", VIOLATIONS);
    assert!(lines_for(&findings, "nondeterministic-iteration").is_empty());
    assert!(lines_for(&findings, "panic-in-lib").is_empty());
    // raw-mutex and float-partial-cmp still apply everywhere in lib code.
    assert!(!lines_for(&findings, "raw-mutex").is_empty());
    assert!(!lines_for(&findings, "float-partial-cmp").is_empty());

    // Test paths are entirely out of scope.
    let (findings, _) = run("crates/acqp-core/tests/fixture.rs", VIOLATIONS);
    assert!(findings.is_empty(), "{findings:?}");
    let (findings, _) = run("crates/acqp-bench/benches/fixture.rs", VIOLATIONS);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn clean_fixture_produces_no_findings() {
    // The harshest scope: every rule active.
    let (findings, used) = run("crates/acqp-core/src/planner/fixture.rs", CLEAN);
    assert!(findings.is_empty(), "strings/doc comments/test code leaked: {findings:?}");
    assert!(used.is_empty());
}

#[test]
fn allow_comments_suppress_and_their_hygiene_is_checked() {
    let (findings, used) = run("crates/acqp-persist/src/fixture.rs", ALLOWED);

    // Both justified allows suppressed their finding and are marked used.
    assert!(lines_for(&findings, "float-partial-cmp").is_empty());
    assert_eq!(
        lines_for(&findings, "panic-in-lib"),
        Vec::<usize>::new(),
        "suppressed unwrap leaked: {findings:?}"
    );
    let same = line_of(ALLOWED, "allow(panic-in-lib): fixture");
    let above = line_of(ALLOWED, "allow(float-partial-cmp): fixture");
    assert!(used.contains(&same) && used.contains(&above), "used={used:?}");

    // A reasonless allow and an unknown rule id are hard errors.
    let bare = ALLOWED
        .lines()
        .position(|l| l.trim() == "// acqp-lint: allow(panic-in-lib)")
        .expect("bare allow line in fixture")
        + 1;
    assert_eq!(lines_for(&findings, "bare-allow"), vec![bare]);
    assert_eq!(lines_for(&findings, "unknown-allow"), vec![line_of(ALLOWED, "no-such-rule")]);

    // The stale allow is NOT reported by check_file (the workspace pass
    // owns unused-allow), but it is also not in the used set.
    let stale = line_of(ALLOWED, "allow(raw-mutex): nothing");
    assert!(!used.contains(&stale));
}

#[test]
fn bench_writer_advisory_outside_report_rs() {
    let (findings, _) = run("crates/acqp-sensornet/src/fixture.rs", BENCH_WRITER);
    let lines = lines_for(&findings, "duplicate-bench-writer");
    assert_eq!(
        lines,
        vec![
            line_of(BENCH_WRITER, "pub fn write_bench_json"),
            line_of(BENCH_WRITER, "MARK:bench-literal")
        ]
    );
    for f in findings.iter().filter(|f| f.rule == "duplicate-bench-writer") {
        assert_eq!(f.severity, Severity::Advisory);
    }

    // The canonical home is exempt.
    let (findings, _) = run("crates/acqp-bench/src/report.rs", BENCH_WRITER);
    assert!(lines_for(&findings, "duplicate-bench-writer").is_empty());
}
