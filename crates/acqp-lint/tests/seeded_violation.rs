//! End-to-end binary test: seed a violation in a throwaway workspace,
//! run the built `acqp-lint` binary on it, and pin the exit code and
//! the JSON finding down to file and line.

use std::path::{Path, PathBuf};
use std::process::Command;

fn fake_workspace(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("acqp_lint_seed_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let planner = dir.join("crates/acqp-core/src/planner");
    std::fs::create_dir_all(&planner).unwrap();
    std::fs::write(
        dir.join("DESIGN.md"),
        concat!(
            "# fake\n\n<!-- acqp-lint:taxonomy:begin -->\n",
            "| name | kind | meaning |\n|---|---|---|\n",
            // span-child rows are exempt from the stale-row check, so
            // this single row keeps the table non-empty without adding
            // findings of its own.
            "| `fixture.child` | span-child | keeps the table non-empty |\n",
            "<!-- acqp-lint:taxonomy:end -->\n",
        ),
    )
    .unwrap();
    dir
}

fn lint(root: &Path) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_acqp-lint"))
        .args(["--root", root.to_str().unwrap(), "--json", "-"])
        .output()
        .expect("run acqp-lint");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn seeded_wallclock_violation_fails_with_exact_location() {
    let dir = fake_workspace("hot");
    // Line 4 of the seeded file reads the wall clock inside the planner.
    std::fs::write(
        dir.join("crates/acqp-core/src/planner/search.rs"),
        "use std::time::Instant;\n\npub fn tick() -> Instant {\n    Instant::now()\n}\n",
    )
    .unwrap();

    let (code, stdout, stderr) = lint(&dir);
    assert_eq!(code, 1, "stdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.contains("\"rule\": \"wallclock-in-planner\""), "{stdout}");
    assert!(
        stdout.contains("\"file\": \"crates/acqp-core/src/planner/search.rs\", \"line\": 4"),
        "{stdout}"
    );
    assert!(stdout.contains("\"severity\": \"error\""), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn allowed_violation_and_advisories_exit_zero() {
    let dir = fake_workspace("ok");
    std::fs::write(
        dir.join("crates/acqp-core/src/planner/search.rs"),
        concat!(
            "use std::time::Instant;\n\npub fn tick() -> Instant {\n",
            "    // acqp-lint: allow(wallclock-in-planner): seeded fixture justifies itself\n",
            "    Instant::now()\n}\n",
        ),
    )
    .unwrap();
    // An advisory alone must not fail the run.
    std::fs::write(
        dir.join("crates/acqp-core/src/planner/extra.rs"),
        "pub fn name() -> &'static str {\n    \"BENCH_rogue.json\"\n}\n",
    )
    .unwrap();

    let (code, stdout, stderr) = lint(&dir);
    assert_eq!(code, 0, "stdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.contains("\"rule\": \"duplicate-bench-writer\""), "{stdout}");
    assert!(!stdout.contains("\"severity\": \"error\""), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_taxonomy_markers_are_an_environment_error() {
    let dir = fake_workspace("env");
    std::fs::write(dir.join("DESIGN.md"), "# no markers here\n").unwrap();
    let (code, _, stderr) = lint(&dir);
    assert_eq!(code, 2, "stderr: {stderr}");
    assert!(stderr.contains("taxonomy"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}
