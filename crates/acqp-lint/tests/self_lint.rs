//! The linter must hold its own workspace to the standard it enforces:
//! a clean tree lints clean, and every allow carries its weight.

use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().unwrap()
}

#[test]
fn shipped_tree_has_no_unsuppressed_errors() {
    let report = acqp_lint::lint_workspace(&workspace_root()).unwrap();
    let errors: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.severity == acqp_lint::rules::Severity::Error)
        .collect();
    assert!(errors.is_empty(), "lint errors in shipped tree:\n{errors:#?}");
    assert!(report.files_scanned > 50, "walked only {} files — wrong root?", report.files_scanned);
}

#[test]
fn shipped_tree_has_no_stale_allows() {
    let report = acqp_lint::lint_workspace(&workspace_root()).unwrap();
    let stale: Vec<_> = report.findings.iter().filter(|f| f.rule == "unused-allow").collect();
    assert!(stale.is_empty(), "stale allow comments:\n{stale:#?}");
}
