//! Both directions of the `metric-taxonomy` contract on the robust
//! service's fault/shed/degradation names (DESIGN.md §14.5):
//! `serve.fault.*` counters, `serve.shed.*`/`serve.degraded.*`
//! tallies, the `serve.latency.degraded` hist and the shed/timeout/
//! readmit flight events. The violating fixture must be flagged for an
//! undocumented counter, an undocumented event, and two stale rows;
//! the clean fixture must lint to zero findings against the same
//! table.

use std::path::{Path, PathBuf};

use acqp_lint::lint_workspace;
use acqp_lint::rules::Severity;

const VIOLATING: &str = include_str!("fixtures/serve_fault_metrics_violating.rs");
const CLEAN: &str = include_str!("fixtures/serve_fault_metrics_clean.rs");

/// A minimal marker-delimited table over the robustness rows.
const FAKE_DESIGN: &str = concat!(
    "# fake\n\n<!-- acqp-lint:taxonomy:begin -->\n",
    "| name | kind | meaning |\n|---|---|---|\n",
    "| `serve.fault.result.lost` | counter | result packets dropped after retry |\n",
    "| `serve.shed.queries` | counter | entries shed by admission control |\n",
    "| `serve.degraded.timeouts` | counter | queries cut at their deadline |\n",
    "| `serve.latency.degraded` | hist | shed/timed-out latency (epochs) |\n",
    "| `serve.shed` | event | one entry shed |\n",
    "| `serve.timeout` | event | one deadline crossing |\n",
    "| `serve.readmit` | event | one in-flight re-plan |\n",
    "<!-- acqp-lint:taxonomy:end -->\n",
);

fn fake_workspace(tag: &str, fixture: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("acqp_lint_serve_fault_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let src = dir.join("crates/acqp-sensornet/src");
    std::fs::create_dir_all(&src).unwrap();
    std::fs::write(dir.join("DESIGN.md"), FAKE_DESIGN).unwrap();
    std::fs::write(src.join("serve_fault_fixture.rs"), fixture).unwrap();
    dir
}

fn taxonomy_messages(root: &Path) -> Vec<String> {
    let report = lint_workspace(root).expect("lint runs");
    report
        .findings
        .iter()
        .inspect(|f| assert_eq!(f.severity, Severity::Error, "{f:?}"))
        .filter(|f| f.rule == "metric-taxonomy")
        .map(|f| format!("{}: {}", f.file, f.message))
        .collect()
}

#[test]
fn violating_fixture_is_flagged_in_both_directions() {
    let dir = fake_workspace("viol", VIOLATING);
    let messages = taxonomy_messages(&dir);

    // Code leads docs: the bogus counter and the phantom event.
    assert!(
        messages.iter().any(|m| {
            m.starts_with("crates/acqp-sensornet/src/serve_fault_fixture.rs:")
                && m.contains("`serve.shed.bogus` is not documented")
        }),
        "missing undocumented-counter finding: {messages:#?}"
    );
    assert!(
        messages.iter().any(|m| {
            m.starts_with("crates/acqp-sensornet/src/serve_fault_fixture.rs:")
                && m.contains("`serve.degraded.vanish` is not documented")
        }),
        "missing undocumented-event finding: {messages:#?}"
    );
    // Docs lead code: the degraded-latency hist row and the readmit
    // event row are emitted nowhere.
    assert!(
        messages
            .iter()
            .any(|m| m.starts_with("DESIGN.md:")
                && m.contains("`serve.latency.degraded` is emitted")),
        "missing stale-hist-row finding: {messages:#?}"
    );
    assert!(
        messages
            .iter()
            .any(|m| m.starts_with("DESIGN.md:") && m.contains("`serve.readmit` is emitted")),
        "missing stale-event-row finding: {messages:#?}"
    );
    assert_eq!(messages.len(), 4, "{messages:#?}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn clean_fixture_lints_to_zero_findings() {
    let dir = fake_workspace("clean", CLEAN);
    let report = lint_workspace(&dir).expect("lint runs");
    assert!(report.findings.is_empty(), "{:#?}", report.findings);
    std::fs::remove_dir_all(&dir).ok();
}
