//! Both directions of the `metric-taxonomy` contract on the
//! multi-query service's `serve.*` names (DESIGN.md §14): Recorder
//! instruments (span/counter/hist/gauge) and flight events in one
//! table. The violating fixture must be flagged for an undocumented
//! counter, an undocumented event, and two stale rows; the clean
//! fixture must lint to zero findings against the same table.

use std::path::{Path, PathBuf};

use acqp_lint::lint_workspace;
use acqp_lint::rules::Severity;

const VIOLATING: &str = include_str!("fixtures/serve_metrics_violating.rs");
const CLEAN: &str = include_str!("fixtures/serve_metrics_clean.rs");

/// A minimal marker-delimited table mixing every instrument kind the
/// service emits.
const FAKE_DESIGN: &str = concat!(
    "# fake\n\n<!-- acqp-lint:taxonomy:begin -->\n",
    "| name | kind | meaning |\n|---|---|---|\n",
    "| `serve.run` | span | whole service run |\n",
    "| `serve.cache.hits` | counter | admissions served from the cache |\n",
    "| `serve.latency_epochs` | hist | admission-to-first-result latency |\n",
    "| `serve.stats_epoch` | gauge | policy statistics epoch |\n",
    "| `serve.admit` | event | one admission |\n",
    "| `serve.complete` | event | one completion |\n",
    "<!-- acqp-lint:taxonomy:end -->\n",
);

fn fake_workspace(tag: &str, fixture: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("acqp_lint_serve_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let src = dir.join("crates/acqp-sensornet/src");
    std::fs::create_dir_all(&src).unwrap();
    std::fs::write(dir.join("DESIGN.md"), FAKE_DESIGN).unwrap();
    std::fs::write(src.join("serve_fixture.rs"), fixture).unwrap();
    dir
}

fn taxonomy_messages(root: &Path) -> Vec<String> {
    let report = lint_workspace(root).expect("lint runs");
    report
        .findings
        .iter()
        .inspect(|f| assert_eq!(f.severity, Severity::Error, "{f:?}"))
        .filter(|f| f.rule == "metric-taxonomy")
        .map(|f| format!("{}: {}", f.file, f.message))
        .collect()
}

#[test]
fn violating_fixture_is_flagged_in_both_directions() {
    let dir = fake_workspace("viol", VIOLATING);
    let messages = taxonomy_messages(&dir);

    // Code leads docs: the bogus counter and the vanished event.
    assert!(
        messages.iter().any(|m| {
            m.starts_with("crates/acqp-sensornet/src/serve_fixture.rs:")
                && m.contains("`serve.bogus` is not documented")
        }),
        "missing undocumented-counter finding: {messages:#?}"
    );
    assert!(
        messages.iter().any(|m| {
            m.starts_with("crates/acqp-sensornet/src/serve_fixture.rs:")
                && m.contains("`serve.vanish` is not documented")
        }),
        "missing undocumented-event finding: {messages:#?}"
    );
    // Docs lead code: the hist row and the completion event row are
    // emitted nowhere.
    assert!(
        messages.iter().any(
            |m| m.starts_with("DESIGN.md:") && m.contains("`serve.latency_epochs` is emitted")
        ),
        "missing stale-hist-row finding: {messages:#?}"
    );
    assert!(
        messages
            .iter()
            .any(|m| m.starts_with("DESIGN.md:") && m.contains("`serve.complete` is emitted")),
        "missing stale-event-row finding: {messages:#?}"
    );
    assert_eq!(messages.len(), 4, "{messages:#?}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn clean_fixture_lints_to_zero_findings() {
    let dir = fake_workspace("clean", CLEAN);
    let report = lint_workspace(&dir).expect("lint runs");
    assert!(report.findings.is_empty(), "{:#?}", report.findings);
    std::fs::remove_dir_all(&dir).ok();
}
