//! Runtime half of the `metric-taxonomy` contract: run instrumented
//! planning and execution, drain the observability snapshot, and check
//! the DESIGN.md §8 table against what actually fired — both ways.
//!
//! The static rule (`acqp-lint --workspace`) matches emit *call sites*;
//! this test matches *materialized* names, catching format!-built names
//! the static pass can only see as `<*>` wildcards.

use std::path::PathBuf;
use std::sync::Arc;

use acqp_core::prelude::*;
use acqp_lint::taxonomy::{parse_taxonomy, pattern_matches};
use acqp_obs::{NoopSink, Recorder};

fn taxonomy() -> Vec<acqp_lint::taxonomy::TaxonomyEntry> {
    let design = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../DESIGN.md");
    let design = std::fs::read_to_string(design).expect("read DESIGN.md");
    parse_taxonomy(&design).expect("parse taxonomy table")
}

/// Snapshot with planner + executor activity on a small correlated
/// instance, exercising the exhaustive (threaded), greedy and fallback
/// planners plus a metered execution pass.
fn instrumented_snapshot() -> acqp_obs::Snapshot {
    let schema = Schema::new(vec![
        Attribute::new("temp", 4, 100.0),
        Attribute::new("light", 4, 100.0),
        Attribute::new("hour", 4, 1.0),
    ])
    .unwrap();
    let mut rows = Vec::new();
    for hour in 0..4u16 {
        for rep in 0..6 {
            let hot = u16::from(hour >= 2);
            rows.push(vec![hot * 3, (hot ^ (rep & 1)) * 3, hour]);
        }
    }
    let data = Dataset::from_rows(&schema, rows).unwrap();
    let query = Query::new(vec![Pred::in_range(0, 2, 3), Pred::in_range(1, 0, 1)]).unwrap();
    let est = CountingEstimator::new(&data);

    let rec = Recorder::new(Arc::new(NoopSink));
    ExhaustivePlanner::new()
        .threads(2)
        .with_recorder(rec.clone())
        .plan_with_report(&schema, &query, &est)
        .unwrap();
    let plan =
        GreedyPlanner::new(4).with_recorder(rec.clone()).plan(&schema, &query, &est).unwrap();
    FallbackPlanner::new().with_recorder(rec.clone()).plan_with_report(&schema, &query, &est);

    let metrics = ExecMetrics::new(&rec, &schema, &query);
    let model = CostModel::PerAttribute;
    measure_metered(&plan, &query, &schema, &model, &data, 0..data.len(), &metrics);
    // Vectorized pass so the exec.batch.* subtree carries real values,
    // not just its unconditional registrations.
    measure_metered_mode(
        &plan,
        &query,
        &schema,
        &model,
        &data,
        0..data.len(),
        ExecMode::Vectorized,
        &metrics,
    );

    rec.drain()
}

#[test]
fn every_runtime_metric_is_documented() {
    let entries = taxonomy();
    let snap = instrumented_snapshot();
    let mut keys: Vec<String> = Vec::new();
    keys.extend(snap.counters.keys().cloned());
    keys.extend(snap.values.keys().cloned());
    keys.extend(snap.hists.keys().cloned());
    keys.extend(snap.spans.keys().cloned());
    assert!(keys.len() > 10, "instrumented run recorded only {keys:?}");

    let undocumented: Vec<&String> =
        keys.iter().filter(|k| !entries.iter().any(|e| pattern_matches(&e.pattern, k))).collect();
    assert!(
        undocumented.is_empty(),
        "runtime metrics missing from the DESIGN.md §8 taxonomy: {undocumented:#?}"
    );
}

#[test]
fn exercised_table_rows_are_hit_by_the_run() {
    let entries = taxonomy();
    let snap = instrumented_snapshot();
    let mut keys: Vec<String> = Vec::new();
    keys.extend(snap.counters.keys().cloned());
    keys.extend(snap.values.keys().cloned());
    keys.extend(snap.hists.keys().cloned());
    keys.extend(snap.spans.keys().cloned());

    // The reverse direction on the subset this run must exercise: if
    // one of these rows stops matching any runtime key, either the
    // metric was renamed without updating the table or the emit died.
    let must_hit = [
        "planner.subproblems.opened",
        "planner.memo.hit",
        "planner.split.evaluated",
        "planner.exhaustive",
        "planner.greedy",
        "exec.tuples",
        "exec.outputs",
        "exec.cost_total",
        "exec.cost_per_tuple",
        "exec.acquisitions_per_tuple",
        "exec.acquire.<*>",
        "exec.pred<*>.evaluated",
        "exec.pred<*>.passed",
        "exec.batch.batches",
        "exec.batch.rows",
        "exec.batch.partitions",
        "exec.batch.fill",
    ];
    for pattern in must_hit {
        assert!(
            entries.iter().any(|e| e.pattern == pattern),
            "expected `{pattern}` as a taxonomy row — table edited?"
        );
        assert!(
            keys.iter().any(|k| pattern_matches(pattern, k)),
            "taxonomy row `{pattern}` matched no runtime metric; keys: {keys:#?}"
        );
    }
}
