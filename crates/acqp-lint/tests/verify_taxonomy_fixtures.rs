//! Both directions of the `metric-taxonomy` contract on the static
//! verifier's `verify.*` names (DESIGN.md §8): the violating fixture
//! must be flagged for an undocumented counter and two stale rows; the
//! clean fixture must lint to zero findings against the same table.

use std::path::{Path, PathBuf};

use acqp_lint::lint_workspace;
use acqp_lint::rules::Severity;

const VIOLATING: &str = include_str!("fixtures/verify_metrics_violating.rs");
const CLEAN: &str = include_str!("fixtures/verify_metrics_clean.rs");

/// A minimal marker-delimited table holding exactly the verification
/// subtree the service registers.
const FAKE_DESIGN: &str = concat!(
    "# fake\n\n<!-- acqp-lint:taxonomy:begin -->\n",
    "| name | kind | meaning |\n|---|---|---|\n",
    "| `verify.checked` | counter | wire plans run through the three passes |\n",
    "| `verify.rejected` | counter | plans rejected with a typed error |\n",
    "| `verify.recovery.demoted` | counter | recovered plans demoted to a re-plan |\n",
    "| `verify.cost.clamped` | counter | claimed costs clamped into the bound |\n",
    "| `verify.wire_bytes` | hist | wire size of each verified plan |\n",
    "<!-- acqp-lint:taxonomy:end -->\n",
);

fn fake_workspace(tag: &str, fixture: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("acqp_lint_verify_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let src = dir.join("crates/acqp-sensornet/src");
    std::fs::create_dir_all(&src).unwrap();
    std::fs::write(dir.join("DESIGN.md"), FAKE_DESIGN).unwrap();
    std::fs::write(src.join("verify_fixture.rs"), fixture).unwrap();
    dir
}

fn taxonomy_messages(root: &Path) -> Vec<String> {
    let report = lint_workspace(root).expect("lint runs");
    report
        .findings
        .iter()
        .inspect(|f| assert_eq!(f.severity, Severity::Error, "{f:?}"))
        .filter(|f| f.rule == "metric-taxonomy")
        .map(|f| format!("{}: {}", f.file, f.message))
        .collect()
}

#[test]
fn violating_fixture_is_flagged_in_both_directions() {
    let dir = fake_workspace("viol", VIOLATING);
    let messages = taxonomy_messages(&dir);

    // Code leads docs: the bogus counter.
    assert!(
        messages.iter().any(|m| {
            m.starts_with("crates/acqp-sensornet/src/verify_fixture.rs:")
                && m.contains("`verify.bogus` is not documented")
        }),
        "missing undocumented-counter finding: {messages:#?}"
    );
    // Docs lead code: the clamp counter row and the size histogram row
    // are emitted nowhere.
    assert!(
        messages
            .iter()
            .any(|m| m.starts_with("DESIGN.md:") && m.contains("`verify.cost.clamped` is emitted")),
        "missing stale-counter-row finding: {messages:#?}"
    );
    assert!(
        messages
            .iter()
            .any(|m| m.starts_with("DESIGN.md:") && m.contains("`verify.wire_bytes` is emitted")),
        "missing stale-hist-row finding: {messages:#?}"
    );
    assert_eq!(messages.len(), 3, "{messages:#?}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn clean_fixture_lints_to_zero_findings() {
    let dir = fake_workspace("clean", CLEAN);
    let report = lint_workspace(&dir).expect("lint runs");
    assert!(report.findings.is_empty(), "{:#?}", report.findings);
    std::fs::remove_dir_all(&dir).ok();
}
