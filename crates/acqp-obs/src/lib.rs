//! # acqp-obs — zero-dependency tracing and metrics
//!
//! Plan search, plan execution and the sensornet simulator all need the
//! same observability primitives: *why* was a search slow (memo hit
//! rates, prune effectiveness, split evaluations), *where* did an
//! execution spend its acquisition budget, *which* mote drained its
//! battery. This crate provides them without any external dependency
//! (the build has no registry access — the same constraint that produced
//! the `vendor/*` stand-ins):
//!
//! * [`Counter`] — a monotonically increasing `u64`, striped over
//!   per-thread shards so parallel planner workers record without
//!   contention; shards are summed on [`Recorder::drain`].
//! * [`FloatCounter`] — the same for `f64` accumulation (energy in µJ,
//!   accrued acquisition cost), implemented as a CAS loop over bit
//!   patterns.
//! * [`Hist`] — a fixed-bucket power-of-two histogram (`le_1`, `le_2`,
//!   `le_4`, …), for per-tuple cost and per-span latency distributions.
//! * [`Span`] — a hierarchical RAII timer over the monotonic clock
//!   ([`std::time::Instant`]); dropping the guard records the elapsed
//!   microseconds and streams an event to the sink.
//! * [`Recorder`] — the `Sync` handle tying it together. A *disabled*
//!   recorder ([`Recorder::disabled`]) hands out detached instruments:
//!   every record call is a branch or a relaxed atomic add and nothing
//!   is ever drained, so instrumented code needs no `if` guards and the
//!   default (no-op) configuration costs well under the 2% overhead
//!   budget (see `DESIGN.md` §8).
//!
//! Metrics flow to a pluggable [`Sink`]: [`NoopSink`] (default),
//! [`JsonLinesSink`] (one JSON object per line: `{"span": name,
//! "elapsed_us": n}` for span ends, `{"counter": name, "value": v}` for
//! everything else), or [`MemorySink`] (in-memory, for tests).
//!
//! ## Naming
//!
//! Metric names are dot-separated paths, lowest layer first:
//! `planner.memo.hit`, `exec.acquire.temp`, `sensornet.mote3.sensing_uj`.
//! The full taxonomy lives in `DESIGN.md` §8.

#![warn(missing_docs)]
// Determinism tests assert bitwise-equal floats on purpose; the
// workspace-level `float_cmp` warning stays on for library code.
#![cfg_attr(test, allow(clippy::float_cmp))]

mod sink;
pub mod trace;

pub use sink::{JsonLinesSink, MemorySink, NoopSink, Sink, SpanEvent};
pub use trace::{FlightRecorder, TraceEvent, TraceValue, DEFAULT_FLIGHT_CAP};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
// acqp-lint: allow(raw-mutex): acqp-obs sits below acqp-core in the dependency graph, so NoPoisonMutex is out of reach; no lock here is held across user code that could panic
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Number of stripes per instrument. A power of two so the thread-shard
/// hash reduces with a mask; 16 covers the planner's worker-pool cap.
const SHARDS: usize = 16;

/// Locks `m`, recovering the guard from a poisoned mutex instead of
/// panicking. Observability must never turn one isolated worker panic
/// into a process-wide abort: the instrument tables stay well-formed
/// under poison (every update is a single insert or field bump), so the
/// recovered guard is safe to use.
pub(crate) fn lock_unpoisoned<T: ?Sized>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Histogram bucket count: bucket `i` counts values `<= 2^i`, the last
/// bucket is the overflow (`+inf`) bucket.
const HIST_BUCKETS: usize = 32;

thread_local! {
    /// This thread's stripe index, assigned round-robin on first use.
    static THREAD_SHARD: usize = {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS
    };
}

#[inline]
fn shard_index() -> usize {
    THREAD_SHARD.with(|s| *s)
}

/// A cache-line-padded atomic cell, so neighbouring stripes do not
/// false-share.
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

/// A monotonically increasing counter striped over per-thread shards.
///
/// `incr` is a single relaxed atomic add on the calling thread's stripe;
/// `value` sums the stripes (drain-time only).
#[derive(Clone, Default)]
pub struct Counter {
    shards: Arc<[PaddedU64; SHARDS]>,
}

impl Counter {
    /// A detached counter (not registered with any recorder).
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds `n`.
    #[inline]
    pub fn incr(&self, n: u64) {
        self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total across all stripes.
    pub fn value(&self) -> u64 {
        self.shards.iter().map(|s| s.0.load(Ordering::Relaxed)).sum()
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Counter({})", self.value())
    }
}

/// A float accumulator striped like [`Counter`], for energy/cost sums.
#[derive(Clone, Default)]
pub struct FloatCounter {
    shards: Arc<[PaddedU64; SHARDS]>,
}

impl FloatCounter {
    /// A detached float counter.
    pub fn new() -> Self {
        FloatCounter::default()
    }

    /// Adds `v` (CAS loop over the stripe's bit pattern).
    #[inline]
    pub fn add(&self, v: f64) {
        let cell = &self.shards[shard_index()].0;
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(now) => cur = now,
            }
        }
    }

    /// Current total across all stripes.
    pub fn value(&self) -> f64 {
        self.shards.iter().map(|s| f64::from_bits(s.0.load(Ordering::Relaxed))).sum()
    }
}

impl std::fmt::Debug for FloatCounter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FloatCounter({})", self.value())
    }
}

/// A fixed-bucket histogram over `u64` values with power-of-two bucket
/// bounds: bucket `i` counts observations `v` with `v <= 2^i`; the last
/// bucket absorbs everything larger. Buckets are plain atomics (not
/// striped): a histogram observation is already rarer than a counter
/// bump, and contention on one bucket is harmless.
#[derive(Clone, Default)]
pub struct Hist {
    buckets: Arc<[AtomicU64; HIST_BUCKETS]>,
    count: Arc<AtomicU64>,
    sum: Arc<AtomicU64>,
}

impl Hist {
    /// A detached histogram.
    pub fn new() -> Self {
        Hist::default()
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        // Smallest i with v <= 2^i (v = 0 and 1 both land in `le_1`).
        let b = (64 - v.saturating_sub(1).leading_zeros() as usize).min(HIST_BUCKETS - 1);
        self.buckets[b].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Nearest-rank percentile estimate: the power-of-two upper bound
    /// of the bucket holding the `q`-quantile observation (`q` in
    /// `[0, 1]`). Resolution is the bucket width — one octave — which
    /// is plenty for the latency/cost tails bench gates care about.
    /// Returns 0 when nothing was observed.
    pub fn percentile(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self.buckets.iter().map(|c| c.load(Ordering::Relaxed)).collect();
        percentile_from_buckets(
            counts.iter().enumerate().map(|(i, n)| (1u64 << i.min(63), *n)),
            self.count(),
            q,
        )
    }

    /// The median bucket bound.
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// The 90th-percentile bucket bound.
    pub fn p90(&self) -> u64 {
        self.percentile(0.90)
    }

    /// The 99th-percentile bucket bound.
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// `(upper_bound, count)` per non-empty bucket.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                let n = c.load(Ordering::Relaxed);
                // Same clamp as `percentile`: the two bucket views must
                // agree on the bound of every bucket, whatever
                // HIST_BUCKETS grows to.
                (n > 0).then(|| (1u64 << i.min(63), n))
            })
            .collect()
    }
}

impl std::fmt::Debug for Hist {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Hist(count={}, sum={})", self.count(), self.sum())
    }
}

/// Nearest-rank percentile over `(upper_bound, count)` buckets sorted
/// by bound ascending: the bound of the bucket containing the
/// `ceil(q * count)`-th observation. Shared by [`Hist::percentile`]
/// and [`Snapshot::hist_percentile`].
fn percentile_from_buckets(
    buckets: impl IntoIterator<Item = (u64, u64)>,
    count: u64,
    q: f64,
) -> u64 {
    if count == 0 {
        return 0;
    }
    let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).clamp(1, count);
    let mut seen = 0u64;
    let mut last = 0u64;
    for (le, n) in buckets {
        last = le;
        seen += n;
        if seen >= rank {
            return le;
        }
    }
    last
}

/// Aggregated timing of all spans sharing one path.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SpanStat {
    /// Completed spans with this path.
    pub count: u64,
    /// Total elapsed microseconds.
    pub total_us: u64,
    /// Longest single span.
    pub max_us: u64,
}

/// Flattened histogram state in a [`Snapshot`]: the non-empty
/// `(upper_bound, count)` buckets, the total observation count, and the
/// sum of all observed values.
pub type HistData = (Vec<(u64, u64)>, u64, u64);

/// Everything a recorder accumulated, merged across shards. Maps are
/// ordered so renderings and JSON emissions are deterministic.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Float totals and gauges by name.
    pub values: BTreeMap<String, f64>,
    /// Histograms: `(buckets, count, sum)` by name.
    pub hists: BTreeMap<String, HistData>,
    /// Span timings by path.
    pub spans: BTreeMap<String, SpanStat>,
}

impl Snapshot {
    /// Counter value, defaulting to 0 when never recorded.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Float value (gauge or float counter), defaulting to 0.
    pub fn value(&self, name: &str) -> f64 {
        self.values.get(name).copied().unwrap_or(0.0)
    }

    /// Nearest-rank percentile of a snapshotted histogram (bucket
    /// upper bound, like [`Hist::percentile`]); `None` when the
    /// histogram was never recorded.
    pub fn hist_percentile(&self, name: &str, q: f64) -> Option<u64> {
        let (buckets, count, _) = self.hists.get(name)?;
        Some(percentile_from_buckets(buckets.iter().copied(), *count, q))
    }

    /// Mean of a snapshotted histogram; `None` when the histogram is
    /// absent *or* registered but never observed — a never-observed
    /// histogram has no mean, and reporting `0.0` for it would be
    /// indistinguishable from a true zero mean.
    pub fn hist_mean(&self, name: &str) -> Option<f64> {
        let (_, count, sum) = self.hists.get(name)?;
        (*count > 0).then(|| *sum as f64 / *count as f64)
    }

    /// Renders an aligned human-readable table (the CLI's `--metrics`).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if !self.spans.is_empty() {
            out.push_str(&format!(
                "  {:<44} {:>8} {:>12} {:>10}\n",
                "span", "count", "total_us", "max_us"
            ));
            for (name, s) in &self.spans {
                out.push_str(&format!(
                    "  {name:<44} {:>8} {:>12} {:>10}\n",
                    s.count, s.total_us, s.max_us
                ));
            }
        }
        if !(self.counters.is_empty() && self.values.is_empty()) {
            out.push_str(&format!("  {:<44} {:>12}\n", "counter", "value"));
            for (name, v) in &self.counters {
                out.push_str(&format!("  {name:<44} {v:>12}\n"));
            }
            for (name, v) in &self.values {
                out.push_str(&format!("  {name:<44} {v:>12.3}\n"));
            }
        }
        for (name, (buckets, count, sum)) in &self.hists {
            // A registered-but-never-observed histogram has no mean;
            // render `-` so it cannot be mistaken for a true 0.0 mean.
            let mean = if *count == 0 {
                "-".to_string()
            } else {
                format!("{:.2}", *sum as f64 / *count as f64)
            };
            out.push_str(&format!("  {name:<44} n={count} mean={mean} buckets: "));
            for (le, n) in buckets {
                out.push_str(&format!("le_{le}:{n} "));
            }
            out.push('\n');
        }
        out
    }
}

/// Shared state behind an enabled [`Recorder`].
struct Inner {
    sink: Arc<dyn Sink>,
    counters: Mutex<BTreeMap<String, Counter>>,
    floats: Mutex<BTreeMap<String, FloatCounter>>,
    hists: Mutex<BTreeMap<String, Hist>>,
    gauges: Mutex<BTreeMap<String, f64>>,
    spans: Mutex<BTreeMap<String, SpanStat>>,
}

/// The `Sync` observability handle. Clones share the same registry, so a
/// recorder can be handed to planner, executor and simulator and drained
/// once at the end.
///
/// Instrument handles (`counter`, `float_counter`, `hist`) are meant to
/// be hoisted out of hot loops: look the instrument up once, then record
/// through the handle with no lock on the hot path.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
    flight: FlightRecorder,
}

impl Recorder {
    /// A recorder draining to `sink`.
    pub fn new(sink: Arc<dyn Sink>) -> Self {
        Recorder {
            inner: Some(Arc::new(Inner {
                sink,
                counters: Mutex::new(BTreeMap::new()),
                floats: Mutex::new(BTreeMap::new()),
                hists: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                spans: Mutex::new(BTreeMap::new()),
            })),
            flight: FlightRecorder::disabled(),
        }
    }

    /// The no-op recorder: hands out detached instruments, never times
    /// spans, never drains. This is the default everywhere.
    pub fn disabled() -> Self {
        Recorder { inner: None, flight: FlightRecorder::disabled() }
    }

    /// Whether this recorder retains anything.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Attaches a [`FlightRecorder`]: every layer the recorder reaches
    /// can then emit causally-ordered trace events. A flight recorder
    /// rides along independently of the aggregate side — a
    /// [`Recorder::disabled`] recorder can still carry an enabled
    /// flight ring (and vice versa).
    pub fn with_flight(mut self, flight: FlightRecorder) -> Self {
        self.flight = flight;
        self
    }

    /// The flight-recorder handle (disabled unless attached via
    /// [`Recorder::with_flight`]). Cheap to clone; clones share the
    /// ring.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// The named counter, registered for drain (or detached when
    /// disabled). Repeated calls with the same name return handles over
    /// the same stripes.
    pub fn counter(&self, name: &str) -> Counter {
        match &self.inner {
            None => Counter::new(),
            Some(inner) => {
                lock_unpoisoned(&inner.counters).entry(name.to_string()).or_default().clone()
            }
        }
    }

    /// The named float counter.
    pub fn float_counter(&self, name: &str) -> FloatCounter {
        match &self.inner {
            None => FloatCounter::new(),
            Some(inner) => {
                lock_unpoisoned(&inner.floats).entry(name.to_string()).or_default().clone()
            }
        }
    }

    /// The named histogram.
    pub fn hist(&self, name: &str) -> Hist {
        match &self.inner {
            None => Hist::new(),
            Some(inner) => {
                lock_unpoisoned(&inner.hists).entry(name.to_string()).or_default().clone()
            }
        }
    }

    /// Sets a gauge — a value reported once at drain (per-shard memo
    /// stats, per-mote energy totals, estimated selectivities). Last
    /// write wins.
    pub fn gauge(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            lock_unpoisoned(&inner.gauges).insert(name.to_string(), value);
        }
    }

    /// Starts a root span. Timing only happens when the recorder is
    /// enabled; a disabled recorder's span is a zero-cost token.
    pub fn span(&self, name: &str) -> Span {
        Span {
            rec: self.clone(),
            path: if self.enabled() { name.to_string() } else { String::new() },
            // acqp-lint: allow(wallclock-in-planner): span timing is observational — never read back into a planning decision
            start: self.enabled().then(Instant::now),
        }
    }

    fn record_span(&self, path: &str, elapsed_us: u64) {
        if let Some(inner) = &self.inner {
            {
                let mut spans = lock_unpoisoned(&inner.spans);
                let s = spans.entry(path.to_string()).or_default();
                s.count += 1;
                s.total_us += elapsed_us;
                s.max_us = s.max_us.max(elapsed_us);
            }
            inner.sink.span_end(&SpanEvent { path: path.to_string(), elapsed_us });
        }
    }

    /// Merges every instrument into a [`Snapshot`], flushes it to the
    /// sink, and returns it. Instruments keep their totals; draining
    /// twice reports the same (or grown) values.
    pub fn drain(&self) -> Snapshot {
        let Some(inner) = &self.inner else { return Snapshot::default() };
        let mut snap = Snapshot::default();
        for (name, c) in lock_unpoisoned(&inner.counters).iter() {
            snap.counters.insert(name.clone(), c.value());
        }
        for (name, c) in lock_unpoisoned(&inner.floats).iter() {
            snap.values.insert(name.clone(), c.value());
        }
        for (name, v) in lock_unpoisoned(&inner.gauges).iter() {
            snap.values.insert(name.clone(), *v);
        }
        for (name, h) in lock_unpoisoned(&inner.hists).iter() {
            snap.hists.insert(name.clone(), (h.nonzero_buckets(), h.count(), h.sum()));
        }
        snap.spans = lock_unpoisoned(&inner.spans).clone();
        inner.sink.flush(&snap);
        snap
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Recorder(enabled={})", self.enabled())
    }
}

/// RAII span guard: created by [`Recorder::span`] or [`Span::child`],
/// records its elapsed time when dropped. Child spans extend the path
/// with a `.`-separated segment, giving the hierarchical taxonomy
/// (`planner.search.warm`) without thread-local ambient state.
#[derive(Debug)]
pub struct Span {
    rec: Recorder,
    path: String,
    start: Option<Instant>,
}

impl Span {
    /// A child span: same recorder, path extended with `name`.
    pub fn child(&self, name: &str) -> Span {
        let timed = self.start.is_some();
        Span {
            rec: self.rec.clone(),
            path: if timed { format!("{}.{name}", self.path) } else { String::new() },
            // acqp-lint: allow(wallclock-in-planner): span timing is observational — never read back into a planning decision
            start: timed.then(Instant::now),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let us = start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
            self.rec.record_span(&self.path, us);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_across_threads() {
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.incr(1);
                    }
                });
            }
        });
        assert_eq!(c.value(), 4000);
    }

    #[test]
    fn float_counter_accumulates() {
        let c = FloatCounter::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        c.add(0.25);
                    }
                });
            }
        });
        assert!((c.value() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn hist_buckets_by_power_of_two() {
        let h = Hist::new();
        for v in [0, 1, 2, 3, 4, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1010);
        let b: std::collections::HashMap<u64, u64> = h.nonzero_buckets().into_iter().collect();
        assert_eq!(b[&1], 2); // 0 and 1
        assert_eq!(b[&2], 1); // 2
        assert_eq!(b[&4], 2); // 3 and 4
        assert_eq!(b[&1024], 1); // 1000
    }

    #[test]
    fn hist_percentiles_nearest_rank() {
        let h = Hist::new();
        assert_eq!(h.p50(), 0); // empty
        for _ in 0..90 {
            h.observe(1);
        }
        for _ in 0..9 {
            h.observe(100); // le_128
        }
        h.observe(10_000); // le_16384
        assert_eq!(h.p50(), 1);
        assert_eq!(h.p90(), 1); // rank 90 of 100 is the last le_1 obs
        assert_eq!(h.p99(), 128);
        assert_eq!(h.percentile(1.0), 16_384);
        // Snapshot-side percentile agrees with the live handle.
        let rec = Recorder::new(std::sync::Arc::new(MemorySink::new()));
        let rh = rec.hist("t.lat");
        for v in [1u64, 1, 1, 1000] {
            rh.observe(v);
        }
        let snap = rec.drain();
        assert_eq!(snap.hist_percentile("t.lat", 0.5), Some(1));
        assert_eq!(snap.hist_percentile("t.lat", 1.0), Some(1024));
        assert_eq!(snap.hist_percentile("absent", 0.5), None);
    }

    #[test]
    fn never_observed_hist_renders_absent_mean() {
        let rec = Recorder::new(Arc::new(NoopSink));
        let _registered = rec.hist("t.empty");
        rec.hist("t.zeros").observe(0);
        let snap = rec.drain();
        // The never-observed histogram must be distinguishable from one
        // whose observations genuinely average to zero.
        assert_eq!(snap.hist_mean("t.empty"), None);
        assert_eq!(snap.hist_mean("t.zeros"), Some(0.0));
        assert_eq!(snap.hist_mean("t.absent"), None);
        let table = snap.render_table();
        let empty_line = table.lines().find(|l| l.contains("t.empty")).unwrap();
        assert!(empty_line.contains("n=0 mean=- buckets:"), "{empty_line}");
        let zeros_line = table.lines().find(|l| l.contains("t.zeros")).unwrap();
        assert!(zeros_line.contains("n=1 mean=0.00 buckets:"), "{zeros_line}");
    }

    #[test]
    fn top_bucket_bound_agrees_between_views() {
        let h = Hist::new();
        h.observe(u64::MAX); // lands in the overflow bucket
        h.observe(1u64 << 40); // also beyond the last finite bound
        let buckets = h.nonzero_buckets();
        assert_eq!(buckets.len(), 1, "{buckets:?}");
        let (top_le, n) = buckets[0];
        assert_eq!(n, 2);
        // The overflow bucket's bound must be exactly what `percentile`
        // reports for the same observations — the two views may never
        // disagree on a bucket bound.
        assert_eq!(top_le, 1u64 << (HIST_BUCKETS - 1).min(63));
        assert_eq!(h.percentile(1.0), top_le);
        assert_eq!(h.p50(), top_le);
    }

    #[test]
    fn recorder_carries_flight() {
        let rec = Recorder::disabled().with_flight(FlightRecorder::new(8));
        assert!(!rec.enabled());
        assert!(rec.flight().enabled());
        rec.flight().emit(0, 0, "x", &[]);
        assert_eq!(rec.clone().flight().len(), 1);
        assert!(!Recorder::disabled().flight().enabled());
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let rec = Recorder::disabled();
        assert!(!rec.enabled());
        let c = rec.counter("x");
        c.incr(5);
        let _span = rec.span("s");
        drop(_span);
        let snap = rec.drain();
        assert!(snap.counters.is_empty());
        assert!(snap.spans.is_empty());
    }

    #[test]
    fn same_name_returns_same_instrument() {
        let rec = Recorder::new(Arc::new(NoopSink));
        rec.counter("a").incr(2);
        rec.counter("a").incr(3);
        rec.float_counter("f").add(1.5);
        rec.float_counter("f").add(1.5);
        let snap = rec.drain();
        assert_eq!(snap.counter("a"), 5);
        assert!((snap.value("f") - 3.0).abs() < 1e-12);
    }

    #[test]
    fn spans_aggregate_and_nest() {
        let sink = Arc::new(MemorySink::new());
        let rec = Recorder::new(sink.clone());
        {
            let root = rec.span("search");
            {
                let _warm = root.child("warm");
            }
            {
                let _warm = root.child("warm");
            }
        }
        let snap = rec.drain();
        assert_eq!(snap.spans["search"].count, 1);
        assert_eq!(snap.spans["search.warm"].count, 2);
        let events = sink.span_events();
        assert_eq!(events.len(), 3);
        // Children complete before their parent.
        assert_eq!(events[0].path, "search.warm");
        assert_eq!(events[2].path, "search");
    }

    #[test]
    fn gauges_last_write_wins() {
        let rec = Recorder::new(Arc::new(NoopSink));
        rec.gauge("g", 1.0);
        rec.gauge("g", 2.5);
        assert_eq!(rec.drain().value("g"), 2.5);
    }

    #[test]
    fn drain_is_idempotent_on_totals() {
        let rec = Recorder::new(Arc::new(NoopSink));
        rec.counter("c").incr(7);
        assert_eq!(rec.drain().counter("c"), 7);
        assert_eq!(rec.drain().counter("c"), 7);
    }
}
