//! Pluggable metric sinks: no-op, JSON-lines file, in-memory.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
// acqp-lint: allow(raw-mutex): acqp-obs sits below acqp-core in the dependency graph, so NoPoisonMutex is out of reach; sink locks only guard plain buffer writes
use std::sync::Mutex;

use crate::{lock_unpoisoned, Snapshot};

/// A completed span, streamed to the sink as it ends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Dot-separated span path (`planner.search.warm`).
    pub path: String,
    /// Elapsed wall-clock microseconds (monotonic clock).
    pub elapsed_us: u64,
}

/// Where drained metrics go. Span ends are streamed live (so a trace
/// shows timings in completion order); counters, gauges and histograms
/// are flushed once per [`crate::Recorder::drain`].
pub trait Sink: Send + Sync {
    /// Called as each span guard drops.
    fn span_end(&self, _event: &SpanEvent) {}
    /// Called by `drain` with the merged snapshot.
    fn flush(&self, _snapshot: &Snapshot) {}
}

/// Discards everything. (A [`crate::Recorder::disabled`] recorder is
/// cheaper still — it never aggregates — but a `NoopSink` recorder is
/// useful when a test wants snapshots without any I/O.)
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl Sink for NoopSink {}

/// Captures span events and flushed snapshots in memory, for tests.
#[derive(Debug, Default)]
pub struct MemorySink {
    spans: Mutex<Vec<SpanEvent>>,
    snapshots: Mutex<Vec<Snapshot>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// Every span completion seen so far, in completion order.
    pub fn span_events(&self) -> Vec<SpanEvent> {
        lock_unpoisoned(&self.spans).clone()
    }

    /// Every flushed snapshot, oldest first.
    pub fn snapshots(&self) -> Vec<Snapshot> {
        lock_unpoisoned(&self.snapshots).clone()
    }
}

impl Sink for MemorySink {
    fn span_end(&self, event: &SpanEvent) {
        lock_unpoisoned(&self.spans).push(event.clone());
    }

    fn flush(&self, snapshot: &Snapshot) {
        lock_unpoisoned(&self.snapshots).push(snapshot.clone());
    }
}

/// Writes one JSON object per line to a file:
///
/// ```text
/// {"span":"planner.search","elapsed_us":1234}
/// {"counter":"planner.memo.hit","value":5678}
/// {"counter":"exec.cost_per_tuple.le_16","value":12}
/// ```
///
/// Every line carries either `span` + `elapsed_us` or `counter` +
/// `value` — the two shapes the CI smoke check validates. Histograms
/// flatten to one `counter` line per non-empty bucket plus `.count` and
/// `.sum`; span aggregates flatten to `.count`/`.total_us`/`.max_us`.
#[derive(Debug)]
pub struct JsonLinesSink {
    out: Mutex<BufWriter<File>>,
}

impl JsonLinesSink {
    /// Creates (truncates) `path`.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        Ok(JsonLinesSink { out: Mutex::new(BufWriter::new(File::create(path)?)) })
    }

    fn counter_line(w: &mut impl Write, name: &str, value: f64) {
        // Non-finite values have no JSON encoding; clamp to 0.
        let value = if value.is_finite() { value } else { 0.0 };
        let _ = writeln!(w, "{{\"counter\":{},\"value\":{value}}}", json_string(name));
    }
}

impl Sink for JsonLinesSink {
    fn span_end(&self, event: &SpanEvent) {
        let mut out = lock_unpoisoned(&self.out);
        let _ = writeln!(
            out,
            "{{\"span\":{},\"elapsed_us\":{}}}",
            json_string(&event.path),
            event.elapsed_us
        );
    }

    fn flush(&self, snapshot: &Snapshot) {
        let mut out = lock_unpoisoned(&self.out);
        for (name, v) in &snapshot.counters {
            Self::counter_line(&mut *out, name, *v as f64);
        }
        for (name, v) in &snapshot.values {
            Self::counter_line(&mut *out, name, *v);
        }
        for (name, (buckets, count, sum)) in &snapshot.hists {
            Self::counter_line(&mut *out, &format!("{name}.count"), *count as f64);
            Self::counter_line(&mut *out, &format!("{name}.sum"), *sum as f64);
            for (le, n) in buckets {
                Self::counter_line(&mut *out, &format!("{name}.le_{le}"), *n as f64);
            }
        }
        for (name, s) in &snapshot.spans {
            Self::counter_line(&mut *out, &format!("span.{name}.count"), s.count as f64);
            Self::counter_line(&mut *out, &format!("span.{name}.total_us"), s.total_us as f64);
            Self::counter_line(&mut *out, &format!("span.{name}.max_us"), s.max_us as f64);
        }
        let _ = out.flush();
    }
}

/// Minimal JSON string encoding (quotes, backslashes, control chars).
/// Metric names are plain identifiers, but the output must stay valid
/// JSON whatever a caller passes. Shared with the flight-recorder
/// exporters in [`crate::trace`].
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;
    use std::sync::Arc;

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("plain.name"), "\"plain.name\"");
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn json_lines_sink_emits_valid_shapes() {
        let dir = std::env::temp_dir().join(format!("acqp_obs_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        {
            let rec = Recorder::new(Arc::new(JsonLinesSink::create(&path).unwrap()));
            rec.counter("planner.memo.hit").incr(3);
            rec.gauge("exec.pred0.est_sel", 0.5);
            rec.hist("exec.cost_per_tuple").observe(12);
            drop(rec.span("planner.search"));
            rec.drain();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() >= 5, "got {lines:?}");
        for line in &lines {
            // Every line is exactly one of the two documented shapes.
            let span_shape = line.starts_with("{\"span\":") && line.contains("\"elapsed_us\":");
            let counter_shape = line.starts_with("{\"counter\":") && line.contains("\"value\":");
            assert!(span_shape || counter_shape, "unexpected line {line}");
            assert!(line.ends_with('}'));
        }
        assert!(text.contains("{\"counter\":\"planner.memo.hit\",\"value\":3}"), "{text}");
        assert!(text.contains("\"span\":\"planner.search\""));
        std::fs::remove_dir_all(&dir).ok();
    }
}
