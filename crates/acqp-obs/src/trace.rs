//! Deterministic, bounded-memory flight recorder (DESIGN.md §13).
//!
//! A [`FlightRecorder`] is a ring buffer of structured [`TraceEvent`]s
//! emitted from every layer of the stack: plan search, plan adoption and
//! replan decisions, fault retries, crash/recovery, per-epoch simulation
//! time series, and batch-executor stage tallies. Events are
//! monotonically sequenced (`seq`, starting at 1) and causally ordered:
//! an event may name the `seq` of the event that caused it (`cause`,
//! 0 = none), and causes always precede effects in the log.
//!
//! Determinism contract:
//! - Events carry **simulation epochs and sequence numbers, never wall
//!   clock**, so a fixed seed yields a bitwise-identical trace.
//! - A disabled recorder ([`FlightRecorder::disabled`]) is bitwise
//!   transparent: `emit` returns 0 and touches nothing.
//! - The ring never silently truncates: overflow evicts the oldest
//!   event *and counts it* (`dropped`); every exporter appends a
//!   terminal `trace.dropped` record when the count is nonzero.
//!
//! Three exporters share the event stream:
//! - [`FlightRecorder::to_chrome_json`] — Chrome trace-event JSON,
//!   loadable in Perfetto / `chrome://tracing` (`ts` is the sequence
//!   number, tracks are top-level event categories).
//! - [`FlightRecorder::to_epoch_jsonl`] — one JSON object per
//!   `epoch.*` event: the per-epoch time series.
//! - [`FlightRecorder::to_timeline`] — an aligned human-readable text
//!   timeline for the CLI.

use std::collections::VecDeque;
use std::sync::Arc;

use crate::lock_unpoisoned;
// acqp-obs sits below acqp-core in the dependency graph, so
// NoPoisonMutex is out of reach; the ring lock only guards a plain
// VecDeque push/pop and every critical section is panic-free.
// acqp-lint: allow(raw-mutex): acqp-obs is below acqp-core; panic-free critical sections
use std::sync::Mutex;

use crate::sink::json_string;

/// One typed field value on a [`TraceEvent`].
#[derive(Debug, Clone, PartialEq)]
pub enum TraceValue {
    /// Unsigned integer (counts, epochs, mote ids).
    U64(u64),
    /// Signed integer (deltas).
    I64(i64),
    /// Float (costs, selectivities, energy). Rendered with Rust's
    /// shortest round-trip formatting, so equal bits render equally.
    F64(f64),
    /// Flag (adopted, recovered).
    Bool(bool),
    /// Short label (planner name, attribute).
    Str(String),
}

impl TraceValue {
    /// JSON rendering. Non-finite floats have no JSON encoding and are
    /// clamped to 0, matching [`crate::JsonLinesSink`].
    fn to_json(&self) -> String {
        match self {
            TraceValue::U64(v) => v.to_string(),
            TraceValue::I64(v) => v.to_string(),
            TraceValue::F64(v) => {
                if v.is_finite() {
                    format!("{v}")
                } else {
                    "0".to_string()
                }
            }
            TraceValue::Bool(v) => v.to_string(),
            TraceValue::Str(s) => json_string(s),
        }
    }

    /// Bare rendering for the text timeline (strings unquoted).
    fn to_text(&self) -> String {
        match self {
            TraceValue::Str(s) => s.clone(),
            other => other.to_json(),
        }
    }
}

impl From<u64> for TraceValue {
    fn from(v: u64) -> Self {
        TraceValue::U64(v)
    }
}

impl From<usize> for TraceValue {
    fn from(v: usize) -> Self {
        TraceValue::U64(v as u64)
    }
}

impl From<i64> for TraceValue {
    fn from(v: i64) -> Self {
        TraceValue::I64(v)
    }
}

impl From<f64> for TraceValue {
    fn from(v: f64) -> Self {
        TraceValue::F64(v)
    }
}

impl From<bool> for TraceValue {
    fn from(v: bool) -> Self {
        TraceValue::Bool(v)
    }
}

impl From<&str> for TraceValue {
    fn from(v: &str) -> Self {
        TraceValue::Str(v.to_string())
    }
}

impl From<String> for TraceValue {
    fn from(v: String) -> Self {
        TraceValue::Str(v)
    }
}

/// One structured event in the flight log.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Monotonic sequence number, 1-based; emission order == seq order.
    pub seq: u64,
    /// Simulation epoch the event belongs to (0 for pre-simulation
    /// events such as planning).
    pub epoch: u64,
    /// `seq` of the causing event, or 0 when the event is a root.
    /// Causes always have a smaller `seq` than their effects.
    pub cause: u64,
    /// Dot-separated event name (`plan.search.end`, `epoch.tick`),
    /// first segment = category/track.
    pub name: String,
    /// Typed payload, in emission order (deterministic).
    pub fields: Vec<(String, TraceValue)>,
}

impl TraceEvent {
    /// Looks up a field by key.
    pub fn field(&self, key: &str) -> Option<&TraceValue> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// Ring state behind one enabled recorder: a single lock covers the
/// buffer *and* the sequence counter, so sequence order is emission
/// order even under concurrent emitters.
#[derive(Debug)]
struct Ring {
    cap: usize,
    next_seq: u64,
    dropped: u64,
    buf: VecDeque<TraceEvent>,
}

/// Default ring capacity: enough for the full event stream of a
/// Fig. 3-scale simulation without eviction.
pub const DEFAULT_FLIGHT_CAP: usize = 65_536;

/// The flight-recorder handle. Clones share the same ring. The
/// [`FlightRecorder::disabled`] recorder is bitwise transparent: every
/// method is a no-op and `emit` returns 0.
#[derive(Debug, Clone, Default)]
pub struct FlightRecorder {
    inner: Option<Arc<Mutex<Ring>>>,
}

impl FlightRecorder {
    /// An enabled recorder retaining at most `cap` events (clamped to at
    /// least 1). Past the cap, the oldest event is evicted and counted.
    pub fn new(cap: usize) -> Self {
        FlightRecorder {
            inner: Some(Arc::new(Mutex::new(Ring {
                cap: cap.max(1),
                next_seq: 1,
                dropped: 0,
                buf: VecDeque::new(),
            }))),
        }
    }

    /// The transparent no-op recorder (the default everywhere).
    pub fn disabled() -> Self {
        FlightRecorder { inner: None }
    }

    /// Whether events are retained.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records one event; returns its sequence number (0 when
    /// disabled, so a disabled recorder's "cause" chains stay 0 too).
    pub fn emit(&self, epoch: u64, cause: u64, name: &str, fields: &[(&str, TraceValue)]) -> u64 {
        if self.inner.is_none() {
            return 0;
        }
        self.emit_owned(
            epoch,
            cause,
            name,
            fields.iter().map(|(k, v)| (k.to_string(), v.clone())).collect(),
        )
    }

    /// [`FlightRecorder::emit`] with owned field names, for callers
    /// building dynamic keys (`mote3_uj`).
    pub fn emit_owned(
        &self,
        epoch: u64,
        cause: u64,
        name: &str,
        fields: Vec<(String, TraceValue)>,
    ) -> u64 {
        let Some(inner) = &self.inner else { return 0 };
        let mut ring = lock_unpoisoned(inner);
        let seq = ring.next_seq;
        ring.next_seq += 1;
        if ring.buf.len() == ring.cap {
            ring.buf.pop_front();
            ring.dropped += 1;
        }
        ring.buf.push_back(TraceEvent { seq, epoch, cause, name: name.to_string(), fields });
        seq
    }

    /// Snapshot of retained events, oldest first (seq ascending).
    pub fn events(&self) -> Vec<TraceEvent> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => lock_unpoisoned(inner).buf.iter().cloned().collect(),
        }
    }

    /// Events evicted by ring overflow.
    pub fn dropped(&self) -> u64 {
        match &self.inner {
            None => 0,
            Some(inner) => lock_unpoisoned(inner).dropped,
        }
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        match &self.inner {
            None => 0,
            Some(inner) => lock_unpoisoned(inner).buf.len(),
        }
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever emitted (retained + dropped).
    pub fn emitted(&self) -> u64 {
        match &self.inner {
            None => 0,
            Some(inner) => lock_unpoisoned(inner).next_seq - 1,
        }
    }

    /// The ring capacity (0 when disabled).
    pub fn cap(&self) -> usize {
        match &self.inner {
            None => 0,
            Some(inner) => lock_unpoisoned(inner).cap,
        }
    }

    /// Chrome trace-event JSON (the "JSON object format": a
    /// `traceEvents` array), loadable in Perfetto. Each event becomes an
    /// instant event (`ph:"i"`) with `ts` = sequence number; tracks
    /// (`tid`) are top-level name segments in order of first appearance,
    /// labeled via `thread_name` metadata records. Deterministic for a
    /// deterministic event stream.
    pub fn to_chrome_json(&self) -> String {
        let events = self.events();
        let dropped = self.dropped();
        let mut records: Vec<String> = Vec::with_capacity(events.len() + 8);
        // Track ids by top-level category, in order of first appearance.
        let mut seen: Vec<String> = Vec::new();
        for ev in &events {
            let cat = ev.name.split('.').next().unwrap_or(&ev.name).to_string();
            if !seen.contains(&cat) {
                seen.push(cat);
            }
        }
        if dropped > 0 {
            let cat = "trace".to_string();
            if !seen.contains(&cat) {
                seen.push(cat);
            }
        }
        for (tid, cat) in seen.iter().enumerate() {
            records.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"args\":{{\"name\":{}}}}}",
                json_string(cat)
            ));
        }
        let tid_for = |name: &str| -> usize {
            let cat = name.split('.').next().unwrap_or(name);
            seen.iter().position(|t| t == cat).unwrap_or(0)
        };
        for ev in &events {
            let mut args =
                format!("\"seq\":{},\"epoch\":{},\"cause\":{}", ev.seq, ev.epoch, ev.cause);
            for (k, v) in &ev.fields {
                args.push_str(&format!(",{}:{}", json_string(k), v.to_json()));
            }
            records.push(format!(
                "{{\"name\":{},\"ph\":\"i\",\"ts\":{},\"pid\":0,\"tid\":{},\"s\":\"t\",\"args\":{{{args}}}}}",
                json_string(&ev.name),
                ev.seq,
                tid_for(&ev.name)
            ));
        }
        if dropped > 0 {
            let ts = events.last().map(|e| e.seq + 1).unwrap_or(1);
            records.push(format!(
                "{{\"name\":\"trace.dropped\",\"ph\":\"i\",\"ts\":{ts},\"pid\":0,\"tid\":{},\"s\":\"t\",\"args\":{{\"dropped\":{dropped}}}}}",
                tid_for("trace.dropped")
            ));
        }
        let mut out = String::from("{\"traceEvents\":[\n");
        for (i, r) in records.iter().enumerate() {
            out.push_str(r);
            if i + 1 < records.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("]}\n");
        out
    }

    /// Per-epoch JSONL time series: one JSON object per `epoch.*` event
    /// (the simulator's per-epoch tick stream), fields flattened, plus a
    /// terminal `trace.dropped` line when the ring overflowed.
    pub fn to_epoch_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in self.events() {
            if !ev.name.starts_with("epoch.") {
                continue;
            }
            let mut line = format!(
                "{{\"event\":{},\"seq\":{},\"epoch\":{}",
                json_string(&ev.name),
                ev.seq,
                ev.epoch
            );
            for (k, v) in &ev.fields {
                line.push_str(&format!(",{}:{}", json_string(k), v.to_json()));
            }
            line.push('}');
            out.push_str(&line);
            out.push('\n');
        }
        let dropped = self.dropped();
        if dropped > 0 {
            out.push_str(&format!("{{\"event\":\"trace.dropped\",\"dropped\":{dropped}}}\n"));
        }
        out
    }

    /// Aligned human-readable timeline (the CLI's `--flight-timeline`).
    pub fn to_timeline(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "  {:>8} {:>6} {:>8} {:<28} fields\n",
            "seq", "epoch", "cause", "event"
        ));
        for ev in self.events() {
            let cause = if ev.cause == 0 { "-".to_string() } else { ev.cause.to_string() };
            let mut fields = String::new();
            for (k, v) in &ev.fields {
                fields.push_str(&format!("{k}={} ", v.to_text()));
            }
            out.push_str(&format!(
                "  {:>8} {:>6} {:>8} {:<28} {}\n",
                ev.seq,
                ev.epoch,
                cause,
                ev.name,
                fields.trim_end()
            ));
        }
        let dropped = self.dropped();
        if dropped > 0 {
            out.push_str(&format!(
                "  !! trace.dropped: ring overflow evicted the {dropped} oldest events\n"
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_transparent() {
        let fr = FlightRecorder::disabled();
        assert!(!fr.enabled());
        assert_eq!(fr.emit(0, 0, "x", &[]), 0);
        assert_eq!(fr.events(), Vec::new());
        assert_eq!(fr.dropped(), 0);
        assert_eq!(fr.emitted(), 0);
        assert_eq!(fr.cap(), 0);
    }

    #[test]
    fn seq_is_monotonic_and_causal() {
        let fr = FlightRecorder::new(16);
        let a = fr.emit(0, 0, "plan.search.start", &[("planner", "exhaustive".into())]);
        let b = fr.emit(0, a, "plan.search.end", &[("cost", 12.5.into())]);
        assert_eq!((a, b), (1, 2));
        let evs = fr.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[1].cause, a);
        assert!(evs[1].cause < evs[1].seq);
        assert_eq!(evs[1].field("cost"), Some(&TraceValue::F64(12.5)));
    }

    #[test]
    fn overflow_is_counted_never_silent() {
        let fr = FlightRecorder::new(2);
        for i in 0..5u64 {
            fr.emit(i, 0, "e", &[]);
        }
        assert_eq!(fr.len(), 2);
        assert_eq!(fr.dropped(), 3);
        assert_eq!(fr.emitted(), 5);
        // Oldest evicted: retained seqs are 4 and 5.
        let seqs: Vec<u64> = fr.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![4, 5]);
        assert!(fr.to_chrome_json().contains("\"trace.dropped\""));
        assert!(fr.to_epoch_jsonl().contains("\"dropped\":3"));
        assert!(fr
            .to_timeline()
            .contains("trace.dropped: ring overflow evicted the 3 oldest events"));
    }

    #[test]
    fn chrome_export_shape() {
        let fr = FlightRecorder::new(16);
        fr.emit(0, 0, "plan.search.start", &[("planner", "greedy".into())]);
        fr.emit(3, 1, "epoch.tick", &[("tuples", 7u64.into()), ("energy", 1.25.into())]);
        let json = fr.to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"name\":\"plan.search.start\""));
        assert!(json.contains("\"epoch\":3"));
        assert!(json.contains("\"energy\":1.25"));
        // Two categories → two thread_name metadata records, tids 0 and 1.
        assert!(json.contains("\"tid\":1"));
    }

    #[test]
    fn epoch_jsonl_filters_epoch_events() {
        let fr = FlightRecorder::new(16);
        fr.emit(0, 0, "plan.search.start", &[]);
        fr.emit(1, 0, "epoch.tick", &[("tuples", 3u64.into())]);
        fr.emit(2, 0, "epoch.tick", &[("tuples", 4u64.into())]);
        let jsonl = fr.to_epoch_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        assert!(jsonl.lines().all(|l| l.starts_with("{\"event\":\"epoch.tick\"")));
    }

    #[test]
    fn clones_share_the_ring() {
        let fr = FlightRecorder::new(8);
        let fr2 = fr.clone();
        fr.emit(0, 0, "a", &[]);
        fr2.emit(0, 0, "b", &[]);
        assert_eq!(fr.len(), 2);
        assert_eq!(fr.events()[1].seq, 2);
    }
}
