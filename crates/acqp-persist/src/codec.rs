//! Fixed-layout little-endian byte codec.
//!
//! Everything persisted by this crate flows through [`Writer`] /
//! [`Reader`]: unsigned integers little-endian, `f64` as IEEE-754 bit
//! patterns (`to_bits`/`from_bits`, so round trips are bit-exact, NaN
//! payloads included), and sequences length-prefixed with `u32`. The
//! reader never panics on truncated or oversized input — every decode
//! error is a [`PersistError::Corrupt`] the recovery path can fall back
//! from.

use crate::{PersistError, Result};

/// Append-only byte sink.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16`, little-endian.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends raw bytes with a `u32` length prefix.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Appends a `u16` slice with a `u32` length prefix.
    pub fn u16s(&mut self, v: &[u16]) {
        self.u32(v.len() as u32);
        for &x in v {
            self.u16(x);
        }
    }

    /// Appends a `u64` slice with a `u32` length prefix.
    pub fn u64s(&mut self, v: &[u64]) {
        self.u32(v.len() as u32);
        for &x in v {
            self.u64(x);
        }
    }

    /// Appends an `f64` slice with a `u32` length prefix.
    pub fn f64s(&mut self, v: &[f64]) {
        self.u32(v.len() as u32);
        for &x in v {
            self.f64(x);
        }
    }
}

/// Bounds-checked cursor over encoded bytes.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

/// Hard ceiling on any length prefix (items). Corrupt prefixes would
/// otherwise ask the reader to allocate terabytes before the bounds
/// check could fail.
const MAX_LEN: u32 = 1 << 28;

impl<'a> Reader<'a> {
    /// A cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Errors unless every byte was consumed — trailing garbage is
    /// corruption, not padding.
    pub fn finish(self) -> Result<()> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(PersistError::Corrupt { what: "trailing bytes after decoded value" })
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(PersistError::Corrupt { what: "truncated input" });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn len_prefix(&mut self) -> Result<usize> {
        let n = self.u32()?;
        if n > MAX_LEN {
            return Err(PersistError::Corrupt { what: "implausible length prefix" });
        }
        Ok(n as usize)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16> {
        le_u16(self.take(2)?).ok_or(PersistError::Corrupt { what: "truncated input" })
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        le_u32(self.take(4)?).ok_or(PersistError::Corrupt { what: "truncated input" })
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        le_u64(self.take(8)?).ok_or(PersistError::Corrupt { what: "truncated input" })
    }

    /// Reads an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `u32`-length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<Vec<u8>> {
        let n = self.len_prefix()?;
        Ok(self.take(n)?.to_vec())
    }

    /// Reads a `u32`-length-prefixed `u16` slice.
    pub fn u16s(&mut self) -> Result<Vec<u16>> {
        let n = self.len_prefix()?;
        (0..n).map(|_| self.u16()).collect()
    }

    /// Reads a `u32`-length-prefixed `u64` slice.
    pub fn u64s(&mut self) -> Result<Vec<u64>> {
        let n = self.len_prefix()?;
        (0..n).map(|_| self.u64()).collect()
    }

    /// Reads a `u32`-length-prefixed `f64` slice.
    pub fn f64s(&mut self) -> Result<Vec<f64>> {
        let n = self.len_prefix()?;
        (0..n).map(|_| self.f64()).collect()
    }
}

/// Decodes a little-endian `u16` from exactly two bytes, `None` on any
/// other length. Slice patterns instead of `try_into().unwrap()`: the
/// recovery paths that call these must survive arbitrarily truncated
/// on-disk bytes without a panic (acqp-lint `panic-in-lib`).
pub(crate) fn le_u16(b: &[u8]) -> Option<u16> {
    match *b {
        [a, b] => Some(u16::from_le_bytes([a, b])),
        _ => None,
    }
}

/// See [`le_u16`].
pub(crate) fn le_u32(b: &[u8]) -> Option<u32> {
    match *b {
        [a, b, c, d] => Some(u32::from_le_bytes([a, b, c, d])),
        _ => None,
    }
}

/// See [`le_u16`].
pub(crate) fn le_u64(b: &[u8]) -> Option<u64> {
    match *b {
        [a, b, c, d, e, f, g, h] => Some(u64::from_le_bytes([a, b, c, d, e, f, g, h])),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_types() {
        let mut w = Writer::new();
        w.u8(7);
        w.u16(65535);
        w.u32(123456);
        w.u64(u64::MAX);
        w.f64(-0.0);
        w.f64(f64::from_bits(0x7ff8_dead_beef_cafe)); // NaN with payload
        w.bytes(b"wire");
        w.u16s(&[1, 2, 3]);
        w.u64s(&[9, 10]);
        w.f64s(&[1.5]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 65535);
        assert_eq!(r.u32().unwrap(), 123456);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.f64().unwrap().to_bits(), 0x7ff8_dead_beef_cafe);
        assert_eq!(r.bytes().unwrap(), b"wire");
        assert_eq!(r.u16s().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.u64s().unwrap(), vec![9, 10]);
        assert_eq!(r.f64s().unwrap(), vec![1.5]);
        r.finish().unwrap();
    }

    #[test]
    fn truncation_and_trailing_bytes_error() {
        let mut w = Writer::new();
        w.u64(1);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..5]);
        assert!(r.u64().is_err());
        let mut r = Reader::new(&bytes);
        r.u32().unwrap();
        assert!(r.finish().is_err());
    }

    #[test]
    fn implausible_length_prefix_rejected_without_allocation() {
        let mut w = Writer::new();
        w.u32(u32::MAX); // claims 4 billion items
        let bytes = w.into_bytes();
        assert!(Reader::new(&bytes).u64s().is_err());
        assert!(Reader::new(&bytes).bytes().is_err());
    }
}
