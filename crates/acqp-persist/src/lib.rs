//! # acqp-persist — crash-safe basestation persistence
//!
//! The basestation's most expensive asset is state it *learned*: the
//! counting estimator's per-row truth masks (one full dataset pass per
//! query, §5), the drift monitor's accumulated per-predicate counts,
//! the sliding window of live tuples, and the currently adopted plan
//! version. A process crash that loses them forces a cold restart that
//! re-pays all of it — plus a full re-dissemination over the radio,
//! the paper's dominant energy cost. This crate persists that state
//! with two cooperating artifacts, hand-rolled with zero external
//! dependencies (like `acqp-obs`):
//!
//! * **Snapshots** ([`snapshot`]) — a versioned, checksummed, atomic
//!   full-state image ([`BasestationCheckpoint`]), written at a
//!   configurable epoch cadence.
//! * **Write-ahead log** ([`wal`]) — an append-only journal of state
//!   *deltas* ([`WalRecord`]) between snapshots, each record
//!   sequence-numbered and individually checksummed.
//!
//! [`CheckpointStore`] ([`store`]) manages a directory of both and
//! implements recovery: newest valid snapshot, plus replay of exactly
//! the WAL records with sequence numbers beyond it. Sequence filtering
//! makes replay **idempotent** — replaying the same log over the same
//! snapshot any number of times produces the same state — and makes
//! the snapshot/WAL pair redundant: if every snapshot is corrupt, the
//! full WAL rebuilds the state from genesis; if the WAL tail is torn
//! (the normal case after a crash), the valid prefix still applies.
//!
//! Corruption is detected, counted, and *contained*: a bad record ends
//! replay at the last valid prefix, a bad snapshot falls back to the
//! previous one (then to cold start), and nothing in this crate panics
//! on hostile bytes — property-tested in the workspace's
//! `tests/crash_recovery.rs`.

#![warn(missing_docs)]

pub mod codec;
pub mod snapshot;
pub mod store;
pub mod wal;

pub use snapshot::{
    BasestationCheckpoint, PlanRecord, ServeCheckpoint, ServeLiveRecord, ServePlanEntry,
};
pub use store::{CheckpointStore, RecoveryOutcome, ServeRecoveryOutcome};
pub use wal::WalRecord;

/// Errors from persistence operations.
///
/// `Corrupt` is deliberately separate from `Io`: recovery treats
/// corruption as *data loss to fall back from* (an earlier snapshot, a
/// shorter WAL prefix, cold start) while I/O errors are surfaced to the
/// caller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// An operating-system level failure (open/read/write/rename).
    Io {
        /// Path involved.
        path: String,
        /// The OS error, stringified.
        what: String,
    },
    /// Bytes that do not decode to a valid artifact: bad magic, version,
    /// checksum mismatch, truncation, or invariant-violating contents.
    Corrupt {
        /// What failed to validate.
        what: &'static str,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io { path, what } => write!(f, "i/o error on {path}: {what}"),
            PersistError::Corrupt { what } => write!(f, "corrupt persistence artifact: {what}"),
        }
    }
}

impl std::error::Error for PersistError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, PersistError>;

pub(crate) fn io_err(path: &std::path::Path, e: std::io::Error) -> PersistError {
    PersistError::Io { path: path.display().to_string(), what: e.to_string() }
}

/// FNV-1a 64-bit checksum — the same shape of tiny, dependency-free
/// integrity hash the fault model uses for determinism (splitmix64).
/// Not cryptographic; it guards against torn writes and bit rot, not
/// adversaries.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable_and_sensitive() {
        // Known-answer: FNV-1a 64 of the empty string is the offset
        // basis; of "a" the published value.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        // Single-bit flips change the checksum.
        assert_ne!(fnv1a64(&[0x00]), fnv1a64(&[0x01]));
    }
}
