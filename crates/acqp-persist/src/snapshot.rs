//! Versioned, checksummed full-state snapshots.
//!
//! File layout (all integers little-endian):
//!
//! ```text
//! +---------------------+  magic  b"ACQPSNAP"            (8 bytes)
//! | header              |  format version u16            (2 bytes)
//! |                     |  payload length  u32           (4 bytes)
//! +---------------------+
//! | payload             |  BasestationCheckpoint codec
//! +---------------------+
//! | checksum            |  fnv1a64(everything above)     (8 bytes)
//! +---------------------+
//! ```
//!
//! The checksum covers the header too, so a flipped version byte or a
//! truncated payload both read as corruption, not as a different valid
//! file. Writes go through a temp file + rename so a crash mid-write
//! leaves either the old snapshot or a file that fails validation —
//! never a half-written file that passes.

use std::path::Path;

use acqp_core::prelude::{DriftConfig, DriftMonitorState, Pred, Query};
use acqp_stream::WindowState;

use crate::codec::{Reader, Writer};
use crate::{fnv1a64, io_err, PersistError, Result};

/// Snapshot file magic.
pub const SNAP_MAGIC: &[u8; 8] = b"ACQPSNAP";
/// Snapshot format version this build writes and reads.
pub const SNAP_VERSION: u16 = 1;

/// The adopted plan, exactly as the basestation disseminates it: the
/// wire encoding plus the bookkeeping the replan hysteresis needs.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanRecord {
    /// Monotonic plan version (dissemination counter).
    pub version: u64,
    /// The plan's wire encoding (`Plan::encode`).
    pub wire: Vec<u8>,
    /// Expected per-tuple cost under the estimator that produced it.
    pub expected_cost: f64,
    /// Planner objective value at adoption time.
    pub objective: f64,
}

/// Everything the basestation needs to resume after a crash without
/// re-learning: the adopted plan, drift-monitor counts, the live tuple
/// window, the counting estimator's per-predicate mask cache, and the
/// per-mote energy ledgers.
#[derive(Debug, Clone, PartialEq)]
pub struct BasestationCheckpoint {
    /// Epoch the snapshot was taken at (epochs `0..=epoch` are done).
    pub epoch: u64,
    /// Highest WAL sequence number already folded into this snapshot.
    /// Recovery replays only records with `seq > last_seq`.
    pub last_seq: u64,
    /// The currently disseminated plan.
    pub plan: PlanRecord,
    /// Drift monitor configuration and accumulated counts, if a
    /// monitor is running.
    pub drift: Option<(DriftConfig, DriftMonitorState)>,
    /// Sliding window of recent tuples, if windowed re-planning is on.
    pub window: Option<WindowState>,
    /// Counting-estimator mask cache: the query it was built for and
    /// one bitmask word-vector per predicate.
    pub mask_cache: Option<(Query, Vec<u64>)>,
    /// Per-mote energy ledgers as `[sense, tx, rx, cpu]` µJ.
    pub ledgers: Vec<[f64; 4]>,
}

fn put_query(w: &mut Writer, q: &Query) {
    w.u16(q.preds().len() as u16);
    for p in q.preds() {
        let (lo, hi) = p.bounds();
        w.u16(p.attr() as u16);
        w.u16(lo);
        w.u16(hi);
        w.u8(p.is_negated() as u8);
    }
}

fn get_query(r: &mut Reader<'_>) -> Result<Query> {
    let n = r.u16()? as usize;
    let mut preds = Vec::with_capacity(n);
    for _ in 0..n {
        let attr = r.u16()? as usize;
        let lo = r.u16()?;
        let hi = r.u16()?;
        let negated = match r.u8()? {
            0 => false,
            1 => true,
            _ => return Err(PersistError::Corrupt { what: "predicate negation flag" }),
        };
        preds.push(if negated {
            Pred::not_in_range(attr, lo, hi)
        } else {
            Pred::in_range(attr, lo, hi)
        });
    }
    Query::new(preds).map_err(|_| PersistError::Corrupt { what: "invalid persisted query" })
}

impl PlanRecord {
    fn encode_into(&self, w: &mut Writer) {
        w.u64(self.version);
        w.bytes(&self.wire);
        w.f64(self.expected_cost);
        w.f64(self.objective);
    }

    fn decode_from(r: &mut Reader<'_>) -> Result<Self> {
        Ok(PlanRecord {
            version: r.u64()?,
            wire: r.bytes()?,
            expected_cost: r.f64()?,
            objective: r.f64()?,
        })
    }
}

impl BasestationCheckpoint {
    /// Encodes the snapshot payload (no framing, no checksum).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u64(self.epoch);
        w.u64(self.last_seq);
        self.plan.encode_into(&mut w);
        match &self.drift {
            None => w.u8(0),
            Some((cfg, st)) => {
                w.u8(1);
                w.f64(cfg.threshold);
                w.u64(cfg.min_samples);
                w.f64s(&st.est);
                w.u64s(&st.evaluated);
                w.u64s(&st.passed);
            }
        }
        match &self.window {
            None => w.u8(0),
            Some(ws) => {
                w.u8(1);
                w.u32(ws.width as u32);
                w.u32(ws.capacity as u32);
                w.u32(ws.rows.len() as u32);
                for row in &ws.rows {
                    w.u16s(row);
                }
                w.u32(ws.head as u32);
                w.u64(ws.pushed);
            }
        }
        match &self.mask_cache {
            None => w.u8(0),
            Some((q, masks)) => {
                w.u8(1);
                put_query(&mut w, q);
                w.u64s(masks);
            }
        }
        w.u32(self.ledgers.len() as u32);
        for l in &self.ledgers {
            for &v in l {
                w.f64(v);
            }
        }
        w.into_bytes()
    }

    /// Decodes a snapshot payload, rejecting trailing bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let mut r = Reader::new(bytes);
        let epoch = r.u64()?;
        let last_seq = r.u64()?;
        let plan = PlanRecord::decode_from(&mut r)?;
        let drift = match r.u8()? {
            0 => None,
            1 => {
                let cfg = DriftConfig { threshold: r.f64()?, min_samples: r.u64()? };
                let st =
                    DriftMonitorState { est: r.f64s()?, evaluated: r.u64s()?, passed: r.u64s()? };
                Some((cfg, st))
            }
            _ => return Err(PersistError::Corrupt { what: "drift presence flag" }),
        };
        let window = match r.u8()? {
            0 => None,
            1 => {
                let width = r.u32()? as usize;
                let capacity = r.u32()? as usize;
                let nrows = r.u32()? as usize;
                if nrows > (1 << 24) {
                    return Err(PersistError::Corrupt { what: "implausible window row count" });
                }
                let mut rows = Vec::with_capacity(nrows);
                for _ in 0..nrows {
                    rows.push(r.u16s()?);
                }
                let head = r.u32()? as usize;
                let pushed = r.u64()?;
                Some(WindowState { width, capacity, rows, head, pushed })
            }
            _ => return Err(PersistError::Corrupt { what: "window presence flag" }),
        };
        let mask_cache = match r.u8()? {
            0 => None,
            1 => {
                let q = get_query(&mut r)?;
                Some((q, r.u64s()?))
            }
            _ => return Err(PersistError::Corrupt { what: "mask-cache presence flag" }),
        };
        let nled = r.u32()? as usize;
        if nled > (1 << 24) {
            return Err(PersistError::Corrupt { what: "implausible ledger count" });
        }
        let mut ledgers = Vec::with_capacity(nled);
        for _ in 0..nled {
            ledgers.push([r.f64()?, r.f64()?, r.f64()?, r.f64()?]);
        }
        r.finish()?;
        Ok(BasestationCheckpoint { epoch, last_seq, plan, drift, window, mask_cache, ledgers })
    }

    /// Frames the payload into a complete snapshot file image:
    /// magic + version + length + payload + checksum.
    pub fn to_file_bytes(&self) -> Vec<u8> {
        let payload = self.encode();
        let mut out = Vec::with_capacity(payload.len() + 22);
        out.extend_from_slice(SNAP_MAGIC);
        out.extend_from_slice(&SNAP_VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&payload);
        let sum = fnv1a64(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Validates and decodes a complete snapshot file image.
    pub fn from_file_bytes(bytes: &[u8]) -> Result<Self> {
        if bytes.len() < 22 {
            return Err(PersistError::Corrupt { what: "snapshot shorter than framing" });
        }
        if &bytes[..8] != SNAP_MAGIC {
            return Err(PersistError::Corrupt { what: "snapshot magic" });
        }
        let version = crate::codec::le_u16(&bytes[8..10])
            .ok_or(PersistError::Corrupt { what: "snapshot header truncated" })?;
        if version != SNAP_VERSION {
            return Err(PersistError::Corrupt { what: "unsupported snapshot version" });
        }
        let plen = crate::codec::le_u32(&bytes[10..14])
            .ok_or(PersistError::Corrupt { what: "snapshot header truncated" })?
            as usize;
        if bytes.len() != 14 + plen + 8 {
            return Err(PersistError::Corrupt { what: "snapshot length disagrees with header" });
        }
        let body_end = 14 + plen;
        let stored = crate::codec::le_u64(&bytes[body_end..]);
        if stored != Some(fnv1a64(&bytes[..body_end])) {
            return Err(PersistError::Corrupt { what: "snapshot checksum mismatch" });
        }
        Self::decode(&bytes[14..body_end])
    }

    /// Atomically writes the snapshot to `path` (temp file + rename).
    pub fn write_to(&self, path: &Path) -> Result<()> {
        let bytes = self.to_file_bytes();
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, &bytes).map_err(|e| io_err(&tmp, e))?;
        std::fs::rename(&tmp, path).map_err(|e| io_err(path, e))
    }

    /// Reads and validates a snapshot from `path`. Unreadable files are
    /// `Io`; readable-but-invalid files are `Corrupt`.
    pub fn read_from(path: &Path) -> Result<Self> {
        let bytes = std::fs::read(path).map_err(|e| io_err(path, e))?;
        Self::from_file_bytes(&bytes)
    }
}

/// Serve snapshot file magic — distinct from [`SNAP_MAGIC`] so a serve
/// checkpoint directory can never be mistaken for a single-query one.
pub const SERVE_SNAP_MAGIC: &[u8; 8] = b"ACQPSRVS";
/// Serve snapshot format version this build writes and reads.
pub const SERVE_SNAP_VERSION: u16 = 1;

/// One plan-cache row of a [`ServeCheckpoint`]: enough to rebuild the
/// policy's `(signature, stats epoch)` entry *and* re-arm its drift
/// monitor (which needs the query, not just the plan bytes).
#[derive(Debug, Clone, PartialEq)]
pub struct ServePlanEntry {
    /// The query the plan was built for.
    pub query: Query,
    /// The stats epoch the plan was cached under.
    pub key_epoch: u64,
    /// The cached plan (`version` mirrors `key_epoch`).
    pub plan: PlanRecord,
}

/// Progress of one in-flight service query at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeLiveRecord {
    /// Index of the entry in the service schedule.
    pub idx: u64,
    /// Epoch the query was admitted at.
    pub admit: u64,
    /// One past the query's last live epoch.
    pub end: u64,
    /// Cumulative per-predicate `(evaluated, passed)` drift counts.
    pub pend: Vec<(u64, u64)>,
}

/// Everything the multi-query service needs to resume after a
/// basestation crash without a cold start: the policy's plan cache and
/// stats epoch plus the progress of every live query (`DESIGN.md`
/// §14.5).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeCheckpoint {
    /// Epoch the snapshot was taken at (epochs `0..=epoch` are done).
    pub epoch: u64,
    /// Highest WAL sequence number already folded into this snapshot.
    pub last_seq: u64,
    /// The policy's statistics epoch at snapshot time.
    pub stats_epoch: u64,
    /// The plan cache, in deterministic key order.
    pub plans: Vec<ServePlanEntry>,
    /// Live-query progress, in admission order.
    pub live: Vec<ServeLiveRecord>,
}

impl ServeCheckpoint {
    /// Encodes the snapshot payload (no framing, no checksum).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u64(self.epoch);
        w.u64(self.last_seq);
        w.u64(self.stats_epoch);
        w.u32(self.plans.len() as u32);
        for p in &self.plans {
            put_query(&mut w, &p.query);
            w.u64(p.key_epoch);
            p.plan.encode_into(&mut w);
        }
        w.u32(self.live.len() as u32);
        for q in &self.live {
            w.u64(q.idx);
            w.u64(q.admit);
            w.u64(q.end);
            w.u32(q.pend.len() as u32);
            for &(ev, pa) in &q.pend {
                w.u64(ev);
                w.u64(pa);
            }
        }
        w.into_bytes()
    }

    /// Decodes a snapshot payload, rejecting trailing bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let mut r = Reader::new(bytes);
        let epoch = r.u64()?;
        let last_seq = r.u64()?;
        let stats_epoch = r.u64()?;
        let nplans = r.u32()? as usize;
        if nplans > (1 << 20) {
            return Err(PersistError::Corrupt { what: "implausible plan-cache size" });
        }
        let mut plans = Vec::with_capacity(nplans);
        for _ in 0..nplans {
            let query = get_query(&mut r)?;
            let key_epoch = r.u64()?;
            let plan = PlanRecord::decode_from(&mut r)?;
            plans.push(ServePlanEntry { query, key_epoch, plan });
        }
        let nlive = r.u32()? as usize;
        if nlive > (1 << 20) {
            return Err(PersistError::Corrupt { what: "implausible live-query count" });
        }
        let mut live = Vec::with_capacity(nlive);
        for _ in 0..nlive {
            let idx = r.u64()?;
            let admit = r.u64()?;
            let end = r.u64()?;
            let npend = r.u32()? as usize;
            if npend > (1 << 16) {
                return Err(PersistError::Corrupt { what: "implausible predicate count" });
            }
            let mut pend = Vec::with_capacity(npend);
            for _ in 0..npend {
                pend.push((r.u64()?, r.u64()?));
            }
            live.push(ServeLiveRecord { idx, admit, end, pend });
        }
        r.finish()?;
        Ok(ServeCheckpoint { epoch, last_seq, stats_epoch, plans, live })
    }

    /// Frames the payload into a complete snapshot file image.
    pub fn to_file_bytes(&self) -> Vec<u8> {
        let payload = self.encode();
        let mut out = Vec::with_capacity(payload.len() + 22);
        out.extend_from_slice(SERVE_SNAP_MAGIC);
        out.extend_from_slice(&SERVE_SNAP_VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&payload);
        let sum = fnv1a64(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Validates and decodes a complete snapshot file image.
    pub fn from_file_bytes(bytes: &[u8]) -> Result<Self> {
        if bytes.len() < 22 {
            return Err(PersistError::Corrupt { what: "serve snapshot shorter than framing" });
        }
        if &bytes[..8] != SERVE_SNAP_MAGIC {
            return Err(PersistError::Corrupt { what: "serve snapshot magic" });
        }
        let version = crate::codec::le_u16(&bytes[8..10])
            .ok_or(PersistError::Corrupt { what: "serve snapshot header truncated" })?;
        if version != SERVE_SNAP_VERSION {
            return Err(PersistError::Corrupt { what: "unsupported serve snapshot version" });
        }
        let plen = crate::codec::le_u32(&bytes[10..14])
            .ok_or(PersistError::Corrupt { what: "serve snapshot header truncated" })?
            as usize;
        if bytes.len() != 14 + plen + 8 {
            return Err(PersistError::Corrupt {
                what: "serve snapshot length disagrees with header",
            });
        }
        let body_end = 14 + plen;
        let stored = crate::codec::le_u64(&bytes[body_end..]);
        if stored != Some(fnv1a64(&bytes[..body_end])) {
            return Err(PersistError::Corrupt { what: "serve snapshot checksum mismatch" });
        }
        Self::decode(&bytes[14..body_end])
    }

    /// Atomically writes the snapshot to `path` (temp file + rename).
    pub fn write_to(&self, path: &Path) -> Result<()> {
        let bytes = self.to_file_bytes();
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, &bytes).map_err(|e| io_err(&tmp, e))?;
        std::fs::rename(&tmp, path).map_err(|e| io_err(path, e))
    }

    /// Reads and validates a snapshot from `path`.
    pub fn read_from(path: &Path) -> Result<Self> {
        let bytes = std::fs::read(path).map_err(|e| io_err(path, e))?;
        Self::from_file_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BasestationCheckpoint {
        let q = Query::new(vec![Pred::in_range(0, 1, 5), Pred::not_in_range(2, 0, 3)]).unwrap();
        BasestationCheckpoint {
            epoch: 42,
            last_seq: 137,
            plan: PlanRecord {
                version: 3,
                wire: vec![0x03, 0x01, 0x00, 0x04],
                expected_cost: 12.75,
                objective: -1.0,
            },
            drift: Some((
                DriftConfig { threshold: 0.15, min_samples: 32 },
                DriftMonitorState {
                    est: vec![0.25, 0.5],
                    evaluated: vec![100, 40],
                    passed: vec![25, 20],
                },
            )),
            window: Some(WindowState {
                width: 3,
                capacity: 4,
                rows: vec![vec![1, 2, 3], vec![4, 5, 6]],
                head: 0,
                pushed: 2,
            }),
            mask_cache: Some((q, vec![0b1011, 0b0110])),
            ledgers: vec![[1.0, 2.0, 3.0, 4.0], [0.5, 0.0, 0.25, 0.125]],
        }
    }

    #[test]
    fn payload_round_trip_is_bit_identical() {
        let cp = sample();
        let back = BasestationCheckpoint::decode(&cp.encode()).unwrap();
        assert_eq!(back, cp);
        // Optional fields absent also round-trip.
        let bare = BasestationCheckpoint {
            drift: None,
            window: None,
            mask_cache: None,
            ledgers: vec![],
            ..cp
        };
        assert_eq!(BasestationCheckpoint::decode(&bare.encode()).unwrap(), bare);
    }

    #[test]
    fn file_framing_detects_every_single_byte_flip() {
        let cp = sample();
        let good = cp.to_file_bytes();
        assert_eq!(BasestationCheckpoint::from_file_bytes(&good).unwrap(), cp);
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x40;
            assert!(
                BasestationCheckpoint::from_file_bytes(&bad).is_err(),
                "flip at byte {i} went undetected"
            );
        }
        // Truncation at any point is also rejected.
        for cut in 0..good.len() {
            assert!(BasestationCheckpoint::from_file_bytes(&good[..cut]).is_err());
        }
    }

    fn serve_sample() -> ServeCheckpoint {
        let q1 = Query::new(vec![Pred::in_range(0, 1, 5)]).unwrap();
        let q2 = Query::new(vec![Pred::in_range(1, 0, 2), Pred::not_in_range(2, 3, 3)]).unwrap();
        ServeCheckpoint {
            epoch: 17,
            last_seq: 91,
            stats_epoch: 2,
            plans: vec![
                ServePlanEntry {
                    query: q1,
                    key_epoch: 2,
                    plan: PlanRecord {
                        version: 2,
                        wire: vec![0x03, 0x01, 0x00, 0x04],
                        expected_cost: 8.25,
                        objective: 8.25,
                    },
                },
                ServePlanEntry {
                    query: q2,
                    key_epoch: 2,
                    plan: PlanRecord {
                        version: 2,
                        wire: vec![0x02, 0x01],
                        expected_cost: 3.5,
                        objective: 4.0,
                    },
                },
            ],
            live: vec![
                ServeLiveRecord { idx: 0, admit: 4, end: 36, pend: vec![(12, 5)] },
                ServeLiveRecord { idx: 3, admit: 10, end: 20, pend: vec![(6, 6), (6, 0)] },
            ],
        }
    }

    #[test]
    fn serve_payload_round_trip_is_bit_identical() {
        let cp = serve_sample();
        assert_eq!(ServeCheckpoint::decode(&cp.encode()).unwrap(), cp);
        let bare = ServeCheckpoint { plans: vec![], live: vec![], ..cp };
        assert_eq!(ServeCheckpoint::decode(&bare.encode()).unwrap(), bare);
    }

    #[test]
    fn serve_framing_detects_every_single_byte_flip() {
        let cp = serve_sample();
        let good = cp.to_file_bytes();
        assert_eq!(ServeCheckpoint::from_file_bytes(&good).unwrap(), cp);
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x40;
            assert!(
                ServeCheckpoint::from_file_bytes(&bad).is_err(),
                "flip at byte {i} went undetected"
            );
        }
        for cut in 0..good.len() {
            assert!(ServeCheckpoint::from_file_bytes(&good[..cut]).is_err());
        }
        // A basestation snapshot never decodes as a serve snapshot and
        // vice versa: the magics are disjoint.
        assert!(ServeCheckpoint::from_file_bytes(&sample().to_file_bytes()).is_err());
        assert!(BasestationCheckpoint::from_file_bytes(&good).is_err());
    }

    #[test]
    fn write_read_round_trip_on_disk() {
        let dir = std::env::temp_dir().join("acqp_persist_snap_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap-0");
        let cp = sample();
        cp.write_to(&path).unwrap();
        assert_eq!(BasestationCheckpoint::read_from(&path).unwrap(), cp);
        std::fs::remove_dir_all(&dir).ok();
    }
}
