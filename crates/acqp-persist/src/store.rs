//! Directory manager tying snapshots and the WAL into one recovery
//! story.
//!
//! Layout of a checkpoint directory:
//!
//! ```text
//! <dir>/snap-000001 ... snap-NNNNNN   snapshots, monotonic index
//! <dir>/wal.log                       the write-ahead log
//! ```
//!
//! Recovery policy, in order:
//!
//! 1. Try snapshots newest-first; the first one that validates wins.
//!    Each invalid one increments `corrupt_snapshots`.
//! 2. Replay WAL records with `seq > checkpoint.last_seq` — the
//!    sequence filter is what makes replay idempotent.
//! 3. If *no* snapshot validates, cold-start: the caller rebuilds
//!    genesis state and the **entire** valid WAL prefix is replayed
//!    onto it, so snapshot corruption alone loses nothing that was
//!    logged.

use std::fs::{File, OpenOptions};
use std::path::{Path, PathBuf};

use crate::snapshot::{BasestationCheckpoint, ServeCheckpoint};
use crate::wal::{self, WalRecord};
use crate::{io_err, PersistError, Result};

const SNAP_PREFIX: &str = "snap-";
const WAL_FILE: &str = "wal.log";

/// Manages one checkpoint directory: snapshot writes, WAL appends, and
/// recovery.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    next_snap: u64,
    next_seq: u64,
    wal: Option<File>,
}

/// What [`CheckpointStore::recover`] found.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryOutcome {
    /// The newest snapshot that validated, if any.
    pub checkpoint: Option<BasestationCheckpoint>,
    /// WAL records to apply on top, in order. With a checkpoint these
    /// are exactly the records with `seq > checkpoint.last_seq`; on a
    /// cold start they are the full valid prefix, to be applied onto
    /// genesis state.
    pub replayed: Vec<WalRecord>,
    /// Snapshot files present but failing validation.
    pub corrupt_snapshots: usize,
    /// Snapshot files examined (newest-first) before one validated or
    /// the candidates ran out. Flight-recorder introspection: lets the
    /// recovery trace distinguish "no snapshots at all" from "walked
    /// past N corrupt ones".
    pub snapshots_scanned: usize,
    /// True if the WAL ended in invalid bytes (normal after a crash
    /// mid-append; also set by corruption within the log).
    pub corrupt_wal_tail: bool,
    /// True if no snapshot validated and the caller must rebuild
    /// genesis state before replaying.
    pub cold_start: bool,
}

/// What [`CheckpointStore::recover_serve`] found — the serve-state
/// mirror of [`RecoveryOutcome`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServeRecoveryOutcome {
    /// The newest serve snapshot that validated, if any.
    pub checkpoint: Option<ServeCheckpoint>,
    /// WAL records to apply on top, in order (full valid prefix on a
    /// cold start).
    pub replayed: Vec<WalRecord>,
    /// Snapshot files present but failing validation.
    pub corrupt_snapshots: usize,
    /// Snapshot files examined before one validated or candidates ran
    /// out.
    pub snapshots_scanned: usize,
    /// True if the WAL ended in invalid bytes.
    pub corrupt_wal_tail: bool,
    /// True if no snapshot validated.
    pub cold_start: bool,
}

fn snap_index(name: &str) -> Option<u64> {
    name.strip_prefix(SNAP_PREFIX)?.parse().ok()
}

impl CheckpointStore {
    /// Opens (creating if needed) a checkpoint directory and positions
    /// the snapshot index and WAL sequence counter after any existing
    /// artifacts, so appends never collide with prior runs.
    pub fn open(dir: &Path) -> Result<Self> {
        std::fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
        let mut max_snap = 0u64;
        for entry in std::fs::read_dir(dir).map_err(|e| io_err(dir, e))? {
            let entry = entry.map_err(|e| io_err(dir, e))?;
            if let Some(idx) = entry.file_name().to_str().and_then(snap_index) {
                max_snap = max_snap.max(idx);
            }
        }
        let wal_path = dir.join(WAL_FILE);
        let scan = wal::scan_file(&wal_path)?;
        let last_seq = scan.records.last().map(|(s, _)| *s).unwrap_or(0);
        Ok(CheckpointStore {
            dir: dir.to_path_buf(),
            next_snap: max_snap + 1,
            next_seq: last_seq + 1,
            wal: None,
        })
    }

    /// The directory this store manages.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The sequence number the next [`append`](Self::append) will use.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    fn wal_path(&self) -> PathBuf {
        self.dir.join(WAL_FILE)
    }

    fn wal_file(&mut self) -> Result<&mut File> {
        if self.wal.is_none() {
            let path = self.wal_path();
            let fresh = !path.exists();
            let mut f = OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .map_err(|e| io_err(&path, e))?;
            if fresh {
                wal::append_frame(&mut f, &path, &wal::wal_header())?;
            }
            self.wal = Some(f);
        }
        // Assigned `Some` above when it was `None`; kept panic-free all
        // the same — persistence code never gets to abort the process.
        self.wal.as_mut().ok_or(PersistError::Corrupt { what: "wal handle missing after open" })
    }

    /// Appends one record to the WAL and returns the sequence number it
    /// was stamped with.
    pub fn append(&mut self, record: &WalRecord) -> Result<u64> {
        let seq = self.next_seq;
        let frame = record.to_frame(seq);
        let path = self.wal_path();
        let file = self.wal_file()?;
        wal::append_frame(file, &path, &frame)?;
        self.next_seq = seq + 1;
        Ok(seq)
    }

    /// Writes a snapshot atomically. `checkpoint.last_seq` should be
    /// the sequence of the last WAL record folded into it (i.e.
    /// `next_seq() - 1` when the state is current); recovery replays
    /// only records beyond it. Returns the snapshot's file index.
    pub fn write_snapshot(&mut self, checkpoint: &BasestationCheckpoint) -> Result<u64> {
        let idx = self.next_snap;
        let path = self.dir.join(format!("{SNAP_PREFIX}{idx:06}"));
        checkpoint.write_to(&path)?;
        self.next_snap = idx + 1;
        Ok(idx)
    }

    /// Walks the snapshot files newest-first, returning the first one
    /// `read` validates plus the corrupt/scanned tallies. Generic over
    /// the snapshot flavor so the basestation and serve recovery paths
    /// share one scan policy.
    fn newest_valid_snapshot<T>(
        &self,
        read: impl Fn(&Path) -> Result<T>,
    ) -> Result<(Option<T>, usize, usize)> {
        let mut snaps: Vec<(u64, PathBuf)> = Vec::new();
        for entry in std::fs::read_dir(&self.dir).map_err(|e| io_err(&self.dir, e))? {
            let entry = entry.map_err(|e| io_err(&self.dir, e))?;
            if let Some(idx) = entry.file_name().to_str().and_then(snap_index) {
                snaps.push((idx, entry.path()));
            }
        }
        snaps.sort_by_key(|(idx, _)| std::cmp::Reverse(*idx));

        let mut corrupt = 0;
        let mut scanned = 0;
        for (_, path) in &snaps {
            scanned += 1;
            match read(path) {
                Ok(cp) => return Ok((Some(cp), corrupt, scanned)),
                Err(_) => corrupt += 1,
            }
        }
        Ok((None, corrupt, scanned))
    }

    /// Replays the WAL beyond `floor` (everything, on a cold start).
    fn replay_beyond(&self, floor: u64) -> Result<(Vec<WalRecord>, bool)> {
        let scan = wal::scan_file(&self.wal_path())?;
        let replayed =
            scan.records.into_iter().filter(|(seq, _)| *seq > floor).map(|(_, r)| r).collect();
        Ok((replayed, scan.torn_tail))
    }

    /// Recovers the latest consistent state: newest valid snapshot plus
    /// the idempotent WAL replay beyond it (see module docs for the
    /// full policy).
    pub fn recover(&self) -> Result<RecoveryOutcome> {
        let (checkpoint, corrupt_snapshots, snapshots_scanned) =
            self.newest_valid_snapshot(BasestationCheckpoint::read_from)?;
        let floor = checkpoint.as_ref().map(|cp| cp.last_seq).unwrap_or(0);
        let (replayed, corrupt_wal_tail) = self.replay_beyond(floor)?;
        let cold_start = checkpoint.is_none();
        Ok(RecoveryOutcome {
            checkpoint,
            replayed,
            corrupt_snapshots,
            snapshots_scanned,
            corrupt_wal_tail,
            cold_start,
        })
    }

    /// Writes a serve-state snapshot atomically (same naming and index
    /// sequence as [`write_snapshot`](Self::write_snapshot) — a
    /// directory holds one flavor or the other, distinguished by
    /// magic). Returns the snapshot's file index.
    pub fn write_serve_snapshot(&mut self, checkpoint: &ServeCheckpoint) -> Result<u64> {
        let idx = self.next_snap;
        let path = self.dir.join(format!("{SNAP_PREFIX}{idx:06}"));
        checkpoint.write_to(&path)?;
        self.next_snap = idx + 1;
        Ok(idx)
    }

    /// Serve-flavored [`recover`](Self::recover): same newest-valid
    /// snapshot walk and idempotent seq-filtered WAL replay, reading
    /// [`ServeCheckpoint`] images.
    pub fn recover_serve(&self) -> Result<ServeRecoveryOutcome> {
        let (checkpoint, corrupt_snapshots, snapshots_scanned) =
            self.newest_valid_snapshot(ServeCheckpoint::read_from)?;
        let floor = checkpoint.as_ref().map(|cp| cp.last_seq).unwrap_or(0);
        let (replayed, corrupt_wal_tail) = self.replay_beyond(floor)?;
        let cold_start = checkpoint.is_none();
        Ok(ServeRecoveryOutcome {
            checkpoint,
            replayed,
            corrupt_snapshots,
            snapshots_scanned,
            corrupt_wal_tail,
            cold_start,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PlanRecord;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("acqp_persist_store_{tag}"));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn checkpoint(epoch: u64, last_seq: u64) -> BasestationCheckpoint {
        BasestationCheckpoint {
            epoch,
            last_seq,
            plan: PlanRecord {
                version: epoch,
                wire: vec![0x01],
                expected_cost: 1.0,
                objective: 1.0,
            },
            drift: None,
            window: None,
            mask_cache: None,
            ledgers: vec![],
        }
    }

    #[test]
    fn snapshot_plus_tail_replay() {
        let dir = tmp_dir("tail");
        let mut store = CheckpointStore::open(&dir).unwrap();
        for e in 1..=4 {
            store.append(&WalRecord::EpochEnd { epoch: e }).unwrap();
        }
        // Snapshot folds in seqs 1..=4.
        store.write_snapshot(&checkpoint(4, 4)).unwrap();
        store.append(&WalRecord::EpochEnd { epoch: 5 }).unwrap();
        store.append(&WalRecord::EpochEnd { epoch: 6 }).unwrap();

        let out = store.recover().unwrap();
        assert!(!out.cold_start);
        assert_eq!(out.corrupt_snapshots, 0);
        assert!(!out.corrupt_wal_tail);
        assert_eq!(out.checkpoint.as_ref().unwrap().epoch, 4);
        assert_eq!(
            out.replayed,
            vec![WalRecord::EpochEnd { epoch: 5 }, WalRecord::EpochEnd { epoch: 6 }]
        );
        // Idempotence: recovering again yields the identical outcome.
        assert_eq!(store.recover().unwrap(), out);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_newest_snapshot_falls_back_to_older() {
        let dir = tmp_dir("fallback");
        let mut store = CheckpointStore::open(&dir).unwrap();
        store.append(&WalRecord::EpochEnd { epoch: 1 }).unwrap();
        store.write_snapshot(&checkpoint(1, 1)).unwrap();
        store.append(&WalRecord::EpochEnd { epoch: 2 }).unwrap();
        let idx = store.write_snapshot(&checkpoint(2, 2)).unwrap();
        // Mangle the newest snapshot.
        let newest = dir.join(format!("snap-{idx:06}"));
        let mut bytes = std::fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&newest, &bytes).unwrap();

        let out = store.recover().unwrap();
        assert_eq!(out.corrupt_snapshots, 1);
        assert!(!out.cold_start);
        assert_eq!(out.checkpoint.as_ref().unwrap().epoch, 1);
        // Seq 2 is beyond the surviving snapshot, so it replays.
        assert_eq!(out.replayed, vec![WalRecord::EpochEnd { epoch: 2 }]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn all_snapshots_corrupt_cold_starts_with_full_wal() {
        let dir = tmp_dir("cold");
        let mut store = CheckpointStore::open(&dir).unwrap();
        store.append(&WalRecord::EpochEnd { epoch: 1 }).unwrap();
        store.write_snapshot(&checkpoint(1, 1)).unwrap();
        store.append(&WalRecord::EpochEnd { epoch: 2 }).unwrap();
        std::fs::write(dir.join("snap-000001"), b"garbage").unwrap();

        let out = store.recover().unwrap();
        assert!(out.cold_start);
        assert_eq!(out.corrupt_snapshots, 1);
        // Full WAL replays from genesis: nothing logged was lost.
        assert_eq!(
            out.replayed,
            vec![WalRecord::EpochEnd { epoch: 1 }, WalRecord::EpochEnd { epoch: 2 }]
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_snapshot_plus_tail_replay() {
        let dir = tmp_dir("serve_tail");
        let mut store = CheckpointStore::open(&dir).unwrap();
        store
            .append(&WalRecord::ServeAdmit { idx: 0, epoch: 0, sig: 7, cache_hit: false })
            .unwrap();
        store
            .write_serve_snapshot(&ServeCheckpoint {
                epoch: 3,
                last_seq: 1,
                stats_epoch: 1,
                plans: vec![],
                live: vec![],
            })
            .unwrap();
        store.append(&WalRecord::ServeComplete { idx: 0, epoch: 5, status: 0 }).unwrap();

        let out = store.recover_serve().unwrap();
        assert!(!out.cold_start);
        assert_eq!(out.checkpoint.as_ref().unwrap().stats_epoch, 1);
        assert_eq!(out.replayed, vec![WalRecord::ServeComplete { idx: 0, epoch: 5, status: 0 }]);
        // Idempotence holds for the serve flavor too.
        assert_eq!(store.recover_serve().unwrap(), out);
        // A serve directory never recovers as a basestation one: the
        // snapshot magic mismatches, so that flavor cold-starts.
        let cross = store.recover().unwrap();
        assert!(cross.cold_start);
        assert_eq!(cross.corrupt_snapshots, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_continues_sequences_and_indices() {
        let dir = tmp_dir("reopen");
        let mut store = CheckpointStore::open(&dir).unwrap();
        assert_eq!(store.next_seq(), 1);
        store.append(&WalRecord::EpochEnd { epoch: 1 }).unwrap();
        store.write_snapshot(&checkpoint(1, 1)).unwrap();
        drop(store);

        let mut store = CheckpointStore::open(&dir).unwrap();
        assert_eq!(store.next_seq(), 2);
        store.append(&WalRecord::EpochEnd { epoch: 2 }).unwrap();
        let idx = store.write_snapshot(&checkpoint(2, 2)).unwrap();
        assert_eq!(idx, 2);
        let out = store.recover().unwrap();
        assert_eq!(out.checkpoint.unwrap().epoch, 2);
        assert!(out.replayed.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
